// Command benchsnap records a performance snapshot of the evaluation
// pipeline: engine micro-benchmark ns/op plus wall-clock and headline
// metrics for a set of figures, plus a streaming-vs-stored memory
// comparison, written as BENCH_<date>.json. Commit one snapshot per
// perf-relevant PR and the series becomes the perf trajectory of the
// repository.
//
// Examples:
//
//	benchsnap                         # default figure set, BENCH_<date>.json
//	benchsnap -figs 9a,10a -flows 500
//	benchsnap -out snapshots/ -parallel 1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"pase"
	"pase/internal/core/arbitration"
	"pase/internal/experiments"
	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/route"
	"pase/internal/sim"
	"pase/internal/topology"
)

// Snapshot is the schema of one BENCH_<date>.json file.
type Snapshot struct {
	Date        string         `json:"date"`
	GoVersion   string         `json:"go_version"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Parallelism int            `json:"parallelism"`
	Flows       int            `json:"flows"`
	GitRev      string         `json:"git_rev,omitempty"`
	Engine      EngineBench    `json:"engine"`
	Figures     []FigureRecord `json:"figures"`
	TotalMS     float64        `json:"total_ms"`
	// Obs is the observability snapshot merged across every figure run
	// of the session — total events fired, packets forwarded, drops,
	// retransmissions — so perf regressions can be traced to workload
	// shifts (more retx, deeper queues) rather than guessed at.
	Obs *pase.Snapshot `json:"obs,omitempty"`
	// Memory compares the stored collector against the streaming sink
	// on one identical point, pinning the bounded-memory trajectory.
	Memory *MemBench `json:"memory,omitempty"`
	// Sharded records serial-vs-sharded wall clock for a figure point
	// and a streaming scale point. Speedup needs at least as many cores
	// as shards — on a single-core host (see GOMAXPROCS) the column
	// records the sharding machinery's overhead instead.
	Sharded *ShardBench `json:"sharded,omitempty"`
	// Trace compares a figure-9a point with and without the span flight
	// recorder attached, pinning the flight recorder's cost. The
	// recorder budget is ≤2% overhead when disabled; the on-column
	// records the full recording cost.
	Trace *TraceBench `json:"trace,omitempty"`
	// TE pins the routing control loop: a RouteTable failover
	// micro-benchmark (the reroute latency of one link-state event) and
	// the te-failover point timed with the reroute+TE loop on versus
	// off, so TE-epoch overhead shows up as a wall-clock delta.
	TE *TEBench `json:"te,omitempty"`
	// CtrlScale pins the arbitration control plane: an
	// Arbitrator.Update micro-benchmark (the messages/sec ceiling of
	// one arbitration book) plus one ctrlscale point per control-plane
	// arm with its wall clock, control traffic and per-level mean
	// control RTT.
	CtrlScale *CtrlBench `json:"ctrlscale,omitempty"`
}

// CtrlBench is the arbitration control-plane cost record.
type CtrlBench struct {
	Flows         int       `json:"flows"`
	Racks         int       `json:"racks"`
	UpdateNsOp    float64   `json:"update_ns_per_op"`
	UpdatesPerSec float64   `json:"updates_per_sec"`
	Arms          []CtrlArm `json:"arms"`
}

// CtrlArm is one control-plane configuration's ctrlscale point.
type CtrlArm struct {
	Name         string  `json:"name"`
	WallMS       float64 `json:"wall_ms"`
	CtrlMessages int64   `json:"ctrl_messages"`
	CtrlBytes    int64   `json:"ctrl_bytes"`
	// LevelRTTNs[d] is the mean control round-trip observed at climb
	// depth d (arb/rtt/level<d>), in nanoseconds; levels that saw no
	// exchange are zero.
	LevelRTTNs []float64 `json:"level_rtt_ns"`
}

// TEBench is the routing-control-loop cost record. FailoverNsOp is one
// SetUplink(down) + Pick + SetUplink(up) cycle — the copy-on-write
// epoch swap plus the survivor-scan lookup a failure triggers. The
// on/off columns time the same fault-free te-failover point with and
// without the control loop attached, best of Reps each, so OverheadPct
// is the pure cost of the periodic TE epochs and link-state plumbing.
type TEBench struct {
	Flows        int     `json:"flows"`
	Reps         int     `json:"reps"`
	OffMS        float64 `json:"off_ms"`
	OnMS         float64 `json:"on_ms"`
	OverheadPct  float64 `json:"overhead_pct"`
	FailoverNsOp float64 `json:"failover_ns_per_op"`
}

// TraceBench is the flight-recorder overhead record: the same point
// timed trace-off and trace-on (best of Reps each).
type TraceBench struct {
	Flows       int     `json:"flows"`
	Reps        int     `json:"reps"`
	OffMS       float64 `json:"off_ms"`
	OnMS        float64 `json:"on_ms"`
	OverheadPct float64 `json:"overhead_pct"`
}

// ShardBench is the sharded-engine speedup record.
type ShardBench struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	Points     []ShardPoint `json:"points"`
}

// ShardPoint is one workload run serially and at each shard count.
type ShardPoint struct {
	Name     string        `json:"name"`
	Flows    int           `json:"flows"`
	SerialMS float64       `json:"serial_ms"`
	Runs     []ShardTiming `json:"runs"`
}

// ShardTiming is one sharded run of the point; Speedup is serial wall
// over sharded wall (> 1 = faster).
type ShardTiming struct {
	Shards  int     `json:"shards"`
	WallMS  float64 `json:"wall_ms"`
	Speedup float64 `json:"speedup"`
}

// MemBench is the streaming-vs-stored memory comparison: one point
// (DCTCP, intra-rack, load 0.6) run twice, measuring bytes allocated
// over the run and bytes still live after it (post-GC, result held).
// Stored mode retains O(flows) records and senders; streaming retains
// O(in-flight) plus a fixed-size quantile sketch, so the retained
// column is the headline number.
type MemBench struct {
	Flows               int    `json:"flows"`
	StoredAllocBytes    uint64 `json:"stored_alloc_bytes"`
	StreamAllocBytes    uint64 `json:"stream_alloc_bytes"`
	StoredRetainedBytes uint64 `json:"stored_retained_bytes"`
	StreamRetainedBytes uint64 `json:"stream_retained_bytes"`
}

// EngineBench holds the in-process simulator micro-benchmarks.
type EngineBench struct {
	ScheduleFireNsOp float64 `json:"schedule_fire_ns_per_op"`
	TimerChurnNsOp   float64 `json:"timer_churn_ns_per_op"`
}

// FigureRecord is one figure's timing plus its headline metrics (the
// final Y value of every series — what the bench harness reports).
type FigureRecord struct {
	ID      string             `json:"id"`
	WallMS  float64            `json:"wall_ms"`
	Loads   []float64          `json:"loads,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	var (
		figs        = flag.String("figs", "3,9a,9b,10a,10c,probing", "comma-separated figure ids to snapshot")
		flows       = flag.Int("flows", 250, "foreground flows per simulation point")
		seed        = flag.Uint64("seed", 1, "workload seed")
		loads       = flag.String("loads", "0.5,0.8", "load sweep for the swept figures")
		parallel    = flag.Int("parallel", 0, "simulation points run concurrently (0 = one per CPU)")
		memflows    = flag.Int("memflows", 20_000, "flows for the streaming-vs-stored memory comparison (0 disables)")
		shardflows  = flag.Int("shardflows", 100_000, "flows for the sharded speedup scale point (0 disables the section)")
		shardcounts = flag.String("shardcounts", "2,4,8", "shard counts to time against the serial engine")
		traceflows  = flag.Int("traceflows", 2000, "flows for the trace-on/off overhead point (0 disables the section)")
		teflows     = flag.Int("teflows", 2000, "flows for the routing/TE control-loop overhead point (0 disables the section)")
		ctrlflows   = flag.Int("ctrlflows", 400, "flows for the arbitration control-plane section (0 disables the section)")
		ctrlracks   = flag.Int("ctrlracks", 64, "ctrlscale fabric size for the control-plane section")
		out         = flag.String("out", "", "output file or directory (default BENCH_<date>.json in the working directory)")
	)
	flag.Parse()

	var loadVals []float64
	for _, s := range strings.Split(*loads, ",") {
		var v float64
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &v); err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: bad load %q: %v\n", s, err)
			os.Exit(1)
		}
		loadVals = append(loadVals, v)
	}

	snap := Snapshot{
		Date:        time.Now().Format("2006-01-02"),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: *parallel,
		Flows:       *flows,
		GitRev:      pase.GitRev(),
		Engine:      benchEngine(),
	}

	start := time.Now()
	var obsSnaps []*pase.Snapshot
	for _, id := range strings.Split(*figs, ",") {
		id = strings.TrimSpace(id)
		opts := pase.FigureOpts{NumFlows: *flows, Seed: *seed, Parallelism: *parallel, Obs: true}
		// CDF figures and the toy example define their own grids.
		if id != "3" && !strings.HasSuffix(id, "b") {
			opts.Loads = loadVals
		}
		figStart := time.Now()
		fig, err := pase.RunFigure(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		rec := FigureRecord{
			ID:      id,
			WallMS:  float64(time.Since(figStart).Microseconds()) / 1000,
			Loads:   opts.Loads,
			Metrics: map[string]float64{},
		}
		for _, s := range fig.Series {
			if len(s.Y) > 0 {
				rec.Metrics[s.Name] = s.Y[len(s.Y)-1]
			}
		}
		snap.Figures = append(snap.Figures, rec)
		obsSnaps = append(obsSnaps, fig.Snapshot())
	}
	snap.TotalMS = float64(time.Since(start).Microseconds()) / 1000
	snap.Obs = pase.MergeSnapshots(obsSnaps)
	if *memflows > 0 {
		snap.Memory = benchMemory(*memflows)
	}
	if *shardflows > 0 {
		var counts []int
		for _, s := range strings.Split(*shardcounts, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n < 2 {
				fmt.Fprintf(os.Stderr, "benchsnap: bad shard count %q\n", s)
				os.Exit(1)
			}
			counts = append(counts, n)
		}
		snap.Sharded = benchSharded(*shardflows, counts)
	}
	if *traceflows > 0 {
		snap.Trace = benchTrace(*traceflows, 3)
	}
	if *teflows > 0 {
		snap.TE = benchTE(*teflows, 3)
	}
	if *ctrlflows > 0 {
		snap.CtrlScale = benchCtrl(*ctrlflows, *ctrlracks)
	}

	path := *out
	switch {
	case path == "":
		path = "BENCH_" + snap.Date + ".json"
	default:
		if st, err := os.Stat(path); err == nil && st.IsDir() {
			path = filepath.Join(path, "BENCH_"+snap.Date+".json")
		}
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d figures, %.0f ms total, engine schedule+fire %.1f ns/op)\n",
		path, len(snap.Figures), snap.TotalMS, snap.Engine.ScheduleFireNsOp)
	if m := snap.Memory; m != nil {
		fmt.Printf("memory @ %d flows: stored %d KB retained / %d MB allocated, streaming %d KB retained / %d MB allocated\n",
			m.Flows, m.StoredRetainedBytes>>10, m.StoredAllocBytes>>20,
			m.StreamRetainedBytes>>10, m.StreamAllocBytes>>20)
	}
	if sb := snap.Sharded; sb != nil {
		for _, p := range sb.Points {
			line := fmt.Sprintf("sharded %s @ %d flows: serial %.0f ms", p.Name, p.Flows, p.SerialMS)
			for _, r := range p.Runs {
				line += fmt.Sprintf(", %d shards %.0f ms (%.2fx)", r.Shards, r.WallMS, r.Speedup)
			}
			fmt.Println(line)
		}
		if sb.GOMAXPROCS < 2 {
			fmt.Println("note: single-core host — sharded timings measure overhead, not speedup")
		}
	}
	if tb := snap.Trace; tb != nil {
		fmt.Printf("trace @ %d flows: off %.0f ms, on %.0f ms (%+.1f%% recording overhead)\n",
			tb.Flows, tb.OffMS, tb.OnMS, tb.OverheadPct)
	}
	if te := snap.TE; te != nil {
		fmt.Printf("te @ %d flows: off %.0f ms, on %.0f ms (%+.1f%% control-loop overhead), failover %.0f ns/op\n",
			te.Flows, te.OffMS, te.OnMS, te.OverheadPct, te.FailoverNsOp)
	}
	if cb := snap.CtrlScale; cb != nil {
		fmt.Printf("ctrl: arbitrator update %.0f ns/op (%.1fM updates/sec)\n",
			cb.UpdateNsOp, cb.UpdatesPerSec/1e6)
		for _, a := range cb.Arms {
			fmt.Printf("ctrl %s @ %d racks, %d flows: %.0f ms wall, %d ctrl messages, %d KB ctrl bytes\n",
				a.Name, cb.Racks, cb.Flows, a.WallMS, a.CtrlMessages, a.CtrlBytes>>10)
		}
	}
}

// benchCtrl micro-benchmarks one arbitration book's refresh rate —
// the per-arbitrator messages/sec ceiling — then runs one ctrlscale
// point per control-plane arm (multi-level hierarchy vs centralized)
// and scrapes its control traffic and per-level mean control RTT.
func benchCtrl(flows, racks int) *CtrlBench {
	var now sim.Time
	a := arbitration.NewArbitrator(0, 10*netem.Gbps, 8, 40*netem.Mbps,
		300*sim.Microsecond, func() sim.Time { return now })
	const book = 64
	for i := 0; i < book; i++ {
		a.Update(pkt.FlowID(i+1), int64(i), 100*netem.Mbps)
	}
	const iters = 500_000
	start := time.Now()
	for i := 0; i < iters; i++ {
		now = now.Add(sim.Microsecond)
		a.Update(pkt.FlowID(i%book+1), int64(i), 100*netem.Mbps)
	}
	nsOp := float64(time.Since(start).Nanoseconds()) / iters

	cb := &CtrlBench{Flows: flows, Racks: racks,
		UpdateNsOp: nsOp, UpdatesPerSec: 1e9 / nsOp}
	arms := []struct {
		name string
		opt  experiments.PASEOptions
	}{
		{"hierarchy", experiments.PASEOptions{}},
		{"central", experiments.PASEOptions{Central: true}},
	}
	for _, arm := range arms {
		cfg := experiments.PointConfig{
			Protocol: experiments.PASE,
			Scenario: experiments.Scenario(fmt.Sprintf("%s-%d", experiments.CtrlScale, racks)),
			Load:     0.6, Seed: 1, NumFlows: flows, Obs: true,
			PASE: arm.opt,
		}
		wallStart := time.Now()
		r := experiments.RunPoint(cfg)
		rec := CtrlArm{
			Name:   arm.name,
			WallMS: float64(time.Since(wallStart).Microseconds()) / 1000,
		}
		if r.Obs != nil {
			rec.CtrlMessages = r.Obs.Counters["arb/messages"]
			rec.CtrlBytes = r.Obs.Counters["arb/bytes"]
			for d := 0; ; d++ {
				h, ok := r.Obs.Histograms[fmt.Sprintf("arb/rtt/level%d", d)]
				if !ok {
					break
				}
				mean := 0.0
				if h.Count > 0 {
					mean = float64(h.Sum) / float64(h.Count)
				}
				rec.LevelRTTNs = append(rec.LevelRTTNs, mean)
			}
		}
		cb.Arms = append(cb.Arms, rec)
	}
	return cb
}

// benchTE times the fault-free te-failover point with the routing
// control loop off and on (best of reps), and micro-benchmarks one
// RouteTable failover cycle: uplink down (copy-on-write epoch swap),
// one detoured lookup, uplink back up.
func benchTE(flows, reps int) *TEBench {
	cfg := experiments.PointConfig{
		Protocol: experiments.DCTCP, Scenario: experiments.TEFailover,
		Load: 0.5, Seed: 1, NumFlows: flows,
	}
	best := func(c experiments.PointConfig) float64 {
		min := 0.0
		for i := 0; i < reps; i++ {
			start := time.Now()
			experiments.RunPoint(c)
			if w := float64(time.Since(start).Microseconds()) / 1000; i == 0 || w < min {
				min = w
			}
		}
		return min
	}
	off := best(cfg)
	looped := cfg
	looped.Route = route.Config{Reroute: true, TE: true}
	on := best(looped)

	const spines, racks = 4, 8
	ports := make([]int, spines)
	for s := range ports {
		ports[s] = s
	}
	rt := topology.NewRouteTable(0, ports, racks)
	const iters = 200_000
	start := time.Now()
	for i := 0; i < iters; i++ {
		s := i % spines
		rt.SetUplink(s, true)
		rt.Pick(i%racks, pkt.FlowID(i))
		rt.SetUplink(s, false)
	}
	failover := float64(time.Since(start).Nanoseconds()) / iters

	return &TEBench{Flows: flows, Reps: reps, OffMS: off, OnMS: on,
		OverheadPct: 100 * (on - off) / off, FailoverNsOp: failover}
}

// benchTrace times one fig-9a-style point with the flight recorder off
// and on, best-of-reps to damp scheduler noise.
func benchTrace(flows, reps int) *TraceBench {
	cfg := experiments.PointConfig{
		Protocol: experiments.DCTCP, Scenario: experiments.LeftRight,
		Load: 0.5, Seed: 1, NumFlows: flows,
	}
	best := func(c experiments.PointConfig) float64 {
		min := 0.0
		for i := 0; i < reps; i++ {
			start := time.Now()
			experiments.RunPoint(c)
			if w := float64(time.Since(start).Microseconds()) / 1000; i == 0 || w < min {
				min = w
			}
		}
		return min
	}
	off := best(cfg)
	traced := cfg
	traced.Trace = experiments.TraceConfig{Spans: true}
	on := best(traced)
	return &TraceBench{Flows: flows, Reps: reps, OffMS: off, OnMS: on,
		OverheadPct: 100 * (on - off) / off}
}

// benchSharded times the serial engine against each shard count on
// three workloads: a figure-9a-style stored point (DCTCP left-right),
// a streaming scale point on the wide leaf-spine fabric, and an
// ExpressPass highspeed-figure point (credit pacing keeps every queue
// shallow, so its event mix differs sharply from the window-based
// transports and pins the credit plane's cost). Each sharded
// run's summary is checked against the serial run — the contract is
// byte-identical results, so a mismatch fails the snapshot.
func benchSharded(scaleFlows int, counts []int) *ShardBench {
	sb := &ShardBench{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	points := []struct {
		name string
		cfg  experiments.PointConfig
	}{
		{"fig9a-point", experiments.PointConfig{
			Protocol: experiments.DCTCP, Scenario: experiments.LeftRight,
			Load: 0.5, Seed: 1, NumFlows: 2000,
		}},
		{"leaf-spine-wide-stream", experiments.PointConfig{
			Protocol: experiments.DCTCP, Scenario: experiments.LeafSpineWide,
			Load: 0.6, Seed: 1, NumFlows: scaleFlows, Stream: true,
		}},
		{"expresspass-highspeed", experiments.PointConfig{
			Protocol: experiments.ExpressPass, Scenario: experiments.Highspeed100,
			Load: 0.6, Seed: 1, NumFlows: 2000,
		}},
	}
	for _, p := range points {
		rec := ShardPoint{Name: p.name, Flows: p.cfg.NumFlows}
		start := time.Now()
		serial := experiments.RunPoint(p.cfg)
		rec.SerialMS = float64(time.Since(start).Microseconds()) / 1000
		for _, n := range counts {
			cfg := p.cfg
			cfg.Shards = n
			start = time.Now()
			r := experiments.RunPoint(cfg)
			wall := float64(time.Since(start).Microseconds()) / 1000
			if r.Summary != serial.Summary {
				fmt.Fprintf(os.Stderr, "benchsnap: sharded %s @ %d shards diverged from serial:\n%+v\n%+v\n",
					p.name, n, serial.Summary, r.Summary)
				os.Exit(1)
			}
			rec.Runs = append(rec.Runs, ShardTiming{
				Shards: n, WallMS: wall, Speedup: rec.SerialMS / wall,
			})
		}
		sb.Points = append(sb.Points, rec)
	}
	return sb
}

// benchEngine measures the simulator hot path in-process: the
// steady-state schedule+fire cycle and schedule+cancel churn, the same
// shapes as the internal/sim benchmarks.
func benchEngine() EngineBench {
	const iters = 2_000_000
	fn := func() {}

	e := sim.NewEngine()
	const depth = 512
	for i := 0; i < depth; i++ {
		e.Schedule(sim.Duration(i)*sim.Microsecond, fn)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		e.Schedule(depth*sim.Microsecond, fn)
		e.Step()
	}
	fire := float64(time.Since(start).Nanoseconds()) / iters

	e2 := sim.NewEngine()
	start = time.Now()
	for i := 0; i < iters; i++ {
		e2.Schedule(sim.Millisecond, fn).Stop()
	}
	churn := float64(time.Since(start).Nanoseconds()) / iters

	return EngineBench{ScheduleFireNsOp: fire, TimerChurnNsOp: churn}
}

// benchMemory runs the same simulation point with the stored collector
// and the streaming sink, recording total allocation volume and the
// live heap delta once the run settles (result still referenced, so
// stored mode's per-flow records count against it).
func benchMemory(flows int) *MemBench {
	run := func(stream bool) (alloc, retained uint64) {
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		res := experiments.RunPoint(experiments.PointConfig{
			Protocol: experiments.DCTCP, Scenario: experiments.IntraRack,
			Load: 0.6, Seed: 1, NumFlows: flows, Stream: stream,
		})
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		runtime.GC()
		var settled runtime.MemStats
		runtime.ReadMemStats(&settled)
		alloc = after.TotalAlloc - before.TotalAlloc
		if settled.HeapAlloc > before.HeapAlloc {
			retained = settled.HeapAlloc - before.HeapAlloc
		}
		runtime.KeepAlive(res)
		return alloc, retained
	}
	m := &MemBench{Flows: flows}
	m.StoredAllocBytes, m.StoredRetainedBytes = run(false)
	m.StreamAllocBytes, m.StreamRetainedBytes = run(true)
	return m
}
