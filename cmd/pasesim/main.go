// Command pasesim runs one simulation point — a (protocol, scenario,
// load) triple — and prints the headline metrics the paper reports.
//
// Examples:
//
//	pasesim -protocol PASE -scenario left-right -load 0.7
//	pasesim -protocol pFabric -scenario worker-agg -load 0.8 -cdf
//	pasesim -protocol PASE -scenario left-right -load 0.9 -local-only
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"pase"
)

func main() {
	var (
		protocol  = flag.String("protocol", "PASE", "transport: DCTCP, D2TCP, L2DCT, pFabric, PDQ, PASE")
		scenario  = flag.String("scenario", "intra-rack", "scenario: left-right, intra-rack, intra-rack-large, worker-agg, deadline, testbed")
		load      = flag.Float64("load", 0.7, "offered load in (0,1]")
		flows     = flag.Int("flows", 2000, "number of foreground flows")
		seed      = flag.Uint64("seed", 1, "workload seed")
		seeds     = flag.Int("seeds", 1, "run this many consecutive seeds and report each plus the mean")
		parallel  = flag.Int("parallel", 0, "seed runs executed concurrently (0 = one per CPU, 1 = serial)")
		cdf       = flag.Bool("cdf", false, "print the FCT CDF")
		localOnly = flag.Bool("local-only", false, "PASE: arbitrate access links only")
		noPrune   = flag.Bool("no-pruning", false, "PASE: disable early pruning")
		noDeleg   = flag.Bool("no-delegation", false, "PASE: disable delegation")
		numQueues = flag.Int("queues", 0, "PASE: switch priority queues (default 8)")
		noRefRate = flag.Bool("no-refrate", false, "PASE: ignore the reference rate (PASE-DCTCP)")
		noProbing = flag.Bool("no-probing", false, "PASE: disable probe-based recovery")
		flowLog   = flag.String("flowlog", "", "write a per-flow TSV log to this file")
	)
	flag.Parse()

	cfg := pase.SimConfig{
		IncludeFlowLog: *flowLog != "",
		Protocol:       pase.Protocol(*protocol),
		Scenario:       pase.Scenario(*scenario),
		Load:           *load,
		NumFlows:       *flows,
		Seed:           *seed,
		PASE: pase.PASEOptions{
			LocalOnly:      *localOnly,
			NoPruning:      *noPrune,
			NoDelegation:   *noDeleg,
			NumQueues:      *numQueues,
			DisableRefRate: *noRefRate,
			DisableProbing: *noProbing,
		},
	}

	if *seeds > 1 {
		reps, err := pase.SimulateSeeds(cfg, *seeds, *parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pasesim:", err)
			os.Exit(1)
		}
		printSeedTable(cfg, *seed, reps)
		return
	}

	rep, err := pase.Simulate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pasesim:", err)
		os.Exit(1)
	}

	fmt.Printf("protocol        %s\n", *protocol)
	fmt.Printf("scenario        %s\n", *scenario)
	fmt.Printf("offered load    %.0f%%\n", *load*100)
	fmt.Printf("flows           %d (%d completed)\n", rep.Flows, rep.Completed)
	fmt.Printf("AFCT            %v\n", rep.AFCT)
	fmt.Printf("median FCT      %v\n", rep.P50)
	fmt.Printf("99th-pct FCT    %v\n", rep.P99)
	if rep.DeadlineFlows > 0 {
		fmt.Printf("app throughput  %.3f (%d deadline flows)\n", rep.AppThroughput, rep.DeadlineFlows)
	}
	fmt.Printf("loss rate       %.2f%%\n", rep.LossRate*100)
	fmt.Printf("retransmits     %d\n", rep.Retransmits)
	fmt.Printf("timeouts        %d\n", rep.Timeouts)
	if rep.CtrlMessages > 0 {
		fmt.Printf("ctrl messages   %d\n", rep.CtrlMessages)
	}
	if *cdf {
		fmt.Println("\nFCT CDF:")
		for _, p := range rep.CDF {
			fmt.Printf("%12v  %.4f\n", p.FCT, p.Fraction)
		}
	}
	if *flowLog != "" {
		if err := writeFlowLog(*flowLog, rep.FlowLog); err != nil {
			fmt.Fprintln(os.Stderr, "pasesim:", err)
			os.Exit(1)
		}
		fmt.Printf("flow log        %s (%d flows)\n", *flowLog, len(rep.FlowLog))
	}
}

// printSeedTable reports one row per seed plus the mean of the
// headline metrics.
func printSeedTable(cfg pase.SimConfig, firstSeed uint64, reps []*pase.Report) {
	fmt.Printf("protocol        %s\n", cfg.Protocol)
	fmt.Printf("scenario        %s\n", cfg.Scenario)
	fmt.Printf("offered load    %.0f%%\n", cfg.Load*100)
	fmt.Printf("flows/seed      %d\n\n", reps[0].Flows)
	fmt.Println("seed    completed     afct_us      p99_us   loss_pct")
	var afct, p99, loss float64
	for i, r := range reps {
		fmt.Printf("%-7d %9d %11d %11d %10.2f\n",
			firstSeed+uint64(i), r.Completed,
			r.AFCT.Microseconds(), r.P99.Microseconds(), r.LossRate*100)
		afct += float64(r.AFCT.Microseconds())
		p99 += float64(r.P99.Microseconds())
		loss += r.LossRate * 100
	}
	n := float64(len(reps))
	fmt.Printf("%-7s %9s %11.0f %11.0f %10.2f\n", "mean", "", afct/n, p99/n, loss/n)
}

// writeFlowLog dumps per-flow outcomes as TSV.
func writeFlowLog(path string, flows []pase.FlowOutcome) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "# id\tsize\tstart_us\tfct_us\tdeadline_us\tdone\tretx\ttimeouts")
	for _, fl := range flows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%v\t%d\t%d\n",
			fl.ID, fl.Size, fl.Start.Microseconds(), fl.FCT.Microseconds(),
			fl.Deadline.Microseconds(), fl.Done, fl.Retx, fl.Timeouts)
	}
	return w.Flush()
}
