// Command pasesim runs one simulation point — a (protocol, scenario,
// load) triple — and prints the headline metrics the paper reports.
// Optional traces expose the run's internals: -flowlog records flow
// lifecycle events (start/done/abort), -queuetrace samples every
// port's queue occupancy, -outcomes dumps per-flow results, and -obs
// writes a run manifest with the merged observability snapshot.
//
// Examples:
//
//	pasesim -protocol PASE -scenario left-right -load 0.7
//	pasesim -protocol pFabric -scenario worker-agg -load 0.8 -cdf
//	pasesim -protocol PASE -scenario left-right -load 0.9 -local-only
//	pasesim -protocol DCTCP -load 0.8 -flowlog flows.tsv -queuetrace q.tsv
//	pasesim -protocol PASE -load 0.7 -obs -manifest run.json
//	pasesim -protocol DCTCP -scenario leaf-spine -load 0.6 -scale 1000000
//	pasesim -protocol ExpressPass -scenario incast-256 -load 0.7 -check
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pase"
	"pase/internal/cliutil"
)

func main() {
	var (
		protocol  = flag.String("protocol", "PASE", "transport: DCTCP, D2TCP, L2DCT, pFabric, PDQ, PASE, ExpressPass")
		scenario  = flag.String("scenario", "intra-rack", "scenario: left-right, intra-rack, intra-rack-large, worker-agg, deadline, testbed, leaf-spine, leaf-spine-wide, te-failover, highspeed-10, highspeed-40, highspeed-100, highspeed-shallow, incast-64, incast-256, ctrlscale[-<racks>]")
		load      = flag.Float64("load", 0.7, "offered load in (0,1]")
		flows     = flag.Int("flows", 2000, "number of foreground flows")
		seed      = flag.Uint64("seed", 1, "workload seed")
		seeds     = flag.Int("seeds", 1, "run this many consecutive seeds and report each plus the mean")
		parallel  = flag.Int("parallel", 0, "seed runs executed concurrently (0 = one per CPU, 1 = serial)")
		cdf       = flag.Bool("cdf", false, "print the FCT CDF")
		localOnly = flag.Bool("local-only", false, "PASE: arbitrate access links only")
		noPrune   = flag.Bool("no-pruning", false, "PASE: disable early pruning")
		noDeleg   = flag.Bool("no-delegation", false, "PASE: disable delegation")
		numQueues = flag.Int("queues", 0, "PASE: switch priority queues (default 8)")
		noRefRate = flag.Bool("no-refrate", false, "PASE: ignore the reference rate (PASE-DCTCP)")
		noProbing = flag.Bool("no-probing", false, "PASE: disable probe-based recovery")
		ctrl      = flag.String("ctrl", "", `PASE control plane: "hierarchy" (default) or "central" (single-controller comparison arm)`)
		racks     = flag.Int("racks", 0, "shortcut for -scenario ctrlscale-<racks>: the control-plane-at-scale fabric with this many racks")
		fanOut    = flag.Int("hier-fanout", 0, "PASE: aggregation-tree fan-out of the deep arbitration hierarchy (0 = scenario default)")
		shardsTop = flag.Int("hier-shards", 0, "PASE: replicated root shards of the deep arbitration hierarchy (0 = scenario default)")
		flowLog   = flag.String("flowlog", "", "write the flow event trace (start/done/abort) as TSV to this file")
		queueLog  = flag.String("queuetrace", "", "write sampled queue occupancies as TSV to this file")
		queueInt  = flag.Duration("queueinterval", 100*time.Microsecond, "queue sampling interval for -queuetrace")
		traceOut  = flag.String("trace", "", "write the span-based flight recording as Perfetto trace-event JSON to this file (inspect with pasetrace or ui.perfetto.dev)")
		traceN    = flag.Int("trace-sample", 0, "keep 1 in N flow traces (0/1 = all; misbehaving flows are always kept)")
		traceSp   = flag.Bool("trace-spill", false, "stream the -trace output as flows complete (O(in-flight) memory; forces the serial engine)")
		outcomes  = flag.String("outcomes", "", "write per-flow outcomes (size, fct, deadline, retx) as TSV to this file")
		faultSpec = flag.String("faults", "", `fault-injection plan, e.g. "loss:link=*,class=data,rate=0.01; ctrl:drop=0.2"`)
		reroute   = flag.Bool("reroute", false, "leaf-spine fabrics: reroute around failed fabric links (reacts to -faults link outages)")
		teFlag    = flag.Bool("te", false, "leaf-spine fabrics: periodic traffic engineering, shifting hot ECMP buckets off loaded uplinks")
		teEpoch   = flag.Duration("te-epoch", 0, "TE decision period (0 = 1ms default)")
		abortAft  = flag.Duration("abort-after", 0, "abort flows making no forward progress for this long (0 = never; aborted flows are excluded from AFCT)")
		stream    = flag.Bool("stream", false, "bounded-memory streaming run: iterator arrivals, recycled flow state, sketch quantiles")
		shards    = flag.Int("shards", 0, "engine shards for the run (0/1 = serial; results and traces byte-identical at any setting; PASE/PDQ fall back to serial)")
		scale     = flag.Int("scale", 0, "shortcut for a large streaming run: implies -stream with this many flows")
		obs       = flag.Bool("obs", false, "collect run observability and write a manifest (see -manifest)")
		chkFlag   = flag.Bool("check", false, "run with the runtime invariant checker; exit 1 on any violation")
		manifest  = flag.String("manifest", "", "manifest output path (implies -obs; default pasesim.manifest.json when -obs is set)")
		progress  = flag.Bool("progress", true, "live progress meter on stderr for multi-seed runs")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *manifest != "" {
		*obs = true
	}
	if *obs && *manifest == "" {
		*manifest = "pasesim.manifest.json"
	}
	if *scale > 0 {
		*stream = true
		*flows = *scale
	}
	if *stream && *outcomes != "" {
		fail(fmt.Errorf("-outcomes needs per-flow records, which streaming runs do not keep; drop -stream/-scale"))
	}
	if *traceSp && *traceOut == "" {
		fail(fmt.Errorf("-trace-spill needs -trace <file>"))
	}
	if *traceSp && *shards > 1 {
		fail(fmt.Errorf("-trace-spill streams to a single writer and needs the serial engine; drop -shards"))
	}

	cfg := pase.SimConfig{
		IncludeFlowLog: *outcomes != "",
		Protocol:       pase.Protocol(*protocol),
		Scenario:       pase.Scenario(*scenario),
		Load:           *load,
		NumFlows:       *flows,
		Seed:           *seed,
		Obs:            *obs,
		Check:          *chkFlag,
		Stream:         *stream,
		Shards:         *shards,
		Reroute:        *reroute,
		TE:             *teFlag,
		TEEpoch:        *teEpoch,
		AbortAfter:     *abortAft,
		FlowTrace:      *flowLog != "",
		SpanTrace:      *traceOut != "",
		TraceSampleN:   *traceN,
		Ctrl:           *ctrl,
		Racks:          *racks,
		PASE: pase.PASEOptions{
			LocalOnly:      *localOnly,
			NoPruning:      *noPrune,
			NoDelegation:   *noDeleg,
			NumQueues:      *numQueues,
			DisableRefRate: *noRefRate,
			DisableProbing: *noProbing,
			HierFanOut:     *fanOut,
			HierTopShards:  *shardsTop,
		},
	}
	if *queueLog != "" || *traceOut != "" {
		// -trace also samples queues: the occupancies become counter
		// tracks in the Perfetto output.
		cfg.QueueTrace = *queueInt
	}
	if *faultSpec != "" {
		plan, err := pase.ParseFaults(*faultSpec)
		if err != nil {
			fail(err)
		}
		cfg.Faults = plan
	}

	// Spill mode opens the outputs up front: the trace streams while
	// the run executes instead of being written afterwards.
	var spills []func() error
	openSpill := func(path string) io.Writer {
		f, err := os.Create(path)
		if err != nil {
			fail(err)
		}
		w := bufio.NewWriter(f)
		spills = append(spills, func() error {
			if err := w.Flush(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		})
		return w
	}
	if *traceSp {
		cfg.TraceSpill = openSpill(*traceOut)
	}
	flowLogSpills := *stream && *flowLog != "" && *shards <= 1
	if flowLogSpills {
		cfg.FlowTraceSpill = openSpill(*flowLog)
	}

	stopCPU, err := cliutil.StartCPUProfile(*cpuProf)
	if err != nil {
		fail(err)
	}
	defer stopCPU()

	started := time.Now()
	var reps []*pase.Report
	if *seeds > 1 {
		if *flowLog != "" || *queueLog != "" || *outcomes != "" || *traceOut != "" {
			fail(fmt.Errorf("-flowlog/-queuetrace/-outcomes/-trace need a single run; drop -seeds"))
		}
		meter := cliutil.NewProgress(fmt.Sprintf("%s @ %.0f%%", *protocol, *load*100), *progress)
		cfg.Progress = meter.Update
		reps, err = pase.SimulateSeeds(cfg, *seeds, *parallel)
		meter.Done()
		if err != nil {
			fail(err)
		}
		printSeedTable(cfg, *seed, reps)
	} else {
		rep, err := pase.Simulate(cfg)
		if err != nil {
			fail(err)
		}
		reps = []*pase.Report{rep}
		printReport(cfg, rep, *cdf)
		for _, fin := range spills {
			if err := fin(); err != nil {
				fail(err)
			}
		}
		if *flowLog != "" {
			if flowLogSpills {
				fmt.Printf("flow trace      %s (streamed)\n", *flowLog)
			} else {
				if err := writeTo(*flowLog, rep.WriteFlowTrace); err != nil {
					fail(err)
				}
				fmt.Printf("flow trace      %s (%d events)\n", *flowLog, rep.FlowTraceLen())
			}
		}
		if *traceOut != "" {
			if *traceSp {
				fmt.Printf("span trace      %s (streamed)\n", *traceOut)
			} else {
				if err := writeTo(*traceOut, rep.WritePerfetto); err != nil {
					fail(err)
				}
				fmt.Printf("span trace      %s (%d flows, digest %016x)\n",
					*traceOut, rep.SpanTraceLen(), rep.TraceDigest())
			}
		}
		if *queueLog != "" {
			if err := writeTo(*queueLog, rep.WriteQueueTrace); err != nil {
				fail(err)
			}
			fmt.Printf("queue trace     %s (%d samples, every %v)\n", *queueLog, rep.QueueTraceLen(), *queueInt)
		}
		if *outcomes != "" {
			if err := writeFlowOutcomes(*outcomes, rep.FlowLog); err != nil {
				fail(err)
			}
			fmt.Printf("flow outcomes   %s (%d flows)\n", *outcomes, len(rep.FlowLog))
		}
	}

	if *chkFlag {
		var total int64
		var details []string
		for _, r := range reps {
			total += r.Violations
			details = append(details, r.ViolationDetails...)
		}
		if total > 0 {
			fmt.Fprintf(os.Stderr, "pasesim: %d invariant violations\n", total)
			for _, d := range details {
				fmt.Fprintln(os.Stderr, "  ", d)
			}
			os.Exit(1)
		}
		fmt.Println("invariants      clean")
	}

	if *obs {
		man := pase.NewSimManifest("pasesim", cfg, reps, *parallel, started, time.Since(started))
		if err := writeTo(*manifest, man.Write); err != nil {
			fail(err)
		}
		fmt.Printf("manifest        %s\n", *manifest)
	}
	if err := cliutil.WriteMemProfile(*memProf); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pasesim:", err)
	os.Exit(1)
}

// printReport dumps one run's headline metrics.
func printReport(cfg pase.SimConfig, rep *pase.Report, cdf bool) {
	fmt.Printf("protocol        %s\n", cfg.Protocol)
	fmt.Printf("scenario        %s\n", cfg.Scenario)
	fmt.Printf("offered load    %.0f%%\n", cfg.Load*100)
	fmt.Printf("flows           %d (%d completed)\n", rep.Flows, rep.Completed)
	if rep.Aborted > 0 {
		fmt.Printf("aborted         %d (excluded from AFCT)\n", rep.Aborted)
	}
	fmt.Printf("AFCT            %v\n", rep.AFCT)
	fmt.Printf("median FCT      %v\n", rep.P50)
	fmt.Printf("99th-pct FCT    %v\n", rep.P99)
	if rep.DeadlineFlows > 0 {
		fmt.Printf("app throughput  %.3f (%d deadline flows)\n", rep.AppThroughput, rep.DeadlineFlows)
	}
	fmt.Printf("loss rate       %.2f%%\n", rep.LossRate*100)
	fmt.Printf("retransmits     %d\n", rep.Retransmits)
	fmt.Printf("timeouts        %d\n", rep.Timeouts)
	if rep.CtrlMessages > 0 {
		fmt.Printf("ctrl messages   %d\n", rep.CtrlMessages)
	}
	if cdf {
		fmt.Println("\nFCT CDF:")
		for _, p := range rep.CDF {
			fmt.Printf("%12v  %.4f\n", p.FCT, p.Fraction)
		}
	}
}

// printSeedTable reports one row per seed plus the mean of the
// headline metrics.
func printSeedTable(cfg pase.SimConfig, firstSeed uint64, reps []*pase.Report) {
	fmt.Printf("protocol        %s\n", cfg.Protocol)
	fmt.Printf("scenario        %s\n", cfg.Scenario)
	fmt.Printf("offered load    %.0f%%\n", cfg.Load*100)
	fmt.Printf("flows/seed      %d\n\n", reps[0].Flows)
	fmt.Println("seed    completed     afct_us      p99_us   loss_pct       retx   timeouts")
	var afct, p99, loss float64
	var retx, timeouts int64
	for i, r := range reps {
		fmt.Printf("%-7d %9d %11d %11d %10.2f %10d %10d\n",
			firstSeed+uint64(i), r.Completed,
			r.AFCT.Microseconds(), r.P99.Microseconds(), r.LossRate*100,
			r.Retransmits, r.Timeouts)
		afct += float64(r.AFCT.Microseconds())
		p99 += float64(r.P99.Microseconds())
		loss += r.LossRate * 100
		retx += r.Retransmits
		timeouts += r.Timeouts
	}
	n := float64(len(reps))
	fmt.Printf("%-7s %9s %11.0f %11.0f %10.2f %10d %10d\n",
		"mean", "", afct/n, p99/n, loss/n,
		retx/int64(len(reps)), timeouts/int64(len(reps)))
}

// writeTo creates path and streams fn into it.
func writeTo(path string, fn func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := fn(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeFlowOutcomes dumps per-flow outcomes as TSV.
func writeFlowOutcomes(path string, flows []pase.FlowOutcome) error {
	return writeTo(path, func(w io.Writer) error {
		fmt.Fprintln(w, "# id\tsize\tstart_us\tfct_us\tdeadline_us\tdone\taborted\tretx\ttimeouts")
		for _, fl := range flows {
			fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%v\t%v\t%d\t%d\n",
				fl.ID, fl.Size, fl.Start.Microseconds(), fl.FCT.Microseconds(),
				fl.Deadline.Microseconds(), fl.Done, fl.Aborted, fl.Retx, fl.Timeouts)
		}
		return nil
	})
}
