// Command pasetrace analyzes a Perfetto trace-event JSON file produced
// by pasesim -trace (or pase.Report.WritePerfetto). It validates the
// file against the exporter's schema — exiting 1 on anything
// malformed, so CI can gate on it — and prints the run's story: the
// top-N slowest flows with a critical-path breakdown (arbitration
// wait vs wire serialization vs queueing), control-plane latency
// tables per arbitration hierarchy level, and per-port queue peaks.
//
// Examples:
//
//	pasesim -protocol PASE -scenario left-right -trace t.json
//	pasetrace t.json
//	pasetrace -top 20 -queues 5 t.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
)

// event is one trace-event JSON object, as the exporter writes them.
type event struct {
	Ph   string          `json:"ph"`
	Pid  int             `json:"pid"`
	Tid  int64           `json:"tid"`
	Ts   float64         `json:"ts"` // µs with ns fractions
	Dur  float64         `json:"dur"`
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Args json.RawMessage `json:"args"`
}

type traceFile struct {
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
	TraceEvents     []event           `json:"traceEvents"`
}

type flowArgs struct {
	Src       int   `json:"src"`
	Dst       int   `json:"dst"`
	Size      int64 `json:"size"`
	Flagged   bool  `json:"flagged"`
	Aborted   bool  `json:"aborted"`
	Truncated int   `json:"truncated"`
}

type ctrlArgs struct {
	Outcome string `json:"outcome"`
	Level   int    `json:"level"`
}

type queueArgs struct {
	Pkts  int64 `json:"pkts"`
	Bytes int64 `json:"bytes"`
}

// flow accumulates one flow track's critical path.
type flow struct {
	id     int64
	args   flowArgs
	fctUS  float64
	waitUS float64 // wait-ctrl phase spans
	xferUS float64 // xfer qN phase spans
	marks  map[string]int
}

type levelStats struct {
	outcomes map[string]int
	okLatUS  []float64
}

type queueStats struct {
	peakPkts  int64
	peakBytes int64
	samples   int
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pasetrace: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	topN := flag.Int("top", 10, "slowest flows to break down")
	queueN := flag.Int("queues", 10, "queue tracks to list (by peak bytes)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pasetrace [-top N] [-queues N] <trace.json>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	raw, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var tf traceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		fail("%s: invalid JSON: %v", path, err)
	}
	if err := validate(&tf); err != nil {
		fail("%s: invalid trace: %v", path, err)
	}

	flows := map[int64]*flow{}
	levels := map[int]*levelStats{}
	queues := map[string]*queueStats{}
	for i := range tf.TraceEvents {
		ev := &tf.TraceEvents[i]
		switch {
		case ev.Cat == "flow" && ev.Ph == "X":
			var fa flowArgs
			if err := json.Unmarshal(ev.Args, &fa); err != nil {
				fail("%s: event %d: bad flow args: %v", path, i, err)
			}
			f := getFlow(flows, ev.Tid)
			f.args, f.fctUS = fa, ev.Dur
		case ev.Cat == "phase" && ev.Ph == "X":
			f := getFlow(flows, ev.Tid)
			if ev.Name == "wait-ctrl" {
				f.waitUS += ev.Dur
			} else {
				f.xferUS += ev.Dur
			}
		case ev.Cat == "mark" && ev.Ph == "i":
			getFlow(flows, ev.Tid).marks[ev.Name]++
		case ev.Cat == "ctrl" && ev.Ph == "X":
			var ca ctrlArgs
			if err := json.Unmarshal(ev.Args, &ca); err != nil {
				fail("%s: event %d: bad ctrl args: %v", path, i, err)
			}
			ls := levels[ca.Level]
			if ls == nil {
				ls = &levelStats{outcomes: map[string]int{}}
				levels[ca.Level] = ls
			}
			ls.outcomes[ca.Outcome]++
			if ca.Outcome == "ok" {
				ls.okLatUS = append(ls.okLatUS, ev.Dur)
			}
		case ev.Ph == "C":
			var qa queueArgs
			if err := json.Unmarshal(ev.Args, &qa); err != nil {
				fail("%s: event %d: bad counter args: %v", path, i, err)
			}
			qs := queues[ev.Name]
			if qs == nil {
				qs = &queueStats{}
				queues[ev.Name] = qs
			}
			qs.samples++
			if qa.Pkts > qs.peakPkts {
				qs.peakPkts = qa.Pkts
			}
			if qa.Bytes > qs.peakBytes {
				qs.peakBytes = qa.Bytes
			}
		}
	}

	nicBps, _ := strconv.ParseInt(tf.OtherData["nic_bps"], 10, 64)
	fmt.Printf("%s: proto %s, scenario %s, %d events, %d flows, %d queue tracks\n",
		path, tf.OtherData["proto"], tf.OtherData["scenario"],
		len(tf.TraceEvents), len(flows), len(queues))

	printSlowest(flows, *topN, nicBps)
	printCtrl(levels)
	printQueues(queues, *queueN)
}

func getFlow(m map[int64]*flow, id int64) *flow {
	f := m[id]
	if f == nil {
		f = &flow{id: id, marks: map[string]int{}}
		m[id] = f
	}
	return f
}

// validate enforces the exporter's schema so a truncated or hand-edited
// file fails loudly instead of producing silently-wrong tables.
func validate(tf *traceFile) error {
	if tf.DisplayTimeUnit != "ns" {
		return fmt.Errorf("displayTimeUnit %q, want \"ns\"", tf.DisplayTimeUnit)
	}
	if tf.OtherData["tool"] != "pase" {
		return fmt.Errorf("otherData.tool %q, want \"pase\"", tf.OtherData["tool"])
	}
	for _, k := range []string{"proto", "scenario", "nic_bps", "sample_n", "seed"} {
		if _, ok := tf.OtherData[k]; !ok {
			return fmt.Errorf("otherData missing %q", k)
		}
	}
	if len(tf.TraceEvents) == 0 {
		return fmt.Errorf("no trace events")
	}
	procs := map[int]bool{}
	for i := range tf.TraceEvents {
		ev := &tf.TraceEvents[i]
		switch ev.Ph {
		case "M":
			procs[ev.Pid] = true
		case "X", "i", "s", "f", "C":
		default:
			return fmt.Errorf("event %d: unknown phase %q", i, ev.Ph)
		}
		if ev.Ph != "M" && ev.Ts < 0 {
			return fmt.Errorf("event %d: negative timestamp", i)
		}
		if ev.Ph == "X" && ev.Dur < 0 {
			return fmt.Errorf("event %d: negative duration", i)
		}
	}
	for _, pid := range []int{1, 2, 3} {
		if !procs[pid] {
			return fmt.Errorf("missing process_name metadata for pid %d", pid)
		}
	}
	return nil
}

func printSlowest(flows map[int64]*flow, topN int, nicBps int64) {
	all := make([]*flow, 0, len(flows))
	for _, f := range flows {
		if f.fctUS > 0 { // orphan phase/mark tids guard
			all = append(all, f)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].fctUS != all[j].fctUS {
			return all[i].fctUS > all[j].fctUS
		}
		return all[i].id < all[j].id
	})
	if topN > len(all) {
		topN = len(all)
	}
	fmt.Printf("\nTop %d slowest flows (critical path):\n", topN)
	fmt.Printf("  %6s %6s %9s %12s %11s %11s %9s  %s\n",
		"flow", "src", "size_B", "fct_us", "wait-ctrl%", "serialize%", "queued%", "notes")
	for _, f := range all[:topN] {
		serialUS := 0.0
		if nicBps > 0 {
			serialUS = float64(f.args.Size) * 8 * 1e6 / float64(nicBps)
		}
		queuedUS := f.fctUS - f.waitUS - serialUS
		if queuedUS < 0 {
			queuedUS = 0
		}
		pct := func(v float64) float64 {
			if f.fctUS <= 0 {
				return 0
			}
			return 100 * v / f.fctUS
		}
		notes := ""
		if f.args.Aborted {
			notes += " aborted"
		}
		if f.args.Flagged {
			notes += " flagged"
		}
		keys := make([]string, 0, len(f.marks))
		for k := range f.marks {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			notes += fmt.Sprintf(" %s×%d", k, f.marks[k])
		}
		fmt.Printf("  %6d %6d %9d %12.3f %10.1f%% %10.1f%% %8.1f%% %s\n",
			f.id, f.args.Src, f.args.Size, f.fctUS,
			pct(f.waitUS), pct(serialUS), pct(queuedUS), notes)
	}
}

func printCtrl(levels map[int]*levelStats) {
	if len(levels) == 0 {
		fmt.Printf("\nControl plane: no arbitration spans (protocol without an arbitrator, or sampled out).\n")
		return
	}
	lvls := make([]int, 0, len(levels))
	for l := range levels {
		lvls = append(lvls, l)
	}
	sort.Ints(lvls)
	fmt.Printf("\nControl-plane latency by hierarchy level:\n")
	fmt.Printf("  %5s %8s %8s %8s %8s %10s %10s %10s\n",
		"level", "ok", "reqdrop", "respdrop", "dead", "p50_us", "p99_us", "mean_us")
	for _, l := range lvls {
		ls := levels[l]
		p50, p99, mean := latStats(ls.okLatUS)
		fmt.Printf("  %5d %8d %8d %8d %8d %10.3f %10.3f %10.3f\n",
			l, ls.outcomes["ok"], ls.outcomes["req_dropped"],
			ls.outcomes["resp_dropped"], ls.outcomes["dead_arb"],
			p50, p99, mean)
	}
}

func latStats(lat []float64) (p50, p99, mean float64) {
	if len(lat) == 0 {
		return 0, 0, 0
	}
	s := append([]float64(nil), lat...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	q := func(f float64) float64 { return s[int(f*float64(len(s)-1))] }
	return q(0.5), q(0.99), sum / float64(len(s))
}

func printQueues(queues map[string]*queueStats, queueN int) {
	if len(queues) == 0 {
		fmt.Printf("\nQueues: no occupancy samples (run without queue sampling).\n")
		return
	}
	names := make([]string, 0, len(queues))
	for n := range queues {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := queues[names[i]], queues[names[j]]
		if a.peakBytes != b.peakBytes {
			return a.peakBytes > b.peakBytes
		}
		return names[i] < names[j]
	})
	if queueN > len(names) {
		queueN = len(names)
	}
	fmt.Printf("\nQueue peaks (top %d of %d ports by bytes):\n", queueN, len(names))
	fmt.Printf("  %-24s %10s %12s %9s\n", "port", "peak_pkts", "peak_bytes", "samples")
	for _, n := range names[:queueN] {
		q := queues[n]
		fmt.Printf("  %-24s %10d %12d %9d\n", n, q.peakPkts, q.peakBytes, q.samples)
	}
}
