// Command paper regenerates the evaluation tables and figures of
// "Friends, not Foes" (SIGCOMM 2014): for every figure it runs the
// corresponding protocols across the load sweep on the corresponding
// scenario and prints the same series the paper plots.
//
// Examples:
//
//	paper -list
//	paper -fig 9a
//	paper -fig 10c -flows 4000
//	paper -all -flows 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"pase"
)

func main() {
	var (
		figID = flag.String("fig", "", "figure id to regenerate (1, 2, 3, 4, 9a..13b, probing)")
		all   = flag.Bool("all", false, "regenerate every figure")
		list  = flag.Bool("list", false, "list the available figures")
		flows = flag.Int("flows", 2000, "foreground flows per simulation point")
		seed  = flag.Uint64("seed", 1, "workload seed")
		seeds = flag.Int("seeds", 1, "average each sweep point over this many seeds")
		loads    = flag.String("loads", "", "comma-separated load override, e.g. 0.2,0.5,0.8")
		out      = flag.String("out", "", "also write each figure as TSV into this directory")
		parallel = flag.Int("parallel", 0, "simulation points run concurrently (0 = one per CPU, 1 = serial; output is identical at any setting)")
	)
	flag.Parse()

	if *list {
		for _, f := range pase.ListFigures() {
			fmt.Printf("%-8s %s\n", f.ID, f.Title)
		}
		return
	}

	opts := pase.FigureOpts{NumFlows: *flows, Seed: *seed, Seeds: *seeds, Parallelism: *parallel}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
	}
	if *loads != "" {
		for _, s := range strings.Split(*loads, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paper: bad load %q: %v\n", s, err)
				os.Exit(1)
			}
			opts.Loads = append(opts.Loads, v)
		}
	}

	var ids []string
	switch {
	case *all:
		for _, f := range pase.ListFigures() {
			ids = append(ids, f.ID)
		}
	case *figID != "":
		ids = []string{*figID}
	default:
		fmt.Fprintln(os.Stderr, "paper: need -fig <id>, -all, or -list")
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		fig, err := pase.RunFigure(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		fmt.Println(fig.Render())
		fmt.Printf("(%d flows/point, seed %d, took %v)\n\n", *flows, *seed, time.Since(start).Round(time.Millisecond))
		if *out != "" {
			path := filepath.Join(*out, "fig"+strings.ReplaceAll(id, "/", "_")+".tsv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paper:", err)
				os.Exit(1)
			}
			if err := fig.WriteTSV(f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "paper:", err)
				os.Exit(1)
			}
			f.Close()
		}
	}
}
