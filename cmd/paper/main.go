// Command paper regenerates the evaluation tables and figures of
// "Friends, not Foes" (SIGCOMM 2014): for every figure it runs the
// corresponding protocols across the load sweep on the corresponding
// scenario and prints the same series the paper plots. Each figure run
// also emits a JSON run manifest — parameters, git revision,
// wall-clock cost and the merged observability snapshot — next to the
// TSV output (or in the working directory when -out is unset).
//
// Examples:
//
//	paper -list
//	paper -fig 9a
//	paper -fig 10c -flows 4000
//	paper -all -flows 1000
//	paper -fig 9a -parallel 4 -cpuprofile cpu.out
//	paper -fig 9a -stream
//	paper -scale 1000000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"pase"
	"pase/internal/cliutil"
)

func main() {
	var (
		figID     = flag.String("fig", "", "figure id to regenerate (1, 2, 3, 4, 9a..13b, probing, task, leafspine, robust, scale, highspeed, te, ctrlscale)")
		all       = flag.Bool("all", false, "regenerate every figure")
		list      = flag.Bool("list", false, "list the available figures")
		flows     = flag.Int("flows", 2000, "foreground flows per simulation point")
		seed      = flag.Uint64("seed", 1, "workload seed")
		seeds     = flag.Int("seeds", 1, "average each sweep point over this many seeds")
		loads     = flag.String("loads", "", "comma-separated load override, e.g. 0.2,0.5,0.8")
		out       = flag.String("out", "", "write each figure's TSV and manifest into this directory (default: manifest only, working directory)")
		parallel  = flag.Int("parallel", 0, "simulation points run concurrently (0 = one per CPU, 1 = serial; output is identical at any setting)")
		obs       = flag.Bool("obs", true, "collect per-run observability and write fig<id>.manifest.json")
		chkFlag   = flag.Bool("check", false, "run every point with the runtime invariant checker; exit 1 on any violation")
		faultSpec = flag.String("faults", "", `fault-injection plan applied to every simulation point, e.g. "ctrl:drop=0.2"`)
		stream    = flag.Bool("stream", false, "run every point on the bounded-memory streaming path (sketch quantiles)")
		shards    = flag.Int("shards", 0, "engine shards per simulation point (0/1 = serial; output is identical at any setting; multiplies with -parallel)")
		traceOn   = flag.Bool("trace", false, "attach the span flight recorder to every point; trace/* retention counters and arb/rtt/* histograms land in the manifest snapshot")
		traceN    = flag.Int("trace-sample", 1, "with -trace, keep 1-in-N flow traces (violating/faulted flows always kept)")
		scale     = flag.Int("scale", 0, "shortcut for the scale figure: -fig scale -stream with this many flows at the sweep top")
		ctrl      = flag.String("ctrl", "", `restrict the ctrlscale figure's PASE arm: "hierarchy" or "central" (default: both arms)`)
		racks     = flag.Int("racks", 0, "restrict the ctrlscale figure to one rack count (default: full 16..2048 sweep)")
		progress  = flag.Bool("progress", true, "live progress meter on stderr")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *list {
		for _, f := range pase.ListFigures() {
			fmt.Printf("%-8s %s\n", f.ID, f.Title)
		}
		return
	}

	if *scale > 0 {
		*figID = "scale"
		*flows = *scale
		*stream = true
	}
	opts := pase.FigureOpts{NumFlows: *flows, Seed: *seed, Seeds: *seeds,
		Parallelism: *parallel, Obs: *obs, Check: *chkFlag, Stream: *stream,
		Shards: *shards, Trace: *traceOn, TraceSampleN: *traceN,
		Ctrl: *ctrl, Racks: *racks}
	if *faultSpec != "" {
		plan, err := pase.ParseFaults(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		opts.Faults = plan
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
	}
	if *loads != "" {
		for _, s := range strings.Split(*loads, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paper: bad load %q: %v\n", s, err)
				os.Exit(1)
			}
			opts.Loads = append(opts.Loads, v)
		}
	}

	var ids []string
	switch {
	case *all:
		for _, f := range pase.ListFigures() {
			ids = append(ids, f.ID)
		}
	case *figID != "":
		ids = []string{*figID}
	default:
		fmt.Fprintln(os.Stderr, "paper: need -fig <id>, -all, or -list")
		os.Exit(2)
	}

	stopCPU, err := cliutil.StartCPUProfile(*cpuProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
	defer stopCPU()

	for _, id := range ids {
		start := time.Now()
		meter := cliutil.NewProgress("fig "+id, *progress)
		figOpts := opts
		figOpts.Progress = meter.Update
		fig, err := pase.RunFigure(id, figOpts)
		meter.Done()
		if err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		wall := time.Since(start)
		if *chkFlag {
			if fig.Violations > 0 {
				fmt.Fprintf(os.Stderr, "paper: fig %s: %d invariant violations\n", id, fig.Violations)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "paper: fig %s: invariant checker clean (%d points)\n", id, fig.Points)
		}
		fmt.Println(fig.Render())
		fmt.Printf("(%d flows/point, seed %d, took %v)\n\n", *flows, *seed, wall.Round(time.Millisecond))
		base := "fig" + strings.ReplaceAll(id, "/", "_")
		if *out != "" {
			if err := writeFile(filepath.Join(*out, base+".tsv"), fig.WriteTSV); err != nil {
				fmt.Fprintln(os.Stderr, "paper:", err)
				os.Exit(1)
			}
		}
		if *obs {
			man := pase.NewRunManifest("paper", fig, figOpts, start, wall)
			dir := *out
			if dir == "" {
				dir = "."
			}
			path := filepath.Join(dir, base+".manifest.json")
			if err := writeFile(path, man.Write); err != nil {
				fmt.Fprintln(os.Stderr, "paper:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "paper: wrote %s\n", path)
		}
	}
	if err := cliutil.WriteMemProfile(*memProf); err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
}

// writeFile creates path and streams fn into it.
func writeFile(path string, fn func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
