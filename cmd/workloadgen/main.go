// Command workloadgen emits synthetic data-center flow traces — the
// same generators the simulator uses — as tab-separated values, for
// inspection or reuse by external tools.
//
// Example:
//
//	workloadgen -pattern all-to-all -hosts 20 -load 0.6 -flows 100
//	workloadgen -pattern left-right -hosts 160 -fanin 0 -deadlines
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"pase/internal/netem"
	"pase/internal/sim"
	"pase/internal/workload"
)

func main() {
	var (
		pattern   = flag.String("pattern", "all-to-all", "all-to-all or left-right")
		hosts     = flag.Int("hosts", 20, "number of hosts")
		load      = flag.Float64("load", 0.6, "offered load in (0,1]")
		flows     = flag.Int("flows", 100, "number of flows")
		seed      = flag.Uint64("seed", 1, "generator seed")
		minSize   = flag.Int64("min-size", 2000, "min flow size (bytes)")
		maxSize   = flag.Int64("max-size", 198000, "max flow size (bytes)")
		fanin     = flag.Int("fanin", 0, "workers per query (0 = independent flows)")
		deadlines = flag.Bool("deadlines", false, "assign U[5,25]ms deadlines")
		refGbps   = flag.Float64("ref-gbps", 0, "reference capacity (default hosts × 1 Gbps)")
		bg        = flag.Int("background", 0, "long-lived background flows")
	)
	flag.Parse()

	var pat workload.Pattern
	switch *pattern {
	case "all-to-all":
		pat = workload.AllToAll{Hosts: workload.HostRange(0, *hosts)}
	case "left-right":
		half := *hosts / 2
		pat = workload.LeftRight{
			Left:  workload.HostRange(0, half),
			Right: workload.HostRange(half, *hosts),
		}
	default:
		fmt.Fprintf(os.Stderr, "workloadgen: unknown pattern %q\n", *pattern)
		os.Exit(2)
	}

	ref := netem.BitRate(*refGbps * 1e9)
	if ref == 0 {
		ref = netem.BitRate(*hosts) * netem.Gbps
	}
	spec := workload.Spec{
		Pattern:         pat,
		Sizes:           workload.UniformSize{Min: *minSize, Max: *maxSize},
		Load:            *load,
		Reference:       ref,
		NumFlows:        *flows,
		Fanin:           *fanin,
		BackgroundFlows: *bg,
	}
	if *deadlines {
		spec.DeadlineMin = 5 * sim.Millisecond
		spec.DeadlineMax = 25 * sim.Millisecond
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "# id\tsrc\tdst\tsize_bytes\tstart_us\tdeadline_us\tbackground")
	for _, f := range spec.Generate(sim.NewRand(*seed), 1) {
		deadline := int64(0)
		if f.Deadline > 0 {
			deadline = int64(f.Deadline) / 1000
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%v\n",
			f.ID, f.Src, f.Dst, f.Size, int64(f.Start)/1000, deadline, f.Background)
	}
}
