package arbitration

import (
	"fmt"

	"pase/internal/check"
	"pase/internal/netem"
	"pase/internal/obs"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/topology"
)

// Params configures the control plane.
type Params struct {
	// NumQueues is the number of switch priority queues (Table 3: 8).
	NumQueues int
	// EarlyPruning stops propagating a flow's arbitration upward once
	// a lower-level arbitrator maps it below the top PruneQueues
	// queues (the paper finds the top two a good balance).
	EarlyPruning bool
	PruneQueues  int8
	// Delegation lets ToR-level arbitrators manage virtual slices of
	// the agg-core links, cutting a hop off inter-rack arbitration.
	Delegation bool
	// LocalOnly restricts arbitration to the end hosts' own access
	// links (the Figure 12a ablation).
	LocalOnly bool
	// Epoch is the arbitration recomputation period and the virtual
	// link refresh interval; it should be on the order of the fabric
	// RTT.
	Epoch sim.Duration
	// CtrlPerHop is the one-way latency of one control-message hop
	// (propagation + serialization + processing).
	CtrlPerHop sim.Duration
	// Hierarchy, when enabled, replaces the flat agg-core delegation
	// with a configurable multi-level virtual aggregation tree (depth
	// log_FanOut(racks)) so fabrics far wider than one aggregation
	// tier still arbitrate in a handful of hops. The zero value keeps
	// the classic 3-tier climb.
	Hierarchy HierarchyParams
	// Central switches the control plane to the fully centralized
	// comparison arm: one controller behind the core computes
	// whole-path allocations in a single serialized exchange
	// (Hierarchy, delegation and pruning are ignored).
	Central bool
	// CentralPerRequest is the central controller's per-request
	// service time (0 = CentralPerRequestDefault).
	CentralPerRequest sim.Duration
}

// DefaultParams returns the paper's configuration.
func DefaultParams() Params {
	return Params{
		NumQueues:    8,
		EarlyPruning: true,
		PruneQueues:  2,
		Delegation:   true,
		LocalOnly:    false,
		Epoch:        300 * sim.Microsecond,
		CtrlPerHop:   30 * sim.Microsecond,
	}
}

// Stats counts control-plane overhead.
type Stats struct {
	// Messages is the number of per-hop arbitration messages
	// (requests, responses, releases and delegation updates).
	Messages int64
	// Bytes is Messages × the control message wire size.
	Bytes int64
	// Setups, Refreshes, Releases count client operations.
	Setups    int64
	Refreshes int64
	Releases  int64
	// Pruned counts refreshes stopped by early pruning before
	// reaching the next level.
	Pruned int64
	// Delegated counts climb stops resolved at a delegated virtual
	// slice instead of the parent arbitrator.
	Delegated int64
	// PruneSavedMsgs counts the messages early pruning avoided
	// (two per hop not climbed).
	PruneSavedMsgs int64
	// SyncMessages counts the centralized arm's per-epoch link-state
	// and allocation re-sync messages (included in Messages).
	SyncMessages int64
}

// ControlFaults lets a fault injector interfere with arbitration
// message exchanges. DropRequest / DropResponse are consulted once per
// remote half-exchange (host-local access-link arbitration exchanges no
// network messages and is immune); CtrlExtraDelay adds latency to each
// surviving response. All methods may draw from the injector's private
// RNG stream.
type ControlFaults interface {
	DropRequest() bool
	DropResponse() bool
	CtrlExtraDelay() sim.Duration
}

// CtrlOutcome classifies how one arbitration half-exchange ended.
type CtrlOutcome uint8

const (
	// CtrlOK: the request climbed the hierarchy and the response was
	// scheduled after the modelled latency.
	CtrlOK CtrlOutcome = iota
	// CtrlReqDropped: the fault injector lost the request leg.
	CtrlReqDropped
	// CtrlRespDropped: the fault injector lost the response leg.
	CtrlRespDropped
	// CtrlDeadArb: the bottom-up walk hit a crashed arbitrator.
	CtrlDeadArb
)

// CtrlEvent describes one arbitration half-exchange for observers:
// which flow asked, which half, how far up the hierarchy the request
// climbed (Level: 0 = resolved at the host-local arbitrator), when it
// started, the modelled response latency (0 unless CtrlOK) and how it
// ended. The flight recorder consumes these as control-plane spans.
type CtrlEvent struct {
	Flow    pkt.FlowID
	SrcSide bool
	Level   int
	Start   sim.Time
	Latency sim.Duration
	Outcome CtrlOutcome
}

// CtrlLevels bounds the per-level RTT histograms: Level is the hop
// count past the host-local arbitrator, at most 2 in a 3-tier fabric
// (host→ToR→agg→core), so 4 leaves headroom.
const CtrlLevels = 4

// MaxCtrlLevels caps the per-level instruments when a deep hierarchy
// is configured: a fan-out-4 tree over 2048 racks climbs 7 hops, so 8
// covers every supported depth (deeper climbs clamp onto the last
// level).
const MaxCtrlLevels = 8

// System is the fabric-wide arbitration control plane.
type System struct {
	P   Params
	net *topology.Network
	eng *sim.Engine

	// Faults, when set, injects control-plane message loss and delay.
	Faults ControlFaults

	// OnCtrl, when set, observes every arbitration half-exchange
	// (including ones the fault injector killed). Nil — the default —
	// costs one pointer test per refresh half.
	OnCtrl func(ev CtrlEvent)

	inflight int64 // live (not yet released) client allocations

	o struct {
		rtt      [MaxCtrlLevels]*obs.Histogram
		msgs     [MaxCtrlLevels]*obs.Counter
		centralQ *obs.Histogram
		inflight *obs.Gauge
		reqDrop  *obs.Counter
		respDrop *obs.Counter
		dead     *obs.Counter
	}

	// arbs maps topology link ID -> arbitrator for flows that consult
	// the real (non-delegated) link.
	arbs map[int]*Arbitrator
	// virt maps (physical agg-core link ID, rack) -> the delegated
	// virtual-slice arbitrator owned by that rack's ToR arbitrator.
	virt map[virtKey]*Arbitrator
	// children maps a delegated physical link ID to its per-rack
	// virtual arbitrators, for share refresh.
	children map[int][]*Arbitrator
	// upTree/downTree, when Hierarchy is enabled, are the directional
	// multi-level virtual aggregation trees that replace the flat
	// delegation above the access links.
	upTree, downTree *Tree
	// central, when Central is set, is the single-controller arm.
	central *central
	// nlevels is how many per-level instruments this configuration
	// can reach; deeper climbs clamp onto nlevels-1.
	nlevels int

	Stats Stats
}

type virtKey struct {
	link int
	rack int
}

// NewSystem builds arbitrators for every directed link of the fabric
// and, when delegation is on, virtual-slice arbitrators for the
// agg-core links.
func NewSystem(net *topology.Network, p Params) *System {
	if p.NumQueues < 2 {
		panic("arbitration: NumQueues must be >= 2")
	}
	sys := &System{
		P:        p,
		net:      net,
		eng:      net.Eng,
		arbs:     make(map[int]*Arbitrator),
		virt:     make(map[virtKey]*Arbitrator),
		children: make(map[int][]*Arbitrator),
	}
	clock := sys.eng.Now
	baseRate := func(sim.Duration) netem.BitRate {
		return netem.BitRate(float64(pkt.MTU*8) / p.Epoch.Seconds())
	}(p.Epoch)
	for _, l := range net.Links {
		sys.arbs[l.ID] = NewArbitrator(l.ID, l.Capacity(), p.NumQueues, baseRate, p.Epoch, clock)
	}
	sys.nlevels = CtrlLevels
	switch {
	case p.Central:
		sys.central = &central{perReq: p.CentralPerRequest}
		if sys.central.perReq <= 0 {
			sys.central.perReq = CentralPerRequestDefault
		}
		sys.scheduleCentralSync()
	case p.Hierarchy.Enabled() && !p.LocalOnly && net.Cfg.Racks > 1 && len(net.Aggs) > 0:
		// Deep hierarchy: two directional virtual aggregation trees
		// sized from the fabric — a rack contributes its uplink-tier
		// capacity, every aggregate is bounded by the core bisection.
		var rackCap, topCap netem.BitRate
		isAgg := make(map[netem.Node]bool, len(net.Aggs))
		for _, a := range net.Aggs {
			isAgg[a] = true
		}
		for _, l := range net.Links {
			if l.Level == topology.LevelToRAgg && rackCap == 0 {
				rackCap = l.Capacity()
			}
			if l.Level == topology.LevelAggCore && isAgg[l.From] {
				topCap += l.Capacity()
			}
		}
		racks := net.Cfg.Racks
		sys.upTree = NewTree(p.Hierarchy, racks, rackCap, topCap, p.NumQueues, baseRate, p.Epoch, clock, TreeUpIDBase)
		sys.downTree = NewTree(p.Hierarchy, racks, rackCap, topCap, p.NumQueues, baseRate, p.Epoch, clock, TreeDownIDBase)
		sys.nlevels = sys.upTree.MaxDepth() + 1
		if sys.nlevels > MaxCtrlLevels {
			sys.nlevels = MaxCtrlLevels
		}
		if p.Delegation {
			sys.scheduleTreeShareRefresh()
		}
	case p.Delegation && len(net.Aggs) > 0:
		for _, l := range net.Links {
			if l.Level != topology.LevelAggCore {
				continue
			}
			racks := sys.racksUnderAggLink(l)
			share := netem.BitRate(int64(l.Capacity()) / int64(len(racks)))
			for _, rack := range racks {
				va := NewArbitrator(-l.ID, share, p.NumQueues, baseRate, p.Epoch, clock)
				sys.virt[virtKey{l.ID, rack}] = va
				sys.children[l.ID] = append(sys.children[l.ID], va)
			}
		}
		sys.scheduleShareRefresh()
	}
	return sys
}

// racksUnderAggLink lists the rack indices whose ToR arbitrators are
// children of the given agg-core link.
func (sys *System) racksUnderAggLink(l *topology.Link) []int {
	var agg int
	// Identify the aggregation switch on this link.
	for i, a := range sys.net.Aggs {
		if l.From == a || l.To == a {
			agg = i
			break
		}
	}
	var racks []int
	for r := 0; r < sys.net.Cfg.Racks; r++ {
		if r/sys.net.Cfg.RacksPerAgg == agg {
			racks = append(racks, r)
		}
	}
	return racks
}

// scheduleShareRefresh periodically resizes delegated virtual links in
// proportion to each child's top-queue demand, as §3.1.2 prescribes.
func (sys *System) scheduleShareRefresh() {
	sys.eng.Schedule(sys.P.Epoch, func() {
		for linkID, kids := range sys.children {
			// A crashed parent cannot answer share requests; children
			// keep their last shares until it restarts.
			if sys.arbs[linkID].Down() {
				continue
			}
			// An idle delegation pair exchanges nothing.
			busy := false
			for _, va := range kids {
				if va.Flows() > 0 {
					busy = true
					break
				}
			}
			if !busy {
				continue
			}
			capTotal := netem.BitRate(0)
			for _, l := range sys.net.Links {
				if l.ID == linkID {
					capTotal = l.Capacity()
					break
				}
			}
			demands := make([]netem.BitRate, len(kids))
			var sum netem.BitRate
			for i, va := range kids {
				d := va.AggregateTopDemand(sys.P.PruneQueues - 1)
				demands[i] = d
				sum += d
			}
			for i, va := range kids {
				if sum == 0 {
					va.SetCapacity(capTotal / netem.BitRate(len(kids)))
				} else {
					// Proportional share with a 10% floor so a quiet
					// rack can restart quickly. Float math: the
					// product of two multi-gigabit rates overflows
					// int64.
					share := netem.BitRate(float64(capTotal) * float64(demands[i]) / float64(sum))
					floor := capTotal / netem.BitRate(10*len(kids))
					if share < floor {
						share = floor
					}
					va.SetCapacity(share)
				}
				// Child publishes aggregates, parent returns shares.
				sys.countMessages(2)
			}
		}
		sys.scheduleShareRefresh()
	})
}

// scheduleTreeShareRefresh periodically resizes the deep hierarchy's
// delegated slices and root shards to demand — scheduleShareRefresh
// generalized to every level pair.
func (sys *System) scheduleTreeShareRefresh() {
	sys.eng.Schedule(sys.P.Epoch, func() {
		count := func(n int64) { sys.countMessages(n) }
		sys.upTree.RefreshShares(sys.P.PruneQueues, count)
		sys.downTree.RefreshShares(sys.P.PruneQueues, count)
		sys.scheduleTreeShareRefresh()
	})
}

// treeFor picks the directional tree a half-exchange climbs (nil when
// the deep hierarchy is not configured).
func (sys *System) treeFor(srcSide bool) *Tree {
	if srcSide {
		return sys.upTree
	}
	return sys.downTree
}

func (sys *System) countMessages(n int64) {
	sys.Stats.Messages += n
	sys.Stats.Bytes += n * pkt.CtrlSize
}

// countClimb charges one climb's request/response pair per hop and
// attributes them to the per-level message counters.
func (sys *System) countClimb(depth int) {
	sys.countMessages(int64(2 * depth))
	for d := 1; d <= depth; d++ {
		sys.o.msgs[sys.lvl(d)].Add(2)
	}
}

// countRelease charges a one-way release cascade of the given depth.
func (sys *System) countRelease(hops int) {
	sys.countMessages(int64(hops))
	for d := 1; d <= hops; d++ {
		sys.o.msgs[sys.lvl(d)].Add(1)
	}
}

// lvl clamps a climb depth onto the registered per-level instruments.
func (sys *System) lvl(d int) int {
	if d >= sys.nlevels {
		return sys.nlevels - 1
	}
	return d
}

// Instrument attaches control-plane observability to the system: the
// arbitration round-trip log2-histograms split by hierarchy level
// (arb/rtt/level<d>, nanoseconds), the live-allocation gauge
// (arb/inflight_allocs, current + high-watermark) and the fault
// outcome counters. A nil registry detaches (the default; every
// instrument is nil-safe).
func (sys *System) Instrument(reg *obs.Registry) {
	for d := 0; d < sys.nlevels; d++ {
		sys.o.rtt[d] = reg.Histogram(fmt.Sprintf("arb/rtt/level%d", d))
		sys.o.msgs[d] = reg.Counter(fmt.Sprintf("arb/msgs/level%d", d))
	}
	if sys.central != nil {
		sys.o.centralQ = reg.Histogram("arb/central/queue_ns")
	}
	sys.o.inflight = reg.Gauge("arb/inflight_allocs")
	sys.o.reqDrop = reg.Counter("arb/ctrl_req_dropped")
	sys.o.respDrop = reg.Counter("arb/ctrl_resp_dropped")
	sys.o.dead = reg.Counter("arb/ctrl_dead_arb")
}

// emitCtrl hands one half-exchange to the observer hook.
func (sys *System) emitCtrl(ev CtrlEvent) {
	if sys.OnCtrl != nil {
		sys.OnCtrl(ev)
	}
}

// AttachCheck installs a runtime invariant checker on every
// arbitrator of the system — physical links and delegated virtual
// slices alike. Nil detaches (the default).
func (sys *System) AttachCheck(c *check.Checker) {
	for _, a := range sys.arbs {
		a.AttachCheck(c)
	}
	for _, va := range sys.virt {
		va.AttachCheck(c)
	}
	if sys.upTree != nil {
		sys.upTree.AttachCheck(c)
		sys.downTree.AttachCheck(c)
	}
}

// Crash wipes the soft state of the arbitrator owning the given link
// (and any delegated virtual slices of it); -1 crashes every
// arbitrator in the fabric. Crashed arbitrators answer no requests
// until Restore.
func (sys *System) Crash(link int) {
	if link == -1 {
		for _, a := range sys.arbs {
			a.Crash()
		}
		for _, va := range sys.virt {
			va.Crash()
		}
		if sys.upTree != nil {
			sys.upTree.Crash()
			sys.downTree.Crash()
		}
		return
	}
	if a := sys.arbs[link]; a != nil {
		a.Crash()
	}
	for k, va := range sys.virt {
		if k.link == link {
			va.Crash()
		}
	}
}

// Restore brings crashed arbitrators back (empty); -1 restores all.
func (sys *System) Restore(link int) {
	if link == -1 {
		for _, a := range sys.arbs {
			a.Restore()
		}
		for _, va := range sys.virt {
			va.Restore()
		}
		if sys.upTree != nil {
			sys.upTree.Restore()
			sys.downTree.Restore()
		}
		return
	}
	if a := sys.arbs[link]; a != nil {
		a.Restore()
	}
	for k, va := range sys.virt {
		if k.link == link {
			va.Restore()
		}
	}
}

// Arbitrator exposes the per-link arbitrator (tests, inspection).
func (sys *System) Arbitrator(linkID int) *Arbitrator { return sys.arbs[linkID] }

// VirtualArbitrator exposes a delegated slice (tests).
func (sys *System) VirtualArbitrator(linkID, rack int) *Arbitrator {
	return sys.virt[virtKey{linkID, rack}]
}

// UpTree and DownTree expose the deep-hierarchy aggregation trees
// (nil unless Params.Hierarchy is enabled on a multi-rack fabric).
func (sys *System) UpTree() *Tree   { return sys.upTree }
func (sys *System) DownTree() *Tree { return sys.downTree }

// Centralized reports whether the system runs the centralized arm.
func (sys *System) Centralized() bool { return sys.central != nil }

// Client is the per-flow handle the PASE transport uses to obtain and
// refresh its priority queue and reference rate.
type Client struct {
	sys  *System
	flow pkt.FlowID
	src  pkt.NodeID
	dst  pkt.NodeID

	upPath   []*topology.Link
	downPath []*topology.Link

	haveSrc, haveDst bool
	srcHalf, dstHalf Decision

	released bool
	// OnUpdate is invoked whenever a half-result lands; the transport
	// re-reads Combined.
	OnUpdate func()
}

// NewClient creates the per-flow arbitration handle.
func (sys *System) NewClient(flow pkt.FlowID, src, dst pkt.NodeID) *Client {
	sys.Stats.Setups++
	sys.inflight++
	sys.o.inflight.Update(sys.inflight)
	return &Client{
		sys:      sys,
		flow:     flow,
		src:      src,
		dst:      dst,
		upPath:   sys.net.PathUpFlow(src, dst, flow),
		downPath: sys.net.PathDownFlow(src, dst, flow),
	}
}

// Ready reports whether at least the source half has answered; the
// paper lets flows start on the child arbitrator's response without
// waiting for the destination half.
func (c *Client) Ready() bool { return c.haveSrc }

// Combined returns the flow's current (queue, reference rate): the
// lowest-priority queue and minimum rate over all arbitrated links.
func (c *Client) Combined() Decision {
	d := Decision{Queue: 0, Rref: netem.BitRate(1 << 62)}
	merge := func(h Decision) {
		if h.Queue > d.Queue {
			d.Queue = h.Queue
		}
		if h.Rref < d.Rref {
			d.Rref = h.Rref
		}
	}
	if c.haveSrc {
		merge(c.srcHalf)
	}
	if c.haveDst {
		merge(c.dstHalf)
	}
	if !c.haveSrc && !c.haveDst {
		return Decision{Queue: int8(c.sys.P.NumQueues - 1), Rref: 0}
	}
	return d
}

// Refresh re-arbitrates both halves of the path with the flow's
// current criterion key and demand. Results arrive asynchronously
// (control-plane latency) and trigger OnUpdate.
func (c *Client) Refresh(key int64, demand netem.BitRate) {
	if c.released {
		return
	}
	c.sys.Stats.Refreshes++
	if c.sys.central != nil {
		c.refreshCentral(key, demand)
		return
	}
	c.refreshHalf(key, demand, true)
	c.refreshHalf(key, demand, false)
}

// refreshHalf walks one half bottom-up, applying early pruning and
// delegation, and schedules the result delivery after the modelled
// control latency.
func (c *Client) refreshHalf(key int64, demand netem.BitRate, srcSide bool) {
	sys := c.sys
	p := sys.P

	// Bottom-up link order for this half.
	var links []*topology.Link
	if srcSide {
		links = c.upPath
	} else {
		// downPath is top-down; walk it bottom-up.
		links = make([]*topology.Link, len(c.downPath))
		for i, l := range c.downPath {
			links[len(c.downPath)-1-i] = l
		}
	}

	leaf := c.src
	if !srcSide {
		leaf = c.dst
	}
	rack := sys.net.RackOf(leaf)

	// A half is remote when the exchange crosses the network: the dst
	// half always does (the setup travels to the receiver and back);
	// the src half only when arbitration may climb past the host-local
	// access-link arbitrator.
	start := sys.eng.Now()
	fi := sys.Faults
	remote := !srcSide || (!p.LocalOnly && len(links) > 1)
	if fi != nil && remote && fi.DropRequest() {
		// Request lost in the fabric; the endpoint retries.
		sys.o.reqDrop.Inc()
		sys.emitCtrl(CtrlEvent{Flow: c.flow, SrcSide: srcSide, Start: start, Outcome: CtrlReqDropped})
		return
	}

	worst := Decision{Queue: 0, Rref: netem.BitRate(1 << 62)}
	merge := func(h Decision) {
		if h.Queue > worst.Queue {
			worst.Queue = h.Queue
		}
		if h.Rref < worst.Rref {
			worst.Rref = h.Rref
		}
	}

	depth := 0 // how many hops up the arbitration traveled
	pruned := false
	dead := false
	if tr := sys.treeFor(srcSide); tr != nil && len(links) > 1 {
		// Deep-hierarchy climb: the physical access link first, then
		// the directional virtual aggregation tree toward the peer's
		// rack, pruning before every step exactly like the flat walk.
		a := sys.arbs[links[0].ID]
		if a.Down() {
			dead = true
		} else {
			merge(a.Update(c.flow, key, demand))
			other := c.dst
			if !srcSide {
				other = c.src
			}
			steps := tr.ClimbPath(c.flow, rack, sys.net.RackOf(other), p.Delegation)
			full := steps[len(steps)-1].depth
			for _, st := range steps {
				if p.EarlyPruning && worst.Queue >= p.PruneQueues {
					pruned = true
					sys.Stats.PruneSavedMsgs += int64(2 * (full - depth))
					break
				}
				if st.arb.Down() {
					dead = true
					break
				}
				depth = st.depth
				if st.delegated {
					sys.Stats.Delegated++
				}
				merge(st.arb.Update(c.flow, key, demand))
			}
		}
	} else {
		for i, l := range links {
			if i > 0 && p.LocalOnly {
				break
			}
			if i > 0 && p.EarlyPruning && worst.Queue >= p.PruneQueues {
				pruned = true
				sys.Stats.PruneSavedMsgs += int64(2 * (len(links) - 1 - depth))
				break
			}
			if p.Delegation && l.Level == topology.LevelAggCore {
				// The ToR arbitrator (depth 1) owns a virtual slice; no
				// extra hop.
				va := sys.virt[virtKey{l.ID, rack}]
				if va != nil {
					if va.Down() {
						dead = true
						break
					}
					sys.Stats.Delegated++
					merge(va.Update(c.flow, key, demand))
					continue
				}
			}
			a := sys.arbs[l.ID]
			if a.Down() {
				// The bottom-up chain breaks here: arbitrators below kept
				// the update, the rest never hear of it, and no response
				// comes back until the crashed arbitrator restarts.
				dead = true
				break
			}
			if i > 0 {
				depth = i // host->ToR is hop 1, ToR->agg hop 2
			}
			merge(a.Update(c.flow, key, demand))
		}
	}
	if pruned {
		sys.Stats.Pruned++
	}
	sys.countClimb(depth)
	if dead {
		sys.o.dead.Inc()
		sys.emitCtrl(CtrlEvent{Flow: c.flow, SrcSide: srcSide, Level: depth, Start: start, Outcome: CtrlDeadArb})
		return
	}

	latency := sim.Duration(2*depth) * p.CtrlPerHop
	if !srcSide {
		// The destination half is initiated by the receiver after the
		// setup reaches it and the result returns to the sender.
		latency += sim.Duration(len(c.upPath)+len(c.downPath)) * sys.net.Cfg.LinkDelay * 2
	}
	if fi != nil && remote {
		if fi.DropResponse() {
			// Response lost on the way back; the endpoint retries.
			sys.o.respDrop.Inc()
			sys.emitCtrl(CtrlEvent{Flow: c.flow, SrcSide: srcSide, Level: depth, Start: start, Outcome: CtrlRespDropped})
			return
		}
		latency += fi.CtrlExtraDelay()
	}
	sys.o.rtt[sys.lvl(depth)].Observe(int64(latency))
	sys.emitCtrl(CtrlEvent{Flow: c.flow, SrcSide: srcSide, Level: depth, Start: start, Latency: latency, Outcome: CtrlOK})
	result := worst
	sys.eng.Schedule(latency, func() {
		if c.released {
			return
		}
		if srcSide {
			c.srcHalf = result
			c.haveSrc = true
		} else {
			c.dstHalf = result
			c.haveDst = true
		}
		if c.OnUpdate != nil {
			c.OnUpdate()
		}
	})
}

// Release deregisters the flow everywhere (sent as one-way messages).
func (c *Client) Release() {
	if c.released {
		return
	}
	c.released = true
	c.sys.Stats.Releases++
	c.sys.inflight--
	c.sys.o.inflight.Update(c.sys.inflight)
	if c.sys.central != nil {
		c.releaseCentral()
		return
	}
	remove := func(links []*topology.Link, leaf pkt.NodeID, localFirst bool) {
		rack := c.sys.net.RackOf(leaf)
		// Releases are one-way and unacknowledged; a lost one leaves
		// remote entries to lease expiry (the host-local arbitrator is
		// always cleaned). localFirst marks the half whose first link
		// lives on the releasing host.
		lost := false
		if fi := c.sys.Faults; fi != nil {
			n := len(links)
			if localFirst {
				n--
			}
			lost = n > 0 && fi.DropRequest()
		}
		hops := 0
		if tr := c.sys.treeFor(localFirst); tr != nil && len(links) > 1 {
			// Deep hierarchy: the release mirrors the climb path, so
			// every arbitrator a refresh could have registered with is
			// cleaned (localFirst == srcSide for both halves).
			if !lost || localFirst {
				c.sys.arbs[links[0].ID].Remove(c.flow)
			}
			if !lost {
				other := c.dst
				if leaf == c.dst {
					other = c.src
				}
				for _, st := range tr.ClimbPath(c.flow, rack, c.sys.net.RackOf(other), c.sys.P.Delegation) {
					st.arb.Remove(c.flow)
					hops = st.depth
				}
			}
		} else {
			for i, l := range links {
				if lost && !(localFirst && i == 0) {
					continue
				}
				if va := c.sys.virt[virtKey{l.ID, rack}]; c.sys.P.Delegation && l.Level == topology.LevelAggCore && va != nil {
					va.Remove(c.flow)
					continue
				}
				if i > 0 {
					hops = i
				}
				c.sys.arbs[l.ID].Remove(c.flow)
			}
		}
		c.sys.countRelease(hops)
	}
	remove(c.upPath, c.src, true)
	rev := make([]*topology.Link, len(c.downPath))
	for i, l := range c.downPath {
		rev[len(c.downPath)-1-i] = l
	}
	remove(rev, c.dst, false)
}
