package arbitration

import (
	"testing"

	"pase/internal/check"
	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
)

// FuzzArbitrationTree drives a full multi-level hierarchy — nodes,
// delegated slices and root shards — through arbitrary interleavings
// of pruned refresh climbs, releases, share rebalances, clock jumps
// and node crashes. The strict checker attached to every arbitrator
// panics the moment any level's allocation turns infeasible; the
// target adds the system-level invariants the climb relies on: path
// shape, decision bounds, release-where-registered, and no state on a
// crashed arbitrator.
func FuzzArbitrationTree(f *testing.F) {
	f.Add([]byte("\x10\x02\x00climb-release-rebalance-seed"))
	f.Add([]byte("\x1f\x03\x02shard\x80\x81\xc2\xc3release\x42\x43"))
	f.Add([]byte("\x01\x02\x01degenerate-one-rack\xff\x00\x7f"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		racks := 1 + int(data[0])%32
		h := HierarchyParams{FanOut: 2 + int(data[1])%4, TopShards: int(data[2]) % 3}
		var now sim.Time
		tr := NewTree(h, racks, testRackCap, testTopCap, testQueues, testBase,
			testPeriod, func() sim.Time { return now }, TreeUpIDBase)
		if tr == nil {
			t.Fatal("NewTree returned nil for enabled params")
		}
		tr.AttachCheck(check.NewStrict(func() int64 { return int64(now) }))
		const prune = int8(2)

		// live remembers the exact path prefix each flow registered on,
		// so releases retrace it — the invariant the real system keeps.
		live := make(map[pkt.FlowID][]treeStep)
		for i, op := range data[3:] {
			flow := pkt.FlowID(op%23 + 1)
			a := int(op) % racks
			b := (int(op>>3) + i) % racks
			switch op >> 6 {
			case 0, 1: // refresh climb with early pruning
				steps := tr.ClimbPath(flow, a, b, op&1 == 0)
				if len(steps) > tr.MaxDepth() {
					t.Fatalf("op %d: path %d steps exceeds MaxDepth %d",
						i, len(steps), tr.MaxDepth())
				}
				for j := 1; j < len(steps); j++ {
					if steps[j].depth < steps[j-1].depth {
						t.Fatalf("op %d: depth decreased along the climb", i)
					}
				}
				if len(live[flow]) > 0 {
					// A real refresh reuses the registered path; a new
					// (a,b) pair would leak the old registrations.
					steps = live[flow]
				}
				demand := netem.BitRate(1+int(op)%16) * 500 * netem.Mbps
				reached := steps[:0:0]
				for _, st := range steps {
					if st.arb.Down() {
						break // refresh lost at a crashed hop
					}
					d := st.arb.Update(flow, int64(op)*100, demand)
					reached = append(reached, st)
					if d.Queue < 0 || int(d.Queue) >= testQueues {
						t.Fatalf("op %d: queue %d outside [0,%d)", i, d.Queue, testQueues)
					}
					if d.Rref < 0 {
						t.Fatalf("op %d: negative Rref %v", i, d.Rref)
					}
					if d.Queue == 0 && d.Rref > st.arb.Capacity() {
						t.Fatalf("op %d: top-queue Rref %v exceeds capacity %v",
							i, d.Rref, st.arb.Capacity())
					}
					if d.Queue >= prune {
						break // pruned: nothing above sees the flow
					}
				}
				if len(reached) > 0 {
					live[flow] = reached
				}
			case 2: // release along the registered path
				for _, st := range live[flow] {
					st.arb.Remove(flow)
					if _, ok := st.arb.Lookup(flow); ok {
						t.Fatalf("op %d: flow survived its release", i)
					}
				}
				delete(live, flow)
			case 3: // clock jump, rebalance, or crash/restore
				switch op & 3 {
				case 0:
					now = now.Add(sim.Duration(int(op>>2)) * 100 * sim.Microsecond)
				case 1:
					tr.RefreshShares(prune, nil)
				case 2:
					lv := int(op>>2) % tr.Levels()
					tr.Node(lv, int(op>>4)%tr.NodesAt(lv)).Crash()
				case 3:
					lv := int(op>>2) % tr.Levels()
					tr.Node(lv, int(op>>4)%tr.NodesAt(lv)).Restore()
				}
			}
		}
		// Final sweep under the strict checker: recompute every book at
		// the current clock and hold the crash invariant — a down
		// arbitrator carries no flow state, so no rate can ever be
		// granted through it.
		tr.ForEach(func(arb *Arbitrator) {
			if arb.Down() {
				if arb.Flows() != 0 {
					t.Fatalf("crashed arbitrator %d holds %d flows", arb.LinkID, arb.Flows())
				}
				return
			}
			arb.AggregateTopDemand(int8(testQueues - 1))
		})
	})
}
