package arbitration

import (
	"testing"

	"pase/internal/netem"
	"pase/internal/pkt"
)

func TestCrashWipesSoftState(t *testing.T) {
	_, a := newArb(netem.Gbps)
	a.Update(1, 10, netem.Gbps)
	a.Update(2, 20, 400*netem.Mbps)
	if a.Flows() != 2 {
		t.Fatalf("flows = %d, want 2", a.Flows())
	}
	a.Crash()
	if !a.Down() {
		t.Fatal("arbitrator not down after Crash")
	}
	if a.Flows() != 0 {
		t.Fatalf("crash kept %d entries, want 0", a.Flows())
	}
	if _, ok := a.Lookup(1); ok {
		t.Fatal("Lookup found a flow after the soft-state wipe")
	}
}

func TestRestoreRebuildsFromRefreshes(t *testing.T) {
	_, a := newArb(netem.Gbps)
	a.Update(1, 10, netem.Gbps)
	a.Update(2, 20, netem.Gbps)
	a.Crash()
	a.Restore()
	if a.Down() {
		t.Fatal("arbitrator still down after Restore")
	}
	// The restarted arbitrator starts empty; the first refresh to
	// arrive sees the whole link as spare regardless of its old rank.
	d := a.Update(2, 20, netem.Gbps)
	if d.Queue != 0 || d.Rref != netem.Gbps {
		t.Fatalf("first post-restart refresh got %+v, want top queue at line rate", d)
	}
	// A later refresh with a larger key ranks behind it, exactly as on
	// a cold start.
	if d := a.Update(3, 30, netem.Gbps); d.Queue != 1 {
		t.Fatalf("second post-restart refresh queue = %d, want 1", d.Queue)
	}
	if a.Flows() != 2 {
		t.Fatalf("flows after rebuild = %d, want 2", a.Flows())
	}
}

func TestRepeatedCrashCycles(t *testing.T) {
	_, a := newArb(netem.Gbps)
	for cycle := 0; cycle < 3; cycle++ {
		for i := 0; i < 4; i++ {
			a.Update(pkt.FlowID(i+1), int64(i), netem.Gbps)
		}
		if a.Flows() != 4 {
			t.Fatalf("cycle %d: flows = %d, want 4", cycle, a.Flows())
		}
		a.Crash()
		a.Restore()
		if a.Flows() != 0 {
			t.Fatalf("cycle %d: flows after crash = %d, want 0", cycle, a.Flows())
		}
	}
}
