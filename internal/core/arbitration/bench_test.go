package arbitration

import (
	"testing"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
)

// BenchmarkArbitratorUpdate measures Algorithm 1's cost per flow
// refresh with a few hundred live flows — the hot path of the control
// plane at high load.
func BenchmarkArbitratorUpdate(b *testing.B) {
	eng := sim.NewEngine()
	a := NewArbitrator(0, 10*netem.Gbps, 8, 40*netem.Mbps, 300*sim.Microsecond, eng.Now)
	const live = 300
	for i := 0; i < live; i++ {
		a.Update(pkt.FlowID(i), int64(i*1000), netem.Gbps)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Update(pkt.FlowID(i%live), int64(i%live*1000+i%7), netem.Gbps)
	}
}

func BenchmarkArbitratorChurn(b *testing.B) {
	eng := sim.NewEngine()
	a := NewArbitrator(0, 10*netem.Gbps, 8, 40*netem.Mbps, 300*sim.Microsecond, eng.Now)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := pkt.FlowID(i)
		a.Update(id, int64(i), netem.Gbps)
		if i >= 64 {
			a.Remove(id - 64)
		}
	}
}
