package arbitration

import (
	"testing"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
)

const (
	testRackCap = 10 * netem.Gbps
	testTopCap  = 40 * netem.Gbps
	testQueues  = 4
	testBase    = 40 * netem.Mbps
	testPeriod  = 300 * sim.Microsecond
)

func newTestTree(h HierarchyParams, racks int, clock func() sim.Time) *Tree {
	if clock == nil {
		clock = func() sim.Time { return 0 }
	}
	return NewTree(h, racks, testRackCap, testTopCap, testQueues, testBase,
		testPeriod, clock, TreeUpIDBase)
}

// TestTreeDisabled: the zero value and degenerate parameters must not
// build a tree — the classic flat 3-tier climb stays in charge.
func TestTreeDisabled(t *testing.T) {
	cases := []struct {
		name  string
		h     HierarchyParams
		racks int
	}{
		{"zero value", HierarchyParams{}, 16},
		{"fanout 1", HierarchyParams{FanOut: 1}, 16},
		{"fanout 1 sharded", HierarchyParams{FanOut: 1, TopShards: 4}, 16},
		{"no racks", HierarchyParams{FanOut: 4}, 0},
	}
	for _, tc := range cases {
		if tc.h.Enabled() && tc.racks > 0 {
			t.Errorf("%s: Enabled() = true, want false", tc.name)
		}
		if tr := newTestTree(tc.h, tc.racks, nil); tr != nil {
			t.Errorf("%s: NewTree returned a tree, want nil", tc.name)
		}
	}
}

// TestTreeConstruction checks level sizes, node capacities and
// delegated-slice layout across rack counts that exercise exact
// powers, non-powers and the one-rack degenerate tree.
func TestTreeConstruction(t *testing.T) {
	cases := []struct {
		name       string
		racks      int
		h          HierarchyParams
		wantLevels []int // nodes per level, bottom-up
	}{
		{"one rack", 1, HierarchyParams{FanOut: 2}, []int{1}},
		{"one rack sharded", 1, HierarchyParams{FanOut: 2, TopShards: 4}, []int{1}},
		{"two racks", 2, HierarchyParams{FanOut: 2}, []int{2, 1}},
		{"two racks sharded", 2, HierarchyParams{FanOut: 2, TopShards: 3}, []int{2, 3}},
		{"non power of two", 5, HierarchyParams{FanOut: 2}, []int{5, 3, 2, 1}},
		{"power of two", 8, HierarchyParams{FanOut: 2}, []int{8, 4, 2, 1}},
		{"ragged fanout 4", 13, HierarchyParams{FanOut: 4}, []int{13, 4, 1}},
		{"square fanout 4", 16, HierarchyParams{FanOut: 4}, []int{16, 4, 1}},
		{"sharded root", 16, HierarchyParams{FanOut: 4, TopShards: 2}, []int{16, 4, 2}},
		{"wide fanout", 64, HierarchyParams{FanOut: 8}, []int{64, 8, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := newTestTree(tc.h, tc.racks, nil)
			if tr == nil {
				t.Fatal("NewTree returned nil for enabled params")
			}
			if got := tr.Levels(); got != len(tc.wantLevels) {
				t.Fatalf("Levels() = %d, want %d", got, len(tc.wantLevels))
			}
			if got := tr.MaxDepth(); got != len(tc.wantLevels) {
				t.Fatalf("MaxDepth() = %d, want %d", got, len(tc.wantLevels))
			}
			root := tr.Levels() - 1
			sharded := tc.h.TopShards > 1 && root > 0
			for lv, want := range tc.wantLevels {
				if got := tr.NodesAt(lv); got != want {
					t.Fatalf("NodesAt(%d) = %d, want %d", lv, got, want)
				}
			}
			// Node capacities: a level-lv node covering k racks carries
			// min(k·rackCap, topCap); root shards split topCap equally.
			span := 1
			for lv := 0; lv < tr.Levels(); lv++ {
				if lv == root && sharded {
					each := testTopCap / netem.BitRate(tc.h.TopShards)
					for s := 0; s < tr.NodesAt(lv); s++ {
						if got := tr.Node(lv, s).Capacity(); got != each {
							t.Fatalf("shard %d capacity %v, want %v", s, got, each)
						}
					}
					break
				}
				for i := 0; i < tr.NodesAt(lv); i++ {
					covered := tc.racks - i*span
					if covered > span {
						covered = span
					}
					want := testRackCap * netem.BitRate(covered)
					if want > testTopCap {
						want = testTopCap
					}
					if got := tr.Node(lv, i).Capacity(); got != want {
						t.Fatalf("level %d node %d capacity %v, want %v", lv, i, got, want)
					}
				}
				span *= tc.h.FanOut
			}
			// Delegated slices: one per child under every non-sharded
			// parent, sized by an equal split; none under a sharded root.
			for lv := 1; lv <= root; lv++ {
				if lv == root && sharded {
					for c := 0; c < tr.NodesAt(lv-1); c++ {
						if tr.Slice(lv, c) != nil {
							t.Fatalf("sharded root delegated a slice to child %d", c)
						}
					}
					continue
				}
				for c := 0; c < tr.NodesAt(lv-1); c++ {
					s := tr.Slice(lv, c)
					if s == nil {
						t.Fatalf("missing slice for level-%d child %d", lv, c)
					}
					p := c / tc.h.FanOut
					kids := tr.NodesAt(lv-1) - p*tc.h.FanOut
					if kids > tc.h.FanOut {
						kids = tc.h.FanOut
					}
					want := tr.Node(lv, p).Capacity() / netem.BitRate(kids)
					if got := s.Capacity(); got != want {
						t.Fatalf("slice (%d,%d) capacity %v, want %v", lv, c, got, want)
					}
				}
			}
		})
	}
}

// TestTreeClimbPath checks the bottom-up path a refresh consults: the
// meet level, delegated early stops, full climbs with delegation off,
// and shard selection at a replicated root.
func TestTreeClimbPath(t *testing.T) {
	tr := newTestTree(HierarchyParams{FanOut: 4}, 16, nil) // levels 16,4,1
	flow := pkt.FlowID(7)

	t.Run("same rack", func(t *testing.T) {
		steps := tr.ClimbPath(flow, 3, 3, true)
		if len(steps) != 1 || steps[0].arb != tr.Node(0, 3) || steps[0].depth != 1 {
			t.Fatalf("intra-rack path = %+v, want only the level-0 node at depth 1", steps)
		}
	})
	t.Run("sibling racks delegate", func(t *testing.T) {
		// Racks 0 and 1 meet under level-1 node 0: the climb stops at
		// rack 0's delegated slice of that parent — same depth as the
		// level-0 stop, no extra hop.
		steps := tr.ClimbPath(flow, 0, 1, true)
		if len(steps) != 2 {
			t.Fatalf("sibling path has %d steps, want 2", len(steps))
		}
		last := steps[1]
		if !last.delegated || last.arb != tr.Slice(1, 0) || last.depth != 1 {
			t.Fatalf("sibling meet = %+v, want delegated slice (1,0) at depth 1", last)
		}
	})
	t.Run("sibling racks no delegation", func(t *testing.T) {
		steps := tr.ClimbPath(flow, 0, 1, false)
		if len(steps) != 2 {
			t.Fatalf("path has %d steps, want 2", len(steps))
		}
		if steps[1].delegated || steps[1].arb != tr.Node(1, 0) || steps[1].depth != 2 {
			t.Fatalf("meet = %+v, want level-1 node 0 at depth 2", steps[1])
		}
	})
	t.Run("cross fabric", func(t *testing.T) {
		// Racks 0 and 15 only meet at the root; delegation stops at
		// rack group 0's slice of the root, one hop cheaper.
		steps := tr.ClimbPath(flow, 0, 15, true)
		if len(steps) != 3 {
			t.Fatalf("cross-fabric path has %d steps, want 3", len(steps))
		}
		if steps[1].arb != tr.Node(1, 0) || steps[1].depth != 2 {
			t.Fatalf("step 1 = %+v, want level-1 node 0 at depth 2", steps[1])
		}
		if !steps[2].delegated || steps[2].arb != tr.Slice(2, 0) || steps[2].depth != 2 {
			t.Fatalf("step 2 = %+v, want delegated root slice (2,0) at depth 2", steps[2])
		}
	})
	t.Run("both ends meet at one arbitrator", func(t *testing.T) {
		// With delegation off the two directions of an exchange must
		// consult the same meet-level node, or feasibility would be
		// checked against two different books.
		ab := tr.ClimbPath(flow, 2, 9, false)
		ba := tr.ClimbPath(flow, 9, 2, false)
		if ab[len(ab)-1].arb != ba[len(ba)-1].arb {
			t.Fatal("a→b and b→a climbs ended at different meet arbitrators")
		}
	})
	t.Run("sharded root", func(t *testing.T) {
		sh := newTestTree(HierarchyParams{FanOut: 4, TopShards: 2}, 16, nil)
		steps := sh.ClimbPath(flow, 0, 15, true)
		// A sharded root never delegates: full-depth climb onto the
		// flow's hashed shard.
		last := steps[len(steps)-1]
		if last.delegated {
			t.Fatal("sharded root produced a delegated stop")
		}
		want := sh.Node(2, sh.ShardOf(flow))
		if last.arb != want || last.depth != 3 {
			t.Fatalf("root stop = %+v, want shard %d at depth 3", last, sh.ShardOf(flow))
		}
		// The shard choice is per-flow and stable.
		for f := pkt.FlowID(1); f < 100; f++ {
			s := sh.ShardOf(f)
			if s < 0 || s >= sh.Shards() {
				t.Fatalf("ShardOf(%d) = %d outside [0,%d)", f, s, sh.Shards())
			}
			if s != sh.ShardOf(f) {
				t.Fatalf("ShardOf(%d) unstable", f)
			}
		}
	})
	t.Run("one rack degenerate", func(t *testing.T) {
		one := newTestTree(HierarchyParams{FanOut: 2, TopShards: 4}, 1, nil)
		steps := one.ClimbPath(flow, 0, 0, true)
		if len(steps) != 1 || steps[0].arb != one.Node(0, 0) {
			t.Fatalf("degenerate path = %+v, want only the root", steps)
		}
	})
}

// TestTreeRefreshShares checks the generalized delegation rebalance:
// proportional to top-queue demand, 10% floor for quiet children, two
// control messages per child of a busy parent, and silence when the
// whole group is idle.
func TestTreeRefreshShares(t *testing.T) {
	var now sim.Time
	clock := func() sim.Time { return now }

	t.Run("idle group exchanges nothing", func(t *testing.T) {
		tr := newTestTree(HierarchyParams{FanOut: 4}, 4, clock)
		var msgs int64
		tr.RefreshShares(2, func(n int64) { msgs += n })
		if msgs != 0 {
			t.Fatalf("idle tree exchanged %d messages, want 0", msgs)
		}
	})

	t.Run("proportional with floor", func(t *testing.T) {
		tr := newTestTree(HierarchyParams{FanOut: 4}, 4, clock) // levels 4,1; parent cap 40G
		// Child 0 demands 30G, child 1 demands 10G, children 2 and 3
		// stay idle: shares go 30/10, idle kids land on the 1G floor
		// (40G/(10·4)).
		tr.Slice(1, 0).Update(1, 100, 30*netem.Gbps)
		tr.Slice(1, 1).Update(2, 100, 10*netem.Gbps)
		var msgs int64
		tr.RefreshShares(2, func(n int64) { msgs += n })
		if msgs != 8 {
			t.Fatalf("busy parent exchanged %d messages, want 2 per child = 8", msgs)
		}
		if got := tr.Slice(1, 0).Capacity(); got != 30*netem.Gbps {
			t.Fatalf("slice 0 capacity %v, want 30Gbps", got)
		}
		if got := tr.Slice(1, 1).Capacity(); got != 10*netem.Gbps {
			t.Fatalf("slice 1 capacity %v, want 10Gbps", got)
		}
		floor := 40 * netem.Gbps / netem.BitRate(10*4)
		for c := 2; c < 4; c++ {
			if got := tr.Slice(1, c).Capacity(); got != floor {
				t.Fatalf("idle slice %d capacity %v, want floor %v", c, got, floor)
			}
		}
	})

	t.Run("zero demand splits equally", func(t *testing.T) {
		tr := newTestTree(HierarchyParams{FanOut: 4}, 4, clock)
		// A registered flow with zero demand keeps the group busy but
		// contributes no aggregate: capacity splits evenly.
		tr.Slice(1, 0).Update(1, 100, 0)
		tr.RefreshShares(2, nil)
		want := 40 * netem.Gbps / 4
		for c := 0; c < 4; c++ {
			if got := tr.Slice(1, c).Capacity(); got != want {
				t.Fatalf("slice %d capacity %v, want equal split %v", c, got, want)
			}
		}
	})

	t.Run("pruned demand excluded", func(t *testing.T) {
		tr := newTestTree(HierarchyParams{FanOut: 4}, 4, clock)
		s := tr.Slice(1, 0)
		// Two high-priority flows fill the slice's 10G default share;
		// a third, worse-keyed flow lands below the prune threshold and
		// must not inflate the published aggregate.
		s.Update(1, 10, 6*netem.Gbps)
		s.Update(2, 20, 6*netem.Gbps)
		s.Update(3, 30, 50*netem.Gbps) // ADH 12G ≥ 10G cap → queue ≥ 1
		tr.Slice(1, 1).Update(4, 10, 12*netem.Gbps)
		tr.RefreshShares(1, nil) // prune at queue 1: only queue-0 demand counts
		// Aggregates: slice 0 publishes 12G (not 62G), slice 1 12G —
		// equal shares of the 40G parent.
		if got, want := tr.Slice(1, 0).Capacity(), 20*netem.Gbps; got != want {
			t.Fatalf("slice 0 capacity %v, want %v (pruned flow excluded)", got, want)
		}
		if got, want := tr.Slice(1, 1).Capacity(), 20*netem.Gbps; got != want {
			t.Fatalf("slice 1 capacity %v, want %v", got, want)
		}
	})

	t.Run("crashed parent skipped", func(t *testing.T) {
		tr := newTestTree(HierarchyParams{FanOut: 2}, 4, clock) // levels 4,2,1
		tr.Node(1, 0).Crash()
		tr.Slice(1, 0).Update(1, 100, 5*netem.Gbps)
		before := tr.Slice(1, 0).Capacity()
		var msgs int64
		tr.RefreshShares(2, func(n int64) { msgs += n })
		if got := tr.Slice(1, 0).Capacity(); got != before {
			t.Fatalf("crashed parent rebalanced its children: %v → %v", before, got)
		}
		if msgs != 0 {
			t.Fatalf("crashed parent exchanged %d messages, want 0", msgs)
		}
	})
}

// TestTreePruneStopsClimb emulates the system's early-pruning walk: a
// refresh that falls out of the top queues at some level stops there,
// and no arbitrator above the stop ever sees the flow.
func TestTreePruneStopsClimb(t *testing.T) {
	var now sim.Time
	tr := newTestTree(HierarchyParams{FanOut: 4}, 16, func() sim.Time { return now })
	const prune = int8(1)

	// Saturate rack 0's level-0 node (10G) with two better-keyed flows
	// so the probe flow's ADH (12G) pushes it to queue 1 at the first
	// stop of a cross-fabric climb.
	tr.Node(0, 0).Update(101, 10, 6*netem.Gbps)
	tr.Node(0, 0).Update(102, 20, 6*netem.Gbps)

	probe := pkt.FlowID(999)
	steps := tr.ClimbPath(probe, 0, 15, false)
	if len(steps) != 3 {
		t.Fatalf("cross-fabric climb has %d steps, want 3", len(steps))
	}
	stopped := len(steps)
	for i, st := range steps {
		d := st.arb.Update(probe, 30, 5*netem.Gbps)
		if d.Queue >= prune {
			stopped = i + 1
			break
		}
	}
	if stopped != 1 {
		t.Fatalf("climb stopped after %d steps, want pruned at the first", stopped)
	}
	for _, st := range steps[stopped:] {
		if _, ok := st.arb.Lookup(probe); ok {
			t.Fatalf("pruned flow registered above the stop (link %d)", st.arb.LinkID)
		}
	}
	// The pruned flow still holds a registration (and a decision) at
	// every level it did reach.
	for _, st := range steps[:stopped] {
		if _, ok := st.arb.Lookup(probe); !ok {
			t.Fatalf("flow missing below the prune point (link %d)", st.arb.LinkID)
		}
	}
}

// TestTreeCrashRestore: Crash wipes every node, shard and slice and
// marks them unreachable; Restore brings them back empty.
func TestTreeCrashRestore(t *testing.T) {
	tr := newTestTree(HierarchyParams{FanOut: 4, TopShards: 2}, 16, nil)
	for _, st := range tr.ClimbPath(5, 0, 15, true) {
		st.arb.Update(5, 100, netem.Gbps)
	}
	tr.Crash()
	nodes := 0
	tr.ForEach(func(a *Arbitrator) {
		nodes++
		if !a.Down() {
			t.Fatalf("arbitrator %d still up after Crash", a.LinkID)
		}
		if a.Flows() != 0 {
			t.Fatalf("arbitrator %d kept %d flows across Crash", a.LinkID, a.Flows())
		}
	})
	// 16+4+2 nodes plus 16+4... the sharded root delegates nothing, so
	// only level-1 parents hand out slices: 16 of them.
	if want := 16 + 4 + 2 + 16; nodes != want {
		t.Fatalf("ForEach visited %d arbitrators, want %d", nodes, want)
	}
	tr.Restore()
	tr.ForEach(func(a *Arbitrator) {
		if a.Down() {
			t.Fatalf("arbitrator %d still down after Restore", a.LinkID)
		}
	})
}
