package arbitration

import (
	"pase/internal/check"
	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
)

// HierarchyParams configure the generalized multi-level arbitration
// hierarchy. The zero value disables it, leaving the classic 3-tier
// climb (host → ToR → agg-core, with flat per-rack delegation slices)
// in charge.
type HierarchyParams struct {
	// FanOut is the number of level-(lv-1) aggregation nodes grouped
	// under one level-lv node. Values below 2 disable the tree.
	FanOut int
	// TopShards splits the root aggregation node into this many
	// replicated shard arbitrators, each owning an equal slice of the
	// core capacity; flows hash onto a shard. 0 or 1 keeps a single
	// root.
	TopShards int
}

// Enabled reports whether the multi-level tree should be built.
func (h HierarchyParams) Enabled() bool { return h.FanOut >= 2 }

// Tree is one direction (up toward the core, or down from it) of the
// virtual aggregation hierarchy: level 0 holds one node per rack, each
// higher level groups FanOut children, and the root covers the whole
// fabric. Parents that delegate own one virtual slice per child, so a
// refresh that meets its peer under a common ancestor stops one level
// early at the slice — the same hop-saving trick as the flat
// agg-core delegation, applied recursively.
//
// Tree is deliberately constructible without a topology.Network so the
// unit suite and the fuzz target can drive it directly.
type Tree struct {
	fanOut int
	shards int
	racks  int

	// levels[lv] are the aggregation arbitrators of level lv, index i
	// covering racks [i·FanOut^lv, (i+1)·FanOut^lv). The last level is
	// the root: a single node, or `shards` replicated shard nodes.
	levels [][]*Arbitrator
	// slices maps (parent level lv, child index at level lv-1) to the
	// delegated virtual slice of that parent the child's arbitrator
	// owns. A sharded root delegates nothing (its children would each
	// need a slice of every shard).
	slices map[sliceKey]*Arbitrator

	topCap netem.BitRate
}

type sliceKey struct {
	level int // parent level
	child int // child index at level-1
}

// treeStep is one stop of a bottom-up climb: the arbitrator to
// consult, the control-hop depth reaching it costs, and whether it is
// a delegated slice (owned by the previous stop, so no extra hop).
type treeStep struct {
	arb       *Arbitrator
	depth     int
	delegated bool
}

// Link-ID bases keep tree arbitrator labels (used by the invariant
// checker) disjoint from physical links, flat virtual slices (negative
// physical IDs) and the opposite direction's tree.
const (
	treeLevelStride = 1 << 16
	// TreeUpIDBase / TreeDownIDBase seed the synthetic link IDs of the
	// two directional trees.
	TreeUpIDBase   = 1 << 24
	TreeDownIDBase = 1 << 25
)

// NewTree builds one directional aggregation tree over `racks` racks.
// rackCap is the capacity a single rack's uplink tier contributes;
// topCap bounds every aggregate (the core's bisection in that
// direction). numQueues/baseRate/period/clock configure the embedded
// arbitrators exactly like physical ones.
func NewTree(h HierarchyParams, racks int, rackCap, topCap netem.BitRate, numQueues int, baseRate netem.BitRate, period sim.Duration, clock func() sim.Time, idBase int) *Tree {
	if !h.Enabled() || racks < 1 {
		return nil
	}
	shards := h.TopShards
	if shards < 1 {
		shards = 1
	}
	t := &Tree{
		fanOut: h.FanOut,
		shards: shards,
		racks:  racks,
		slices: make(map[sliceKey]*Arbitrator),
		topCap: topCap,
	}
	// Level sizes: racks, ceil(racks/F), ... , 1.
	sizes := []int{racks}
	for n := racks; n > 1; {
		n = (n + h.FanOut - 1) / h.FanOut
		sizes = append(sizes, n)
	}
	root := len(sizes) - 1
	for lv, n := range sizes {
		if lv == root && root > 0 && shards > 1 {
			// Replicated root: `shards` arbitrators, each an equal
			// slice of the top capacity, flows hashed across them.
			row := make([]*Arbitrator, shards)
			for s := range row {
				id := idBase + lv*treeLevelStride + s
				row[s] = NewArbitrator(id, topCap/netem.BitRate(shards), numQueues, baseRate, period, clock)
			}
			t.levels = append(t.levels, row)
			continue
		}
		row := make([]*Arbitrator, n)
		for i := range row {
			id := idBase + lv*treeLevelStride + i
			row[i] = NewArbitrator(id, t.nodeCap(lv, i, rackCap), numQueues, baseRate, period, clock)
		}
		t.levels = append(t.levels, row)
	}
	// Delegated slices: every non-sharded parent hands each child a
	// virtual slice sized by an equal split (the share refresh resizes
	// them to demand).
	for lv := 1; lv <= root; lv++ {
		if lv == root && shards > 1 {
			break
		}
		for c := range t.levels[lv-1] {
			p := c / h.FanOut
			kids := t.childCount(lv, p)
			share := t.levels[lv][p].Capacity() / netem.BitRate(kids)
			id := -(idBase + lv*treeLevelStride + c)
			t.slices[sliceKey{lv, c}] = NewArbitrator(id, share, numQueues, baseRate, period, clock)
		}
	}
	return t
}

// nodeCap sizes a level-lv aggregate: the racks it covers can never
// push more than their combined uplink capacity, and the core never
// carries more than topCap.
func (t *Tree) nodeCap(lv, idx int, rackCap netem.BitRate) netem.BitRate {
	span := t.span(lv)
	lo := idx * span
	hi := lo + span
	if hi > t.racks {
		hi = t.racks
	}
	c := rackCap * netem.BitRate(hi-lo)
	if c > t.topCap {
		c = t.topCap
	}
	return c
}

// span is the number of racks one level-lv node covers (FanOut^lv).
func (t *Tree) span(lv int) int {
	s := 1
	for i := 0; i < lv; i++ {
		s *= t.fanOut
	}
	return s
}

// childCount is the number of level-(lv-1) children under parent p.
func (t *Tree) childCount(lv, p int) int {
	n := len(t.levels[lv-1]) - p*t.fanOut
	if n > t.fanOut {
		n = t.fanOut
	}
	return n
}

// Levels is the number of aggregation levels (≥ 1; 1 means a single
// degenerate root over one rack).
func (t *Tree) Levels() int { return len(t.levels) }

// MaxDepth is the control-hop depth of a full, non-delegated climb to
// the root (the access link is depth 0, level-0 nodes depth 1).
func (t *Tree) MaxDepth() int { return len(t.levels) }

// NodesAt returns how many arbitrators level lv holds.
func (t *Tree) NodesAt(lv int) int { return len(t.levels[lv]) }

// Node returns the level-lv arbitrator at index i.
func (t *Tree) Node(lv, i int) *Arbitrator { return t.levels[lv][i] }

// Slice returns the delegated slice of the level-lv parent owned by
// child index c at level lv-1 (nil when the parent is the sharded
// root, or out of range).
func (t *Tree) Slice(lv, c int) *Arbitrator { return t.slices[sliceKey{lv, c}] }

// Shards is the replicated-root shard count (1 = single root).
func (t *Tree) Shards() int { return t.shards }

// ShardOf hashes a flow onto a root shard.
func (t *Tree) ShardOf(flow pkt.FlowID) int {
	return int((uint64(flow) * 0x9e3779b97f4a7c15 >> 33) % uint64(t.shards))
}

// meetLevel is the lowest level whose node covers both racks — the
// LCA of the two leaves. Root covers everything, so the search always
// terminates there.
func (t *Tree) meetLevel(a, b int) int {
	root := len(t.levels) - 1
	for lv, span := 1, t.fanOut; lv <= root; lv, span = lv+1, span*t.fanOut {
		if a/span == b/span {
			return lv
		}
	}
	return root
}

// ClimbPath enumerates the arbitrators a refresh from rack `a` toward
// rack `b` consults above the access link, bottom-up: the level-0
// node of rack a (depth 1), then each ancestor until the meet level.
// With delegation on, the final (meet-level) stop resolves at the
// child-owned slice of the meet ancestor instead — same depth as the
// stop before it, two messages cheaper — unless the meet is the
// sharded root, which delegates nothing and is picked by flow hash.
// Release mirrors the same path, so every registration is removed
// where it was made.
func (t *Tree) ClimbPath(flow pkt.FlowID, a, b int, delegation bool) []treeStep {
	root := len(t.levels) - 1
	steps := []treeStep{{arb: t.levels[0][a], depth: 1}}
	if a == b || root == 0 {
		return steps
	}
	m := t.meetLevel(a, b)
	span := 1 // FanOut^(lv-1) inside the loop
	for lv := 1; lv <= m; lv++ {
		atRoot := lv == root
		if lv == m && delegation && !(atRoot && t.shards > 1) {
			if s := t.slices[sliceKey{lv, a / span}]; s != nil {
				steps = append(steps, treeStep{arb: s, depth: lv, delegated: true})
				break
			}
		}
		idx := a / (span * t.fanOut)
		if atRoot && t.shards > 1 {
			idx = t.ShardOf(flow)
		}
		steps = append(steps, treeStep{arb: t.levels[lv][idx], depth: lv + 1})
		span *= t.fanOut
	}
	return steps
}

// RefreshShares resizes every delegated slice in proportion to its
// top-queue demand (§3.1.2 generalized to every level) and rebalances
// the root shards the same way. count, when non-nil, is charged the
// two control messages each busy parent/child exchange costs.
func (t *Tree) RefreshShares(prune int8, count func(int64)) {
	root := len(t.levels) - 1
	for lv := 1; lv <= root; lv++ {
		if lv == root && t.shards > 1 {
			break
		}
		for p, parent := range t.levels[lv] {
			if parent.Down() {
				continue
			}
			kids := make([]*Arbitrator, 0, t.fanOut)
			for c := p * t.fanOut; c < len(t.levels[lv-1]) && c < (p+1)*t.fanOut; c++ {
				if s := t.slices[sliceKey{lv, c}]; s != nil {
					kids = append(kids, s)
				}
			}
			t.rebalance(parent.Capacity(), kids, prune, count)
		}
	}
	if root > 0 && t.shards > 1 {
		t.rebalance(t.topCap, t.levels[root], prune, count)
	}
}

// rebalance redistributes capTotal over the given arbitrators in
// proportion to their aggregate top-queue demand, with a 10% floor so
// a quiet child can restart quickly. Idle groups exchange nothing.
func (t *Tree) rebalance(capTotal netem.BitRate, kids []*Arbitrator, prune int8, count func(int64)) {
	if len(kids) == 0 {
		return
	}
	busy := false
	for _, k := range kids {
		if k.Flows() > 0 {
			busy = true
			break
		}
	}
	if !busy {
		return
	}
	demands := make([]netem.BitRate, len(kids))
	var sum netem.BitRate
	for i, k := range kids {
		d := k.AggregateTopDemand(prune - 1)
		demands[i] = d
		sum += d
	}
	for i, k := range kids {
		if sum == 0 {
			k.SetCapacity(capTotal / netem.BitRate(len(kids)))
		} else {
			// Float math: the product of two multi-gigabit rates
			// overflows int64.
			share := netem.BitRate(float64(capTotal) * float64(demands[i]) / float64(sum))
			floor := capTotal / netem.BitRate(10*len(kids))
			if share < floor {
				share = floor
			}
			k.SetCapacity(share)
		}
		if count != nil {
			// Child publishes aggregates, parent returns shares.
			count(2)
		}
	}
}

// ForEach visits every arbitrator of the tree — nodes, shards and
// delegated slices.
func (t *Tree) ForEach(f func(*Arbitrator)) {
	for _, row := range t.levels {
		for _, a := range row {
			f(a)
		}
	}
	for _, s := range t.slices {
		f(s)
	}
}

// AttachCheck installs the invariant checker on every tree arbitrator.
func (t *Tree) AttachCheck(c *check.Checker) {
	t.ForEach(func(a *Arbitrator) { a.AttachCheck(c) })
}

// Crash wipes every tree arbitrator; Restore brings them back empty.
func (t *Tree) Crash()   { t.ForEach((*Arbitrator).Crash) }
func (t *Tree) Restore() { t.ForEach((*Arbitrator).Restore) }
