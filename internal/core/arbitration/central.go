package arbitration

import (
	"pase/internal/netem"
	"pase/internal/sim"
)

// CentralPerRequestDefault is the controller's per-request service
// time when Params.CentralPerRequest is left zero: roughly what a
// tuned single-box scheduler spends computing one whole-path
// allocation (Shah & Xie report handling on the order of 10^6
// allocations per second).
const CentralPerRequestDefault = 1 * sim.Microsecond

// central models the fully centralized comparison arm: one controller
// seated behind the core computes whole-path allocations. Requests
// serialize at the single box, so each carries the controller's
// queueing delay on top of the propagation to it and back.
type central struct {
	perReq    sim.Duration
	busyUntil sim.Time
}

// scheduleCentralSync charges the centralized arm its steady-state
// bookkeeping: every epoch the controller refreshes fabric link state
// (one update per directed link) and re-syncs every live allocation.
// This is what makes central control bytes grow with fabric size even
// at a fixed workload, while the hierarchy's distributed state needs
// no such sweep.
func (sys *System) scheduleCentralSync() {
	sys.eng.Schedule(sys.P.Epoch, func() {
		if sys.inflight > 0 {
			n := int64(len(sys.net.Links)) + sys.inflight
			sys.Stats.SyncMessages += n
			sys.countMessages(n)
		}
		sys.scheduleCentralSync()
	})
}

// refreshCentral asks the controller for a whole-path allocation in a
// single exchange: one request climbs to the controller, every link
// arbitrator on both halves of the path is consulted there, and one
// response returns. No pruning and no delegation — the controller
// needs full path state — and the exchange pays the serialization of
// a single box on top of the longer round trip.
func (c *Client) refreshCentral(key int64, demand netem.BitRate) {
	sys := c.sys
	ctr := sys.central
	start := sys.eng.Now()
	// The controller sits behind the core: the request travels the
	// host's full upward hop count to reach it.
	hops := len(c.upPath)
	fi := sys.Faults
	if fi != nil && fi.DropRequest() {
		sys.o.reqDrop.Inc()
		sys.emitCtrl(CtrlEvent{Flow: c.flow, SrcSide: true, Start: start, Outcome: CtrlReqDropped})
		return
	}

	worst := Decision{Queue: 0, Rref: netem.BitRate(1 << 62)}
	merge := func(h Decision) {
		if h.Queue > worst.Queue {
			worst.Queue = h.Queue
		}
		if h.Rref < worst.Rref {
			worst.Rref = h.Rref
		}
	}
	dead := false
	for _, l := range c.upPath {
		a := sys.arbs[l.ID]
		if a.Down() {
			dead = true
			break
		}
		merge(a.Update(c.flow, key, demand))
	}
	if !dead {
		for _, l := range c.downPath {
			a := sys.arbs[l.ID]
			if a.Down() {
				dead = true
				break
			}
			merge(a.Update(c.flow, key, demand))
		}
	}
	sys.countClimb(hops)
	if dead {
		sys.o.dead.Inc()
		sys.emitCtrl(CtrlEvent{Flow: c.flow, SrcSide: true, Level: hops, Start: start, Outcome: CtrlDeadArb})
		return
	}

	// Controller serialization: the request arrives after the one-way
	// propagation, waits for the box to drain earlier work, then holds
	// it for the per-request service time.
	arrive := start.Add(sim.Duration(hops) * sys.P.CtrlPerHop)
	begin := arrive
	if ctr.busyUntil > begin {
		begin = ctr.busyUntil
	}
	ctr.busyUntil = begin.Add(ctr.perReq)
	sys.o.centralQ.Observe(int64(begin.Sub(arrive)))
	latency := ctr.busyUntil.Sub(start) + sim.Duration(hops)*sys.P.CtrlPerHop
	if fi != nil {
		if fi.DropResponse() {
			sys.o.respDrop.Inc()
			sys.emitCtrl(CtrlEvent{Flow: c.flow, SrcSide: true, Level: hops, Start: start, Outcome: CtrlRespDropped})
			return
		}
		latency += fi.CtrlExtraDelay()
	}
	sys.o.rtt[sys.lvl(hops)].Observe(int64(latency))
	sys.emitCtrl(CtrlEvent{Flow: c.flow, SrcSide: true, Level: hops, Start: start, Latency: latency, Outcome: CtrlOK})
	result := worst
	sys.eng.Schedule(latency, func() {
		if c.released {
			return
		}
		// One response covers the whole path: both halves land at once.
		c.srcHalf, c.dstHalf = result, result
		c.haveSrc, c.haveDst = true, true
		if c.OnUpdate != nil {
			c.OnUpdate()
		}
	})
}

// releaseCentral deregisters the flow from every path link in one
// one-way message to the controller. A lost release cleans nothing —
// the controller's leases expire the entries.
func (c *Client) releaseCentral() {
	sys := c.sys
	lost := false
	if fi := sys.Faults; fi != nil {
		lost = fi.DropRequest()
	}
	if lost {
		sys.countRelease(0)
		return
	}
	for _, l := range c.upPath {
		sys.arbs[l.ID].Remove(c.flow)
	}
	for _, l := range c.downPath {
		sys.arbs[l.ID].Remove(c.flow)
	}
	sys.countRelease(len(c.upPath))
}
