// Package arbitration implements PASE's scalable control plane: one
// arbitrator per directed link runs Algorithm 1 of the paper, mapping
// each flow to a priority queue and a reference rate from the demands
// of the flows ahead of it; a per-fabric System organizes arbitrators
// into the bottom-up hierarchy with the paper's two overhead
// optimizations, early pruning and delegation.
package arbitration

import (
	"fmt"
	"sort"

	"pase/internal/check"
	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
)

// Decision is the output of Algorithm 1 for one flow on one link.
type Decision struct {
	// Queue is the priority class (0 = highest, NumQueues-1 = bottom).
	Queue int8
	// Rref is the reference rate.
	Rref netem.BitRate
}

// entry is one flow's state at an arbitrator.
type entry struct {
	flow pkt.FlowID
	// key is the scheduling criterion: remaining size for SJF or the
	// absolute deadline for EDF. Lower is more urgent.
	key int64
	// tieBreak orders equal keys deterministically.
	tieBreak pkt.FlowID
	demand   netem.BitRate
	// lease is the time after which the entry is garbage; refreshes
	// extend it.
	lease sim.Time

	decision Decision
}

// Arbitrator runs Algorithm 1 for one directed link. To keep the cost
// of arbitration linear in the number of flows rather than quadratic,
// allocations for all registered flows are recomputed in one sorted
// pass per epoch (the refresh interval); lookups between epochs serve
// the cached decision. Newly registered flows get an immediate
// incremental computation so flow setup never waits for an epoch edge.
type Arbitrator struct {
	// LinkID identifies the (possibly virtual) link this arbitrator
	// owns.
	LinkID int

	capacity  netem.BitRate
	numQueues int
	baseRate  netem.BitRate
	leaseDur  sim.Duration

	clock func() sim.Time

	entries map[pkt.FlowID]*entry
	sorted  []*entry // re-sorted each epoch
	epoch   sim.Time // when the current allocation pass happened
	period  sim.Duration

	// down marks a crashed arbitrator: soft state is gone and requests
	// go unanswered until Restore.
	down bool

	chk      *check.Checker
	chkLabel string
}

// NewArbitrator builds an arbitrator for a link of the given capacity.
// period is the epoch length (typically one fabric RTT); baseRate is
// the one-packet-per-RTT floor handed to flows that do not fit the top
// queue.
func NewArbitrator(linkID int, capacity netem.BitRate, numQueues int, baseRate netem.BitRate, period sim.Duration, clock func() sim.Time) *Arbitrator {
	if numQueues < 2 {
		panic("arbitration: need at least two priority queues")
	}
	return &Arbitrator{
		LinkID:    linkID,
		capacity:  capacity,
		numQueues: numQueues,
		baseRate:  baseRate,
		leaseDur:  8 * period,
		clock:     clock,
		entries:   make(map[pkt.FlowID]*entry),
		period:    period,
	}
}

// AttachCheck installs a runtime invariant checker: every allocation
// pass is verified against Algorithm 1's feasibility conditions
// (top-queue rates sum to at most the link capacity, no negative
// reference rate, queue indices in range). Nil detaches (the default).
func (a *Arbitrator) AttachCheck(c *check.Checker) {
	a.chk = c
	if c.Enabled() {
		a.chkLabel = fmt.Sprintf("arb/link%d", a.LinkID)
	}
}

// SetCapacity updates the link capacity (delegation resizes virtual
// links at runtime).
func (a *Arbitrator) SetCapacity(c netem.BitRate) {
	if c < a.baseRate {
		c = a.baseRate
	}
	if c != a.capacity {
		a.capacity = c
		a.epoch = -1 // force recompute on next access
	}
}

// Capacity returns the current (virtual) link capacity.
func (a *Arbitrator) Capacity() netem.BitRate { return a.capacity }

// Flows returns the number of live registered flows.
func (a *Arbitrator) Flows() int { return len(a.entries) }

// Crash wipes the arbitrator's soft state — the flow table and every
// cached allocation — and marks it unreachable. PASE keeps no durable
// state: after Restore everything rebuilds from the next round of
// refreshes (§3.3 of the paper).
func (a *Arbitrator) Crash() {
	a.down = true
	for id := range a.entries {
		delete(a.entries, id)
	}
	a.sorted = a.sorted[:0]
	a.epoch = -1
}

// Restore brings a crashed arbitrator back, empty; state rebuilds as
// refreshes arrive.
func (a *Arbitrator) Restore() {
	a.down = false
	a.epoch = -1
}

// Down reports whether the arbitrator is crashed.
func (a *Arbitrator) Down() bool { return a.down }

// Update registers or refreshes a flow and returns its decision
// (Algorithm 1). key is the scheduling criterion (remaining size or
// deadline); demand is the rate the sender could use.
func (a *Arbitrator) Update(flow pkt.FlowID, key int64, demand netem.BitRate) Decision {
	now := a.clock()
	e, ok := a.entries[flow]
	if !ok {
		e = &entry{flow: flow, tieBreak: flow}
		a.entries[flow] = e
	}
	e.key = key
	e.demand = demand
	e.lease = now.Add(a.leaseDur)
	// A registration leaves len(sorted) != len(entries), which forces
	// maybeRecompute to run a full pass immediately — newcomers never
	// wait for an epoch edge.
	a.maybeRecompute(now)
	return e.decision
}

// Lookup returns the cached decision for a flow without refreshing it.
func (a *Arbitrator) Lookup(flow pkt.FlowID) (Decision, bool) {
	e, ok := a.entries[flow]
	if !ok {
		return Decision{}, false
	}
	a.maybeRecompute(a.clock())
	return e.decision, true
}

// Remove deregisters a finished flow.
func (a *Arbitrator) Remove(flow pkt.FlowID) {
	if _, ok := a.entries[flow]; !ok {
		return
	}
	delete(a.entries, flow)
	a.epoch = -1 // re-allocate promptly so successors move up
}

// AggregateTopDemand sums the demands of flows currently mapped to
// queues 0..maxQueue; delegation uses it to size virtual links.
func (a *Arbitrator) AggregateTopDemand(maxQueue int8) netem.BitRate {
	a.maybeRecompute(a.clock())
	var sum netem.BitRate
	for _, e := range a.entries {
		if e.decision.Queue <= maxQueue {
			sum += e.demand
		}
	}
	return sum
}

func (a *Arbitrator) less(x, y *entry) bool {
	if x.key != y.key {
		return x.key < y.key
	}
	return x.tieBreak < y.tieBreak
}

// maybeRecompute refreshes every cached decision once per epoch.
func (a *Arbitrator) maybeRecompute(now sim.Time) {
	if a.epoch >= 0 && now < a.epoch.Add(a.period) && len(a.sorted) == len(a.entries) {
		return
	}
	a.epoch = now

	// Drop expired entries (flows that died without releasing).
	a.sorted = a.sorted[:0]
	for id, e := range a.entries {
		if e.lease < now {
			delete(a.entries, id)
			continue
		}
		a.sorted = append(a.sorted, e)
	}
	sort.Slice(a.sorted, func(i, j int) bool { return a.less(a.sorted[i], a.sorted[j]) })

	// Algorithm 1, one pass: ADH accumulates the demand ahead of each
	// flow.
	var adh netem.BitRate
	for _, e := range a.sorted {
		e.decision = a.decide(adh, e.demand)
		adh += e.demand
	}
	if a.chk != nil {
		a.checkAllocation()
	}
}

// checkAllocation verifies the freshly computed pass against the
// feasibility conditions: top-queue reference rates sum to at most the
// link capacity, every rate is non-negative, and every queue index is
// within [0, numQueues).
func (a *Arbitrator) checkAllocation() {
	var topSum netem.BitRate
	for _, e := range a.sorted {
		d := e.decision
		a.chk.RefRate(a.chkLabel, uint64(e.flow), int64(d.Rref))
		if d.Queue == 0 {
			topSum += d.Rref
		}
		if d.Queue < 0 || int(d.Queue) >= a.numQueues {
			a.chk.Reportf(check.InvArbCapacity, a.chkLabel, uint64(e.flow),
				"queue index %d outside [0,%d)", d.Queue, a.numQueues)
		}
	}
	a.chk.ArbAllocation(a.chkLabel, int64(topSum), int64(a.capacity))
}

// decide evaluates Algorithm 1 for a flow with the given aggregate
// higher-priority demand.
func (a *Arbitrator) decide(adh, demand netem.BitRate) Decision {
	var d Decision
	if adh < a.capacity {
		spare := a.capacity - adh
		if demand < spare {
			d.Rref = demand
		} else {
			d.Rref = spare
		}
		d.Queue = 0
		return d
	}
	d.Rref = a.baseRate
	// Each intermediate queue accommodates one link-capacity worth of
	// aggregate demand (ADH in [qC, (q+1)C) maps to 0-based queue q),
	// and the bottom queue absorbs all remaining flows — the 0-based
	// reading of the paper's PrioQue = ceil(ADH/C) clamp.
	q := int(adh / a.capacity)
	if q > a.numQueues-1 {
		q = a.numQueues - 1
	}
	d.Queue = int8(q)
	return d
}
