package arbitration

import (
	"testing"
	"testing/quick"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/topology"
)

func newArb(c netem.BitRate) (*sim.Engine, *Arbitrator) {
	eng := sim.NewEngine()
	a := NewArbitrator(0, c, 8, 40*netem.Mbps, 300*sim.Microsecond, eng.Now)
	return eng, a
}

func TestSingleFlowTopQueueFullRate(t *testing.T) {
	_, a := newArb(netem.Gbps)
	d := a.Update(1, 1000, netem.Gbps)
	if d.Queue != 0 || d.Rref != netem.Gbps {
		t.Fatalf("lone flow got %+v, want top queue at line rate", d)
	}
}

func TestDemandBelowSpare(t *testing.T) {
	_, a := newArb(netem.Gbps)
	d := a.Update(1, 1000, 200*netem.Mbps)
	if d.Queue != 0 || d.Rref != 200*netem.Mbps {
		t.Fatalf("got %+v, want top queue at demand", d)
	}
}

func TestSecondFlowGetsLeftover(t *testing.T) {
	_, a := newArb(netem.Gbps)
	a.Update(1, 1000, 600*netem.Mbps)
	d := a.Update(2, 2000, netem.Gbps)
	if d.Queue != 0 || d.Rref != 400*netem.Mbps {
		t.Fatalf("second flow got %+v, want top queue at 400Mbps", d)
	}
}

func TestSaturatedFlowsDropToLowerQueues(t *testing.T) {
	_, a := newArb(netem.Gbps)
	// Ten flows each demanding the full link, in key order: flow k
	// sees ADH = k × C and must map to 0-based queue min(k, 7).
	for i := 0; i < 10; i++ {
		a.Update(pkt.FlowID(i+1), int64(i), netem.Gbps)
	}
	for i := 0; i < 10; i++ {
		d, ok := a.Lookup(pkt.FlowID(i + 1))
		if !ok {
			t.Fatalf("flow %d missing", i+1)
		}
		want := int8(i)
		if i > 7 {
			want = 7
		}
		if d.Queue != want {
			t.Fatalf("flow %d queue = %d, want %d", i+1, d.Queue, want)
		}
		if i == 0 && d.Rref != netem.Gbps {
			t.Fatalf("top flow rref = %v", d.Rref)
		}
		if i > 0 && d.Rref != 40*netem.Mbps {
			t.Fatalf("queued flow %d rref = %v, want base rate", i+1, d.Rref)
		}
	}
}

func TestRemovePromotesSuccessor(t *testing.T) {
	_, a := newArb(netem.Gbps)
	a.Update(1, 10, netem.Gbps)
	a.Update(2, 20, netem.Gbps)
	if d, _ := a.Lookup(2); d.Queue != 1 {
		t.Fatalf("flow 2 should start in queue 1, got %d", d.Queue)
	}
	a.Remove(1)
	if d, _ := a.Lookup(2); d.Queue != 0 || d.Rref != netem.Gbps {
		t.Fatalf("after removal flow 2 got %+v, want top/line-rate", d)
	}
}

func TestLeaseExpiry(t *testing.T) {
	eng, a := newArb(netem.Gbps)
	a.Update(1, 10, netem.Gbps)
	a.Update(2, 20, netem.Gbps)
	// Advance past the lease (8 epochs) refreshing only flow 2.
	for i := 0; i < 12; i++ {
		eng.Schedule(300*sim.Microsecond, func() { a.Update(2, 20, netem.Gbps) })
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if a.Flows() != 1 {
		t.Fatalf("flows = %d, want 1 (flow 1 lease-expired)", a.Flows())
	}
	if d, _ := a.Lookup(2); d.Queue != 0 {
		t.Fatalf("survivor queue = %d, want 0", d.Queue)
	}
}

func TestDeadlineKeyPrecedesSizeKey(t *testing.T) {
	_, a := newArb(netem.Gbps)
	// Key encoding puts deadlines (ns timestamps) below size+2^50.
	deadlineKey := int64(20 * sim.Millisecond)
	sizeKey := int64(2000) + (1 << 50)
	a.Update(1, sizeKey, netem.Gbps)
	d := a.Update(2, deadlineKey, netem.Gbps)
	if d.Queue != 0 {
		t.Fatalf("deadline flow queue = %d, want 0", d.Queue)
	}
	if d, _ := a.Lookup(1); d.Queue != 1 {
		t.Fatalf("size flow queue = %d, want 1", d.Queue)
	}
}

func TestSetCapacityRecomputes(t *testing.T) {
	_, a := newArb(netem.Gbps)
	a.Update(1, 10, 600*netem.Mbps)
	a.Update(2, 20, 600*netem.Mbps)
	if d, _ := a.Lookup(2); d.Queue != 0 {
		t.Fatalf("flow 2 queue = %d, want 0 (600+600 > C but ADH=600 < C)", d.Queue)
	}
	a.SetCapacity(500 * netem.Mbps)
	if d, _ := a.Lookup(2); d.Queue != 1 {
		t.Fatalf("after shrink flow 2 queue = %d, want 1", d.Queue)
	}
}

// Property: queues are monotone in key order and rref of the top flow
// never exceeds capacity or demand.
func TestArbitratorMonotonicity(t *testing.T) {
	f := func(demandsRaw []uint32) bool {
		if len(demandsRaw) == 0 || len(demandsRaw) > 64 {
			return true
		}
		_, a := newArb(netem.Gbps)
		for i, raw := range demandsRaw {
			demand := netem.BitRate(raw%1000+1) * netem.Mbps
			a.Update(pkt.FlowID(i+1), int64(i), demand)
		}
		prevQ := int8(0)
		for i := range demandsRaw {
			d, ok := a.Lookup(pkt.FlowID(i + 1))
			if !ok {
				return false
			}
			if d.Queue < prevQ {
				return false
			}
			prevQ = d.Queue
			if d.Rref > netem.Gbps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- System-level tests -------------------------------------------------

func prioQ(topology.QueueKind) netem.Queue { return netem.NewPrio(8, 500, 65) }

func buildSys(t *testing.T, p Params) (*sim.Engine, *topology.Network, *System) {
	t.Helper()
	eng := sim.NewEngine()
	net := topology.Build(eng, topology.Baseline(prioQ))
	return eng, net, NewSystem(net, p)
}

func TestClientIntraRackLocalOnlyMessages(t *testing.T) {
	eng, _, sys := buildSys(t, DefaultParams())
	c := sys.NewClient(1, 0, 1) // same rack
	c.Refresh(1000+(1<<50), netem.Gbps)
	if err := eng.RunUntil(sim.Time(sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if !c.Ready() {
		t.Fatal("intra-rack client should be ready immediately")
	}
	if sys.Stats.Messages != 0 {
		t.Fatalf("intra-rack arbitration sent %d messages, want 0", sys.Stats.Messages)
	}
	d := c.Combined()
	if d.Queue != 0 || d.Rref != netem.Gbps {
		t.Fatalf("combined = %+v", d)
	}
}

func TestClientCrossCoreDelegationMessages(t *testing.T) {
	p := DefaultParams()
	eng, _, sys := buildSys(t, p)
	c := sys.NewClient(1, 0, 159) // cross-core
	c.Refresh(1000+(1<<50), netem.Gbps)
	if err := eng.RunUntil(sim.Time(250 * sim.Microsecond)); err != nil {
		t.Fatal(err)
	}
	// Delegation: each half goes host->ToR and back = 2 messages, so 4
	// total (delegation share-refresh messages excluded by the horizon).
	if sys.Stats.Messages != 4 {
		t.Fatalf("messages = %d, want 4 with delegation", sys.Stats.Messages)
	}
	if !c.Ready() {
		t.Fatal("client should be ready after ToR response")
	}
}

func TestClientCrossCoreNoDelegationMessages(t *testing.T) {
	p := DefaultParams()
	p.Delegation = false
	eng, _, sys := buildSys(t, p)
	c := sys.NewClient(1, 0, 159)
	c.Refresh(1000+(1<<50), netem.Gbps)
	if err := eng.RunUntil(sim.Time(250 * sim.Microsecond)); err != nil {
		t.Fatal(err)
	}
	// Each half: host->ToR->agg and back = 4 messages; 8 total.
	if sys.Stats.Messages != 8 {
		t.Fatalf("messages = %d, want 8 without delegation", sys.Stats.Messages)
	}
}

func TestEarlyPruningStopsPropagation(t *testing.T) {
	p := DefaultParams()
	p.Delegation = false
	eng, _, sys := buildSys(t, p)
	// Saturate host 0's uplink arbitrator so later flows are pruned.
	// Host 0's uplink is its first up link.
	for i := 0; i < 20; i++ {
		c := sys.NewClient(pkt.FlowID(i+1), 0, 159)
		c.Refresh(int64(i)+(1<<50), netem.Gbps)
	}
	if err := eng.RunUntil(sim.Time(sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if sys.Stats.Pruned == 0 {
		t.Fatal("expected some refreshes to be pruned at the host level")
	}
	// Pruned flows must still have a (local) decision.
	if sys.Stats.Messages >= 20*8 {
		t.Fatalf("messages = %d, pruning saved nothing", sys.Stats.Messages)
	}
}

func TestLocalOnlyNoMessages(t *testing.T) {
	p := DefaultParams()
	p.LocalOnly = true
	p.Delegation = false
	eng, _, sys := buildSys(t, p)
	c := sys.NewClient(1, 0, 159)
	c.Refresh(1000+(1<<50), netem.Gbps)
	if err := eng.RunUntil(sim.Time(sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if sys.Stats.Messages != 0 {
		t.Fatalf("local-only arbitration sent %d messages", sys.Stats.Messages)
	}
	if !c.Ready() {
		t.Fatal("local-only client must be ready")
	}
}

func TestDelegatedShareTracksDemand(t *testing.T) {
	p := DefaultParams()
	eng, net, sys := buildSys(t, p)
	// Find the agg0->core up link.
	var aggCore *topology.Link
	for _, l := range net.Links {
		if l.Level == topology.LevelAggCore && l.Up && net.AggOf(0) == 0 && l.From == net.Aggs[0] {
			aggCore = l
			break
		}
	}
	if aggCore == nil {
		t.Fatal("agg-core link not found")
	}
	va0 := sys.VirtualArbitrator(aggCore.ID, 0) // rack 0's slice
	va1 := sys.VirtualArbitrator(aggCore.ID, 1)
	if va0 == nil || va1 == nil {
		t.Fatal("virtual arbitrators missing")
	}
	// Only rack 0 has top-queue demand; after a share refresh its
	// slice should dominate.
	va0.Update(1, 100, 8*netem.Gbps)
	if err := eng.RunUntil(sim.Time(2 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if va0.Capacity() <= va1.Capacity() {
		t.Fatalf("rack0 slice %v should exceed idle rack1 slice %v", va0.Capacity(), va1.Capacity())
	}
	if va0.Capacity()+va1.Capacity() > 10*netem.Gbps+netem.Gbps {
		t.Fatalf("slices exceed physical capacity: %v + %v", va0.Capacity(), va1.Capacity())
	}
}

func TestReleaseRemovesEverywhere(t *testing.T) {
	p := DefaultParams()
	p.EarlyPruning = false
	eng, net, sys := buildSys(t, p)
	c := sys.NewClient(1, 0, 159)
	c.Refresh(1000+(1<<50), netem.Gbps)
	if err := eng.RunUntil(sim.Time(sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	up := net.PathUp(0, 159)
	if sys.Arbitrator(up[0].ID).Flows() != 1 {
		t.Fatal("flow not registered at host uplink")
	}
	c.Release()
	for _, l := range up {
		if a := sys.Arbitrator(l.ID); a.Flows() != 0 {
			t.Fatalf("link %v still has %d flows after release", l, a.Flows())
		}
	}
	// Double release is a no-op.
	c.Release()
}

func TestCombinedTakesWorstQueueAndMinRate(t *testing.T) {
	eng, _, sys := buildSys(t, DefaultParams())
	// Saturate the destination downlink with a higher-priority flow
	// from another sender.
	other := sys.NewClient(9, 2, 1)
	other.Refresh(1+(1<<50), netem.Gbps)
	c := sys.NewClient(1, 0, 1)
	c.Refresh(1000+(1<<50), netem.Gbps)
	if err := eng.RunUntil(sim.Time(sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	d := c.Combined()
	// Uplink is free (queue 0) but the shared downlink has flow 9
	// ahead: combined queue must be > 0.
	if d.Queue == 0 {
		t.Fatalf("combined queue = 0, downlink contention ignored")
	}
}
