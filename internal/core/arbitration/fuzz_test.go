package arbitration

import (
	"testing"

	"pase/internal/check"
	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
)

// FuzzArbitrator drives one arbitrator through arbitrary interleavings
// of registrations, refreshes, removals, capacity changes and clock
// jumps. The attached strict checker verifies Algorithm 1's feasibility
// conditions — top-queue reference rates sum to at most the capacity,
// no negative rate, queue indices in range — after every allocation
// pass; the target adds the per-decision bounds a caller relies on.
func FuzzArbitrator(f *testing.F) {
	f.Add([]byte{8, 0x01, 0x22, 0x43, 0x64, 0x85, 0xa6, 0xc7, 0xe8})
	f.Add([]byte{1, 0xff, 0x00, 0x3f, 0x7f, 0xbf, 0x20, 0x60})
	f.Add([]byte{200, 0x10, 0x11, 0x12, 0x13, 0xd4, 0xd5, 0x16, 0x97})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		capacity := netem.BitRate(1+int(data[0])) * 10 * netem.Mbps
		numQueues := 2 + int(data[1])%7
		base := 40 * netem.Mbps
		var now sim.Time
		a := NewArbitrator(0, capacity, numQueues, base, 300*sim.Microsecond,
			func() sim.Time { return now })
		a.AttachCheck(check.NewStrict(func() int64 { return int64(now) }))

		for i, op := range data[2:] {
			flow := pkt.FlowID(op%13 + 1)
			switch op >> 6 {
			case 0, 1: // register / refresh
				demand := netem.BitRate(1+int(op)*7) * netem.Mbps
				key := int64(op) * 1000
				d := a.Update(flow, key, demand)
				if d.Queue < 0 || int(d.Queue) >= numQueues {
					t.Fatalf("op %d: queue %d outside [0,%d)", i, d.Queue, numQueues)
				}
				if d.Rref < 0 {
					t.Fatalf("op %d: negative Rref %v", i, d.Rref)
				}
				if d.Queue == 0 && d.Rref > a.Capacity() {
					t.Fatalf("op %d: top-queue Rref %v exceeds capacity %v",
						i, d.Rref, a.Capacity())
				}
			case 2: // remove or look up
				if op&1 != 0 {
					a.Remove(flow)
				} else if d, ok := a.Lookup(flow); ok && d.Rref < 0 {
					t.Fatalf("op %d: lookup returned negative Rref", i)
				}
			case 3: // clock jump or capacity change (delegation resize)
				if op&1 != 0 {
					now = now.Add(sim.Duration(int(op&0x3e)) * 50 * sim.Microsecond)
				} else {
					a.SetCapacity(netem.BitRate(int(op&0x3e)+1) * 25 * netem.Mbps)
				}
			}
		}
		// A final full pass under the checker: expire nothing, recompute
		// everything at the current clock.
		a.AggregateTopDemand(int8(numQueues - 1))
		if a.Flows() < 0 {
			t.Fatal("negative flow count")
		}
	})
}
