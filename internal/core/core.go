// Package core assembles PASE — the paper's primary contribution —
// from its two halves: the arbitration control plane
// (internal/core/arbitration) and the priority-queue-aware end-host
// transport (internal/core/endhost).
package core

import (
	"pase/internal/core/arbitration"
	"pase/internal/core/endhost"
	"pase/internal/transport"
)

// Attach builds an arbitration System for the driver's fabric and
// installs the PASE end-host transport on every host.
func Attach(d *transport.Driver, p arbitration.Params, cfg endhost.Config) (*arbitration.System, *endhost.Transport) {
	sys := arbitration.NewSystem(d.Net, p)
	t := endhost.Attach(d, sys, cfg)
	return sys, t
}
