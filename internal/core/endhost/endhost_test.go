package endhost_test

import (
	"testing"

	"pase/internal/core"
	"pase/internal/core/arbitration"
	"pase/internal/core/endhost"
	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/topology"
	"pase/internal/transport"
	"pase/internal/transport/dctcp"
	"pase/internal/workload"
)

func prioQ(topology.QueueKind) netem.Queue { return netem.NewPrio(8, 500, 65) }

// paseRack builds a single-rack PASE setup.
func paseRack(n int, modP func(*arbitration.Params), modC func(*endhost.Config)) (*transport.Driver, *arbitration.System) {
	eng := sim.NewEngine()
	net := topology.Build(eng, topology.SingleRack(n, prioQ))
	d := transport.NewDriver(net, nil)
	p := arbitration.DefaultParams()
	p.Epoch = 100 * sim.Microsecond // intra-rack RTT
	if modP != nil {
		modP(&p)
	}
	cfg := endhost.DefaultConfig()
	if modC != nil {
		modC(&cfg)
	}
	sys, _ := core.Attach(d, p, cfg)
	return d, sys
}

func TestLoneFlowGuidedStart(t *testing.T) {
	d, _ := paseRack(2, nil, nil)
	d.Schedule([]workload.FlowSpec{{ID: 1, Src: 0, Dst: 1, Size: 150_000, Start: 0}})
	s, err := d.Run(sim.Time(sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 1 {
		t.Fatal("flow did not complete")
	}
	// Reference-rate start: no slow-start ramp. 150KB at 1Gbps ≈
	// 1.2ms + RTT + arbitration (local, ≈0).
	if s.AFCT > 2*sim.Millisecond {
		t.Fatalf("PASE lone flow FCT = %v, want < 2ms", s.AFCT)
	}
}

func TestShortFlowPreemptsLong(t *testing.T) {
	// Strict priority via queues: a short flow against a long
	// background flow must finish near its unloaded FCT.
	d, _ := paseRack(4, nil, nil)
	d.Schedule([]workload.FlowSpec{
		{ID: 1, Src: 0, Dst: 2, Size: 1 << 30, Start: 0, Background: true},
		{ID: 2, Src: 1, Dst: 2, Size: 50_000, Start: sim.Time(10 * sim.Millisecond)},
	})
	s, err := d.Run(sim.Time(2 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 1 {
		t.Fatal("short flow did not complete")
	}
	if s.AFCT > 1500*sim.Microsecond {
		t.Fatalf("short flow FCT = %v, want near-unloaded (<1.5ms)", s.AFCT)
	}
}

func TestSJFOrderingAcrossFlows(t *testing.T) {
	// Three flows to one receiver, sizes 50/500/2000 KB started
	// together: completion order must follow size.
	d, _ := paseRack(5, nil, nil)
	d.Schedule([]workload.FlowSpec{
		{ID: 1, Src: 0, Dst: 4, Size: 2_000_000, Start: 0},
		{ID: 2, Src: 1, Dst: 4, Size: 500_000, Start: 0},
		{ID: 3, Src: 2, Dst: 4, Size: 50_000, Start: 0},
	})
	s, err := d.Run(sim.Time(5 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 3 {
		t.Fatalf("completed = %d, want 3", s.Completed)
	}
	fct := map[uint64]sim.Duration{}
	for _, r := range d.Collector.Completed() {
		fct[r.ID] = r.FCT()
	}
	if !(fct[3] < fct[2] && fct[2] < fct[1]) {
		t.Fatalf("SJF order violated: %v", fct)
	}
	// The shortest flow should be barely affected by the others.
	if fct[3] > 2*sim.Millisecond {
		t.Fatalf("shortest flow FCT = %v", fct[3])
	}
}

func TestDeadlineEDF(t *testing.T) {
	// Same-size flows, different deadlines: the earlier deadline must
	// finish first and both should meet their deadlines.
	d, _ := paseRack(4, nil, nil)
	d.Schedule([]workload.FlowSpec{
		{ID: 1, Src: 0, Dst: 2, Size: 500_000, Start: 0, Deadline: sim.Time(50 * sim.Millisecond)},
		{ID: 2, Src: 1, Dst: 2, Size: 500_000, Start: 0, Deadline: sim.Time(10 * sim.Millisecond)},
	})
	s, err := d.Run(sim.Time(sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 2 {
		t.Fatalf("completed = %d", s.Completed)
	}
	fct := map[uint64]sim.Duration{}
	for _, r := range d.Collector.Completed() {
		fct[r.ID] = r.FCT()
	}
	if fct[2] >= fct[1] {
		t.Fatalf("EDF violated: tight %v vs loose %v", fct[2], fct[1])
	}
	if s.AppThroughput != 1 {
		t.Fatalf("deadlines met = %v, want 1.0", s.AppThroughput)
	}
}

func TestLoadedAllToAllCompletes(t *testing.T) {
	d, sys := paseRack(10, nil, nil)
	spec := workload.Spec{
		Pattern:         workload.AllToAll{Hosts: workload.HostRange(0, 10)},
		Sizes:           workload.UniformSize{Min: 2_000, Max: 198_000},
		Load:            0.7,
		Reference:       10 * netem.Gbps,
		NumFlows:        400,
		BackgroundFlows: 2,
	}
	d.Schedule(spec.Generate(sim.NewRand(21), 1))
	s, err := d.Run(sim.Time(60 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 400 {
		t.Fatalf("completed = %d, want 400", s.Completed)
	}
	if sys.Stats.Refreshes == 0 {
		t.Fatal("arbitration refreshes not happening")
	}
}

func TestInterRackViaFabric(t *testing.T) {
	eng := sim.NewEngine()
	net := topology.Build(eng, topology.Baseline(prioQ))
	d := transport.NewDriver(net, nil)
	sys, _ := core.Attach(d, arbitration.DefaultParams(), endhost.DefaultConfig())
	d.Schedule([]workload.FlowSpec{
		{ID: 1, Src: 0, Dst: 159, Size: 200_000, Start: 0}, // cross-core
		{ID: 2, Src: 1, Dst: 41, Size: 200_000, Start: 0},  // same agg
	})
	s, err := d.Run(sim.Time(5 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 2 {
		t.Fatalf("completed = %d, want 2", s.Completed)
	}
	if s.AFCT > 5*sim.Millisecond {
		t.Fatalf("inter-rack AFCT = %v", s.AFCT)
	}
	if sys.Stats.Messages == 0 {
		t.Fatal("inter-rack flows must generate control messages")
	}
}

func TestPASEBeatsDCTCPShortAgainstLong(t *testing.T) {
	short := func(attach func(d *transport.Driver)) sim.Duration {
		eng := sim.NewEngine()
		net := topology.Build(eng, topology.SingleRack(4, prioQ))
		d := transport.NewDriver(net, nil)
		attach(d)
		d.Schedule([]workload.FlowSpec{
			{ID: 1, Src: 0, Dst: 2, Size: 1 << 30, Start: 0, Background: true},
			{ID: 2, Src: 1, Dst: 2, Size: 50_000, Start: sim.Time(20 * sim.Millisecond)},
		})
		s, err := d.Run(sim.Time(2 * sim.Second))
		if err != nil || s.Completed != 1 {
			t.Fatalf("run failed: %v %+v", err, s)
		}
		return s.AFCT
	}
	pase := short(func(d *transport.Driver) {
		p := arbitration.DefaultParams()
		p.Epoch = 100 * sim.Microsecond
		core.Attach(d, p, endhost.DefaultConfig())
	})
	dc := short(func(d *transport.Driver) {
		for _, st := range d.Stacks {
			st.NewControl = dctcp.New(dctcp.DefaultConfig())
		}
	})
	if float64(pase) > 0.8*float64(dc) {
		t.Fatalf("PASE short flow %v should clearly beat DCTCP %v", pase, dc)
	}
}

func TestPASEDCTCPAblationSlower(t *testing.T) {
	// Figure 13a: disabling the reference rate (PASE-DCTCP) costs
	// performance for fresh flows.
	run := func(useRef bool) sim.Duration {
		d, _ := paseRack(6, nil, func(c *endhost.Config) { c.UseRefRate = useRef })
		spec := workload.Spec{
			Pattern:   workload.AllToAll{Hosts: workload.HostRange(0, 6)},
			Sizes:     workload.UniformSize{Min: 100_000, Max: 500_000},
			Load:      0.5,
			Reference: 6 * netem.Gbps,
			NumFlows:  150,
		}
		d.Schedule(spec.Generate(sim.NewRand(33), 1))
		s, err := d.Run(sim.Time(30 * sim.Second))
		if err != nil || s.Completed != 150 {
			t.Fatalf("run failed: %v %+v", err, s)
		}
		return s.AFCT
	}
	withRef := run(true)
	without := run(false)
	if float64(withRef) > float64(without)*1.02 {
		t.Fatalf("reference rate should help: with=%v without=%v", withRef, without)
	}
}

func TestProbingToggleBothComplete(t *testing.T) {
	for _, probing := range []bool{true, false} {
		d, _ := paseRack(8, nil, func(c *endhost.Config) { c.Probing = probing })
		spec := workload.Spec{
			Pattern:   workload.AllToAll{Hosts: workload.HostRange(0, 8)},
			Sizes:     workload.UniformSize{Min: 2_000, Max: 198_000},
			Load:      0.8,
			Reference: 8 * netem.Gbps,
			NumFlows:  200,
		}
		d.Schedule(spec.Generate(sim.NewRand(5), 1))
		s, err := d.Run(sim.Time(60 * sim.Second))
		if err != nil {
			t.Fatal(err)
		}
		if s.Completed != 200 {
			t.Fatalf("probing=%v: completed = %d, want 200", probing, s.Completed)
		}
	}
}

func TestReorderGuardToggleBothComplete(t *testing.T) {
	for _, guard := range []bool{true, false} {
		d, _ := paseRack(8, nil, func(c *endhost.Config) { c.ReorderGuard = guard })
		spec := workload.Spec{
			Pattern:   workload.AllToAll{Hosts: workload.HostRange(0, 8)},
			Sizes:     workload.UniformSize{Min: 2_000, Max: 198_000},
			Load:      0.6,
			Reference: 8 * netem.Gbps,
			NumFlows:  150,
		}
		d.Schedule(spec.Generate(sim.NewRand(6), 1))
		s, err := d.Run(sim.Time(60 * sim.Second))
		if err != nil {
			t.Fatal(err)
		}
		if s.Completed != 150 {
			t.Fatalf("guard=%v: completed = %d, want 150", guard, s.Completed)
		}
	}
}

func TestArbitrationStateDrainsAfterRun(t *testing.T) {
	d, sys := paseRack(6, nil, nil)
	spec := workload.Spec{
		Pattern:   workload.AllToAll{Hosts: workload.HostRange(0, 6)},
		Sizes:     workload.UniformSize{Min: 2_000, Max: 50_000},
		Load:      0.3,
		Reference: 6 * netem.Gbps,
		NumFlows:  50,
	}
	d.Schedule(spec.Generate(sim.NewRand(9), 1))
	if _, err := d.Run(sim.Time(30 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	// Every completed flow released its arbitration entries.
	for _, h := range workload.HostRange(0, 6) {
		for _, l := range d.Net.UpLinks(h) {
			if n := sys.Arbitrator(l.ID).Flows(); n != 0 {
				t.Fatalf("link %v retains %d flows", l, n)
			}
		}
	}
	_ = pkt.MTU
}
