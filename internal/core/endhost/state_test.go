package endhost

// White-box tests of the Algorithm 2 state machine: criterion keys,
// window application per queue class, the reorder guard, and probe
// mode. A minimal single-rack fabric supplies real Senders.

import (
	"testing"

	"pase/internal/core/arbitration"
	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/topology"
	"pase/internal/transport"
	"pase/internal/workload"
)

type rig struct {
	eng *sim.Engine
	net *topology.Network
	d   *transport.Driver
	sys *arbitration.System
	t   *Transport
}

func newRig(tb testing.TB, cfg Config) *rig {
	tb.Helper()
	eng := sim.NewEngine()
	net := topology.Build(eng, topology.SingleRack(4, func(topology.QueueKind) netem.Queue {
		return netem.NewPrio(8, 500, 65)
	}))
	d := transport.NewDriver(net, nil)
	p := arbitration.DefaultParams()
	p.Epoch = 100 * sim.Microsecond
	sys := arbitration.NewSystem(net, p)
	t := Attach(d, sys, cfg)
	return &rig{eng: eng, net: net, d: d, sys: sys, t: t}
}

// startFlow launches one flow and returns its sender and control.
func (r *rig) startFlow(tb testing.TB, spec workload.FlowSpec) (*transport.Sender, *control) {
	tb.Helper()
	s := r.d.Stack(spec.Src).StartFlow(spec)
	c, ok := s.CC.(*control)
	if !ok {
		tb.Fatal("sender not carrying a PASE control")
	}
	return s, c
}

func TestCriterionKeyRanges(t *testing.T) {
	r := newRig(t, DefaultConfig())
	sDeadline, cDeadline := r.startFlow(t, workload.FlowSpec{
		ID: 1, Src: 0, Dst: 1, Size: 10_000, Deadline: sim.Time(20 * sim.Millisecond)})
	sTask, cTask := r.startFlow(t, workload.FlowSpec{
		ID: 2, Src: 0, Dst: 1, Size: 10_000, Task: 7})
	sSize, cSize := r.startFlow(t, workload.FlowSpec{
		ID: 3, Src: 0, Dst: 1, Size: 10_000})

	kd := cDeadline.key(sDeadline)
	kt := cTask.key(sTask)
	ks := cSize.key(sSize)
	// Without TaskAware, the task flow is ranked by size.
	if kt != ks {
		t.Fatalf("task flow should use size key unless TaskAware (task=%d size=%d)", kt, ks)
	}
	if !(kd < ks) {
		t.Fatalf("deadline key %d must precede size key %d", kd, ks)
	}

	cfg := DefaultConfig()
	cfg.TaskAware = true
	r2 := newRig(t, cfg)
	sT2, cT2 := r2.startFlow(t, workload.FlowSpec{ID: 2, Src: 0, Dst: 1, Size: 10_000, Task: 7})
	sS2, cS2 := r2.startFlow(t, workload.FlowSpec{ID: 3, Src: 0, Dst: 1, Size: 10_000})
	sD2, cD2 := r2.startFlow(t, workload.FlowSpec{
		ID: 4, Src: 0, Dst: 1, Size: 10_000, Deadline: sim.Time(20 * sim.Millisecond)})
	kT := cT2.key(sT2)
	kS := cS2.key(sS2)
	kD := cD2.key(sD2)
	if !(kD < kT && kT < kS) {
		t.Fatalf("want deadline < task < size, got %d %d %d", kD, kT, kS)
	}
}

func TestFlowHeldUntilArbitrationReady(t *testing.T) {
	r := newRig(t, DefaultConfig())
	s, c := r.startFlow(t, workload.FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 50_000})
	// Arbitration responses are scheduled (same-instant events for the
	// local half) but have not run yet.
	if !s.Hold || c.started {
		t.Fatal("flow must hold until the source half answers")
	}
	if err := r.eng.RunUntil(sim.Time(50 * sim.Microsecond)); err != nil {
		t.Fatal(err)
	}
	if s.Hold && !c.probeMode {
		t.Fatal("flow should be released after local arbitration")
	}
	if !c.started {
		t.Fatal("control should have started")
	}
	if c.activePrio != 0 {
		t.Fatalf("lone flow should sit in the top queue, got %d", c.activePrio)
	}
	if s.Cwnd < 2 {
		t.Fatalf("top-queue window should be Rref-sized, got %v", s.Cwnd)
	}
}

func TestMinRTOPerQueue(t *testing.T) {
	r := newRig(t, DefaultConfig())
	s, c := r.startFlow(t, workload.FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 50_000})
	c.activePrio = 0
	if got := c.MinRTO(s); got != 10*sim.Millisecond {
		t.Fatalf("top-queue minRTO = %v", got)
	}
	c.activePrio = 3
	if got := c.MinRTO(s); got != 200*sim.Millisecond {
		t.Fatalf("low-queue minRTO = %v", got)
	}
}

func TestProbeModeEntersAndLeaves(t *testing.T) {
	r := newRig(t, DefaultConfig())
	s, c := r.startFlow(t, workload.FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 500_000})
	if err := r.eng.RunUntil(sim.Time(100 * sim.Microsecond)); err != nil {
		t.Fatal(err)
	}
	// Force the bottom queue: probe mode must hold data and schedule
	// probes.
	c.adopt(s, c.bottomQueue())
	c.applyWindow(s)
	c.updateHold(s)
	if !c.probeMode || !s.Hold {
		t.Fatal("bottom queue with probing must enter probe mode")
	}
	// Promotion back to the top leaves probe mode.
	c.adopt(s, 0)
	c.applyWindow(s)
	c.updateHold(s)
	if c.probeMode || s.Hold {
		t.Fatal("top queue must leave probe mode")
	}
}

func TestProbeModeDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Probing = false
	r := newRig(t, cfg)
	s, c := r.startFlow(t, workload.FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 500_000})
	if err := r.eng.RunUntil(sim.Time(100 * sim.Microsecond)); err != nil {
		t.Fatal(err)
	}
	c.adopt(s, c.bottomQueue())
	c.updateHold(s)
	if c.probeMode || s.Hold {
		t.Fatal("probing disabled: bottom-queue flows keep sending data")
	}
}

func TestReorderGuardDefersPromotion(t *testing.T) {
	r := newRig(t, DefaultConfig())
	s, c := r.startFlow(t, workload.FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 500_000})
	if err := r.eng.RunUntil(sim.Time(100 * sim.Microsecond)); err != nil {
		t.Fatal(err)
	}
	// Demote, then simulate an arbitration promotion while packets are
	// in flight: the guard must hold until the pipe drains.
	c.adopt(s, 2)
	c.applyWindow(s)
	c.updateHold(s)
	if s.Inflight() == 0 {
		t.Fatal("test needs in-flight packets")
	}
	c.targetPrio = 0
	if 0 < c.activePrio && s.Inflight() > 0 {
		c.guarding = true
		c.updateHold(s)
	}
	if !s.Hold {
		t.Fatal("guard must hold transmission")
	}
	// settle() releases and adopts the target.
	c.settle(s)
	if c.activePrio != 0 || c.guarding || s.Hold {
		t.Fatalf("settle should adopt target: prio=%d guarding=%v hold=%v",
			c.activePrio, c.guarding, s.Hold)
	}
}

func TestRrefWindowFloorsAtOnePacket(t *testing.T) {
	r := newRig(t, DefaultConfig())
	s, c := r.startFlow(t, workload.FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 50_000})
	c.rref = netem.BitRate(1000) // absurdly small reference rate
	if w := c.rrefWindow(s); w != 1 {
		t.Fatalf("window floor = %v, want 1", w)
	}
	c.rref = netem.Gbps
	if w := c.rrefWindow(s); w < 5 {
		t.Fatalf("line-rate window = %v, want ≈BDP", w)
	}
}

func TestShutdownReleasesAndStops(t *testing.T) {
	r := newRig(t, DefaultConfig())
	s, c := r.startFlow(t, workload.FlowSpec{ID: 1, Src: 0, Dst: 1, Size: 20_000})
	if err := r.eng.RunUntil(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	if !s.Done {
		t.Fatal("flow should finish")
	}
	if !c.stopped {
		t.Fatal("control must shut down with the flow")
	}
	// Arbitrators must be clean.
	for _, l := range r.net.UpLinks(0) {
		if r.sys.Arbitrator(l.ID).Flows() != 0 {
			t.Fatal("arbitration state leaked")
		}
	}
	_ = pkt.MTU
}
