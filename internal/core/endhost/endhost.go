// Package endhost implements PASE's end-host transport (§3.2 of the
// paper): rate control that is guided by the arbitration control
// plane's (priority queue, reference rate) output — Algorithm 2 — plus
// the loss-recovery changes low-priority flows need: large timeouts
// with probe packets instead of data retransmissions, and a reorder
// guard when a flow is promoted between priority queues.
package endhost

import (
	"pase/internal/core/arbitration"
	"pase/internal/netem"
	"pase/internal/obs"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/transport"
)

// Config holds PASE transport parameters (Table 3).
type Config struct {
	// MinRTOTop is the timeout floor for flows in the top queue
	// (10 ms in Table 3); MinRTOLow for every other queue (200 ms).
	MinRTOTop sim.Duration
	MinRTOLow sim.Duration
	// Probing replaces data retransmissions with header-only probes
	// for flows in lower-priority queues, and parks bottom-queue
	// flows on one probe per RTT instead of one data packet (§4.3.2).
	Probing bool
	// ReorderGuard drains in-flight packets before a flow starts
	// sending at a higher priority (§3.2).
	ReorderGuard bool
	// UseRefRate applies Rref to the window of top-queue flows;
	// disabling it yields the PASE-DCTCP ablation of Figure 13a.
	UseRefRate bool
	// TaskAware switches the arbitration criterion from remaining
	// flow size to the flow's task id (Baraat-style FIFO across
	// tasks) for flows that carry one — the alternative §3.1.1 of the
	// paper names explicitly. Deadlines still take precedence.
	TaskAware bool
	// G is the DCTCP gain used for the mark-fraction EWMA.
	G float64
	// RefreshRTTs is the arbitration refresh period in flow RTTs.
	RefreshRTTs float64
	// RetryCap bounds the exponential backoff of arbitration-request
	// retries after missed responses (§3.3: soft-state refreshes double
	// their period per miss up to this cap).
	RetryCap sim.Duration
	// FallbackAfter is how long a flow tolerates arbitration silence —
	// reusing its previous (queue, Rref) allocation — before it falls
	// back to self-adjusting DCTCP-style rate control in the lowest
	// priority queue. The default is about one arbitration lease
	// (8 epochs): past that the arbitrators have expired the flow's
	// soft state anyway, so the cached allocation means nothing.
	// 0 disables the fallback.
	FallbackAfter sim.Duration
}

// DefaultConfig returns the paper's parameterization.
func DefaultConfig() Config {
	return Config{
		MinRTOTop:     10 * sim.Millisecond,
		MinRTOLow:     200 * sim.Millisecond,
		Probing:       true,
		ReorderGuard:  true,
		UseRefRate:    true,
		G:             1.0 / 16.0,
		RefreshRTTs:   1,
		RetryCap:      2 * sim.Millisecond,
		FallbackAfter: sim.Millisecond,
	}
}

// Transport binds the PASE end-host protocol to an arbitration system.
type Transport struct {
	Sys *arbitration.System
	Cfg Config

	// Flight-recorder hooks, all optional (nil = off) and invoked off
	// the per-packet hot path:
	//
	//	OnGrant    — the flow's first usable arbitration response was
	//	             adopted (q is the assigned priority queue)
	//	OnEpoch    — the flow switched onto priority queue q (every
	//	             adoption, including the grant and the fallback's
	//	             forced bottom queue)
	//	OnFallback — the flow gave up on the control plane and entered
	//	             DCTCP-mode fallback
	//	OnResync   — the flow re-adopted a fresh allocation after a
	//	             fallback
	OnGrant    func(s *transport.Sender, q int8)
	OnEpoch    func(s *transport.Sender, q int8)
	OnFallback func(s *transport.Sender)
	OnResync   func(s *transport.Sender)

	o struct {
		retries   *obs.Counter
		reuse     *obs.Counter
		fallbacks *obs.Counter
		resyncs   *obs.Counter
		waitCtrl  *obs.Histogram
	}
}

// Instrument registers the degradation-path counters: arbitration
// retries, allocation reuses across missed responses, DCTCP fallbacks
// and post-recovery re-synchronizations — plus the wait-for-control
// histogram (time from flow arrival to first transmission clearance,
// the critical-path "waiting for control" term). Safe to skip (nil
// counters are no-ops).
func (t *Transport) Instrument(reg *obs.Registry) {
	t.o.retries = reg.Counter("pase/arb_retries")
	t.o.reuse = reg.Counter("pase/arb_reuse")
	t.o.fallbacks = reg.Counter("pase/fallbacks")
	t.o.resyncs = reg.Counter("pase/resyncs")
	t.o.waitCtrl = reg.Histogram("pase/wait_ctrl_ns")
}

// Attach installs PASE on every stack of the driver.
func Attach(d *transport.Driver, sys *arbitration.System, cfg Config) *Transport {
	t := &Transport{Sys: sys, Cfg: cfg}
	for _, st := range d.Stacks {
		st.NewControl = t.NewControl
	}
	prev := d.OnFlowDone
	d.OnFlowDone = func(s *transport.Sender) {
		if c, ok := s.CC.(*control); ok {
			c.shutdown()
		}
		if prev != nil {
			prev(s)
		}
	}
	return t
}

// NewControl implements the transport.Control factory.
func (t *Transport) NewControl(s *transport.Sender) transport.Control {
	return &control{t: t}
}

// control is per-flow PASE state.
type control struct {
	t      *Transport
	client *arbitration.Client

	// DCTCP-style mark estimation.
	alpha     float64
	acks      int32
	marked    int32
	windowEnd int32
	cutEnd    int32

	// Algorithm 2 state.
	rref         netem.BitRate
	activePrio   int8
	targetPrio   int8
	isInterQueue bool

	started   bool
	guarding  bool // reorder guard active: draining before promotion
	probeMode bool // bottom-queue probing instead of data

	// Graceful-degradation state (§3.3): awaiting is set while a
	// refresh has no response yet; misses counts consecutive unanswered
	// refreshes (driving the retry backoff); lastHeard is when the
	// control plane last answered; fallback marks DCTCP-mode operation
	// while the arbitrator is unreachable.
	awaiting  bool
	misses    int
	lastHeard sim.Time
	fallback  bool

	refreshTimer sim.Timer
	probeTimer   sim.Timer
	stopped      bool
}

func (c *control) Name() string { return "PASE" }

// bottomQueue returns the lowest-priority class index.
func (c *control) bottomQueue() int8 { return int8(c.t.Sys.P.NumQueues - 1) }

// Init implements transport.Control: register with the arbitration
// control plane and hold transmission until the source half answers.
func (c *control) Init(s *transport.Sender) {
	s.CC = c
	c.cutEnd = -1
	c.activePrio = c.bottomQueue()
	c.targetPrio = c.activePrio
	s.Prio = c.activePrio
	s.Hold = true
	c.client = c.t.Sys.NewClient(s.Spec.ID, s.Spec.Src, s.Spec.Dst)
	c.client.OnUpdate = func() { c.onArbitration(s) }
	c.lastHeard = s.Now()
	c.awaiting = true
	c.client.Refresh(c.key(s), c.demand(s))
	c.scheduleRefresh(s)
}

// key is the scheduling criterion sent to arbitrators. Precedence:
// deadline flows first (earliest-deadline-first, raw timestamps),
// then — when TaskAware is on — task-carrying flows in task arrival
// order (FIFO across tasks; flows within a task share the key and so
// the queue), then everything else by remaining size. The three
// classes occupy disjoint key ranges.
func (c *control) key(s *transport.Sender) int64 {
	if s.Spec.Deadline != 0 {
		return int64(s.Spec.Deadline)
	}
	if c.t.Cfg.TaskAware && s.Spec.Task != 0 {
		return int64(s.Spec.Task) + (1 << 45)
	}
	return s.Remaining() + (1 << 50)
}

// demand is the rate the source could actually use: line rate for
// flows with at least a bandwidth-delay product left, less for tails.
func (c *control) demand(s *transport.Sender) netem.BitRate {
	nic := s.Stack().NICRate()
	want := netem.BitRate(float64(s.Remaining()*8) / s.RTT().Seconds())
	if want < nic {
		min := netem.BitRate(float64(pkt.MTU*8) / s.RTT().Seconds())
		if want < min {
			want = min
		}
		return want
	}
	return nic
}

func (c *control) scheduleRefresh(s *transport.Sender) {
	period := sim.Duration(c.t.Cfg.RefreshRTTs * float64(s.RTT()))
	// Capped exponential backoff: each consecutive unanswered refresh
	// doubles the retry period, up to RetryCap. With no misses the
	// period is exactly the paper's refresh interval, whatever the
	// measured RTT.
	if c.misses > 0 {
		for i := 0; i < c.misses && period < c.t.Cfg.RetryCap; i++ {
			period *= 2
		}
		if cap := c.t.Cfg.RetryCap; cap > 0 && period > cap {
			period = cap
		}
	}
	c.refreshTimer = s.Stack().Eng.Schedule(period, func() {
		if c.stopped || s.Done {
			return
		}
		if c.awaiting {
			// The previous refresh went unanswered. Keep operating on
			// the previous (queue, Rref) allocation, back off, and —
			// past the deadline — degrade to DCTCP mode in the bottom
			// queue (§3.3).
			c.misses++
			c.t.o.retries.Inc()
			if c.started && !c.fallback {
				c.t.o.reuse.Inc()
			}
			if !c.fallback && c.t.Cfg.FallbackAfter > 0 &&
				s.Now().Sub(c.lastHeard) > c.t.Cfg.FallbackAfter {
				c.enterFallback(s)
			}
		}
		c.awaiting = true
		c.client.Refresh(c.key(s), c.demand(s))
		c.scheduleRefresh(s)
	})
}

// enterFallback degrades the flow to self-adjusting DCTCP-style rate
// control in the lowest priority queue: with the control plane
// unreachable the flow cannot trust any allocation, but sending at the
// bottom priority cannot hurt arbitrated traffic. A flow still gated
// on its first arbitration response starts sending now.
func (c *control) enterFallback(s *transport.Sender) {
	c.fallback = true
	c.t.o.fallbacks.Inc()
	if !c.started {
		// The flow never got a grant: the fallback is what finally
		// clears it to transmit.
		c.t.o.waitCtrl.Observe(int64(s.Now().Sub(s.Spec.Start)))
	}
	c.started = true
	c.guarding = false
	c.probeMode = false
	c.probeTimer.Stop()
	c.activePrio = c.bottomQueue()
	c.targetPrio = c.activePrio
	s.Prio = c.activePrio
	s.Cwnd = 1
	c.isInterQueue = false
	c.updateHold(s)
	if c.t.OnFallback != nil {
		c.t.OnFallback(s)
	}
	if c.t.OnEpoch != nil {
		c.t.OnEpoch(s, c.activePrio)
	}
	s.Kick()
}

// onArbitration reacts to a (queue, Rref) update from the control
// plane.
func (c *control) onArbitration(s *transport.Sender) {
	if c.stopped || s.Done {
		return
	}
	c.awaiting = false
	c.misses = 0
	c.lastHeard = s.Now()
	resync := c.fallback
	if resync {
		// The control plane is answering again: leave DCTCP fallback
		// and re-adopt the fresh allocation in full.
		c.fallback = false
		c.t.o.resyncs.Inc()
		if c.t.OnResync != nil {
			c.t.OnResync(s)
		}
	}
	d := c.client.Combined()
	c.rref = d.Rref

	if !c.started {
		if !c.client.Ready() {
			return
		}
		c.started = true
		c.t.o.waitCtrl.Observe(int64(s.Now().Sub(s.Spec.Start)))
		if c.t.OnGrant != nil {
			c.t.OnGrant(s, d.Queue)
		}
		c.adopt(s, d.Queue)
		c.applyWindow(s)
		c.updateHold(s)
		s.Kick()
		return
	}
	if resync {
		c.adopt(s, d.Queue)
		c.applyWindow(s)
		c.updateHold(s)
		s.Kick()
		return
	}

	c.targetPrio = d.Queue
	if d.Queue < c.activePrio && c.t.Cfg.ReorderGuard && s.Inflight() > 0 {
		// Promotion with packets still out: drain first (§3.2).
		c.guarding = true
		c.updateHold(s)
		return
	}
	c.settle(s)
}

// settle ends any reorder guard and adopts the target queue. It is
// called whenever the guard's drain condition is met — or whenever
// waiting longer would be worse than a rare reordering (a timeout
// fired, or arbitration stopped promoting the flow).
func (c *control) settle(s *transport.Sender) {
	c.guarding = false
	if c.targetPrio != c.activePrio {
		c.adopt(s, c.targetPrio)
		c.applyWindow(s)
	}
	// For a flow already in the top queue, the refreshed reference
	// rate takes effect through the per-ACK window cap — no re-pin.
	c.updateHold(s)
	s.Kick()
}

// adopt switches the flow onto a priority queue. A flow entering an
// intermediate queue restarts probing from one packet (Algorithm 2)
// but keeps its learned slow-start threshold: re-entering slow start
// on every queue remap would burst into an already-backlogged band.
func (c *control) adopt(s *transport.Sender, q int8) {
	c.activePrio = q
	c.targetPrio = q
	c.guarding = false
	s.Prio = q
	wasProbe := c.probeMode
	c.probeMode = c.t.Cfg.Probing && q == c.bottomQueue()
	if c.probeMode && !wasProbe {
		c.scheduleProbe(s)
	}
	if !c.probeMode {
		c.probeTimer.Stop()
	}
	if c.t.OnEpoch != nil {
		c.t.OnEpoch(s, q)
	}
}

// applyWindow sets the congestion window for the newly adopted queue
// per Algorithm 2.
func (c *control) applyWindow(s *transport.Sender) {
	switch {
	case c.activePrio == 0:
		if c.t.Cfg.UseRefRate {
			s.Cwnd = c.rrefWindow(s)
		}
		c.isInterQueue = false
	case c.activePrio == c.bottomQueue():
		s.Cwnd = 1
		c.isInterQueue = false
	default:
		if !c.isInterQueue {
			c.isInterQueue = true
			s.Cwnd = 1
		}
	}
}

// rrefWindow converts the reference rate into a window in segments,
// cwnd = Rref × RTT (Algorithm 2), using the measured RTT. When the
// reference rate is truthful (end-to-end arbitration) queues stay
// short and this equals the propagation BDP; when it is optimistic
// (e.g. arbitration restricted to access links) the inflated RTT
// inflates the window and the marked-ACK decrease law must fight it —
// visible as Figure 12a's local-arbitration penalty.
func (c *control) rrefWindow(s *transport.Sender) float64 {
	w := float64(c.rref) * s.RTT().Seconds() / (8 * pkt.MTU)
	if w < 1 {
		w = 1
	}
	return w
}

// updateHold recomputes the transmission gate.
func (c *control) updateHold(s *transport.Sender) {
	s.Hold = !c.started || c.guarding || c.probeMode
}

// scheduleProbe keeps a bottom-queue flow alive with one header-only
// probe per RTT (§4.3.2) instead of full data packets.
func (c *control) scheduleProbe(s *transport.Sender) {
	c.probeTimer = s.Stack().Eng.Schedule(s.RTT(), func() {
		if c.stopped || s.Done || !c.probeMode {
			return
		}
		s.SendProbe(s.FirstMissing())
		c.scheduleProbe(s)
	})
}

// OnAck implements transport.Control: Algorithm 2's rate control.
func (c *control) OnAck(s *transport.Sender, ack *pkt.Packet, newly int32, _ sim.Duration) {
	// Reorder-guard release: everything sent at the old priority has
	// been acknowledged.
	if c.guarding && s.Inflight() == 0 {
		c.settle(s)
	}

	// DCTCP mark-fraction estimation.
	c.acks++
	if ack.Echo {
		c.marked++
	}
	if s.CumAck() > c.windowEnd {
		f := 0.0
		if c.acks > 0 {
			f = float64(c.marked) / float64(c.acks)
		}
		c.alpha = (1-c.t.Cfg.G)*c.alpha + c.t.Cfg.G*f
		c.acks, c.marked = 0, 0
		c.windowEnd = s.NextWindowEdge()
	}

	if ack.Echo {
		// Algorithm 2: marked ACK → DCTCP decrease law, any queue.
		if s.CumAck() > c.cutEnd {
			s.Cwnd = s.Cwnd * (1 - c.alpha/2)
			if s.Cwnd < 1 {
				s.Cwnd = 1
			}
			// Leave slow start, as DCTCP does after a reduction —
			// growth continues additively from here.
			s.SSThresh = s.Cwnd
			c.cutEnd = s.NextWindowEdge()
		}
		return
	}
	if newly <= 0 {
		return
	}

	if c.fallback {
		// DCTCP-mode fallback: self-adjusting additive growth, no
		// arbitrated pin to return to.
		c.grow(s, newly)
		return
	}

	switch {
	case c.activePrio == 0:
		if c.t.Cfg.UseRefRate {
			// Algorithm 2: cwnd = Rref × RTT — but a congestion cut
			// persists for one window of data before the pin resumes,
			// the granularity at which DCTCP itself cuts. (Re-pinning
			// immediately would neutralize the decrease law whenever
			// the arbitrated rate turns out optimistic, e.g. when
			// arbitration is restricted to the access links.)
			if s.CumAck() > c.cutEnd {
				s.Cwnd = c.rrefWindow(s)
			}
		} else {
			// PASE-DCTCP ablation: standard DCTCP growth.
			c.grow(s, newly)
		}
		c.isInterQueue = false
	case c.activePrio == c.bottomQueue():
		s.Cwnd = 1
		c.isInterQueue = false
	default:
		if c.isInterQueue {
			c.grow(s, newly)
		} else {
			c.isInterQueue = true
			s.Cwnd = 1
		}
	}
}

func (c *control) grow(s *transport.Sender, newly int32) {
	for i := int32(0); i < newly; i++ {
		if s.Cwnd < s.SSThresh {
			s.Cwnd++
		} else {
			s.Cwnd += 1 / s.Cwnd
		}
	}
}

// OnLoss implements transport.Control.
func (c *control) OnLoss(s *transport.Sender) {
	s.SSThresh = s.Cwnd / 2
	if s.SSThresh < 2 {
		s.SSThresh = 2
	}
	if c.activePrio != 0 || !c.t.Cfg.UseRefRate {
		s.Cwnd = s.SSThresh
	}
}

// OnTimeout implements transport.Control: top-queue flows retransmit
// normally; lower-priority flows probe instead of resending data —
// their packets are usually parked behind higher classes, not lost.
func (c *control) OnTimeout(s *transport.Sender) bool {
	if c.guarding {
		// The drain stalled for a whole RTO: packets were lost, not
		// queued. Stop guarding — there is nothing left to reorder.
		c.settle(s)
	}
	if c.fallback {
		// Fallback flows behave like DCTCP: retransmit with a reset
		// window. Probing needs a live arbitrated queue assignment.
		s.Cwnd = 1
		return false
	}
	if c.activePrio > 0 && c.t.Cfg.Probing {
		s.SendProbe(s.FirstMissing())
		return true
	}
	s.Cwnd = 1
	return false
}

// OnProbeAck implements transport.ProbeAckHandler.
func (c *control) OnProbeAck(s *transport.Sender, p *pkt.Packet) {
	s.AbsorbProbeAck(p)
	if c.guarding && s.Inflight() == 0 && !s.Done {
		c.settle(s)
	}
}

// FillData implements transport.Control.
func (c *control) FillData(s *transport.Sender, p *pkt.Packet) {
	p.ECT = true
	p.Prio = c.activePrio
	p.Rank = s.Remaining()
}

// MinRTO implements transport.Control. Fallback flows take the short
// floor: their losses are real losses, not parking behind higher
// classes, and a 200 ms floor would stall them for the whole outage.
func (c *control) MinRTO(*transport.Sender) sim.Duration {
	if c.fallback || c.activePrio == 0 {
		return c.t.Cfg.MinRTOTop
	}
	return c.t.Cfg.MinRTOLow
}

// shutdown releases arbitration state when the flow ends.
func (c *control) shutdown() {
	if c.stopped {
		return
	}
	c.stopped = true
	c.refreshTimer.Stop()
	c.probeTimer.Stop()
	c.client.Release()
}
