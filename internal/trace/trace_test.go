package trace_test

import (
	"strings"
	"testing"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/topology"
	"pase/internal/trace"
	"pase/internal/transport"
	"pase/internal/transport/dctcp"
	"pase/internal/workload"
)

func TestFlowLogTSV(t *testing.T) {
	var l trace.FlowLog
	l.Add(trace.FlowEvent{At: sim.Time(1500), Kind: "start", Flow: 7, Src: 0, Dst: 1, Size: 1000})
	l.Add(trace.FlowEvent{At: sim.Time(2_000_000), Kind: "done", Flow: 7, Src: 0, Dst: 1, Size: 1000, FCT: 1_998_500})
	var sb strings.Builder
	if err := l.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "start\t7") || !strings.Contains(out, "done\t7") {
		t.Fatalf("unexpected TSV:\n%s", out)
	}
	if len(l.Events()) != 2 {
		t.Fatal("events lost")
	}
}

func TestSamplerObservesCongestion(t *testing.T) {
	eng := sim.NewEngine()
	net := topology.Build(eng, topology.SingleRack(4, func(topology.QueueKind) netem.Queue {
		return netem.NewREDECN(225, 65)
	}))
	sampler := trace.NewSampler(eng, 50*sim.Microsecond, trace.AllPorts(net))

	d := transport.NewDriver(net, dctcp.New(dctcp.DefaultConfig()))
	// Three senders into one receiver: host 3's downlink must queue.
	var flows []workload.FlowSpec
	for i := 0; i < 3; i++ {
		flows = append(flows, workload.FlowSpec{
			ID: pkt.FlowID(i + 1), Src: pkt.NodeID(i), Dst: 3, Size: 400_000, Start: 0,
		})
	}
	d.Schedule(flows)
	if _, err := d.Run(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	sampler.Stop()

	if len(sampler.Samples()) == 0 {
		t.Fatal("no samples recorded")
	}
	peaks := sampler.MaxLenByPort()
	bottleneck := "tor0->h3"
	if peaks[bottleneck] < 10 {
		t.Fatalf("expected queue at %s, peaks: %v", bottleneck, peaks)
	}
	busiest := sampler.Busiest(1)
	if len(busiest) != 1 || busiest[0] != bottleneck {
		t.Fatalf("busiest = %v, want [%s]", busiest, bottleneck)
	}

	var sb strings.Builder
	if err := sampler.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), bottleneck) {
		t.Fatal("TSV missing bottleneck port")
	}
}

func TestSamplerSparseness(t *testing.T) {
	// An idle fabric produces no samples at all.
	eng := sim.NewEngine()
	net := topology.Build(eng, topology.SingleRack(2, func(topology.QueueKind) netem.Queue {
		return netem.NewDropTail(100)
	}))
	s := trace.NewSampler(eng, 100*sim.Microsecond, trace.AllPorts(net))
	if err := eng.RunUntil(sim.Time(10 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if len(s.Samples()) != 0 {
		t.Fatalf("idle fabric recorded %d samples", len(s.Samples()))
	}
}

func TestSamplerInvalidInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	trace.NewSampler(sim.NewEngine(), 0, nil)
}

func TestBusiestTruncates(t *testing.T) {
	eng := sim.NewEngine()
	net := topology.Build(eng, topology.Baseline(func(topology.QueueKind) netem.Queue {
		return netem.NewDropTail(100)
	}))
	s := trace.NewSampler(eng, sim.Millisecond, trace.AllPorts(net))
	if got := s.Busiest(5); len(got) != 0 {
		t.Fatalf("no samples yet, busiest = %v", got)
	}
}
