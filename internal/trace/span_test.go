package trace_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/trace"
)

// driveFlows runs n flows through a single-shard recorder on a real
// engine clock: flow i arrives at i µs and completes 10 µs later, with
// an epoch transition in between. flag(i) flows get a retx mark.
func driveFlows(t *testing.T, rec *trace.Recorder, n int, flag func(int) bool) {
	t.Helper()
	eng := sim.NewEngine()
	s := rec.Shard(eng)
	for i := 0; i < n; i++ {
		i := i
		f := pkt.FlowID(i + 1)
		eng.Schedule(sim.Duration(i)*sim.Microsecond, func() {
			s.FlowArrive(f, pkt.NodeID(i), pkt.NodeID(i+1), 1000, 0, false)
		})
		eng.Schedule(sim.Duration(i)*sim.Microsecond+5*sim.Microsecond, func() {
			s.Epoch(f, 1)
			if flag != nil && flag(i) {
				s.Mark(f, trace.MarkRetx, 42)
			}
		})
		eng.Schedule(sim.Duration(i)*sim.Microsecond+10*sim.Microsecond, func() {
			s.FlowEnd(f, false)
		})
	}
	if err := eng.RunUntil(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderSamplingDeterministic(t *testing.T) {
	// The sample draw is a pure function of (seed, flow): two recorders
	// with the same seed keep the same flows, a different seed keeps a
	// different set, and flagged flows survive regardless of the draw.
	const n, sampleN = 400, 4
	take := func(seed uint64, flag func(int) bool) *trace.RunTrace {
		rec := trace.NewRecorder(trace.RecorderConfig{SampleN: sampleN, Seed: seed})
		driveFlows(t, rec, n, flag)
		return rec.Take()
	}
	a, b := take(7, nil), take(7, nil)
	if a.Digest() != b.Digest() {
		t.Fatal("same seed produced different traces")
	}
	if len(a.Flows) == 0 || len(a.Flows) == n {
		t.Fatalf("sampleN=%d kept %d of %d flows", sampleN, len(a.Flows), n)
	}
	if c := take(8, nil); c.Digest() == a.Digest() {
		t.Fatal("different seed produced identical sample set")
	}
	if got := a.Stats.FlowsSampledOut + a.Stats.FlowsFinal; got != n {
		t.Fatalf("sampled-out %d + final %d != started %d",
			a.Stats.FlowsSampledOut, a.Stats.FlowsFinal, n)
	}

	flagged := take(7, func(i int) bool { return true })
	if len(flagged.Flows) != n {
		t.Fatalf("flagged flows dropped by sampling: kept %d of %d", len(flagged.Flows), n)
	}
	for _, ft := range flagged.Flows {
		if !ft.Flagged {
			t.Fatalf("flow %d not flagged after retx mark", ft.Flow)
		}
	}
}

func TestRecorderRingEviction(t *testing.T) {
	const n, cap = 100, 16
	rec := trace.NewRecorder(trace.RecorderConfig{FlowCap: cap})
	driveFlows(t, rec, n, nil)
	rt := rec.Take()
	if len(rt.Flows) != cap {
		t.Fatalf("kept %d flows, want cap %d", len(rt.Flows), cap)
	}
	// The ring keeps the newest by (End, Flow): flows n-cap+1 .. n.
	for i, ft := range rt.Flows {
		if want := pkt.FlowID(n - cap + 1 + i); ft.Flow != want {
			t.Fatalf("flows[%d] = %d, want %d (newest-first retention broken)", i, ft.Flow, want)
		}
	}
	if rt.Stats.FlowsEvicted != n-cap {
		t.Fatalf("FlowsEvicted = %d, want %d", rt.Stats.FlowsEvicted, n-cap)
	}
}

func TestRecorderMaxPerFlow(t *testing.T) {
	const perFlow = 8
	rec := trace.NewRecorder(trace.RecorderConfig{MaxPerFlow: perFlow})
	eng := sim.NewEngine()
	s := rec.Shard(eng)
	eng.Schedule(0, func() { s.FlowArrive(1, 0, 1, 1000, 0, false) })
	for i := 0; i < 3*perFlow; i++ {
		prio := i % 2 // alternate so every Epoch is a real transition
		eng.Schedule(sim.Duration(i+1)*sim.Microsecond, func() { s.Epoch(1, prio) })
	}
	eng.Schedule(100*sim.Microsecond, func() { s.FlowEnd(1, false) })
	if err := eng.RunUntil(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	rt := rec.Take()
	if len(rt.Flows) != 1 {
		t.Fatalf("kept %d flows, want 1", len(rt.Flows))
	}
	ft := rt.Flows[0]
	if len(ft.Spans) != perFlow {
		t.Fatalf("spans = %d, want cap %d", len(ft.Spans), perFlow)
	}
	if ft.Truncated == 0 || rt.Stats.SpansTruncated != ft.Truncated {
		t.Fatalf("Truncated = %d, stats %d — truncation not counted",
			ft.Truncated, rt.Stats.SpansTruncated)
	}
}

func TestSpillMatchesBuffered(t *testing.T) {
	// Spill mode streams flows out at completion; its bytes must equal
	// the buffered path's canonical export exactly.
	meta := trace.Meta{Proto: "DCTCP", Scenario: "test", NICBps: 1e9}
	run := func(rec *trace.Recorder) {
		driveFlows(t, rec, 50, func(i int) bool { return i%5 == 0 })
	}

	buffered := trace.NewRecorder(trace.RecorderConfig{SampleN: 2, Seed: 3})
	buffered.SetMeta(meta)
	run(buffered)
	var want bytes.Buffer
	if err := buffered.Take().WritePerfetto(&want); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	spill := trace.NewRecorder(trace.RecorderConfig{SampleN: 2, Seed: 3})
	spill.SpillTo(trace.NewPerfettoStream(&got))
	spill.SetMeta(meta)
	run(spill)
	rt := spill.Take()
	if len(rt.Flows) != 0 {
		t.Fatalf("spill mode retained %d flows", len(rt.Flows))
	}
	if err := spill.FinishSpill(rt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("spill output differs from buffered:\nspill:\n%s\nbuffered:\n%s",
			got.String(), want.String())
	}
}

func TestPerfettoValidJSON(t *testing.T) {
	rec := trace.NewRecorder(trace.RecorderConfig{})
	rec.SetMeta(trace.Meta{Proto: "PASE", Scenario: "test", NICBps: 1e9})
	driveFlows(t, rec, 10, func(i int) bool { return i == 3 })
	rt := rec.Take()
	rt.Ctrl = []trace.CtrlSpan{
		{Flow: 1, SrcSide: true, Level: 1, Start: 100, Latency: 500, Outcome: trace.CtrlOK},
		{Flow: 2, Level: 0, Start: 200, Outcome: trace.CtrlReqDropped},
	}
	rt.Queue = []trace.QueueSample{{At: 1000, Port: "h0->tor0", Idx: 0, Len: 3, Bytes: 4500}}
	var buf bytes.Buffer
	if err := rt.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
		TraceEvents     []map[string]any  `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.OtherData["proto"] != "PASE" || doc.OtherData["nic_bps"] != "1000000000" {
		t.Fatalf("otherData = %v", doc.OtherData)
	}
	var ctrl, counters int
	for _, ev := range doc.TraceEvents {
		switch ev["cat"] {
		case "ctrl":
			ctrl++
		}
		if ev["ph"] == "C" {
			counters++
		}
	}
	if ctrl != 2 || counters != 1 {
		t.Fatalf("ctrl events = %d (want 2), counters = %d (want 1)", ctrl, counters)
	}
}

func TestRunTraceDigestSensitivity(t *testing.T) {
	mk := func() *trace.RunTrace {
		rec := trace.NewRecorder(trace.RecorderConfig{})
		driveFlows(t, rec, 5, nil)
		return rec.Take()
	}
	a, b := mk(), mk()
	if a.Digest() != b.Digest() {
		t.Fatal("identical runs digest differently")
	}
	b.Flows[0].Size++
	if a.Digest() == b.Digest() {
		t.Fatal("digest blind to flow content")
	}
}
