// Package trace provides observation tooling for simulation runs: a
// flow-event log, a periodic queue-occupancy sampler, and a span-based
// flight recorder (span.go) with Chrome/Perfetto export (perfetto.go)
// — all bounded, deterministic, and shard-safe. The simulator itself
// never depends on tracing; experiments opt in.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/topology"
)

// Retention defaults for the flow log and the queue sampler.
const (
	DefaultFlowLogCap = 1 << 18
	DefaultSampleCap  = 1 << 18
)

// FlowEvent is one entry of the flow log.
type FlowEvent struct {
	At   sim.Time
	Kind string // "start", "done", "abort"
	Flow pkt.FlowID
	Src  pkt.NodeID
	Dst  pkt.NodeID
	Size int64
	// FCT is set on "done".
	FCT sim.Duration
}

// kindRank orders a flow's lifecycle events within one instant:
// starts sort before completions.
func kindRank(kind string) int {
	if kind == "start" {
		return 0
	}
	return 1
}

// SortFlowEvents puts events into the canonical (At, Flow, kind)
// order — the order every writer emits, which is what makes traced
// output byte-identical across shard counts and run modes.
func SortFlowEvents(events []FlowEvent) {
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Flow != b.Flow {
			return a.Flow < b.Flow
		}
		return kindRank(a.Kind) < kindRank(b.Kind)
	})
}

// FlowLog accumulates flow lifecycle events. Retention is bounded by
// Cap (a ring keeping the newest events), or unbounded when Cap is 0.
// SpillTo switches the log to streaming output instead: events go to a
// writer as canonical TSV rows and nothing is retained.
type FlowLog struct {
	// Cap, when positive, bounds retained events; Add evicts the
	// oldest once full. Set before the run.
	Cap    int
	events []FlowEvent
	pos    int64 // total Adds

	spill *bufio.Writer
	grp   []FlowEvent // same-instant group awaiting canonical flush
	err   error
}

// Add appends one event (or streams it, in spill mode).
func (l *FlowLog) Add(e FlowEvent) {
	l.pos++
	if l.spill != nil {
		// Events arrive in clock order; a finished instant can be
		// sorted and flushed as soon as the clock moves on, so spill
		// output matches the buffered canonical order byte for byte.
		if len(l.grp) > 0 && l.grp[0].At != e.At {
			l.flushGroup()
		}
		l.grp = append(l.grp, e)
		return
	}
	if l.Cap > 0 && len(l.events) >= l.Cap {
		l.events[(l.pos-1)%int64(l.Cap)] = e
		return
	}
	l.events = append(l.events, e)
}

// Added returns the total number of events offered to the log.
func (l *FlowLog) Added() int64 { return l.pos }

// Dropped returns how many events retention already shed.
func (l *FlowLog) Dropped() int64 {
	if l.spill != nil {
		return 0
	}
	return l.pos - int64(len(l.events))
}

// Events returns the retained events in insertion order (oldest
// first). Nil in spill mode.
func (l *FlowLog) Events() []FlowEvent {
	if l.Cap <= 0 || l.pos <= int64(len(l.events)) {
		return l.events
	}
	at := l.pos % int64(l.Cap)
	out := make([]FlowEvent, 0, len(l.events))
	out = append(out, l.events[at:]...)
	return append(out, l.events[:at]...)
}

// SpillTo switches the log into streaming mode: the TSV header is
// written now, every completed instant's events follow in canonical
// order, and memory stays O(events per instant). Call before the run;
// FlushSpill finishes the stream.
func (l *FlowLog) SpillTo(w io.Writer) error {
	l.spill = bufio.NewWriter(w)
	return writeFlowHeader(l.spill)
}

// FlushSpill flushes the trailing instant group and the writer,
// returning the first error the stream hit.
func (l *FlowLog) FlushSpill() error {
	if l.spill == nil {
		return nil
	}
	l.flushGroup()
	if err := l.spill.Flush(); err != nil {
		return err
	}
	return l.err
}

func (l *FlowLog) flushGroup() {
	SortFlowEvents(l.grp)
	for _, e := range l.grp {
		if err := writeFlowEvent(l.spill, e); err != nil && l.err == nil {
			l.err = err
		}
	}
	l.grp = l.grp[:0]
}

// MergeFlowEvents merges per-shard logs into the canonical order and
// applies the run-wide cap (keeping the newest). The merged result is
// shard-count-invariant: each log's ring holds its newest events, and
// any event in the run-wide newest-cap set is necessarily among its
// own shard's newest. It returns the merged events and the total shed.
func MergeFlowEvents(logs []*FlowLog, cap int) ([]FlowEvent, int64) {
	var all []FlowEvent
	var total int64
	for _, l := range logs {
		all = append(all, l.Events()...)
		total += l.Added()
	}
	SortFlowEvents(all)
	if cap > 0 && len(all) > cap {
		all = all[len(all)-cap:]
	}
	return all, total - int64(len(all))
}

// WriteTSV dumps the log with a header row.
func (l *FlowLog) WriteTSV(w io.Writer) error { return WriteFlowEvents(w, l.Events()) }

func writeFlowHeader(w io.Writer) error {
	_, err := fmt.Fprintln(w, "# time_ns\tkind\tflow\tsrc\tdst\tsize\tfct_ns")
	return err
}

func writeFlowEvent(w io.Writer, e FlowEvent) error {
	_, err := fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\t%d\t%d\n",
		int64(e.At), e.Kind, e.Flow, e.Src, e.Dst, e.Size, int64(e.FCT))
	return err
}

// WriteFlowEvents dumps a flow-event slice with a header row. Times
// are nanoseconds — the clock's native unit — so sub-µs flow
// completion times survive (the old µs columns truncated them to 0).
func WriteFlowEvents(w io.Writer, events []FlowEvent) error {
	bw := bufio.NewWriter(w)
	if err := writeFlowHeader(bw); err != nil {
		return err
	}
	for _, e := range events {
		if err := writeFlowEvent(bw, e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// QueueSample is one observation of one port's queue.
type QueueSample struct {
	At   sim.Time
	Port string
	// Idx is the port's index in the run-wide sampling order (see
	// AllPorts) — the tie-breaker that keeps merged multi-shard sample
	// streams in one canonical order.
	Idx   int
	Len   int
	Bytes int64
}

// Sampler periodically records the occupancy of a set of ports. Ticks
// run at the head of their instant (AtHead), so a sample reads the
// queue state at the start of the tick time regardless of how
// same-instant packet events interleave — serial and sharded runs
// observe the same state.
type Sampler struct {
	eng   *sim.Engine
	every sim.Duration
	ports []*netem.Port
	// Idx maps ports[i] to its run-wide index (nil = identity). Set
	// before the run.
	Idx []int
	// Cap, when positive, bounds retained samples; the oldest are
	// evicted first. Set before the run.
	Cap     int
	samples []QueueSample
	pos     int64
	stopped bool
}

// NewSampler samples the given ports every interval until Stop (or
// forever — the engine stops delivering once the run ends).
func NewSampler(eng *sim.Engine, every sim.Duration, ports []*netem.Port) *Sampler {
	if every <= 0 {
		panic("trace: non-positive sampling interval")
	}
	s := &Sampler{eng: eng, every: every, ports: ports}
	s.schedule()
	return s
}

// AllPorts enumerates every port of a fabric (hosts and switches),
// named, for sampling. The slice order is the run-wide port index.
func AllPorts(n *topology.Network) []*netem.Port {
	var out []*netem.Port
	for _, h := range n.Hosts {
		out = append(out, h.Port())
	}
	for _, sw := range n.ToRs {
		out = append(out, sw.Ports()...)
	}
	for _, sw := range n.Aggs {
		out = append(out, sw.Ports()...)
	}
	if n.Core != nil {
		out = append(out, n.Core.Ports()...)
	}
	for _, sw := range n.Spines {
		out = append(out, sw.Ports()...)
	}
	return out
}

func (s *Sampler) schedule() {
	s.eng.AtHead(s.eng.Now().Add(s.every), func() {
		if s.stopped {
			return
		}
		now := s.eng.Now()
		for i, p := range s.ports {
			q := p.Queue()
			if q.Len() == 0 {
				continue // keep the log sparse: idle queues are implied
			}
			idx := i
			if s.Idx != nil {
				idx = s.Idx[i]
			}
			s.add(QueueSample{
				At: now, Port: p.Name, Idx: idx, Len: q.Len(), Bytes: q.Bytes(),
			})
		}
		s.schedule()
	})
}

func (s *Sampler) add(sm QueueSample) {
	s.pos++
	if s.Cap > 0 && len(s.samples) >= s.Cap {
		s.samples[(s.pos-1)%int64(s.Cap)] = sm
		return
	}
	s.samples = append(s.samples, sm)
}

// Stop ends sampling.
func (s *Sampler) Stop() { s.stopped = true }

// Added returns the total samples taken (including evicted ones).
func (s *Sampler) Added() int64 { return s.pos }

// Samples returns the retained samples, oldest first.
func (s *Sampler) Samples() []QueueSample {
	if s.Cap <= 0 || s.pos <= int64(len(s.samples)) {
		return s.samples
	}
	at := s.pos % int64(s.Cap)
	out := make([]QueueSample, 0, len(s.samples))
	out = append(out, s.samples[at:]...)
	return append(out, s.samples[:at]...)
}

// MergeQueueSamples merges per-shard samplers into the canonical
// (At, Idx) order and applies the run-wide cap (keeping the newest).
// Like MergeFlowEvents, the result is shard-count-invariant. It
// returns the merged samples and the total shed.
func MergeQueueSamples(samplers []*Sampler, cap int) ([]QueueSample, int64) {
	var all []QueueSample
	var total int64
	for _, s := range samplers {
		all = append(all, s.Samples()...)
		total += s.Added()
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].At != all[j].At {
			return all[i].At < all[j].At
		}
		return all[i].Idx < all[j].Idx
	})
	if cap > 0 && len(all) > cap {
		all = all[len(all)-cap:]
	}
	return all, total - int64(len(all))
}

// MaxLenByPort aggregates the peak sampled occupancy per port.
func (s *Sampler) MaxLenByPort() map[string]int {
	out := make(map[string]int)
	for _, sm := range s.Samples() {
		if sm.Len > out[sm.Port] {
			out[sm.Port] = sm.Len
		}
	}
	return out
}

// WriteTSV dumps the samples with a header row.
func (s *Sampler) WriteTSV(w io.Writer) error { return WriteQueueSamples(w, s.Samples()) }

// WriteQueueSamples dumps a queue-sample slice with a header row.
// Times are nanoseconds (see WriteFlowEvents).
func WriteQueueSamples(w io.Writer, samples []QueueSample) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# time_ns\tport\tqlen\tqbytes"); err != nil {
		return err
	}
	for _, sm := range samples {
		if _, err := fmt.Fprintf(bw, "%d\t%s\t%d\t%d\n",
			int64(sm.At), sm.Port, sm.Len, sm.Bytes); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Busiest returns the n ports with the highest peak occupancy, sorted
// descending — a quick congestion locator.
func (s *Sampler) Busiest(n int) []string {
	peaks := s.MaxLenByPort()
	names := make([]string, 0, len(peaks))
	for name := range peaks {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if peaks[names[i]] != peaks[names[j]] {
			return peaks[names[i]] > peaks[names[j]]
		}
		return names[i] < names[j]
	})
	if n > len(names) {
		n = len(names)
	}
	return names[:n]
}
