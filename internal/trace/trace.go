// Package trace provides observation tooling for simulation runs:
// a flow-event log and a periodic queue-occupancy sampler, both
// writable as tab-separated text for offline analysis. The simulator
// itself never depends on tracing; experiments opt in.
package trace

import (
	"fmt"
	"io"
	"sort"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/topology"
)

// FlowEvent is one entry of the flow log.
type FlowEvent struct {
	At   sim.Time
	Kind string // "start", "done", "abort"
	Flow pkt.FlowID
	Src  pkt.NodeID
	Dst  pkt.NodeID
	Size int64
	// FCT is set on "done".
	FCT sim.Duration
}

// FlowLog accumulates flow lifecycle events.
type FlowLog struct {
	events []FlowEvent
}

// Add appends one event.
func (l *FlowLog) Add(e FlowEvent) { l.events = append(l.events, e) }

// Events returns the log in insertion order.
func (l *FlowLog) Events() []FlowEvent { return l.events }

// WriteTSV dumps the log with a header row.
func (l *FlowLog) WriteTSV(w io.Writer) error { return WriteFlowEvents(w, l.events) }

// WriteFlowEvents dumps a flow-event slice with a header row.
func WriteFlowEvents(w io.Writer, events []FlowEvent) error {
	if _, err := fmt.Fprintln(w, "# time_us\tkind\tflow\tsrc\tdst\tsize\tfct_us"); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%d\t%d\t%d\n",
			int64(e.At)/1000, e.Kind, e.Flow, e.Src, e.Dst, e.Size, int64(e.FCT)/1000); err != nil {
			return err
		}
	}
	return nil
}

// QueueSample is one observation of one port's queue.
type QueueSample struct {
	At    sim.Time
	Port  string
	Len   int
	Bytes int64
}

// Sampler periodically records the occupancy of a set of ports.
type Sampler struct {
	eng     *sim.Engine
	every   sim.Duration
	ports   []*netem.Port
	samples []QueueSample
	stopped bool
}

// NewSampler samples the given ports every interval until Stop (or
// forever — the engine stops delivering once the run ends).
func NewSampler(eng *sim.Engine, every sim.Duration, ports []*netem.Port) *Sampler {
	if every <= 0 {
		panic("trace: non-positive sampling interval")
	}
	s := &Sampler{eng: eng, every: every, ports: ports}
	s.schedule()
	return s
}

// AllPorts enumerates every port of a fabric (hosts and switches),
// named, for sampling.
func AllPorts(n *topology.Network) []*netem.Port {
	var out []*netem.Port
	for _, h := range n.Hosts {
		out = append(out, h.Port())
	}
	for _, sw := range n.ToRs {
		out = append(out, sw.Ports()...)
	}
	for _, sw := range n.Aggs {
		out = append(out, sw.Ports()...)
	}
	if n.Core != nil {
		out = append(out, n.Core.Ports()...)
	}
	for _, sw := range n.Spines {
		out = append(out, sw.Ports()...)
	}
	return out
}

func (s *Sampler) schedule() {
	s.eng.Schedule(s.every, func() {
		if s.stopped {
			return
		}
		now := s.eng.Now()
		for _, p := range s.ports {
			q := p.Queue()
			if q.Len() == 0 {
				continue // keep the log sparse: idle queues are implied
			}
			s.samples = append(s.samples, QueueSample{
				At: now, Port: p.Name, Len: q.Len(), Bytes: q.Bytes(),
			})
		}
		s.schedule()
	})
}

// Stop ends sampling.
func (s *Sampler) Stop() { s.stopped = true }

// Samples returns everything recorded so far.
func (s *Sampler) Samples() []QueueSample { return s.samples }

// MaxLenByPort aggregates the peak sampled occupancy per port.
func (s *Sampler) MaxLenByPort() map[string]int {
	out := make(map[string]int)
	for _, sm := range s.samples {
		if sm.Len > out[sm.Port] {
			out[sm.Port] = sm.Len
		}
	}
	return out
}

// WriteTSV dumps the samples with a header row.
func (s *Sampler) WriteTSV(w io.Writer) error { return WriteQueueSamples(w, s.samples) }

// WriteQueueSamples dumps a queue-sample slice with a header row.
func WriteQueueSamples(w io.Writer, samples []QueueSample) error {
	if _, err := fmt.Fprintln(w, "# time_us\tport\tqlen\tqbytes"); err != nil {
		return err
	}
	for _, sm := range samples {
		if _, err := fmt.Fprintf(w, "%d\t%s\t%d\t%d\n",
			int64(sm.At)/1000, sm.Port, sm.Len, sm.Bytes); err != nil {
			return err
		}
	}
	return nil
}

// Busiest returns the n ports with the highest peak occupancy, sorted
// descending — a quick congestion locator.
func (s *Sampler) Busiest(n int) []string {
	peaks := s.MaxLenByPort()
	names := make([]string, 0, len(peaks))
	for name := range peaks {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if peaks[names[i]] != peaks[names[j]] {
			return peaks[names[i]] > peaks[names[j]]
		}
		return names[i] < names[j]
	})
	if n > len(names) {
		n = len(names)
	}
	return names[:n]
}
