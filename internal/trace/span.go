package trace

import (
	"sort"

	"pase/internal/pkt"
	"pase/internal/sim"
)

// Span-based flight recorder (trace v2).
//
// The recorder captures where a flow's time went — waiting for the
// control plane, transmitting on an assigned priority queue — plus the
// control-plane exchanges themselves, as spans on the simulated clock.
// It is built to the same contract as the rest of the run machinery:
//
//   - Deterministic. A run traced at any shard count or GOMAXPROCS
//     produces byte-identical output: each shard records into its own
//     buffers (no cross-goroutine state), and Take merges them in a
//     canonical order — flow traces by (End, Flow), control spans by
//     (Start, Flow, side, level) — that both the serial engine and the
//     sharded engine reproduce exactly.
//   - Bounded. Live flows cost O(in-flight): a flow's spans accumulate
//     only while it is open, and at completion the trace is either
//     committed to a fixed-capacity ring (evicting the oldest) or
//     recycled. Per-flow span/mark counts are capped too.
//   - Production-shaped. Seed-driven sampling keeps 1 in N flows; a
//     flow that misbehaved (retransmissions, timeouts, control-plane
//     fallback, abort) is always kept regardless of the sample draw,
//     so the interesting traces survive aggressive sampling.
//
// In spill mode (SpillTo) committed traces stream straight into a
// PerfettoStream in completion order instead of being retained — the
// bounded-memory path for serial streaming runs. The stream flushes
// completion-time tie groups sorted by flow ID, so its byte output
// matches the buffered path's canonical (End, Flow) order exactly
// (as long as the buffered run stays under FlowCap).

// SpanKind classifies one phase of a flow's lifetime.
type SpanKind uint8

const (
	// SpanWait: the flow is held, waiting for a control-plane
	// allocation (PASE's arbitration request is in flight).
	SpanWait SpanKind = iota
	// SpanXfer: the flow is transmitting on priority queue Prio — one
	// span per contiguous epoch at that priority.
	SpanXfer
)

// MarkKind classifies an instantaneous flow annotation.
type MarkKind uint8

const (
	// MarkGrant: the first arbitration response was adopted.
	MarkGrant MarkKind = iota
	// MarkRetx: a data segment was retransmitted (Arg = sequence).
	MarkRetx
	// MarkTimeout: the retransmission timer fired.
	MarkTimeout
	// MarkFallback: the endpoint gave up on the control plane and fell
	// back to bottom-queue DCTCP mode.
	MarkFallback
	// MarkResync: the endpoint re-adopted a fresh allocation after a
	// fallback (control-plane recovery).
	MarkResync
	// MarkAbort: the flow was aborted before completing.
	MarkAbort
)

// String names the mark for export.
func (k MarkKind) String() string {
	switch k {
	case MarkGrant:
		return "grant"
	case MarkRetx:
		return "retx"
	case MarkTimeout:
		return "timeout"
	case MarkFallback:
		return "fallback"
	case MarkResync:
		return "resync"
	case MarkAbort:
		return "abort"
	}
	return "mark?"
}

// flags reports whether the mark forces the flow to be kept regardless
// of the sampling draw. Grants are the happy path; everything else is
// a misbehavior worth keeping.
func (k MarkKind) flags() bool { return k != MarkGrant }

// FlowSpan is one phase of a flow: [Start, End) spent either waiting
// for control or transmitting at priority Prio.
type FlowSpan struct {
	Start sim.Time
	End   sim.Time
	Kind  SpanKind
	Prio  int
}

// Mark is one instantaneous annotation on a flow's timeline.
type Mark struct {
	At   sim.Time
	Kind MarkKind
	Arg  int64
}

// FlowTrace is the recorded lifecycle of one flow.
type FlowTrace struct {
	Flow    pkt.FlowID
	Src     pkt.NodeID
	Dst     pkt.NodeID
	Size    int64
	Start   sim.Time
	End     sim.Time
	Aborted bool
	// Flagged marks a misbehaving flow (retx/timeout/fallback/resync/
	// abort) — kept even when the sampling draw would drop it.
	Flagged bool
	Spans   []FlowSpan
	Marks   []Mark
	// Truncated counts spans/marks dropped beyond the per-flow cap.
	Truncated int64
}

// WaitCtrl sums the time the flow spent waiting for the control plane.
func (ft *FlowTrace) WaitCtrl() sim.Duration {
	var d sim.Duration
	for _, s := range ft.Spans {
		if s.Kind == SpanWait {
			d += s.End.Sub(s.Start)
		}
	}
	return d
}

// Xfer sums the time the flow spent in transmission epochs.
func (ft *FlowTrace) Xfer() sim.Duration {
	var d sim.Duration
	for _, s := range ft.Spans {
		if s.Kind == SpanXfer {
			d += s.End.Sub(s.Start)
		}
	}
	return d
}

// RouteKind classifies one routing-control-plane event.
type RouteKind uint8

const (
	// RouteLinkDown: a link failure reached a leaf's route table and
	// the affected buckets detoured (Arg = buckets rerouted).
	RouteLinkDown RouteKind = iota
	// RouteLinkUp: the failed link recovered and its buckets returned
	// (Arg = buckets restored).
	RouteLinkUp
	// RouteTEMove: a TE epoch shifted one bucket off a hot spine
	// (Spine = source, Arg = target spine).
	RouteTEMove
)

// String names the route event kind for export.
func (k RouteKind) String() string {
	switch k {
	case RouteLinkDown:
		return "link_down"
	case RouteLinkUp:
		return "link_up"
	case RouteTEMove:
		return "te_move"
	}
	return "route?"
}

// RouteEvent is one routing-control update applied to a leaf's route
// table — a reroute around a failure or a TE bucket move.
type RouteEvent struct {
	At   sim.Time
	Rack int // the leaf whose table changed
	Kind RouteKind
	// Spine is the subject spine (the failed/recovered one, or the
	// source of a TE move).
	Spine int
	// Arg carries kind-specific detail: buckets moved for link events,
	// the target spine for TE moves.
	Arg int64
}

// CtrlOutcome classifies one arbitration half-exchange.
type CtrlOutcome uint8

const (
	// CtrlOK: the request climbed the hierarchy and a response was
	// delivered after the modelled latency.
	CtrlOK CtrlOutcome = iota
	// CtrlReqDropped: the fault injector dropped the request leg.
	CtrlReqDropped
	// CtrlRespDropped: the fault injector dropped the response leg.
	CtrlRespDropped
	// CtrlDead: the walk hit a crashed arbitrator and died there.
	CtrlDead
)

// String names the outcome for export.
func (o CtrlOutcome) String() string {
	switch o {
	case CtrlOK:
		return "ok"
	case CtrlReqDropped:
		return "req_dropped"
	case CtrlRespDropped:
		return "resp_dropped"
	case CtrlDead:
		return "dead_arb"
	}
	return "outcome?"
}

// CtrlSpan is one control-plane exchange through the arbitrator
// hierarchy: the request leg up, per-level aggregation, and the
// response leg back down, modelled as Latency after Start.
type CtrlSpan struct {
	Flow pkt.FlowID
	// SrcSide distinguishes the source-half request from the
	// destination-half request of the same refresh.
	SrcSide bool
	// Level is how many hierarchy levels past the host-local
	// arbitrator the request climbed (0 = resolved locally).
	Level int
	Start sim.Time
	// Latency is the modelled round-trip (0 when the exchange died).
	Latency sim.Duration
	Outcome CtrlOutcome
}

// Meta describes the run a trace came from; it rides along in the
// Perfetto header so analysis tools can reconstruct rates.
type Meta struct {
	Proto    string
	Scenario string
	// NICBps is the host NIC line rate in bits/s — the denominator of
	// the critical-path serialization term.
	NICBps  int64
	SampleN int
	Seed    uint64
}

// TraceStats summarizes what the recorder kept and shed. Every field
// is derived from shard-count-invariant quantities, so a traced run
// reports identical stats at any shard count.
type TraceStats struct {
	FlowsStarted    int64
	FlowsFinal      int64 // traces in the output
	FlowsSampledOut int64 // completed clean but lost the sample draw
	FlowsEvicted    int64 // committed but pushed out by FlowCap
	FlowsUnfinished int64 // still open when the run ended
	SpansTruncated  int64 // spans/marks over the per-flow cap (kept flows)
	CtrlTotal       int64
	CtrlEvicted     int64
}

// Recorder defaults. FlowCap bounds retained flow traces run-wide,
// MaxPerFlow bounds one flow's spans and marks (each), CtrlCap bounds
// retained control spans.
const (
	DefaultFlowCap    = 1 << 17
	DefaultMaxPerFlow = 256
	DefaultCtrlCap    = 1 << 18
	// DefaultRouteCap bounds retained routing-control events; route
	// updates are rare (failures and one TE move per epoch per leaf),
	// so the ring almost never wraps.
	DefaultRouteCap = 1 << 16
)

// RecorderConfig parameterizes a Recorder. Zero values take the
// defaults above; SampleN <= 1 keeps every flow.
type RecorderConfig struct {
	// SampleN keeps 1 in N flows (seed-driven, per-flow deterministic).
	// Flagged flows are always kept.
	SampleN int
	// Seed drives the sampling hash; use the run seed so re-runs trace
	// the same flows.
	Seed       uint64
	FlowCap    int
	MaxPerFlow int
	CtrlCap    int
	RouteCap   int
}

// Recorder owns a run's flight recording: one ShardRecorder per engine
// shard (a serial run has exactly one) and the merge that produces the
// canonical RunTrace.
type Recorder struct {
	cfg    RecorderConfig
	shards []*ShardRecorder
	meta   Meta
	spill  *PerfettoStream
}

// NewRecorder builds a recorder, applying config defaults.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.FlowCap <= 0 {
		cfg.FlowCap = DefaultFlowCap
	}
	if cfg.MaxPerFlow <= 0 {
		cfg.MaxPerFlow = DefaultMaxPerFlow
	}
	if cfg.CtrlCap <= 0 {
		cfg.CtrlCap = DefaultCtrlCap
	}
	if cfg.RouteCap <= 0 {
		cfg.RouteCap = DefaultRouteCap
	}
	return &Recorder{cfg: cfg}
}

// SetMeta records the run description; in spill mode it also opens the
// output stream (the Perfetto header carries the meta, so it must be
// known before the first flow commits).
func (r *Recorder) SetMeta(m Meta) {
	m.SampleN = r.cfg.SampleN
	m.Seed = r.cfg.Seed
	r.meta = m
	if r.spill != nil {
		r.spill.Begin(m)
	}
}

// SpillTo switches the recorder into spill mode: committed flow traces
// stream into ps at completion instead of being retained, keeping
// memory O(in-flight). Only single-shard recorders may spill (the
// stream has one writer); call before Shard.
func (r *Recorder) SpillTo(ps *PerfettoStream) {
	if len(r.shards) > 1 {
		panic("trace: SpillTo on a multi-shard recorder")
	}
	r.spill = ps
}

// Shard creates the recorder for one engine shard. Each shard's
// methods are called only from that shard's goroutine; shards share
// nothing mutable.
func (r *Recorder) Shard(eng *sim.Engine) *ShardRecorder {
	if r.spill != nil && len(r.shards) > 0 {
		panic("trace: spill-mode recorder is single-shard")
	}
	s := &ShardRecorder{
		r:    r,
		eng:  eng,
		live: make(map[pkt.FlowID]*FlowTrace),
		done: make([]*FlowTrace, 0, 16),
		ctrl: make([]CtrlSpan, 0, 16),
	}
	r.shards = append(r.shards, s)
	return s
}

// ShardRecorder records flow and control spans for one engine shard.
// All methods are nil-safe no-ops, so call sites can stay
// unconditional when tracing is off.
type ShardRecorder struct {
	r   *Recorder
	eng *sim.Engine

	live map[pkt.FlowID]*FlowTrace
	free []*FlowTrace // recycled traces of sampled-out flows

	// Committed ring: done grows to FlowCap, then donePos wraps.
	done    []*FlowTrace
	donePos int64

	// Spill-mode tie group: commits sharing one End timestamp, flushed
	// sorted by flow ID when the clock moves past them.
	spillGrp []*FlowTrace

	// Ctrl ring, same shape as done.
	ctrl    []CtrlSpan
	ctrlPos int64

	// Route ring, same shape as ctrl.
	route    []RouteEvent
	routePos int64

	started    int64
	sampledOut int64
}

// sampleHash is a SplitMix64 finalizer over (seed, flow): a cheap,
// well-mixed, shard-independent per-flow coin.
func sampleHash(seed uint64, f pkt.FlowID) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(uint64(f)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Sampled reports whether the sampling draw keeps flow f.
func (r *Recorder) Sampled(f pkt.FlowID) bool {
	if r.cfg.SampleN <= 1 {
		return true
	}
	return sampleHash(r.cfg.Seed, f)%uint64(r.cfg.SampleN) == 0
}

// FlowArrive opens a flow's trace. held reports whether the flow is
// waiting for a control-plane allocation (PASE's hold-at-source);
// otherwise it is transmitting immediately at prio.
func (s *ShardRecorder) FlowArrive(f pkt.FlowID, src, dst pkt.NodeID, size int64, prio int, held bool) {
	if s == nil {
		return
	}
	s.started++
	now := s.eng.Now()
	ft := s.alloc()
	ft.Flow, ft.Src, ft.Dst, ft.Size = f, src, dst, size
	ft.Start = now
	kind := SpanXfer
	if held {
		kind = SpanWait
	}
	ft.Spans = append(ft.Spans, FlowSpan{Start: now, End: now, Kind: kind, Prio: prio})
	s.live[f] = ft
}

// Epoch records a transmission-epoch transition: the current phase
// ends now and a new transmit span opens at prio. A transition into
// the phase already running is a no-op.
func (s *ShardRecorder) Epoch(f pkt.FlowID, prio int) {
	if s == nil {
		return
	}
	ft := s.live[f]
	if ft == nil {
		return
	}
	if n := len(ft.Spans); n > 0 {
		cur := &ft.Spans[n-1]
		if cur.Kind == SpanXfer && cur.Prio == prio {
			return
		}
		cur.End = s.eng.Now()
	}
	if len(ft.Spans) >= s.r.cfg.MaxPerFlow {
		ft.Truncated++
		return
	}
	now := s.eng.Now()
	ft.Spans = append(ft.Spans, FlowSpan{Start: now, End: now, Kind: SpanXfer, Prio: prio})
}

// Mark annotates the flow's timeline at the current instant. Marks
// other than grants flag the flow as always-kept.
func (s *ShardRecorder) Mark(f pkt.FlowID, kind MarkKind, arg int64) {
	if s == nil {
		return
	}
	ft := s.live[f]
	if ft == nil {
		return
	}
	if kind.flags() {
		ft.Flagged = true
	}
	if len(ft.Marks) >= s.r.cfg.MaxPerFlow {
		ft.Truncated++
		return
	}
	ft.Marks = append(ft.Marks, Mark{At: s.eng.Now(), Kind: kind, Arg: arg})
}

// FlowEnd closes a flow's trace and commits or discards it: flagged
// flows and flows passing the sample draw are kept, the rest recycle.
func (s *ShardRecorder) FlowEnd(f pkt.FlowID, aborted bool) {
	if s == nil {
		return
	}
	ft := s.live[f]
	if ft == nil {
		return
	}
	delete(s.live, f)
	now := s.eng.Now()
	ft.End = now
	if n := len(ft.Spans); n > 0 {
		ft.Spans[n-1].End = now
	}
	if aborted {
		ft.Aborted = true
		ft.Flagged = true
		if len(ft.Marks) < s.r.cfg.MaxPerFlow {
			ft.Marks = append(ft.Marks, Mark{At: now, Kind: MarkAbort})
		} else {
			ft.Truncated++
		}
	}
	if !ft.Flagged && !s.r.Sampled(f) {
		s.sampledOut++
		s.recycle(ft)
		return
	}
	if ps := s.r.spill; ps != nil {
		// Commits arrive in clock order; flush the previous End-tie
		// group (sorted by flow ID) once the clock moves past it.
		if n := len(s.spillGrp); n > 0 && s.spillGrp[0].End != ft.End {
			s.flushSpill(ps)
		}
		s.spillGrp = append(s.spillGrp, ft)
		return
	}
	cap := s.r.cfg.FlowCap
	if len(s.done) < cap {
		s.done = append(s.done, ft)
	} else {
		s.recycle(s.done[s.donePos%int64(cap)])
		s.done[s.donePos%int64(cap)] = ft
	}
	s.donePos++
}

func (s *ShardRecorder) flushSpill(ps *PerfettoStream) {
	grp := s.spillGrp
	sort.Slice(grp, func(i, j int) bool { return grp[i].Flow < grp[j].Flow })
	ps.Flows(grp)
	for _, ft := range grp {
		s.recycle(ft)
	}
	s.spillGrp = s.spillGrp[:0]
}

// Ctrl records one control-plane exchange.
func (s *ShardRecorder) Ctrl(cs CtrlSpan) {
	if s == nil {
		return
	}
	cap := s.r.cfg.CtrlCap
	if len(s.ctrl) < cap {
		s.ctrl = append(s.ctrl, cs)
	} else {
		s.ctrl[s.ctrlPos%int64(cap)] = cs
	}
	s.ctrlPos++
}

// Route records one routing-control update. Call on the shard whose
// leaf table changed; a run that never reroutes records nothing and
// its trace bytes stay identical to a build without routing control.
func (s *ShardRecorder) Route(ev RouteEvent) {
	if s == nil {
		return
	}
	cap := s.r.cfg.RouteCap
	if len(s.route) < cap {
		s.route = append(s.route, ev)
	} else {
		s.route[s.routePos%int64(cap)] = ev
	}
	s.routePos++
}

// alloc reuses a recycled trace or makes one.
func (s *ShardRecorder) alloc() *FlowTrace {
	if n := len(s.free); n > 0 {
		ft := s.free[n-1]
		s.free = s.free[:n-1]
		return ft
	}
	return &FlowTrace{}
}

// maxFreeTraces bounds the recycling list.
const maxFreeTraces = 1024

func (s *ShardRecorder) recycle(ft *FlowTrace) {
	if len(s.free) >= maxFreeTraces {
		return
	}
	*ft = FlowTrace{Spans: ft.Spans[:0], Marks: ft.Marks[:0]}
	s.free = append(s.free, ft)
}

// ring returns the retained ring contents oldest-first.
func ringTraces(buf []*FlowTrace, pos int64, cap int) []*FlowTrace {
	if pos <= int64(len(buf)) {
		return buf
	}
	at := int(pos % int64(cap))
	out := make([]*FlowTrace, 0, len(buf))
	out = append(out, buf[at:]...)
	return append(out, buf[:at]...)
}

func ringCtrl(buf []CtrlSpan, pos int64, cap int) []CtrlSpan {
	if pos <= int64(len(buf)) {
		return buf
	}
	at := int(pos % int64(cap))
	out := make([]CtrlSpan, 0, len(buf))
	out = append(out, buf[at:]...)
	return append(out, buf[:at]...)
}

func ringRoute(buf []RouteEvent, pos int64, cap int) []RouteEvent {
	if pos <= int64(len(buf)) {
		return buf
	}
	at := int(pos % int64(cap))
	out := make([]RouteEvent, 0, len(buf))
	out = append(out, buf[at:]...)
	return append(out, buf[:at]...)
}

// RunTrace is a run's merged flight recording in canonical order:
// Flows by (End, Flow), Ctrl by (Start, Flow, side, level), Queue by
// (At, Idx). The order — and therefore the exported bytes — is
// identical at every shard count and parallelism (up to the capacity
// caps; see Stats for what was shed).
type RunTrace struct {
	Meta  Meta
	Flows []*FlowTrace
	Ctrl  []CtrlSpan
	Queue []QueueSample
	// Route holds the routing-control events in canonical
	// (At, Rack, Kind, Spine, Arg) order; empty unless the run rerouted.
	Route []RouteEvent
	Stats TraceStats
}

// Take merges every shard's buffers into the canonical RunTrace. Call
// once, after the run. In spill mode the flows are already gone to the
// stream; Take returns the control spans, stats and meta, and the
// caller finishes with FinishSpill.
func (r *Recorder) Take() *RunTrace {
	rt := &RunTrace{Meta: r.meta}
	var flows []*FlowTrace
	for _, s := range r.shards {
		if r.spill != nil && len(s.spillGrp) > 0 {
			s.flushSpill(r.spill)
		}
		flows = append(flows, ringTraces(s.done, s.donePos, r.cfg.FlowCap)...)
		rt.Ctrl = append(rt.Ctrl, ringCtrl(s.ctrl, s.ctrlPos, r.cfg.CtrlCap)...)
		rt.Route = append(rt.Route, ringRoute(s.route, s.routePos, r.cfg.RouteCap)...)
		rt.Stats.FlowsStarted += s.started
		rt.Stats.FlowsSampledOut += s.sampledOut
		rt.Stats.FlowsUnfinished += int64(len(s.live))
		rt.Stats.CtrlTotal += s.ctrlPos
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].End != flows[j].End {
			return flows[i].End < flows[j].End
		}
		return flows[i].Flow < flows[j].Flow
	})
	// Run-wide cap: keep the most recent FlowCap by (End, Flow). Any
	// survivor is necessarily among the newest FlowCap of its own
	// shard's ring, so per-shard eviction never changes this set and
	// the output stays shard-count-invariant.
	if len(flows) > r.cfg.FlowCap {
		flows = flows[len(flows)-r.cfg.FlowCap:]
	}
	rt.Flows = flows
	sort.Slice(rt.Ctrl, func(i, j int) bool {
		a, b := rt.Ctrl[i], rt.Ctrl[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Flow != b.Flow {
			return a.Flow < b.Flow
		}
		if a.SrcSide != b.SrcSide {
			return a.SrcSide
		}
		return a.Level < b.Level
	})
	if len(rt.Ctrl) > r.cfg.CtrlCap {
		rt.Ctrl = rt.Ctrl[len(rt.Ctrl)-r.cfg.CtrlCap:]
	}
	sort.Slice(rt.Route, func(i, j int) bool {
		a, b := rt.Route[i], rt.Route[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Rack != b.Rack {
			return a.Rack < b.Rack
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Spine != b.Spine {
			return a.Spine < b.Spine
		}
		return a.Arg < b.Arg
	})
	if len(rt.Route) > r.cfg.RouteCap {
		rt.Route = rt.Route[len(rt.Route)-r.cfg.RouteCap:]
	}
	st := &rt.Stats
	st.FlowsFinal = int64(len(rt.Flows))
	st.FlowsEvicted = st.FlowsStarted - st.FlowsSampledOut - st.FlowsUnfinished - st.FlowsFinal
	for _, ft := range rt.Flows {
		st.SpansTruncated += ft.Truncated
	}
	st.CtrlEvicted = st.CtrlTotal - int64(len(rt.Ctrl))
	return rt
}

// FinishSpill completes a spill-mode stream: the control spans and
// queue samples land after the flow sections, and the JSON closes.
func (r *Recorder) FinishSpill(rt *RunTrace) error {
	if r.spill == nil {
		panic("trace: FinishSpill without SpillTo")
	}
	return r.spill.Finish(rt.Ctrl, rt.Queue, rt.Route)
}

// Digest folds the trace's canonical content into one FNV-1a hash —
// the cheap equality pin for determinism tests.
func (rt *RunTrace) Digest() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v int64) {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= 1099511628211
			u >>= 8
		}
	}
	for _, ft := range rt.Flows {
		mix(int64(ft.Flow))
		mix(int64(ft.Start))
		mix(int64(ft.End))
		mix(ft.Size)
		b := int64(0)
		if ft.Flagged {
			b = 1
		}
		if ft.Aborted {
			b |= 2
		}
		mix(b)
		for _, sp := range ft.Spans {
			mix(int64(sp.Start))
			mix(int64(sp.End))
			mix(int64(sp.Kind))
			mix(int64(sp.Prio))
		}
		for _, m := range ft.Marks {
			mix(int64(m.At))
			mix(int64(m.Kind))
			mix(m.Arg)
		}
	}
	for _, c := range rt.Ctrl {
		mix(int64(c.Flow))
		mix(int64(c.Start))
		mix(int64(c.Latency))
		mix(int64(c.Level))
		mix(int64(c.Outcome))
	}
	for _, q := range rt.Queue {
		mix(int64(q.At))
		mix(int64(q.Idx))
		mix(int64(q.Len))
		mix(q.Bytes)
	}
	// Route events mix last: a run with none keeps the digest it had
	// before routing control existed.
	for _, r := range rt.Route {
		mix(int64(r.At))
		mix(int64(r.Rack))
		mix(int64(r.Kind))
		mix(int64(r.Spine))
		mix(r.Arg)
	}
	return h
}
