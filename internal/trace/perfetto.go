package trace

import (
	"bufio"
	"fmt"
	"io"
)

// Chrome/Perfetto trace-event JSON export.
//
// The layout: process 1 ("flows") holds one track per flow — an
// enclosing "flow <id>" span with the wait/transmit phase spans nested
// inside it and instant events for the marks; process 2
// ("arbitration") holds the control-plane exchanges, with s/f
// flow-arrows tying each completed exchange back to its flow's track;
// process 3 ("queues") carries queue occupancy as counter tracks.
// Timestamps are microseconds with nanosecond fractions, so nothing is
// truncated. The emission is hand-rolled and fully deterministic: no
// maps, no floats, fixed key order.

// Perfetto process ids.
const (
	pidFlows  = 1
	pidCtrl   = 2
	pidQueues = 3
	pidRoute  = 4
)

// PerfettoStream writes trace-event JSON incrementally: Begin, any
// number of Flows calls (flow traces in canonical order), Finish. The
// spill path of the Recorder drives it flow-group by flow-group; the
// buffered path drives it once via RunTrace.WritePerfetto.
type PerfettoStream struct {
	b     *bufio.Writer
	n     int // events written (comma bookkeeping)
	arrow int // flow-arrow id allocator
	began bool
	err   error
}

// NewPerfettoStream wraps w; nothing is written until Begin.
func NewPerfettoStream(w io.Writer) *PerfettoStream {
	return &PerfettoStream{b: bufio.NewWriter(w)}
}

// Begin writes the header and process metadata. Must be called once,
// before any Flows call.
func (ps *PerfettoStream) Begin(meta Meta) {
	if ps.began {
		return
	}
	ps.began = true
	fmt.Fprintf(ps.b,
		`{"displayTimeUnit":"ns","otherData":{"tool":"pase","proto":%q,"scenario":%q,"nic_bps":"%d","sample_n":"%d","seed":"%d"},"traceEvents":[`,
		meta.Proto, meta.Scenario, meta.NICBps, meta.SampleN, meta.Seed)
	ps.event(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":"flows"}}`, pidFlows)
	ps.event(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":"arbitration"}}`, pidCtrl)
	ps.event(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":"queues"}}`, pidQueues)
}

// event writes one comma-separated JSON object.
func (ps *PerfettoStream) event(format string, args ...any) {
	if ps.n > 0 {
		ps.b.WriteString(",\n")
	} else {
		ps.b.WriteString("\n")
	}
	ps.n++
	fmt.Fprintf(ps.b, format, args...)
}

// ts renders a sim time/duration (ns) as fractional microseconds —
// the trace-event unit — without losing sub-µs precision.
func ts(ns int64) string {
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// Flows emits the events of a batch of flow traces (already in
// canonical order).
func (ps *PerfettoStream) Flows(fts []*FlowTrace) {
	for _, ft := range fts {
		dur := int64(ft.End.Sub(ft.Start))
		ps.event(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":"flow %d","cat":"flow","args":{"src":%d,"dst":%d,"size":%d,"flagged":%t,"aborted":%t,"truncated":%d}}`,
			pidFlows, ft.Flow, ts(int64(ft.Start)), ts(dur), ft.Flow,
			ft.Src, ft.Dst, ft.Size, ft.Flagged, ft.Aborted, ft.Truncated)
		for _, sp := range ft.Spans {
			name := "wait-ctrl"
			if sp.Kind == SpanXfer {
				name = fmt.Sprintf("xfer q%d", sp.Prio)
			}
			ps.event(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%q,"cat":"phase","args":{"prio":%d}}`,
				pidFlows, ft.Flow, ts(int64(sp.Start)), ts(int64(sp.End.Sub(sp.Start))), name, sp.Prio)
		}
		for _, m := range ft.Marks {
			ps.event(`{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"name":%q,"cat":"mark","args":{"arg":%d}}`,
				pidFlows, ft.Flow, ts(int64(m.At)), m.Kind.String(), m.Arg)
		}
	}
}

// Finish writes the control-plane, queue and routing sections, closes
// the JSON and flushes. It returns the first underlying write error.
func (ps *PerfettoStream) Finish(ctrl []CtrlSpan, queue []QueueSample, route []RouteEvent) error {
	if !ps.began {
		panic("trace: PerfettoStream.Finish before Begin")
	}
	for _, c := range ctrl {
		side := "dst"
		if c.SrcSide {
			side = "src"
		}
		ps.event(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":"arb %s L%d","cat":"ctrl","args":{"outcome":%q,"level":%d}}`,
			pidCtrl, c.Flow, ts(int64(c.Start)), ts(int64(c.Latency)),
			side, c.Level, c.Outcome.String(), c.Level)
		if c.Outcome == CtrlOK && c.Latency > 0 {
			ps.arrow++
			done := int64(c.Start) + int64(c.Latency)
			ps.event(`{"ph":"s","pid":%d,"tid":%d,"ts":%s,"id":%d,"name":"arb","cat":"arbflow"}`,
				pidCtrl, c.Flow, ts(int64(c.Start)), ps.arrow)
			ps.event(`{"ph":"f","bp":"e","pid":%d,"tid":%d,"ts":%s,"id":%d,"name":"arb","cat":"arbflow"}`,
				pidFlows, c.Flow, ts(done), ps.arrow)
		}
	}
	for _, q := range queue {
		ps.event(`{"ph":"C","pid":%d,"ts":%s,"name":%q,"args":{"pkts":%d,"bytes":%d}}`,
			pidQueues, ts(int64(q.At)), q.Port, q.Len, q.Bytes)
	}
	if len(route) > 0 {
		// The routing process only exists in traces that rerouted, so
		// route-free exports stay byte-identical to pre-routing builds.
		ps.event(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":"routing"}}`, pidRoute)
		for _, r := range route {
			ps.event(`{"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"name":%q,"cat":"route","args":{"rack":%d,"spine":%d,"arg":%d}}`,
				pidRoute, r.Rack, ts(int64(r.At)), r.Kind.String(), r.Rack, r.Spine, r.Arg)
		}
	}
	ps.b.WriteString("\n]}\n")
	if err := ps.b.Flush(); err != nil {
		return err
	}
	return ps.err
}

// WritePerfetto exports the trace as Chrome/Perfetto trace-event JSON.
// The output is byte-identical for byte-identical traces — shard count
// and parallelism never change it.
func (rt *RunTrace) WritePerfetto(w io.Writer) error {
	ps := NewPerfettoStream(w)
	ps.Begin(rt.Meta)
	ps.Flows(rt.Flows)
	return ps.Finish(rt.Ctrl, rt.Queue, rt.Route)
}
