// Package route is the fabric's reactive routing control loop: the
// piece that turns the leaf-spine route tables from a frozen ECMP hash
// into something that answers the network.
//
// Two control loops share one Controller:
//
//   - Failure rerouting: the fault injector reports link up/down
//     transitions (Injector.OnLinkState) and the controller immediately
//     repairs the affected tables. A leaf→spine uplink outage is
//     handled synchronously on the leaf's shard — the flows hashed onto
//     the dead uplink detour to surviving spines before the next packet
//     routes. A spine→leaf downlink outage is observed on the spine's
//     shard; every leaf learns of it one control-propagation delay
//     later (Params.Deliver) and detours its traffic toward the
//     orphaned rack around that spine.
//
//   - Traffic engineering: each leaf runs a periodic epoch timer that
//     reads its uplink utilization (Port.BusyTime deltas) and, when the
//     hottest and coldest live spines diverge by more than the
//     hysteresis band, pins one ECMP bucket from hot to cold. A dwell
//     time per bucket stops the loop from thrashing a bucket back and
//     forth across epochs.
//
// Determinism: all decisions read only state owned by the shard they
// run on, cross-shard updates ride the conservative-lookahead handoff
// with explicitly captured rank slots (Params.Deliver), and the TE
// inputs (BusyTime) are themselves byte-identical between serial and
// sharded runs — so a routed run keeps the serial-equals-sharded
// property the engine guarantees.
package route

import (
	"fmt"

	"pase/internal/check"
	"pase/internal/netem"
	"pase/internal/obs"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/topology"
	"pase/internal/trace"
)

// Default control-loop parameters.
const (
	// DefaultEpoch is the TE measurement window.
	DefaultEpoch = sim.Millisecond
	// DefaultHysteresis is the minimum utilization gap (fraction of
	// line rate) between the hottest and coldest spine before a bucket
	// moves.
	DefaultHysteresis = 0.10
	// DefaultDwell is the minimum time between moves of one bucket.
	DefaultDwell = 5 * sim.Millisecond
	// walkTTL bounds the route-validity forwarding walks.
	walkTTL = 8
)

// Config selects which control loops run and with what constants.
// The zero value disables the controller entirely.
type Config struct {
	// Reroute reacts to link failures (both directions of the
	// leaf-spine mesh).
	Reroute bool
	// TE runs the periodic hotspot traffic-engineering epoch.
	TE bool
	// Epoch, Hysteresis and Dwell tune TE; zero values take the
	// package defaults.
	Epoch      sim.Duration
	Hysteresis float64
	Dwell      sim.Duration
}

// Enabled reports whether any control loop is requested.
func (c Config) Enabled() bool { return c.Reroute || c.TE }

func (c Config) withDefaults() Config {
	if c.Epoch <= 0 {
		c.Epoch = DefaultEpoch
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = DefaultHysteresis
	}
	if c.Dwell <= 0 {
		c.Dwell = DefaultDwell
	}
	return c
}

// Params wires a Controller into one run. The per-rack accessors let
// sharded runs hand each leaf its own shard's engine, registry,
// checker and recorder; serial runs return the same instance for every
// rack.
type Params struct {
	Net *topology.Network
	Cfg Config

	// EngineOf returns the engine that owns rack r (its leaf's shard).
	EngineOf func(rack int) *sim.Engine
	// Deliver runs fn on dstRack's shard one control-propagation delay
	// after now, from's shard being the caller. Serial runs Schedule on
	// the one engine; sharded runs hand off with a captured rank slot.
	// Both must consume exactly one rank child slot per call so event
	// order matches between the two.
	Deliver func(from netem.Node, dstRack int, fn func())
	// ChkOf returns rack r's invariant checker (nil-safe).
	ChkOf func(rack int) *check.Checker
	// RegOf returns rack r's observability registry (nil-safe).
	RegOf func(rack int) *obs.Registry
	// Record emits a routing event into rack r's shard recorder; nil
	// when the run is untraced.
	Record func(rack int, ev trace.RouteEvent)
}

// Controller owns the per-leaf control state. One per run.
type Controller struct {
	p     Params
	cfg   Config
	racks []*rackCtl
}

// rackCtl is one leaf's share of the controller; touched only from
// that leaf's shard.
type rackCtl struct {
	c    *Controller
	rack int
	tbl  *topology.RouteTable
	eng  *sim.Engine
	chk  *check.Checker

	// upPorts[s] transmits on the leaf→spine s uplink.
	upPorts []*netem.Port
	// lastBusy[s] is BusyTime at the previous TE epoch boundary.
	lastBusy []sim.Duration
	// lastMoved[b] is when TE last pinned bucket b (0 = never).
	lastMoved []sim.Time

	o struct {
		linkDown, linkUp  *obs.Counter
		reroutes          *obs.Counter
		teEpochs, teMoves *obs.Counter
	}
}

// Attach builds the controller and arms its loops: failure rerouting
// activates as soon as the caller points Injector.OnLinkState at
// LinkState, and the TE epoch timers are scheduled here, one per leaf
// in rack order (the order fixes their setup rank slots). Returns nil
// when the config is disabled or the fabric has no route tables (tree
// topologies route single-path; there is nothing to steer).
func Attach(p Params) *Controller {
	if !p.Cfg.Enabled() || !p.Net.IsLeafSpine() || p.Net.RouteTable(0) == nil {
		return nil
	}
	c := &Controller{p: p, cfg: p.Cfg.withDefaults()}
	racks := p.Net.Cfg.Racks
	for r := 0; r < racks; r++ {
		rc := &rackCtl{
			c:    c,
			rack: r,
			tbl:  p.Net.RouteTable(r),
			eng:  p.EngineOf(r),
			chk:  p.ChkOf(r),
		}
		for _, l := range p.Net.SpineUpLinks(r) {
			rc.upPorts = append(rc.upPorts, l.Port)
		}
		rc.lastBusy = make([]sim.Duration, len(rc.upPorts))
		rc.lastMoved = make([]sim.Time, rc.tbl.Buckets())
		reg := p.RegOf(r)
		rc.o.linkDown = reg.Counter("route/link_down")
		rc.o.linkUp = reg.Counter("route/link_up")
		rc.o.reroutes = reg.Counter("route/reroutes")
		rc.o.teEpochs = reg.Counter("route/te_epochs")
		rc.o.teMoves = reg.Counter("route/te_moves")
		c.racks = append(c.racks, rc)
	}
	if c.cfg.TE && c.racks[0].tbl.Spines() > 1 {
		for _, rc := range c.racks {
			rc := rc
			rc.eng.Schedule(c.cfg.Epoch, rc.tick)
		}
	}
	return c
}

// LinkState is the fault-injector subscription point: it runs on the
// shard that transmits on the link (the injector's engine). Host edge
// links are not reroutable (a host has one NIC) and are left to the
// transports' loss recovery.
func (c *Controller) LinkState(link int, down bool) {
	if c == nil || !c.cfg.Reroute {
		return
	}
	info, ok := c.p.Net.LeafSpineLinkInfo(link)
	if !ok {
		return
	}
	if info.Up {
		// Leaf→spine uplink: the leaf owns the transmitting port, so we
		// are on its shard and can repair its table in place.
		c.racks[info.Rack].uplinkState(info.Spine, down)
		return
	}
	// Spine→leaf downlink: observed on the spine's shard. Every leaf
	// must detour its traffic toward the orphaned rack, so fan the
	// update out — rack order fixes the rank slots the deliveries take.
	spine := c.p.Net.Spines[info.Spine]
	q, s := info.Rack, info.Spine
	for r := range c.racks {
		rc := c.racks[r]
		c.p.Deliver(spine, r, func() { rc.dstState(q, s, down) })
	}
}

// record emits ev into the rack's shard recorder if the run traces.
func (rc *rackCtl) record(ev trace.RouteEvent) {
	if rc.c.p.Record != nil {
		rc.c.p.Record(rc.rack, ev)
	}
}

// uplinkState applies a leaf→spine uplink transition to this leaf's
// table.
func (rc *rackCtl) uplinkState(s int, down bool) {
	moved := rc.tbl.SetUplink(s, down)
	kind := trace.RouteLinkUp
	if down {
		kind = trace.RouteLinkDown
		rc.o.linkDown.Inc()
	} else {
		rc.o.linkUp.Inc()
	}
	rc.o.reroutes.Add(int64(moved))
	rc.record(trace.RouteEvent{
		At: rc.eng.Now(), Rack: rc.rack, Kind: kind, Spine: s, Arg: int64(moved),
	})
	rc.validate()
}

// dstState applies a spine s → rack q downlink transition to this
// leaf's table (every leaf detours traffic toward q off s). The trace
// event and link counters are recorded once, at the orphaned rack, so
// a downlink flap reads as one transition, not one per leaf.
func (rc *rackCtl) dstState(q, s int, down bool) {
	moved := rc.tbl.SetDstDown(q, s, down)
	rc.o.reroutes.Add(int64(moved))
	if rc.rack == q {
		kind := trace.RouteLinkUp
		if down {
			kind = trace.RouteLinkDown
			rc.o.linkDown.Inc()
		} else {
			rc.o.linkUp.Inc()
		}
		rc.record(trace.RouteEvent{
			At: rc.eng.Now(), Rack: rc.rack, Kind: kind, Spine: s, Arg: int64(moved),
		})
	}
	rc.validate()
}

// tick is one TE epoch on one leaf: measure, maybe move one bucket,
// re-arm.
func (rc *rackCtl) tick() {
	cfg := rc.c.cfg
	rc.o.teEpochs.Inc()
	t := rc.tbl
	hot, cold := -1, -1
	var hotU, coldU float64
	for s := 0; s < t.Spines(); s++ {
		busy := rc.upPorts[s].BusyTime()
		u := float64(busy-rc.lastBusy[s]) / float64(cfg.Epoch)
		rc.lastBusy[s] = busy
		if !t.SpineUp(s) {
			continue
		}
		if hot == -1 || u > hotU {
			hot, hotU = s, u
		}
		if cold == -1 || u < coldU {
			cold, coldU = s, u
		}
	}
	if hot != -1 && cold != -1 && hot != cold && hotU-coldU > cfg.Hysteresis {
		now := rc.eng.Now()
		for b := 0; b < t.Buckets(); b++ {
			if t.BucketSpine(b) != hot {
				continue
			}
			if rc.lastMoved[b] != 0 && now.Sub(rc.lastMoved[b]) < cfg.Dwell {
				continue
			}
			t.SetOverride(b, cold)
			rc.lastMoved[b] = now
			rc.o.teMoves.Inc()
			rc.record(trace.RouteEvent{
				At: now, Rack: rc.rack, Kind: trace.RouteTEMove, Spine: cold, Arg: int64(b),
			})
			rc.validate()
			break
		}
	}
	rc.eng.Schedule(cfg.Epoch, rc.tick)
}

// validate re-verifies the table's routing invariants after an edit:
// no bucket resolves onto a dead path while a live spine exists, and a
// TTL-bounded walk from the leaf reaches every foreign rack without
// looping. Skipped entirely when the run has no checker.
func (rc *rackCtl) validate() {
	if !rc.chk.Enabled() {
		return
	}
	t := rc.tbl
	where := fmt.Sprintf("leaf%d/routes", rc.rack)
	for q := 0; q < rc.c.p.Net.Cfg.Racks; q++ {
		if q == rc.rack {
			continue
		}
		avail := 0
		for s := 0; s < t.Spines(); s++ {
			if t.Avail(q, s) {
				avail++
			}
		}
		for b := 0; b < t.Buckets(); b++ {
			if s := t.PickBucket(q, b); !t.Avail(q, s) {
				rc.chk.RouteValid(where, q, b, s, avail)
			}
		}
		rc.walk(where, q)
	}
}

// walk traces one sample flow's forwarding path toward rack q through
// the switches' resolution tables (off the data path — nothing is
// sent) and reports a route_loop violation if it cycles or dead-ends.
// Spine resolution state is static, so reading it cross-shard is safe.
func (rc *rackCtl) walk(where string, q int) {
	net := rc.c.p.Net
	dst := net.Hosts[q*net.Cfg.HostsPerRack].ID()
	const flow = pkt.FlowID(1)
	var node netem.Node = net.ToRs[rc.rack]
	hops, reached := 0, false
	for hops < walkTTL {
		sw, ok := node.(*netem.Switch)
		if !ok {
			break
		}
		pt := sw.NextPort(dst, flow)
		if pt == nil {
			break
		}
		node = pt.Peer().Owner()
		hops++
		if node.ID() == dst {
			reached = true
			break
		}
	}
	rc.chk.RouteLoop(where, uint64(flow), q, hops, walkTTL, reached)
}
