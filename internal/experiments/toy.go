package experiments

import (
	"pase/internal/core"
	"pase/internal/netem"
	"pase/internal/sim"
	"pase/internal/topology"
	"pase/internal/transport"
	"pase/internal/transport/pfabric"
	"pase/internal/workload"
)

// RunToy executes the Figure 3 toy scenario under the given protocol
// and returns the FCTs of flows 1..3.
//
// Topology: one rack, hosts {0: src1, 1: src2, 2: dst1, 3: dst2}.
// Flow 1: src1→dst1, 0.5 MB (highest priority: smallest size).
// Flow 2: src2→dst1, 0.75 MB (medium).
// Flow 3: src2→dst2, 1.0 MB (lowest).
// Link A is src2's uplink (flows 2, 3); link B is dst1's downlink
// (flows 1, 2). Flows 1 and 3 are link-disjoint.
func RunToy(p Protocol) [3]sim.Duration {
	eng := sim.NewEngine()
	var qf func(topology.QueueKind) netem.Queue
	switch p {
	case PFabric:
		qf = func(topology.QueueKind) netem.Queue { return netem.NewPFabric(PFabricQueueSize) }
	case PASE:
		qf = func(topology.QueueKind) netem.Queue {
			return netem.NewPrio(PASENumQueues, PASEQueueSize, MarkingThreshold)
		}
	default:
		panic("experiments: toy scenario compares pFabric and PASE")
	}
	net := topology.Build(eng, topology.SingleRack(4, qf))
	d := transport.NewDriver(net, nil)
	switch p {
	case PFabric:
		c := DefaultPFabric()
		for _, st := range d.Stacks {
			st.NewControl = pfabric.New(c)
		}
	case PASE:
		params := DefaultPASEParams()
		params.Epoch = 100 * sim.Microsecond
		core.Attach(d, params, DefaultPASEEndhost())
	}
	d.Schedule([]workload.FlowSpec{
		{ID: 1, Src: 0, Dst: 2, Size: 500_000, Start: 0},
		{ID: 2, Src: 1, Dst: 2, Size: 750_000, Start: 0},
		{ID: 3, Src: 1, Dst: 3, Size: 1_000_000, Start: 0},
	})
	if _, err := d.Run(sim.Time(30 * sim.Second)); err != nil {
		panic(err)
	}
	var out [3]sim.Duration
	for _, r := range d.Collector.Records() {
		if r.Done {
			out[r.ID-1] = r.FCT()
		} else {
			out[r.ID-1] = 30 * sim.Second // never finished within the run
		}
	}
	return out
}
