package experiments

import (
	"fmt"
	"io"
	"sort"

	"pase/internal/faults"
	"pase/internal/metrics"
	"pase/internal/netem"
	"pase/internal/obs"
	"pase/internal/route"
	"pase/internal/sim"
	"pase/internal/topology"
)

// Opts scales an experiment run: fewer flows for quick looks and
// benchmarks, more for smooth curves.
type Opts struct {
	// NumFlows per point (0 = 2000).
	NumFlows int
	// Seed for workload generation.
	Seed uint64
	// Seeds averages every sweep point over this many consecutive
	// seeds starting at Seed (0 or 1 = single run). CDF figures always
	// use a single seed.
	Seeds int
	// Loads overrides the figure's load sweep when non-empty.
	Loads []float64
	// Parallelism bounds how many simulation points run concurrently
	// (0 = GOMAXPROCS, 1 = serial). Points are hermetic and results
	// are reassembled in input order, so the produced Series are
	// identical at every setting.
	Parallelism int
	// Obs attaches an observability Registry to every point; the
	// merged Snapshot lands in Result.Obs (merged in input order, so
	// it is byte-identical at every Parallelism setting).
	Obs bool
	// Check runs every point with the runtime invariant checker
	// attached; Result.Violations totals the breaches across the grid
	// (and the merged Obs snapshot, when Obs is also set, carries the
	// per-invariant split under check/violations/*).
	Check bool
	// Progress, when set, is called after each simulation point
	// completes, possibly from a worker goroutine — it must be safe
	// for concurrent use.
	Progress func(done, total int)
	// Faults applies a fault-injection plan to every point that does
	// not carry its own. Nil (the default) runs fault-free.
	Faults *faults.Plan
	// Stream runs every point through the bounded-memory streaming
	// path (workload iterator + quantile-sketch collector). Headline
	// sweep metrics (AFCT, app throughput, loss) are identical to
	// stored runs; P50/P99 and CDFs are within SketchEps.
	Stream bool
	// SketchEps overrides the streaming sketch's relative error bound
	// (0 = metrics.DefaultSketchEps).
	SketchEps float64
	// Shards splits every point's fabric across this many
	// independently-clocked engine shards (0 or 1 = serial). Results are
	// byte-identical to serial runs at every setting; points that cannot
	// shard (PASE, PDQ, spill-mode trace writers, single-atom
	// topologies) silently fall back to the serial engine. Note the
	// multiplicative core budget with Parallelism: a pooled figure runs
	// up to Parallelism × Shards goroutines at once.
	Shards int
	// Trace applies a trace configuration to every point that does not
	// carry its own. Figure grids keep only scalars per point, so the
	// recorded traces themselves are dropped — but the flight
	// recorder's retention stats (trace/*) and PASE's per-level
	// arbitration RTT histograms (arb/rtt/*) land in the merged Obs
	// snapshot. Spill writers are rejected here: points run
	// concurrently and a single writer cannot be shared.
	Trace TraceConfig
	// Ctrl forces every PASE point onto one control plane: "central"
	// swaps in the single-controller arm, "" (or "hierarchy") keeps
	// the default arbitration hierarchy. Figures that sweep both arms
	// themselves (ctrlscale) clear it.
	Ctrl string
	// Racks caps the ctrlscale figure's rack sweep (0 = the full
	// 16 → 2048 sweep). Other figures ignore it.
	Racks int
}

func (o Opts) seeds() int {
	if o.Seeds < 1 {
		return 1
	}
	return o.Seeds
}

func (o Opts) loads(def []float64) []float64 {
	if len(o.Loads) > 0 {
		return o.Loads
	}
	return def
}

// Series is one curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Result is a regenerated figure: the same series the paper plots.
type Result struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string

	// Points is how many simulation points produced the figure.
	Points int
	// Retx / Timeouts total the retransmission churn across points.
	Retx     int64
	Timeouts int64
	// Obs is the deterministically merged observability snapshot of
	// every point (nil unless Opts.Obs).
	Obs *obs.Snapshot
	// Violations totals invariant breaches across every point (always
	// 0 unless Opts.Check or PASE_CHECK enabled the checker).
	Violations int64
}

// Figure is a registered experiment.
type Figure struct {
	ID    string
	Title string
	Run   func(o Opts) *Result
}

// variant is one curve's configuration.
type variant struct {
	name string
	cfg  func(load float64, o Opts) PointConfig
}

func proto(p Protocol, s Scenario) variant {
	return variant{name: string(p), cfg: func(load float64, o Opts) PointConfig {
		return PointConfig{Protocol: p, Scenario: s, Load: load, Seed: o.Seed, NumFlows: o.NumFlows}
	}}
}

func paseVariant(name string, s Scenario, opts PASEOptions) variant {
	return variant{name: name, cfg: func(load float64, o Opts) PointConfig {
		return PointConfig{Protocol: PASE, Scenario: s, Load: load, Seed: o.Seed, NumFlows: o.NumFlows, PASE: opts}
	}}
}

// sweep runs each variant across the loads and extracts one metric,
// averaging over o.seeds() runs per point. The whole
// (variant × load × seed) grid fans out over the point pool. The
// returned extras carry the grid's merged observability.
func sweep(vs []variant, loads []float64, o Opts, metric func(PointResult) float64) ([]Series, *pointExtras) {
	seeds := o.seeds()
	cfgs := make([]PointConfig, 0, len(vs)*len(loads)*seeds)
	for _, v := range vs {
		for _, load := range loads {
			for k := 0; k < seeds; k++ {
				so := o
				so.Seed = o.Seed + uint64(k)
				cfgs = append(cfgs, v.cfg(load, so))
			}
		}
	}
	ys, ex := mapPoints(cfgs, o, metric)
	out := make([]Series, len(vs))
	idx := 0
	for i, v := range vs {
		s := Series{Name: v.name}
		for _, load := range loads {
			var sum float64
			for k := 0; k < seeds; k++ {
				sum += ys[idx]
				idx++
			}
			s.X = append(s.X, load*100)
			s.Y = append(s.Y, sum/float64(seeds))
		}
		out[i] = s
	}
	return out, ex
}

// sweepResult assembles the common figure shape from a sweep.
func sweepResult(id, title, xlabel, ylabel string, vs []variant, loads []float64, o Opts, metric func(PointResult) float64) *Result {
	series, ex := sweep(vs, loads, o, metric)
	res := &Result{ID: id, Title: title, XLabel: xlabel, YLabel: ylabel, Series: series}
	ex.fill(res)
	return res
}

// cdfSeries runs each variant at one load and returns FCT CDFs.
func cdfSeries(vs []variant, load float64, o Opts) ([]Series, *pointExtras) {
	cfgs := make([]PointConfig, len(vs))
	for i, v := range vs {
		cfgs[i] = v.cfg(load, o)
	}
	ex := newPointExtras(len(cfgs))
	rs := make([]PointResult, len(cfgs))
	forEachPoint(cfgs, o, func(i int, r PointResult) {
		rs[i] = r
		ex.observe(i, r)
	})
	out := make([]Series, len(vs))
	for i, v := range vs {
		s := Series{Name: v.name}
		for _, p := range rs[i].CDF {
			s.X = append(s.X, p.Value.Millis())
			s.Y = append(s.Y, p.Fraction)
		}
		out[i] = s
	}
	return out, ex
}

func afctMS(r PointResult) float64      { return r.Summary.AFCT.Millis() }
func p99MS(r PointResult) float64       { return r.Summary.P99.Millis() }
func appTput(r PointResult) float64     { return r.Summary.AppThroughput }
func lossRatePct(r PointResult) float64 { return r.LossRate * 100 }

// Figures is the per-paper-figure experiment registry.
var Figures = []Figure{
	{ID: "1", Title: "App throughput vs load: self-adjusting endpoints vs pFabric (deadline workload)", Run: fig1},
	{ID: "2", Title: "AFCT vs load: PDQ vs DCTCP (flow switching overhead)", Run: fig2},
	{ID: "3", Title: "Toy example: local prioritization stalls flow 3 (pFabric) vs PASE", Run: fig3},
	{ID: "4", Title: "pFabric loss rate vs load (intra-rack all-to-all)", Run: fig4},
	{ID: "9a", Title: "AFCT vs load: PASE vs L2DCT vs DCTCP (left-right)", Run: fig9a},
	{ID: "9b", Title: "FCT CDF at 70% load (left-right): PASE vs L2DCT vs DCTCP", Run: fig9b},
	{ID: "9c", Title: "App throughput vs load: PASE vs D2TCP vs DCTCP (deadlines)", Run: fig9c},
	{ID: "10a", Title: "99th percentile FCT vs load: PASE vs pFabric (left-right)", Run: fig10a},
	{ID: "10b", Title: "FCT CDF at 70% load (left-right): PASE vs pFabric", Run: fig10b},
	{ID: "10c", Title: "AFCT vs load: PASE vs pFabric (all-to-all intra-rack)", Run: fig10c},
	{ID: "11a", Title: "AFCT improvement from arbitration optimizations (left-right)", Run: fig11a},
	{ID: "11b", Title: "Control overhead reduction from arbitration optimizations (left-right)", Run: fig11b},
	{ID: "12a", Title: "End-to-end vs local-only arbitration (left-right)", Run: fig12a},
	{ID: "12b", Title: "AFCT vs number of priority queues (left-right)", Run: fig12b},
	{ID: "13a", Title: "PASE vs PASE-DCTCP: value of the reference rate (intra-rack)", Run: fig13a},
	{ID: "13b", Title: "Testbed: PASE vs DCTCP AFCT", Run: fig13b},
	{ID: "probing", Title: "Probing ablation at high load (intra-rack all-to-all)", Run: figProbing},
	{ID: "task", Title: "Extension: task-aware arbitration (Baraat-style FIFO across tasks, §3.1.1)", Run: figTask},
	{ID: "leafspine", Title: "Extension: PASE on a multipath leaf-spine fabric with per-flow ECMP", Run: figLeafSpine},
	{ID: "robust", Title: "Robustness: AFCT vs control-plane failure severity, PASE vs DCTCP baseline", Run: figRobust},
	{ID: "scale", Title: "Extension: streaming million-flow scale sweep (leaf-spine)", Run: figScale},
	{ID: "highspeed", Title: "Extension: ExpressPass vs PASE vs DCTCP on high-speed links", Run: figHighspeed},
	{ID: "te", Title: "Robustness: reactive rerouting + hotspot TE under fabric-link failures (te-failover)", Run: figTE},
	{ID: "ctrlscale", Title: "Extension: control plane at datacenter scale — arbitration hierarchy vs centralized", Run: figCtrlScale},
}

// Lookup returns the figure with the given ID.
func Lookup(id string) (Figure, bool) {
	for _, f := range Figures {
		if f.ID == id {
			return f, true
		}
	}
	return Figure{}, false
}

func fig1(o Opts) *Result {
	vs := []variant{proto(PFabric, Deadline), proto(D2TCP, Deadline), proto(DCTCP, Deadline)}
	return sweepResult("1", "Application throughput (deadline workload)",
		"Offered load (%)", "Fraction of deadlines met", vs, o.loads(DefaultLoads), o, appTput)
}

func fig2(o Opts) *Result {
	vs := []variant{proto(PDQ, IntraRackLarge), proto(DCTCP, IntraRackLarge)}
	return sweepResult("2", "AFCT: PDQ vs DCTCP (intra-rack all-to-all)",
		"Offered load (%)", "AFCT (ms)", vs, o.loads(DefaultLoads), o, afctMS)
}

func fig4(o Opts) *Result {
	vs := []variant{proto(PFabric, WorkerAgg)}
	loads := o.loads(append(append([]float64{}, DefaultLoads...), 0.95))
	return sweepResult("4", "pFabric loss rate",
		"Offered load (%)", "Loss rate (%)", vs, loads, o, lossRatePct)
}

func fig9a(o Opts) *Result {
	vs := []variant{proto(PASE, LeftRight), proto(L2DCT, LeftRight), proto(DCTCP, LeftRight)}
	return sweepResult("9a", "AFCT (left-right inter-rack)",
		"Offered load (%)", "AFCT (ms)", vs, o.loads(DefaultLoads), o, afctMS)
}

func fig9b(o Opts) *Result {
	vs := []variant{proto(PASE, LeftRight), proto(L2DCT, LeftRight), proto(DCTCP, LeftRight)}
	series, ex := cdfSeries(vs, 0.7, o)
	res := &Result{
		ID: "9b", Title: "FCT CDF at 70% load (left-right)",
		XLabel: "FCT (ms)", YLabel: "Fraction of flows",
		Series: series,
	}
	ex.fill(res)
	return res
}

func fig9c(o Opts) *Result {
	vs := []variant{proto(PASE, Deadline), proto(D2TCP, Deadline), proto(DCTCP, Deadline)}
	return sweepResult("9c", "Application throughput (deadline workload)",
		"Offered load (%)", "Fraction of deadlines met", vs, o.loads(DefaultLoads), o, appTput)
}

func fig10a(o Opts) *Result {
	vs := []variant{proto(PASE, LeftRight), proto(PFabric, LeftRight)}
	return sweepResult("10a", "99th percentile FCT (left-right)",
		"Offered load (%)", "99th-pct FCT (ms)", vs, o.loads(DefaultLoads), o, p99MS)
}

func fig10b(o Opts) *Result {
	vs := []variant{proto(PASE, LeftRight), proto(PFabric, LeftRight)}
	series, ex := cdfSeries(vs, 0.7, o)
	res := &Result{
		ID: "10b", Title: "FCT CDF at 70% load (left-right)",
		XLabel: "FCT (ms)", YLabel: "Fraction of flows",
		Series: series,
	}
	ex.fill(res)
	return res
}

func fig10c(o Opts) *Result {
	vs := []variant{proto(PASE, WorkerAgg), proto(PFabric, WorkerAgg)}
	res := sweepResult("10c", "AFCT (all-to-all intra-rack)",
		"Offered load (%)", "AFCT (ms)", vs, o.loads(DefaultLoads), o, afctMS)
	// The paper annotates per-load % improvement of PASE over pFabric.
	var imp []string
	for i := range res.Series[0].X {
		pf, pa := res.Series[1].Y[i], res.Series[0].Y[i]
		if pf > 0 {
			imp = append(imp, fmt.Sprintf("%.0f%%@%g%%", (pf-pa)/pf*100, res.Series[0].X[i]))
		}
	}
	res.Notes = append(res.Notes, "PASE improvement over pFabric: "+fmt.Sprint(imp))
	return res
}

func fig11a(o Opts) *Result { return fig11(o, true) }
func fig11b(o Opts) *Result { return fig11(o, false) }

func fig11(o Opts, afct bool) *Result {
	// Average a few seeds per point: the high-load AFCT deltas are a
	// few percent, comparable to single-run variance.
	const seeds = 3
	loads := o.loads(DefaultLoads)
	cfgs := make([]PointConfig, 0, 2*seeds*len(loads))
	for _, load := range loads {
		for seed := uint64(0); seed < seeds; seed++ {
			on := PointConfig{Protocol: PASE, Scenario: LeftRight,
				Load: load, Seed: o.Seed + seed, NumFlows: o.NumFlows}
			off := on
			off.PASE = PASEOptions{NoPruning: true, NoDelegation: true}
			cfgs = append(cfgs, on, off)
		}
	}
	type sample struct{ afct, msgs float64 }
	samples := make([]sample, len(cfgs))
	ex := newPointExtras(len(cfgs))
	forEachPoint(cfgs, o, func(i int, r PointResult) {
		samples[i] = sample{float64(r.Summary.AFCT), float64(r.CtrlMessages)}
		ex.observe(i, r)
	})
	var xs, ys []float64
	idx := 0
	for _, load := range loads {
		var onAFCT, offAFCT, onMsgs, offMsgs float64
		for seed := 0; seed < seeds; seed++ {
			onAFCT += samples[idx].afct
			onMsgs += samples[idx].msgs
			offAFCT += samples[idx+1].afct
			offMsgs += samples[idx+1].msgs
			idx += 2
		}
		xs = append(xs, load*100)
		if afct {
			if offAFCT > 0 {
				ys = append(ys, (offAFCT-onAFCT)/offAFCT*100)
			} else {
				ys = append(ys, 0)
			}
		} else {
			if offMsgs > 0 {
				ys = append(ys, (offMsgs-onMsgs)/offMsgs*100)
			} else {
				ys = append(ys, 0)
			}
		}
	}
	id, ylabel := "11a", "AFCT improvement (%)"
	if !afct {
		id, ylabel = "11b", "Overhead reduction (%)"
	}
	res := &Result{
		ID: id, Title: "Early pruning + delegation (left-right)",
		XLabel: "Offered load (%)", YLabel: ylabel,
		Series: []Series{{Name: "optimizations", X: xs, Y: ys}},
	}
	ex.fill(res)
	return res
}

func fig12a(o Opts) *Result {
	// Local-only arbitration is bimodal: runs where an overload
	// episode overflows a buffer pay 200 ms recovery tails, others
	// look fine. Average a few seeds per point so the series shows
	// the expected cost rather than one lucky (or unlucky) draw.
	const seeds = 3
	loads := o.loads(append(append([]float64{}, DefaultLoads...), 0.95))
	arms := []struct {
		name string
		opts PASEOptions
	}{
		{"Arbitration=ON", PASEOptions{}},
		{"Arbitration=OFF", PASEOptions{LocalOnly: true}},
	}
	cfgs := make([]PointConfig, 0, len(arms)*len(loads)*seeds)
	for _, arm := range arms {
		for _, load := range loads {
			for seed := uint64(0); seed < seeds; seed++ {
				cfgs = append(cfgs, PointConfig{Protocol: PASE, Scenario: LeftRight,
					Load: load, Seed: o.Seed + seed, NumFlows: o.NumFlows, PASE: arm.opts})
			}
		}
	}
	ys, ex := mapPoints(cfgs, o, afctMS)
	series := make([]Series, len(arms))
	idx := 0
	for i, arm := range arms {
		s := Series{Name: arm.name}
		for _, load := range loads {
			var sum float64
			for seed := 0; seed < seeds; seed++ {
				sum += ys[idx]
				idx++
			}
			s.X = append(s.X, load*100)
			s.Y = append(s.Y, sum/seeds)
		}
		series[i] = s
	}
	res := &Result{
		ID: "12a", Title: "End-to-end vs local-only arbitration (left-right)",
		XLabel: "Offered load (%)", YLabel: "AFCT (ms)",
		Series: series,
		Notes:  []string{fmt.Sprintf("each point averages %d seeds", seeds)},
	}
	ex.fill(res)
	return res
}

func fig12b(o Opts) *Result {
	var vs []variant
	for _, q := range []int{3, 4, 6, 8} {
		vs = append(vs, paseVariant(fmt.Sprintf("%d Queues", q), LeftRight, PASEOptions{NumQueues: q}))
	}
	return sweepResult("12b", "AFCT vs number of priority queues (left-right)",
		"Offered load (%)", "AFCT (ms)", vs, o.loads(DefaultLoads), o, afctMS)
}

func fig13a(o Opts) *Result {
	vs := []variant{
		paseVariant("PASE", IntraRackLarge, PASEOptions{}),
		paseVariant("PASE-DCTCP", IntraRackLarge, PASEOptions{DisableRefRate: true}),
	}
	return sweepResult("13a", "Reference rate ablation (intra-rack, U[100,500] KB)",
		"Offered load (%)", "AFCT (ms)", vs, o.loads(DefaultLoads), o, afctMS)
}

func fig13b(o Opts) *Result {
	vs := []variant{proto(PASE, Testbed), proto(DCTCP, Testbed)}
	return sweepResult("13b", "Testbed (simulated): PASE vs DCTCP",
		"Offered load (%)", "AFCT (ms)", vs, o.loads(DefaultLoads), o, afctMS)
}

func figProbing(o Opts) *Result {
	vs := []variant{
		paseVariant("probing on", WorkerAgg, PASEOptions{}),
		paseVariant("probing off", WorkerAgg, PASEOptions{DisableProbing: true}),
	}
	loads := o.loads([]float64{0.8, 0.9})
	return sweepResult("probing", "Probing ablation (intra-rack all-to-all)",
		"Offered load (%)", "AFCT (ms)", vs, loads, o, afctMS)
}

// Render formats a Result as aligned text columns, one row per X value.
func (r *Result) Render() string {
	out := fmt.Sprintf("Figure %s: %s\n", r.ID, r.Title)
	out += fmt.Sprintf("%-14s", r.XLabel)
	for _, s := range r.Series {
		out += fmt.Sprintf(" %16s", s.Name)
	}
	out += fmt.Sprintf("   (%s)\n", r.YLabel)

	// Collect the union of X values (CDF curves have distinct Xs; for
	// those, render each series' own rows).
	sameX := true
	for _, s := range r.Series[1:] {
		if len(s.X) != len(r.Series[0].X) {
			sameX = false
			break
		}
		for i := range s.X {
			if s.X[i] != r.Series[0].X[i] {
				sameX = false
				break
			}
		}
	}
	if sameX {
		for i := range r.Series[0].X {
			out += fmt.Sprintf("%-14.4g", r.Series[0].X[i])
			for _, s := range r.Series {
				out += fmt.Sprintf(" %16.4g", s.Y[i])
			}
			out += "\n"
		}
	} else {
		for _, s := range r.Series {
			out += fmt.Sprintf("-- %s --\n", s.Name)
			idx := make([]int, len(s.X))
			for i := range idx {
				idx[i] = i
			}
			sort.Ints(idx)
			for _, i := range idx {
				out += fmt.Sprintf("%-14.4g %16.4g\n", s.X[i], s.Y[i])
			}
		}
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// figTask exercises the criterion swap §3.1.1 names: arbitrating by
// task id (all responses of one query share a priority; tasks served
// FIFO) versus by remaining flow size, on the worker-aggregator
// workload. The metric is the mean task completion time — the time
// from a query's first response starting to its last finishing.
func figTask(o Opts) *Result {
	loads := o.loads([]float64{0.3, 0.6, 0.9})
	arms := []struct {
		name      string
		taskAware bool
	}{
		{"size-based (SJF)", false},
		{"task-aware (FIFO-LM)", true},
	}
	cfgs := make([]PointConfig, 0, len(arms)*len(loads))
	for _, arm := range arms {
		for _, load := range loads {
			cfgs = append(cfgs, PointConfig{Protocol: PASE, Scenario: WorkerAgg,
				Load: load, Seed: o.Seed, NumFlows: o.NumFlows,
				PASE: PASEOptions{TaskAware: arm.taskAware}})
		}
	}
	type sample struct {
		tctMS      float64
		inversions int
	}
	samples := make([]sample, len(cfgs))
	ex := newPointExtras(len(cfgs))
	forEachPoint(cfgs, o, func(i int, r PointResult) {
		tasks := metrics.Tasks(r.Records)
		samples[i] = sample{metrics.MeanTCT(tasks).Millis(), metrics.TaskOrderInversions(tasks)}
		ex.observe(i, r)
	})
	mk := func(arm int) (Series, []int) {
		s := Series{Name: arms[arm].name}
		var inversions []int
		for j, load := range loads {
			s.X = append(s.X, load*100)
			s.Y = append(s.Y, samples[arm*len(loads)+j].tctMS)
			inversions = append(inversions, samples[arm*len(loads)+j].inversions)
		}
		return s, inversions
	}
	bySize, invSize := mk(0)
	byTask, invTask := mk(1)
	res := &Result{
		ID: "task", Title: "Task-aware vs size-based arbitration (worker-aggregator)",
		XLabel: "Offered load (%)", YLabel: "Mean task completion time (ms)",
		Series: []Series{byTask, bySize},
		Notes: []string{
			fmt.Sprintf("task-order inversions, task-aware: %v", invTask),
			fmt.Sprintf("task-order inversions, size-based: %v", invSize),
		},
	}
	ex.fill(res)
	return res
}

// WriteTSV dumps the figure as tab-separated columns (one X column,
// one column per series). Series with differing X grids (CDFs) are
// emitted as separate blocks.
func (r *Result) WriteTSV(w io.Writer) error {
	sameX := true
	for _, s := range r.Series[1:] {
		if len(s.X) != len(r.Series[0].X) {
			sameX = false
			break
		}
		for i := range s.X {
			if s.X[i] != r.Series[0].X[i] {
				sameX = false
				break
			}
		}
	}
	if _, err := fmt.Fprintf(w, "# Figure %s: %s\n", r.ID, r.Title); err != nil {
		return err
	}
	if sameX {
		fmt.Fprintf(w, "# %s", r.XLabel)
		for _, s := range r.Series {
			fmt.Fprintf(w, "\t%s", s.Name)
		}
		fmt.Fprintf(w, "\t(%s)\n", r.YLabel)
		for i := range r.Series[0].X {
			fmt.Fprintf(w, "%g", r.Series[0].X[i])
			for _, s := range r.Series {
				fmt.Fprintf(w, "\t%g", s.Y[i])
			}
			fmt.Fprintln(w)
		}
	} else {
		for _, s := range r.Series {
			fmt.Fprintf(w, "# %s: %s vs %s\n", s.Name, r.XLabel, r.YLabel)
			for i := range s.X {
				fmt.Fprintf(w, "%g\t%g\n", s.X[i], s.Y[i])
			}
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "# note: %s\n", n); err != nil {
			return err
		}
	}
	if r.Points > 0 {
		if _, err := fmt.Fprintf(w, "# totals: points=%d retx=%d timeouts=%d\n",
			r.Points, r.Retx, r.Timeouts); err != nil {
			return err
		}
	}
	return nil
}

// figLeafSpine runs the protocols on the two-tier multipath fabric:
// PASE's per-link arbitration composes with per-flow ECMP because the
// control plane arbitrates exactly the links the flow's hash selects.
func figLeafSpine(o Opts) *Result {
	vs := []variant{proto(PASE, LeafSpine), proto(DCTCP, LeafSpine), proto(PFabric, LeafSpine)}
	return sweepResult("leafspine", "Leaf-spine fabric with per-flow ECMP (extension)",
		"Offered load (%)", "AFCT (ms)", vs, o.loads([]float64{0.2, 0.4, 0.6, 0.8}), o, afctMS)
}

// figScale sweeps the flow count two decades up to one million on the
// leaf-spine fabric, PASE vs DCTCP, with every point on the streaming
// path: arrivals come from the workload iterator, flow state is
// recycled, and FCT quantiles come from the bounded-memory sketch. The
// point of the figure is that the tail (p99) stays flat as the run
// grows — and that the simulator's memory does not grow with it (run
// manifests record peak RSS alongside the curve).
//
// o.NumFlows sets the top of the sweep (default one million); the two
// lower points are top/10 and top/100. o.Loads[0] (default 0.6) fixes
// the offered load.
func figScale(o Opts) *Result {
	top := o.NumFlows
	if top <= 0 {
		top = 1_000_000
	}
	counts := []int{top / 100, top / 10, top}
	for i := range counts {
		if counts[i] < 10 {
			counts[i] = 10
		}
	}
	load := 0.6
	if len(o.Loads) > 0 {
		load = o.Loads[0]
	}
	protos := []Protocol{PASE, DCTCP}
	cfgs := make([]PointConfig, 0, len(protos)*len(counts))
	for _, p := range protos {
		for _, n := range counts {
			cfgs = append(cfgs, PointConfig{Protocol: p, Scenario: LeafSpine,
				Load: load, Seed: o.Seed, NumFlows: n,
				Stream: true, SketchEps: o.SketchEps})
		}
	}
	ex := newPointExtras(len(cfgs))
	rs := make([]PointResult, len(cfgs))
	forEachPoint(cfgs, o, func(i int, r PointResult) {
		rs[i] = r
		ex.observe(i, r)
	})
	res := &Result{
		ID: "scale", Title: "Streaming scale sweep (leaf-spine, extension)",
		XLabel: "Flows per point", YLabel: "FCT (ms)",
	}
	idx := 0
	for _, p := range protos {
		afct := Series{Name: string(p) + " AFCT"}
		p99 := Series{Name: string(p) + " p99"}
		for _, n := range counts {
			r := rs[idx]
			idx++
			afct.X = append(afct.X, float64(n))
			afct.Y = append(afct.Y, r.Summary.AFCT.Millis())
			p99.X = append(p99.X, float64(n))
			p99.Y = append(p99.Y, r.Summary.P99.Millis())
		}
		res.Series = append(res.Series, afct, p99)
	}
	ex.fill(res)
	eps := o.SketchEps
	if eps == 0 {
		eps = metrics.DefaultSketchEps
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("offered load %.0f%%; streaming collector, quantile sketch eps=%g", load*100, eps),
		"memory is O(in-flight flows): see the run manifest's peak_rss_bytes")
	return res
}

// figHighspeed compares ExpressPass against PASE and DCTCP as the
// fabric speeds up from 10 to 100 Gbps: AFCT and p99 per link rate,
// the fabric-wide data-queue peak (where credit shaping shows up as a
// near-flat curve while window-based transports fill buffers), and the
// control-plane price of each scheme — ExpressPass credit bytes and
// PASE arbitration bytes on the same ctrl/bytes axis. Two 256→1
// 100 Gbps incast points ride along: with more synchronized senders
// than buffer slots, ExpressPass must stay drop-free on the data plane
// while DCTCP overruns the bottleneck buffer.
//
// o.Loads[0] (default 0.6) fixes the offered load for the rate sweep.
func figHighspeed(o Opts) *Result {
	load := 0.6
	if len(o.Loads) > 0 {
		load = o.Loads[0]
	}
	rates := []struct {
		gbps float64
		s    Scenario
	}{{10, Highspeed10}, {40, Highspeed40}, {100, Highspeed100}}
	protos := []Protocol{ExpressPass, PASE, DCTCP}
	cfgs := make([]PointConfig, 0, len(protos)*len(rates)+2)
	for _, p := range protos {
		for _, r := range rates {
			// Obs per point: the control-overhead note reads each
			// protocol's ctrl/bytes counter from its own snapshot.
			cfgs = append(cfgs, PointConfig{Protocol: p, Scenario: r.s,
				Load: load, Seed: o.Seed, NumFlows: o.NumFlows, Obs: true})
		}
	}
	// The incast points run at a fixed 70% load — the same operating
	// point the incast regression test pins, where DCTCP's 256
	// synchronized senders demonstrably overrun the bottleneck buffer.
	const incastLoad = 0.7
	incastAt := len(cfgs)
	for _, p := range []Protocol{ExpressPass, DCTCP} {
		cfgs = append(cfgs, PointConfig{Protocol: p, Scenario: Incast256,
			Load: incastLoad, Seed: o.Seed, NumFlows: o.NumFlows})
	}
	ex := newPointExtras(len(cfgs))
	rs := make([]PointResult, len(cfgs))
	forEachPoint(cfgs, o, func(i int, r PointResult) {
		rs[i] = r
		ex.observe(i, r)
	})
	res := &Result{
		ID: "highspeed", Title: "High-speed links: ExpressPass vs PASE vs DCTCP (extension)",
		XLabel: "Link rate (Gbps)", YLabel: "FCT (ms) / queue peak (pkts)",
	}
	idx := 0
	for _, p := range protos {
		afct := Series{Name: string(p) + " AFCT"}
		p99 := Series{Name: string(p) + " p99"}
		peak := Series{Name: string(p) + " queue peak"}
		var ctrlBytes, ctrlMsgs int64
		for _, rate := range rates {
			r := rs[idx]
			idx++
			afct.X = append(afct.X, rate.gbps)
			afct.Y = append(afct.Y, r.Summary.AFCT.Millis())
			p99.X = append(p99.X, rate.gbps)
			p99.Y = append(p99.Y, r.Summary.P99.Millis())
			peak.X = append(peak.X, rate.gbps)
			peak.Y = append(peak.Y, float64(r.Queues.MaxLen))
			if rate.s == Highspeed100 {
				ctrlMsgs = r.CtrlMessages
				if r.Obs != nil {
					ctrlBytes = r.Obs.Counters["ctrl/bytes"]
				}
			}
		}
		res.Series = append(res.Series, afct, p99, peak)
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s control overhead at 100 Gbps: %d messages, %d bytes (ctrl/bytes)",
			p, ctrlMsgs, ctrlBytes))
	}
	ep, dc := rs[incastAt], rs[incastAt+1]
	res.Notes = append(res.Notes,
		fmt.Sprintf("256→1 incast at 100 Gbps, %.0f%% load: ExpressPass dropped %d data pkts (queue peak %d), DCTCP dropped %d (queue peak %d)",
			incastLoad*100, ep.Queues.DroppedData, ep.Queues.MaxLen, dc.Queues.DroppedData, dc.Queues.MaxLen),
		fmt.Sprintf("rate sweep at %.0f%% offered load; credit shaping keeps the data queue bounded with no data-plane drops", load*100))
	ex.fill(res)
	return res
}

// figCtrlScale sweeps the ctrlscale fabric from 16 to 2048 racks with
// the same fixed aggregate workload and puts PASE's two control
// planes side by side: the deep arbitration hierarchy (fan-out-4
// virtual aggregation tree, sharded root, delegation + early pruning)
// against the fully centralized single-controller arm. Per rack count
// and arm it reports AFCT and total control bytes; the notes quantify
// the scaling claim — hierarchy control traffic grows sub-linearly in
// rack count (pruning resolves most refreshes low in the tree) while
// the centralized arm's per-epoch link-state sync grows with the
// fabric — plus delegation/pruning effectiveness and the controller's
// queueing delay.
//
// o.Loads[0] (default 0.6) fixes the offered load; o.Racks caps the
// sweep (the ctrlscale-smoke target runs a single 512-rack point).
func figCtrlScale(o Opts) *Result {
	// The figure defines both arms itself; a grid-level -ctrl override
	// would corrupt the hierarchy arm. Honour it here as an arm filter
	// instead.
	armFilter := o.Ctrl
	o.Ctrl = ""
	load := 0.6
	if len(o.Loads) > 0 {
		load = o.Loads[0]
	}
	flows := o.NumFlows
	if flows <= 0 {
		flows = 400
	}
	rackCounts := []int{16, 64, 256, 1024, 2048}
	if o.Racks > 0 {
		kept := rackCounts[:0]
		for _, rc := range rackCounts {
			if rc <= o.Racks {
				kept = append(kept, rc)
			}
		}
		if len(kept) == 0 || kept[len(kept)-1] != o.Racks {
			kept = append(kept, o.Racks)
		}
		rackCounts = kept
	}
	arms := []struct {
		name string
		opt  PASEOptions
	}{
		{"hierarchy", PASEOptions{}},
		{"central", PASEOptions{Central: true}},
	}
	if armFilter != "" {
		kept := arms[:0]
		for _, a := range arms {
			if a.name == armFilter {
				kept = append(kept, a)
			}
		}
		if len(kept) > 0 {
			arms = kept
		}
	}
	cfgs := make([]PointConfig, 0, len(arms)*len(rackCounts))
	for _, a := range arms {
		for _, rc := range rackCounts {
			// Obs per point: the control-cost series and the
			// effectiveness notes read each point's own counters.
			cfgs = append(cfgs, PointConfig{Protocol: PASE,
				Scenario: Scenario(fmt.Sprintf("%s-%d", CtrlScale, rc)),
				Load:     load, Seed: o.Seed, NumFlows: flows, Obs: true,
				PASE: a.opt})
		}
	}
	ex := newPointExtras(len(cfgs))
	rs := make([]PointResult, len(cfgs))
	forEachPoint(cfgs, o, func(i int, r PointResult) {
		rs[i] = r
		ex.observe(i, r)
	})
	res := &Result{
		ID: "ctrlscale", Title: "Control plane at datacenter scale: hierarchy vs centralized (extension)",
		XLabel: "Racks", YLabel: "AFCT (ms) / ctrl MB",
	}
	ctr := func(r PointResult, name string) int64 {
		if r.Obs == nil {
			return 0
		}
		return r.Obs.Counters[name]
	}
	idx := 0
	for _, a := range arms {
		afct := Series{Name: a.name + " AFCT"}
		ctrl := Series{Name: a.name + " ctrl MB"}
		var first, last PointResult
		for j, rc := range rackCounts {
			r := rs[idx]
			idx++
			afct.X = append(afct.X, float64(rc))
			afct.Y = append(afct.Y, r.Summary.AFCT.Millis())
			ctrl.X = append(ctrl.X, float64(rc))
			ctrl.Y = append(ctrl.Y, float64(ctr(r, "ctrl/bytes"))/1e6)
			if j == 0 {
				first = r
			}
			last = r
		}
		res.Series = append(res.Series, afct, ctrl)
		growth := 0.0
		if b := ctr(first, "ctrl/bytes"); b > 0 {
			growth = float64(ctr(last, "ctrl/bytes")) / float64(b)
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: ctrl bytes ×%.2f as racks ×%d (%d → %d messages)",
			a.name, growth, rackCounts[len(rackCounts)-1]/rackCounts[0],
			rs[idx-len(rackCounts)].CtrlMessages, last.CtrlMessages))
		if a.name == "hierarchy" {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"hierarchy at %d racks: %d refreshes pruned early (saving %d messages), %d delegated-slice stops",
				rackCounts[len(rackCounts)-1], ctr(last, "arb/pruned"),
				ctr(last, "arb/prune_saved_msgs"), ctr(last, "arb/delegated")))
		} else if last.Obs != nil {
			q := last.Obs.Histograms["arb/central/queue_ns"]
			mean := int64(0)
			if q.Count > 0 {
				mean = q.Sum / q.Count
			}
			res.Notes = append(res.Notes, fmt.Sprintf(
				"central at %d racks: %d sync messages, mean controller queueing %d ns",
				rackCounts[len(rackCounts)-1], ctr(last, "arb/sync_messages"), mean))
		}
	}
	ex.fill(res)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"fixed %v aggregate workload at %.0f%% load, %d flows per point; per-level message counts and RTTs: arb/msgs/level* and arb/rtt/level* in the run manifest",
		netem.BitRate(CtrlScaleReference), load*100, flows))
	return res
}

// teUplinkChaos downs the first k leaf→spine-0 uplinks, staggered
// TEFaultStagger apart so no two rules fire at one instant and none
// lands on a TE-epoch multiple — same-instant fault rules on
// different shards would race for rank order in sharded runs.
func teUplinkChaos(ls topology.LeafSpineConfig, k int, seed uint64) *faults.Plan {
	if k <= 0 {
		return nil
	}
	pl := &faults.Plan{Seed: seed}
	for r := 0; r < k; r++ {
		pl.Links = append(pl.Links, faults.LinkFault{
			Link: ls.UplinkID(r, 0),
			At:   TEFaultStart + sim.Duration(r)*TEFaultStagger,
			For:  TEFaultFor,
		})
	}
	return pl
}

// figTE is the routing-control-loop experiment on the te-failover
// fabric (4 leaves × 3 spines): a chaos plan downs the leaf→spine-0
// uplinks one by one and the arms differ only in who reacts. PASE+TE
// runs the reactive reroute + hotspot-TE control loop, which rehashes
// the dead spine's ECMP buckets onto the survivors within a link
// delay; PASE and DCTCP leave routing frozen at the build-time ECMP
// hash, so the flows hashed onto spine 0 blackhole until the progress
// deadline aborts them. X is how many of the four uplinks fail, Y the
// fraction of foreground flows completing; the notes carry the AFCT
// cost of surviving the failure (vs fault-free) per arm.
func figTE(o Opts) *Result {
	const load = 0.6
	ls := teFailoverLS()
	arms := []struct {
		name string
		p    Protocol
		rt   route.Config
	}{
		{"PASE+TE", PASE, route.Config{Reroute: true, TE: true}},
		{"PASE", PASE, route.Config{}},
		{"DCTCP", DCTCP, route.Config{}},
	}
	ks := []int{0, 1, 2, 3, 4}
	cfgs := make([]PointConfig, 0, len(arms)*len(ks))
	for _, arm := range arms {
		for _, k := range ks {
			cfgs = append(cfgs, PointConfig{Protocol: arm.p, Scenario: TEFailover,
				Load: load, Seed: o.Seed, NumFlows: o.NumFlows,
				Route: arm.rt, AbortAfter: TEAbortAfter,
				Faults: teUplinkChaos(ls, k, o.Seed)})
		}
	}
	ex := newPointExtras(len(cfgs))
	rs := make([]PointResult, len(cfgs))
	forEachPoint(cfgs, o, func(i int, r PointResult) {
		rs[i] = r
		ex.observe(i, r)
	})
	res := &Result{
		ID: "te", Title: "Reactive rerouting + hotspot TE under uplink failures (te-failover)",
		XLabel: "Failed leaf→spine-0 uplinks", YLabel: "Fraction of flows completing",
	}
	idx := 0
	for _, arm := range arms {
		s := Series{Name: arm.name}
		var cleanAFCT, failAFCT float64
		var aborted int
		for _, k := range ks {
			r := rs[idx]
			idx++
			surv := 0.0
			if r.Summary.Flows > 0 {
				surv = float64(r.Summary.Completed) / float64(r.Summary.Flows)
			}
			s.X = append(s.X, float64(k))
			s.Y = append(s.Y, surv)
			switch k {
			case 0:
				cleanAFCT = r.Summary.AFCT.Millis()
			case ks[len(ks)-1]:
				failAFCT = r.Summary.AFCT.Millis()
				aborted = r.Summary.Aborted
			}
		}
		res.Series = append(res.Series, s)
		ratio := 0.0
		if cleanAFCT > 0 {
			ratio = failAFCT / cleanAFCT
		}
		res.Notes = append(res.Notes, fmt.Sprintf(
			"%s: AFCT %.3f ms fault-free → %.3f ms with all four uplinks down (%.2fx), %d flows aborted",
			arm.name, cleanAFCT, failAFCT, ratio, aborted))
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"uplinks fail at %v + k·%v for %v each; progress deadline %v; offered load %.0f%%",
		TEFaultStart.Std(), TEFaultStagger.Std(), TEFaultFor.Std(), TEAbortAfter.Std(), load*100))
	ex.fill(res)
	return res
}

// fig3 is the toy example of Figure 3: three flows, two links.
// Flow 1 (src1→dst1) is most urgent, flow 2 (src2→dst1) medium,
// flow 3 (src2→dst2) least. Flows 1 and 2 share dst1's downlink;
// flows 2 and 3 share src2's uplink. pFabric keeps transmitting
// flow 2 on the shared uplink only to have the packets die at the
// downlink, stalling flow 3; PASE's end-to-end arbitration throttles
// flow 2 at the source so flow 3 runs alongside flow 1.
func fig3(o Opts) *Result {
	res := &Result{
		ID: "3", Title: "Toy example: flow 3 stall",
		XLabel: "flow #", YLabel: "FCT (ms)",
	}
	for _, p := range []Protocol{PFabric, PASE} {
		fcts := RunToy(p)
		s := Series{Name: string(p)}
		for i, f := range fcts {
			s.X = append(s.X, float64(i+1))
			s.Y = append(s.Y, f.Millis())
		}
		res.Series = append(res.Series, s)
	}
	res.Notes = append(res.Notes,
		"flow sizes 0.5/0.75/1.0 MB; flows 1 and 3 share no link and could run in parallel")
	return res
}

// figRobust is the robustness experiment added with the fault-injection
// subsystem: AFCT at a fixed 70% left-right load as the control plane
// degrades. Two failure axes share the X axis (severity in percent):
// the fraction of arbitration requests/responses dropped, and the
// fraction of each 10 ms window the arbitrators spend crashed. A
// fault-free DCTCP run provides the floor — PASE endpoints fall back to
// DCTCP-mode when the control plane goes quiet, so the curves should
// degrade toward (not through) that baseline.
func figRobust(o Opts) *Result {
	const seeds = 3
	const load = 0.7
	const crashPeriod = 10 * sim.Millisecond
	rates := []float64{0, 0.2, 0.4, 0.6, 0.8, 0.95}

	base := func(seed uint64) PointConfig {
		return PointConfig{Protocol: PASE, Scenario: LeftRight,
			Load: load, Seed: o.Seed + seed, NumFlows: o.NumFlows}
	}
	var cfgs []PointConfig
	// Arm 1: control-plane message loss.
	for _, r := range rates {
		for seed := uint64(0); seed < seeds; seed++ {
			cfg := base(seed)
			if r > 0 {
				cfg.Faults = &faults.Plan{Seed: o.Seed,
					Ctrl: []faults.CtrlFault{{Drop: r}}}
			}
			cfgs = append(cfgs, cfg)
		}
	}
	// Arm 2: periodic arbitrator crashes; severity = fraction of each
	// period the arbitrators are down (soft state wiped every cycle).
	for _, r := range rates {
		for seed := uint64(0); seed < seeds; seed++ {
			cfg := base(seed)
			if r > 0 {
				cfg.Faults = &faults.Plan{Seed: o.Seed,
					Crashes: []faults.CrashFault{{Link: -1, At: crashPeriod,
						For: sim.Duration(r * float64(crashPeriod)), Every: crashPeriod}}}
			}
			cfgs = append(cfgs, cfg)
		}
	}
	// Baseline: DCTCP never consults the control plane, so one fault-free
	// run per seed is replicated across the axis.
	for seed := uint64(0); seed < seeds; seed++ {
		cfg := base(seed)
		cfg.Protocol = DCTCP
		cfgs = append(cfgs, cfg)
	}

	ys, ex := mapPoints(cfgs, o, afctMS)
	avg := func(idx int) float64 {
		var sum float64
		for s := 0; s < seeds; s++ {
			sum += ys[idx+s]
		}
		return sum / seeds
	}
	xs := make([]float64, len(rates))
	for i, r := range rates {
		xs[i] = r * 100
	}
	series := []Series{
		{Name: "PASE (ctrl loss)", X: xs},
		{Name: "PASE (arb downtime)", X: xs},
		{Name: "DCTCP (no faults)", X: xs},
	}
	for i := range rates {
		series[0].Y = append(series[0].Y, avg(i*seeds))
		series[1].Y = append(series[1].Y, avg((len(rates)+i)*seeds))
	}
	dctcp := avg(2 * len(rates) * seeds)
	for range rates {
		series[2].Y = append(series[2].Y, dctcp)
	}
	res := &Result{
		ID: "robust", Title: "Graceful degradation under control-plane faults (left-right, 70% load)",
		XLabel: "Failure severity (%)", YLabel: "AFCT (ms)",
		Series: series,
		Notes: []string{
			fmt.Sprintf("each point averages %d seeds", seeds),
			"ctrl loss: fraction of arbitration requests/responses dropped",
			fmt.Sprintf("arb downtime: fraction of each %v window all arbitrators are crashed", crashPeriod.Std()),
		},
	}
	ex.fill(res)
	return res
}
