package experiments

import (
	"strings"
	"testing"
)

func sampleResult(sameX bool) *Result {
	r := &Result{
		ID: "x", Title: "sample", XLabel: "load", YLabel: "ms",
		Series: []Series{
			{Name: "A", X: []float64{10, 20}, Y: []float64{1.5, 2.5}},
		},
		Notes: []string{"hello"},
	}
	if sameX {
		r.Series = append(r.Series, Series{Name: "B", X: []float64{10, 20}, Y: []float64{3, 4}})
	} else {
		r.Series = append(r.Series, Series{Name: "B", X: []float64{11, 21, 31}, Y: []float64{3, 4, 5}})
	}
	return r
}

func TestRenderSameX(t *testing.T) {
	out := sampleResult(true).Render()
	for _, want := range []string{"Figure x", "A", "B", "1.5", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "-- A --") {
		t.Fatal("same-X render should use one table")
	}
}

func TestRenderPerSeries(t *testing.T) {
	out := sampleResult(false).Render()
	if !strings.Contains(out, "-- A --") || !strings.Contains(out, "-- B --") {
		t.Fatalf("differing-X render should emit per-series blocks:\n%s", out)
	}
}

func TestWriteTSVSameX(t *testing.T) {
	var sb strings.Builder
	if err := sampleResult(true).WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "10\t1.5\t3") {
		t.Fatalf("TSV rows wrong:\n%s", out)
	}
	if !strings.Contains(out, "# note: hello") {
		t.Fatal("TSV should carry notes as comments")
	}
}

func TestWriteTSVPerSeries(t *testing.T) {
	var sb strings.Builder
	if err := sampleResult(false).WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# A: load vs ms") || !strings.Contains(out, "31\t5") {
		t.Fatalf("per-series TSV wrong:\n%s", out)
	}
}
