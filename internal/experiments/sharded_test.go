package experiments

import (
	"bytes"
	"runtime"
	"testing"

	"pase/internal/faults"
	"pase/internal/sim"
)

// The sharded engine's contract is byte-identical results: the same
// per-flow records, queue totals and metrics as the serial engine, at
// every shard count, under every GOMAXPROCS. These tests pin that
// equality across transports, topologies, streaming, and faults.

func shardPoint(p Protocol, s Scenario) PointConfig {
	return PointConfig{
		Protocol: p,
		Scenario: s,
		Load:     0.8,
		Seed:     7,
		NumFlows: 120,
		Check:    true,
	}
}

func runShards(t *testing.T, cfg PointConfig, shards int) PointResult {
	t.Helper()
	cfg.Shards = shards
	r := RunPoint(cfg)
	if r.Violations != 0 {
		t.Fatalf("shards=%d: invariant checker reported %d violations:\n%v",
			shards, r.Violations, r.CheckViolations)
	}
	if r.Summary.Completed == 0 {
		t.Fatalf("shards=%d: no flows completed", shards)
	}
	return r
}

// TestShardedDigestEquality is the tentpole pin: every shardable
// transport, on both a tree and a leaf-spine fabric, produces the exact
// serial digest at 2, 3 and 4 shards.
func TestShardedDigestEquality(t *testing.T) {
	for _, p := range []Protocol{DCTCP, D2TCP, L2DCT, PFabric, ExpressPass} {
		for _, s := range []Scenario{LeftRight, LeafSpine} {
			p, s := p, s
			t.Run(string(p)+"/"+string(s), func(t *testing.T) {
				t.Parallel()
				cfg := shardPoint(p, s)
				want := digestResult(runShards(t, cfg, 0))
				for _, shards := range []int{1, 2, 3, 4} {
					if got := digestResult(runShards(t, cfg, shards)); got != want {
						t.Errorf("shards=%d: digest %#x, want serial %#x", shards, got, want)
					}
				}
			})
		}
	}
}

// TestShardedFallback: PASE and PDQ cannot shard (fabric-synchronous
// control planes); a Shards request must silently take the serial path,
// produce the serial digest, and record the fallback when Obs is on.
func TestShardedFallback(t *testing.T) {
	for _, p := range []Protocol{PASE, PDQ} {
		cfg := shardPoint(p, LeftRight)
		cfg.Obs = true
		want := digestResult(runShards(t, cfg, 0))
		r := runShards(t, cfg, 4)
		if got := digestResult(r); got != want {
			t.Errorf("%s shards=4: digest %#x, want serial %#x", p, got, want)
		}
		if r.Obs.Counters["shard/fallback_serial"] != 1 {
			t.Errorf("%s: shard/fallback_serial = %d, want 1", p,
				r.Obs.Counters["shard/fallback_serial"])
		}
	}
	// Single-atom topologies have nothing to cut.
	cfg := shardPoint(DCTCP, IntraRack)
	cfg.Obs = true
	want := digestResult(runShards(t, cfg, 0))
	r := runShards(t, cfg, 4)
	if got := digestResult(r); got != want {
		t.Errorf("intra-rack shards=4: digest %#x, want serial %#x", got, want)
	}
	if r.Obs.Counters["shard/fallback_serial/single_atom"] != 1 {
		t.Error("intra-rack: missing shard/fallback_serial/single_atom counter")
	}
}

// TestShardedFig9aTSV pins the figure pipeline end to end under
// sharding: the TSV must be the exact golden bytes (PASE falls back to
// serial inside the grid; L2DCT and DCTCP run sharded).
func TestShardedFig9aTSV(t *testing.T) {
	o := Opts{NumFlows: 100, Seed: 1, Seeds: 2, Loads: []float64{0.5}, Check: true, Shards: 3}
	fig, ok := Lookup("9a")
	if !ok {
		t.Fatal("figure 9a not registered")
	}
	res := fig.Run(o)
	if res.Violations != 0 {
		t.Fatalf("invariant checker reported %d violations", res.Violations)
	}
	var buf bytes.Buffer
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenFig9aTSV {
		t.Errorf("sharded figure 9a TSV diverged from golden:\ngot:\n%s\nwant:\n%s", got, goldenFig9aTSV)
	}
}

// TestShardedStreamEquality: the streaming path's exact metrics
// (counts, AFCT, retransmissions, queue totals) must match between a
// serial streaming run and a sharded streaming run.
func TestShardedStreamEquality(t *testing.T) {
	cfg := shardPoint(DCTCP, LeafSpine)
	cfg.NumFlows = 400
	cfg.Stream = true
	want := runShards(t, cfg, 0)
	for _, shards := range []int{2, 4} {
		got := runShards(t, cfg, shards)
		a, b := want.Summary, got.Summary
		if a.Flows != b.Flows || a.Completed != b.Completed ||
			a.AFCT != b.AFCT || a.MaxFCT != b.MaxFCT ||
			a.Retx != b.Retx || a.Timeouts != b.Timeouts {
			t.Errorf("shards=%d: streaming summary diverged:\nserial:  %+v\nsharded: %+v",
				shards, a, b)
		}
		if want.Queues != got.Queues {
			t.Errorf("shards=%d: queue totals diverged:\nserial:  %+v\nsharded: %+v",
				shards, want.Queues, got.Queues)
		}
	}
}

// TestShardedFaultsDigest: fault injection draws from per-link RNG
// streams, so a faulted run must shard byte-identically too.
func TestShardedFaultsDigest(t *testing.T) {
	cfg := shardPoint(DCTCP, LeftRight)
	cfg.Faults = &faults.Plan{
		Seed: 3,
		Links: []faults.LinkFault{
			{Link: -1, At: 2 * sim.Millisecond, For: 300 * sim.Microsecond, Every: 5 * sim.Millisecond},
		},
		Loss: []faults.LossFault{
			{Link: -1, Class: faults.Any, Rate: 0.02},
			{Link: -1, Class: faults.DataClass, Corrupt: 0.01},
		},
	}
	want := digestResult(runShards(t, cfg, 0))
	for _, shards := range []int{2, 4} {
		if got := digestResult(runShards(t, cfg, shards)); got != want {
			t.Errorf("shards=%d: faulted digest %#x, want serial %#x", shards, got, want)
		}
	}
}

// TestShardedChaosStream soaks the full composition — sharding ×
// streaming × fault chaos × invariant checker. Links flap, packets
// drop and corrupt, and every flow must still complete with zero
// violations.
func TestShardedChaosStream(t *testing.T) {
	cfg := PointConfig{
		Protocol: DCTCP, Scenario: LeafSpine, Load: 0.6,
		Seed: 11, NumFlows: 300,
		Check: true, Obs: true, Stream: true, Shards: 4,
		Faults: &faults.Plan{
			Seed: 3,
			Links: []faults.LinkFault{
				{Link: -1, At: 2 * sim.Millisecond, For: 300 * sim.Microsecond, Every: 5 * sim.Millisecond},
			},
			Loss: []faults.LossFault{
				{Link: -1, Class: faults.Any, Rate: 0.02},
				{Link: -1, Class: faults.DataClass, Corrupt: 0.01},
			},
		},
	}
	r := RunPoint(cfg)
	if r.Violations != 0 {
		t.Fatalf("invariant checker reported %d violations:\n%v", r.Violations, r.CheckViolations)
	}
	if r.Summary.Completed != r.Summary.Flows {
		t.Fatalf("%d of %d flows completed under chaos", r.Summary.Completed, r.Summary.Flows)
	}
	for _, c := range []string{"faults/link_down", "faults/drop_data", "shard/windows", "shard/handoffs"} {
		if r.Obs.Counters[c] == 0 {
			t.Errorf("counter %s = 0, want > 0", c)
		}
	}
}

// TestShardedGOMAXPROCSDeterminism: the digest must not depend on how
// the shard goroutines are scheduled. GOMAXPROCS=1 forces full
// interleaving serialization; the digest must still match the
// many-core run and the serial engine.
func TestShardedGOMAXPROCSDeterminism(t *testing.T) {
	cfg := shardPoint(DCTCP, LeafSpine)
	serial := digestResult(runShards(t, cfg, 0))
	wide := digestResult(runShards(t, cfg, 4))
	prev := runtime.GOMAXPROCS(1)
	narrow := digestResult(runShards(t, cfg, 4))
	runtime.GOMAXPROCS(prev)
	if wide != serial {
		t.Errorf("sharded digest %#x, want serial %#x", wide, serial)
	}
	if narrow != wide {
		t.Errorf("GOMAXPROCS=1 digest %#x, want %#x", narrow, wide)
	}
}

// TestShardedObsCounters checks the shard/* observability contract on a
// real run: windows, handoffs, batch sizes and stall time all land in
// the merged snapshot.
func TestShardedObsCounters(t *testing.T) {
	cfg := shardPoint(DCTCP, LeafSpine)
	cfg.Obs = true
	r := runShards(t, cfg, 4)
	c := r.Obs.Counters
	for _, name := range []string{"shard/windows", "shard/handoffs", "shard/tail_events"} {
		if c[name] == 0 {
			t.Errorf("counter %s = 0, want > 0", name)
		}
	}
	if c["shard/shards"] != 4 {
		t.Errorf("shard/shards = %d, want 4", c["shard/shards"])
	}
	if c["shard/atoms"] == 0 {
		t.Error("shard/atoms = 0, want > 0")
	}
	if _, ok := r.Obs.Histograms["shard/handoff_batch"]; !ok {
		t.Error("histogram shard/handoff_batch missing from snapshot")
	}
}
