package experiments

import (
	"testing"

	"pase/internal/route"
)

// Tests for the reactive routing control loop on the te-failover
// scenario: failure rerouting keeps flows alive through uplink
// outages, frozen ECMP strands them, and the whole loop shards
// byte-identically.

// teChaosPoint is the te figure's stress point at test scale: PASE on
// the 4-leaf × 3-spine fabric with every leaf's spine-0 uplink failing
// in a staggered wave.
func teChaosPoint(p Protocol, rt route.Config) PointConfig {
	ls := teFailoverLS()
	return PointConfig{
		Protocol:   p,
		Scenario:   TEFailover,
		Load:       0.6,
		Seed:       1,
		NumFlows:   300,
		Check:      true,
		Obs:        true,
		Route:      rt,
		AbortAfter: TEAbortAfter,
		Faults:     teUplinkChaos(ls, ls.Leaves, 1),
	}
}

// TestTERerouteSurvival is the issue's acceptance pin: with the
// control loop on, PASE keeps at least 95% of flows alive through the
// full uplink-failure wave, with AFCT within 2x of the fault-free run,
// and the checker's route invariants stay clean.
func TestTERerouteSurvival(t *testing.T) {
	cfg := teChaosPoint(PASE, route.Config{Reroute: true, TE: true})
	r := RunPoint(cfg)
	if r.Violations != 0 {
		t.Fatalf("invariant checker reported %d violations:\n%v", r.Violations, r.CheckViolations)
	}
	sum := r.Summary
	if sum.Flows == 0 {
		t.Fatal("no flows ran")
	}
	survival := float64(sum.Completed) / float64(sum.Flows)
	if survival < 0.95 {
		t.Errorf("survival %.3f (%d/%d completed, %d aborted), want >= 0.95",
			survival, sum.Completed, sum.Flows, sum.Aborted)
	}
	if n := r.Obs.Counters["route/link_down"]; n < int64(teFailoverLS().Leaves) {
		t.Errorf("route/link_down = %d, want >= %d (one per failed uplink)",
			n, teFailoverLS().Leaves)
	}
	if r.Obs.Counters["route/reroutes"] == 0 {
		t.Error("route/reroutes never fired though uplinks failed")
	}

	clean := cfg
	clean.Faults = nil
	cr := RunPoint(clean)
	if cr.Violations != 0 {
		t.Fatalf("fault-free run reported %d violations", cr.Violations)
	}
	if cr.Summary.AFCT == 0 {
		t.Fatal("fault-free run completed nothing")
	}
	if sum.AFCT > 2*cr.Summary.AFCT {
		t.Errorf("faulted AFCT %v > 2x fault-free %v", sum.AFCT, cr.Summary.AFCT)
	}
}

// TestTEFrozenRoutingStrands is the control arm: the same failure wave
// with the loop off blackholes the spine-0 flows, which the progress
// deadline turns into aborts — proving the chaos plan actually bites
// and that aborts are counted and excluded from completion.
func TestTEFrozenRoutingStrands(t *testing.T) {
	r := RunPoint(teChaosPoint(PASE, route.Config{}))
	if r.Violations != 0 {
		t.Fatalf("invariant checker reported %d violations:\n%v", r.Violations, r.CheckViolations)
	}
	sum := r.Summary
	if sum.Aborted == 0 {
		t.Fatal("frozen routing under the uplink wave should strand and abort flows")
	}
	if got := r.Obs.Counters["transport/aborts"]; got != int64(sum.Aborted) {
		t.Errorf("transport/aborts = %d, Summary.Aborted = %d", got, sum.Aborted)
	}
	if sum.Completed+sum.Aborted > sum.Flows {
		t.Errorf("completed %d + aborted %d exceeds flows %d", sum.Completed, sum.Aborted, sum.Flows)
	}
	if survival := float64(sum.Completed) / float64(sum.Flows); survival >= 0.95 {
		t.Errorf("frozen-routing survival %.3f unexpectedly high — chaos plan is not biting", survival)
	}
}

// TestTEShardedEquality pins the control loop's sharding contract:
// route updates ride the conservative-lookahead handoff, so a DCTCP
// te-failover run with reroute + TE + faults + aborts produces the
// exact serial digest at every shard count. (PASE pins the serial
// fallback path instead — TestShardedFallback.)
func TestTEShardedEquality(t *testing.T) {
	cfg := teChaosPoint(DCTCP, route.Config{Reroute: true, TE: true})
	cfg.Obs = false
	want := digestResult(runShards(t, cfg, 0))
	if rerun := digestResult(runShards(t, cfg, 0)); rerun != want {
		t.Fatalf("serial te-failover run not deterministic: %#x vs %#x", rerun, want)
	}
	for _, shards := range []int{1, 2, 3, 4} {
		if got := digestResult(runShards(t, cfg, shards)); got != want {
			t.Errorf("shards=%d: digest %#x, want serial %#x", shards, got, want)
		}
	}
}

// TestTENonInterference: with the loop off, no faults and no abort
// deadline, the te-failover scenario is an ordinary deterministic
// point — the route machinery idle in the path must not perturb
// repeat runs or the sharded digest.
func TestTENonInterference(t *testing.T) {
	cfg := PointConfig{
		Protocol: DCTCP, Scenario: TEFailover,
		Load: 0.6, Seed: 1, NumFlows: 200, Check: true,
	}
	want := digestResult(runShards(t, cfg, 0))
	if rerun := digestResult(runShards(t, cfg, 0)); rerun != want {
		t.Fatalf("idle te-failover point not deterministic: %#x vs %#x", rerun, want)
	}
	for _, shards := range []int{2, 4} {
		if got := digestResult(runShards(t, cfg, shards)); got != want {
			t.Errorf("shards=%d: digest %#x, want serial %#x", shards, got, want)
		}
	}
}
