package experiments

import (
	"fmt"
	"sort"
	"sync/atomic"

	"pase/internal/check"
	"pase/internal/faults"
	"pase/internal/metrics"
	"pase/internal/netem"
	"pase/internal/obs"
	"pase/internal/pkt"
	"pase/internal/route"
	"pase/internal/sim"
	"pase/internal/topology"
	"pase/internal/trace"
	"pase/internal/transport"
	"pase/internal/transport/d2tcp"
	"pase/internal/transport/dctcp"
	"pase/internal/transport/expresspass"
	"pase/internal/transport/l2dct"
	"pase/internal/transport/pfabric"
	"pase/internal/workload"
)

// shardFallback reports why a cfg.Shards > 1 request must run serially
// ("" when sharding is possible). PASE's arbitration and PDQ's switch
// state are fabric-synchronous — senders call into shared structures
// inline, with no link delay between shards to hide the latency — so
// those runs keep the serial engine. Traced runs shard (per-shard
// buffers, canonical merge), but spill-mode trace writers stream to a
// single writer and stay serial. A single-atom fabric has nothing to
// cut.
func shardFallback(cfg PointConfig) string {
	switch cfg.Protocol {
	case PASE:
		return "pase"
	case PDQ:
		return "pdq"
	}
	if cfg.Trace.spills() {
		return "trace_spill"
	}
	sp := scenario(cfg.Scenario)
	var part *topology.Partition
	if sp.buildLS != nil {
		part = topology.PartitionLeafSpine(*sp.buildLS, cfg.Shards)
	} else {
		part = topology.PartitionTree(sp.topo(nil), cfg.Shards)
	}
	if part.Shards < 2 {
		return "single_atom"
	}
	return ""
}

// bufSink buffers flow records on one shard; the coordinator drains it
// at barriers (streaming) or once at the end (stored). Summarize/CDF
// are never called on it.
type bufSink struct {
	recs []metrics.FlowRecord
}

func (b *bufSink) Add(r metrics.FlowRecord)         { b.recs = append(b.recs, r) }
func (b *bufSink) Summarize() metrics.Summary       { panic("experiments: bufSink.Summarize") }
func (b *bufSink) CDF(int) []metrics.CDFPoint       { panic("experiments: bufSink.CDF") }
func (b *bufSink) take() (out []metrics.FlowRecord) { out, b.recs = b.recs, b.recs[:0]; return }

// runPointSharded executes one point across cfg.Shards conservatively
// synchronized engine shards. The wiring mirrors runPointSerial
// step-for-step (the relative order of setup Schedule calls must match
// for digests to agree); the differences are per-shard registries,
// checkers, sinks and injectors, cross-shard port proxies on the cut
// links, and the window/tail run loop in place of Engine.Run.
func runPointSharded(cfg PointConfig) PointResult {
	sp := scenario(cfg.Scenario)
	numFlows := cfg.NumFlows
	if numFlows == 0 {
		numFlows = 2000
	}
	numQueues := cfg.PASE.NumQueues
	if numQueues == 0 {
		numQueues = PASENumQueues
	}

	// Partition the fabric before anything is built.
	var part *topology.Partition
	var treeCfg topology.Config
	var lsCfg topology.LeafSpineConfig
	var linkDelay sim.Duration
	if sp.buildLS != nil {
		lsCfg = *sp.buildLS
		part = topology.PartitionLeafSpine(lsCfg, cfg.Shards)
		linkDelay = lsCfg.LinkDelay
	} else {
		treeCfg = sp.topo(nil)
		part = topology.PartitionTree(treeCfg, cfg.Shards)
		linkDelay = treeCfg.LinkDelay
	}
	if part.Shards < 2 {
		return runPointSerial(cfg, "single_atom")
	}
	nsh := part.Shards

	// Per-shard registries plus one for the coordinator; obs
	// instruments are not concurrent-safe, so nothing is shared.
	// All stay nil without cfg.Obs (every obs call is nil-safe).
	regs := make([]*obs.Registry, nsh)
	var coordReg *obs.Registry
	if cfg.Obs {
		for i := range regs {
			regs[i] = obs.NewRegistry()
		}
		coordReg = obs.NewRegistry()
		coordReg.Counter("shard/shards").Add(int64(nsh))
		coordReg.Counter("shard/atoms").Add(int64(part.Atoms))
	}

	se, err := sim.NewShardedEngine(nsh, linkDelay)
	if err != nil {
		panic(err)
	}
	se.Instrument(coordReg)
	for i := 0; i < nsh; i++ {
		se.Shard(i).Instrument(regs[i])
	}

	var chks []*check.Checker
	if cfg.Check || check.Forced() {
		chks = make([]*check.Checker, nsh)
		for i := 0; i < nsh; i++ {
			e := se.Shard(i)
			chks[i] = check.New(func() int64 { return int64(e.Now()) })
			e.AttachCheck(chks[i])
		}
	}

	// Build the fabric: every node's ports live on its shard engine
	// and feed its shard's registry.
	engineOf := func(o netem.Node) *sim.Engine { return se.Shard(part.ShardOf(o)) }
	shardQF := make([]func(topology.QueueKind) netem.Queue, nsh)
	for i := 0; i < nsh; i++ {
		shardQF[i] = queueFactory(cfg.Protocol, sp, numQueues, regs[i])
	}
	queueFor := func(kind topology.QueueKind, o netem.Node) netem.Queue {
		return shardQF[part.ShardOf(o)](kind)
	}
	var net *topology.Network
	if sp.buildLS != nil {
		lsCfg.EngineOf = engineOf
		lsCfg.NewQueueFor = queueFor
		net = topology.BuildLeafSpine(se.Shard(0), lsCfg)
	} else {
		treeCfg.EngineOf = engineOf
		treeCfg.NewQueueFor = queueFor
		net = topology.Build(se.Shard(0), treeCfg)
	}
	bindCreditQueues(net)
	if chks != nil {
		for _, l := range net.Links {
			if cq, ok := l.Port.Queue().(netem.Checkable); ok {
				cq.AttachCheck(l.Port.Name, chks[part.ShardOf(l.From)])
			}
		}
	}

	// Cut links become cross-shard proxies: the transmitting port
	// hands deliveries to the coordinator instead of scheduling on the
	// (foreign) destination engine. The minimum propagation delay over
	// the cut is the causality bound the lookahead relies on.
	cut, minDelay, anyCut := part.CutLinks(net)
	if !anyCut {
		panic("experiments: multi-shard partition with no cut links")
	}
	if minDelay < se.Lookahead() {
		panic(fmt.Sprintf(
			"experiments: cut link with propagation delay %v below the lookahead %v; "+
				"a sharded run needs every cross-shard link's delay to be at least the window width",
			minDelay, se.Lookahead()))
	}
	for _, l := range cut {
		src, dst := part.ShardOf(l.From), part.ShardOf(l.To)
		l.Port.SetRemote(func(at sim.Time, ctx *sim.Rank, k uint64, fn func()) {
			se.Handoff(src, dst, at, ctx, k, fn)
		})
	}

	// Fault injection: one injector per shard, each binding only the
	// links its shard transmits on. Per-link RNG streams make the draw
	// sequences identical to serial; crash timers arm on shard 0 only
	// so the faults/arb_* counters keep their serial totals.
	var injs []*faults.Injector
	if !cfg.Faults.Empty() {
		if err := cfg.Faults.Validate(); err != nil {
			panic(err)
		}
		injs = make([]*faults.Injector, nsh)
		for i := 0; i < nsh; i++ {
			injs[i] = faults.NewInjector(se.Shard(i), cfg.Faults, cfg.Seed)
			injs[i].Instrument(regs[i])
			injs[i].OmitCrashes = i > 0
		}
		for _, l := range net.Links {
			injs[part.ShardOf(l.From)].BindPort(l.ID, l.Port)
		}
		for i := 0; i < nsh; i++ {
			injs[i].Arm()
		}
	}

	// Routing control loop, attached at the same setup position as the
	// serial path (after fault arming, before the driver) so its TE
	// epoch timers hold the same setup rank slots. Cross-shard table
	// updates ride the lookahead handoff with captured rank slots; the
	// same-shard branch consumes the matching child slot via the ranked
	// Schedule, so serial and sharded event orders agree.
	var routeRec func(rack int, ev trace.RouteEvent)
	var routeCtl *route.Controller
	if cfg.Route.Enabled() && net.IsLeafSpine() {
		shardOfRack := func(rack int) int { return part.ShardOf(net.ToRs[rack]) }
		routeCtl = route.Attach(route.Params{
			Net: net, Cfg: cfg.Route,
			EngineOf: func(rack int) *sim.Engine { return se.Shard(shardOfRack(rack)) },
			Deliver: func(from netem.Node, dstRack int, fn func()) {
				ss, ds := part.ShardOf(from), shardOfRack(dstRack)
				e := se.Shard(ss)
				if ss == ds {
					e.Schedule(linkDelay, fn)
					return
				}
				ctx, k := e.ChildSlot()
				se.Handoff(ss, ds, e.Now().Add(linkDelay), ctx, k, fn)
			},
			ChkOf: func(rack int) *check.Checker {
				if chks == nil {
					return nil
				}
				return chks[shardOfRack(rack)]
			},
			RegOf: func(rack int) *obs.Registry { return regs[shardOfRack(rack)] },
			Record: func(rack int, ev trace.RouteEvent) {
				if routeRec != nil {
					routeRec(rack, ev)
				}
			},
		})
		if injs != nil && routeCtl != nil {
			for i := range injs {
				injs[i].OnLinkState = routeCtl.LinkState
			}
		}
	}

	d := transport.NewDriver(net, nil)
	d.InstrumentEach(func(h pkt.NodeID) *obs.Registry { return regs[part.ShardOfID(h)] })
	if chks != nil {
		d.ChkOf = func(src pkt.NodeID) *check.Checker { return chks[part.ShardOfID(src)] }
	}
	if cfg.AbortAfter > 0 {
		for _, st := range d.Stacks {
			st.AbortAfter = cfg.AbortAfter
		}
	}

	var epSys *expresspass.System
	switch cfg.Protocol {
	case DCTCP:
		c := DefaultDCTCP()
		for _, st := range d.Stacks {
			st.NewControl = dctcp.New(c)
		}
	case D2TCP:
		c := DefaultD2TCP()
		for _, st := range d.Stacks {
			st.NewControl = d2tcp.New(c)
		}
	case L2DCT:
		c := DefaultL2DCT()
		for _, st := range d.Stacks {
			st.NewControl = l2dct.New(c)
		}
	case PFabric:
		c := DefaultPFabric()
		for _, st := range d.Stacks {
			st.NewControl = pfabric.New(c)
		}
	case ExpressPass:
		// ExpressPass shards cleanly: every credit engine is per-host
		// state driven by its host's shard engine, and Totals sums the
		// hosts in stack (host-ID) order regardless of shard count.
		c := DefaultExpressPass()
		c.Seed = cfg.Seed
		epSys = expresspass.Attach(d, c)
	default:
		panic(fmt.Sprintf("experiments: protocol %q cannot run sharded", cfg.Protocol))
	}

	// Per-shard record buffers replace the shared collector on the
	// stacks' data path; the coordinator owns the real sink.
	bufs := make([]*bufSink, nsh)
	for i := range bufs {
		bufs[i] = &bufSink{}
	}
	var sc *metrics.StreamCollector
	if cfg.Stream {
		sc = metrics.NewStreamCollector(cfg.SketchEps)
		d.UseSink(sc)
		d.MarkStreaming()
	}
	for _, st := range d.Stacks {
		st.Collector = bufs[part.ShardOf(st.Host)]
	}
	drainBufs := func(sink metrics.Sink) {
		for _, b := range bufs {
			for _, r := range b.take() {
				sink.Add(r)
			}
		}
	}

	// Tracing: one flow log, flight recorder and sampler per shard,
	// each touched only from its shard's goroutine, merged into the
	// canonical order after the run. Hooks fire on the flow's
	// source-host shard; the samplers are created last so their setup
	// events hold the same relative slots as the serial path's.
	var flogs []*trace.FlowLog
	var flogOf func(pkt.NodeID) *trace.FlowLog
	flogCap := traceCap(cfg.Trace.FlowLogCap, trace.DefaultFlowLogCap)
	if cfg.Trace.FlowLog {
		flogs = make([]*trace.FlowLog, nsh)
		for i := range flogs {
			flogs[i] = &trace.FlowLog{Cap: flogCap}
		}
		flogOf = func(src pkt.NodeID) *trace.FlowLog { return flogs[part.ShardOfID(src)] }
	}
	var rec *trace.Recorder
	var recOf func(pkt.NodeID) *trace.ShardRecorder
	if cfg.Trace.Spans {
		rec = trace.NewRecorder(trace.RecorderConfig{
			SampleN: cfg.Trace.SampleN, Seed: cfg.Seed, FlowCap: cfg.Trace.FlowCap,
		})
		srecs := make([]*trace.ShardRecorder, nsh)
		for i := range srecs {
			srecs[i] = rec.Shard(se.Shard(i))
		}
		rec.SetMeta(traceMeta(cfg, net))
		recOf = func(src pkt.NodeID) *trace.ShardRecorder { return srecs[part.ShardOfID(src)] }
		if routeCtl != nil {
			routeRec = func(rack int, ev trace.RouteEvent) {
				srecs[part.ShardOf(net.ToRs[rack])].Route(ev)
			}
		}
	}
	wireTraceHooks(cfg, d, flogOf, recOf)
	var samplers []*trace.Sampler
	sampCap := traceCap(cfg.Trace.SampleCap, trace.DefaultSampleCap)
	if cfg.Trace.QueueSample > 0 {
		samplers = shardSamplers(se, part, net, cfg.Trace.QueueSample, sampCap)
	}

	spec := workload.Spec{
		Pattern:         sp.pattern(net),
		Sizes:           sp.sizes,
		Load:            cfg.Load,
		Reference:       sp.reference,
		NumFlows:        numFlows,
		Fanin:           sp.fanin,
		BackgroundFlows: sp.bgFlows,
	}
	if sp.deadlines {
		spec.DeadlineMin = DeadlineLo
		spec.DeadlineMax = DeadlineHi
	}

	lookahead := sim.Duration(se.Lookahead())
	var summary metrics.Summary
	if cfg.Stream {
		runShardedStream(se, d, part, spec, cfg.Seed, sc, drainBufs)
		summary = sc.Summarize()
	} else {
		flows := spec.Generate(sim.NewRand(cfg.Seed+1), 1)
		fg := 0
		for _, f := range flows {
			if !f.Background {
				fg++
			}
		}
		d.Prime(fg)
		d.OnZero = se.RequestStop
		for _, f := range flows {
			f := f
			se.Shard(part.ShardOfID(f.Src)).At(f.Start, func() { d.StartArrival(f, true) })
		}
		lastArrival := flows[len(flows)-1].Start
		for {
			mp, ok := se.MinPendingTime()
			if !ok {
				break
			}
			end := mp.Add(lookahead)
			if end > lastArrival {
				break
			}
			se.StepWindow(end)
		}
		se.RunTail(lastArrival.Add(sim.Duration(10*sim.Second)), true)

		// Merge the per-shard buffers into a stored collector in a
		// canonical order (flow IDs are unique; every consumer of the
		// records is insertion-order independent).
		merged := metrics.NewCollector()
		var all []metrics.FlowRecord
		for _, b := range bufs {
			all = append(all, b.take()...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
		for _, r := range all {
			merged.Add(r)
		}
		d.Collector = merged
		d.Sink = merged
		d.FlushUnfinished()
		summary = merged.Summarize()
	}

	res := PointResult{
		Summary: summary,
		CDF:     d.Sink.CDF(200),
		Queues:  net.QueueStatsTotal(),
	}
	if !cfg.Stream {
		res.Records = d.Collector.Records()
	}
	host := net.HostQueueStats()
	if att := host.EnqueuedData + host.DroppedData; att > 0 {
		res.LossRate = float64(res.Queues.DroppedData) / float64(att)
	}
	if epSys != nil {
		res.CtrlMessages = epSys.Totals().Messages
	}
	if flogs != nil {
		res.FlowEvents, _ = trace.MergeFlowEvents(flogs, flogCap)
	}
	if samplers != nil {
		for _, s := range samplers {
			s.Stop()
		}
		res.QueueSamples, _ = trace.MergeQueueSamples(samplers, sampCap)
	}
	if rec != nil {
		rt := rec.Take()
		rt.Queue = res.QueueSamples
		res.Trace = rt
	}
	if chks != nil && sc != nil && sc.Completed() > 0 {
		sk := sc.Sketch()
		chks[0].SketchBounds("metrics/stream",
			int64(summary.P50), int64(summary.P99), sk.Min(), sk.Max())
	}
	var totalViolations int64
	if chks != nil {
		for _, l := range net.Links {
			if cq, ok := l.Port.Queue().(netem.Checkable); ok {
				cq.CheckConservation()
			}
		}
		for _, chk := range chks {
			totalViolations += chk.Total()
			res.CheckViolations = append(res.CheckViolations, chk.Violations()...)
		}
		res.Violations = totalViolations
	}
	if cfg.Obs {
		scrapeRun(coordReg, se.Shard(0), net, summary, nil, nil, epSys)
		scrapeTrace(coordReg, res.Trace)
		if chks != nil {
			coordReg.Counter("check/enabled").Inc()
			for _, chk := range chks {
				coordReg.Counter("check/violations").Add(chk.Total())
				for inv, n := range chk.ByInvariant() {
					coordReg.Counter("check/violations/" + inv).Add(n)
				}
			}
		}
		if sc != nil {
			sk := sc.Sketch()
			coordReg.Counter("metrics/sketch_adds").Add(sk.Count())
			coordReg.Counter("metrics/sketch_buckets_used").Add(int64(sk.BucketsUsed()))
			coordReg.Counter("metrics/stream_points").Inc()
		}
		snaps := make([]*obs.Snapshot, 0, nsh+1)
		for _, r := range regs {
			snaps = append(snaps, r.Snapshot())
		}
		snaps = append(snaps, coordReg.Snapshot())
		res.Obs = obs.MergeAll(snaps)
	}
	if chks != nil && !cfg.Check && totalViolations > 0 {
		sums := ""
		for _, chk := range chks {
			if chk.Total() > 0 {
				sums += chk.Summary()
			}
		}
		panic("experiments: PASE_CHECK sharded run failed: " + sums)
	}
	return res
}

// shardSamplers builds one queue sampler per shard over the ports that
// shard clocks, carrying the run-wide port indices so the merged
// streams keep the serial (At, Idx) order. Samplers are created in
// shard order so their setup events take deterministic rank slots.
func shardSamplers(se *sim.ShardedEngine, part *topology.Partition, net *topology.Network,
	every sim.Duration, cap int) []*trace.Sampler {

	all := trace.AllPorts(net)
	nsh := part.Shards
	ports := make([][]*netem.Port, nsh)
	idx := make([][]int, nsh)
	for i, p := range all {
		sh := part.ShardOf(p.Owner())
		ports[sh] = append(ports[sh], p)
		idx[sh] = append(idx[sh], i)
	}
	out := make([]*trace.Sampler, nsh)
	for i := 0; i < nsh; i++ {
		out[i] = trace.NewSampler(se.Shard(i), every, ports[i])
		out[i].Idx = idx[i]
		out[i].Cap = cap
	}
	return out
}

// runShardedStream drives a streaming workload across the shards: the
// coordinator pulls the arrival iterator between windows and injects
// each flow start as a ranked event on its source shard, reproducing
// ScheduleStream's serial event order exactly. Each batch of
// same-timestamp arrivals gets one coordinator rank node standing for
// the serial onArrival event; flow j of an m-flow batch takes child
// slot j for j < m-1, the next batch's chain node (or the drain
// watchdog) takes slot m-1, and the last flow takes slot m — mirroring
// onArrival's call order (start all but the last flow, schedule the
// next arrival or the watchdog, start the last flow).
func runShardedStream(se *sim.ShardedEngine, d *transport.Driver, part *topology.Partition,
	spec workload.Spec, seed uint64, sc *metrics.StreamCollector, drainBufs func(metrics.Sink)) {

	it := spec.Stream(sim.NewRand(seed+1), 1)
	// The serial path's one setup Schedule (the first AtHead).
	slot0 := se.SetupSlot()

	pending, hasPending := it.Next()
	if !hasPending {
		panic(fmt.Errorf("transport: no foreground flows scheduled"))
	}

	var drained atomic.Bool
	d.OnZero = func() {
		if drained.Load() {
			se.RequestStop()
		}
	}
	lookahead := sim.Duration(se.Lookahead())
	d.DropRx = func(src, dst pkt.NodeID, flow pkt.FlowID) {
		ss, ds := part.ShardOfID(src), part.ShardOfID(dst)
		if ss == ds {
			d.Stacks[dst].DropReceiver(flow)
			return
		}
		e := se.Shard(ss)
		ctx, k := e.ChildSlot()
		se.Handoff(ss, ds, e.Now().Add(lookahead), ctx, k, func() {
			d.Stacks[dst].DropReceiver(flow)
		})
	}

	var prevCtx *sim.Rank
	prevK := slot0
	var lastArrival sim.Time
	allInjected := false
	iterDone := false
	var batch []workload.FlowSpec

	injectFlow := func(t sim.Time, ctx *sim.Rank, k uint64, f workload.FlowSpec) {
		if !f.Background {
			d.Prime(1)
		}
		se.Shard(part.ShardOfID(f.Src)).InjectAt(t, true, ctx, k, func() {
			d.StartArrival(f, true)
		})
	}

	injectBefore := func(end sim.Time) {
		for hasPending && pending.Start < end {
			t := pending.Start
			batch = append(batch[:0], pending)
			hasPending = false
			for {
				f, ok := it.Next()
				if !ok {
					iterDone = true
					break
				}
				if f.Start == t {
					batch = append(batch, f)
					continue
				}
				pending, hasPending = f, true
				break
			}
			r := se.NewCoordRank(t, true, prevCtx, prevK)
			m := len(batch)
			for j := 0; j < m-1; j++ {
				injectFlow(t, r, uint64(j), batch[j])
			}
			last := batch[m-1]
			lastShard := part.ShardOfID(last.Src)
			if iterDone {
				se.Shard(lastShard).InjectAt(t.Add(transport.StreamGrace), false, r, uint64(m-1), se.RequestStop)
				injectFlow(t, r, uint64(m), last)
				lastArrival = t
				allInjected = true
				drained.Store(true)
			} else {
				prevCtx, prevK = r, uint64(m-1)
				injectFlow(t, r, uint64(m), last)
			}
		}
	}

	for {
		cand, have := se.MinPendingTime()
		if hasPending && (!have || pending.Start < cand) {
			cand, have = pending.Start, true
		}
		if !have {
			break
		}
		end := cand.Add(lookahead)
		if allInjected && end > lastArrival {
			break
		}
		injectBefore(end)
		se.StepWindow(end)
		drainBufs(sc)
	}
	se.RunTail(0, false)
	drainBufs(sc)
	d.FlushUnfinished()
	drainBufs(sc)
}
