package experiments

import (
	"bytes"
	"hash/fnv"
	"sort"
	"testing"
)

// The conformance suite pins a digest of every transport's behavior on
// one small deterministic scenario. The digest covers each flow's full
// integer outcome (identity, size, start/finish times, retransmission
// counts) plus the fabric-wide queue totals, so any behavioral drift —
// a scheduling change, an off-by-one in a queue discipline, a window
// rule tweak — moves it. Every run also executes under the runtime
// invariant checker and must report zero violations.
//
// When a deliberate behavior change moves a digest, re-pin it: run
//
//	go test ./internal/experiments -run TestConformanceDigest -v
//
// and copy the "got" values printed by the failures into goldenDigests.

// conformancePoint is the pinned scenario: small enough to run in
// ~100 ms per transport, busy enough (80% load, all-to-all) to exercise
// queueing, marking, drops and retransmissions. D2TCP runs the deadline
// workload — without deadlines it degenerates to DCTCP exactly (same
// digest), and the point of its pin is the deadline-aware behavior.
func conformancePoint(p Protocol) PointConfig {
	s := IntraRack
	if p == D2TCP {
		s = Deadline
	}
	return PointConfig{
		Protocol: p,
		Scenario: s,
		Load:     0.8,
		Seed:     7,
		NumFlows: 120,
		Check:    true,
	}
}

// digestResult folds a point's per-flow outcomes and queue totals into
// one FNV-1a value. Records are sorted by flow ID first so the digest
// pins behavior, not collection order.
func digestResult(r PointResult) uint64 {
	recs := append([]_Rec(nil), toRecs(r)...)
	sort.Slice(recs, func(i, j int) bool { return recs[i][0] < recs[j][0] })
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, rec := range recs {
		for _, v := range rec {
			put(v)
		}
	}
	q := r.Queues
	for _, v := range []int64{q.Enqueued, q.Dequeued, q.Dropped, q.Marked,
		q.EnqueuedData, q.DroppedData, q.DroppedBytes} {
		put(uint64(v))
	}
	return h.Sum64()
}

// _Rec is one flow's digestible outcome.
type _Rec [9]uint64

func toRecs(r PointResult) []_Rec {
	out := make([]_Rec, 0, len(r.Records))
	for _, rec := range r.Records {
		var done uint64
		if rec.Done {
			done = 1
		}
		out = append(out, _Rec{
			rec.ID, rec.Task, uint64(rec.Size), uint64(rec.Start),
			uint64(rec.Finish), uint64(rec.Deadline), done,
			uint64(rec.Retx), uint64(rec.Timeouts),
		})
	}
	return out
}

// goldenDigests pins every transport's behavior on the conformance
// scenario. A changed value means the simulation behaves differently —
// intended changes re-pin (see the package comment above), unintended
// ones are regressions.
var goldenDigests = map[Protocol]uint64{
	DCTCP:       0xdabcc6b759539fd4,
	D2TCP:       0xfb4c9230a35f8243,
	L2DCT:       0xa09058f68b5aac00,
	PFabric:     0xb87509d8a3df31b9,
	PDQ:         0xbd153bc762d781ad,
	PASE:        0x5d25b73f33b12b38,
	ExpressPass: 0x80b7aead1a5d3c92,
}

func TestConformanceDigest(t *testing.T) {
	for _, p := range []Protocol{DCTCP, D2TCP, L2DCT, PFabric, PDQ, PASE, ExpressPass} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			t.Parallel()
			r := RunPoint(conformancePoint(p))
			if r.Violations != 0 {
				t.Fatalf("invariant checker reported %d violations:\n%v",
					r.Violations, r.CheckViolations)
			}
			if r.Summary.Completed == 0 {
				t.Fatal("no flows completed")
			}
			got := digestResult(r)
			if want := goldenDigests[p]; got != want {
				t.Errorf("behavior digest changed: got %#x, want %#x", got, want)
			}
		})
	}
}

// TestConformanceDeterminism re-runs one point and requires the digest
// to be identical — the foundation the golden pins stand on.
func TestConformanceDeterminism(t *testing.T) {
	cfg := conformancePoint(PASE)
	a := digestResult(RunPoint(cfg))
	b := digestResult(RunPoint(cfg))
	if a != b {
		t.Fatalf("same config, different digests: %#x vs %#x", a, b)
	}
}

// goldenFig9aTSV pins one figure point end to end: the exact TSV the
// harness emits for Figure 9a at 50% load, 100 flows per point,
// averaged over 2 seeds. This is the full pipeline — workload
// generation, all three transports, sweep assembly, TSV rendering —
// in one regression check.
const goldenFig9aTSV = "# Figure 9a: AFCT (left-right inter-rack)\n" +
	"# Offered load (%)\tPASE\tL2DCT\tDCTCP\t(AFCT (ms))\n" +
	"50\t1.4399635\t1.4731975\t1.518573\n" +
	"# totals: points=6 retx=0 timeouts=0\n"

func TestGoldenFig9aTSV(t *testing.T) {
	o := Opts{NumFlows: 100, Seed: 1, Seeds: 2, Loads: []float64{0.5}, Check: true}
	fig, ok := Lookup("9a")
	if !ok {
		t.Fatal("figure 9a not registered")
	}
	res := fig.Run(o)
	if res.Violations != 0 {
		t.Fatalf("invariant checker reported %d violations", res.Violations)
	}
	var buf bytes.Buffer
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenFig9aTSV {
		t.Errorf("figure 9a TSV changed:\ngot:\n%s\nwant:\n%s", got, goldenFig9aTSV)
	}
}
