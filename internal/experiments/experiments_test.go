package experiments

import (
	"testing"

	"pase/internal/metrics"
	"pase/internal/sim"
)

// Shape tests: each paper claim is asserted with generous tolerances
// on down-scaled runs (hundreds of flows). Absolute magnitudes are
// recorded in EXPERIMENTS.md; these tests pin who wins and where.

const testFlows = 300

func run(t *testing.T, p Protocol, s Scenario, load float64, opts PASEOptions) PointResult {
	t.Helper()
	return RunPoint(PointConfig{Protocol: p, Scenario: s, Load: load, Seed: 1, NumFlows: testFlows, PASE: opts})
}

func TestAllPointsComplete(t *testing.T) {
	// Every protocol finishes every foreground flow in every scenario
	// at moderate load.
	for _, p := range []Protocol{DCTCP, D2TCP, L2DCT, PFabric, PDQ, PASE} {
		for _, s := range []Scenario{IntraRack, LeftRight} {
			r := RunPoint(PointConfig{Protocol: p, Scenario: s, Load: 0.5, Seed: 2, NumFlows: 150})
			if r.Summary.Completed != 150 {
				t.Errorf("%s/%s: completed %d/150", p, s, r.Summary.Completed)
			}
		}
	}
}

// Figure 1 / 9c: at high load, deadline-aware self-adjusting endpoints
// degrade toward DCTCP while pFabric and PASE keep meeting deadlines.
func TestFig1And9cShape(t *testing.T) {
	load := 0.9
	pase := run(t, PASE, Deadline, load, PASEOptions{})
	d2 := run(t, D2TCP, Deadline, load, PASEOptions{})
	dctcp := run(t, DCTCP, Deadline, load, PASEOptions{})
	pf := run(t, PFabric, Deadline, load, PASEOptions{})

	if pf.Summary.AppThroughput <= d2.Summary.AppThroughput {
		t.Errorf("fig1: pFabric (%v) should beat D2TCP (%v) at high load",
			pf.Summary.AppThroughput, d2.Summary.AppThroughput)
	}
	if d2.Summary.AppThroughput < dctcp.Summary.AppThroughput-0.05 {
		t.Errorf("fig1: D2TCP (%v) should not be clearly worse than DCTCP (%v)",
			d2.Summary.AppThroughput, dctcp.Summary.AppThroughput)
	}
	if pase.Summary.AppThroughput <= d2.Summary.AppThroughput {
		t.Errorf("fig9c: PASE (%v) should beat D2TCP (%v) at high load",
			pase.Summary.AppThroughput, d2.Summary.AppThroughput)
	}
}

// Figure 2: PDQ wins at low load (fast convergence) and loses at high
// load (flow-switching overhead).
func TestFig2Crossover(t *testing.T) {
	low := 0.2
	high := 0.9
	pdqLow := run(t, PDQ, IntraRackLarge, low, PASEOptions{})
	dctcpLow := run(t, DCTCP, IntraRackLarge, low, PASEOptions{})
	if pdqLow.Summary.AFCT >= dctcpLow.Summary.AFCT {
		t.Errorf("fig2: PDQ (%v) should beat DCTCP (%v) at %v load",
			pdqLow.Summary.AFCT, dctcpLow.Summary.AFCT, low)
	}
	pdqHigh := run(t, PDQ, IntraRackLarge, high, PASEOptions{})
	dctcpHigh := run(t, DCTCP, IntraRackLarge, high, PASEOptions{})
	if pdqHigh.Summary.AFCT <= dctcpHigh.Summary.AFCT {
		t.Errorf("fig2: PDQ (%v) should lose to DCTCP (%v) at %v load",
			pdqHigh.Summary.AFCT, dctcpHigh.Summary.AFCT, high)
	}
}

// Figure 3: the toy example. PASE must not be worse for any flow, and
// flow 3 (link-disjoint from flow 1) must finish near its parallel
// optimum under PASE.
func TestFig3Toy(t *testing.T) {
	pf := RunToy(PFabric)
	pa := RunToy(PASE)
	// Flow 1 (highest priority) is unaffected in both.
	if pf[0] > 6*sim.Millisecond || pa[0] > 6*sim.Millisecond {
		t.Errorf("toy: flow 1 should be near 4ms: pFabric %v, PASE %v", pf[0], pa[0])
	}
	// Flow 3 could run in parallel with flow 1 (8 ms at line rate).
	if pa[2] > 12*sim.Millisecond {
		t.Errorf("toy: PASE flow 3 = %v, want near the 8ms parallel optimum", pa[2])
	}
	if pa[2] > pf[2]+sim.Millisecond {
		t.Errorf("toy: PASE flow 3 (%v) should not lose to pFabric (%v)", pa[2], pf[2])
	}
}

// Figure 4: pFabric loses a large fraction of packets under the
// worker-aggregator fan-in, >40%% at 80%% load in the paper.
func TestFig4LossRate(t *testing.T) {
	r := run(t, PFabric, WorkerAgg, 0.8, PASEOptions{})
	if r.LossRate < 0.25 {
		t.Errorf("fig4: pFabric loss rate = %v, want > 0.25", r.LossRate)
	}
	// PASE on the same workload stays essentially lossless.
	pa := run(t, PASE, WorkerAgg, 0.8, PASEOptions{})
	if pa.LossRate > 0.02 {
		t.Errorf("fig4: PASE loss rate = %v, want ~0", pa.LossRate)
	}
}

// Figure 9a: PASE clearly beats L2DCT and DCTCP in left-right,
// especially at high load (paper: 50% and 70%).
func TestFig9aShape(t *testing.T) {
	load := 0.8
	pase := run(t, PASE, LeftRight, load, PASEOptions{})
	l2 := run(t, L2DCT, LeftRight, load, PASEOptions{})
	dctcp := run(t, DCTCP, LeftRight, load, PASEOptions{})
	if float64(pase.Summary.AFCT) > 0.75*float64(l2.Summary.AFCT) {
		t.Errorf("fig9a: PASE %v vs L2DCT %v — want >=25%% better", pase.Summary.AFCT, l2.Summary.AFCT)
	}
	if float64(pase.Summary.AFCT) > 0.8*float64(dctcp.Summary.AFCT) {
		t.Errorf("fig9a: PASE %v vs DCTCP %v — want >=20%% better", pase.Summary.AFCT, dctcp.Summary.AFCT)
	}
}

// Figure 10c: in the all-to-all worker-aggregator scenario PASE beats
// pFabric at high load (crossover near the middle of the sweep).
func TestFig10cShape(t *testing.T) {
	load := 0.8
	pase := run(t, PASE, WorkerAgg, load, PASEOptions{})
	pf := run(t, PFabric, WorkerAgg, load, PASEOptions{})
	if pase.Summary.AFCT >= pf.Summary.AFCT {
		t.Errorf("fig10c: PASE (%v) should beat pFabric (%v) at %v load",
			pase.Summary.AFCT, pf.Summary.AFCT, load)
	}
}

// Figure 11b: pruning + delegation cut control-plane messages
// substantially at high load.
func TestFig11OverheadReduction(t *testing.T) {
	load := 0.8
	on := run(t, PASE, LeftRight, load, PASEOptions{})
	off := run(t, PASE, LeftRight, load, PASEOptions{NoPruning: true, NoDelegation: true})
	if on.CtrlMessages >= off.CtrlMessages {
		t.Errorf("fig11b: optimizations should reduce messages: on=%d off=%d",
			on.CtrlMessages, off.CtrlMessages)
	}
	reduction := 1 - float64(on.CtrlMessages)/float64(off.CtrlMessages)
	if reduction < 0.2 {
		t.Errorf("fig11b: overhead reduction = %.2f, want >= 0.2", reduction)
	}
	// And AFCT must not get much worse. (The paper reports 4–10%
	// better; we measure ~+2% at this load and ~-10% at 90% — see
	// EXPERIMENTS.md — so the guard only excludes regressions beyond
	// the known accuracy cost.)
	if float64(on.Summary.AFCT) > 1.25*float64(off.Summary.AFCT) {
		t.Errorf("fig11a: optimizations hurt AFCT: on=%v off=%v", on.Summary.AFCT, off.Summary.AFCT)
	}
}

// Figure 12a: end-to-end arbitration beats local-only at high load
// (paper: up to 60%). Local-only is bimodal — fine until an overload
// episode overflows a buffer and 200 ms recovery tails take over — so
// the comparison averages several seeds.
func TestFig12aShape(t *testing.T) {
	const seeds = 4
	load := 0.9
	mean := func(opts PASEOptions) float64 {
		var sum float64
		for seed := uint64(1); seed <= seeds; seed++ {
			r := RunPoint(PointConfig{Protocol: PASE, Scenario: LeftRight,
				Load: load, Seed: seed, NumFlows: testFlows, PASE: opts})
			sum += float64(r.Summary.AFCT)
		}
		return sum / seeds
	}
	e2e := mean(PASEOptions{})
	local := mean(PASEOptions{LocalOnly: true})
	if e2e > 0.75*local {
		t.Errorf("fig12a: end-to-end mean %v vs local mean %v — want >=25%% better",
			sim.Duration(e2e), sim.Duration(local))
	}
}

// Figure 12b: 4 queues capture most of the benefit; 8 queues are not
// much better, and 3 queues are the worst of the set at high load.
func TestFig12bShape(t *testing.T) {
	load := 0.8
	afct := map[int]sim.Duration{}
	for _, q := range []int{3, 8} {
		r := run(t, PASE, LeftRight, load, PASEOptions{NumQueues: q})
		afct[q] = r.Summary.AFCT
	}
	if float64(afct[8]) > 1.15*float64(afct[3]) {
		t.Errorf("fig12b: 8 queues (%v) should not lose clearly to 3 (%v)", afct[8], afct[3])
	}
}

// Figure 13a: removing the reference rate (PASE-DCTCP) hurts. The
// effect is clearest at low-to-mid loads, where the guided start is
// the dominant difference; at high load it shrinks into run noise at
// this test's scale (see EXPERIMENTS.md).
func TestFig13aShape(t *testing.T) {
	load := 0.4
	withRef := run(t, PASE, IntraRackLarge, load, PASEOptions{})
	without := run(t, PASE, IntraRackLarge, load, PASEOptions{DisableRefRate: true})
	if float64(withRef.Summary.AFCT) > 1.02*float64(without.Summary.AFCT) {
		t.Errorf("fig13a: reference rate should help: with=%v without=%v",
			withRef.Summary.AFCT, without.Summary.AFCT)
	}
}

// Figure 13b: on the (simulated) testbed PASE clearly beats DCTCP
// (paper: 50–60% smaller AFCT).
func TestFig13bShape(t *testing.T) {
	load := 0.9
	pase := run(t, PASE, Testbed, load, PASEOptions{})
	dctcp := run(t, DCTCP, Testbed, load, PASEOptions{})
	// The paper reports 50–60% at testbed scale (1000 flows); at this
	// test's reduced scale the margin is smaller but must be clear.
	if float64(pase.Summary.AFCT) > 0.85*float64(dctcp.Summary.AFCT) {
		t.Errorf("fig13b: PASE %v vs DCTCP %v — want >=15%% better",
			pase.Summary.AFCT, dctcp.Summary.AFCT)
	}
}

// Extension (§3.1.1's task-id criterion): task-aware arbitration must
// reduce mean task completion time and serve tasks closer to FIFO on
// the worker-aggregator workload at high load.
func TestTaskAwareScheduling(t *testing.T) {
	load := 0.9
	taskAware := run(t, PASE, WorkerAgg, load, PASEOptions{TaskAware: true})
	sizeBased := run(t, PASE, WorkerAgg, load, PASEOptions{})

	ta := metrics.Tasks(taskAware.Records)
	sb := metrics.Tasks(sizeBased.Records)
	if len(ta) == 0 || len(sb) == 0 {
		t.Fatal("worker-agg records must carry task ids")
	}
	if metrics.MeanTCT(ta) >= metrics.MeanTCT(sb) {
		t.Errorf("task-aware mean TCT %v should beat size-based %v",
			metrics.MeanTCT(ta), metrics.MeanTCT(sb))
	}
	if metrics.TaskOrderInversions(ta) >= metrics.TaskOrderInversions(sb) {
		t.Errorf("task-aware inversions %d should be below size-based %d",
			metrics.TaskOrderInversions(ta), metrics.TaskOrderInversions(sb))
	}
}

func TestCDFOutputs(t *testing.T) {
	r := run(t, PASE, LeftRight, 0.7, PASEOptions{})
	if len(r.CDF) == 0 {
		t.Fatal("CDF should be populated")
	}
	last := r.CDF[len(r.CDF)-1]
	if last.Fraction != 1.0 {
		t.Fatalf("CDF should end at 1.0, got %v", last.Fraction)
	}
}

func TestLookupAndRegistry(t *testing.T) {
	if len(Figures) != 24 {
		t.Fatalf("registry has %d figures, want 24", len(Figures))
	}
	if _, ok := Lookup("9a"); !ok {
		t.Fatal("figure 9a missing")
	}
	if _, ok := Lookup("robust"); !ok {
		t.Fatal("figure robust missing")
	}
	if _, ok := Lookup("highspeed"); !ok {
		t.Fatal("figure highspeed missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus figure should not resolve")
	}
}

func TestRenderFigure(t *testing.T) {
	fig, _ := Lookup("probing")
	res := fig.Run(Opts{NumFlows: 60, Seed: 3, Loads: []float64{0.8}})
	text := res.Render()
	if len(text) == 0 {
		t.Fatal("render produced nothing")
	}
}

func TestDeterministicPoints(t *testing.T) {
	a := RunPoint(PointConfig{Protocol: PASE, Scenario: IntraRack, Load: 0.6, Seed: 9, NumFlows: 100})
	b := RunPoint(PointConfig{Protocol: PASE, Scenario: IntraRack, Load: 0.6, Seed: 9, NumFlows: 100})
	if a.Summary.AFCT != b.Summary.AFCT || a.CtrlMessages != b.CtrlMessages {
		t.Fatalf("identical configs diverged: %v vs %v", a.Summary, b.Summary)
	}
}

// Extension: PASE on the multipath leaf-spine fabric — arbitration
// composes with per-flow ECMP (the control plane arbitrates exactly
// the links each flow's hash selects) and still beats DCTCP.
func TestLeafSpineExtension(t *testing.T) {
	load := 0.8
	pase := run(t, PASE, LeafSpine, load, PASEOptions{})
	dctcp := run(t, DCTCP, LeafSpine, load, PASEOptions{})
	if pase.Summary.Completed != testFlows || dctcp.Summary.Completed != testFlows {
		t.Fatalf("incomplete: pase=%d dctcp=%d", pase.Summary.Completed, dctcp.Summary.Completed)
	}
	if pase.Summary.AFCT >= dctcp.Summary.AFCT {
		t.Errorf("leaf-spine: PASE %v should beat DCTCP %v", pase.Summary.AFCT, dctcp.Summary.AFCT)
	}
	if pase.CtrlMessages == 0 {
		t.Error("cross-leaf flows must arbitrate through leaf arbitrators")
	}
}
