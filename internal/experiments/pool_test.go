package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync/atomic"
	"testing"
)

// The pool's contract: parallel execution must be invisible in the
// output. These tests run down-scaled figures serially and with 8
// workers and require byte-identical Series; `go test -race` over this
// file doubles as the data-race check on the pool.

func seriesEqual(t *testing.T, name string, serial, parallel []Series) {
	t.Helper()
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("%s: parallel series diverge from serial\nserial:   %+v\nparallel: %+v",
			name, serial, parallel)
	}
}

func figSerialVsParallel(t *testing.T, id string, o Opts) {
	t.Helper()
	fig, ok := Lookup(id)
	if !ok {
		t.Fatalf("figure %s missing", id)
	}
	so := o
	so.Parallelism = 1
	po := o
	po.Parallelism = 8
	serial := fig.Run(so)
	parallel := fig.Run(po)
	seriesEqual(t, "figure "+id, serial.Series, parallel.Series)
	if !reflect.DeepEqual(serial.Notes, parallel.Notes) {
		t.Fatalf("figure %s: notes diverge: %v vs %v", id, serial.Notes, parallel.Notes)
	}
}

// Figure 9a: a plain metric sweep (3 variants × loads).
func TestParallelDeterminismFig9a(t *testing.T) {
	figSerialVsParallel(t, "9a", Opts{NumFlows: 80, Seed: 5, Loads: []float64{0.4, 0.7}})
}

// Figure 9b: the CDF path, where whole distributions must match.
func TestParallelDeterminismFig9b(t *testing.T) {
	figSerialVsParallel(t, "9b", Opts{NumFlows: 80, Seed: 5})
}

// Figure 11a: the pruning+delegation ablation with its paired
// on/off runs and multi-seed averaging.
func TestParallelDeterminismAblation11a(t *testing.T) {
	figSerialVsParallel(t, "11a", Opts{NumFlows: 60, Seed: 5, Loads: []float64{0.7}})
}

// The run manifests promise that the merged observability snapshot is
// parallelism-invariant: byte-identical JSON (the manifest encoding)
// at any worker count. Snapshots are merged in input order, so this
// holds despite non-deterministic completion order.
func snapshotSerialVsParallel(t *testing.T, id string, o Opts) {
	t.Helper()
	fig, ok := Lookup(id)
	if !ok {
		t.Fatalf("figure %s missing", id)
	}
	o.Obs = true
	so := o
	so.Parallelism = 1
	po := o
	po.Parallelism = 8
	var calls atomic.Int64
	po.Progress = func(done, total int) { calls.Add(1) }
	serial := fig.Run(so)
	parallel := fig.Run(po)
	if serial.Obs == nil || len(serial.Obs.Counters) == 0 {
		t.Fatalf("figure %s: Obs run produced no snapshot", id)
	}
	if serial.Points == 0 || serial.Points != parallel.Points {
		t.Fatalf("figure %s: points serial=%d parallel=%d", id, serial.Points, parallel.Points)
	}
	if int(calls.Load()) != parallel.Points {
		t.Fatalf("figure %s: progress called %d times for %d points", id, calls.Load(), parallel.Points)
	}
	sj, err := json.Marshal(serial.Obs)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(parallel.Obs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatalf("figure %s: merged snapshots diverge\nserial:   %s\nparallel: %s", id, sj, pj)
	}
	if serial.Retx != parallel.Retx || serial.Timeouts != parallel.Timeouts {
		t.Fatalf("figure %s: totals diverge: retx %d/%d timeouts %d/%d",
			id, serial.Retx, parallel.Retx, serial.Timeouts, parallel.Timeouts)
	}
}

// Figure 9a: the plain sweep path (sweepResult).
func TestSnapshotDeterminismFig9a(t *testing.T) {
	snapshotSerialVsParallel(t, "9a", Opts{NumFlows: 80, Seed: 5, Loads: []float64{0.7}})
}

// Figure 12a: the ablation path with hand-built point grids.
func TestSnapshotDeterminismAblation12a(t *testing.T) {
	snapshotSerialVsParallel(t, "12a", Opts{NumFlows: 60, Seed: 5, Loads: []float64{0.7}})
}

func TestRunPointsOrderAndCompleteness(t *testing.T) {
	// Results come back in input order regardless of which worker
	// finishes first; heterogenous configs keep them distinguishable.
	var cfgs []PointConfig
	for _, load := range []float64{0.2, 0.5, 0.8} {
		for _, p := range []Protocol{DCTCP, PASE} {
			cfgs = append(cfgs, PointConfig{Protocol: p, Scenario: IntraRack,
				Load: load, Seed: 3, NumFlows: 50})
		}
	}
	serial := RunPoints(cfgs, 1)
	parallel := RunPoints(cfgs, 8)
	if len(serial) != len(cfgs) || len(parallel) != len(cfgs) {
		t.Fatalf("result count: serial=%d parallel=%d want %d",
			len(serial), len(parallel), len(cfgs))
	}
	for i := range cfgs {
		if serial[i].Summary.AFCT != parallel[i].Summary.AFCT ||
			serial[i].CtrlMessages != parallel[i].CtrlMessages ||
			serial[i].LossRate != parallel[i].LossRate {
			t.Fatalf("point %d (%s @ %g): serial %+v vs parallel %+v",
				i, cfgs[i].Protocol, cfgs[i].Load, serial[i].Summary, parallel[i].Summary)
		}
	}
}

func TestRunPointsEdgeCases(t *testing.T) {
	if got := RunPoints(nil, 4); len(got) != 0 {
		t.Fatalf("empty input should yield empty output, got %d", len(got))
	}
	one := []PointConfig{{Protocol: DCTCP, Scenario: IntraRack, Load: 0.5, Seed: 1, NumFlows: 40}}
	// More workers than work, zero (= GOMAXPROCS) and negative
	// parallelism must all behave.
	for _, par := range []int{-1, 0, 1, 16} {
		got := RunPoints(one, par)
		if len(got) != 1 || got[0].Summary.Completed != 40 {
			t.Fatalf("parallelism %d: %+v", par, got[0].Summary)
		}
	}
}

func TestMapPointsMatchesRunPoints(t *testing.T) {
	cfgs := []PointConfig{
		{Protocol: DCTCP, Scenario: IntraRack, Load: 0.4, Seed: 2, NumFlows: 50},
		{Protocol: PASE, Scenario: IntraRack, Load: 0.6, Seed: 2, NumFlows: 50},
	}
	full := RunPoints(cfgs, 1)
	ys, _ := mapPoints(cfgs, Opts{Parallelism: 4}, afctMS)
	for i := range cfgs {
		if ys[i] != afctMS(full[i]) {
			t.Fatalf("point %d: mapPoints %v vs RunPoints %v", i, ys[i], afctMS(full[i]))
		}
	}
}
