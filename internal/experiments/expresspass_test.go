package experiments

import (
	"math"
	"testing"

	"pase/internal/faults"
	"pase/internal/metrics"
	"pase/internal/sim"
)

// ExpressPass conformance: beyond the pinned digest (conformance_test)
// and the sharded equality sweep (sharded_test), the credit transport
// must stream exactly like it stores, shard byte-identically under
// fault chaos, and hold its construction guarantee — zero data-plane
// drops with a bounded queue peak — in the massive-incast scenarios
// where window-based transports overrun shallow buffers.

// TestExpressPassStreamMatchesStored: the streaming collector path must
// agree exactly with the stored path on every sum-derived metric and
// within the sketch's ε on quantiles — including the credit-plane
// control message total.
func TestExpressPassStreamMatchesStored(t *testing.T) {
	base := PointConfig{Protocol: ExpressPass, Scenario: IntraRack,
		Load: 0.6, Seed: 1, NumFlows: 2000, Check: true}
	stored := RunPoint(base)

	streamed := base
	streamed.Stream = true
	got := RunPoint(streamed)

	a, b := stored.Summary, got.Summary
	if a.Flows != b.Flows || a.Completed != b.Completed || a.AFCT != b.AFCT ||
		a.MaxFCT != b.MaxFCT || a.Retx != b.Retx || a.Timeouts != b.Timeouts {
		t.Fatalf("exact metrics diverge:\nstored %+v\nstream %+v", a, b)
	}
	if stored.Queues != got.Queues {
		t.Fatalf("queue totals diverge:\nstored %+v\nstream %+v", stored.Queues, got.Queues)
	}
	if stored.CtrlMessages != got.CtrlMessages || stored.CtrlMessages == 0 {
		t.Fatalf("credit message totals diverge (or zero): stored %d, stream %d",
			stored.CtrlMessages, got.CtrlMessages)
	}
	eps := metrics.DefaultSketchEps
	for _, q := range []struct {
		name       string
		got, exact int64
	}{
		{"P50", int64(b.P50), int64(a.P50)},
		{"P99", int64(b.P99), int64(a.P99)},
	} {
		if math.Abs(float64(q.got-q.exact)) > eps*float64(q.exact)+1 {
			t.Fatalf("%s: stream %d vs stored %d beyond eps %g", q.name, q.got, q.exact, eps)
		}
	}
}

// TestExpressPassFaultedDigest: link flaps, drops and corruption must
// not break sharded determinism — the faulted digest is identical at
// every shard count (credits and credit requests lost to faults are
// recovered by the sender's RTO re-request).
func TestExpressPassFaultedDigest(t *testing.T) {
	cfg := shardPoint(ExpressPass, LeftRight)
	cfg.Faults = &faults.Plan{
		Seed: 3,
		Links: []faults.LinkFault{
			{Link: -1, At: 2 * sim.Millisecond, For: 300 * sim.Microsecond, Every: 5 * sim.Millisecond},
		},
		Loss: []faults.LossFault{
			{Link: -1, Class: faults.Any, Rate: 0.02},
			{Link: -1, Class: faults.DataClass, Corrupt: 0.01},
		},
	}
	want := digestResult(runShards(t, cfg, 0))
	if rerun := digestResult(runShards(t, cfg, 0)); rerun != want {
		t.Fatalf("faulted serial run not deterministic: %#x vs %#x", rerun, want)
	}
	for _, shards := range []int{2, 4} {
		if got := digestResult(runShards(t, cfg, shards)); got != want {
			t.Errorf("shards=%d: faulted digest %#x, want serial %#x", shards, got, want)
		}
	}
}

// TestExpressPassIncastBounded is the headline regression: in the
// 64→1 and 256→1 incasts at 100 Gbps, ExpressPass must complete every
// flow with zero data-plane drops and a data-queue peak bounded far
// below the buffer, while DCTCP — with more synchronized senders than
// buffer slots in the 256→1 case — overruns and drops. Runs execute
// under the invariant checker (credit_pace, queue_cap, conservation).
func TestExpressPassIncastBounded(t *testing.T) {
	for _, s := range []Scenario{Incast64, Incast256} {
		s := s
		t.Run(string(s), func(t *testing.T) {
			t.Parallel()
			cfg := PointConfig{Protocol: ExpressPass, Scenario: s,
				Load: 0.7, Seed: 7, NumFlows: 1000, Check: true}
			ep := RunPoint(cfg)
			if ep.Violations != 0 {
				t.Fatalf("invariant checker reported %d violations:\n%v",
					ep.Violations, ep.CheckViolations)
			}
			if ep.Summary.Completed != ep.Summary.Flows {
				t.Fatalf("%d of %d flows completed", ep.Summary.Completed, ep.Summary.Flows)
			}
			if ep.Queues.DroppedData != 0 {
				t.Fatalf("ExpressPass dropped %d data packets; credit shaping must prevent all data drops",
					ep.Queues.DroppedData)
			}
			if ep.Queues.MaxLen > DCTCPQueueSize/2 {
				t.Fatalf("ExpressPass data-queue peak %d is not bounded well below the %d-packet buffer",
					ep.Queues.MaxLen, DCTCPQueueSize)
			}
			if ep.CtrlMessages == 0 {
				t.Fatal("no credit-plane messages recorded")
			}

			cfg.Protocol = DCTCP
			dc := RunPoint(cfg)
			if s == Incast256 && dc.Queues.DroppedData == 0 {
				t.Fatal("DCTCP 256→1 incast dropped nothing; the scenario no longer stresses the buffer")
			}
			if ep.Queues.MaxLen >= dc.Queues.MaxLen {
				t.Fatalf("ExpressPass queue peak %d not below DCTCP's %d",
					ep.Queues.MaxLen, dc.Queues.MaxLen)
			}
		})
	}
}

// TestHighspeedScenariosRun sweeps the remaining high-speed scenario
// family under the checker: every link rate and the shallow-buffer
// variant must run clean for ExpressPass, and the shallow variant must
// stay drop-free where rate-scaled buffering no longer hides bursts.
func TestHighspeedScenariosRun(t *testing.T) {
	for _, s := range []Scenario{Highspeed10, Highspeed40, Highspeed100, HighspeedShallow} {
		s := s
		t.Run(string(s), func(t *testing.T) {
			t.Parallel()
			r := RunPoint(PointConfig{Protocol: ExpressPass, Scenario: s,
				Load: 0.5, Seed: 3, NumFlows: 400, Check: true})
			if r.Violations != 0 {
				t.Fatalf("invariant checker reported %d violations:\n%v",
					r.Violations, r.CheckViolations)
			}
			if r.Summary.Completed != r.Summary.Flows {
				t.Fatalf("%d of %d flows completed", r.Summary.Completed, r.Summary.Flows)
			}
			if r.Queues.DroppedData != 0 {
				t.Fatalf("dropped %d data packets", r.Queues.DroppedData)
			}
		})
	}
}
