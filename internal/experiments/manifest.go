package experiments

import (
	"encoding/json"
	"io"
	"runtime/debug"
	"time"

	"pase/internal/obs"
)

// Manifest is the JSON record emitted alongside a figure's TSV: the
// parameters, seeds, code revision, wall-clock cost and merged
// observability snapshot of one run — enough to reproduce it and to
// diff two runs counter by counter.
type Manifest struct {
	Tool      string `json:"tool"`
	Figure    string `json:"figure,omitempty"`
	Title     string `json:"title,omitempty"`
	GitRev    string `json:"git_rev,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	// Started is the wall-clock start in RFC 3339; WallClockMS is the
	// run's real-time cost.
	Started     string  `json:"started,omitempty"`
	WallClockMS float64 `json:"wall_clock_ms"`

	Params ManifestParams `json:"params"`

	// Points / Retx / Timeouts summarize the grid.
	Points   int   `json:"points"`
	Retx     int64 `json:"retx"`
	Timeouts int64 `json:"timeouts"`

	// Snapshot is the deterministically merged observability of every
	// simulation point (input-order merge; identical bytes at every
	// parallelism setting).
	Snapshot *obs.Snapshot `json:"snapshot,omitempty"`
}

// ManifestParams is the serializable subset of Opts.
type ManifestParams struct {
	NumFlows    int       `json:"num_flows,omitempty"`
	Seed        uint64    `json:"seed"`
	Seeds       int       `json:"seeds,omitempty"`
	Loads       []float64 `json:"loads,omitempty"`
	Parallelism int       `json:"parallelism,omitempty"`
	// Faults is the canonical fault-plan spec applied to the run
	// (empty when no faults were injected).
	Faults string `json:"faults,omitempty"`
}

// GitRev returns the VCS revision baked into the binary by the Go
// toolchain ("" outside a VCS build). A "+dirty" suffix marks
// uncommitted changes.
func GitRev() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "+dirty"
			}
		}
	}
	return rev + modified
}

// NewManifest assembles the manifest for one figure run.
func NewManifest(tool string, res *Result, o Opts, started time.Time, wall time.Duration) *Manifest {
	m := &Manifest{
		Tool:        tool,
		GitRev:      GitRev(),
		Started:     started.UTC().Format(time.RFC3339),
		WallClockMS: float64(wall) / float64(time.Millisecond),
		Params: ManifestParams{
			NumFlows:    o.NumFlows,
			Seed:        o.Seed,
			Seeds:       o.Seeds,
			Loads:       o.Loads,
			Parallelism: o.Parallelism,
		},
	}
	if !o.Faults.Empty() {
		m.Params.Faults = o.Faults.String()
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		m.GoVersion = bi.GoVersion
	}
	if res != nil {
		m.Figure = res.ID
		m.Title = res.Title
		m.Points = res.Points
		m.Retx = res.Retx
		m.Timeouts = res.Timeouts
		m.Snapshot = res.Obs
	}
	return m
}

// Write emits the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
