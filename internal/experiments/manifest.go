package experiments

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"pase/internal/obs"
)

// Manifest is the JSON record emitted alongside a figure's TSV: the
// parameters, seeds, code revision, wall-clock cost and merged
// observability snapshot of one run — enough to reproduce it and to
// diff two runs counter by counter.
type Manifest struct {
	Tool      string `json:"tool"`
	Figure    string `json:"figure,omitempty"`
	Title     string `json:"title,omitempty"`
	GitRev    string `json:"git_rev,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	// Started is the wall-clock start in RFC 3339; WallClockMS is the
	// run's real-time cost.
	Started     string  `json:"started,omitempty"`
	WallClockMS float64 `json:"wall_clock_ms"`

	Params ManifestParams `json:"params"`

	// Points / Retx / Timeouts summarize the grid.
	Points   int   `json:"points"`
	Retx     int64 `json:"retx"`
	Timeouts int64 `json:"timeouts"`

	// PeakRSSBytes is the process's high-water resident set
	// (VmHWM from /proc/self/status; 0 where unavailable) and
	// HeapSysBytes the Go heap's footprint at manifest time. Together
	// they pin the memory cost of a run — the number the streaming
	// scale figure exists to keep flat.
	PeakRSSBytes int64  `json:"peak_rss_bytes,omitempty"`
	HeapSysBytes uint64 `json:"heap_sys_bytes,omitempty"`

	// Snapshot is the deterministically merged observability of every
	// simulation point (input-order merge; identical bytes at every
	// parallelism setting).
	Snapshot *obs.Snapshot `json:"snapshot,omitempty"`
}

// ManifestParams is the serializable subset of Opts.
type ManifestParams struct {
	NumFlows    int       `json:"num_flows,omitempty"`
	Seed        uint64    `json:"seed"`
	Seeds       int       `json:"seeds,omitempty"`
	Loads       []float64 `json:"loads,omitempty"`
	Parallelism int       `json:"parallelism,omitempty"`
	// Faults is the canonical fault-plan spec applied to the run
	// (empty when no faults were injected).
	Faults string `json:"faults,omitempty"`
	// Stream records that the run used the bounded-memory streaming
	// path; SketchEps is the quantile sketch's relative error bound
	// (0 = metrics.DefaultSketchEps).
	Stream    bool    `json:"stream,omitempty"`
	SketchEps float64 `json:"sketch_eps,omitempty"`
	// Shards records the per-point engine shard count (0/1 = serial;
	// results are byte-identical either way).
	Shards int `json:"shards,omitempty"`
}

// GitRev returns the VCS revision baked into the binary by the Go
// toolchain ("" outside a VCS build). A "+dirty" suffix marks
// uncommitted changes.
func GitRev() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "+dirty"
			}
		}
	}
	return rev + modified
}

// NewManifest assembles the manifest for one figure run.
func NewManifest(tool string, res *Result, o Opts, started time.Time, wall time.Duration) *Manifest {
	m := &Manifest{
		Tool:        tool,
		GitRev:      GitRev(),
		Started:     started.UTC().Format(time.RFC3339),
		WallClockMS: float64(wall) / float64(time.Millisecond),
		Params: ManifestParams{
			NumFlows:    o.NumFlows,
			Seed:        o.Seed,
			Seeds:       o.Seeds,
			Loads:       o.Loads,
			Parallelism: o.Parallelism,
			Stream:      o.Stream,
			SketchEps:   o.SketchEps,
			Shards:      o.Shards,
		},
		PeakRSSBytes: peakRSS(),
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.HeapSysBytes = ms.HeapSys
	if !o.Faults.Empty() {
		m.Params.Faults = o.Faults.String()
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		m.GoVersion = bi.GoVersion
	}
	if res != nil {
		m.Figure = res.ID
		m.Title = res.Title
		m.Points = res.Points
		m.Retx = res.Retx
		m.Timeouts = res.Timeouts
		m.Snapshot = res.Obs
	}
	return m
}

// peakRSS reads the process's high-water resident set from Linux's
// /proc/self/status (the VmHWM line, reported in kB). It returns 0 on
// platforms without procfs or when the line is missing — the manifest
// field is best-effort, not a portability promise.
func peakRSS() int64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// Write emits the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
