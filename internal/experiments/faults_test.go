package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pase/internal/faults"
	"pase/internal/obs"
	"pase/internal/sim"
)

// chaosPlan is the soak schedule: every fault type at once, each
// severe enough to bite but none a permanent blackhole — links always
// come back, arbitrators always restart, loss is probabilistic. Every
// flow must therefore still complete.
func chaosPlan() *faults.Plan {
	return &faults.Plan{
		Seed: 3,
		Links: []faults.LinkFault{
			{Link: -1, At: 2 * sim.Millisecond, For: 300 * sim.Microsecond, Every: 5 * sim.Millisecond},
		},
		Loss: []faults.LossFault{
			{Link: -1, Class: faults.Any, Rate: 0.02},
			{Link: -1, Class: faults.DataClass, Corrupt: 0.01},
		},
		Ctrl: []faults.CtrlFault{
			{Drop: 0.3, Delay: 20 * sim.Microsecond},
		},
		Crashes: []faults.CrashFault{
			{Link: -1, At: 7 * sim.Millisecond, For: 700 * sim.Microsecond, Every: 9 * sim.Millisecond},
		},
	}
}

// TestChaosSoak runs PASE through the full chaos plan with the
// invariant checker attached: link flaps, data loss and corruption,
// a lossy slow control plane and periodic arbitrator crashes. The
// graceful-degradation contract says every flow still completes and
// no invariant breaks. `make chaos-smoke` runs this under PASE_CHECK=1.
func TestChaosSoak(t *testing.T) {
	r := RunPoint(PointConfig{
		Protocol: PASE, Scenario: LeftRight, Load: 0.6,
		Seed: 11, NumFlows: 200,
		Check: true, Obs: true,
		Faults: chaosPlan(),
	})
	if r.Violations != 0 {
		t.Fatalf("invariant checker reported %d violations:\n%v",
			r.Violations, r.CheckViolations)
	}
	if r.Summary.Completed != r.Summary.Flows {
		t.Fatalf("%d of %d flows completed under chaos",
			r.Summary.Completed, r.Summary.Flows)
	}
	// Every fault class must actually have fired — a soak that injects
	// nothing proves nothing.
	for _, c := range []string{
		"faults/link_down", "faults/link_up", "faults/drop_data",
		"faults/ctrl_req_drop", "faults/arb_crash", "faults/arb_restart",
	} {
		if r.Obs.Counters[c] == 0 {
			t.Errorf("counter %s = 0, want > 0 (counters: %v)", c, r.Obs.Counters)
		}
	}
	// The endpoints must have exercised the degradation path: retries
	// against the lossy control plane, reusing the previous allocation.
	if r.Obs.Counters["pase/arb_retries"] == 0 {
		t.Error("no arbitration retries despite 30% control-plane loss")
	}
}

// TestChaosDeterminism re-runs the chaos point and requires identical
// behavior: the fault stream is seeded, so chaos is as reproducible as
// a clean run.
func TestChaosDeterminism(t *testing.T) {
	cfg := PointConfig{
		Protocol: PASE, Scenario: LeftRight, Load: 0.6,
		Seed: 11, NumFlows: 120, Faults: chaosPlan(),
	}
	a := digestResult(RunPoint(cfg))
	b := digestResult(RunPoint(cfg))
	if a != b {
		t.Fatalf("same chaos config, different digests: %#x vs %#x", a, b)
	}
}

// TestFaultPlanNonInterference pins the zero-fault guarantee: a nil
// plan, an empty plan and a plan whose every probability is zero all
// produce byte-identical figure TSVs, because zero-probability rules
// never consume an RNG draw and the fault stream is separate from the
// workload stream anyway.
func TestFaultPlanNonInterference(t *testing.T) {
	run := func(pl *faults.Plan) (string, *obs.Snapshot) {
		fig, ok := Lookup("9a")
		if !ok {
			t.Fatal("figure 9a not registered")
		}
		res := fig.Run(Opts{NumFlows: 100, Seed: 1, Seeds: 2,
			Loads: []float64{0.5}, Obs: true, Faults: pl})
		var buf bytes.Buffer
		if err := res.WriteTSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String(), res.Obs
	}
	nilTSV, nilSnap := run(nil)
	if nilTSV != goldenFig9aTSV {
		t.Fatalf("nil-plan TSV diverged from the golden pin:\n%s", nilTSV)
	}
	emptyTSV, emptySnap := run(&faults.Plan{})
	zeroTSV, zeroSnap := run(&faults.Plan{
		Links: nil,
		Loss:  []faults.LossFault{{Link: -1, Rate: 0, Corrupt: 0}},
		Ctrl:  []faults.CtrlFault{{Drop: 0}},
	})
	if emptyTSV != nilTSV {
		t.Error("empty plan changed the figure TSV")
	}
	if zeroTSV != nilTSV {
		t.Error("zero-probability plan changed the figure TSV")
	}
	// An empty plan never builds an injector, so even the snapshot is
	// identical; the zero-rate plan only adds its (all-zero) faults/*
	// counters.
	if !snapEqual(t, nilSnap, emptySnap) {
		t.Error("empty plan changed the merged snapshot")
	}
	for name, v := range zeroSnap.Counters {
		if strings.HasPrefix(name, "faults/") {
			if v != 0 {
				t.Errorf("zero-probability plan fired %s = %d", name, v)
			}
			delete(zeroSnap.Counters, name)
		}
	}
	if !snapEqual(t, nilSnap, zeroSnap) {
		t.Error("zero-probability plan changed the merged snapshot beyond its own zero counters")
	}
}

func snapEqual(t *testing.T, a, b *obs.Snapshot) bool {
	t.Helper()
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Equal(ja, jb)
}

// TestArbitratorCrashRebuild crashes every arbitrator once mid-run and
// lets them restart 500µs later: the soft-state wipe must not strand
// any flow (endpoints keep their previous allocation and re-sync on
// the next answered refresh) and no invariant may break.
func TestArbitratorCrashRebuild(t *testing.T) {
	r := RunPoint(PointConfig{
		Protocol: PASE, Scenario: LeftRight, Load: 0.6,
		Seed: 5, NumFlows: 150,
		Check: true, Obs: true,
		Faults: &faults.Plan{Crashes: []faults.CrashFault{
			{Link: -1, At: 3 * sim.Millisecond, For: 500 * sim.Microsecond},
		}},
	})
	if r.Violations != 0 {
		t.Fatalf("invariant checker reported %d violations:\n%v",
			r.Violations, r.CheckViolations)
	}
	if r.Summary.Completed != r.Summary.Flows {
		t.Fatalf("%d of %d flows completed across the crash",
			r.Summary.Completed, r.Summary.Flows)
	}
	if got := r.Obs.Counters["faults/arb_crash"]; got != 1 {
		t.Fatalf("faults/arb_crash = %d, want 1", got)
	}
	if got := r.Obs.Counters["faults/arb_restart"]; got != 1 {
		t.Fatalf("faults/arb_restart = %d, want 1", got)
	}
}

// TestFallbackCompletesWithoutControlPlane kills the control plane
// outright (100% message loss): every endpoint must hit the fallback
// deadline, drop to lowest-priority DCTCP mode, and still finish its
// transfer on data-plane mechanics alone.
func TestFallbackCompletesWithoutControlPlane(t *testing.T) {
	r := RunPoint(PointConfig{
		Protocol: PASE, Scenario: LeftRight, Load: 0.5,
		Seed: 2, NumFlows: 100,
		Check: true, Obs: true,
		Faults: &faults.Plan{Ctrl: []faults.CtrlFault{{Drop: 1}}},
	})
	if r.Violations != 0 {
		t.Fatalf("invariant checker reported %d violations:\n%v",
			r.Violations, r.CheckViolations)
	}
	if r.Summary.Completed != r.Summary.Flows {
		t.Fatalf("%d of %d flows completed without a control plane",
			r.Summary.Completed, r.Summary.Flows)
	}
	if r.Obs.Counters["pase/fallbacks"] == 0 {
		t.Error("no endpoint entered DCTCP-mode fallback despite 100% control loss")
	}
	if r.Obs.Counters["pase/resyncs"] != 0 {
		t.Error("endpoints re-synced with a 100%-lossy control plane")
	}
}

// TestRobustnessDegradesTowardDCTCP checks the shape of the robustness
// experiment at test scale: fault-free PASE beats the DCTCP baseline,
// heavy control-plane loss costs PASE performance, and even at 95%
// loss the fallback keeps PASE in the same regime as DCTCP instead of
// collapsing.
func TestRobustnessDegradesTowardDCTCP(t *testing.T) {
	point := func(drop float64, proto Protocol) float64 {
		cfg := PointConfig{Protocol: proto, Scenario: LeftRight,
			Load: 0.7, Seed: 1, NumFlows: 150}
		if drop > 0 {
			cfg.Faults = &faults.Plan{Ctrl: []faults.CtrlFault{{Drop: drop}}}
		}
		return RunPoint(cfg).Summary.AFCT.Millis()
	}
	clean := point(0, PASE)
	lossy := point(0.95, PASE)
	dctcp := point(0, DCTCP)
	if clean >= dctcp {
		t.Errorf("fault-free PASE (%.3f ms) not better than DCTCP (%.3f ms)", clean, dctcp)
	}
	if lossy <= clean {
		t.Errorf("95%% control loss did not degrade PASE: %.3f ms vs %.3f ms clean", lossy, clean)
	}
	// Degrade toward the baseline, not through the floor: the fallback
	// is DCTCP at the lowest priority, so a generous constant-factor
	// envelope around the DCTCP AFCT is the contract.
	if lossy > 3*dctcp {
		t.Errorf("degraded PASE (%.3f ms) collapsed far past the DCTCP baseline (%.3f ms)", lossy, dctcp)
	}
}
