package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"pase/internal/faults"
	"pase/internal/sim"
	"pase/internal/trace"
)

// The flight recorder's contract is the same as the rest of the run
// machinery: traced runs produce byte-identical output at every shard
// count, parallelism and collector mode. These tests pin the exported
// Perfetto bytes — the strongest form of that equality — plus the
// trace-derived observability counters.

func tracedPoint() PointConfig {
	return PointConfig{
		Protocol: DCTCP,
		Scenario: LeftRight,
		Load:     0.7,
		Seed:     11,
		NumFlows: 150,
		Check:    true,
		Trace: TraceConfig{
			FlowLog:     true,
			QueueSample: 100 * sim.Microsecond,
			Spans:       true,
		},
	}
}

// perfettoBytes runs cfg and exports the recorded trace.
func perfettoBytes(t *testing.T, cfg PointConfig) ([]byte, PointResult) {
	t.Helper()
	r := RunPoint(cfg)
	if r.Violations != 0 {
		t.Fatalf("invariant checker reported %d violations:\n%v", r.Violations, r.CheckViolations)
	}
	if r.Trace == nil {
		t.Fatal("no trace recorded")
	}
	var buf bytes.Buffer
	if err := r.Trace.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), r
}

// TestTracedShardedPerfettoIdentical is the tentpole pin: a traced run
// no longer falls back to serial, and the exported Perfetto JSON is
// byte-identical at shards 0 through 4, streamed or stored.
func TestTracedShardedPerfettoIdentical(t *testing.T) {
	cfg := tracedPoint()
	cfg.Obs = true
	want, serial := perfettoBytes(t, cfg)
	if n := serial.Obs.Counters["shard/fallback_serial"]; n != 0 {
		t.Fatalf("serial run counted %d fallbacks", n)
	}
	wantEvents, _ := flowEventsTSV(t, serial)
	for _, shards := range []int{1, 2, 3, 4} {
		for _, stream := range []bool{false, true} {
			c := cfg
			c.Shards = shards
			c.Stream = stream
			got, r := perfettoBytes(t, c)
			if r.Obs.Counters["shard/fallback_serial"] != 0 {
				t.Errorf("shards=%d stream=%v: traced run fell back to serial", shards, stream)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("shards=%d stream=%v: Perfetto bytes differ from serial (%d vs %d bytes)",
					shards, stream, len(got), len(want))
			}
			gotEvents, _ := flowEventsTSV(t, r)
			if gotEvents != wantEvents {
				t.Errorf("shards=%d stream=%v: flow-event TSV differs from serial", shards, stream)
			}
		}
	}
}

func flowEventsTSV(t *testing.T, r PointResult) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteFlowEvents(&buf, r.FlowEvents); err != nil {
		t.Fatal(err)
	}
	return buf.String(), len(r.FlowEvents)
}

// TestTracedChaosDeterminism: fault injection composes with tracing —
// a faulted, checked, sharded, streamed run traces identically to its
// serial twin, and the dropped control exchanges appear as spans.
func TestTracedChaosDeterminism(t *testing.T) {
	cfg := tracedPoint()
	cfg.Protocol = PASE // arbitration hierarchy + fault surface
	cfg.Faults = &faults.Plan{Seed: 5, Ctrl: []faults.CtrlFault{{Drop: 0.3}}}
	want, serial := perfettoBytes(t, cfg)
	if serial.Trace.Stats.CtrlTotal == 0 {
		t.Fatal("faulted PASE run recorded no control spans")
	}
	var dropped bool
	for _, c := range serial.Trace.Ctrl {
		if c.Outcome != 0 { // anything but CtrlOK
			dropped = true
			break
		}
	}
	if !dropped {
		t.Fatal("30% ctrl drop plan left no dropped-exchange spans")
	}
	// PASE cannot shard (fabric-synchronous control plane) but the
	// sharded entry point must still produce the identical trace.
	for _, shards := range []int{2, 4} {
		c := cfg
		c.Shards = shards
		if got, _ := perfettoBytes(t, c); !bytes.Equal(got, want) {
			t.Errorf("shards=%d: faulted trace differs from serial", shards)
		}
	}
}

// TestPASETraceCtrlAndHistograms: a traced PASE run records the full
// control-plane story — wait spans, grant marks, per-level arbitration
// RTT histograms and the inflight-allocations gauge.
func TestPASETraceCtrlAndHistograms(t *testing.T) {
	cfg := tracedPoint()
	cfg.Protocol = PASE
	cfg.Obs = true
	_, r := perfettoBytes(t, cfg)
	if r.Trace.Stats.CtrlTotal == 0 {
		t.Fatal("no control spans recorded")
	}
	var waits, grants int
	for _, ft := range r.Trace.Flows {
		if ft.WaitCtrl() > 0 {
			waits++
		}
		for _, m := range ft.Marks {
			if m.Kind.String() == "grant" {
				grants++
			}
		}
	}
	if waits == 0 || grants == 0 {
		t.Fatalf("PASE trace: %d flows with wait spans, %d grant marks — lifecycle not recorded", waits, grants)
	}
	snap := r.Obs
	var rttObs int64
	for _, lvl := range []string{"arb/rtt/level0", "arb/rtt/level1", "arb/rtt/level2", "arb/rtt/level3"} {
		h, ok := snap.Histograms[lvl]
		if !ok {
			t.Fatalf("missing histogram %s (have %d histograms)", lvl, len(snap.Histograms))
		}
		rttObs += h.Count
	}
	if rttObs == 0 {
		t.Fatal("arbitration RTT histograms empty")
	}
	if _, ok := snap.Gauges["arb/inflight_allocs"]; !ok {
		t.Fatal("missing arb/inflight_allocs gauge")
	}
	for _, c := range []string{"trace/flows_started", "trace/flows_final", "trace/ctrl_spans"} {
		if snap.Counters[c] == 0 {
			t.Fatalf("counter %s = 0", c)
		}
	}
}

// TestTraceSamplingKeepsBudget: 1-in-N sampling bounds retention while
// stats keep the full population count, identically at every shard
// count.
func TestTraceSamplingKeepsBudget(t *testing.T) {
	cfg := tracedPoint()
	cfg.Trace.SampleN = 8
	want, serial := perfettoBytes(t, cfg)
	st := serial.Trace.Stats
	if st.FlowsSampledOut == 0 {
		t.Fatal("sampleN=8 kept every flow")
	}
	if st.FlowsStarted != st.FlowsFinal+st.FlowsSampledOut+st.FlowsUnfinished+st.FlowsEvicted {
		t.Fatalf("retention stats don't add up: %+v", st)
	}
	c := cfg
	c.Shards = 3
	if got, r := perfettoBytes(t, c); !bytes.Equal(got, want) {
		t.Error("sampled trace differs across shard counts")
	} else if r.Trace.Stats != st {
		t.Errorf("stats differ across shard counts: %+v vs %+v", r.Trace.Stats, st)
	}
}

// TestGoldenPerfettoTrace pins a small traced run's exported bytes to
// a golden file. Regenerate with PASE_UPDATE=1 go test ./internal/experiments
// -run TestGoldenPerfettoTrace and review the diff like any golden.
func TestGoldenPerfettoTrace(t *testing.T) {
	cfg := PointConfig{
		Protocol: DCTCP, Scenario: LeftRight, Load: 0.6, Seed: 1, NumFlows: 40,
		Trace: TraceConfig{Spans: true, QueueSample: 200 * sim.Microsecond},
	}
	got, _ := perfettoBytes(t, cfg)
	if !json.Valid(got) {
		t.Fatal("exported trace is not valid JSON")
	}
	golden := filepath.Join("testdata", "golden_trace.json")
	if os.Getenv("PASE_UPDATE") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with PASE_UPDATE=1)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace bytes diverged from %s (%d vs %d bytes); regenerate with PASE_UPDATE=1 and review",
			golden, len(got), len(want))
	}
}
