package experiments

import (
	"bytes"
	"math"
	"os"
	"runtime"
	"testing"

	"pase/internal/metrics"
)

// TestStreamMatchesStoredCollector is the cross-check the scale figure
// rests on: the same point run stored and streaming must agree exactly
// on every sum-derived metric (flow counts, AFCT, MaxFCT, loss,
// retransmissions, control traffic) and within the sketch's ε on the
// quantiles.
func TestStreamMatchesStoredCollector(t *testing.T) {
	base := PointConfig{Protocol: DCTCP, Scenario: IntraRack, Load: 0.6, Seed: 1, NumFlows: 10_000}
	stored := RunPoint(base)

	streamed := base
	streamed.Stream = true
	got := RunPoint(streamed)

	a, b := stored.Summary, got.Summary
	if a.Flows != b.Flows || a.Completed != b.Completed || a.AFCT != b.AFCT ||
		a.MaxFCT != b.MaxFCT || a.Retx != b.Retx || a.Timeouts != b.Timeouts ||
		a.CtrlMessages != b.CtrlMessages {
		t.Fatalf("exact metrics diverge:\nstored %+v\nstream %+v", a, b)
	}
	if stored.LossRate != got.LossRate || stored.CtrlMessages != got.CtrlMessages {
		t.Fatalf("loss/ctrl diverge: %v/%d vs %v/%d",
			stored.LossRate, stored.CtrlMessages, got.LossRate, got.CtrlMessages)
	}
	eps := metrics.DefaultSketchEps
	for _, q := range []struct {
		name       string
		got, exact int64
	}{
		{"P50", int64(b.P50), int64(a.P50)},
		{"P99", int64(b.P99), int64(a.P99)},
	} {
		if math.Abs(float64(q.got-q.exact)) > eps*float64(q.exact)+1 {
			t.Fatalf("%s: stream %d vs stored %d beyond eps %g", q.name, q.got, q.exact, eps)
		}
	}
	if len(got.Records) != 0 {
		t.Fatalf("streaming run retained %d per-flow records, want 0", len(got.Records))
	}
	if len(got.CDF) != len(stored.CDF) {
		t.Fatalf("CDF lengths diverge: %d vs %d", len(got.CDF), len(stored.CDF))
	}
	for i := range got.CDF {
		if got.CDF[i].Fraction != stored.CDF[i].Fraction {
			t.Fatalf("CDF grid diverges at %d", i)
		}
	}
}

// TestStreamSketchCounters verifies the streaming point exports its
// sketch telemetry through the observability registry.
func TestStreamSketchCounters(t *testing.T) {
	r := RunPoint(PointConfig{Protocol: DCTCP, Scenario: IntraRack, Load: 0.5, Seed: 1,
		NumFlows: 200, Stream: true, Obs: true, Check: true})
	if r.Violations != 0 {
		t.Fatalf("checker reported %d violations: %v", r.Violations, r.CheckViolations)
	}
	if r.Obs == nil {
		t.Fatal("no obs snapshot")
	}
	c := r.Obs.Counters
	if c["metrics/sketch_adds"] != int64(r.Summary.Completed) {
		t.Fatalf("sketch_adds=%d, completed=%d", c["metrics/sketch_adds"], r.Summary.Completed)
	}
	if c["metrics/sketch_buckets_used"] <= 0 || c["metrics/stream_points"] != 1 {
		t.Fatalf("sketch counters missing: %v", c)
	}
}

// TestStreamParallelDeterminism runs the scale figure grid twice at
// different parallelism settings: the assembled series must be
// identical, streaming included.
func TestStreamParallelDeterminism(t *testing.T) {
	opts := func(par int) Opts {
		return Opts{NumFlows: 1000, Seed: 1, Loads: []float64{0.5}, Parallelism: par}
	}
	serial := figScale(opts(1))
	pooled := figScale(opts(4))
	if len(serial.Series) != len(pooled.Series) {
		t.Fatalf("series counts diverge: %d vs %d", len(serial.Series), len(pooled.Series))
	}
	for i := range serial.Series {
		a, b := serial.Series[i], pooled.Series[i]
		if a.Name != b.Name {
			t.Fatalf("series %d name %q vs %q", i, a.Name, b.Name)
		}
		for j := range a.Y {
			if a.X[j] != b.X[j] || a.Y[j] != b.Y[j] {
				t.Fatalf("series %q point %d diverges across parallelism: (%g,%g) vs (%g,%g)",
					a.Name, j, a.X[j], a.Y[j], b.X[j], b.Y[j])
			}
		}
	}
}

// TestStreamFig9aTSVIdentical pins storage-independence end to end: an
// AFCT sweep figure rendered from streaming points must be
// byte-identical to the stored-mode TSV, because every series value it
// plots is an exact sum, not a sketch estimate.
func TestStreamFig9aTSVIdentical(t *testing.T) {
	opts := Opts{NumFlows: 300, Seed: 1, Loads: []float64{0.5, 0.7}, Parallelism: 2}
	var stored, streamed bytes.Buffer
	if err := fig9a(opts).WriteTSV(&stored); err != nil {
		t.Fatal(err)
	}
	opts.Stream = true
	if err := fig9a(opts).WriteTSV(&streamed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stored.Bytes(), streamed.Bytes()) {
		t.Fatalf("fig9a TSV diverges under -stream:\nstored:\n%s\nstreamed:\n%s",
			stored.String(), streamed.String())
	}
}

// TestScaleSmoke is the CI gate for the scale figure (`make
// scale-smoke`): it runs the streaming sweep and, when
// PASE_SCALE_SMOKE is set (a dedicated test process, so earlier tests
// have not inflated the heap), holds the whole 10^5-flow run under a
// 256 MB Go-heap ceiling — the bounded-memory claim as an executable
// assertion.
func TestScaleSmoke(t *testing.T) {
	top := 20_000
	gate := os.Getenv("PASE_SCALE_SMOKE") != ""
	if gate {
		top = 100_000
	} else if testing.Short() {
		t.Skip("short mode")
	}
	res := figScale(Opts{NumFlows: top, Seed: 1})
	if res.Points != 6 {
		t.Fatalf("scale figure ran %d points, want 6", res.Points)
	}
	for _, s := range res.Series {
		if len(s.X) != 3 {
			t.Fatalf("series %q has %d points, want 3", s.Name, len(s.X))
		}
		if s.X[2] != float64(top) {
			t.Fatalf("series %q tops out at %g flows, want %d", s.Name, s.X[2], top)
		}
		for j, y := range s.Y {
			if y <= 0 {
				t.Fatalf("series %q point %d: non-positive FCT %g", s.Name, j, y)
			}
		}
	}
	if res.Violations != 0 {
		t.Fatalf("%d invariant violations", res.Violations)
	}
	if gate {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		const ceiling = 256 << 20
		if ms.HeapSys > ceiling {
			t.Fatalf("heap grew to %d MB, ceiling %d MB — streaming path is leaking per-flow state",
				ms.HeapSys>>20, int64(ceiling)>>20)
		}
		t.Logf("HeapSys after %d-flow sweep: %d MB", top, ms.HeapSys>>20)
	}
}
