package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"pase/internal/check"
	"pase/internal/core"
	"pase/internal/core/arbitration"
	"pase/internal/core/endhost"
	"pase/internal/faults"
	"pase/internal/metrics"
	"pase/internal/netem"
	"pase/internal/obs"
	"pase/internal/pkt"
	"pase/internal/route"
	"pase/internal/sim"
	"pase/internal/topology"
	"pase/internal/trace"
	"pase/internal/transport"
	"pase/internal/transport/d2tcp"
	"pase/internal/transport/dctcp"
	"pase/internal/transport/expresspass"
	"pase/internal/transport/l2dct"
	"pase/internal/transport/pdq"
	"pase/internal/transport/pfabric"
	"pase/internal/workload"
)

// Protocol names a transport under evaluation.
type Protocol string

// The protocols compared in the paper.
const (
	DCTCP   Protocol = "DCTCP"
	D2TCP   Protocol = "D2TCP"
	L2DCT   Protocol = "L2DCT"
	PFabric Protocol = "pFabric"
	PDQ     Protocol = "PDQ"
	PASE    Protocol = "PASE"
	// ExpressPass is the credit-based seventh transport (Cho et al.,
	// SIGCOMM 2017): receiver-paced credits, switch credit shaping,
	// data queues bounded by construction.
	ExpressPass Protocol = "ExpressPass"
)

// Scenario names an evaluation setting from §4.
type Scenario string

// The paper's scenarios.
const (
	// LeftRight: baseline 3-tier fabric, 80 left-subtree hosts send to
	// 80 right-subtree hosts; the agg-core link is the bottleneck.
	LeftRight Scenario = "left-right"
	// IntraRack: 20-host single rack, all-to-all, short flows
	// U[2,198] KB.
	IntraRack Scenario = "intra-rack"
	// IntraRackLarge: 20-host single rack, U[100,500] KB (Fig 2, 13a).
	IntraRackLarge Scenario = "intra-rack-large"
	// WorkerAgg: the search-style all-to-all of Figures 4 and 10c —
	// every query triggers simultaneous responses from 10 random
	// workers to one aggregator (aggregators round-robin), responses
	// U[2,198] KB.
	WorkerAgg Scenario = "worker-agg"
	// Deadline: 20-host single rack, U[100,500] KB with 5–25 ms
	// deadlines (the D2TCP experiment the paper replicates).
	Deadline Scenario = "deadline"
	// Testbed: 10 nodes, 9 clients → 1 server, 1 Gbps, 250 µs RTT,
	// K = 20, 100-pkt queues (§4.4).
	Testbed Scenario = "testbed"
	// LeafSpine: extension — a 4-leaf × 2-spine multipath fabric with
	// per-flow ECMP; flows cross leaves (short-message workload).
	LeafSpine Scenario = "leaf-spine"
	// LeafSpineWide: a wider 8-leaf × 4-spine fabric (80 hosts,
	// 12 partition atoms) used by the sharded-engine benchmarks — enough
	// atoms that -shards 8 still gets distinct work per shard.
	LeafSpineWide Scenario = "leaf-spine-wide"
	// TEFailover: a 4-leaf × 3-spine fabric (non-power-of-two spine
	// count, so ECMP bucket math gets exercised off the easy modulus)
	// for the routing-control-loop experiments: chaos plans down
	// leaf↔spine links mid-run and the reactive reroute + hotspot-TE
	// loop keeps flows alive.
	TEFailover Scenario = "te-failover"
	// The highspeed family: scenarios the paper never had, where
	// credit-based and window/arbitration-based control diverge most.
	// Highspeed10/40/100 sweep a single-rack all-to-all fabric across
	// 10/40/100 Gbps link rates; HighspeedShallow is the 100 Gbps
	// point with shallow (64-packet) switch buffers; Incast64 and
	// Incast256 converge that many senders on one receiver's 100 Gbps
	// access link.
	Highspeed10      Scenario = "highspeed-10"
	Highspeed40      Scenario = "highspeed-40"
	Highspeed100     Scenario = "highspeed-100"
	HighspeedShallow Scenario = "highspeed-shallow"
	Incast64         Scenario = "incast-64"
	Incast256        Scenario = "incast-256"
	// CtrlScale is the control-plane-at-scale family: "ctrlscale" is
	// the 64-rack default and "ctrlscale-<racks>" picks the rack count
	// (the ctrlscale figure sweeps 16 → 2048). A fixed aggregate
	// workload spreads all-to-all over a growing fabric, so the data
	// plane's job stays comparable while the control plane's span
	// grows — the axis the figure measures. PASE runs the deep
	// hierarchy here by default (fan-out 4, sharded root).
	CtrlScale Scenario = "ctrlscale"
)

// PASEOptions select PASE ablations.
type PASEOptions struct {
	LocalOnly      bool // Fig 12a: host-local arbitration only
	NoPruning      bool // Fig 11: disable early pruning
	NoDelegation   bool // Fig 11: disable delegation
	NumQueues      int  // Fig 12b: 0 = default (8)
	DisableRefRate bool // Fig 13a: PASE-DCTCP
	DisableProbing bool // §4.3.2 ablation
	NoReorderGuard bool
	// TaskAware swaps the scheduling criterion from remaining size to
	// task id for task-carrying flows (Baraat-style; §3.1.1).
	TaskAware bool
	// Central swaps the arbitration hierarchy for the fully
	// centralized comparison arm (one controller computes whole-path
	// allocations; hierarchy, delegation and pruning are ignored).
	Central bool
	// HierFanOut / HierTopShards override the scenario's deep-
	// hierarchy shape (0 = keep the scenario default; most scenarios
	// default to the classic flat 3-tier climb).
	HierFanOut    int
	HierTopShards int
}

// TraceConfig selects optional per-point tracing.
type TraceConfig struct {
	// FlowLog records flow start/done/abort events.
	FlowLog bool
	// QueueSample, when positive, samples every queue's occupancy at
	// this interval.
	QueueSample sim.Duration
	// Spans enables the span-based flight recorder: per-flow lifecycle
	// spans (wait-for-control, transmission epochs per priority queue,
	// retx/timeout/fallback marks) plus control-plane exchange spans,
	// merged into PointResult.Trace in canonical order.
	Spans bool
	// SampleN keeps 1 in N flow traces (0 or 1 = every flow). Flows
	// that misbehaved — retransmissions, timeouts, fallback, abort —
	// are always kept regardless of the draw.
	SampleN int
	// FlowCap / FlowLogCap / SampleCap bound the retained flow traces,
	// flow-log events and queue samples (0 = package defaults).
	FlowCap    int
	FlowLogCap int
	SampleCap  int
	// FlowLogWriter, with FlowLog, streams flow events to this writer
	// as canonical TSV instead of retaining them — the bounded-memory
	// pairing for Stream runs. Serial only (forces the serial engine).
	FlowLogWriter io.Writer
	// SpanWriter, with Spans, streams the Perfetto trace at flow
	// completion instead of retaining traces. Serial only.
	SpanWriter io.Writer
}

// Enabled reports whether any tracing is requested.
func (t TraceConfig) Enabled() bool { return t.FlowLog || t.QueueSample > 0 || t.Spans }

// spills reports whether any trace output streams to a writer; spill
// streams have a single writer, so spilling runs stay serial.
func (t TraceConfig) spills() bool { return t.FlowLogWriter != nil || t.SpanWriter != nil }

// PointConfig is one (protocol, scenario, load) simulation.
type PointConfig struct {
	Protocol Protocol
	Scenario Scenario
	Load     float64
	Seed     uint64
	// NumFlows is the number of foreground flows (0 = 2000).
	NumFlows int
	PASE     PASEOptions
	// Obs attaches an observability Registry to the run and returns
	// its Snapshot in the result.
	Obs bool
	// Check attaches the runtime invariant checker to the run: queue
	// conservation/capacity/ordering, ECN marking, arbitration
	// feasibility, clock monotonicity and FCT lower bounds are all
	// verified, and violations land in PointResult (plus the obs
	// snapshot when Obs is also set). The PASE_CHECK environment
	// variable force-enables this for every run.
	Check bool
	// Trace selects flow-event and queue-occupancy tracing.
	Trace TraceConfig
	// Faults is the run's fault-injection plan. Nil or empty leaves the
	// run byte-identical to a fault-free one (the injector is never
	// built and the fault RNG stream is never created).
	Faults *faults.Plan
	// Route enables the reactive routing control loop (failure
	// rerouting and/or hotspot TE) on leaf-spine fabrics. The zero
	// value leaves routing frozen at the build-time ECMP hash and the
	// run byte-identical to one before the control loop existed.
	Route route.Config
	// AbortAfter, when positive, makes every sender abort its flow
	// after this much time without forward progress (new data acked).
	// Aborted flows are excluded from AFCT and reported separately in
	// the Summary. Zero disables aborts.
	AbortAfter sim.Duration
	// Stream runs the point through the bounded-memory path: arrivals
	// are pulled from workload.Spec.Stream one at a time and flow
	// records land in a metrics.StreamCollector, so memory is
	// O(in-flight flows) instead of O(NumFlows). Flows, Completed,
	// AFCT, MaxFCT, Retx and Timeouts are exactly the stored-mode
	// values; P50/P99 and the CDF are within the sketch's ε. Records
	// (per-flow outcomes) are not retained.
	Stream bool
	// SketchEps is the streaming quantile sketch's relative error
	// bound (0 = metrics.DefaultSketchEps).
	SketchEps float64
	// Shards splits the single run across this many engine shards
	// synchronized by conservative lookahead (0 or 1 = serial).
	// Results are byte-identical to serial at every shard count —
	// including trace output: traced runs shard too, recording into
	// per-shard buffers merged in canonical order. Protocols with
	// fabric-synchronous control planes (PASE, PDQ), spill-mode trace
	// writers, and single-atom fabrics fall back to serial — the
	// shard/fallback_serial counter records it when Obs is set.
	Shards int
}

// PointResult is what one simulation yields.
type PointResult struct {
	Summary metrics.Summary
	// LossRate is dropped data packets over data enqueue attempts
	// across every queue in the fabric.
	LossRate float64
	// CtrlMessages counts arbitration (PASE), header-exchange (PDQ) or
	// credit-plane (ExpressPass) control messages.
	CtrlMessages int64
	CDF          []metrics.CDFPoint
	Queues       netem.QueueStats
	// Records holds the per-flow outcomes of the run.
	Records []metrics.FlowRecord
	// Obs is the run's observability snapshot (nil unless
	// PointConfig.Obs was set).
	Obs *obs.Snapshot
	// Violations counts invariant breaches observed by the checker
	// (always 0 unless PointConfig.Check or PASE_CHECK was set — and 0
	// then too unless the simulator is broken); CheckViolations holds
	// the retained details.
	Violations      int64
	CheckViolations []check.Violation
	// FlowEvents / QueueSamples hold the optional traces.
	FlowEvents   []trace.FlowEvent
	QueueSamples []trace.QueueSample
	// Trace is the flight recording (nil unless TraceConfig.Spans was
	// set). In spill mode the flow traces have already streamed to the
	// writer; Trace still carries control spans, stats and meta.
	Trace *trace.RunTrace
}

// scenarioSpec bundles what a scenario needs.
type scenarioSpec struct {
	topo func(newQueue func(topology.QueueKind) netem.Queue) topology.Config
	// buildLS, when set, builds a leaf-spine fabric instead of a tree.
	buildLS   *topology.LeafSpineConfig
	pattern   func(n *topology.Network) workload.Pattern
	sizes     workload.SizeDist
	reference netem.BitRate
	deadlines bool
	fanin     int
	bgFlows   int
	markK     int // ECN threshold
	qSize     int // DCTCP-family / PASE buffer scale
	epoch     sim.Duration
	// hier is the deep arbitration hierarchy PASE uses on this
	// scenario (zero = classic flat 3-tier climb).
	hier arbitration.HierarchyParams
}

// teFailoverLS is the te-failover fabric: DefaultLeafSpine widened to
// three spines. The te figure's fault plans compute link IDs from it,
// so the scenario and the plans share one shape.
func teFailoverLS() topology.LeafSpineConfig {
	ls := topology.DefaultLeafSpine(nil)
	ls.Spines = 3
	return ls
}

func scenario(s Scenario) scenarioSpec {
	if racks := ctrlScaleRacks(s); racks > 0 {
		return ctrlScaleSpec(racks)
	}
	switch s {
	case LeftRight:
		return scenarioSpec{
			topo: topology.Baseline,
			pattern: func(n *topology.Network) workload.Pattern {
				return workload.LeftRight{
					Left:  workload.HostRange(0, 80),
					Right: workload.HostRange(80, 160),
				}
			},
			sizes:     workload.UniformSize{Min: ShortFlowMin, Max: ShortFlowMax},
			reference: leftRightReference,
			bgFlows:   BackgroundFlows,
			markK:     MarkingThreshold,
			qSize:     DCTCPQueueSize,
			epoch:     300 * sim.Microsecond,
		}
	case IntraRack:
		return scenarioSpec{
			topo: func(nq func(topology.QueueKind) netem.Queue) topology.Config {
				return topology.SingleRack(IntraRackHosts, nq)
			},
			pattern: func(n *topology.Network) workload.Pattern {
				return workload.AllToAll{Hosts: workload.HostRange(0, IntraRackHosts)}
			},
			sizes:     workload.UniformSize{Min: ShortFlowMin, Max: ShortFlowMax},
			reference: intraRackReference(IntraRackHosts),
			bgFlows:   BackgroundFlows,
			markK:     MarkingThreshold,
			qSize:     DCTCPQueueSize,
			epoch:     100 * sim.Microsecond,
		}
	case IntraRackLarge:
		sp := scenario(IntraRack)
		sp.sizes = workload.UniformSize{Min: DeadlineFlowMin, Max: DeadlineFlowMax}
		return sp
	case WorkerAgg:
		sp := scenario(IntraRack)
		sp.fanin = WorkerFanin
		return sp
	case Deadline:
		sp := scenario(IntraRackLarge)
		sp.deadlines = true
		return sp
	case LeafSpine:
		ls := topology.DefaultLeafSpine(nil)
		return scenarioSpec{
			buildLS: &ls,
			pattern: func(n *topology.Network) workload.Pattern {
				return workload.AllToAll{Hosts: workload.HostRange(0, ls.Leaves*ls.HostsPerLeaf)}
			},
			sizes: workload.UniformSize{Min: ShortFlowMin, Max: ShortFlowMax},
			// Load is defined against the total leaf-spine fabric
			// capacity actually reachable by edge-limited hosts.
			reference: netem.BitRate(ls.Leaves*ls.HostsPerLeaf) * netem.Gbps,
			bgFlows:   BackgroundFlows,
			markK:     MarkingThreshold,
			qSize:     DCTCPQueueSize,
			epoch:     200 * sim.Microsecond,
		}
	case LeafSpineWide:
		ls := topology.DefaultLeafSpine(nil)
		ls.Leaves, ls.Spines = 8, 4
		return scenarioSpec{
			buildLS: &ls,
			pattern: func(n *topology.Network) workload.Pattern {
				return workload.AllToAll{Hosts: workload.HostRange(0, ls.Leaves*ls.HostsPerLeaf)}
			},
			sizes:     workload.UniformSize{Min: ShortFlowMin, Max: ShortFlowMax},
			reference: netem.BitRate(ls.Leaves*ls.HostsPerLeaf) * netem.Gbps,
			bgFlows:   BackgroundFlows,
			markK:     MarkingThreshold,
			qSize:     DCTCPQueueSize,
			epoch:     200 * sim.Microsecond,
		}
	case TEFailover:
		ls := teFailoverLS()
		return scenarioSpec{
			buildLS: &ls,
			pattern: func(n *topology.Network) workload.Pattern {
				return workload.AllToAll{Hosts: workload.HostRange(0, ls.Leaves*ls.HostsPerLeaf)}
			},
			sizes:     workload.UniformSize{Min: ShortFlowMin, Max: ShortFlowMax},
			reference: netem.BitRate(ls.Leaves*ls.HostsPerLeaf) * netem.Gbps,
			bgFlows:   BackgroundFlows,
			markK:     MarkingThreshold,
			qSize:     DCTCPQueueSize,
			epoch:     200 * sim.Microsecond,
		}
	case Highspeed10:
		return highspeedSpec(10*netem.Gbps, HighspeedHosts, DCTCPQueueSize, MarkingThreshold)
	case Highspeed40:
		return highspeedSpec(40*netem.Gbps, HighspeedHosts, 4*DCTCPQueueSize, 4*MarkingThreshold)
	case Highspeed100:
		return highspeedSpec(100*netem.Gbps, HighspeedHosts, 10*DCTCPQueueSize, 10*MarkingThreshold)
	case HighspeedShallow:
		return highspeedSpec(100*netem.Gbps, HighspeedHosts, ShallowQueueSize, ShallowMarkK)
	case Incast64:
		return incastSpec(64, 100*netem.Gbps)
	case Incast256:
		return incastSpec(256, 100*netem.Gbps)
	case Testbed:
		return scenarioSpec{
			topo: topology.Testbed,
			pattern: func(n *topology.Network) workload.Pattern {
				return workload.LeftRight{
					Left:  workload.HostRange(0, 9),
					Right: []pkt.NodeID{9},
				}
			},
			sizes:     workload.UniformSize{Min: DeadlineFlowMin, Max: DeadlineFlowMax},
			reference: netem.Gbps, // the server's access link
			bgFlows:   1,
			markK:     20,
			qSize:     100,
			epoch:     250 * sim.Microsecond,
		}
	}
	panic(fmt.Sprintf("experiments: unknown scenario %q", s))
}

// highspeedSpec builds a two-rack all-to-all scenario at the given
// link rate: short propagation delays (as high-speed fabrics have) and
// DCTCP-family buffers/thresholds scaled by the caller. Two racks
// under one aggregation switch keep cross-rack traffic — and with it
// PASE's remote arbitration exchanges, so the highspeed figure can put
// arbitration bytes and ExpressPass credit bytes on the same axis. The
// rack uplinks get full-bisection capacity (hosts/2 × the edge rate),
// so the access links stay the bottleneck at every sweep rate.
func highspeedSpec(rate netem.BitRate, hosts, qSize, markK int) scenarioSpec {
	return scenarioSpec{
		topo: func(nq func(topology.QueueKind) netem.Queue) topology.Config {
			return topology.Config{
				Racks: 2, HostsPerRack: hosts / 2, RacksPerAgg: 2,
				EdgeRate: rate, FabricRate: netem.BitRate(hosts/2) * rate,
				LinkDelay: HighspeedLinkDelay,
				NewQueue:  nq,
			}
		},
		pattern: func(n *topology.Network) workload.Pattern {
			return workload.AllToAll{Hosts: workload.HostRange(0, hosts)}
		},
		sizes:     workload.UniformSize{Min: ShortFlowMin, Max: ShortFlowMax},
		reference: netem.BitRate(hosts) * rate,
		bgFlows:   BackgroundFlows,
		markK:     markK,
		qSize:     qSize,
		epoch:     100 * sim.Microsecond,
	}
}

// CtrlScaleRacksOf reports the rack count a ctrlscale-family scenario
// names (0 when s is not in the family) — the façade uses it to
// validate parametric scenario names.
func CtrlScaleRacksOf(s Scenario) int { return ctrlScaleRacks(s) }

// ctrlScaleRacks parses the ctrlscale scenario family: "ctrlscale"
// (the default rack count) or "ctrlscale-<racks>". 0 means s is not
// in the family.
func ctrlScaleRacks(s Scenario) int {
	if s == CtrlScale {
		return CtrlScaleDefaultRacks
	}
	rest, ok := strings.CutPrefix(string(s), string(CtrlScale)+"-")
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 1 {
		return 0
	}
	return n
}

// ctrlScaleSpec builds the rack-count-parametric fabric the ctrlscale
// figure sweeps: small two-host racks under up to eight-rack
// aggregation groups, the interactive short-flow deadline mix, and a
// fixed aggregate reference rate, so arrivals stay comparable while
// the fabric — and with it the control plane's reach — grows.
func ctrlScaleSpec(racks int) scenarioSpec {
	rpa := CtrlScaleRacksPerAgg
	if rpa > racks {
		rpa = racks
	}
	for racks%rpa != 0 {
		rpa--
	}
	hosts := racks * CtrlScaleHostsPerRack
	return scenarioSpec{
		topo: func(nq func(topology.QueueKind) netem.Queue) topology.Config {
			return topology.Config{
				Racks: racks, HostsPerRack: CtrlScaleHostsPerRack, RacksPerAgg: rpa,
				EdgeRate: netem.Gbps, FabricRate: 10 * netem.Gbps,
				LinkDelay: HighspeedLinkDelay,
				NewQueue:  nq,
			}
		},
		pattern: func(n *topology.Network) workload.Pattern {
			return workload.AllToAll{Hosts: workload.HostRange(0, hosts)}
		},
		sizes:     workload.UniformSize{Min: ShortFlowMin, Max: ShortFlowMax},
		reference: CtrlScaleReference,
		deadlines: true,
		bgFlows:   BackgroundFlows,
		markK:     MarkingThreshold,
		qSize:     DCTCPQueueSize,
		epoch:     200 * sim.Microsecond,
		hier:      arbitration.HierarchyParams{FanOut: CtrlScaleFanOut, TopShards: CtrlScaleTopShards},
	}
}

// incastSpec builds the N→1 massive-incast scenario: senders many
// hosts all transmit to one receiver whose access link is the
// bottleneck. Buffers stay at the paper's 225-packet depth, so more
// concurrent senders than buffer slots force window-based transports
// to drop where credit shaping does not.
func incastSpec(senders int, rate netem.BitRate) scenarioSpec {
	hosts := senders + 1
	return scenarioSpec{
		topo: func(nq func(topology.QueueKind) netem.Queue) topology.Config {
			return topology.Config{
				Racks: 1, HostsPerRack: hosts, RacksPerAgg: 1,
				EdgeRate: rate, FabricRate: rate,
				LinkDelay: HighspeedLinkDelay,
				NewQueue:  nq,
			}
		},
		pattern: func(n *topology.Network) workload.Pattern {
			return workload.LeftRight{
				Left:  workload.HostRange(0, senders),
				Right: []pkt.NodeID{pkt.NodeID(senders)},
			}
		},
		sizes:     workload.UniformSize{Min: ShortFlowMin, Max: ShortFlowMax},
		reference: rate, // the receiver's access link
		markK:     MarkingThreshold,
		qSize:     DCTCPQueueSize,
		epoch:     100 * sim.Microsecond,
	}
}

// occOf returns the shared occupancy histogram for a queue role: every
// host NIC feeds one instrument, every switch port another. A nil
// registry yields nil (uninstrumented) histograms.
func occOf(reg *obs.Registry, kind topology.QueueKind) *obs.Histogram {
	if kind == topology.QueueHostNIC {
		return reg.Histogram("queue/hostnic/occ")
	}
	return reg.Histogram("queue/switch/occ")
}

// queueFactory picks the switch discipline the protocol assumes; reg
// (which may be nil) attaches occupancy instruments to every queue.
func queueFactory(p Protocol, sp scenarioSpec, numQueues int, reg *obs.Registry) func(topology.QueueKind) netem.Queue {
	switch p {
	case PFabric:
		return func(kind topology.QueueKind) netem.Queue {
			q := netem.NewPFabric(PFabricQueueSize)
			q.Occ = occOf(reg, kind)
			return q
		}
	case PDQ:
		return func(kind topology.QueueKind) netem.Queue {
			q := netem.NewDropTail(PDQQueueSize)
			q.Occ = occOf(reg, kind)
			return q
		}
	case PASE:
		// Simulation: one 500-packet buffer per port shared by the
		// priority classes, with push-out (Table 3). Testbed: the
		// Linux PRIO/CBQ arrangement — each class its own 100-packet
		// qdisc (§3.3 / §4.4).
		limit := PASEQueueSize
		perBand := false
		if sp.qSize < DCTCPQueueSize {
			limit = sp.qSize
			perBand = true
		}
		var occBand []*obs.Histogram
		if reg != nil {
			occBand = make([]*obs.Histogram, numQueues)
			for b := range occBand {
				occBand[b] = reg.Histogram(fmt.Sprintf("queue/prio/band%d/occ", b))
			}
		}
		return func(topology.QueueKind) netem.Queue {
			q := netem.NewPrio(numQueues, limit, sp.markK)
			q.PerBand = perBand
			q.OccBand = occBand
			return q
		}
	case ExpressPass:
		// Credit shaping per port: the data class gets the scenario's
		// buffer depth (it stays near-empty by construction), credits a
		// shallow rate-limited FIFO, and the ctrl class room for the
		// ACK stream. Pacing gaps are derived from each port's rate at
		// Bind time (bindCreditQueues).
		return func(kind topology.QueueKind) netem.Queue {
			q := netem.NewCreditQueue(sp.qSize, CreditQueueSize, CreditCtrlQueueSize)
			q.Occ = occOf(reg, kind)
			return q
		}
	default: // the DCTCP family
		return func(kind topology.QueueKind) netem.Queue {
			q := netem.NewREDECN(sp.qSize, sp.markK)
			q.Occ = occOf(reg, kind)
			return q
		}
	}
}

// bindCreditQueues connects every CreditQueue to its port — engine
// clock, transmitter kick and rate-derived pacing gap. Serial and
// sharded builds call it at the same position so runs stay
// byte-identical.
func bindCreditQueues(net *topology.Network) {
	for _, l := range net.Links {
		if cq, ok := l.Port.Queue().(*netem.CreditQueue); ok {
			cq.Bind(l.Port)
		}
	}
}

// RunPoint executes one simulation point.
func RunPoint(cfg PointConfig) PointResult {
	if cfg.Shards > 1 {
		if reason := shardFallback(cfg); reason != "" {
			return runPointSerial(cfg, reason)
		}
		return runPointSharded(cfg)
	}
	return runPointSerial(cfg, "")
}

// runPointSerial is the single-engine path; fallback, when non-empty,
// names why a sharded request degraded to serial (recorded in the obs
// snapshot).
func runPointSerial(cfg PointConfig, fallback string) PointResult {
	sp := scenario(cfg.Scenario)
	numFlows := cfg.NumFlows
	if numFlows == 0 {
		numFlows = 2000
	}
	numQueues := cfg.PASE.NumQueues
	if numQueues == 0 {
		numQueues = PASENumQueues
	}

	var reg *obs.Registry
	if cfg.Obs {
		reg = obs.NewRegistry()
	}
	if fallback != "" {
		reg.Counter("shard/fallback_serial").Inc()
		reg.Counter("shard/fallback_serial/" + fallback).Inc()
	}
	eng := sim.NewEngine()
	eng.Instrument(reg)
	var chk *check.Checker
	if cfg.Check || check.Forced() {
		chk = check.New(func() int64 { return int64(eng.Now()) })
		eng.AttachCheck(chk)
	}
	var net *topology.Network
	if sp.buildLS != nil {
		ls := *sp.buildLS
		ls.NewQueue = queueFactory(cfg.Protocol, sp, numQueues, reg)
		net = topology.BuildLeafSpine(eng, ls)
	} else {
		net = topology.Build(eng, sp.topo(queueFactory(cfg.Protocol, sp, numQueues, reg)))
	}
	bindCreditQueues(net)
	if chk != nil {
		for _, l := range net.Links {
			if cq, ok := l.Port.Queue().(netem.Checkable); ok {
				cq.AttachCheck(l.Port.Name, chk)
			}
		}
	}
	var inj *faults.Injector
	if !cfg.Faults.Empty() {
		if err := cfg.Faults.Validate(); err != nil {
			panic(err)
		}
		inj = faults.NewInjector(eng, cfg.Faults, cfg.Seed)
		inj.Instrument(reg)
		for _, l := range net.Links {
			inj.BindPort(l.ID, l.Port)
		}
		inj.Arm()
	}

	// Routing control loop: attached right after fault arming in both
	// the serial and sharded paths so its TE epoch timers hold the same
	// setup rank slots. routeRec is bound later, once the recorder
	// exists.
	var routeRec func(ev trace.RouteEvent)
	var routeCtl *route.Controller
	if cfg.Route.Enabled() && net.IsLeafSpine() {
		routeCtl = route.Attach(route.Params{
			Net: net, Cfg: cfg.Route,
			EngineOf: func(int) *sim.Engine { return eng },
			Deliver: func(_ netem.Node, _ int, fn func()) {
				eng.Schedule(net.Cfg.LinkDelay, fn)
			},
			ChkOf: func(int) *check.Checker { return chk },
			RegOf: func(int) *obs.Registry { return reg },
			Record: func(_ int, ev trace.RouteEvent) {
				if routeRec != nil {
					routeRec(ev)
				}
			},
		})
		if inj != nil && routeCtl != nil {
			inj.OnLinkState = routeCtl.LinkState
		}
	}

	d := transport.NewDriver(net, nil)
	d.Instrument(reg)
	d.AttachCheck(chk)
	if cfg.AbortAfter > 0 {
		for _, st := range d.Stacks {
			st.AbortAfter = cfg.AbortAfter
		}
	}

	var pdqSys *pdq.System
	var paseSys *arbitration.System
	var paseT *endhost.Transport
	var epSys *expresspass.System
	switch cfg.Protocol {
	case DCTCP:
		c := DefaultDCTCP()
		for _, st := range d.Stacks {
			st.NewControl = dctcp.New(c)
		}
	case D2TCP:
		c := DefaultD2TCP()
		for _, st := range d.Stacks {
			st.NewControl = d2tcp.New(c)
		}
	case L2DCT:
		c := DefaultL2DCT()
		for _, st := range d.Stacks {
			st.NewControl = l2dct.New(c)
		}
	case PFabric:
		c := DefaultPFabric()
		for _, st := range d.Stacks {
			st.NewControl = pfabric.New(c)
		}
	case PDQ:
		c := DefaultPDQ()
		c.EarlyTermination = sp.deadlines
		pdqSys = pdq.Attach(d, c)
	case ExpressPass:
		c := DefaultExpressPass()
		c.Seed = cfg.Seed
		epSys = expresspass.Attach(d, c)
	case PASE:
		p := DefaultPASEParams()
		p.Epoch = sp.epoch
		p.CtrlPerHop = net.Cfg.LinkDelay + 5*sim.Microsecond
		p.NumQueues = numQueues
		p.LocalOnly = cfg.PASE.LocalOnly
		p.EarlyPruning = !cfg.PASE.NoPruning
		p.Delegation = !cfg.PASE.NoDelegation
		p.Hierarchy = sp.hier
		if cfg.PASE.HierFanOut > 0 {
			p.Hierarchy.FanOut = cfg.PASE.HierFanOut
		}
		if cfg.PASE.HierTopShards > 0 {
			p.Hierarchy.TopShards = cfg.PASE.HierTopShards
		}
		if cfg.PASE.Central {
			p.Central = true
			p.Hierarchy = arbitration.HierarchyParams{}
		}
		ec := DefaultPASEEndhost()
		ec.UseRefRate = !cfg.PASE.DisableRefRate
		ec.Probing = !cfg.PASE.DisableProbing
		ec.ReorderGuard = !cfg.PASE.NoReorderGuard
		ec.TaskAware = cfg.PASE.TaskAware
		paseSys, paseT = core.Attach(d, p, ec)
		paseT.Instrument(reg)
		paseSys.Instrument(reg)
		if chk != nil {
			paseSys.AttachCheck(chk)
		}
	default:
		panic(fmt.Sprintf("experiments: unknown protocol %q", cfg.Protocol))
	}
	if inj != nil && paseSys != nil {
		paseSys.Faults = inj
		inj.OnCrash = paseSys.Crash
		inj.OnRestart = paseSys.Restore
	}

	// Tracing hooks chain after protocol attach: PDQ and PASE claim
	// OnFlowDone above, and the traces must observe those runs too.
	// None of the hooks schedule events; only the sampler does, and it
	// is created last so its setup slot mirrors the sharded path.
	var flog *trace.FlowLog
	var sampler *trace.Sampler
	var rec *trace.Recorder
	var srec *trace.ShardRecorder
	var pstream *trace.PerfettoStream
	if cfg.Trace.FlowLog {
		flog = &trace.FlowLog{Cap: traceCap(cfg.Trace.FlowLogCap, trace.DefaultFlowLogCap)}
		if cfg.Trace.FlowLogWriter != nil {
			if err := flog.SpillTo(cfg.Trace.FlowLogWriter); err != nil {
				panic(err)
			}
		}
	}
	if cfg.Trace.Spans {
		rec = trace.NewRecorder(trace.RecorderConfig{
			SampleN: cfg.Trace.SampleN, Seed: cfg.Seed, FlowCap: cfg.Trace.FlowCap,
		})
		if cfg.Trace.SpanWriter != nil {
			pstream = trace.NewPerfettoStream(cfg.Trace.SpanWriter)
			rec.SpillTo(pstream)
		}
		srec = rec.Shard(eng)
		rec.SetMeta(traceMeta(cfg, net))
		if routeCtl != nil {
			routeRec = srec.Route
		}
		if paseT != nil {
			wirePASETraceHooks(srec, paseT, paseSys)
		}
	}
	var flogOf func(pkt.NodeID) *trace.FlowLog
	if flog != nil {
		flogOf = func(pkt.NodeID) *trace.FlowLog { return flog }
	}
	var recOf func(pkt.NodeID) *trace.ShardRecorder
	if srec != nil {
		recOf = func(pkt.NodeID) *trace.ShardRecorder { return srec }
	}
	wireTraceHooks(cfg, d, flogOf, recOf)
	if cfg.Trace.QueueSample > 0 {
		sampler = trace.NewSampler(eng, cfg.Trace.QueueSample, trace.AllPorts(net))
		sampler.Cap = traceCap(cfg.Trace.SampleCap, trace.DefaultSampleCap)
	}

	spec := workload.Spec{
		Pattern:         sp.pattern(net),
		Sizes:           sp.sizes,
		Load:            cfg.Load,
		Reference:       sp.reference,
		NumFlows:        numFlows,
		Fanin:           sp.fanin,
		BackgroundFlows: sp.bgFlows,
	}
	if sp.deadlines {
		spec.DeadlineMin = DeadlineLo
		spec.DeadlineMax = DeadlineHi
	}
	var sc *metrics.StreamCollector
	var summary metrics.Summary
	var err error
	if cfg.Stream {
		sc = metrics.NewStreamCollector(cfg.SketchEps)
		d.UseSink(sc)
		it := spec.Stream(sim.NewRand(cfg.Seed+1), 1)
		d.ScheduleStream(it.Next)
		summary, err = d.Run(0)
	} else {
		flows := spec.Generate(sim.NewRand(cfg.Seed+1), 1)
		d.Schedule(flows)
		span := flows[len(flows)-1].Start
		summary, err = d.Run(span + sim.Time(10*sim.Second))
	}
	if err != nil {
		panic(err)
	}

	res := PointResult{
		Summary: summary,
		CDF:     d.Sink.CDF(200),
		Queues:  net.QueueStatsTotal(),
	}
	if !cfg.Stream {
		res.Records = d.Collector.Records()
	}
	// Loss rate: every data packet dropped anywhere in the fabric over
	// the data packets the hosts attempted to transmit.
	host := net.HostQueueStats()
	if att := host.EnqueuedData + host.DroppedData; att > 0 {
		res.LossRate = float64(res.Queues.DroppedData) / float64(att)
	}
	if pdqSys != nil {
		res.CtrlMessages = pdqSys.SyncMessages
	}
	if paseSys != nil {
		res.CtrlMessages = paseSys.Stats.Messages
	}
	if epSys != nil {
		res.CtrlMessages = epSys.Totals().Messages
	}
	if flog != nil {
		if cfg.Trace.FlowLogWriter != nil {
			if err := flog.FlushSpill(); err != nil {
				panic(err)
			}
		} else {
			// Canonicalize even in serial: execution order within one
			// instant is not the (At, Flow, kind) order sharded merges
			// produce, and the two must match byte for byte.
			res.FlowEvents, _ = trace.MergeFlowEvents([]*trace.FlowLog{flog}, flog.Cap)
		}
	}
	if sampler != nil {
		sampler.Stop()
		res.QueueSamples, _ = trace.MergeQueueSamples([]*trace.Sampler{sampler}, sampler.Cap)
	}
	if rec != nil {
		rt := rec.Take()
		rt.Queue = res.QueueSamples
		if pstream != nil {
			if err := rec.FinishSpill(rt); err != nil {
				panic(err)
			}
		}
		res.Trace = rt
	}
	if chk != nil && sc != nil && sc.Completed() > 0 {
		sk := sc.Sketch()
		chk.SketchBounds("metrics/stream",
			int64(summary.P50), int64(summary.P99), sk.Min(), sk.Max())
	}
	if chk != nil {
		// The fabric is quiet: verify every queue's end-state packet
		// conservation, then fold the verdict into the result.
		for _, l := range net.Links {
			if cq, ok := l.Port.Queue().(netem.Checkable); ok {
				cq.CheckConservation()
			}
		}
		res.Violations = chk.Total()
		res.CheckViolations = chk.Violations()
	}
	if reg != nil {
		scrapeRun(reg, eng, net, summary, paseSys, pdqSys, epSys)
		scrapeCheck(reg, chk)
		scrapeTrace(reg, res.Trace)
		if sc != nil {
			sk := sc.Sketch()
			reg.Counter("metrics/sketch_adds").Add(sk.Count())
			reg.Counter("metrics/sketch_buckets_used").Add(int64(sk.BucketsUsed()))
			reg.Counter("metrics/stream_points").Inc()
		}
		res.Obs = reg.Snapshot()
	}
	if chk != nil && !cfg.Check && chk.Total() > 0 {
		// Forced mode (PASE_CHECK) with no caller looking at the
		// verdict: fail loudly so a whole test pass acts as a tripwire.
		panic("experiments: PASE_CHECK run failed: " + chk.Summary())
	}
	return res
}

// scrapeCheck folds the checker's verdict into the registry so run
// manifests carry it: check/violations totals every breach and
// check/violations/<invariant> splits them by invariant.
func scrapeCheck(reg *obs.Registry, chk *check.Checker) {
	if chk == nil {
		return
	}
	reg.Counter("check/enabled").Inc()
	reg.Counter("check/violations").Add(chk.Total())
	for inv, n := range chk.ByInvariant() {
		reg.Counter("check/violations/" + inv).Add(n)
	}
}

// scrapeRun folds the simulator's passive end-of-run counters — queue
// stats, link transmit/busy totals, control-plane stats — into the
// registry next to the live-instrumented streams, so one Snapshot
// carries the whole run.
func scrapeRun(reg *obs.Registry, eng *sim.Engine, net *topology.Network,
	summary metrics.Summary, paseSys *arbitration.System, pdqSys *pdq.System,
	epSys *expresspass.System) {
	reg.Counter("run/points").Inc()
	reg.Counter("sim/elapsed_ns").Add(int64(eng.Now()))
	reg.Counter("flows/total").Add(int64(summary.Flows))
	reg.Counter("flows/completed").Add(int64(summary.Completed))
	for _, l := range net.Links {
		dir := "down"
		if l.Up {
			dir = "up"
		}
		prefix := "net/" + l.Level.String() + "/" + dir + "/"
		s := l.Port.Queue().Stats()
		reg.Counter(prefix + "links").Inc()
		reg.Counter(prefix + "enq").Add(s.Enqueued)
		reg.Counter(prefix + "drop").Add(s.Dropped)
		reg.Counter(prefix + "drop_bytes").Add(s.DroppedBytes)
		reg.Counter(prefix + "mark").Add(s.Marked)
		reg.Counter(prefix + "tx_pkts").Add(l.Port.TxPackets)
		reg.Counter(prefix + "tx_bytes").Add(l.Port.TxBytes)
		reg.Counter(prefix + "busy_ns").Add(int64(l.Port.BusyTime()))
	}
	if paseSys != nil {
		reg.Counter("arb/messages").Add(paseSys.Stats.Messages)
		reg.Counter("arb/bytes").Add(paseSys.Stats.Bytes)
		reg.Counter("arb/setups").Add(paseSys.Stats.Setups)
		reg.Counter("arb/refreshes").Add(paseSys.Stats.Refreshes)
		reg.Counter("arb/releases").Add(paseSys.Stats.Releases)
		reg.Counter("arb/pruned").Add(paseSys.Stats.Pruned)
		reg.Counter("arb/delegated").Add(paseSys.Stats.Delegated)
		reg.Counter("arb/prune_saved_msgs").Add(paseSys.Stats.PruneSavedMsgs)
		reg.Counter("arb/sync_messages").Add(paseSys.Stats.SyncMessages)
		// Unified control-overhead axis: the same counters ExpressPass
		// feeds from its credit plane, so figures can compare the two
		// control planes on one scale.
		reg.Counter("ctrl/messages").Add(paseSys.Stats.Messages)
		reg.Counter("ctrl/bytes").Add(paseSys.Stats.Bytes)
	}
	if pdqSys != nil {
		reg.Counter("pdq/sync_messages").Add(pdqSys.SyncMessages)
		reg.Counter("ctrl/messages").Add(pdqSys.SyncMessages)
	}
	if epSys != nil {
		t := epSys.Totals()
		reg.Counter("credit/sent").Add(t.Credits)
		reg.Counter("credit/bytes").Add(t.CreditBytes)
		reg.Counter("credit/requests").Add(t.Requests)
		reg.Counter("credit/wasted").Add(t.Wasted)
		reg.Counter("ctrl/messages").Add(t.Messages)
		reg.Counter("ctrl/bytes").Add(t.CreditBytes + t.Requests*pkt.CreditSize)
	}
}

// traceCap resolves a retention-cap config value against its default.
func traceCap(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

// traceMeta describes the run for the trace header.
func traceMeta(cfg PointConfig, net *topology.Network) trace.Meta {
	return trace.Meta{
		Proto:    string(cfg.Protocol),
		Scenario: string(cfg.Scenario),
		NICBps:   int64(net.Hosts[0].Port().Rate()),
	}
}

// scrapeTrace folds the flight recorder's retention stats into the
// registry so run manifests report what the trace kept and shed.
func scrapeTrace(reg *obs.Registry, rt *trace.RunTrace) {
	if rt == nil {
		return
	}
	st := rt.Stats
	reg.Counter("trace/flows_started").Add(st.FlowsStarted)
	reg.Counter("trace/flows_final").Add(st.FlowsFinal)
	reg.Counter("trace/flows_sampled_out").Add(st.FlowsSampledOut)
	reg.Counter("trace/flows_evicted").Add(st.FlowsEvicted)
	reg.Counter("trace/flows_unfinished").Add(st.FlowsUnfinished)
	reg.Counter("trace/spans_truncated").Add(st.SpansTruncated)
	reg.Counter("trace/ctrl_spans").Add(st.CtrlTotal)
	reg.Counter("trace/ctrl_evicted").Add(st.CtrlEvicted)
	// Routed runs only: untouched runs must keep their manifests
	// byte-identical to pre-routing builds.
	if len(rt.Route) > 0 {
		reg.Counter("trace/route_events").Add(int64(len(rt.Route)))
	}
}

// wireTraceHooks installs the flow-log and flight-recorder hooks on the
// driver, chaining after any protocol-installed completion hook.
// flogOf/recOf route a flow to its shard's instances by source host
// (constant in serial runs); either may be nil when that trace is off.
// The hooks observe only — they never schedule events — so installing
// them cannot perturb the simulation.
func wireTraceHooks(cfg PointConfig, d *transport.Driver,
	flogOf func(src pkt.NodeID) *trace.FlowLog,
	recOf func(src pkt.NodeID) *trace.ShardRecorder) {

	if flogOf == nil && recOf == nil {
		return
	}
	// PASE holds a new flow at the source until its first arbitration
	// response; every other protocol transmits immediately.
	held := cfg.Protocol == PASE || cfg.Protocol == ExpressPass
	prevStart := d.OnFlowStart
	d.OnFlowStart = func(s *transport.Sender) {
		if flogOf != nil {
			flogOf(s.Spec.Src).Add(trace.FlowEvent{
				At: s.Now(), Kind: "start",
				Flow: s.Spec.ID, Src: s.Spec.Src, Dst: s.Spec.Dst, Size: s.Spec.Size,
			})
		}
		if recOf != nil {
			recOf(s.Spec.Src).FlowArrive(s.Spec.ID, s.Spec.Src, s.Spec.Dst, s.Spec.Size, 0, held)
		}
		if prevStart != nil {
			prevStart(s)
		}
	}
	prevDone := d.OnFlowDone
	d.OnFlowDone = func(s *transport.Sender) {
		if flogOf != nil {
			e := trace.FlowEvent{
				At: s.Now(), Kind: "done",
				Flow: s.Spec.ID, Src: s.Spec.Src, Dst: s.Spec.Dst, Size: s.Spec.Size,
			}
			if s.Aborted {
				e.Kind = "abort"
			} else {
				e.FCT = s.FinishTime.Sub(s.Spec.Start)
			}
			flogOf(s.Spec.Src).Add(e)
		}
		if recOf != nil {
			recOf(s.Spec.Src).FlowEnd(s.Spec.ID, s.Aborted)
		}
		if prevDone != nil {
			prevDone(s)
		}
	}
	if recOf != nil {
		for _, st := range d.Stacks {
			st.OnRetx = func(s *transport.Sender, seq int32) {
				recOf(s.Spec.Src).Mark(s.Spec.ID, trace.MarkRetx, int64(seq))
			}
			st.OnTimeout = func(s *transport.Sender) {
				recOf(s.Spec.Src).Mark(s.Spec.ID, trace.MarkTimeout, 0)
			}
		}
	}
}

// wirePASETraceHooks connects the PASE endpoint and the arbitration
// hierarchy to the flight recorder: allocation grants, epoch (priority
// queue) transitions, fallback/resync marks and every control-plane
// half-exchange. Serial only — PASE never shards.
func wirePASETraceHooks(srec *trace.ShardRecorder, paseT *endhost.Transport, paseSys *arbitration.System) {
	paseT.OnGrant = func(s *transport.Sender, q int8) {
		srec.Mark(s.Spec.ID, trace.MarkGrant, int64(q))
	}
	paseT.OnEpoch = func(s *transport.Sender, q int8) {
		srec.Epoch(s.Spec.ID, int(q))
	}
	paseT.OnFallback = func(s *transport.Sender) {
		srec.Mark(s.Spec.ID, trace.MarkFallback, 0)
	}
	paseT.OnResync = func(s *transport.Sender) {
		srec.Mark(s.Spec.ID, trace.MarkResync, 0)
	}
	paseSys.OnCtrl = func(ev arbitration.CtrlEvent) {
		srec.Ctrl(trace.CtrlSpan{
			Flow: ev.Flow, SrcSide: ev.SrcSide, Level: ev.Level,
			Start: ev.Start, Latency: ev.Latency,
			Outcome: ctrlOutcome(ev.Outcome),
		})
	}
}

// ctrlOutcome maps the arbitration layer's outcome to the trace
// layer's (the packages are decoupled so netem/arbitration never
// import tracing).
func ctrlOutcome(o arbitration.CtrlOutcome) trace.CtrlOutcome {
	switch o {
	case arbitration.CtrlReqDropped:
		return trace.CtrlReqDropped
	case arbitration.CtrlRespDropped:
		return trace.CtrlRespDropped
	case arbitration.CtrlDeadArb:
		return trace.CtrlDead
	}
	return trace.CtrlOK
}
