// Package experiments defines one runnable experiment per table and
// figure in the paper's evaluation (§4): scenario construction, the
// protocol variants compared, the load sweep, and the metric series
// each figure plots. The cmd/paper binary and the repository's
// benchmarks are thin wrappers over this package.
package experiments

import (
	"pase/internal/core/arbitration"
	"pase/internal/core/endhost"
	"pase/internal/netem"
	"pase/internal/sim"
	"pase/internal/transport/d2tcp"
	"pase/internal/transport/dctcp"
	"pase/internal/transport/expresspass"
	"pase/internal/transport/l2dct"
	"pase/internal/transport/pdq"
	"pase/internal/transport/pfabric"
)

// Table 3 of the paper — default per-protocol parameters.
var (
	// DCTCPQueueSize is the switch buffer for DCTCP-family runs.
	DCTCPQueueSize = 225
	// MarkingThreshold is the ECN marking threshold K.
	MarkingThreshold = 65
	// PFabricQueueSize is 2×BDP per Table 3.
	PFabricQueueSize = 76
	// PASEQueueSize is the shared PRIO buffer.
	PASEQueueSize = 500
	// PASENumQueues is the number of priority queues.
	PASENumQueues = 8
	// PDQQueueSize matches the DCTCP buffering (PDQ keeps queues
	// nearly empty by construction).
	PDQQueueSize = 225
	// CreditQueueSize bounds the switch credit class for ExpressPass;
	// the paper's shapers keep it shallow so credit drops act as fast
	// rate feedback.
	CreditQueueSize = 8
	// CreditCtrlQueueSize bounds the ExpressPass ctrl class (ACKs and
	// credit requests).
	CreditCtrlQueueSize = 1024
	// ShallowQueueSize / ShallowMarkK parameterize the shallow-buffer
	// 100 Gbps variant: far less than rate-scaled buffering, which
	// window-based transports need and credit-based ones do not.
	ShallowQueueSize = 64
	ShallowMarkK     = 20
)

// DefaultDCTCP returns Table 3's DCTCP configuration.
func DefaultDCTCP() dctcp.Config { return dctcp.DefaultConfig() }

// DefaultD2TCP returns Table 3's D2TCP configuration.
func DefaultD2TCP() d2tcp.Config { return d2tcp.DefaultConfig() }

// DefaultL2DCT returns Table 3's L2DCT configuration (minRTO 10 ms).
func DefaultL2DCT() l2dct.Config { return l2dct.DefaultConfig() }

// DefaultPFabric returns Table 3's pFabric configuration
// (initCwnd 38 pkts, minRTO 1 ms).
func DefaultPFabric() pfabric.Config { return pfabric.DefaultConfig() }

// DefaultPDQ returns the PDQ configuration with all flow-switching
// optimizations on.
func DefaultPDQ() pdq.Config { return pdq.DefaultConfig() }

// DefaultPASEParams returns Table 3's PASE arbitration parameters
// (8 queues, pruning past the top two, delegation on).
func DefaultPASEParams() arbitration.Params { return arbitration.DefaultParams() }

// DefaultPASEEndhost returns Table 3's PASE transport parameters
// (minRTO 10 ms top queue / 200 ms others, probing on).
func DefaultPASEEndhost() endhost.Config { return endhost.DefaultConfig() }

// DefaultExpressPass returns the ExpressPass parameterization from Cho
// et al. (target credit waste 0.125, w ∈ [0.01, 0.5], jittered credit
// pacing).
func DefaultExpressPass() expresspass.Config { return expresspass.DefaultConfig() }

// Default sweep used across figures.
var DefaultLoads = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

// Workload constants from §4.1.
const (
	// ShortFlowMin/Max bound the query/short-message sizes.
	ShortFlowMin = 2 * 1000
	ShortFlowMax = 198 * 1000
	// DeadlineFlowMin/Max bound the deadline-workload sizes.
	DeadlineFlowMin = 100 * 1000
	DeadlineFlowMax = 500 * 1000
	// DeadlineLo/Hi bound the uniform deadlines.
	DeadlineLo = 5 * sim.Millisecond
	DeadlineHi = 25 * sim.Millisecond
	// BackgroundFlows is the long-flow multiplexing level (75th pct).
	BackgroundFlows = 2
)

// IntraRackHosts is the size of the paper's intra-rack scenarios.
const IntraRackHosts = 20

// HighspeedHosts is the rack size of the high-speed-link scenarios.
const HighspeedHosts = 16

// HighspeedLinkDelay is the per-link propagation delay of the
// high-speed scenarios — short, as in real high-speed fabrics, which
// shrinks the BDP the credit loop must fill.
const HighspeedLinkDelay = 5 * sim.Microsecond

// WorkerFanin is the number of simultaneous worker responses per query
// in the worker-aggregator scenario.
const WorkerFanin = 19

// Routing-control-loop (te figure) parameters: the chaos plan downs
// leaf→spine-0 uplinks one per TEFaultStagger starting at TEFaultStart
// — staggered so no two rules share an instant and none lands on a
// TE-epoch multiple (same-instant fault rules on different shards
// would race for rank order in sharded runs) — each outage lasting
// TEFaultFor; TEAbortAfter is the progress deadline that turns
// blackholed flows into aborts.
const (
	TEFaultStart   = 3100 * sim.Microsecond
	TEFaultStagger = 1000 * sim.Microsecond
	TEFaultFor     = 250 * sim.Millisecond
	TEAbortAfter   = 100 * sim.Millisecond
)

// ctrlscale (control-plane-at-scale) scenario parameters: two-host
// racks keep the fabric cheap to build at 2048 racks, aggregation
// groups of eight racks mirror real pod sizes (shrunk to the largest
// divisor for odd rack counts), and PASE's deep hierarchy defaults to
// a fan-out-4 tree with a two-way sharded root. The reference rate is
// deliberately FIXED across the sweep: the same aggregate workload
// spread over a growing fabric isolates control-plane cost from
// data-plane load.
const (
	CtrlScaleDefaultRacks = 64
	CtrlScaleHostsPerRack = 2
	CtrlScaleRacksPerAgg  = 8
	CtrlScaleFanOut       = 4
	CtrlScaleTopShards    = 2
	CtrlScaleReference    = 32 * netem.Gbps
)

// reference capacities for offered load.
func intraRackReference(hosts int) netem.BitRate {
	return netem.BitRate(hosts) * netem.Gbps
}

// leftRightReference is the agg0→core bottleneck.
const leftRightReference = 10 * netem.Gbps
