package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Every simulation point is hermetic: RunPoint builds its own
// sim.Engine, RNG and topology and shares nothing with other points,
// so a figure's (variant × load × seed) grid can fan out across
// goroutines. The pool below is the one place that parallelism lives;
// results always come back in input order, so a figure assembled from
// pooled points is byte-identical to a serial run.

// forEachPoint runs fn(i, RunPoint(cfgs[i])) for every config across a
// bounded worker pool. fn is called concurrently from the workers but
// never twice for the same index. parallelism <= 0 means GOMAXPROCS
// workers; 1 runs everything inline with no goroutines.
func forEachPoint(cfgs []PointConfig, parallelism int, fn func(i int, r PointResult)) {
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers <= 1 {
		for i, cfg := range cfgs {
			fn(i, RunPoint(cfg))
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cfgs) {
					return
				}
				fn(i, RunPoint(cfgs[i]))
			}
		}()
	}
	wg.Wait()
}

// RunPoints executes every config across the pool and returns the
// results in input order.
func RunPoints(cfgs []PointConfig, parallelism int) []PointResult {
	out := make([]PointResult, len(cfgs))
	forEachPoint(cfgs, parallelism, func(i int, r PointResult) { out[i] = r })
	return out
}

// mapPoints is RunPoints for callers that only keep one scalar per
// point: the metric is applied inside the worker, so the full
// per-point Records/CDF payloads are released as soon as each point
// finishes instead of being retained for the whole grid.
func mapPoints(cfgs []PointConfig, parallelism int, metric func(PointResult) float64) []float64 {
	out := make([]float64, len(cfgs))
	forEachPoint(cfgs, parallelism, func(i int, r PointResult) { out[i] = metric(r) })
	return out
}
