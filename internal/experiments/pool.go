package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"pase/internal/obs"
)

// Every simulation point is hermetic: RunPoint builds its own
// sim.Engine, RNG and topology and shares nothing with other points,
// so a figure's (variant × load × seed) grid can fan out across
// goroutines. The pool below is the one place that parallelism lives;
// results always come back in input order, so a figure assembled from
// pooled points is byte-identical to a serial run.

// forEachPoint runs fn(i, RunPoint(cfgs[i])) for every config across a
// bounded worker pool. fn is called concurrently from the workers but
// never twice for the same index. o.Parallelism <= 0 means GOMAXPROCS
// workers; 1 runs everything inline with no goroutines. o.Obs turns on
// observability for every point; o.Progress (if set) is called after
// each point completes, possibly from a worker goroutine.
func forEachPoint(cfgs []PointConfig, o Opts, fn func(i int, r PointResult)) {
	if o.Obs || o.Check || o.Faults != nil || o.Stream || o.Shards > 1 || o.Trace.Enabled() || o.Ctrl == "central" {
		for i := range cfgs {
			cfgs[i].Obs = cfgs[i].Obs || o.Obs
			cfgs[i].Check = cfgs[i].Check || o.Check
			if o.Ctrl == "central" && cfgs[i].Protocol == PASE {
				cfgs[i].PASE.Central = true
			}
			if cfgs[i].Faults == nil {
				cfgs[i].Faults = o.Faults
			}
			cfgs[i].Stream = cfgs[i].Stream || o.Stream
			if cfgs[i].SketchEps == 0 {
				cfgs[i].SketchEps = o.SketchEps
			}
			if cfgs[i].Shards == 0 {
				cfgs[i].Shards = o.Shards
			}
			if !cfgs[i].Trace.Enabled() {
				// Points run concurrently: never share spill writers
				// through grid-level opts.
				t := o.Trace
				t.FlowLogWriter, t.SpanWriter = nil, nil
				cfgs[i].Trace = t
			}
		}
	}
	var done atomic.Int64
	total := len(cfgs)
	run := func(i int) {
		fn(i, RunPoint(cfgs[i]))
		if o.Progress != nil {
			o.Progress(int(done.Add(1)), total)
		}
	}
	workers := o.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers <= 1 {
		for i := range cfgs {
			run(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cfgs) {
					return
				}
				run(i)
			}
		}()
	}
	wg.Wait()
}

// RunPoints executes every config across the pool and returns the
// results in input order.
func RunPoints(cfgs []PointConfig, parallelism int) []PointResult {
	return RunPointsOpts(cfgs, Opts{Parallelism: parallelism})
}

// RunPointsOpts is RunPoints with full Opts control — parallelism,
// observability and a progress callback.
func RunPointsOpts(cfgs []PointConfig, o Opts) []PointResult {
	out := make([]PointResult, len(cfgs))
	forEachPoint(cfgs, o, func(i int, r PointResult) { out[i] = r })
	return out
}

// pointExtras collects the cross-point observability of one pool run:
// per-point snapshots (merged in input order afterwards, so the result
// is independent of scheduling) and the retransmission totals every
// figure reports. Workers write disjoint indices; no locking needed.
type pointExtras struct {
	snaps      []*obs.Snapshot
	retx       []int64
	timeouts   []int64
	violations []int64
}

func newPointExtras(n int) *pointExtras {
	return &pointExtras{
		snaps:      make([]*obs.Snapshot, n),
		retx:       make([]int64, n),
		timeouts:   make([]int64, n),
		violations: make([]int64, n),
	}
}

// observe records point i's contribution. Safe to call concurrently
// for distinct i.
func (e *pointExtras) observe(i int, r PointResult) {
	e.snaps[i] = r.Obs
	e.retx[i] = r.Summary.Retx
	e.timeouts[i] = r.Summary.Timeouts
	e.violations[i] = r.Violations
}

// fill merges the collected extras into the figure result.
func (e *pointExtras) fill(res *Result) {
	res.Obs = obs.MergeAll(e.snaps)
	res.Points = len(e.snaps)
	for i := range e.snaps {
		res.Retx += e.retx[i]
		res.Timeouts += e.timeouts[i]
		res.Violations += e.violations[i]
	}
}

// mapPoints is RunPoints for callers that only keep one scalar per
// point: the metric is applied inside the worker, so the full
// per-point Records/CDF payloads are released as soon as each point
// finishes instead of being retained for the whole grid. The returned
// extras carry each point's snapshot and retransmission totals.
func mapPoints(cfgs []PointConfig, o Opts, metric func(PointResult) float64) ([]float64, *pointExtras) {
	out := make([]float64, len(cfgs))
	ex := newPointExtras(len(cfgs))
	forEachPoint(cfgs, o, func(i int, r PointResult) {
		out[i] = metric(r)
		ex.observe(i, r)
	})
	return out, ex
}
