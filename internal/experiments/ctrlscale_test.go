package experiments

import (
	"fmt"
	"testing"
)

// The control-plane conformance suite pins the arbitration hierarchy
// and the centralized comparison arm the same way conformance_test.go
// pins the transports: one small deterministic ctrlscale fabric, full
// behavior digest, zero checker violations. A moved digest means the
// control plane schedules differently — intended changes re-pin (run
// with -run TestCtrlPlaneConformanceDigest -v and copy the "got"
// values), unintended ones are regressions.

// ctrlConformancePoint is the pinned scenario: the 16-rack ctrlscale
// fabric at 80% load — small enough to run in well under a second per
// arm, cross-rack enough that refreshes climb the full hierarchy.
func ctrlConformancePoint(opt PASEOptions) PointConfig {
	return PointConfig{
		Protocol: PASE,
		Scenario: Scenario("ctrlscale-16"),
		Load:     0.8,
		Seed:     7,
		NumFlows: 120,
		Check:    true,
		PASE:     opt,
	}
}

// ctrlArms are the pinned control-plane configurations: the default
// hierarchy the ctrlscale spec picks (fan-out 4, 2 root shards), a
// deep binary hierarchy (fan-out 2 → five levels over 16 racks,
// stressing multi-level delegation and pruning), and the centralized
// scheduler arm.
var ctrlArms = []struct {
	name   string
	opt    PASEOptions
	digest uint64
}{
	{"hierarchy", PASEOptions{}, 0x5a742fd1a07e478a},
	{"deep-hierarchy", PASEOptions{HierFanOut: 2, HierTopShards: 1}, 0xb64ec0ba9f614e94},
	{"central", PASEOptions{Central: true}, 0x27a4d1242feb3758},
}

func TestCtrlPlaneConformanceDigest(t *testing.T) {
	for _, arm := range ctrlArms {
		arm := arm
		t.Run(arm.name, func(t *testing.T) {
			t.Parallel()
			r := RunPoint(ctrlConformancePoint(arm.opt))
			if r.Violations != 0 {
				t.Fatalf("invariant checker reported %d violations:\n%v",
					r.Violations, r.CheckViolations)
			}
			if r.Summary.Completed == 0 {
				t.Fatal("no flows completed")
			}
			got := digestResult(r)
			if got != arm.digest {
				t.Errorf("behavior digest changed: got %#x, want %#x", got, arm.digest)
			}
		})
	}
}

// TestCtrlPlaneDeterminism re-runs the deep-hierarchy arm — the one
// with the most control-plane machinery in play — and requires an
// identical digest.
func TestCtrlPlaneDeterminism(t *testing.T) {
	cfg := ctrlConformancePoint(ctrlArms[1].opt)
	a := digestResult(RunPoint(cfg))
	b := digestResult(RunPoint(cfg))
	if a != b {
		t.Fatalf("same config, different digests: %#x vs %#x", a, b)
	}
}

// TestCtrlPlaneShardEquality runs the hierarchy arm across engine
// shard counts 0 through 4 and requires byte-identical digests: the
// sharded single-run engine must not change arbitration behavior.
func TestCtrlPlaneShardEquality(t *testing.T) {
	var want uint64
	for shards := 0; shards <= 4; shards++ {
		cfg := ctrlConformancePoint(PASEOptions{})
		cfg.Shards = shards
		r := RunPoint(cfg)
		if r.Violations != 0 {
			t.Fatalf("shards=%d: %d checker violations", shards, r.Violations)
		}
		got := digestResult(r)
		if shards == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("shards=%d digest %#x differs from serial %#x", shards, got, want)
		}
	}
}

// TestCtrlScaleAcceptance pins the scaling claim the ctrlscale figure
// makes: with the workload held fixed, the hierarchy's control-message
// count grows sub-linearly in fabric size while the centralized arm's
// grows with the fabric (its sync traffic touches every link every
// epoch). Both arms must complete every flow with zero checker
// violations at every size.
func TestCtrlScaleAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point checked sweep")
	}
	const flows = 400
	rackCounts := []int{16, 64, 256}
	msgs := map[string][]float64{}
	for _, arm := range []struct {
		name string
		opt  PASEOptions
	}{
		{"hierarchy", PASEOptions{}},
		{"central", PASEOptions{Central: true}},
	} {
		for _, racks := range rackCounts {
			cfg := PointConfig{
				Protocol: PASE,
				Scenario: Scenario(fmt.Sprintf("%s-%d", CtrlScale, racks)),
				Load:     0.6,
				Seed:     7,
				NumFlows: flows,
				Check:    true,
				Obs:      true,
				PASE:     arm.opt,
			}
			r := RunPoint(cfg)
			if r.Violations != 0 {
				t.Fatalf("%s at %d racks: %d checker violations:\n%v",
					arm.name, racks, r.Violations, r.CheckViolations)
			}
			if r.Summary.Completed != flows {
				t.Fatalf("%s at %d racks: %d/%d flows completed",
					arm.name, racks, r.Summary.Completed, flows)
			}
			if r.Obs == nil {
				t.Fatalf("%s at %d racks: no observability snapshot", arm.name, racks)
			}
			m := float64(r.Obs.Counters["arb/messages"])
			if m <= 0 {
				t.Fatalf("%s at %d racks: no control messages recorded", arm.name, racks)
			}
			msgs[arm.name] = append(msgs[arm.name], m)
		}
	}
	fabricRatio := float64(rackCounts[len(rackCounts)-1]) / float64(rackCounts[0]) // 16×
	hierGrowth := msgs["hierarchy"][2] / msgs["hierarchy"][0]
	centGrowth := msgs["central"][2] / msgs["central"][0]
	t.Logf("control messages over a %gx fabric: hierarchy ×%.2f, central ×%.2f",
		fabricRatio, hierGrowth, centGrowth)
	// Sub-linear: the hierarchy's growth stays far under the fabric's.
	// Measured ×1.40 over 16× racks; half the fabric ratio leaves room
	// for workload-mix drift without masking a real regression.
	if hierGrowth >= fabricRatio/2 {
		t.Errorf("hierarchy control messages grew ×%.2f over a %gx fabric — no longer sub-linear",
			hierGrowth, fabricRatio)
	}
	// The centralized arm pays for fabric size (measured ×3.28): it
	// must grow at least ~2× faster than the hierarchy, or the
	// comparison the figure draws has silently collapsed.
	if centGrowth < 1.8*hierGrowth {
		t.Errorf("central growth ×%.2f is not meaningfully above hierarchy growth ×%.2f",
			centGrowth, hierGrowth)
	}
}
