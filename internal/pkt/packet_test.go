package pkt

import (
	"testing"
	"testing/quick"
)

func TestDataPackets(t *testing.T) {
	cases := []struct {
		size int64
		want int32
	}{
		{0, 0},
		{-5, 0},
		{1, 1},
		{MSS, 1},
		{MSS + 1, 2},
		{10 * MSS, 10},
		{198 * 1000, int32((198*1000 + MSS - 1) / MSS)},
	}
	for _, c := range cases {
		if got := DataPackets(c.size); got != c.want {
			t.Errorf("DataPackets(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestSegmentWireSize(t *testing.T) {
	size := int64(2*MSS + 100)
	if got := SegmentWireSize(size, 0); got != MTU {
		t.Errorf("seg 0 = %d, want %d", got, MTU)
	}
	if got := SegmentWireSize(size, 1); got != MTU {
		t.Errorf("seg 1 = %d, want %d", got, MTU)
	}
	if got := SegmentWireSize(size, 2); got != 100+HeaderSize {
		t.Errorf("seg 2 = %d, want %d", got, 100+HeaderSize)
	}
	if got := SegmentWireSize(size, 3); got != HeaderSize {
		t.Errorf("out-of-range seg = %d, want header size", got)
	}
}

// Property: segment wire sizes of a flow sum to payload + per-packet headers.
func TestSegmentSizesSumToFlow(t *testing.T) {
	f := func(raw uint32) bool {
		size := int64(raw%500000) + 1
		n := DataPackets(size)
		var sum int64
		for s := int32(0); s < n; s++ {
			sum += int64(SegmentWireSize(size, s))
		}
		return sum == size+int64(n)*HeaderSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeString(t *testing.T) {
	if Data.String() != "DATA" || Ack.String() != "ACK" || Ctrl.String() != "CTRL" {
		t.Fatal("type names wrong")
	}
	if Type(99).String() == "" {
		t.Fatal("unknown type should still format")
	}
}

func TestIsControl(t *testing.T) {
	p := &Packet{Type: Ctrl}
	if !p.IsControl() {
		t.Fatal("Ctrl packet should be control")
	}
	p.Type = Data
	if p.IsControl() {
		t.Fatal("Data packet should not be control")
	}
}
