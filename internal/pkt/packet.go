// Package pkt defines the packet model shared by every layer of the
// simulator: data segments, acknowledgements, loss-recovery probes and
// control-plane (arbitration) messages, together with the header fields
// the transports under study need — ECN bits, a strict-priority class
// for PRIO switches, a fine-grained rank for pFabric switches, and a
// per-protocol opaque header.
package pkt

import (
	"fmt"

	"pase/internal/sim"
)

// NodeID identifies a host or switch in the simulated network.
type NodeID int32

// FlowID identifies one flow (a single request/response transfer or a
// long-running connection) across the whole simulation.
type FlowID uint64

// Type discriminates the kinds of packets that traverse the fabric.
type Type uint8

const (
	// Data carries MSS-sized (or trailing) payload of a flow.
	Data Type = iota
	// Ack acknowledges data cumulatively and echoes congestion marks.
	Ack
	// Probe is PASE's small loss-discrimination packet: it asks the
	// receiver "did my data get stuck or dropped?" without resending
	// the payload.
	Probe
	// ProbeAck answers a Probe.
	ProbeAck
	// Ctrl carries arbitration control-plane messages.
	Ctrl
	// Credit is an ExpressPass-style minimum-size credit packet sent
	// by a receiver; each credit entitles the sender to transmit one
	// data segment on the reverse path.
	Credit
	// CreditReq opens a credit-based flow: the sender asks the
	// receiver to start pacing credits toward it.
	CreditReq
)

var typeNames = [...]string{"DATA", "ACK", "PROBE", "PROBEACK", "CTRL", "CREDIT", "CREDITREQ"}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Wire-size constants (bytes). MSS-sized data packets occupy MTU bytes
// on the wire; headers-only packets occupy HeaderSize.
const (
	MTU        = 1500
	HeaderSize = 40
	MSS        = MTU - HeaderSize
	// CtrlSize is the wire size of one arbitration message.
	CtrlSize = 64
	// CreditSize is the wire size of one ExpressPass credit packet
	// (the minimum Ethernet frame, per the ExpressPass paper).
	CreditSize = 84
)

// Packet is a single simulated packet. Packets are passed by pointer
// and owned by whichever component currently holds them; they are not
// copied as they traverse queues and links.
type Packet struct {
	ID   uint64
	Flow FlowID
	Src  NodeID
	Dst  NodeID
	Type Type

	// Seq is the index of this data segment within its flow
	// (0-based). For Ack packets, CumAck below is the feedback.
	Seq int32
	// Size is the wire size in bytes, including headers.
	Size int32

	// Prio is the strict-priority class used by PRIO queues.
	// 0 is the highest priority; larger is lower.
	Prio int8
	// Rank is a fine-grained scheduling priority used by pFabric
	// queues (lower = more urgent). PASE and pFabric set it to the
	// flow's remaining size; PDQ to its deadline/size criterion.
	Rank int64

	// ECN state. ECT marks the packet ECN-capable; CE is set by a
	// congested queue; Echo carries CE back to the sender on an Ack.
	ECT  bool
	CE   bool
	Echo bool

	// Ack-specific feedback.
	CumAck   int32 // next expected sequence number
	SackSeq  int32 // the specific segment this (d)ACK acknowledges
	AckBytes int32 // newly acknowledged payload bytes
	// Have reports, on a ProbeAck, whether the receiver holds the
	// probed segment (PASE's loss-vs-delay discrimination).
	Have bool

	// CSeq is the credit sequence number: stamped by an ExpressPass
	// receiver on each Credit, echoed by the sender on the data packet
	// that credit triggered. The echo lets the receiver measure credit
	// loss precisely — only credits whose round trip completed count —
	// instead of guessing from a lagged send/receive ratio.
	CSeq int64

	// Ctrl and protocol-specific header contents.
	Ctrl any

	// SentAt is stamped by the sender for RTT sampling; EnqAt by the
	// queue for queueing-delay accounting.
	SentAt sim.Time
	EnqAt  sim.Time

	// Hops counts the links traversed so far (TTL-style guard).
	Hops int8
}

// IsControl reports whether the packet belongs to the arbitration
// control plane rather than the data plane.
func (p *Packet) IsControl() bool { return p.Type == Ctrl }

func (p *Packet) String() string {
	return fmt.Sprintf("%s flow=%d %d->%d seq=%d size=%dB prio=%d rank=%d",
		p.Type, p.Flow, p.Src, p.Dst, p.Seq, p.Size, p.Prio, p.Rank)
}

// DataPackets returns how many MSS segments a flow of size bytes needs.
func DataPackets(size int64) int32 {
	if size <= 0 {
		return 0
	}
	return int32((size + MSS - 1) / MSS)
}

// SegmentWireSize returns the on-the-wire size of segment seq of a flow
// with the given total payload size: MTU for full segments, smaller for
// the trailing one.
func SegmentWireSize(size int64, seq int32) int32 {
	n := DataPackets(size)
	if seq < 0 || seq >= n {
		return HeaderSize
	}
	if seq == n-1 {
		last := size - int64(n-1)*MSS
		return int32(last) + HeaderSize
	}
	return MTU
}
