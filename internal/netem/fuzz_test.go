package netem

import (
	"testing"

	"pase/internal/check"
	"pase/internal/pkt"
	"pase/internal/sim"
)

// The fuzz targets drive the queue disciplines with arbitrary
// enqueue/dequeue sequences under the strict invariant checker (which
// panics on the first violation) plus a handful of model-independent
// properties: occupancy bounds, byte accounting against a shadow
// ledger, and end-state packet conservation. They run continuously
// under `go test -fuzz` and as plain regression tests over the seed
// corpus in testdata/fuzz/.

// fuzzClock is a trivial checker clock for data-structure fuzzing —
// the queues under test never consult simulated time.
func fuzzClock() int64 { return 0 }

// FuzzPrioQueue exercises the strict-priority discipline across both
// buffer modes (shared with push-out, per-band) with hostile priority
// values, ECN mixes and interleaved dequeues.
func FuzzPrioQueue(f *testing.F) {
	f.Add([]byte{2, 4, 2, 0, 0x10, 0x81, 0x7f, 0x00, 0xff, 0x12})
	f.Add([]byte{4, 1, 0, 1, 0xff, 0xfe, 0xfd, 0x80, 0x01, 0x02, 0x03})
	f.Add([]byte{1, 8, 3, 2, 0x00, 0x40, 0x80, 0xc0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		bands := 1 + int(data[0])%6
		limit := int(data[1]) % 12
		k := int(data[2]) % 6
		mode := data[3]
		q := NewPrio(bands, limit, k)
		q.PerBand = mode&1 != 0
		q.DisablePushOut = mode&2 != 0
		q.AttachCheck("fuzz/prio", check.NewStrict(fuzzClock))

		var seq int32
		for _, op := range data[4:] {
			if op&0x80 != 0 {
				q.Dequeue()
				continue
			}
			seq++
			q.Enqueue(&pkt.Packet{
				Flow: pkt.FlowID(op % 5), Seq: seq, Type: pkt.Data,
				Prio: int8(op) - 3, // negative and oversized bands included
				Size: pkt.MTU, ECT: op&0x40 != 0,
			})
		}
		// Occupancy bounds: shared mode bounds the total, per-band mode
		// each band.
		if q.PerBand {
			for b := 0; b < bands; b++ {
				if q.BandLen(b) > limit {
					t.Fatalf("band %d holds %d > limit %d", b, q.BandLen(b), limit)
				}
			}
		} else if q.Len() > limit {
			t.Fatalf("len %d > limit %d", q.Len(), limit)
		}
		// Every packet occupies MTU bytes: byte and packet accounting
		// must agree with each other and with the per-band sums.
		total := 0
		for b := 0; b < bands; b++ {
			total += q.BandLen(b)
		}
		if total != q.Len() {
			t.Fatalf("band sum %d != Len %d", total, q.Len())
		}
		if q.Bytes() != int64(total)*pkt.MTU {
			t.Fatalf("Bytes() = %d, want %d", q.Bytes(), int64(total)*pkt.MTU)
		}
		q.CheckConservation()

		// Draining must yield exactly Len packets (the attached strict
		// checker verifies band order on every dequeue).
		for n := q.Len(); n > 0; n-- {
			if q.Dequeue() == nil {
				t.Fatal("Dequeue returned nil with packets queued")
			}
		}
		if q.Dequeue() != nil {
			t.Fatal("drained queue still yields packets")
		}
		if q.Bytes() != 0 {
			t.Fatalf("drained queue reports %d bytes", q.Bytes())
		}
		q.CheckConservation()
	})
}

// FuzzCreditQueue exercises the ExpressPass port discipline: per-class
// bounds, the credit pacing gap (the strict checker's credit_pace
// invariant panics if a credit ever releases early), class service
// order, byte accounting and end-state conservation, under arbitrary
// enqueue/dequeue/clock-advance sequences.
func FuzzCreditQueue(f *testing.F) {
	f.Add([]byte{4, 2, 3, 1, 0x01, 0x82, 0x43, 0x84, 0x25, 0x96})
	f.Add([]byte{9, 1, 1, 4, 0xc1, 0x02, 0x83, 0x44, 0x85, 0x06, 0x87})
	f.Add([]byte{2, 5, 2, 2, 0x11, 0x12, 0x93, 0x94, 0x95, 0x16, 0x97, 0x18})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			return
		}
		dataLim := int(data[0]) % 12
		credLim := int(data[1]) % 6
		ctrlLim := int(data[2]) % 6
		gap := sim.Duration(1+int(data[3])%8) * sim.Microsecond
		q := NewCreditQueue(dataLim, credLim, ctrlLim)
		q.Gap = gap
		var now sim.Time
		q.BindClock(func() sim.Time { return now })
		q.AttachCheck("fuzz/credit", check.NewStrict(func() int64 { return int64(now) }))

		// Shadow ledger: bytes by class, plus an independent pacing
		// oracle alongside the strict checker's.
		var bytes int64
		var lastEligible sim.Time
		var seq int32
		for _, op := range data[4:] {
			// Low bits advance the clock so eligibility windows open and
			// close mid-sequence.
			now = now.Add(sim.Duration(op&0x0f) * 500 * sim.Nanosecond)
			if op&0x80 != 0 {
				p := q.Dequeue()
				if p == nil {
					continue
				}
				bytes -= int64(p.Size)
				if p.Type == pkt.Credit {
					if now < lastEligible {
						t.Fatalf("credit released at %v before eligibility %v", now, lastEligible)
					}
					lastEligible = now.Add(gap)
				}
				continue
			}
			seq++
			var p *pkt.Packet
			switch op % 3 {
			case 0:
				p = &pkt.Packet{Flow: 1, Seq: seq, Type: pkt.Data, Size: pkt.MTU}
			case 1:
				p = &pkt.Packet{Flow: 1, Seq: seq, Type: pkt.Credit, Size: pkt.CreditSize}
			default:
				p = &pkt.Packet{Flow: 1, Seq: seq, Type: pkt.Ack, Size: pkt.HeaderSize}
			}
			if q.Enqueue(p) {
				bytes += int64(p.Size)
			}
		}
		if q.DataLen() > dataLim || q.CreditLen() > credLim {
			t.Fatalf("class over bound: data %d/%d credit %d/%d",
				q.DataLen(), dataLim, q.CreditLen(), credLim)
		}
		if q.Bytes() != bytes {
			t.Fatalf("Bytes() = %d, shadow ledger %d", q.Bytes(), bytes)
		}
		q.CheckConservation()

		// Drain: advancing the clock one gap per pull must empty the
		// queue (credits become eligible, data and ctrl always are).
		for i := q.Len(); i > 0; i-- {
			now = now.Add(gap)
			if q.Dequeue() == nil {
				t.Fatalf("nil dequeue with %d packets queued", q.Len())
			}
		}
		if q.Dequeue() != nil {
			t.Fatal("drained queue still yields packets")
		}
		if q.Bytes() != 0 {
			t.Fatalf("drained queue reports %d bytes", q.Bytes())
		}
		q.CheckConservation()
	})
}

// FuzzPfabricQueue exercises the pFabric shared buffer: priority
// eviction under overflow, rank-ordered scheduling with the
// starvation-prevention rule, and exact byte/packet accounting.
func FuzzPfabricQueue(f *testing.F) {
	f.Add([]byte{3, 0x01, 0x42, 0x83, 0x24, 0xc5, 0x66})
	f.Add([]byte{1, 0xff, 0x00, 0x80, 0x7f, 0x81})
	f.Add([]byte{6, 0x11, 0x12, 0x13, 0x94, 0x15, 0x96, 0x17})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		limit := int(data[0]) % 10
		q := NewPFabric(limit)
		q.AttachCheck("fuzz/pfabric", check.NewStrict(fuzzClock))

		live := map[*pkt.Packet]bool{}
		var seq int32
		for _, op := range data[1:] {
			if op&0x80 != 0 {
				p := q.Dequeue()
				if p == nil {
					if q.Len() != 0 {
						t.Fatal("nil dequeue from non-empty queue")
					}
					continue
				}
				if !live[p] {
					t.Fatal("dequeued a packet that was never accepted (or twice)")
				}
				delete(live, p)
				continue
			}
			seq++
			p := &pkt.Packet{
				Flow: pkt.FlowID(op % 4), Seq: seq, Type: pkt.Data,
				Rank: int64(op&0x3f) - 8, // negative ranks included
				Size: pkt.MTU, ECT: true,
			}
			if q.Enqueue(p) {
				live[p] = true
			}
		}
		if q.Len() > limit {
			t.Fatalf("len %d > limit %d", q.Len(), limit)
		}
		// live overcounts by the eviction victims; drain and strike out.
		drained := 0
		for {
			p := q.Dequeue()
			if p == nil {
				break
			}
			if !live[p] {
				t.Fatal("drained a packet that was never accepted")
			}
			delete(live, p)
			drained++
		}
		if q.Bytes() != 0 {
			t.Fatalf("drained queue reports %d bytes", q.Bytes())
		}
		// Whatever is left in live was evicted: accepted - dequeued -
		// evicted must balance to zero now that the queue is empty.
		st := q.Stats()
		evicted := int64(len(live))
		if st.Enqueued != st.Dequeued+evicted {
			t.Fatalf("conservation: enq %d != deq %d + evicted %d",
				st.Enqueued, st.Dequeued, evicted)
		}
		q.CheckConservation()
	})
}
