package netem

// CommoditySwitch records the priority-queue and ECN capabilities of a
// popular top-of-rack switch, per interface (Table 2 of the paper).
// PASE's deployability argument rests on these numbers: it needs only
// what this table offers.
type CommoditySwitch struct {
	Model  string
	Vendor string
	Queues int
	ECN    bool
}

// CommoditySwitches is Table 2 of the paper.
var CommoditySwitches = []CommoditySwitch{
	{Model: "BCM56820", Vendor: "Broadcom", Queues: 10, ECN: true},
	{Model: "G8264", Vendor: "IBM", Queues: 8, ECN: true},
	{Model: "7050S", Vendor: "Arista", Queues: 7, ECN: true},
	{Model: "EX3300", Vendor: "Juniper", Queues: 5, ECN: false},
	{Model: "S4810", Vendor: "Dell", Queues: 3, ECN: true},
}

// MinCommodityQueues is the smallest per-interface queue count in the
// survey; experiment configs that claim deployability must fit it or
// explicitly justify a larger choice.
func MinCommodityQueues() int {
	min := CommoditySwitches[0].Queues
	for _, s := range CommoditySwitches[1:] {
		if s.Queues < min {
			min = s.Queues
		}
	}
	return min
}

// MaxCommodityQueues is the largest per-interface queue count surveyed.
func MaxCommodityQueues() int {
	max := CommoditySwitches[0].Queues
	for _, s := range CommoditySwitches[1:] {
		if s.Queues > max {
			max = s.Queues
		}
	}
	return max
}
