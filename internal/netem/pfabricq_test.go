package netem

import (
	"testing"

	"pase/internal/pkt"
)

// TestPFabricEdgeCases pins the boundary behavior of the pFabric
// queue's drop and scheduling rules: what happens on an empty queue, on
// rank ties, and when the buffer overflows.
func TestPFabricEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"empty dequeue returns nil", func(t *testing.T) {
			q := NewPFabric(4)
			if p := q.Dequeue(); p != nil {
				t.Fatalf("empty dequeue = %v, want nil", p)
			}
			if q.Len() != 0 || q.Bytes() != 0 {
				t.Fatal("empty queue must report zero length and bytes")
			}
		}},
		{"zero-limit queue drops every arrival", func(t *testing.T) {
			q := NewPFabric(0)
			if q.Enqueue(mkpkt(1, 0, 0, 5)) {
				t.Fatal("zero-capacity queue accepted a packet")
			}
			if q.Stats().Dropped != 1 {
				t.Fatalf("dropped = %d, want 1", q.Stats().Dropped)
			}
		}},
		{"equal ranks dequeue in arrival order", func(t *testing.T) {
			q := NewPFabric(8)
			// Three flows, identical remaining size: FIFO among equals.
			q.Enqueue(mkpkt(1, 0, 0, 100))
			q.Enqueue(mkpkt(2, 0, 0, 100))
			q.Enqueue(mkpkt(3, 0, 0, 100))
			for _, want := range []pkt.FlowID{1, 2, 3} {
				if got := q.Dequeue().Flow; got != want {
					t.Fatalf("dequeue flow = %d, want %d", got, want)
				}
			}
		}},
		{"overflow evicts the largest-rank packet", func(t *testing.T) {
			q := NewPFabric(3)
			q.Enqueue(mkpkt(1, 0, 0, 10))
			q.Enqueue(mkpkt(2, 0, 0, 999)) // least urgent: the victim
			q.Enqueue(mkpkt(3, 0, 0, 20))
			if !q.Enqueue(mkpkt(4, 0, 0, 5)) {
				t.Fatal("more urgent arrival must be accepted")
			}
			if q.Len() != 3 {
				t.Fatalf("len = %d, want 3", q.Len())
			}
			for q.Len() > 0 {
				if f := q.Dequeue().Flow; f == 2 {
					t.Fatal("victim (flow 2, rank 999) still queued")
				}
			}
			if q.Stats().Dropped != 1 {
				t.Fatalf("dropped = %d, want 1", q.Stats().Dropped)
			}
		}},
		{"overflow tie keeps the incumbent, drops the arrival", func(t *testing.T) {
			q := NewPFabric(2)
			q.Enqueue(mkpkt(1, 0, 0, 50))
			q.Enqueue(mkpkt(2, 0, 0, 50))
			// Arrival ties the worst queued rank: eviction must not
			// happen (the rule is strictly-more-urgent replaces).
			if q.Enqueue(mkpkt(3, 0, 0, 50)) {
				t.Fatal("tying arrival must be dropped, not swapped in")
			}
			if q.Stats().Dropped != 1 || q.Len() != 2 {
				t.Fatalf("dropped=%d len=%d, want 1 and 2", q.Stats().Dropped, q.Len())
			}
		}},
		{"overflow evicts newest among equal worst ranks", func(t *testing.T) {
			q := NewPFabric(2)
			q.Enqueue(mkpkt(1, 0, 0, 100))
			q.Enqueue(mkpkt(2, 0, 0, 100))
			if !q.Enqueue(mkpkt(3, 0, 0, 10)) {
				t.Fatal("more urgent arrival must be accepted")
			}
			// Flow 2 arrived later; among the tied worst packets it is
			// the eviction victim.
			var left []pkt.FlowID
			for q.Len() > 0 {
				left = append(left, q.Dequeue().Flow)
			}
			if len(left) != 2 || left[0] != 3 || left[1] != 1 {
				t.Fatalf("remaining flows = %v, want [3 1]", left)
			}
		}},
		{"starvation rule sends earliest seq of the urgent flow", func(t *testing.T) {
			q := NewPFabric(8)
			// Flow 1's later segment has the smallest rank (remaining
			// size shrinks as a flow drains), but its earlier segment
			// must leave first.
			q.Enqueue(mkpkt(1, 0, 0, 30))
			q.Enqueue(mkpkt(2, 0, 0, 20))
			q.Enqueue(mkpkt(1, 1, 0, 10)) // most urgent packet overall
			p := q.Dequeue()
			if p.Flow != 1 || p.Seq != 0 {
				t.Fatalf("dequeued flow %d seq %d, want flow 1 seq 0", p.Flow, p.Seq)
			}
		}},
		{"bytes track accepts, evictions and dequeues", func(t *testing.T) {
			q := NewPFabric(2)
			q.Enqueue(mkpkt(1, 0, 0, 10))
			q.Enqueue(mkpkt(2, 0, 0, 99))
			q.Enqueue(mkpkt(3, 0, 0, 1)) // evicts flow 2
			if q.Bytes() != 2*pkt.MTU {
				t.Fatalf("bytes = %d, want %d", q.Bytes(), 2*pkt.MTU)
			}
			q.Dequeue()
			q.Dequeue()
			if q.Bytes() != 0 || q.Len() != 0 {
				t.Fatalf("drained queue: bytes=%d len=%d, want 0,0", q.Bytes(), q.Len())
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}
