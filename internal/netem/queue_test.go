package netem

import (
	"testing"
	"testing/quick"

	"pase/internal/pkt"
)

func mkpkt(flow pkt.FlowID, seq int32, prio int8, rank int64) *pkt.Packet {
	return &pkt.Packet{
		Flow: flow, Seq: seq, Prio: prio, Rank: rank,
		Size: pkt.MTU, Type: pkt.Data, ECT: true,
	}
}

func TestDropTailFIFOAndLimit(t *testing.T) {
	q := NewDropTail(3)
	for i := int32(0); i < 5; i++ {
		q.Enqueue(mkpkt(1, i, 0, 0))
	}
	if q.Len() != 3 {
		t.Fatalf("len = %d, want 3", q.Len())
	}
	if q.Stats().Dropped != 2 {
		t.Fatalf("dropped = %d, want 2", q.Stats().Dropped)
	}
	for i := int32(0); i < 3; i++ {
		p := q.Dequeue()
		if p.Seq != i {
			t.Fatalf("dequeue order broken: got seq %d want %d", p.Seq, i)
		}
	}
	if q.Dequeue() != nil {
		t.Fatal("empty queue should return nil")
	}
}

func TestFIFOWraparound(t *testing.T) {
	q := NewDropTail(1000)
	seq := int32(0)
	next := int32(0)
	// Interleave pushes and pops to force ring wraparound.
	for round := 0; round < 50; round++ {
		for i := 0; i < 7; i++ {
			q.Enqueue(mkpkt(1, seq, 0, 0))
			seq++
		}
		for i := 0; i < 5; i++ {
			p := q.Dequeue()
			if p == nil || p.Seq != next {
				t.Fatalf("round %d: got %v, want seq %d", round, p, next)
			}
			next++
		}
	}
	for q.Len() > 0 {
		p := q.Dequeue()
		if p.Seq != next {
			t.Fatalf("drain: got seq %d, want %d", p.Seq, next)
		}
		next++
	}
	if next != seq {
		t.Fatalf("drained %d packets, pushed %d", next, seq)
	}
}

func TestREDECNMarksAboveK(t *testing.T) {
	q := NewREDECN(100, 5)
	for i := int32(0); i < 10; i++ {
		q.Enqueue(mkpkt(1, i, 0, 0))
	}
	marked := 0
	for q.Len() > 0 {
		if q.Dequeue().CE {
			marked++
		}
	}
	// Packets 0..4 arrive below threshold; 5..9 at/above it.
	if marked != 5 {
		t.Fatalf("marked = %d, want 5", marked)
	}
	if q.Stats().Marked != 5 {
		t.Fatalf("stats.Marked = %d, want 5", q.Stats().Marked)
	}
}

func TestREDECNIgnoresNonECT(t *testing.T) {
	q := NewREDECN(100, 0)
	p := mkpkt(1, 0, 0, 0)
	p.ECT = false
	q.Enqueue(p)
	if q.Dequeue().CE {
		t.Fatal("non-ECT packet must not be CE-marked")
	}
}

func TestPrioStrictOrdering(t *testing.T) {
	q := NewPrio(4, 100, 50)
	q.Enqueue(mkpkt(1, 0, 3, 0))
	q.Enqueue(mkpkt(2, 0, 1, 0))
	q.Enqueue(mkpkt(3, 0, 0, 0))
	q.Enqueue(mkpkt(4, 0, 2, 0))
	q.Enqueue(mkpkt(5, 1, 0, 0))
	var flows []pkt.FlowID
	for q.Len() > 0 {
		flows = append(flows, q.Dequeue().Flow)
	}
	want := []pkt.FlowID{3, 5, 2, 4, 1}
	for i := range want {
		if flows[i] != want[i] {
			t.Fatalf("dequeue order = %v, want %v", flows, want)
		}
	}
}

func TestPrioClampsBand(t *testing.T) {
	q := NewPrio(4, 100, 50)
	q.Enqueue(mkpkt(1, 0, 9, 0))  // clamps to band 3
	q.Enqueue(mkpkt(2, 0, -2, 0)) // clamps to band 0
	if q.BandLen(3) != 1 || q.BandLen(0) != 1 {
		t.Fatalf("clamping failed: band0=%d band3=%d", q.BandLen(0), q.BandLen(3))
	}
}

func TestPrioPushOut(t *testing.T) {
	q := NewPrio(2, 4, 50)
	for i := int32(0); i < 4; i++ {
		q.Enqueue(mkpkt(1, i, 1, 0)) // fill with low priority
	}
	ok := q.Enqueue(mkpkt(2, 0, 0, 0)) // high-priority arrival
	if !ok {
		t.Fatal("high-priority arrival should push out a low-priority packet")
	}
	if q.Len() != 4 {
		t.Fatalf("len = %d, want 4", q.Len())
	}
	if q.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", q.Stats().Dropped)
	}
	if got := q.Dequeue().Flow; got != 2 {
		t.Fatalf("first out = flow %d, want 2", got)
	}
	// Newest low-priority packet (seq 3) was the victim.
	var seqs []int32
	for q.Len() > 0 {
		seqs = append(seqs, q.Dequeue().Seq)
	}
	for _, s := range seqs {
		if s == 3 {
			t.Fatal("victim seq 3 still queued")
		}
	}
}

func TestPrioFullLowPriorityArrivalDropped(t *testing.T) {
	q := NewPrio(2, 2, 50)
	q.Enqueue(mkpkt(1, 0, 0, 0))
	q.Enqueue(mkpkt(1, 1, 0, 0))
	if q.Enqueue(mkpkt(2, 0, 1, 0)) {
		t.Fatal("low-priority arrival into full higher-priority buffer must drop")
	}
}

func TestPrioDisablePushOut(t *testing.T) {
	q := NewPrio(2, 2, 50)
	q.DisablePushOut = true
	q.Enqueue(mkpkt(1, 0, 1, 0))
	q.Enqueue(mkpkt(1, 1, 1, 0))
	if q.Enqueue(mkpkt(2, 0, 0, 0)) {
		t.Fatal("with push-out disabled a full buffer drops all arrivals")
	}
}

func TestPFabricDropsLeastUrgent(t *testing.T) {
	q := NewPFabric(3)
	q.Enqueue(mkpkt(1, 0, 0, 100))
	q.Enqueue(mkpkt(2, 0, 0, 300))
	q.Enqueue(mkpkt(3, 0, 0, 200))
	// Full. A more urgent packet evicts rank 300.
	if !q.Enqueue(mkpkt(4, 0, 0, 50)) {
		t.Fatal("urgent packet should be accepted via eviction")
	}
	if q.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", q.Stats().Dropped)
	}
	// A less urgent packet than everything queued is itself dropped.
	if q.Enqueue(mkpkt(5, 0, 0, 400)) {
		t.Fatal("least-urgent arrival must be dropped")
	}
	var ranks []int64
	for q.Len() > 0 {
		ranks = append(ranks, q.Dequeue().Rank)
	}
	want := []int64{50, 100, 200}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", ranks, want)
		}
	}
}

func TestPFabricSameFlowEarliestSeqFirst(t *testing.T) {
	q := NewPFabric(10)
	// Flow 7 has the most urgent packet (rank 10, seq 5) but an older
	// segment (seq 2, rank 20) is also queued: seq 2 must leave first.
	q.Enqueue(mkpkt(9, 0, 0, 50))
	q.Enqueue(mkpkt(7, 2, 0, 20))
	q.Enqueue(mkpkt(7, 5, 0, 10))
	p := q.Dequeue()
	if p.Flow != 7 || p.Seq != 2 {
		t.Fatalf("got flow %d seq %d, want flow 7 seq 2", p.Flow, p.Seq)
	}
	p = q.Dequeue()
	if p.Flow != 7 || p.Seq != 5 {
		t.Fatalf("got flow %d seq %d, want flow 7 seq 5", p.Flow, p.Seq)
	}
	if q.Dequeue().Flow != 9 {
		t.Fatal("flow 9 should drain last")
	}
}

// Property: no discipline ever loses or duplicates packets — everything
// enqueued is either dequeued or counted as dropped.
func TestQueueConservation(t *testing.T) {
	mk := map[string]func() Queue{
		"droptail": func() Queue { return NewDropTail(8) },
		"red":      func() Queue { return NewREDECN(8, 4) },
		"prio":     func() Queue { return NewPrio(4, 8, 4) },
		"pfabric":  func() Queue { return NewPFabric(8) },
	}
	for name, factory := range mk {
		name, factory := name, factory
		f := func(ops []uint16) bool {
			q := factory()
			inQueue := 0
			var enq, deq int64
			for i, op := range ops {
				if op%3 == 0 && inQueue > 0 {
					if q.Dequeue() != nil {
						deq++
						inQueue--
					}
				} else {
					p := mkpkt(pkt.FlowID(op%5), int32(i), int8(op%4), int64(op%97))
					if q.Enqueue(p) {
						enq++
						inQueue++
					}
					// Push-out/eviction may have dropped another
					// packet; recompute from Len.
					inQueue = q.Len()
				}
			}
			st := q.Stats()
			_ = enq
			_ = deq
			// Invariant: Enqueued - Dequeued - Len == packets evicted
			// after acceptance, which must be within Dropped.
			evicted := st.Enqueued - st.Dequeued - int64(q.Len())
			if evicted < 0 || evicted > st.Dropped {
				t.Logf("%s: enq=%d deq=%d len=%d dropped=%d", name, st.Enqueued, st.Dequeued, q.Len(), st.Dropped)
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestSwitchDB(t *testing.T) {
	if len(CommoditySwitches) != 5 {
		t.Fatalf("Table 2 has 5 switches, got %d", len(CommoditySwitches))
	}
	if MinCommodityQueues() != 3 {
		t.Fatalf("min queues = %d, want 3 (Dell S4810)", MinCommodityQueues())
	}
	if MaxCommodityQueues() != 10 {
		t.Fatalf("max queues = %d, want 10 (Broadcom BCM56820)", MaxCommodityQueues())
	}
	ecn := 0
	for _, s := range CommoditySwitches {
		if s.ECN {
			ecn++
		}
	}
	if ecn != 4 {
		t.Fatalf("ECN-capable = %d, want 4", ecn)
	}
}
