package netem

import (
	"pase/internal/check"
	"pase/internal/obs"
	"pase/internal/pkt"
	"pase/internal/sim"
)

// CreditQueue is the ExpressPass port discipline: three class queues
// behind one transmitter.
//
//   - Credit packets sit in a small dedicated FIFO whose drain is
//     rate-limited so one credit leaves per serialization time of the
//     (MTU-sized) data packet it triggers plus the credit itself —
//     credits consume ~5% of the line and the data they summon on the
//     reverse path can never exceed the remaining ~95%. Credits
//     arriving beyond the FIFO's shallow bound are dropped; that drop
//     is the shaper's feedback signal, not loss.
//   - Data packets use a FIFO bounded at DataLimit. Because every data
//     packet was summoned by a shaped credit, this bound holds by
//     construction; a data drop here means the credit loop is broken.
//   - Everything else (ACKs, credit requests, control) shares a third
//     FIFO served ahead of data — these packets are tiny and opening a
//     flow must not wait behind a full data queue.
//
// An eligible credit is served first, then the ctrl class, then data.
// When only an ineligible credit waits, the queue arms a timer on the
// bound engine that kicks the port at the credit's eligibility time —
// the port's pull-based pump would otherwise stall until the next Send.
type CreditQueue struct {
	// DataLimit / CreditLimit / CtrlLimit bound the three class FIFOs
	// (packets).
	DataLimit   int
	CreditLimit int
	CtrlLimit   int
	// Gap is the minimum spacing between credit releases. Bind derives
	// it from the port rate when left zero.
	Gap sim.Duration
	// Occ, when set, records post-enqueue data-queue occupancy.
	Occ *obs.Histogram

	eng   *sim.Engine
	kick  func()
	now   func() sim.Time
	timer sim.Timer
	bound bool

	next   sim.Time // earliest eligible release of the head credit
	data   fifo
	ctrl   fifo
	credit fifo

	stats    QueueStats
	chk      *check.Checker
	chkLabel string
}

// NewCreditQueue returns an ExpressPass discipline with the given data
// and credit bounds. The ctrl class is bounded at ctrlLimit packets.
// Call Bind once the owning port exists; until then the queue serves
// classes without pacing deadlines (a zero clock).
func NewCreditQueue(dataLimit, creditLimit, ctrlLimit int) *CreditQueue {
	return &CreditQueue{DataLimit: dataLimit, CreditLimit: creditLimit, CtrlLimit: ctrlLimit}
}

// Bind connects the queue to its port: the engine clock and transmitter
// kick for pacing timers, and (when Gap is unset) the credit spacing
// derived from the port rate — one credit per MTU+credit serialization
// time, i.e. credits shaped to ~5% of the line.
func (q *CreditQueue) Bind(pt *Port) {
	q.eng = pt.Engine()
	q.kick = pt.Kick
	q.now = q.eng.Now
	if q.Gap == 0 {
		q.Gap = pt.Rate().Serialize(pkt.MTU + pkt.CreditSize)
	}
	q.bound = true
}

// BindClock installs just a time source (standalone tests and fuzzing,
// where no port pulls from the queue and no kick timer is wanted).
func (q *CreditQueue) BindClock(now func() sim.Time) { q.now = now }

// AttachCheck implements Checkable.
func (q *CreditQueue) AttachCheck(label string, c *check.Checker) {
	q.chkLabel, q.chk = label, c
}

// CheckConservation implements Checkable.
func (q *CreditQueue) CheckConservation() {
	q.chk.Conservation(q.chkLabel, q.stats.Enqueued, q.stats.Dequeued, q.stats.Dropped, q.Len())
}

// Enqueue implements Queue.
func (q *CreditQueue) Enqueue(p *pkt.Packet) bool {
	switch p.Type {
	case pkt.Credit:
		if q.credit.len() >= q.CreditLimit {
			q.stats.drop(p)
			return false
		}
		q.credit.push(p)
	case pkt.Data:
		if q.data.len() >= q.DataLimit {
			q.stats.drop(p)
			return false
		}
		q.data.push(p)
	default:
		if q.ctrl.len() >= q.CtrlLimit {
			q.stats.drop(p)
			return false
		}
		q.ctrl.push(p)
	}
	q.stats.accept(p)
	// MaxLen tracks the data class — the occupancy ExpressPass bounds
	// by construction and the figure's queue-peak metric reads.
	q.stats.noteLen(q.data.len())
	q.Occ.Observe(int64(q.data.len()))
	if q.chk != nil {
		q.chk.QueueCap(q.chkLabel+"/data", q.data.len(), q.DataLimit)
		q.chk.QueueCap(q.chkLabel+"/credit", q.credit.len(), q.CreditLimit)
		q.chk.QueueCap(q.chkLabel+"/ctrl", q.ctrl.len(), q.CtrlLimit)
	}
	return true
}

// Dequeue implements Queue: eligible credit, then ctrl, then data.
func (q *CreditQueue) Dequeue() *pkt.Packet {
	var now sim.Time
	if q.now != nil {
		now = q.now()
	}
	if q.credit.len() > 0 && now >= q.next {
		p := q.credit.pop()
		q.stats.Dequeued++
		if q.chk != nil {
			q.chk.CreditPace(q.chkLabel, int64(now), int64(q.next))
		}
		q.next = now.Add(q.Gap)
		return p
	}
	if p := q.ctrl.pop(); p != nil {
		q.stats.Dequeued++
		return p
	}
	if p := q.data.pop(); p != nil {
		q.stats.Dequeued++
		return p
	}
	if q.credit.len() > 0 {
		q.armKick()
	}
	return nil
}

// armKick schedules a port kick at the head credit's eligibility time;
// without it the pull-based transmitter would idle until the next Send.
func (q *CreditQueue) armKick() {
	if !q.bound || q.timer.Pending() {
		return
	}
	q.timer = q.eng.At(q.next, q.kick)
}

func (q *CreditQueue) Len() int { return q.data.len() + q.ctrl.len() + q.credit.len() }

func (q *CreditQueue) Bytes() int64 { return q.data.size() + q.ctrl.size() + q.credit.size() }

func (q *CreditQueue) Stats() *QueueStats { return &q.stats }

// DataLen exposes the data-class occupancy (tests assert its bound).
func (q *CreditQueue) DataLen() int { return q.data.len() }

// CreditLen exposes the credit-class occupancy.
func (q *CreditQueue) CreditLen() int { return q.credit.len() }
