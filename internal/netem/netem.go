// Package netem provides the network elements of the simulator:
// rate-limited links with propagation delay, output ports with
// pluggable queue disciplines (drop-tail, RED with DCTCP-style ECN
// marking, multi-band strict-priority PRIO, and the pFabric shared
// queue with priority dropping and priority scheduling), and
// output-queued switches.
//
// The packet path is: sender host -> Port.Send -> queue -> serialized
// onto the link at the port rate -> propagation delay -> peer port ->
// owning Node.Receive. Switches route to one of their ports and the
// cycle repeats.
package netem

import (
	"fmt"

	"pase/internal/pkt"
	"pase/internal/sim"
)

// BitRate is a link speed in bits per second.
type BitRate int64

// Common rates.
const (
	Kbps BitRate = 1e3
	Mbps BitRate = 1e6
	Gbps BitRate = 1e9
)

func (r BitRate) String() string {
	switch {
	case r >= Gbps && r%Gbps == 0:
		return fmt.Sprintf("%dGbps", r/Gbps)
	case r >= Mbps && r%Mbps == 0:
		return fmt.Sprintf("%dMbps", r/Mbps)
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}

// Serialize returns the time to clock size bytes onto a link of rate r.
func (r BitRate) Serialize(size int32) sim.Duration {
	if r <= 0 {
		panic("netem: serialization on zero-rate link")
	}
	return sim.Duration(int64(size) * 8 * int64(sim.Second) / int64(r))
}

// BytesPer returns how many bytes rate r delivers in duration d.
func (r BitRate) BytesPer(d sim.Duration) int64 {
	return int64(r) * int64(d) / (8 * int64(sim.Second))
}

// Node is anything that terminates a link: a host or a switch.
type Node interface {
	ID() pkt.NodeID
	// Receive is invoked when a packet fully arrives on one of the
	// node's ports.
	Receive(p *pkt.Packet, on *Port)
}
