package netem

import (
	"testing"

	"pase/internal/check"
	"pase/internal/pkt"
	"pase/internal/sim"
)

func creditPkt(seq int32) *pkt.Packet {
	return &pkt.Packet{Flow: 1, Seq: seq, Type: pkt.Credit, Size: pkt.CreditSize}
}

func ctrlPkt(seq int32) *pkt.Packet {
	return &pkt.Packet{Flow: 1, Seq: seq, Type: pkt.Ack, Size: pkt.HeaderSize}
}

// The three classes bound independently and drop beyond their limits;
// data drops are counted in the data counters, credit drops in the
// credit counters.
func TestCreditQueueClassBounds(t *testing.T) {
	q := NewCreditQueue(2, 1, 1)
	var now sim.Time
	q.BindClock(func() sim.Time { return now })
	for i := int32(0); i < 4; i++ {
		q.Enqueue(mkpkt(1, i, 0, 0))
	}
	for i := int32(0); i < 3; i++ {
		q.Enqueue(creditPkt(i))
		q.Enqueue(ctrlPkt(i))
	}
	if q.DataLen() != 2 || q.CreditLen() != 1 {
		t.Fatalf("data=%d credit=%d, want 2/1", q.DataLen(), q.CreditLen())
	}
	st := q.Stats()
	if st.DroppedData != 2 || st.DroppedCredit != 2 {
		t.Fatalf("droppedData=%d droppedCredit=%d, want 2/2", st.DroppedData, st.DroppedCredit)
	}
	if st.EnqueuedCredit != 1 {
		t.Fatalf("enqueuedCredit=%d, want 1", st.EnqueuedCredit)
	}
	// 2 data + 1 credit + 1 ctrl accepted.
	if st.Enqueued != 4 || st.Dropped != 6 {
		t.Fatalf("enqueued=%d dropped=%d, want 4/6", st.Enqueued, st.Dropped)
	}
}

// Service order: an eligible credit first, then ctrl, then data; a
// just-released credit makes the next one ineligible for one Gap.
func TestCreditQueueServiceOrder(t *testing.T) {
	q := NewCreditQueue(10, 10, 10)
	q.Gap = 10 * sim.Microsecond
	var now sim.Time
	q.BindClock(func() sim.Time { return now })
	q.AttachCheck("credit-test", check.NewStrict(func() int64 { return int64(now) }))

	q.Enqueue(mkpkt(1, 0, 0, 0))
	q.Enqueue(ctrlPkt(0))
	q.Enqueue(creditPkt(0))
	q.Enqueue(creditPkt(1))

	if p := q.Dequeue(); p.Type != pkt.Credit || p.Seq != 0 {
		t.Fatalf("first dequeue = %v, want credit 0", p)
	}
	// Second credit is paced out; ctrl goes next, then data.
	if p := q.Dequeue(); p.Type != pkt.Ack {
		t.Fatalf("second dequeue = %v, want ctrl", p)
	}
	if p := q.Dequeue(); p.Type != pkt.Data {
		t.Fatalf("third dequeue = %v, want data", p)
	}
	if p := q.Dequeue(); p != nil {
		t.Fatalf("credit released before Gap elapsed: %v", p)
	}
	now = now.Add(q.Gap)
	if p := q.Dequeue(); p == nil || p.Type != pkt.Credit || p.Seq != 1 {
		t.Fatalf("eligible credit not released: %v", p)
	}
	q.CheckConservation()
}

// End to end over a real port: a burst of credits must leave the port
// spaced at least one Gap apart, and the queue's self-armed kick timer
// must resume the idle transmitter without any further Send.
func TestCreditQueuePacesOnPort(t *testing.T) {
	eng := sim.NewEngine()
	q := NewCreditQueue(10, 10, 10)
	a := NewHost(0, "a")
	b := NewHost(1, "b")
	pa := NewPort(eng, a, q, Gbps, sim.Microsecond)
	pb := NewPort(eng, b, NewDropTail(16), Gbps, sim.Microsecond)
	Connect(pa, pb)
	a.SetPort(pa)
	b.SetPort(pb)
	q.Bind(pa)

	wantGap := Gbps.Serialize(pkt.MTU + pkt.CreditSize)
	if q.Gap != wantGap {
		t.Fatalf("bound gap = %v, want %v", q.Gap, wantGap)
	}

	var arrivals []sim.Time
	b.Handler = func(p *pkt.Packet) {
		if p.Type == pkt.Credit {
			arrivals = append(arrivals, eng.Now())
		}
	}
	for i := int32(0); i < 5; i++ {
		a.Send(creditPkt(i))
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 5 {
		t.Fatalf("delivered %d credits, want 5", len(arrivals))
	}
	for i := 1; i < len(arrivals); i++ {
		if got := arrivals[i].Sub(arrivals[i-1]); got < wantGap {
			t.Fatalf("credits %d and %d spaced %v < gap %v", i-1, i, got, wantGap)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue still holds %d packets", q.Len())
	}
	q.CheckConservation()
}

// Data rides through unpaced even while credits wait out their gap.
func TestCreditQueueDataUnpaced(t *testing.T) {
	eng := sim.NewEngine()
	q := NewCreditQueue(10, 10, 10)
	a := NewHost(0, "a")
	b := NewHost(1, "b")
	pa := NewPort(eng, a, q, Gbps, sim.Microsecond)
	pb := NewPort(eng, b, NewDropTail(32), Gbps, sim.Microsecond)
	Connect(pa, pb)
	a.SetPort(pa)
	b.SetPort(pb)
	q.Bind(pa)

	var data, credits int
	b.Handler = func(p *pkt.Packet) {
		if p.Type == pkt.Credit {
			credits++
		} else {
			data++
		}
	}
	for i := int32(0); i < 3; i++ {
		a.Send(creditPkt(i))
		a.Send(mkpkt(1, i, 0, 0))
		a.Send(mkpkt(2, i, 0, 0))
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if credits != 3 || data != 6 {
		t.Fatalf("delivered %d credits, %d data, want 3/6", credits, data)
	}
}
