package netem

import (
	"pase/internal/check"
	"pase/internal/obs"
	"pase/internal/pkt"
)

// PFabric is the pFabric switch queue: a single small shared buffer
// with priority dropping and priority scheduling on the fine-grained
// Rank header (lower Rank = more urgent; pFabric sets Rank to the
// flow's remaining size).
//
//   - Dropping: when the buffer is full and a packet arrives, the
//     queued packet with the largest Rank is evicted if it is less
//     urgent than the arrival; otherwise the arrival is dropped.
//   - Scheduling: dequeue picks the packet with the smallest Rank, but
//     then actually transmits the earliest (lowest-Seq) queued packet
//     of that packet's flow, which avoids flow-internal reordering
//     (the "starvation prevention" rule in the pFabric paper).
//
// The buffer is tiny (≈2×BDP) so linear scans are appropriate — real
// pFabric hardware does the same comparisons in parallel.
type PFabric struct {
	Limit int
	// Occ, when set, records post-enqueue occupancy (packets).
	Occ      *obs.Histogram
	q        []*pkt.Packet
	bytes    int64
	stats    QueueStats
	arr      uint64 // arrival counter for deterministic tie-breaks
	arrOf    map[*pkt.Packet]uint64
	chk      *check.Checker
	chkLabel string
}

// NewPFabric returns a pFabric queue bounded at limit packets.
func NewPFabric(limit int) *PFabric {
	return &PFabric{Limit: limit, arrOf: make(map[*pkt.Packet]uint64)}
}

// AttachCheck implements Checkable.
func (f *PFabric) AttachCheck(label string, c *check.Checker) {
	f.chkLabel, f.chk = label, c
}

// CheckConservation implements Checkable. Priority eviction drops
// packets after acceptance, which the conservation inequality
// accounts for.
func (f *PFabric) CheckConservation() {
	f.chk.Conservation(f.chkLabel, f.stats.Enqueued, f.stats.Dequeued, f.stats.Dropped, len(f.q))
}

// Enqueue implements Queue.
func (f *PFabric) Enqueue(p *pkt.Packet) bool {
	if len(f.q) >= f.Limit {
		vi := f.worst()
		if vi < 0 || f.q[vi].Rank <= p.Rank {
			f.stats.drop(p)
			return false
		}
		victim := f.q[vi]
		f.removeAt(vi)
		f.stats.drop(victim)
	}
	f.arr++
	f.arrOf[p] = f.arr
	f.q = append(f.q, p)
	f.bytes += int64(p.Size)
	f.stats.accept(p)
	f.stats.noteLen(len(f.q))
	f.Occ.Observe(int64(len(f.q)))
	if f.chk != nil {
		f.chk.QueueCap(f.chkLabel, len(f.q), f.Limit)
	}
	return true
}

// worst returns the index of the least urgent packet (largest Rank,
// breaking ties toward the most recent arrival), or -1 if empty.
func (f *PFabric) worst() int {
	best := -1
	for i, p := range f.q {
		if best < 0 || p.Rank > f.q[best].Rank ||
			(p.Rank == f.q[best].Rank && f.arrOf[p] > f.arrOf[f.q[best]]) {
			best = i
		}
	}
	return best
}

// Dequeue implements Queue.
func (f *PFabric) Dequeue() *pkt.Packet {
	if len(f.q) == 0 {
		return nil
	}
	// Most urgent packet decides which flow transmits...
	best := 0
	for i, p := range f.q {
		if p.Rank < f.q[best].Rank ||
			(p.Rank == f.q[best].Rank && f.arrOf[p] < f.arrOf[f.q[best]]) {
			best = i
		}
	}
	flow := f.q[best].Flow
	// ...but the flow's earliest segment goes first.
	sel := best
	for i, p := range f.q {
		if p.Flow == flow && (p.Seq < f.q[sel].Seq ||
			(p.Seq == f.q[sel].Seq && f.arrOf[p] < f.arrOf[f.q[sel]])) {
			sel = i
		}
	}
	p := f.q[sel]
	f.removeAt(sel)
	f.stats.Dequeued++
	return p
}

func (f *PFabric) removeAt(i int) {
	p := f.q[i]
	f.bytes -= int64(p.Size)
	delete(f.arrOf, p)
	f.q[i] = f.q[len(f.q)-1]
	f.q[len(f.q)-1] = nil
	f.q = f.q[:len(f.q)-1]
}

func (f *PFabric) Len() int           { return len(f.q) }
func (f *PFabric) Bytes() int64       { return f.bytes }
func (f *PFabric) Stats() *QueueStats { return &f.stats }
