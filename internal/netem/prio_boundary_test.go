package netem

import (
	"testing"

	"pase/internal/pkt"
)

// TestPrioBandClampBoundaries pins the band-mapping edges: negative
// priorities clamp to the top band, out-of-range ones to the bottom.
func TestPrioBandClampBoundaries(t *testing.T) {
	cases := []struct {
		prio int8
		band int
	}{
		{-128, 0}, {-1, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 3}, {127, 3},
	}
	for _, tc := range cases {
		q := NewPrio(4, 16, 50)
		q.Enqueue(mkpkt(1, 0, tc.prio, 0))
		if got := q.BandLen(tc.band); got != 1 {
			t.Errorf("prio %d: band %d len = %d, want 1", tc.prio, tc.band, got)
		}
	}
}

// TestPrioMarkingThresholdBoundary pins DCTCP-style marking at exactly
// K: an arrival that sees its band at K-1 packets stays unmarked, at K
// it is marked — and non-ECT packets are never marked.
func TestPrioMarkingThresholdBoundary(t *testing.T) {
	const K = 3
	cases := []struct {
		name   string
		occ    int // band occupancy the probe arrival sees
		ect    bool
		marked bool
	}{
		{"below K", K - 1, true, false},
		{"exactly K", K, true, true},
		{"above K", K + 1, true, true},
		{"non-ECT at K", K, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := NewPrio(2, 100, K)
			for i := 0; i < tc.occ; i++ {
				p := mkpkt(1, int32(i), 1, 0)
				p.ECT = false // fillers must not consume marks
				q.Enqueue(p)
			}
			probe := mkpkt(2, 0, 1, 0)
			probe.ECT = tc.ect
			q.Enqueue(probe)
			if probe.CE != tc.marked {
				t.Fatalf("CE = %v, want %v (occ %d, K %d)", probe.CE, tc.marked, tc.occ, K)
			}
		})
	}
}

// TestPrioPushOutVictimSelection pins the shared-buffer eviction rule:
// the victim is the newest packet of the lowest-priority non-empty band
// strictly below the arrival, never the arrival's own band or better.
func TestPrioPushOutVictimSelection(t *testing.T) {
	q := NewPrio(4, 4, 50)
	q.Enqueue(mkpkt(1, 0, 1, 0))
	q.Enqueue(mkpkt(2, 0, 2, 0))
	q.Enqueue(mkpkt(3, 0, 3, 0)) // oldest in band 3
	q.Enqueue(mkpkt(4, 1, 3, 0)) // newest in band 3: the victim
	if !q.Enqueue(mkpkt(5, 0, 0, 0)) {
		t.Fatal("high-priority arrival must push out")
	}
	if q.BandLen(3) != 1 {
		t.Fatalf("band 3 len = %d, want 1", q.BandLen(3))
	}
	// The oldest band-3 packet survived.
	var last *pkt.Packet
	for {
		p := q.Dequeue()
		if p == nil {
			break
		}
		last = p
	}
	if last.Flow != 3 {
		t.Fatalf("surviving band-3 packet is flow %d, want 3 (the oldest)", last.Flow)
	}
}

// TestPrioBottomBandArrivalCannotPushOut: an arrival mapped to the
// bottom band has no band strictly below it — a full buffer drops it
// even when lower-urgency traffic fills other bands above.
func TestPrioBottomBandArrivalCannotPushOut(t *testing.T) {
	q := NewPrio(3, 2, 50)
	q.Enqueue(mkpkt(1, 0, 2, 0))
	q.Enqueue(mkpkt(2, 0, 2, 0))
	if q.Enqueue(mkpkt(3, 0, 2, 0)) {
		t.Fatal("bottom-band arrival into a full buffer must drop")
	}
	if q.Enqueue(mkpkt(4, 0, 127, 0)) { // clamps to the bottom band too
		t.Fatal("clamped bottom-band arrival must drop as well")
	}
	if q.Stats().Dropped != 2 || q.Len() != 2 {
		t.Fatalf("dropped=%d len=%d, want 2 and 2", q.Stats().Dropped, q.Len())
	}
}

// TestPrioSingleBandDegeneratesToDropTail: with one band there is never
// a band strictly below, so the discipline is plain shared drop-tail.
func TestPrioSingleBandDegeneratesToDropTail(t *testing.T) {
	q := NewPrio(1, 2, 50)
	for i := int32(0); i < 4; i++ {
		q.Enqueue(mkpkt(1, i, 0, 0))
	}
	if q.Len() != 2 || q.Stats().Dropped != 2 {
		t.Fatalf("len=%d dropped=%d, want 2 and 2", q.Len(), q.Stats().Dropped)
	}
	for i := int32(0); i < 2; i++ {
		if p := q.Dequeue(); p.Seq != i {
			t.Fatalf("seq %d dequeued, want %d (FIFO)", p.Seq, i)
		}
	}
}
