package netem

import (
	"pase/internal/pkt"
	"pase/internal/sim"
)

// Port is one direction of a link: an egress queue plus a transmitter
// that clocks packets out at the port rate, followed by the link's
// propagation delay. Full-duplex links are a pair of connected ports.
type Port struct {
	// Name labels the port for diagnostics ("tor0->agg0").
	Name string

	eng   *sim.Engine
	queue Queue
	rate  BitRate
	delay sim.Duration

	peer  *Port
	owner Node

	busy bool

	// remote, when set, replaces the in-line delivery Schedule with a
	// cross-shard handoff (sharded runs): the packet's arrival at the
	// peer is buffered by the coordinator and released at the next
	// barrier, carrying the rank slot captured here so it sorts on the
	// destination shard exactly where the serial engine would have put
	// it. The propagation delay guarantees the delivery time is at
	// least one lookahead past the transmitting window's start.
	remote func(at sim.Time, ctx *sim.Rank, k uint64, fn func())

	// Faults, when set, lets a fault injector pause the transmitter
	// (link down) and discard transmitted packets (loss/corruption).
	Faults PortFaults

	// TxPackets / TxBytes count what was actually transmitted.
	TxPackets int64
	TxBytes   int64
	// busyTime accumulates transmitter-active time for utilization.
	busyTime sim.Duration
}

// PortFaults is the hook a fault injector installs on a port. Blocked
// pauses the transmitter before it dequeues (packets keep queueing and
// drain when the outage ends — see Kick); Lose is consulted after a
// packet consumed its serialization time and discards it in flight.
type PortFaults interface {
	Blocked(pt *Port) bool
	Lose(pt *Port, p *pkt.Packet) bool
}

// BlackholeObserver is optionally implemented by a PortFaults hook
// that wants drops caused by an outage counted separately: when the
// egress queue rejects a packet while the link is Blocked, the drop is
// a blackhole (the queue backed up because the transmitter is paused),
// not ordinary congestion overflow, and Send reports it here.
type BlackholeObserver interface {
	Blackholed(pt *Port, p *pkt.Packet)
}

// NewPort builds a port owned by node, draining q at rate with the
// given one-way propagation delay.
func NewPort(eng *sim.Engine, owner Node, q Queue, rate BitRate, delay sim.Duration) *Port {
	return &Port{eng: eng, owner: owner, queue: q, rate: rate, delay: delay}
}

// Connect wires two ports as the two directions of one full-duplex link.
func Connect(a, b *Port) {
	a.peer = b
	b.peer = a
}

// Owner returns the node this port belongs to.
func (pt *Port) Owner() Node { return pt.owner }

// Engine returns the engine the port's transmitter is clocked by (the
// owner's shard engine in sharded runs).
func (pt *Port) Engine() *sim.Engine { return pt.eng }

// Peer returns the port at the other end of the link.
func (pt *Port) Peer() *Port { return pt.peer }

// Queue returns the port's egress queue.
func (pt *Port) Queue() Queue { return pt.queue }

// Rate returns the port's transmit rate.
func (pt *Port) Rate() BitRate { return pt.rate }

// PropDelay returns the link's one-way propagation delay.
func (pt *Port) PropDelay() sim.Duration { return pt.delay }

// Send offers a packet to the egress queue and kicks the transmitter.
// Drops are absorbed by the queue discipline (and its stats).
func (pt *Port) Send(p *pkt.Packet) {
	if pt.peer == nil {
		panic("netem: Send on unconnected port " + pt.Name)
	}
	p.EnqAt = pt.eng.Now()
	if !pt.queue.Enqueue(p) {
		if pt.Faults != nil && pt.Faults.Blocked(pt) {
			if bo, ok := pt.Faults.(BlackholeObserver); ok {
				bo.Blackholed(pt, p)
			}
		}
		return
	}
	pt.pump()
}

// pump starts a transmission if the line is idle and a packet waits.
func (pt *Port) pump() {
	if pt.busy {
		return
	}
	if pt.Faults != nil && pt.Faults.Blocked(pt) {
		return
	}
	p := pt.queue.Dequeue()
	if p == nil {
		return
	}
	pt.busy = true
	ser := pt.rate.Serialize(p.Size)
	pt.busyTime += ser
	pt.TxPackets++
	pt.TxBytes += int64(p.Size)
	// Line becomes free after serialization; the packet lands at the
	// peer one propagation delay later.
	pt.eng.Schedule(ser, func() {
		pt.busy = false
		pt.pump()
	})
	if pt.Faults != nil && pt.Faults.Lose(pt, p) {
		// Dropped or corrupted on the wire: bandwidth was consumed but
		// the packet never reaches the peer.
		return
	}
	if pt.remote != nil {
		// Cross-shard link: consume the same child slot the Schedule
		// call below would have, so the delivered event keeps its
		// serial rank, and hand the delivery to the coordinator.
		ctx, k := pt.eng.ChildSlot()
		pt.remote(pt.eng.Now().Add(ser+pt.delay), ctx, k, func() {
			pt.peer.owner.Receive(p, pt.peer)
		})
		return
	}
	pt.eng.Schedule(ser+pt.delay, func() {
		pt.peer.owner.Receive(p, pt.peer)
	})
}

// SetRemote installs the cross-shard delivery hook; sharded runs call
// it on the transmitting port of every cut link.
func (pt *Port) SetRemote(f func(at sim.Time, ctx *sim.Rank, k uint64, fn func())) {
	pt.remote = f
}

// Kick restarts a paused transmitter; the fault injector calls it when
// a link outage ends so queued packets resume draining.
func (pt *Port) Kick() { pt.pump() }

// BusyTime returns the accumulated transmitter-active time; divided by
// elapsed simulated time it gives the port's utilization.
func (pt *Port) BusyTime() sim.Duration { return pt.busyTime }

// Utilization reports the fraction of [0, now] the transmitter was busy.
func (pt *Port) Utilization() float64 {
	now := pt.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(pt.busyTime) / float64(now)
}
