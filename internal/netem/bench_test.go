package netem

import (
	"testing"

	"pase/internal/pkt"
)

func benchPackets(n int) []*pkt.Packet {
	ps := make([]*pkt.Packet, n)
	for i := range ps {
		ps[i] = &pkt.Packet{
			Flow: pkt.FlowID(i % 16), Seq: int32(i),
			Prio: int8(i % 8), Rank: int64(i % 977),
			Size: pkt.MTU, Type: pkt.Data, ECT: true,
		}
	}
	return ps
}

func benchQueue(b *testing.B, q Queue) {
	b.Helper()
	ps := benchPackets(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ps[i%len(ps)]
		p.CE = false
		q.Enqueue(p)
		if i%2 == 1 {
			q.Dequeue()
		}
	}
}

func BenchmarkDropTail(b *testing.B) { benchQueue(b, NewDropTail(225)) }
func BenchmarkREDECN(b *testing.B)   { benchQueue(b, NewREDECN(225, 65)) }
func BenchmarkPrio8(b *testing.B)    { benchQueue(b, NewPrio(8, 500, 65)) }
func BenchmarkPFabric(b *testing.B)  { benchQueue(b, NewPFabric(76)) }
