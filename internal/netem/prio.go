package netem

import (
	"pase/internal/check"
	"pase/internal/obs"
	"pase/internal/pkt"
)

// Prio is the commodity-switch discipline PASE relies on: a small,
// fixed number of strict-priority bands (classes) in front of one
// egress link, with DCTCP-style ECN marking per band. It models the
// PRIO/CBQ-over-RED configuration from the paper's testbed (§3.3).
//
// Buffering is shared across bands up to Limit packets. When the
// buffer is full and a packet of band b arrives, the discipline drops
// the newest packet from the lowest-priority non-empty band strictly
// below b ("push-out"); if no such band exists the arrival itself is
// dropped. Commodity shared-buffer switches approximate this with
// per-class dynamic thresholds; the flag DisablePushOut reverts to
// plain shared drop-tail for ablation.
//
// Marking: an arriving ECN-capable packet is marked when its own
// band's occupancy is at or above K. Per-band marking keeps the many
// one-packet windows parked in the bottom band (PASE's paused flows)
// from spuriously marking top-band traffic.
type Prio struct {
	Limit          int
	K              int
	Bands          int
	DisablePushOut bool
	// PerBand gives every band its own Limit-packet queue instead of
	// sharing one buffer — the Linux PRIO/CBQ arrangement of the
	// paper's testbed, where each class has an independent qdisc.
	PerBand bool
	// OccBand, when set, records per-band post-enqueue occupancy
	// (packets); entry b observes band b. A short or nil slice leaves
	// the remaining bands uninstrumented.
	OccBand []*obs.Histogram

	bands    []fifo
	total    int
	bytes    int64
	stats    QueueStats
	chk      *check.Checker
	chkLabel string
}

// NewPrio returns a strict-priority queue with the given number of
// bands, shared buffer limit and per-band marking threshold K (all in
// packets).
func NewPrio(bands, limit, k int) *Prio {
	if bands < 1 {
		panic("netem: Prio needs at least one band")
	}
	return &Prio{Limit: limit, K: k, Bands: bands, bands: make([]fifo, bands)}
}

// AttachCheck implements Checkable.
func (q *Prio) AttachCheck(label string, c *check.Checker) {
	q.chkLabel, q.chk = label, c
}

// CheckConservation implements Checkable. Push-out drops packets after
// acceptance, which the conservation inequality accounts for.
func (q *Prio) CheckConservation() {
	q.chk.Conservation(q.chkLabel, q.stats.Enqueued, q.stats.Dequeued, q.stats.Dropped, q.total)
}

// band clamps a packet's priority class into the configured range.
func (q *Prio) band(p *pkt.Packet) int {
	b := int(p.Prio)
	if b < 0 {
		b = 0
	}
	if b >= q.Bands {
		b = q.Bands - 1
	}
	return b
}

// Enqueue implements Queue.
func (q *Prio) Enqueue(p *pkt.Packet) bool {
	b := q.band(p)
	if q.PerBand {
		if q.bands[b].len() >= q.Limit {
			q.stats.drop(p)
			return false
		}
	} else if q.total >= q.Limit {
		if q.DisablePushOut || !q.pushOutBelow(b) {
			q.stats.drop(p)
			return false
		}
	}
	if p.ECT && q.bands[b].len() >= q.K {
		p.CE = true
		q.stats.Marked++
		if q.chk != nil {
			q.chk.ECNMark(q.chkLabel, uint64(p.Flow), q.bands[b].len(), q.K)
		}
	}
	q.bands[b].push(p)
	q.total++
	q.bytes += int64(p.Size)
	q.stats.accept(p)
	q.stats.noteLen(q.total)
	if b < len(q.OccBand) {
		q.OccBand[b].Observe(int64(q.bands[b].len()))
	}
	if q.chk != nil {
		if q.PerBand {
			q.chk.QueueCap(q.chkLabel, q.bands[b].len(), q.Limit)
		} else {
			q.chk.QueueCap(q.chkLabel, q.total, q.Limit)
		}
	}
	return true
}

// pushOutBelow drops the newest packet of the lowest-priority
// non-empty band strictly below priority b. It reports whether room
// was made.
func (q *Prio) pushOutBelow(b int) bool {
	for v := q.Bands - 1; v > b; v-- {
		if q.bands[v].empty() {
			continue
		}
		victim := q.bands[v].popTail()
		q.total--
		q.bytes -= int64(victim.Size)
		q.stats.drop(victim)
		return true
	}
	return false
}

// Dequeue implements Queue: strict priority, band 0 first.
func (q *Prio) Dequeue() *pkt.Packet {
	for b := 0; b < q.Bands; b++ {
		if q.bands[b].empty() {
			continue
		}
		p := q.bands[b].pop()
		q.total--
		q.bytes -= int64(p.Size)
		q.stats.Dequeued++
		if q.chk != nil {
			// Independent recount of the higher bands: catches any
			// future fast-path (cached non-empty index, per-band
			// counters) that goes stale.
			busy := 0
			for v := 0; v < b; v++ {
				busy += q.bands[v].len()
			}
			q.chk.StrictPrio(q.chkLabel, b, busy)
		}
		return p
	}
	return nil
}

func (q *Prio) Len() int           { return q.total }
func (q *Prio) Bytes() int64       { return q.bytes }
func (q *Prio) Stats() *QueueStats { return &q.stats }

// BandLen returns the occupancy of one band (exported for tests and
// for the micro-benchmarks that inspect queue composition).
func (q *Prio) BandLen(b int) int { return q.bands[b].len() }
