package netem

import (
	"testing"

	"pase/internal/pkt"
)

func TestPrioPerBandIndependentLimits(t *testing.T) {
	q := NewPrio(4, 3, 50)
	q.PerBand = true
	// Fill band 1 to its limit.
	for i := int32(0); i < 3; i++ {
		if !q.Enqueue(mkpkt(1, i, 1, 0)) {
			t.Fatal("band 1 should accept up to its limit")
		}
	}
	if q.Enqueue(mkpkt(1, 3, 1, 0)) {
		t.Fatal("band 1 over limit must drop")
	}
	// Other bands are unaffected by band 1 being full.
	if !q.Enqueue(mkpkt(2, 0, 0, 0)) || !q.Enqueue(mkpkt(3, 0, 3, 0)) {
		t.Fatal("other bands must still accept")
	}
	if q.Len() != 5 {
		t.Fatalf("len = %d, want 5", q.Len())
	}
	if q.Stats().Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", q.Stats().Dropped)
	}
}

func TestPrioPerBandNoPushOut(t *testing.T) {
	q := NewPrio(2, 2, 50)
	q.PerBand = true
	q.Enqueue(mkpkt(1, 0, 1, 0))
	q.Enqueue(mkpkt(1, 1, 1, 0))
	// A high-priority arrival does not evict low-band packets in
	// per-band mode; it has its own empty band.
	if !q.Enqueue(mkpkt(2, 0, 0, 0)) {
		t.Fatal("band 0 arrival should be accepted into its own band")
	}
	if q.Stats().Dropped != 0 {
		t.Fatal("per-band mode must not push out")
	}
}

func TestPrioPerBandMarking(t *testing.T) {
	q := NewPrio(2, 100, 2)
	q.PerBand = true
	for i := int32(0); i < 5; i++ {
		q.Enqueue(mkpkt(1, i, 1, 0))
	}
	marked := 0
	for q.Len() > 0 {
		if q.Dequeue().CE {
			marked++
		}
	}
	if marked != 3 { // arrivals 2,3,4 saw occupancy >= K
		t.Fatalf("marked = %d, want 3", marked)
	}
}

func TestPrioBytesAccounting(t *testing.T) {
	q := NewPrio(3, 10, 50)
	p1 := mkpkt(1, 0, 0, 0)
	p2 := mkpkt(2, 0, 2, 0)
	p2.Size = 40
	q.Enqueue(p1)
	q.Enqueue(p2)
	if q.Bytes() != int64(pkt.MTU+40) {
		t.Fatalf("bytes = %d", q.Bytes())
	}
	q.Dequeue()
	if q.Bytes() != 40 {
		t.Fatalf("bytes after dequeue = %d", q.Bytes())
	}
}

func TestPrioPanicsOnZeroBands(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPrio(0, 10, 5)
}
