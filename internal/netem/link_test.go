package netem

import (
	"testing"

	"pase/internal/pkt"
	"pase/internal/sim"
)

// sink is a Node that records arrivals with timestamps.
type sink struct {
	id   pkt.NodeID
	eng  *sim.Engine
	got  []*pkt.Packet
	when []sim.Time
}

func (s *sink) ID() pkt.NodeID { return s.id }
func (s *sink) Receive(p *pkt.Packet, _ *Port) {
	s.got = append(s.got, p)
	s.when = append(s.when, s.eng.Now())
}

func pipe(eng *sim.Engine, rate BitRate, delay sim.Duration) (*Port, *sink) {
	dst := &sink{id: 2, eng: eng}
	src := &sink{id: 1, eng: eng}
	a := NewPort(eng, src, NewDropTail(1000), rate, delay)
	b := NewPort(eng, dst, NewDropTail(1000), rate, delay)
	Connect(a, b)
	return a, dst
}

func TestSerializeMath(t *testing.T) {
	// 1500B at 1Gbps = 12µs; at 10Gbps = 1.2µs.
	if d := Gbps.Serialize(1500); d != 12*sim.Microsecond {
		t.Fatalf("1Gbps serialize = %v, want 12µs", d)
	}
	if d := (10 * Gbps).Serialize(1500); d != 1200*sim.Nanosecond {
		t.Fatalf("10Gbps serialize = %v, want 1.2µs", d)
	}
	if got := Gbps.BytesPer(sim.Millisecond); got != 125000 {
		t.Fatalf("BytesPer = %d, want 125000", got)
	}
}

func TestLinkDeliveryTiming(t *testing.T) {
	eng := sim.NewEngine()
	port, dst := pipe(eng, Gbps, 50*sim.Microsecond)
	p := &pkt.Packet{Size: 1500, Dst: 2}
	port.Send(p)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(dst.got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(dst.got))
	}
	// 12µs serialization + 50µs propagation.
	want := sim.Time(62 * sim.Microsecond)
	if dst.when[0] != want {
		t.Fatalf("arrival at %v, want %v", dst.when[0], want)
	}
}

func TestLinkBackToBackPackets(t *testing.T) {
	eng := sim.NewEngine()
	port, dst := pipe(eng, Gbps, 10*sim.Microsecond)
	for i := 0; i < 3; i++ {
		port.Send(&pkt.Packet{Size: 1500, Seq: int32(i), Dst: 2})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(dst.got) != 3 {
		t.Fatalf("delivered %d, want 3", len(dst.got))
	}
	// Packet i arrives at (i+1)*12µs + 10µs.
	for i, at := range dst.when {
		want := sim.Time(sim.Duration(i+1)*12*sim.Microsecond + 10*sim.Microsecond)
		if at != want {
			t.Fatalf("packet %d at %v, want %v", i, at, want)
		}
		if dst.got[i].Seq != int32(i) {
			t.Fatalf("reordered: index %d has seq %d", i, dst.got[i].Seq)
		}
	}
	if u := port.Utilization(); u < 0.77 || u > 0.79 {
		// 36µs busy over 46µs total ≈ 0.7826
		t.Fatalf("utilization = %v, want ≈0.78", u)
	}
}

func TestLinkIdleThenResume(t *testing.T) {
	eng := sim.NewEngine()
	port, dst := pipe(eng, Gbps, 0)
	port.Send(&pkt.Packet{Size: 1500, Dst: 2})
	eng.Schedule(100*sim.Microsecond, func() {
		port.Send(&pkt.Packet{Size: 1500, Dst: 2})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(dst.got) != 2 {
		t.Fatalf("delivered %d, want 2", len(dst.got))
	}
	if dst.when[1] != sim.Time(112*sim.Microsecond) {
		t.Fatalf("second arrival at %v, want 112µs", dst.when[1])
	}
}

func TestSwitchRouting(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(100, "sw")
	dstA := &sink{id: 1, eng: eng}
	dstB := &sink{id: 2, eng: eng}

	mkLink := func(dst *sink) int {
		sp := NewPort(eng, sw, NewDropTail(100), Gbps, sim.Microsecond)
		dp := NewPort(eng, dst, NewDropTail(100), Gbps, sim.Microsecond)
		Connect(sp, dp)
		return sw.AddPort(sp)
	}
	pa := mkLink(dstA)
	pb := mkLink(dstB)
	sw.SetRoute(1, pa)
	sw.SetRoute(2, pb)

	sw.Receive(&pkt.Packet{Size: 100, Dst: 2}, nil)
	sw.Receive(&pkt.Packet{Size: 100, Dst: 1}, nil)
	sw.Receive(&pkt.Packet{Size: 100, Dst: 2}, nil)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(dstA.got) != 1 || len(dstB.got) != 2 {
		t.Fatalf("a=%d b=%d, want 1 and 2", len(dstA.got), len(dstB.got))
	}
}

func TestSwitchNoRoutePanics(t *testing.T) {
	sw := NewSwitch(100, "sw")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing route")
		}
	}()
	sw.Receive(&pkt.Packet{Dst: 42}, nil)
}

func TestHopLoopGuard(t *testing.T) {
	p := &pkt.Packet{Dst: 1, Hops: 100}
	sw := NewSwitch(5, "sw")
	sw.SetRoute(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected loop-guard panic")
		}
	}()
	sw.Receive(p, nil)
}

func TestBitRateString(t *testing.T) {
	if Gbps.String() != "1Gbps" || (10*Gbps).String() != "10Gbps" || (100*Mbps).String() != "100Mbps" {
		t.Fatalf("got %s %s %s", Gbps, 10*Gbps, 100*Mbps)
	}
}
