package netem

import (
	"fmt"

	"pase/internal/pkt"
)

// Switch is an output-queued switch: packets arriving on any port are
// routed (via the table installed by the topology) to an egress port
// and enqueued there. All queueing behaviour lives in the egress
// queue discipline.
type Switch struct {
	id    pkt.NodeID
	name  string
	ports []*Port
	// nextHop maps destination host id -> egress port index.
	nextHop map[pkt.NodeID]int
	// FlowRoute, when set, routes packets whose destination has no
	// nextHop entry — multipath fabrics hash the flow id here (ECMP).
	FlowRoute func(p *pkt.Packet) int
}

// NewSwitch creates a switch with the given id and name.
func NewSwitch(id pkt.NodeID, name string) *Switch {
	return &Switch{id: id, name: name, nextHop: make(map[pkt.NodeID]int)}
}

// ID implements Node.
func (s *Switch) ID() pkt.NodeID { return s.id }

// Name returns the switch's human-readable label.
func (s *Switch) Name() string { return s.name }

// AddPort registers an egress port and returns its index.
func (s *Switch) AddPort(p *Port) int {
	s.ports = append(s.ports, p)
	return len(s.ports) - 1
}

// Port returns port i.
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// Ports returns all ports of the switch.
func (s *Switch) Ports() []*Port { return s.ports }

// SetRoute installs the egress port index for a destination host.
func (s *Switch) SetRoute(dst pkt.NodeID, portIndex int) {
	s.nextHop[dst] = portIndex
}

// NextPort resolves the egress port a packet for (dst, flow) would
// take, without forwarding anything: the routing-control validity
// walks use it to traverse the fabric off the data path. Returns nil
// when the switch has no route (a model bug Receive would panic on).
func (s *Switch) NextPort(dst pkt.NodeID, flow pkt.FlowID) *Port {
	if idx, ok := s.nextHop[dst]; ok {
		return s.ports[idx]
	}
	if s.FlowRoute == nil {
		return nil
	}
	return s.ports[s.FlowRoute(&pkt.Packet{Dst: dst, Flow: flow})]
}

// Receive implements Node: route and forward.
func (s *Switch) Receive(p *pkt.Packet, _ *Port) {
	p.Hops++
	if p.Hops > 32 {
		panic(fmt.Sprintf("netem: routing loop for %v at %s", p, s.name))
	}
	idx, ok := s.nextHop[p.Dst]
	if !ok {
		if s.FlowRoute == nil {
			panic(fmt.Sprintf("netem: %s has no route to node %d", s.name, p.Dst))
		}
		idx = s.FlowRoute(p)
	}
	s.ports[idx].Send(p)
}
