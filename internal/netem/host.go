package netem

import (
	"pase/internal/pkt"
)

// Host is an end system with a single NIC port. The transport layer
// installs a Handler to receive packets; Send transmits through the
// NIC's egress queue (so hosts experience their own serialization
// delays and queueing, as the paper's endpoints do).
type Host struct {
	id      pkt.NodeID
	name    string
	port    *Port
	Handler func(p *pkt.Packet)
}

// NewHost creates a host node.
func NewHost(id pkt.NodeID, name string) *Host {
	return &Host{id: id, name: name}
}

// ID implements Node.
func (h *Host) ID() pkt.NodeID { return h.id }

// Name returns the host's label.
func (h *Host) Name() string { return h.name }

// SetPort attaches the NIC port (done by the topology builder).
func (h *Host) SetPort(p *Port) { h.port = p }

// Port returns the NIC port.
func (h *Host) Port() *Port { return h.port }

// Receive implements Node by delivering to the installed handler.
func (h *Host) Receive(p *pkt.Packet, _ *Port) {
	if h.Handler != nil {
		h.Handler(p)
	}
}

// Send transmits a packet out of the NIC.
func (h *Host) Send(p *pkt.Packet) {
	p.Hops++
	h.port.Send(p)
}
