package netem

import (
	"pase/internal/check"
	"pase/internal/obs"
	"pase/internal/pkt"
)

// Queue is an egress queueing discipline. Enqueue either accepts the
// packet or drops it (possibly dropping a different, lower-priority
// packet to make room — "push-out"); all drops are recorded in Stats.
type Queue interface {
	// Enqueue offers p to the queue. It reports whether p itself was
	// accepted. Disciplines with push-out may accept p while dropping
	// another packet.
	Enqueue(p *pkt.Packet) bool
	// Dequeue removes and returns the next packet to transmit, or nil
	// if the queue is empty.
	Dequeue() *pkt.Packet
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns the number of queued bytes.
	Bytes() int64
	// Stats exposes the discipline's counters.
	Stats() *QueueStats
}

// Checkable is implemented by disciplines that support runtime
// invariant checking. AttachCheck installs the run's checker (nil
// detaches — the default, free state) together with a label locating
// the queue in violation reports; CheckConservation verifies the
// discipline's end-state packet accounting and is called when the
// queue goes quiet (end of run, or after a fuzzed op sequence).
type Checkable interface {
	AttachCheck(label string, c *check.Checker)
	CheckConservation()
}

// QueueStats counts what happened at one queue.
type QueueStats struct {
	Enqueued     int64
	Dequeued     int64
	Dropped      int64
	DroppedBytes int64
	Marked       int64 // packets that got CE set here
	// EnqueuedData / DroppedData count data-plane packets only —
	// Fig 4's loss-rate metric ignores ACKs and control traffic.
	EnqueuedData int64
	DroppedData  int64
	// EnqueuedCredit / DroppedCredit count ExpressPass credit packets;
	// credit drops are the shaper's rate-limit feedback, not loss.
	EnqueuedCredit int64
	DroppedCredit  int64
	MaxLen         int
}

func (s *QueueStats) drop(p *pkt.Packet) {
	s.Dropped++
	s.DroppedBytes += int64(p.Size)
	if p.Type == pkt.Data {
		s.DroppedData++
	}
	if p.Type == pkt.Credit {
		s.DroppedCredit++
	}
}

func (s *QueueStats) accept(p *pkt.Packet) {
	s.Enqueued++
	if p.Type == pkt.Data {
		s.EnqueuedData++
	}
	if p.Type == pkt.Credit {
		s.EnqueuedCredit++
	}
}

func (s *QueueStats) noteLen(n int) {
	if n > s.MaxLen {
		s.MaxLen = n
	}
}

// fifo is a slice-backed ring buffer of packets, the building block of
// the disciplines below.
type fifo struct {
	buf   []*pkt.Packet
	head  int
	n     int
	bytes int64
}

func (f *fifo) len() int    { return f.n }
func (f *fifo) size() int64 { return f.bytes }
func (f *fifo) empty() bool { return f.n == 0 }

func (f *fifo) push(p *pkt.Packet) {
	if f.n == len(f.buf) {
		f.grow()
	}
	f.buf[(f.head+f.n)%len(f.buf)] = p
	f.n++
	f.bytes += int64(p.Size)
}

func (f *fifo) pop() *pkt.Packet {
	if f.n == 0 {
		return nil
	}
	p := f.buf[f.head]
	f.buf[f.head] = nil
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	f.bytes -= int64(p.Size)
	return p
}

// popTail removes the newest packet (used for push-out drops).
func (f *fifo) popTail() *pkt.Packet {
	if f.n == 0 {
		return nil
	}
	i := (f.head + f.n - 1) % len(f.buf)
	p := f.buf[i]
	f.buf[i] = nil
	f.n--
	f.bytes -= int64(p.Size)
	return p
}

func (f *fifo) grow() {
	size := len(f.buf) * 2
	if size == 0 {
		size = 16
	}
	nb := make([]*pkt.Packet, size)
	for i := 0; i < f.n; i++ {
		nb[i] = f.buf[(f.head+i)%len(f.buf)]
	}
	f.buf = nb
	f.head = 0
}

// DropTail is a plain FIFO queue with a fixed packet-count limit.
type DropTail struct {
	Limit int
	// Occ, when set, records post-enqueue occupancy (packets). A nil
	// histogram is a no-op; queues of one kind may share one instrument.
	Occ      *obs.Histogram
	q        fifo
	stats    QueueStats
	chk      *check.Checker
	chkLabel string
}

// NewDropTail returns a FIFO bounded at limit packets.
func NewDropTail(limit int) *DropTail {
	return &DropTail{Limit: limit}
}

// AttachCheck implements Checkable.
func (d *DropTail) AttachCheck(label string, c *check.Checker) {
	d.chkLabel, d.chk = label, c
}

// CheckConservation implements Checkable.
func (d *DropTail) CheckConservation() {
	d.chk.Conservation(d.chkLabel, d.stats.Enqueued, d.stats.Dequeued, d.stats.Dropped, d.q.len())
}

// Enqueue implements Queue.
func (d *DropTail) Enqueue(p *pkt.Packet) bool {
	if d.q.len() >= d.Limit {
		d.stats.drop(p)
		return false
	}
	d.q.push(p)
	d.stats.accept(p)
	d.stats.noteLen(d.q.len())
	d.Occ.Observe(int64(d.q.len()))
	if d.chk != nil {
		d.chk.QueueCap(d.chkLabel, d.q.len(), d.Limit)
	}
	return true
}

// Dequeue implements Queue.
func (d *DropTail) Dequeue() *pkt.Packet {
	p := d.q.pop()
	if p != nil {
		d.stats.Dequeued++
	}
	return p
}

func (d *DropTail) Len() int           { return d.q.len() }
func (d *DropTail) Bytes() int64       { return d.q.size() }
func (d *DropTail) Stats() *QueueStats { return &d.stats }

// REDECN is the DCTCP-style active queue: a FIFO that sets the CE
// codepoint on an arriving ECN-capable packet whenever the
// instantaneous queue length is at or above the marking threshold K
// (marking on instantaneous occupancy is what DCTCP prescribes, in
// contrast to classic RED's averaged occupancy).
type REDECN struct {
	Limit int
	K     int
	// Occ, when set, records post-enqueue occupancy (packets).
	Occ      *obs.Histogram
	q        fifo
	stats    QueueStats
	chk      *check.Checker
	chkLabel string
}

// NewREDECN returns a marking FIFO with the given capacity and
// threshold (both in packets).
func NewREDECN(limit, k int) *REDECN {
	return &REDECN{Limit: limit, K: k}
}

// AttachCheck implements Checkable.
func (r *REDECN) AttachCheck(label string, c *check.Checker) {
	r.chkLabel, r.chk = label, c
}

// CheckConservation implements Checkable.
func (r *REDECN) CheckConservation() {
	r.chk.Conservation(r.chkLabel, r.stats.Enqueued, r.stats.Dequeued, r.stats.Dropped, r.q.len())
}

// Enqueue implements Queue.
func (r *REDECN) Enqueue(p *pkt.Packet) bool {
	if r.q.len() >= r.Limit {
		r.stats.drop(p)
		return false
	}
	if p.ECT && r.q.len() >= r.K {
		p.CE = true
		r.stats.Marked++
		if r.chk != nil {
			r.chk.ECNMark(r.chkLabel, uint64(p.Flow), r.q.len(), r.K)
		}
	}
	r.q.push(p)
	r.stats.accept(p)
	r.stats.noteLen(r.q.len())
	r.Occ.Observe(int64(r.q.len()))
	if r.chk != nil {
		r.chk.QueueCap(r.chkLabel, r.q.len(), r.Limit)
	}
	return true
}

// Dequeue implements Queue.
func (r *REDECN) Dequeue() *pkt.Packet {
	p := r.q.pop()
	if p != nil {
		r.stats.Dequeued++
	}
	return p
}

func (r *REDECN) Len() int           { return r.q.len() }
func (r *REDECN) Bytes() int64       { return r.q.size() }
func (r *REDECN) Stats() *QueueStats { return &r.stats }
