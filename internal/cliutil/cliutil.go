// Package cliutil holds the small pieces shared by the command-line
// front ends: a throttled stderr progress meter and pprof profile
// setup. Nothing here touches the simulation itself.
package cliutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"
)

// Progress is a concurrency-safe live progress meter: simulation
// points done, completion rate and ETA, redrawn in place on stderr at
// most ~10×/s so it never becomes the bottleneck. A nil or disabled
// meter is a no-op, so callers can wire it unconditionally.
type Progress struct {
	mu      sync.Mutex
	start   time.Time
	last    time.Time
	label   string
	enabled bool
	drawn   bool
}

// NewProgress starts a meter for one run. Pass enabled=false to get a
// no-op meter (e.g. when stderr is not a terminal or -quiet is set).
func NewProgress(label string, enabled bool) *Progress {
	return &Progress{label: label, start: time.Now(), enabled: enabled}
}

// Update is shaped to be used directly as a FigureOpts.Progress /
// SimConfig.Progress callback. Safe for concurrent use.
func (p *Progress) Update(done, total int) {
	if p == nil || !p.enabled || total <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	if done < total && now.Sub(p.last) < 100*time.Millisecond {
		return
	}
	p.last = now
	p.drawn = true
	elapsed := now.Sub(p.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed
	}
	eta := "?"
	if rate > 0 {
		eta = time.Duration(float64(total-done) / rate * float64(time.Second)).Round(time.Second).String()
	}
	fmt.Fprintf(os.Stderr, "\r%s: %d/%d points, %.1f/s, eta %s   ", p.label, done, total, rate, eta)
}

// Done clears the meter line. Call once when the run finishes.
func (p *Progress) Done() {
	if p == nil || !p.enabled {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.drawn {
		fmt.Fprint(os.Stderr, "\r\x1b[2K")
		p.drawn = false
	}
}

// StartCPUProfile begins writing a CPU profile to path ("" = off) and
// returns the function that stops it and closes the file.
func StartCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteMemProfile dumps a heap profile to path ("" = off), after a GC
// so the profile reflects live memory rather than garbage.
func WriteMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}
