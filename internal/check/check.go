// Package check is the simulator's runtime invariant checker: a
// nil-safe layer that verifies the physical and protocol laws every
// paper result rests on — packet conservation, buffer bounds, strict
// dequeue order, ECN marking discipline, arbitration feasibility,
// clock monotonicity and flow-completion lower bounds.
//
// It mirrors the design of internal/obs:
//
//   - Components carry a *Checker unconditionally; every method is a
//     no-op on a nil receiver, so a disabled run pays only a nil test
//     on the hot path and the Checker's presence decides whether
//     anything is verified.
//   - A Checker belongs to one simulation run and is not safe for
//     concurrent use; parallel experiment points each attach their own.
//
// Two modes exist: a counting Checker (New) records violations with
// context and lets the run finish — experiment runs surface the totals
// in the observability snapshot and CLI output — while a strict
// Checker (NewStrict) panics on the first violation with full context,
// which is what tests and fuzz targets want. The PASE_CHECK
// environment variable force-enables checking in every experiment run
// regardless of configuration (see Forced), giving CI a build-wide
// tripwire without touching call sites.
package check

import (
	"fmt"
	"os"
)

// Invariant names, used as violation keys and snapshot counter names.
const (
	InvConservation = "conservation" // enqueued = dequeued + queued (+ push-out drops)
	InvQueueCap     = "queue_cap"    // occupancy never exceeds the configured limit
	InvStrictPrio   = "strict_prio"  // band i never dequeues while band j < i is busy
	InvECNMark      = "ecn_mark"     // CE set only at/above the marking threshold K
	InvArbCapacity  = "arb_capacity" // top-queue allocated rates sum <= link capacity
	InvArbRate      = "arb_rate"     // reference rates are never negative
	InvMonotonic    = "monotonic"    // event timestamps never run backwards
	InvFCTBound     = "fct_bound"    // no flow beats its size/bottleneck lower bound
	InvSketchBound  = "sketch_bound" // sketch quantiles ordered and inside the exact [min, max] envelope
	InvCreditPace   = "credit_pace"  // credits leave a credit-shaped queue no faster than the configured rate
	InvRouteValid   = "route_valid"  // no route resolves onto a down link while an up one exists
	InvRouteLoop    = "route_loop"   // every routed walk reaches its destination within the TTL
)

// Violation is one recorded invariant breach with its context.
type Violation struct {
	// Invariant is one of the Inv* names.
	Invariant string
	// Time is the simulated timestamp (nanoseconds) of the breach.
	Time int64
	// Where locates the breach: a queue/port label, link id, or
	// subsystem name.
	Where string
	// Flow is the implicated flow id (0 when not flow-specific).
	Flow uint64
	// Detail is a human-readable description with the observed values.
	Detail string
}

func (v Violation) String() string {
	s := fmt.Sprintf("[%s] t=%dns at %s", v.Invariant, v.Time, v.Where)
	if v.Flow != 0 {
		s += fmt.Sprintf(" flow=%d", v.Flow)
	}
	return s + ": " + v.Detail
}

// maxKept bounds the per-run violation log; the total count keeps
// growing past it but details of a violation storm are redundant.
const maxKept = 64

// Checker verifies invariants for one simulation run. The zero value
// of *Checker (nil) is the disabled state: every method no-ops.
type Checker struct {
	strict bool
	clock  func() int64
	total  int64
	perInv map[string]int64
	kept   []Violation
}

// New returns a counting Checker: violations are recorded and the run
// continues. clock supplies the current simulated time in nanoseconds;
// nil is treated as a constant zero clock.
func New(clock func() int64) *Checker {
	if clock == nil {
		clock = func() int64 { return 0 }
	}
	return &Checker{clock: clock, perInv: make(map[string]int64)}
}

// NewStrict returns a fail-fast Checker that panics on the first
// violation with full context — the mode tests and fuzzers use.
func NewStrict(clock func() int64) *Checker {
	c := New(clock)
	c.strict = true
	return c
}

// Forced reports whether the PASE_CHECK environment variable requests
// build-wide invariant checking (any non-empty value). Experiment runs
// consult it so CI can force-enable the checker for a whole test pass.
func Forced() bool { return os.Getenv("PASE_CHECK") != "" }

// Enabled reports whether the checker records anything (false for nil).
func (c *Checker) Enabled() bool { return c != nil }

// Total returns the number of violations observed (0 for nil).
func (c *Checker) Total() int64 {
	if c == nil {
		return 0
	}
	return c.total
}

// Violations returns the retained violation records (at most maxKept;
// nil for a nil or clean Checker).
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	return c.kept
}

// ByInvariant returns per-invariant violation counts (nil for nil).
func (c *Checker) ByInvariant() map[string]int64 {
	if c == nil {
		return nil
	}
	return c.perInv
}

// Reportf records a violation of the named invariant. It is the
// low-level hook behind the typed helpers; call sites with an
// invariant the helpers do not cover use it directly. No-op on nil.
func (c *Checker) Reportf(invariant, where string, flow uint64, format string, args ...any) {
	if c == nil {
		return
	}
	v := Violation{
		Invariant: invariant,
		Time:      c.clock(),
		Where:     where,
		Flow:      flow,
		Detail:    fmt.Sprintf(format, args...),
	}
	if c.strict {
		panic("check: invariant violated: " + v.String())
	}
	c.total++
	c.perInv[invariant]++
	if len(c.kept) < maxKept {
		c.kept = append(c.kept, v)
	}
}

// Summary formats the run's violation totals and retained details for
// CLI/panic output. Empty string when clean or nil.
func (c *Checker) Summary() string {
	if c.Total() == 0 {
		return ""
	}
	s := fmt.Sprintf("%d invariant violation(s):", c.total)
	for inv, n := range c.perInv {
		s += fmt.Sprintf(" %s=%d", inv, n)
	}
	for _, v := range c.kept {
		s += "\n  " + v.String()
	}
	if int64(len(c.kept)) < c.total {
		s += fmt.Sprintf("\n  ... and %d more", c.total-int64(len(c.kept)))
	}
	return s
}

// Conservation verifies a queue's end-state packet accounting:
// every accepted packet is either dequeued, still queued, or was
// dropped after acceptance (push-out / priority eviction), so
//
//	deq + qlen <= enq <= deq + qlen + dropped
//
// (dropped counts both arrival drops and post-acceptance evictions,
// hence the inequality). Call it when the queue goes quiet.
func (c *Checker) Conservation(where string, enq, deq, dropped int64, qlen int) {
	if c == nil {
		return
	}
	if deq+int64(qlen) > enq || enq > deq+int64(qlen)+dropped {
		c.Reportf(InvConservation, where, 0,
			"enqueued=%d dequeued=%d dropped=%d queued=%d", enq, deq, dropped, qlen)
	}
}

// QueueCap verifies post-enqueue occupancy against the configured
// limit.
func (c *Checker) QueueCap(where string, occ, limit int) {
	if c == nil {
		return
	}
	if occ > limit {
		c.Reportf(InvQueueCap, where, 0, "occupancy %d exceeds limit %d", occ, limit)
	}
}

// StrictPrio verifies a strict-priority dequeue decision: band was
// selected while busyHigher packets sat in a strictly higher-priority
// band.
func (c *Checker) StrictPrio(where string, band, busyHigher int) {
	if c == nil {
		return
	}
	if busyHigher > 0 {
		c.Reportf(InvStrictPrio, where, 0,
			"dequeued band %d while %d packet(s) wait in higher bands", band, busyHigher)
	}
}

// ECNMark verifies a CE mark decision: occ is the (pre-enqueue) queue
// occupancy the marking rule saw, k the configured threshold.
func (c *Checker) ECNMark(where string, flow uint64, occ, k int) {
	if c == nil {
		return
	}
	if occ < k {
		c.Reportf(InvECNMark, where, flow, "CE set at occupancy %d below threshold K=%d", occ, k)
	}
}

// ArbAllocation verifies an arbitrator's allocation pass: the
// reference rates handed to top-queue flows must sum to at most the
// link capacity (the feasibility condition of Algorithm 1).
func (c *Checker) ArbAllocation(where string, topSum, capacity int64) {
	if c == nil {
		return
	}
	if topSum > capacity {
		c.Reportf(InvArbCapacity, where, 0,
			"top-queue rate sum %d exceeds capacity %d", topSum, capacity)
	}
}

// RefRate verifies one flow's arbitrated reference rate is
// non-negative.
func (c *Checker) RefRate(where string, flow uint64, rate int64) {
	if c == nil {
		return
	}
	if rate < 0 {
		c.Reportf(InvArbRate, where, flow, "negative reference rate %d", rate)
	}
}

// Monotonic verifies the event clock never runs backwards: next is
// the timestamp about to be dispatched, prev the current clock.
func (c *Checker) Monotonic(where string, prev, next int64) {
	if c == nil {
		return
	}
	if next < prev {
		c.Reportf(InvMonotonic, where, 0, "event at t=%d dispatched after clock reached %d", next, prev)
	}
}

// SketchBounds verifies a streaming run's quantile-sketch summary:
// every estimate must fall inside the exactly tracked [min, max]
// sample envelope and the quantile function must be monotone
// (p50 <= p99). A breach means the sketch's bucketing or rank walk is
// broken, not the simulation.
func (c *Checker) SketchBounds(where string, p50, p99, min, max int64) {
	if c == nil {
		return
	}
	if p50 < min || p50 > max || p99 < min || p99 > max {
		c.Reportf(InvSketchBound, where, 0,
			"quantiles p50=%d p99=%d outside observed [%d, %d]", p50, p99, min, max)
	}
	if p99 < p50 {
		c.Reportf(InvSketchBound, where, 0, "p99 %d below p50 %d", p99, p50)
	}
}

// CreditPace verifies a credit-shaping queue's release decision: now
// is the dequeue timestamp, eligible the earliest instant the
// configured pacing rate allows the next credit out. A breach means
// the shaper let credits through faster than its rate limit — the
// bound ExpressPass's data-queue guarantee rests on.
func (c *Checker) CreditPace(where string, now, eligible int64) {
	if c == nil {
		return
	}
	if now < eligible {
		c.Reportf(InvCreditPace, where, 0,
			"credit released at t=%d before pacing eligibility t=%d", now, eligible)
	}
}

// RouteValid verifies one route-table resolution after a control-plane
// update: bucket b for destination rack dstRack resolved onto spine,
// whose path is down, while avail other spines could carry the
// traffic. A clean table never trips this; a table with every spine
// dead may keep the dead assignment (the packet blackholes and the
// fault layer counts it), which is why avail gates the report.
func (c *Checker) RouteValid(where string, dstRack, b, spine, avail int) {
	if c == nil {
		return
	}
	if avail > 0 {
		c.Reportf(InvRouteValid, where, 0,
			"bucket %d for rack %d resolves to down spine %d with %d spine(s) up",
			b, dstRack, spine, avail)
	}
}

// RouteLoop verifies a TTL-bounded forwarding walk: a routed packet
// toward dstRack must reach its destination within ttl hops; hops is
// how far the walk got (== ttl when it cycled or dead-ended).
func (c *Checker) RouteLoop(where string, flow uint64, dstRack, hops, ttl int, reached bool) {
	if c == nil {
		return
	}
	if !reached {
		c.Reportf(InvRouteLoop, where, flow,
			"walk toward rack %d not delivered after %d/%d hops", dstRack, hops, ttl)
	}
}

// FCTBound verifies a completed flow against its physical lower bound:
// size bytes cannot finish faster than their serialization time at the
// path's bottleneck capacity.
func (c *Checker) FCTBound(where string, flow uint64, fct, bound int64) {
	if c == nil {
		return
	}
	if fct < bound {
		c.Reportf(InvFCTBound, where, flow,
			"FCT %dns beats the size/bottleneck lower bound %dns", fct, bound)
	}
}
