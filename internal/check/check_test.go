package check

import (
	"strings"
	"testing"
)

// A nil Checker must be inert: every method is a no-op and every
// accessor returns a zero value.
func TestNilCheckerIsInert(t *testing.T) {
	var c *Checker
	if c.Enabled() {
		t.Fatal("nil checker reports enabled")
	}
	c.Reportf(InvQueueCap, "q", 1, "boom")
	c.Conservation("q", 10, 5, 0, 2)
	c.QueueCap("q", 100, 10)
	c.StrictPrio("q", 3, 2)
	c.ECNMark("q", 1, 0, 20)
	c.ArbAllocation("link0", 100, 50)
	c.RefRate("link0", 1, -5)
	c.Monotonic("sim", 10, 5)
	c.FCTBound("driver", 1, 10, 100)
	c.CreditPace("q", 5, 10)
	if c.Total() != 0 || c.Violations() != nil || c.ByInvariant() != nil {
		t.Fatal("nil checker recorded something")
	}
	if s := c.Summary(); s != "" {
		t.Fatalf("nil checker summary = %q", s)
	}
}

func TestHelpersFireOnlyOnViolation(t *testing.T) {
	cases := []struct {
		name string
		inv  string
		ok   func(c *Checker)
		bad  func(c *Checker)
	}{
		{"conservation", InvConservation,
			func(c *Checker) { c.Conservation("q", 10, 7, 2, 3); c.Conservation("q", 10, 7, 2, 1) },
			func(c *Checker) { c.Conservation("q", 10, 9, 0, 2) }},
		{"conservation-lost", InvConservation,
			func(c *Checker) { c.Conservation("q", 5, 5, 0, 0) },
			func(c *Checker) { c.Conservation("q", 5, 3, 1, 0) }},
		{"queue-cap", InvQueueCap,
			func(c *Checker) { c.QueueCap("q", 10, 10) },
			func(c *Checker) { c.QueueCap("q", 11, 10) }},
		{"strict-prio", InvStrictPrio,
			func(c *Checker) { c.StrictPrio("q", 2, 0) },
			func(c *Checker) { c.StrictPrio("q", 2, 1) }},
		{"ecn-mark", InvECNMark,
			func(c *Checker) { c.ECNMark("q", 1, 20, 20) },
			func(c *Checker) { c.ECNMark("q", 1, 19, 20) }},
		{"arb-capacity", InvArbCapacity,
			func(c *Checker) { c.ArbAllocation("link", 100, 100) },
			func(c *Checker) { c.ArbAllocation("link", 101, 100) }},
		{"arb-rate", InvArbRate,
			func(c *Checker) { c.RefRate("link", 1, 0) },
			func(c *Checker) { c.RefRate("link", 1, -1) }},
		{"monotonic", InvMonotonic,
			func(c *Checker) { c.Monotonic("sim", 5, 5) },
			func(c *Checker) { c.Monotonic("sim", 5, 4) }},
		{"fct-bound", InvFCTBound,
			func(c *Checker) { c.FCTBound("drv", 1, 100, 100) },
			func(c *Checker) { c.FCTBound("drv", 1, 99, 100) }},
		{"credit-pace", InvCreditPace,
			func(c *Checker) { c.CreditPace("q", 10, 10); c.CreditPace("q", 11, 10) },
			func(c *Checker) { c.CreditPace("q", 9, 10) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(nil)
			tc.ok(c)
			if c.Total() != 0 {
				t.Fatalf("clean sequence recorded %d violations: %s", c.Total(), c.Summary())
			}
			tc.bad(c)
			if c.Total() != 1 {
				t.Fatalf("violation recorded %d times, want 1", c.Total())
			}
			if c.ByInvariant()[tc.inv] != 1 {
				t.Fatalf("violation not attributed to %s: %v", tc.inv, c.ByInvariant())
			}
		})
	}
}

func TestViolationContext(t *testing.T) {
	now := int64(42)
	c := New(func() int64 { return now })
	c.ECNMark("tor0->h3", 7, 4, 20)
	vs := c.Violations()
	if len(vs) != 1 {
		t.Fatalf("kept %d violations, want 1", len(vs))
	}
	v := vs[0]
	if v.Invariant != InvECNMark || v.Time != 42 || v.Where != "tor0->h3" || v.Flow != 7 {
		t.Fatalf("violation context wrong: %+v", v)
	}
	for _, want := range []string{"ecn_mark", "t=42ns", "tor0->h3", "flow=7", "K=20"} {
		if !strings.Contains(v.String(), want) {
			t.Fatalf("violation string %q missing %q", v.String(), want)
		}
	}
}

func TestKeptIsBoundedButTotalIsNot(t *testing.T) {
	c := New(nil)
	for i := 0; i < maxKept+50; i++ {
		c.QueueCap("q", 11, 10)
	}
	if c.Total() != int64(maxKept+50) {
		t.Fatalf("total = %d, want %d", c.Total(), maxKept+50)
	}
	if len(c.Violations()) != maxKept {
		t.Fatalf("kept = %d, want %d", len(c.Violations()), maxKept)
	}
	if !strings.Contains(c.Summary(), "and 50 more") {
		t.Fatalf("summary does not note the overflow: %s", c.Summary())
	}
}

func TestStrictPanics(t *testing.T) {
	c := NewStrict(func() int64 { return 9 })
	c.QueueCap("q", 10, 10) // clean: no panic
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("strict checker did not panic on violation")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "queue_cap") || !strings.Contains(msg, "t=9ns") {
			t.Fatalf("panic message lacks context: %v", r)
		}
	}()
	c.QueueCap("q", 11, 10)
}
