// Package expresspass implements ExpressPass (Cho, Jang, Han —
// SIGCOMM 2017), the credit-based representative of the transport
// design space: receivers pace minimum-size credit packets toward
// senders, a sender transmits exactly one data packet per arriving
// credit, and switches rate-limit the credit class so the data those
// credits summon can never exceed ~95% of any link on the (symmetric)
// reverse path — data queues are bounded by construction and drops
// move from the data plane to the credit plane, where they are cheap
// feedback instead of loss.
//
// The receiver-side credit engine runs the paper's credit feedback
// loop per flow: every update period it measures credit waste
// (credits sent minus data received), aggressively increases the
// credit rate toward the line ceiling while waste stays under the
// target, and multiplicatively backs off — with a shrinking
// aggressiveness weight w — when shapers drop credits. Credit release
// times carry deterministic per-flow jitter to break the symmetry
// synchronized incast senders would otherwise exhibit.
//
// Everything is per-host state driven by per-host engines, so
// ExpressPass runs unchanged on the sharded engine and its runs are
// byte-identical to serial ones.
package expresspass

import (
	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/transport"
)

// Config holds the credit engine's parameters.
type Config struct {
	// TargetLoss is the credit-waste fraction the feedback loop aims
	// for (the paper's alpha, 0.125).
	TargetLoss float64
	// WMax / WMin bound the aggressiveness weight of the
	// increase/decrease rule.
	WMax float64
	WMin float64
	// InitRatio sets a new flow's initial credit rate as a fraction of
	// the line ceiling.
	InitRatio float64
	// MinRate floors the per-flow credit rate so a starved flow keeps
	// probing.
	MinRate netem.BitRate
	// Jitter is the fractional bound of the deterministic per-credit
	// release jitter (0.125 = up to 12.5% of the credit gap).
	Jitter float64
	// MinPeriod floors the per-flow feedback update period (the period
	// is otherwise the flow's base RTT).
	MinPeriod sim.Duration
	// IdleTimeout stops crediting a flow that has neither requested
	// credits nor delivered data for this long; the sender's RTO
	// re-opens the flow if it still owes data.
	IdleTimeout sim.Duration
	// MinRTO floors the sender's retransmission timeout.
	MinRTO sim.Duration
	// Seed derives the per-flow jitter streams; runs with equal seeds
	// are identical.
	Seed uint64
}

// DefaultConfig returns the paper's parameterization.
func DefaultConfig() Config {
	return Config{
		TargetLoss: 0.125,
		WMax:       0.5,
		WMin:       0.01,
		InitRatio:  0.5,
		// At 10 Mbps the credit gap is ~1.2 ms, safely inside
		// IdleTimeout — a floored flow keeps probing instead of letting
		// its crediting state idle out.
		MinRate:     10 * netem.Mbps,
		Jitter:      0.125,
		MinPeriod:   50 * sim.Microsecond,
		IdleTimeout: 5 * sim.Millisecond,
		MinRTO:      10 * sim.Millisecond,
	}
}

// Totals aggregates the credit plane's cost across every host, summed
// in host-ID order so the result is deterministic at any shard count.
type Totals struct {
	// Credits / CreditBytes count credit packets paced out by
	// receivers; Requests counts flow-opening credit requests.
	Credits     int64
	CreditBytes int64
	Requests    int64
	// Wasted counts credits that arrived at a sender with nothing to
	// send (the receiver-visible analogue is rate-feedback loss).
	Wasted int64
	// Messages is the control-plane message total (credits plus
	// requests) — the analogue of PASE's arbitration message count.
	Messages int64
}

// System wires ExpressPass onto a driver: a per-host credit engine on
// the receive side and a credit-gated Control per flow on the send
// side.
type System struct {
	cfg   Config
	hosts []*hostState // in driver stack (host-ID) order
}

// hostState is one host's credit engine: per-flow crediting state for
// flows this host receives, plus the host's credit-plane counters.
// It is touched only by its host's engine, so sharded runs need no
// synchronization.
type hostState struct {
	sys     *System
	st      *transport.Stack
	maxRate float64 // line ceiling for triggered data (bits/s)
	flows   map[pkt.FlowID]*creditState

	credits     int64
	creditBytes int64
	requests    int64
	wasted      int64
}

// creditState is the receiver-side state of one credited flow.
type creditState struct {
	flow pkt.FlowID
	peer pkt.NodeID // the sender credits are paced toward
	segs int32      // data packets the flow owes in total

	rate   float64 // current credit rate, in triggered-data bits/s
	w      float64 // aggressiveness weight
	rng    *sim.Rand
	period sim.Duration

	creditsSent int64
	dataRcvd    int64
	// ackCredits is the highest echoed credit sequence plus one: the
	// prefix of credits whose round trip has completed. Loss is
	// measured only over this prefix, so in-flight credits never read
	// as lost.
	ackCredits int64
	baseAck    int64 // period baselines for the loss measurement
	baseData   int64
	periodEnd  sim.Time
	stopAt     sim.Time

	timer   sim.Timer
	stopped bool
}

// Attach installs ExpressPass on every stack of the driver.
func Attach(d *transport.Driver, cfg Config) *System {
	sys := &System{cfg: cfg}
	for _, st := range d.Stacks {
		h := &hostState{
			sys:   sys,
			st:    st,
			flows: make(map[pkt.FlowID]*creditState),
			maxRate: float64(st.NICRate()) * float64(pkt.MTU) /
				float64(pkt.MTU+pkt.CreditSize),
		}
		sys.hosts = append(sys.hosts, h)
		st.NewControl = sys.newControl
		st.CreditHandler = h.onCreditPkt
		st.OnData = h.onData
	}
	return sys
}

// Totals sums the credit-plane counters across hosts (deterministic:
// hosts are kept in ID order).
func (sys *System) Totals() Totals {
	var t Totals
	for _, h := range sys.hosts {
		t.Credits += h.credits
		t.CreditBytes += h.creditBytes
		t.Requests += h.requests
		t.Wasted += h.wasted
	}
	t.Messages = t.Credits + t.Requests
	return t
}

func (sys *System) newControl(s *transport.Sender) transport.Control {
	return &control{sys: sys}
}

// onCreditPkt handles the two credit-plane packet kinds at this host.
func (h *hostState) onCreditPkt(p *pkt.Packet) {
	switch p.Type {
	case pkt.Credit:
		// A credit arrived at a sender: transmit exactly one segment,
		// echoing the credit's sequence number on it.
		s := h.st.Sender(p.Flow)
		if s == nil {
			h.wasted++
			return
		}
		s.CreditEcho = p.CSeq
		if !s.TransmitOne() {
			h.wasted++
		}
	case pkt.CreditReq:
		h.onCreditReq(p)
	}
}

// onCreditReq opens (or refreshes) receiver-side crediting for a flow.
func (h *hostState) onCreditReq(p *pkt.Packet) {
	h.requests++
	now := h.st.Eng.Now()
	cs, ok := h.flows[p.Flow]
	if ok {
		// A retransmitted request: keep the engine running longer.
		cs.stopAt = now.Add(h.sys.cfg.IdleTimeout)
		return
	}
	cfg := &h.sys.cfg
	period := h.st.BaseRTT(p.Src)
	if period < cfg.MinPeriod {
		period = cfg.MinPeriod
	}
	cs = &creditState{
		flow:      p.Flow,
		peer:      p.Src,
		segs:      p.Seq,
		rate:      h.maxRate * cfg.InitRatio,
		w:         cfg.WMax,
		rng:       sim.NewRand(cfg.Seed ^ 0xc3ed17).Split(uint64(p.Flow)),
		period:    period,
		periodEnd: now.Add(period),
		stopAt:    now.Add(cfg.IdleTimeout),
	}
	h.flows[p.Flow] = cs
	h.tick(cs)
}

// onData feeds the credit-waste measurement and retires flows whose
// data has fully arrived.
func (h *hostState) onData(p *pkt.Packet) {
	cs, ok := h.flows[p.Flow]
	if !ok {
		return
	}
	cs.dataRcvd++
	if p.CSeq+1 > cs.ackCredits {
		cs.ackCredits = p.CSeq + 1
	}
	cs.stopAt = h.st.Eng.Now().Add(h.sys.cfg.IdleTimeout)
	if cs.dataRcvd >= int64(cs.segs) {
		h.drop(cs)
	}
}

// drop stops and forgets a flow's crediting state.
func (h *hostState) drop(cs *creditState) {
	cs.stopped = true
	cs.timer.Stop()
	delete(h.flows, cs.flow)
}

// tick sends one credit and schedules the next at the current rate
// (plus jitter), running the feedback update at period boundaries.
func (h *hostState) tick(cs *creditState) {
	if cs.stopped {
		return
	}
	now := h.st.Eng.Now()
	if cs.dataRcvd >= int64(cs.segs) || now >= cs.stopAt {
		h.drop(cs)
		return
	}
	if now >= cs.periodEnd {
		cs.update(now, h.maxRate, &h.sys.cfg)
	}
	h.st.Host.Send(&pkt.Packet{
		ID:     h.st.NextPktID(),
		Flow:   cs.flow,
		Src:    h.st.Host.ID(),
		Dst:    cs.peer,
		Type:   pkt.Credit,
		Size:   pkt.CreditSize,
		CSeq:   cs.creditsSent,
		SentAt: now,
	})
	cs.creditsSent++
	h.credits++
	h.creditBytes += pkt.CreditSize
	cs.timer = h.st.Eng.Schedule(cs.gap(&h.sys.cfg), func() { h.tick(cs) })
}

// gap returns the next credit spacing: the serialization time of the
// data packet this credit triggers at the current credit rate, plus
// deterministic jitter to break incast symmetry.
func (cs *creditState) gap(cfg *Config) sim.Duration {
	base := netem.BitRate(cs.rate).Serialize(pkt.MTU)
	return base + sim.Duration(float64(base)*cfg.Jitter*cs.rng.Float64())
}

// update runs the paper's per-period feedback: measure credit loss
// over the credits whose round trip completed this period, then either
// converge toward the line ceiling (loss under target; the weight w
// regains aggressiveness) or decrease multiplicatively (w halves so
// the next increase is cautious). Credits still in flight contribute
// nothing — the echoed credit sequence tells the two apart.
func (cs *creditState) update(now sim.Time, maxRate float64, cfg *Config) {
	sent := cs.ackCredits - cs.baseAck
	got := cs.dataRcvd - cs.baseData
	if sent > 0 {
		loss := float64(sent-got) / float64(sent)
		if loss < 0 {
			loss = 0
		}
		if loss <= cfg.TargetLoss {
			cs.w = (cs.w + cfg.WMax) / 2
			cs.rate = (1-cs.w)*cs.rate + cs.w*maxRate*(1+cfg.TargetLoss)
		} else {
			cs.rate = cs.rate * (1 - loss) * (1 + cfg.TargetLoss)
			cs.w = cs.w / 2
			if cs.w < cfg.WMin {
				cs.w = cfg.WMin
			}
		}
		if cs.rate > maxRate {
			cs.rate = maxRate
		}
		if cs.rate < float64(cfg.MinRate) {
			cs.rate = float64(cfg.MinRate)
		}
	}
	cs.baseAck, cs.baseData = cs.ackCredits, cs.dataRcvd
	cs.periodEnd = now.Add(cs.period)
}

// control is the sender-side protocol hook: transmission is entirely
// credit-gated, so the control only opens the flow, re-opens it on
// timeout, and stamps headers.
type control struct {
	sys *System
}

func (c *control) Name() string { return "ExpressPass" }

// Init implements transport.Control: pacing mode with rate zero means
// the framework never self-transmits — data leaves only through
// TransmitOne when a credit arrives.
func (c *control) Init(s *transport.Sender) {
	s.CC = c
	s.Paced = true
	s.Rate = 0
	s.SendCreditRequest()
	s.ArmRTO()
}

// OnAck implements transport.Control (the rate lives at the receiver).
func (c *control) OnAck(*transport.Sender, *pkt.Packet, int32, sim.Duration) {}

// OnLoss implements transport.Control. Data drops cannot happen by
// construction; if faults burn a packet anyway, the retransmission
// queue feeds the next credits.
func (c *control) OnLoss(*transport.Sender) {}

// OnTimeout implements transport.Control: queue everything in flight
// for (credit-gated) retransmission and ask the receiver for credits
// again — its crediting state may have idled out.
func (c *control) OnTimeout(s *transport.Sender) bool {
	s.MarkAllInflightLost()
	s.SendCreditRequest()
	return true
}

// FillData implements transport.Control: echo the triggering credit's
// sequence so the receiver's loss measurement is exact.
func (c *control) FillData(s *transport.Sender, p *pkt.Packet) {
	p.ECT = false
	p.Rank = s.Remaining()
	p.CSeq = s.CreditEcho
}

// MinRTO implements transport.Control.
func (c *control) MinRTO(*transport.Sender) sim.Duration { return c.sys.cfg.MinRTO }
