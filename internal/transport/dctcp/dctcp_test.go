package dctcp_test

import (
	"testing"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/topology"
	"pase/internal/transport"
	"pase/internal/transport/dctcp"
	"pase/internal/workload"
)

func rack(n int) *topology.Network {
	return topology.Build(sim.NewEngine(), topology.SingleRack(n, func(topology.QueueKind) netem.Queue {
		return netem.NewREDECN(225, 65)
	}))
}

func TestLongTransferApproachesLineRate(t *testing.T) {
	net := rack(2)
	d := transport.NewDriver(net, dctcp.New(dctcp.DefaultConfig()))
	const size = 10_000_000
	d.Schedule([]workload.FlowSpec{{ID: 1, Src: 0, Dst: 1, Size: size, Start: 0}})
	s, err := d.Run(sim.Time(5 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	ideal := float64(size*8) / 1e9
	got := s.AFCT.Seconds()
	// Goodput should be within 15% of line rate for a 10 MB flow.
	if got > ideal*1.15 {
		t.Fatalf("10MB FCT = %vs, line-rate ideal %vs", got, ideal)
	}
}

func TestIncastManyToOne(t *testing.T) {
	// 10 senders to 1 receiver: the classic DCTCP scenario; ECN must
	// keep it lossless and all flows complete.
	net := rack(11)
	d := transport.NewDriver(net, dctcp.New(dctcp.DefaultConfig()))
	var flows []workload.FlowSpec
	for i := 0; i < 10; i++ {
		flows = append(flows, workload.FlowSpec{
			ID: pkt.FlowID(i + 1), Src: pkt.NodeID(i), Dst: 10, Size: 200000, Start: 0,
		})
	}
	d.Schedule(flows)
	s, err := d.Run(sim.Time(5 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 10 {
		t.Fatalf("completed = %d, want 10", s.Completed)
	}
	if drops := net.QueueStatsTotal().Dropped; drops != 0 {
		t.Fatalf("DCTCP incast dropped %d packets", drops)
	}
	// Aggregate goodput near line rate: total 2MB over 1Gbps ≈ 16ms.
	if s.MaxFCT.Seconds() > 0.016*1.4 {
		t.Fatalf("slowest flow %v, want ≈16ms", s.MaxFCT)
	}
}

func TestMarkingKeepsQueueNearK(t *testing.T) {
	// One long flow through a marking queue: the bottleneck queue's
	// maximum occupancy should sit near K, far below the 225 limit.
	// With equal 1 Gbps edge rates the queue builds at the sender's
	// NIC — the first queue the flow's packets traverse.
	eng := sim.NewEngine()
	var nics []*netem.REDECN
	net := topology.Build(eng, topology.SingleRack(2, func(k topology.QueueKind) netem.Queue {
		q := netem.NewREDECN(225, 65)
		if k == topology.QueueHostNIC {
			nics = append(nics, q)
		}
		return q
	}))
	d := transport.NewDriver(net, dctcp.New(dctcp.DefaultConfig()))
	d.Schedule([]workload.FlowSpec{{ID: 1, Src: 0, Dst: 1, Size: 5_000_000, Start: 0}})
	if _, err := d.Run(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	bottleneck := nics[0] // host 0's NIC
	if bottleneck.Stats().MaxLen > 3*65 {
		t.Fatalf("queue grew to %d, marking should cap near K=65", bottleneck.Stats().MaxLen)
	}
	if bottleneck.Stats().Marked == 0 {
		t.Fatal("bottleneck should have marked packets")
	}
}
