// Package dctcp implements Data Center TCP (Alizadeh et al., SIGCOMM
// 2010): senders estimate the fraction of ECN-marked packets with a
// per-window EWMA (alpha) and cut the congestion window in proportion
// to it, keeping switch queues short while sustaining throughput.
//
// DCTCP is the paper's representative of the self-adjusting-endpoint
// strategy and the substrate PASE's own rate-control laws reuse.
package dctcp

import (
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/transport"
)

// Config holds DCTCP parameters (Table 3 defaults).
type Config struct {
	// G is the EWMA gain for alpha (1/16 in the paper).
	G float64
	// InitCwnd is the initial window in segments.
	InitCwnd float64
	// MinRTO is the retransmission-timeout floor.
	MinRTO sim.Duration
	// AlphaInit seeds the mark-fraction estimate.
	AlphaInit float64
	// Prio is the priority class stamped on data packets (0 unless an
	// experiment runs DCTCP over PRIO queues).
	Prio int8
}

// DefaultConfig returns the standard parameterization.
func DefaultConfig() Config {
	return Config{
		G:         1.0 / 16.0,
		InitCwnd:  10,
		MinRTO:    10 * sim.Millisecond,
		AlphaInit: 0,
	}
}

// New returns a Control factory for the given configuration.
func New(cfg Config) func(*transport.Sender) transport.Control {
	return func(*transport.Sender) transport.Control {
		return &control{cfg: cfg}
	}
}

// control is per-flow DCTCP state.
type control struct {
	cfg Config

	// Alpha is the smoothed fraction of marked packets.
	Alpha float64

	// Per-window mark accounting: acks and marked acks since the last
	// alpha update, which happens when cumAck passes windowEnd.
	acks      int32
	marked    int32
	windowEnd int32

	// cutEnd guards against more than one multiplicative decrease per
	// window of data.
	cutEnd int32
}

func (c *control) Name() string { return "DCTCP" }

// Init implements transport.Control.
func (c *control) Init(s *transport.Sender) {
	c.Alpha = c.cfg.AlphaInit
	s.Cwnd = c.cfg.InitCwnd
	s.SSThresh = 1 << 20
	s.Prio = c.cfg.Prio
	c.windowEnd = 0
	c.cutEnd = -1
}

// OnAck implements transport.Control: alpha bookkeeping, proportional
// decrease on echoed marks, standard slow-start/congestion-avoidance
// increase otherwise.
func (c *control) OnAck(s *transport.Sender, ack *pkt.Packet, newly int32, _ sim.Duration) {
	c.acks++
	if ack.Echo {
		c.marked++
	}

	// Once per window: refresh alpha.
	if s.CumAck() > c.windowEnd {
		f := 0.0
		if c.acks > 0 {
			f = float64(c.marked) / float64(c.acks)
		}
		c.Alpha = (1-c.cfg.G)*c.Alpha + c.cfg.G*f
		c.acks, c.marked = 0, 0
		c.windowEnd = s.NextWindowEdge()
	}

	if ack.Echo {
		// Proportional decrease, at most once per window.
		if s.CumAck() > c.cutEnd {
			s.Cwnd = s.Cwnd * (1 - c.Alpha/2)
			if s.Cwnd < 1 {
				s.Cwnd = 1
			}
			c.cutEnd = s.NextWindowEdge()
		}
		return
	}
	if newly <= 0 {
		return
	}
	c.increase(s, newly)
}

// increase applies TCP-standard window growth.
func (c *control) increase(s *transport.Sender, newly int32) {
	for i := int32(0); i < newly; i++ {
		if s.Cwnd < s.SSThresh {
			s.Cwnd++
		} else {
			s.Cwnd += 1 / s.Cwnd
		}
	}
}

// OnLoss implements transport.Control: classic halving on fast
// retransmit.
func (c *control) OnLoss(s *transport.Sender) {
	s.SSThresh = s.Cwnd / 2
	if s.SSThresh < 2 {
		s.SSThresh = 2
	}
	s.Cwnd = s.SSThresh
}

// OnTimeout implements transport.Control.
func (c *control) OnTimeout(s *transport.Sender) bool {
	s.SSThresh = s.Cwnd / 2
	if s.SSThresh < 2 {
		s.SSThresh = 2
	}
	s.Cwnd = 1
	return false // framework performs go-back-N recovery
}

// FillData implements transport.Control.
func (c *control) FillData(s *transport.Sender, p *pkt.Packet) {
	p.ECT = true
	p.Prio = s.Prio
}

// MinRTO implements transport.Control.
func (c *control) MinRTO(*transport.Sender) sim.Duration { return c.cfg.MinRTO }
