package transport

import (
	"fmt"
	"sort"
	"sync/atomic"

	"pase/internal/check"
	"pase/internal/metrics"
	"pase/internal/netem"
	"pase/internal/obs"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/topology"
	"pase/internal/workload"
)

// streamGrace is how long a streaming run keeps simulating after the
// last arrival before declaring the stragglers unfinished — the same
// 10 s pad stored runs apply to the workload span.
const streamGrace = sim.Duration(10 * sim.Second)

// StreamGrace is the post-last-arrival grace period of streaming runs,
// exported so the sharded runner's watchdog matches ScheduleStream's.
const StreamGrace = streamGrace

// Driver runs a workload over a built fabric: it installs one Stack
// per host, schedules flow arrivals, and stops the simulation when
// every foreground flow has completed (or a deadline passes).
//
// Two scheduling modes exist. Schedule materializes every arrival up
// front (O(flows) memory, the historical behavior). ScheduleStream
// pulls arrivals from an iterator one at a time and keeps only the
// next pending flow, which — combined with UseSink's bounded-memory
// collector, sender recycling and receiver release — makes memory
// O(in-flight flows) instead of O(total flows).
type Driver struct {
	Eng    *sim.Engine
	Net    *topology.Network
	Stacks []*Stack
	// Collector is the stored-mode collector (nil after UseSink).
	Collector *metrics.Collector
	// Sink receives every flow record; it equals Collector until
	// UseSink swaps in a streaming collector.
	Sink metrics.Sink

	// OnFlowDone, when set, is called after any flow completes
	// (protocol integrations use it to release arbitration state).
	OnFlowDone func(s *Sender)
	// OnFlowStart, when set, is called right after a scheduled flow's
	// sender starts transmitting (tracing hooks observe arrivals here).
	OnFlowStart func(s *Sender)

	// OnZero, when set, replaces the default stop logic when the last
	// foreground flow completes. Sharded runs route it to the
	// coordinator's stop request (an Engine.Stop on one shard would
	// only halt that shard).
	OnZero func()
	// ChkOf, when set, selects the invariant checker for a completing
	// flow by its source host — sharded runs keep one checker per
	// shard, since a Checker is not concurrent-safe.
	ChkOf func(src pkt.NodeID) *check.Checker
	// DropRx, when set, routes streaming-mode receiver release to the
	// destination host's shard instead of mutating the destination
	// stack inline from the completing (source-side) event.
	DropRx func(src, dst pkt.NodeID, flow pkt.FlowID)

	// remaining is atomic: in sharded runs flows complete concurrently
	// on different shards.
	remaining atomic.Int64
	started   []*Sender
	// walkUnfinished forces unfinished() to walk the stacks' sender
	// maps (sharded stored runs never populate started).
	walkUnfinished bool

	// Streaming-mode state: the iterator, the one pending arrival, and
	// a reusable arrival closure (the hot path schedules no per-flow
	// closures).
	streaming     bool
	streamNext    func() (workload.FlowSpec, bool)
	pending       workload.FlowSpec
	hasPending    bool
	streamDrained bool
	arrivalFn     func()

	chk *check.Checker
}

// Instrument attaches run-wide observability to every stack. The
// recorded streams:
//
//	transport/retx          retransmitted data segments
//	transport/timeouts      RTO firings
//	transport/probes        PASE loss-discrimination probes sent
//	transport/rate_updates  pacing-rate changes (SetRate calls)
//	transport/aborts        flows the transport killed (deadline aborts,
//	                        PDQ early termination)
func (d *Driver) Instrument(reg *obs.Registry) {
	o := stackObs{
		retx:        reg.Counter("transport/retx"),
		timeouts:    reg.Counter("transport/timeouts"),
		probes:      reg.Counter("transport/probes"),
		rateUpdates: reg.Counter("transport/rate_updates"),
		aborts:      reg.Counter("transport/aborts"),
	}
	for _, st := range d.Stacks {
		st.obs = o
	}
}

// InstrumentEach attaches per-host observability, resolving the
// registry by host — sharded runs give every shard its own registry
// (instruments are not concurrent-safe) and merge the snapshots.
func (d *Driver) InstrumentEach(regOf func(h pkt.NodeID) *obs.Registry) {
	for _, st := range d.Stacks {
		reg := regOf(st.Host.ID())
		st.obs = stackObs{
			retx:        reg.Counter("transport/retx"),
			timeouts:    reg.Counter("transport/timeouts"),
			probes:      reg.Counter("transport/probes"),
			rateUpdates: reg.Counter("transport/rate_updates"),
			aborts:      reg.Counter("transport/aborts"),
		}
	}
}

// NewDriver builds stacks on every host of the fabric.
func NewDriver(net *topology.Network, newControl func(*Sender) Control) *Driver {
	d := &Driver{
		Eng:       net.Eng,
		Net:       net,
		Collector: metrics.NewCollector(),
	}
	d.Sink = d.Collector
	for _, h := range net.Hosts {
		h := h
		// A host's stack lives on the engine its NIC is clocked by —
		// net.Eng normally, the host's shard engine in sharded runs.
		st := NewStack(h.Port().Engine(), h)
		st.NewControl = newControl
		st.Collector = d.Sink
		st.BaseRTT = func(dst pkt.NodeID) sim.Duration { return net.BaseRTT(h.ID(), dst) }
		st.OnFlowDone = d.flowDone
		d.Stacks = append(d.Stacks, st)
	}
	return d
}

// UseSink replaces the stored collector with a bounded-memory sink and
// switches every stack into recycling mode: completed senders return
// to a free list and receiver state is released on flow completion.
// Call it before scheduling anything.
func (d *Driver) UseSink(sink metrics.Sink) {
	d.Collector = nil
	d.Sink = sink
	for _, st := range d.Stacks {
		st.Collector = sink
		st.Recycle = true
	}
}

// Stack returns the stack of host id.
func (d *Driver) Stack(id pkt.NodeID) *Stack { return d.Stacks[id] }

// AttachCheck installs a runtime invariant checker: every completed
// flow is verified against its physical completion-time lower bound —
// Size bytes cannot clear the path's bottleneck link faster than their
// serialization time there. Nil detaches (the default).
func (d *Driver) AttachCheck(c *check.Checker) { d.chk = c }

// checkFCT verifies one completed flow's FCT lower bound.
func (d *Driver) checkFCT(chk *check.Checker, s *Sender) {
	var bottleneck netem.BitRate
	for _, l := range d.Net.PathFlow(s.Spec.Src, s.Spec.Dst, s.Spec.ID) {
		if bottleneck == 0 || l.Capacity() < bottleneck {
			bottleneck = l.Capacity()
		}
	}
	if bottleneck <= 0 {
		return
	}
	bound := s.Spec.Size * 8 * int64(sim.Second) / int64(bottleneck)
	fct := int64(s.FinishTime.Sub(s.Spec.Start))
	chk.FCTBound("transport/flow", uint64(s.Spec.ID), fct, bound)
}

func (d *Driver) flowDone(s *Sender) {
	chk := d.chk
	if d.ChkOf != nil {
		chk = d.ChkOf(s.Spec.Src)
	}
	if chk != nil && !s.Aborted {
		d.checkFCT(chk, s)
	}
	if d.streaming {
		if d.DropRx != nil {
			d.DropRx(s.Spec.Src, s.Spec.Dst, s.Spec.ID)
		} else {
			d.Stacks[s.Spec.Dst].DropReceiver(s.Spec.ID)
		}
	}
	if !s.Spec.Background {
		// A streaming run may momentarily have zero flows in flight
		// while arrivals are still pending; only stop once the
		// iterator is exhausted too.
		if d.remaining.Add(-1) == 0 {
			if d.OnZero != nil {
				d.OnZero()
			} else if !d.streaming || d.streamDrained {
				d.Eng.Stop()
			}
		}
	}
	if d.OnFlowDone != nil {
		d.OnFlowDone(s)
	}
}

// Schedule queues the flow arrivals onto the engine.
func (d *Driver) Schedule(flows []workload.FlowSpec) {
	for _, f := range flows {
		f := f
		if !f.Background {
			d.remaining.Add(1)
		}
		d.Eng.At(f.Start, func() {
			s := d.Stack(f.Src).StartFlow(f)
			d.started = append(d.started, s)
			if d.OnFlowStart != nil {
				d.OnFlowStart(s)
			}
		})
	}
}

// ScheduleStream switches the driver to streaming mode: next is pulled
// lazily, one arrival ahead of the simulation clock, so the schedule
// never materializes. The iterator must yield flows in
// non-decreasing Start order (workload.Spec.Stream does). Arrival
// events go on the calendar with AtHead so they win timestamp ties
// against in-flight packet and timer events — the order a materialized
// schedule gets for free, since its arrivals hold lower sequence
// numbers than anything enqueued mid-run.
func (d *Driver) ScheduleStream(next func() (workload.FlowSpec, bool)) {
	d.streaming = true
	d.streamNext = next
	d.arrivalFn = d.onArrival
	f, ok := next()
	if !ok {
		d.streamDrained = true
		return
	}
	d.pending = f
	d.hasPending = true
	d.Eng.AtHead(f.Start, d.arrivalFn)
}

// onArrival starts the pending flow and schedules the next arrival.
// Flows sharing one timestamp (a fan-in query's responses, the t=0
// background flows) are started back-to-back within this one event:
// that reproduces stored-mode event order, where all same-time arrival
// events were enqueued before any event their processing schedules.
func (d *Driver) onArrival() {
	for {
		cur := d.pending
		next, ok := d.streamNext()
		if !ok {
			d.hasPending = false
			d.streamDrained = true
			// Watchdog: give stragglers the same grace stored runs
			// get past the last arrival, then cut the run.
			d.Eng.At(cur.Start.Add(streamGrace), d.Eng.Stop)
			d.startStreamFlow(cur)
			return
		}
		d.pending = next
		if next.Start != cur.Start {
			d.Eng.AtHead(next.Start, d.arrivalFn)
			d.startStreamFlow(cur)
			return
		}
		d.startStreamFlow(cur)
	}
}

func (d *Driver) startStreamFlow(f workload.FlowSpec) {
	if !f.Background {
		d.remaining.Add(1)
	}
	s := d.Stack(f.Src).StartFlow(f)
	if d.OnFlowStart != nil {
		d.OnFlowStart(s)
	}
}

// Prime registers n foreground flows whose arrival events are
// scheduled externally — the sharded runner places each arrival on its
// source host's shard engine and starts it via StartArrival.
func (d *Driver) Prime(n int) {
	d.remaining.Add(int64(n))
	d.walkUnfinished = true
}

// MarkStreaming switches the driver into streaming semantics (receiver
// release on completion, stack-walk accounting) without installing an
// iterator; the sharded runner injects arrivals itself and registers
// each foreground flow with StreamArrival.
func (d *Driver) MarkStreaming() {
	d.streaming = true
	d.walkUnfinished = true
}

// StartArrival starts flow f on its source stack at the current time —
// the body of an externally scheduled arrival event. The foreground
// count must have been primed (Prime for stored runs) or is registered
// here (streaming runs).
func (d *Driver) StartArrival(f workload.FlowSpec, primed bool) {
	if !primed && !f.Background {
		d.remaining.Add(1)
	}
	s := d.Stack(f.Src).StartFlow(f)
	if d.OnFlowStart != nil {
		d.OnFlowStart(s)
	}
}

// Run executes until every scheduled foreground flow completes or
// maxTime elapses (ignored in streaming mode, which bounds the run by
// the last arrival plus a grace period), then records any unfinished
// foreground flows as incomplete. It returns the summarized metrics.
func (d *Driver) Run(maxTime sim.Time) (metrics.Summary, error) {
	if d.streaming {
		if d.streamDrained && !d.hasPending {
			return metrics.Summary{}, fmt.Errorf("transport: no foreground flows scheduled")
		}
		if err := d.Eng.Run(); err != nil {
			return metrics.Summary{}, err
		}
	} else {
		if d.remaining.Load() == 0 {
			return metrics.Summary{}, fmt.Errorf("transport: no foreground flows scheduled")
		}
		if err := d.Eng.RunUntil(maxTime); err != nil {
			return metrics.Summary{}, err
		}
	}
	d.FlushUnfinished()
	return d.Sink.Summarize(), nil
}

// FlushUnfinished records every cut-off foreground flow into the sink.
// Run does this for serial runs; the sharded runner calls it after
// draining the shard engines.
func (d *Driver) FlushUnfinished() {
	for _, s := range d.unfinished() {
		d.Sink.Add(metrics.FlowRecord{
			ID:       uint64(s.Spec.ID),
			Task:     s.Spec.Task,
			Size:     s.Spec.Size,
			Start:    s.Spec.Start,
			Deadline: s.Spec.Deadline,
			Done:     false,
			Retx:     s.Retx,
			Timeouts: s.Timeouts,
		})
	}
}

// unfinished returns the foreground senders the run cut off, in flow-id
// order. Stored mode reads the started list; streaming mode (which
// retains no such list) walks the stacks' live sender maps.
func (d *Driver) unfinished() []*Sender {
	var out []*Sender
	if !d.streaming && !d.walkUnfinished {
		for _, s := range d.started {
			if !s.Done && !s.Spec.Background {
				out = append(out, s)
			}
		}
		return out
	}
	for _, st := range d.Stacks {
		for _, s := range st.senders {
			if !s.Done && !s.Spec.Background {
				out = append(out, s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.ID < out[j].Spec.ID })
	return out
}

// Remaining returns how many foreground flows have not yet finished.
func (d *Driver) Remaining() int { return int(d.remaining.Load()) }
