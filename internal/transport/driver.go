package transport

import (
	"fmt"

	"pase/internal/metrics"
	"pase/internal/obs"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/topology"
	"pase/internal/workload"
)

// Driver runs a workload over a built fabric: it installs one Stack
// per host, schedules flow arrivals, and stops the simulation when
// every foreground flow has completed (or a deadline passes).
type Driver struct {
	Eng       *sim.Engine
	Net       *topology.Network
	Stacks    []*Stack
	Collector *metrics.Collector

	// OnFlowDone, when set, is called after any flow completes
	// (protocol integrations use it to release arbitration state).
	OnFlowDone func(s *Sender)
	// OnFlowStart, when set, is called right after a scheduled flow's
	// sender starts transmitting (tracing hooks observe arrivals here).
	OnFlowStart func(s *Sender)

	remaining int
	started   []*Sender
}

// Instrument attaches run-wide observability to every stack. The
// recorded streams:
//
//	transport/retx          retransmitted data segments
//	transport/timeouts      RTO firings
//	transport/probes        PASE loss-discrimination probes sent
//	transport/rate_updates  pacing-rate changes (SetRate calls)
func (d *Driver) Instrument(reg *obs.Registry) {
	o := stackObs{
		retx:        reg.Counter("transport/retx"),
		timeouts:    reg.Counter("transport/timeouts"),
		probes:      reg.Counter("transport/probes"),
		rateUpdates: reg.Counter("transport/rate_updates"),
	}
	for _, st := range d.Stacks {
		st.obs = o
	}
}

// NewDriver builds stacks on every host of the fabric.
func NewDriver(net *topology.Network, newControl func(*Sender) Control) *Driver {
	d := &Driver{
		Eng:       net.Eng,
		Net:       net,
		Collector: metrics.NewCollector(),
	}
	for _, h := range net.Hosts {
		h := h
		st := NewStack(net.Eng, h)
		st.NewControl = newControl
		st.Collector = d.Collector
		st.BaseRTT = func(dst pkt.NodeID) sim.Duration { return net.BaseRTT(h.ID(), dst) }
		st.OnFlowDone = d.flowDone
		d.Stacks = append(d.Stacks, st)
	}
	return d
}

// Stack returns the stack of host id.
func (d *Driver) Stack(id pkt.NodeID) *Stack { return d.Stacks[id] }

func (d *Driver) flowDone(s *Sender) {
	if !s.Spec.Background {
		d.remaining--
		if d.remaining == 0 {
			d.Eng.Stop()
		}
	}
	if d.OnFlowDone != nil {
		d.OnFlowDone(s)
	}
}

// Schedule queues the flow arrivals onto the engine.
func (d *Driver) Schedule(flows []workload.FlowSpec) {
	for _, f := range flows {
		f := f
		if !f.Background {
			d.remaining++
		}
		d.Eng.At(f.Start, func() {
			s := d.Stack(f.Src).StartFlow(f)
			d.started = append(d.started, s)
			if d.OnFlowStart != nil {
				d.OnFlowStart(s)
			}
		})
	}
}

// Run executes until every scheduled foreground flow completes or
// maxTime elapses, then records any unfinished foreground flows as
// incomplete. It returns the summarized metrics.
func (d *Driver) Run(maxTime sim.Time) (metrics.Summary, error) {
	if d.remaining == 0 {
		return metrics.Summary{}, fmt.Errorf("transport: no foreground flows scheduled")
	}
	if err := d.Eng.RunUntil(maxTime); err != nil {
		return metrics.Summary{}, err
	}
	for _, s := range d.started {
		if !s.Done && !s.Spec.Background {
			d.Collector.Add(metrics.FlowRecord{
				ID:       uint64(s.Spec.ID),
				Task:     s.Spec.Task,
				Size:     s.Spec.Size,
				Start:    s.Spec.Start,
				Deadline: s.Spec.Deadline,
				Done:     false,
				Retx:     s.Retx,
				Timeouts: s.Timeouts,
			})
		}
	}
	return d.Collector.Summarize(), nil
}

// Remaining returns how many foreground flows have not yet finished.
func (d *Driver) Remaining() int { return d.remaining }
