package transport

import (
	"fmt"

	"pase/internal/check"
	"pase/internal/metrics"
	"pase/internal/netem"
	"pase/internal/obs"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/topology"
	"pase/internal/workload"
)

// Driver runs a workload over a built fabric: it installs one Stack
// per host, schedules flow arrivals, and stops the simulation when
// every foreground flow has completed (or a deadline passes).
type Driver struct {
	Eng       *sim.Engine
	Net       *topology.Network
	Stacks    []*Stack
	Collector *metrics.Collector

	// OnFlowDone, when set, is called after any flow completes
	// (protocol integrations use it to release arbitration state).
	OnFlowDone func(s *Sender)
	// OnFlowStart, when set, is called right after a scheduled flow's
	// sender starts transmitting (tracing hooks observe arrivals here).
	OnFlowStart func(s *Sender)

	remaining int
	started   []*Sender

	chk *check.Checker
}

// Instrument attaches run-wide observability to every stack. The
// recorded streams:
//
//	transport/retx          retransmitted data segments
//	transport/timeouts      RTO firings
//	transport/probes        PASE loss-discrimination probes sent
//	transport/rate_updates  pacing-rate changes (SetRate calls)
func (d *Driver) Instrument(reg *obs.Registry) {
	o := stackObs{
		retx:        reg.Counter("transport/retx"),
		timeouts:    reg.Counter("transport/timeouts"),
		probes:      reg.Counter("transport/probes"),
		rateUpdates: reg.Counter("transport/rate_updates"),
	}
	for _, st := range d.Stacks {
		st.obs = o
	}
}

// NewDriver builds stacks on every host of the fabric.
func NewDriver(net *topology.Network, newControl func(*Sender) Control) *Driver {
	d := &Driver{
		Eng:       net.Eng,
		Net:       net,
		Collector: metrics.NewCollector(),
	}
	for _, h := range net.Hosts {
		h := h
		st := NewStack(net.Eng, h)
		st.NewControl = newControl
		st.Collector = d.Collector
		st.BaseRTT = func(dst pkt.NodeID) sim.Duration { return net.BaseRTT(h.ID(), dst) }
		st.OnFlowDone = d.flowDone
		d.Stacks = append(d.Stacks, st)
	}
	return d
}

// Stack returns the stack of host id.
func (d *Driver) Stack(id pkt.NodeID) *Stack { return d.Stacks[id] }

// AttachCheck installs a runtime invariant checker: every completed
// flow is verified against its physical completion-time lower bound —
// Size bytes cannot clear the path's bottleneck link faster than their
// serialization time there. Nil detaches (the default).
func (d *Driver) AttachCheck(c *check.Checker) { d.chk = c }

// checkFCT verifies one completed flow's FCT lower bound.
func (d *Driver) checkFCT(s *Sender) {
	var bottleneck netem.BitRate
	for _, l := range d.Net.PathFlow(s.Spec.Src, s.Spec.Dst, s.Spec.ID) {
		if bottleneck == 0 || l.Capacity() < bottleneck {
			bottleneck = l.Capacity()
		}
	}
	if bottleneck <= 0 {
		return
	}
	bound := s.Spec.Size * 8 * int64(sim.Second) / int64(bottleneck)
	fct := int64(s.FinishTime.Sub(s.Spec.Start))
	d.chk.FCTBound("transport/flow", uint64(s.Spec.ID), fct, bound)
}

func (d *Driver) flowDone(s *Sender) {
	if d.chk != nil && !s.Aborted {
		d.checkFCT(s)
	}
	if !s.Spec.Background {
		d.remaining--
		if d.remaining == 0 {
			d.Eng.Stop()
		}
	}
	if d.OnFlowDone != nil {
		d.OnFlowDone(s)
	}
}

// Schedule queues the flow arrivals onto the engine.
func (d *Driver) Schedule(flows []workload.FlowSpec) {
	for _, f := range flows {
		f := f
		if !f.Background {
			d.remaining++
		}
		d.Eng.At(f.Start, func() {
			s := d.Stack(f.Src).StartFlow(f)
			d.started = append(d.started, s)
			if d.OnFlowStart != nil {
				d.OnFlowStart(s)
			}
		})
	}
}

// Run executes until every scheduled foreground flow completes or
// maxTime elapses, then records any unfinished foreground flows as
// incomplete. It returns the summarized metrics.
func (d *Driver) Run(maxTime sim.Time) (metrics.Summary, error) {
	if d.remaining == 0 {
		return metrics.Summary{}, fmt.Errorf("transport: no foreground flows scheduled")
	}
	if err := d.Eng.RunUntil(maxTime); err != nil {
		return metrics.Summary{}, err
	}
	for _, s := range d.started {
		if !s.Done && !s.Spec.Background {
			d.Collector.Add(metrics.FlowRecord{
				ID:       uint64(s.Spec.ID),
				Task:     s.Spec.Task,
				Size:     s.Spec.Size,
				Start:    s.Spec.Start,
				Deadline: s.Spec.Deadline,
				Done:     false,
				Retx:     s.Retx,
				Timeouts: s.Timeouts,
			})
		}
	}
	return d.Collector.Summarize(), nil
}

// Remaining returns how many foreground flows have not yet finished.
func (d *Driver) Remaining() int { return d.remaining }
