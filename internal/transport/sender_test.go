package transport

import (
	"testing"
	"testing/quick"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/topology"
	"pase/internal/workload"
)

// nopControl is a minimal protocol for white-box sender tests.
type nopControl struct {
	initCwnd float64
	minRTO   sim.Duration
	timeouts int
}

func (c *nopControl) Name() string { return "nop" }
func (c *nopControl) Init(s *Sender) {
	if c.initCwnd == 0 {
		c.initCwnd = 4
	}
	if c.minRTO == 0 {
		c.minRTO = 10 * sim.Millisecond
	}
	s.Cwnd = c.initCwnd
}
func (c *nopControl) OnAck(*Sender, *pkt.Packet, int32, sim.Duration) {}
func (c *nopControl) OnLoss(*Sender)                                  {}
func (c *nopControl) OnTimeout(*Sender) bool                          { c.timeouts++; return false }
func (c *nopControl) FillData(s *Sender, p *pkt.Packet)               { p.ECT = true }
func (c *nopControl) MinRTO(*Sender) sim.Duration                     { return c.minRTO }

func testRig(t *testing.T) (*topology.Network, *Driver, *nopControl) {
	t.Helper()
	net := topology.Build(sim.NewEngine(), topology.SingleRack(2, func(topology.QueueKind) netem.Queue {
		return netem.NewDropTail(1000)
	}))
	ctrl := &nopControl{}
	d := NewDriver(net, func(*Sender) Control { return ctrl })
	return net, d, ctrl
}

func start(t *testing.T, d *Driver, size int64) *Sender {
	t.Helper()
	d.remaining.Add(1) // accounted manually since we bypass Schedule
	return d.Stack(0).StartFlow(workload.FlowSpec{ID: 1, Src: 0, Dst: 1, Size: size, Start: 0})
}

func TestWindowLimitsInflight(t *testing.T) {
	net, d, _ := testRig(t)
	s := start(t, d, 100*pkt.MSS)
	if s.Inflight() != 4 {
		t.Fatalf("inflight = %d, want initial window 4", s.Inflight())
	}
	if err := net.Eng.RunUntil(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	if !s.Done {
		t.Fatal("flow should complete")
	}
}

func TestHoldBlocksTransmission(t *testing.T) {
	net, d, _ := testRig(t)
	d.remaining.Add(1)
	st := d.Stack(0)
	// Install a control that holds in Init.
	st.NewControl = func(*Sender) Control { return &holdControl{} }
	s := st.StartFlow(workload.FlowSpec{ID: 2, Src: 0, Dst: 1, Size: 10 * pkt.MSS, Start: 0})
	if s.Inflight() != 0 {
		t.Fatalf("held sender transmitted %d packets", s.Inflight())
	}
	s.Hold = false
	s.Kick()
	if s.Inflight() == 0 {
		t.Fatal("kick after unhold should transmit")
	}
	_ = net
}

type holdControl struct{ nopControl }

func (c *holdControl) Init(s *Sender) {
	c.nopControl.Init(s)
	s.Hold = true
}

func TestAbsorbProbeAckLost(t *testing.T) {
	_, d, _ := testRig(t)
	s := start(t, d, 10*pkt.MSS)
	// Pretend the receiver reports segment 0 missing.
	before := s.Retx
	s.AbsorbProbeAck(&pkt.Packet{Type: pkt.ProbeAck, SackSeq: 0, Have: false, CumAck: 0})
	// Segment 0 was inflight; it must now be queued and retransmitted.
	if s.Retx != before+1 {
		t.Fatalf("lost probe answer should trigger retransmission (retx=%d)", s.Retx)
	}
}

func TestAbsorbProbeAckHave(t *testing.T) {
	_, d, _ := testRig(t)
	s := start(t, d, 10*pkt.MSS)
	s.AbsorbProbeAck(&pkt.Packet{Type: pkt.ProbeAck, SackSeq: 0, Have: true, CumAck: 1})
	if s.CumAck() != 1 {
		t.Fatalf("cumAck = %d, want 1 after Have probe-ack", s.CumAck())
	}
	if s.Retx != 0 {
		t.Fatal("no retransmission when the receiver has the segment")
	}
}

func TestAbsorbProbeAckCompletes(t *testing.T) {
	_, d, _ := testRig(t)
	s := start(t, d, 2*pkt.MSS) // window 4 >= 2 segments, all inflight
	s.AbsorbProbeAck(&pkt.Packet{Type: pkt.ProbeAck, SackSeq: 1, Have: true, CumAck: 2})
	if !s.Done {
		t.Fatal("probe-ack covering everything should complete the flow")
	}
}

func TestRTOBackoffDoubles(t *testing.T) {
	_, d, ctrl := testRig(t)
	_ = ctrl
	s := start(t, d, 10*pkt.MSS)
	base := s.RTO()
	s.backoff = 3
	if got := s.RTO(); got != base*8 {
		t.Fatalf("backoff RTO = %v, want %v", got, base*8)
	}
	s.backoff = 100 // silly: must clamp
	if got := s.RTO(); got != AbsMaxRTO {
		t.Fatalf("RTO = %v, want clamp at %v", got, AbsMaxRTO)
	}
}

func TestFixedRTOIgnoresBackoff(t *testing.T) {
	_, d, _ := testRig(t)
	s := start(t, d, 10*pkt.MSS)
	s.FixedRTO = sim.Millisecond
	s.backoff = 5
	if got := s.RTO(); got != sim.Millisecond {
		t.Fatalf("fixed RTO = %v, want 1ms", got)
	}
}

func TestMarkLostOnlyInflight(t *testing.T) {
	_, d, _ := testRig(t)
	s := start(t, d, 10*pkt.MSS)
	s.MarkLost(0)
	if s.Inflight() != 3 {
		t.Fatalf("inflight = %d, want 3 after one loss", s.Inflight())
	}
	s.MarkLost(0) // already lost: no double count
	if s.Inflight() != 3 {
		t.Fatal("double MarkLost changed inflight")
	}
	s.MarkLost(9) // unsent
	s.MarkLost(-1)
	s.MarkLost(99)
	if s.Inflight() != 3 {
		t.Fatal("MarkLost on non-inflight segments must be a no-op")
	}
}

func TestTimeoutTriggersGoBackN(t *testing.T) {
	net, d, ctrl := testRig(t)
	// Break the link so nothing is delivered: swap the host handler.
	net.Host(1).Handler = func(*pkt.Packet) {}
	s := start(t, d, 10*pkt.MSS)
	if err := net.Eng.RunUntil(sim.Time(25 * sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if ctrl.timeouts == 0 || s.Timeouts == 0 {
		t.Fatal("timeout should have fired")
	}
	if s.Retx == 0 {
		t.Fatal("go-back-N should retransmit")
	}
}

func TestPacedModeRespectsRate(t *testing.T) {
	net, d, _ := testRig(t)
	d.remaining.Add(1)
	st := d.Stack(0)
	st.NewControl = func(*Sender) Control { return &pacedControl{} }
	var arrivals []sim.Time
	inner := net.Host(1).Handler
	net.Host(1).Handler = func(p *pkt.Packet) {
		if p.Type == pkt.Data {
			arrivals = append(arrivals, net.Eng.Now())
		}
		inner(p)
	}
	st.StartFlow(workload.FlowSpec{ID: 3, Src: 0, Dst: 1, Size: 10 * pkt.MSS, Start: 0})
	if err := net.Eng.RunUntil(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) < 10 {
		t.Fatalf("only %d data packets arrived", len(arrivals))
	}
	// 100 Mbps pacing of 1500B packets = 120µs spacing.
	for i := 1; i < 10; i++ {
		gap := arrivals[i].Sub(arrivals[i-1])
		if gap < 110*sim.Microsecond {
			t.Fatalf("pacing violated: gap %v", gap)
		}
	}
}

type pacedControl struct{ nopControl }

func (c *pacedControl) Init(s *Sender) {
	c.nopControl.Init(s)
	s.Paced = true
	s.SetRate(100 * netem.Mbps)
}

func TestAbortRecordsIncomplete(t *testing.T) {
	net, d, _ := testRig(t)
	s := start(t, d, 100*pkt.MSS)
	s.Abort()
	if !s.Done || !s.Aborted {
		t.Fatal("abort should mark the sender done+aborted")
	}
	recs := d.Collector.Records()
	if len(recs) != 1 || recs[0].Done {
		t.Fatalf("aborted flow should be recorded incomplete: %+v", recs)
	}
	// Idempotent.
	s.Abort()
	if len(d.Collector.Records()) != 1 {
		t.Fatal("double abort double-recorded")
	}
	_ = net
}

// Property: under arbitrary loss patterns injected via MarkLost and a
// lossy queue, every flow still completes (reliability invariant).
func TestReliabilityUnderRandomLoss(t *testing.T) {
	f := func(seed uint64, qsizeRaw uint8) bool {
		qsize := int(qsizeRaw%20) + 3
		eng := sim.NewEngine()
		net := topology.Build(eng, topology.SingleRack(4, func(topology.QueueKind) netem.Queue {
			return netem.NewDropTail(qsize)
		}))
		ctrl := &nopControl{initCwnd: 12, minRTO: 5 * sim.Millisecond}
		d := NewDriver(net, func(*Sender) Control { return ctrl })
		r := sim.NewRand(seed)
		var flows []workload.FlowSpec
		for i := 0; i < 8; i++ {
			flows = append(flows, workload.FlowSpec{
				ID:    pkt.FlowID(i + 1),
				Src:   pkt.NodeID(i % 3),
				Dst:   3,
				Size:  r.UniformInt(500, 120_000),
				Start: sim.Time(r.Int63n(int64(2 * sim.Millisecond))),
			})
		}
		d.Schedule(flows)
		sum, err := d.Run(sim.Time(60 * sim.Second))
		if err != nil {
			return false
		}
		return sum.Completed == 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
