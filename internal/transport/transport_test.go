package transport_test

import (
	"math"
	"testing"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/topology"
	"pase/internal/transport"
	"pase/internal/transport/dctcp"
	"pase/internal/workload"
)

func redq(topology.QueueKind) netem.Queue { return netem.NewREDECN(225, 65) }

func singleRack(n int) *topology.Network {
	return topology.Build(sim.NewEngine(), topology.SingleRack(n, redq))
}

func flow(id pkt.FlowID, src, dst pkt.NodeID, size int64, start sim.Time) workload.FlowSpec {
	return workload.FlowSpec{ID: id, Src: src, Dst: dst, Size: size, Start: start}
}

func TestSingleFlowCompletes(t *testing.T) {
	net := singleRack(4)
	d := transport.NewDriver(net, dctcp.New(dctcp.DefaultConfig()))
	d.Schedule([]workload.FlowSpec{flow(1, 0, 1, 150000, 0)})
	s, err := d.Run(sim.Time(5 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 1 {
		t.Fatalf("completed = %d, want 1", s.Completed)
	}
	// 150 KB at 1 Gbps is ~1.2ms of serialization plus ramp-up; with a
	// 100µs RTT the FCT must land well under 5ms and above the
	// line-rate bound.
	lineRate := sim.Duration(float64(150000*8) / 1e9 * float64(sim.Second))
	if s.AFCT < lineRate {
		t.Fatalf("AFCT %v below line-rate bound %v", s.AFCT, lineRate)
	}
	if s.AFCT > 5*sim.Millisecond {
		t.Fatalf("AFCT %v too slow", s.AFCT)
	}
	if s.Retx != 0 {
		t.Fatalf("unexpected retransmissions: %d", s.Retx)
	}
}

func TestTinyFlowSingleSegment(t *testing.T) {
	net := singleRack(2)
	d := transport.NewDriver(net, dctcp.New(dctcp.DefaultConfig()))
	d.Schedule([]workload.FlowSpec{flow(1, 0, 1, 100, 0)})
	s, err := d.Run(sim.Time(time1s()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 1 {
		t.Fatalf("completed = %d, want 1", s.Completed)
	}
	// One segment + ACK ≈ one RTT (100µs) plus serialization.
	if s.AFCT > 200*sim.Microsecond {
		t.Fatalf("tiny flow FCT = %v, want ≈RTT", s.AFCT)
	}
}

func time1s() sim.Time { return sim.Time(sim.Second) }

func TestManyFlowsAllComplete(t *testing.T) {
	net := singleRack(8)
	d := transport.NewDriver(net, dctcp.New(dctcp.DefaultConfig()))
	r := sim.NewRand(42)
	spec := workload.Spec{
		Pattern:   workload.AllToAll{Hosts: workload.HostRange(0, 8)},
		Sizes:     workload.UniformSize{Min: 2000, Max: 198000},
		Load:      0.4,
		Reference: 8 * netem.Gbps,
		NumFlows:  200,
	}
	d.Schedule(spec.Generate(r, 1))
	s, err := d.Run(sim.Time(20 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 200 {
		t.Fatalf("completed = %d, want 200", s.Completed)
	}
	if s.AFCT <= 0 {
		t.Fatal("AFCT must be positive")
	}
}

func TestFairSharingTwoFlows(t *testing.T) {
	// Two long DCTCP flows into the same receiver should split the
	// 1 Gbps downlink roughly evenly: equal sizes finish around the
	// same time, and the total throughput approximates the link rate.
	net := singleRack(4)
	d := transport.NewDriver(net, dctcp.New(dctcp.DefaultConfig()))
	const size = 2_000_000
	d.Schedule([]workload.FlowSpec{
		flow(1, 0, 2, size, 0),
		flow(2, 1, 2, size, 0),
	})
	s, err := d.Run(sim.Time(5 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 2 {
		t.Fatalf("completed = %d, want 2", s.Completed)
	}
	recs := d.Collector.Completed()
	f1, f2 := recs[0].FCT().Seconds(), recs[1].FCT().Seconds()
	ideal := float64(2*size*8) / 1e9 // both flows through one 1Gbps link
	slower := math.Max(f1, f2)
	if slower < ideal*0.95 {
		t.Fatalf("finished faster than the link allows: %v < %v", slower, ideal)
	}
	if slower > ideal*1.6 {
		t.Fatalf("poor utilization: %v vs ideal %v", slower, ideal)
	}
	if math.Abs(f1-f2)/slower > 0.35 {
		t.Fatalf("unfair split: %v vs %v", f1, f2)
	}
}

func TestECNKeepsQueuesShortAndLossless(t *testing.T) {
	net := singleRack(6)
	d := transport.NewDriver(net, dctcp.New(dctcp.DefaultConfig()))
	var flows []workload.FlowSpec
	for i := 0; i < 5; i++ {
		flows = append(flows, flow(pkt.FlowID(i+1), pkt.NodeID(i), 5, 500000, 0))
	}
	d.Schedule(flows)
	if _, err := d.Run(sim.Time(5 * sim.Second)); err != nil {
		t.Fatal(err)
	}
	st := net.QueueStatsTotal()
	if st.Marked == 0 {
		t.Fatal("expected ECN marks under 5-way incast")
	}
	if st.Dropped > 0 {
		t.Fatalf("DCTCP with 225-pkt buffers should not drop, dropped %d", st.Dropped)
	}
}

func TestLossRecoveryUnderTinyBuffers(t *testing.T) {
	// 8-packet drop-tail buffers with no ECN forces real losses; the
	// flows must still complete via fast retransmit / RTO.
	eng := sim.NewEngine()
	net := topology.Build(eng, topology.SingleRack(6, func(topology.QueueKind) netem.Queue {
		return netem.NewDropTail(8)
	}))
	d := transport.NewDriver(net, dctcp.New(dctcp.DefaultConfig()))
	var flows []workload.FlowSpec
	for i := 0; i < 5; i++ {
		flows = append(flows, flow(pkt.FlowID(i+1), pkt.NodeID(i), 5, 300000, 0))
	}
	d.Schedule(flows)
	s, err := d.Run(sim.Time(10 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 5 {
		t.Fatalf("completed = %d, want 5", s.Completed)
	}
	if net.QueueStatsTotal().Dropped == 0 {
		t.Fatal("scenario should actually drop packets")
	}
	if s.Retx == 0 {
		t.Fatal("recovery must have retransmitted something")
	}
}

func TestBackgroundFlowExcludedFromStats(t *testing.T) {
	net := singleRack(4)
	d := transport.NewDriver(net, dctcp.New(dctcp.DefaultConfig()))
	d.Schedule([]workload.FlowSpec{
		{ID: 1, Src: 0, Dst: 1, Size: 1 << 30, Start: 0, Background: true},
		flow(2, 2, 3, 100000, 0),
	})
	s, err := d.Run(sim.Time(2 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Flows != 1 || s.Completed != 1 {
		t.Fatalf("stats should only see the foreground flow: %+v", s)
	}
}

func TestUnfinishedFlowRecordedIncomplete(t *testing.T) {
	net := singleRack(4)
	d := transport.NewDriver(net, dctcp.New(dctcp.DefaultConfig()))
	// 1 GB foreground flow cannot finish in 10ms of simulated time.
	d.Schedule([]workload.FlowSpec{flow(1, 0, 1, 1<<30, 0)})
	s, err := d.Run(sim.Time(10 * sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if s.Flows != 1 || s.Completed != 0 {
		t.Fatalf("want 1 incomplete flow, got %+v", s)
	}
}

func TestDeadlineMetadataPropagates(t *testing.T) {
	net := singleRack(4)
	d := transport.NewDriver(net, dctcp.New(dctcp.DefaultConfig()))
	f := flow(1, 0, 1, 50000, 0)
	f.Deadline = sim.Time(20 * sim.Millisecond)
	d.Schedule([]workload.FlowSpec{f})
	s, err := d.Run(sim.Time(sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.DeadlineFlows != 1 || s.AppThroughput != 1 {
		t.Fatalf("deadline accounting wrong: %+v", s)
	}
}

func TestDriverDeterminism(t *testing.T) {
	run := func() sim.Duration {
		net := singleRack(8)
		d := transport.NewDriver(net, dctcp.New(dctcp.DefaultConfig()))
		spec := workload.Spec{
			Pattern:   workload.AllToAll{Hosts: workload.HostRange(0, 8)},
			Sizes:     workload.UniformSize{Min: 2000, Max: 198000},
			Load:      0.5,
			Reference: 8 * netem.Gbps,
			NumFlows:  100,
		}
		d.Schedule(spec.Generate(sim.NewRand(7), 1))
		s, err := d.Run(sim.Time(20 * sim.Second))
		if err != nil {
			t.Fatal(err)
		}
		return s.AFCT
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical seeds gave different AFCTs: %v vs %v", a, b)
	}
}

func TestStartFlowOnWrongHostPanics(t *testing.T) {
	net := singleRack(2)
	d := transport.NewDriver(net, dctcp.New(dctcp.DefaultConfig()))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Stack(0).StartFlow(flow(1, 1, 0, 1000, 0))
}

func TestDuplicateFlowIDPanics(t *testing.T) {
	net := singleRack(2)
	d := transport.NewDriver(net, dctcp.New(dctcp.DefaultConfig()))
	d.Stack(0).StartFlow(flow(1, 0, 1, 1000, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Stack(0).StartFlow(flow(1, 0, 1, 1000, 0))
}
