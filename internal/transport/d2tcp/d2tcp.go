// Package d2tcp implements Deadline-Aware Data Center TCP (Vamanan et
// al., SIGCOMM 2012). D2TCP keeps DCTCP's ECN machinery but gamma-
// corrects the backoff with deadline imminence: the penalty applied on
// congestion is p = alpha^d, where d > 1 for flows close to their
// deadline (they back off less) and d < 1 for far-from-deadline flows
// (they back off more). Flows without deadlines use d = 1 and degrade
// to DCTCP exactly.
package d2tcp

import (
	"math"

	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/transport"
)

// Config holds D2TCP parameters.
type Config struct {
	G         float64
	InitCwnd  float64
	MinRTO    sim.Duration
	AlphaInit float64
	// DMin/DMax clamp the deadline-imminence exponent (the paper uses
	// [0.5, 2.0]).
	DMin, DMax float64
}

// DefaultConfig returns the paper's parameterization.
func DefaultConfig() Config {
	return Config{
		G:        1.0 / 16.0,
		InitCwnd: 10,
		MinRTO:   10 * sim.Millisecond,
		DMin:     0.5,
		DMax:     2.0,
	}
}

// New returns a Control factory.
func New(cfg Config) func(*transport.Sender) transport.Control {
	return func(*transport.Sender) transport.Control {
		return &control{cfg: cfg}
	}
}

type control struct {
	cfg Config

	alpha     float64
	acks      int32
	marked    int32
	windowEnd int32
	cutEnd    int32
}

func (c *control) Name() string { return "D2TCP" }

// Init implements transport.Control.
func (c *control) Init(s *transport.Sender) {
	c.alpha = c.cfg.AlphaInit
	s.Cwnd = c.cfg.InitCwnd
	s.SSThresh = 1 << 20
	c.cutEnd = -1
}

// imminence computes the deadline-imminence exponent d = Tc/D: the
// ratio of the time the flow still needs at its current rate (Tc) to
// the time left until its deadline (D).
func (c *control) imminence(s *transport.Sender) float64 {
	if s.Spec.Deadline == 0 {
		return 1 // no deadline: behave exactly like DCTCP
	}
	left := s.Spec.Deadline.Sub(s.Now())
	if left <= 0 {
		return c.cfg.DMax // already late: be as aggressive as allowed
	}
	// Time needed: remaining bytes at ~3/4 of the current window per
	// RTT (the sawtooth average the paper uses).
	rtt := s.RTT().Seconds()
	ratePkts := 0.75 * s.Cwnd / rtt // segments per second
	if ratePkts <= 0 {
		return c.cfg.DMax
	}
	tc := float64(s.Remaining()) / float64(pkt.MSS) / ratePkts
	d := tc / left.Seconds()
	if d < c.cfg.DMin {
		d = c.cfg.DMin
	}
	if d > c.cfg.DMax {
		d = c.cfg.DMax
	}
	return d
}

// OnAck implements transport.Control.
func (c *control) OnAck(s *transport.Sender, ack *pkt.Packet, newly int32, _ sim.Duration) {
	c.acks++
	if ack.Echo {
		c.marked++
	}
	if s.CumAck() > c.windowEnd {
		f := 0.0
		if c.acks > 0 {
			f = float64(c.marked) / float64(c.acks)
		}
		c.alpha = (1-c.cfg.G)*c.alpha + c.cfg.G*f
		c.acks, c.marked = 0, 0
		c.windowEnd = s.NextWindowEdge()
	}

	if ack.Echo {
		if s.CumAck() > c.cutEnd {
			// Gamma-corrected penalty: p = alpha^d.
			p := math.Pow(c.alpha, c.imminence(s))
			s.Cwnd = s.Cwnd * (1 - p/2)
			if s.Cwnd < 1 {
				s.Cwnd = 1
			}
			c.cutEnd = s.NextWindowEdge()
		}
		return
	}
	if newly <= 0 {
		return
	}
	for i := int32(0); i < newly; i++ {
		if s.Cwnd < s.SSThresh {
			s.Cwnd++
		} else {
			s.Cwnd += 1 / s.Cwnd
		}
	}
}

// OnLoss implements transport.Control.
func (c *control) OnLoss(s *transport.Sender) {
	s.SSThresh = s.Cwnd / 2
	if s.SSThresh < 2 {
		s.SSThresh = 2
	}
	s.Cwnd = s.SSThresh
}

// OnTimeout implements transport.Control.
func (c *control) OnTimeout(s *transport.Sender) bool {
	s.SSThresh = s.Cwnd / 2
	if s.SSThresh < 2 {
		s.SSThresh = 2
	}
	s.Cwnd = 1
	return false
}

// FillData implements transport.Control.
func (c *control) FillData(s *transport.Sender, p *pkt.Packet) {
	p.ECT = true
	p.Prio = s.Prio
}

// MinRTO implements transport.Control.
func (c *control) MinRTO(*transport.Sender) sim.Duration { return c.cfg.MinRTO }
