package d2tcp_test

import (
	"testing"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/topology"
	"pase/internal/transport"
	"pase/internal/transport/d2tcp"
	"pase/internal/transport/dctcp"
	"pase/internal/workload"
)

func rack(n int) *topology.Network {
	return topology.Build(sim.NewEngine(), topology.SingleRack(n, func(topology.QueueKind) netem.Queue {
		return netem.NewREDECN(225, 65)
	}))
}

func TestBehavesLikeDCTCPWithoutDeadlines(t *testing.T) {
	run := func(factory func(*transport.Sender) transport.Control) sim.Duration {
		net := rack(4)
		d := transport.NewDriver(net, factory)
		d.Schedule([]workload.FlowSpec{
			{ID: 1, Src: 0, Dst: 2, Size: 1_000_000, Start: 0},
			{ID: 2, Src: 1, Dst: 2, Size: 1_000_000, Start: 0},
		})
		s, err := d.Run(sim.Time(5 * sim.Second))
		if err != nil {
			t.Fatal(err)
		}
		if s.Completed != 2 {
			t.Fatalf("completed = %d", s.Completed)
		}
		return s.AFCT
	}
	a := run(d2tcp.New(d2tcp.DefaultConfig()))
	b := run(dctcp.New(dctcp.DefaultConfig()))
	// Without deadlines D2TCP's penalty is alpha^1 = alpha: identical
	// law, near-identical outcome.
	diff := float64(a-b) / float64(b)
	if diff < -0.05 || diff > 0.05 {
		t.Fatalf("no-deadline D2TCP diverges from DCTCP: %v vs %v", a, b)
	}
}

func TestTightDeadlineFlowWins(t *testing.T) {
	// Two equal flows into one receiver; one has a tight deadline, the
	// other a loose one. D2TCP must let the urgent flow finish first.
	net := rack(4)
	d := transport.NewDriver(net, d2tcp.New(d2tcp.DefaultConfig()))
	const size = 1_000_000
	tight := workload.FlowSpec{ID: 1, Src: 0, Dst: 2, Size: size, Start: 0,
		Deadline: sim.Time(14 * sim.Millisecond)}
	loose := workload.FlowSpec{ID: 2, Src: 1, Dst: 2, Size: size, Start: 0,
		Deadline: sim.Time(100 * sim.Millisecond)}
	d.Schedule([]workload.FlowSpec{tight, loose})
	s, err := d.Run(sim.Time(5 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 2 {
		t.Fatalf("completed = %d", s.Completed)
	}
	var tightFCT, looseFCT sim.Duration
	for _, r := range d.Collector.Completed() {
		if r.ID == 1 {
			tightFCT = r.FCT()
		} else {
			looseFCT = r.FCT()
		}
	}
	if tightFCT >= looseFCT {
		t.Fatalf("tight-deadline flow (%v) should finish before loose one (%v)", tightFCT, looseFCT)
	}
	// The loose deadline (100 ms for an 8 ms transfer) must be met;
	// deadline-aware backoff should not wreck either flow.
	if s.AppThroughput < 0.5 {
		t.Fatalf("app throughput %v, want >= 0.5", s.AppThroughput)
	}
}

func TestDeadlineSweepMeetsMoreThanDCTCP(t *testing.T) {
	// The paper's motivating claim (Figure 1 region at moderate load):
	// deadline-awareness meets more deadlines than fair sharing.
	run := func(factory func(*transport.Sender) transport.Control) float64 {
		net := rack(10)
		d := transport.NewDriver(net, factory)
		spec := workload.Spec{
			Pattern:     workload.AllToAll{Hosts: workload.HostRange(0, 10)},
			Sizes:       workload.UniformSize{Min: 100_000, Max: 500_000},
			Load:        0.5,
			Reference:   10 * netem.Gbps,
			NumFlows:    300,
			DeadlineMin: 5 * sim.Millisecond,
			DeadlineMax: 25 * sim.Millisecond,
		}
		d.Schedule(spec.Generate(sim.NewRand(3), 1))
		s, err := d.Run(sim.Time(30 * sim.Second))
		if err != nil {
			t.Fatal(err)
		}
		return s.AppThroughput
	}
	d2 := run(d2tcp.New(d2tcp.DefaultConfig()))
	dc := run(dctcp.New(dctcp.DefaultConfig()))
	if d2 < dc-0.02 {
		t.Fatalf("D2TCP app throughput %v should be >= DCTCP %v", d2, dc)
	}
	_ = pkt.MTU
}
