package transport

import (
	"pase/internal/pkt"
)

// receiver is the per-flow receive side: it tracks which segments have
// arrived and answers every data packet with an immediate ACK carrying
// cumulative and selective feedback plus the ECN echo for that packet
// (per-packet echo gives DCTCP-style senders an exact mark fraction).
// ACKs are small and travel in the top priority class so feedback is
// never starved by bulk data.
type receiver struct {
	st   *Stack
	flow pkt.FlowID
	src  pkt.NodeID // the flow's sender

	got          []bool
	firstMissing int32
}

func newReceiver(st *Stack, first *pkt.Packet) *receiver {
	return &receiver{st: st, flow: first.Flow, src: first.Src}
}

func (r *receiver) have(seq int32) bool {
	return seq >= 0 && int(seq) < len(r.got) && r.got[seq]
}

func (r *receiver) onPacket(p *pkt.Packet) {
	switch p.Type {
	case pkt.Data:
		r.noteData(p)
		r.reply(p, pkt.Ack, true)
	case pkt.Probe:
		r.reply(p, pkt.ProbeAck, r.have(p.Seq))
	}
}

func (r *receiver) noteData(p *pkt.Packet) {
	for int(p.Seq) >= len(r.got) {
		r.got = append(r.got, false)
	}
	r.got[p.Seq] = true
	for int(r.firstMissing) < len(r.got) && r.got[r.firstMissing] {
		r.firstMissing++
	}
}

func (r *receiver) reply(p *pkt.Packet, typ pkt.Type, have bool) {
	ack := &pkt.Packet{
		ID:      r.st.nextPktID(),
		Flow:    r.flow,
		Src:     r.st.Host.ID(),
		Dst:     p.Src,
		Type:    typ,
		Seq:     p.Seq,
		Size:    pkt.HeaderSize,
		Prio:    0, // feedback rides the top priority class
		Rank:    0,
		CumAck:  r.firstMissing,
		SackSeq: p.Seq,
		Echo:    p.CE,
		Have:    have,
		SentAt:  p.SentAt, // echoed timestamp for RTT sampling
	}
	if typ == pkt.Ack {
		ack.AckBytes = p.Size - pkt.HeaderSize
	}
	r.st.Host.Send(ack)
}
