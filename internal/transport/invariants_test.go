package transport_test

import (
	"testing"
	"testing/quick"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/topology"
	"pase/internal/transport"
	"pase/internal/transport/dctcp"
	"pase/internal/workload"
)

// TestExactlyOnceGoodput checks the end-to-end data-integrity
// invariant: for every completed flow, the receiver observed every
// segment at least once and the sender counted exactly the flow's
// payload as acknowledged — no byte lost, none double-counted —
// even under heavy loss.
func TestExactlyOnceGoodput(t *testing.T) {
	eng := sim.NewEngine()
	net := topology.Build(eng, topology.SingleRack(6, func(topology.QueueKind) netem.Queue {
		return netem.NewDropTail(6) // brutal buffers
	}))
	d := transport.NewDriver(net, dctcp.New(dctcp.DefaultConfig()))

	// Count distinct segments seen per flow at the receiver.
	type key struct {
		flow pkt.FlowID
		seq  int32
	}
	seen := make(map[key]int)
	for _, h := range net.Hosts {
		inner := h.Handler
		h.Handler = func(p *pkt.Packet) {
			if p.Type == pkt.Data {
				seen[key{p.Flow, p.Seq}]++
			}
			inner(p)
		}
	}

	var flows []workload.FlowSpec
	sizes := []int64{1, 1000, 1460, 1461, 50_000, 149_999}
	for i, size := range sizes {
		flows = append(flows, workload.FlowSpec{
			ID: pkt.FlowID(i + 1), Src: pkt.NodeID(i % 5), Dst: 5, Size: size, Start: 0,
		})
	}
	d.Schedule(flows)
	s, err := d.Run(sim.Time(30 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != len(sizes) {
		t.Fatalf("completed %d/%d", s.Completed, len(sizes))
	}
	for i, size := range sizes {
		segs := pkt.DataPackets(size)
		for q := int32(0); q < segs; q++ {
			if seen[key{pkt.FlowID(i + 1), q}] == 0 {
				t.Fatalf("flow %d segment %d never reached the receiver", i+1, q)
			}
		}
	}
}

// Property: the collector's byte accounting matches the workload for
// arbitrary flow sizes.
func TestCollectorSizeAccounting(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 || len(raw) > 6 {
			return true
		}
		eng := sim.NewEngine()
		net := topology.Build(eng, topology.SingleRack(4, func(topology.QueueKind) netem.Queue {
			return netem.NewREDECN(225, 65)
		}))
		d := transport.NewDriver(net, dctcp.New(dctcp.DefaultConfig()))
		var want int64
		var flows []workload.FlowSpec
		for i, r := range raw {
			size := int64(r%200_000) + 1
			want += size
			flows = append(flows, workload.FlowSpec{
				ID: pkt.FlowID(i + 1), Src: pkt.NodeID(i % 3), Dst: 3, Size: size,
				Start: sim.Time(i) * sim.Time(sim.Millisecond),
			})
		}
		d.Schedule(flows)
		if _, err := d.Run(sim.Time(30 * sim.Second)); err != nil {
			return false
		}
		var got int64
		for _, rec := range d.Collector.Completed() {
			got += rec.Size
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestNoForeverFlows: with an adversarially tiny buffer and many
// concurrent flows, nothing deadlocks — the run terminates with all
// flows complete well before the deadline.
func TestNoForeverFlows(t *testing.T) {
	eng := sim.NewEngine()
	net := topology.Build(eng, topology.SingleRack(8, func(topology.QueueKind) netem.Queue {
		return netem.NewDropTail(4)
	}))
	d := transport.NewDriver(net, dctcp.New(dctcp.DefaultConfig()))
	spec := workload.Spec{
		Pattern:   workload.AllToAll{Hosts: workload.HostRange(0, 8)},
		Sizes:     workload.UniformSize{Min: 1000, Max: 60_000},
		Load:      0.7,
		Reference: 8 * netem.Gbps,
		NumFlows:  120,
	}
	d.Schedule(spec.Generate(sim.NewRand(17), 1))
	s, err := d.Run(sim.Time(120 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 120 {
		t.Fatalf("completed %d/120 under loss", s.Completed)
	}
}
