package l2dct_test

import (
	"testing"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/topology"
	"pase/internal/transport"
	"pase/internal/transport/dctcp"
	"pase/internal/transport/l2dct"
	"pase/internal/workload"
)

func rack(n int) *topology.Network {
	return topology.Build(sim.NewEngine(), topology.SingleRack(n, func(topology.QueueKind) netem.Queue {
		return netem.NewREDECN(225, 65)
	}))
}

// shortVsLong runs a short flow against an already-running long flow
// on a shared downlink and returns the short flow's FCT.
func shortVsLong(t *testing.T, factory func(*transport.Sender) transport.Control) sim.Duration {
	t.Helper()
	net := rack(4)
	d := transport.NewDriver(net, factory)
	d.Schedule([]workload.FlowSpec{
		{ID: 1, Src: 0, Dst: 2, Size: 1 << 30, Start: 0, Background: true},
		{ID: 2, Src: 1, Dst: 2, Size: 50_000, Start: sim.Time(20 * sim.Millisecond)},
	})
	s, err := d.Run(sim.Time(2 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 1 {
		t.Fatalf("short flow did not complete")
	}
	return s.AFCT
}

func TestShortFlowBeatsDCTCPAgainstLongFlow(t *testing.T) {
	l2 := shortVsLong(t, l2dct.New(l2dct.DefaultConfig()))
	dc := shortVsLong(t, dctcp.New(dctcp.DefaultConfig()))
	// L2DCT's size-aware weights must help the short flow; allow a
	// small tolerance for scheduling noise but require improvement.
	if float64(l2) > float64(dc)*1.02 {
		t.Fatalf("L2DCT short FCT %v should beat DCTCP's %v", l2, dc)
	}
}

func TestAllFlowsCompleteUnderLoad(t *testing.T) {
	net := rack(10)
	d := transport.NewDriver(net, l2dct.New(l2dct.DefaultConfig()))
	spec := workload.Spec{
		Pattern:         workload.AllToAll{Hosts: workload.HostRange(0, 10)},
		Sizes:           workload.UniformSize{Min: 2_000, Max: 198_000},
		Load:            0.6,
		Reference:       10 * netem.Gbps,
		NumFlows:        300,
		BackgroundFlows: 2,
	}
	d.Schedule(spec.Generate(sim.NewRand(5), 1))
	s, err := d.Run(sim.Time(30 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 300 {
		t.Fatalf("completed = %d, want 300", s.Completed)
	}
	_ = pkt.MSS
}

func TestWeightedSlowStartFasterForNewFlows(t *testing.T) {
	// A lone short L2DCT flow should finish at least as fast as under
	// DCTCP thanks to the weighted (2.5x) ramp.
	run := func(factory func(*transport.Sender) transport.Control) sim.Duration {
		net := rack(2)
		d := transport.NewDriver(net, factory)
		d.Schedule([]workload.FlowSpec{{ID: 1, Src: 0, Dst: 1, Size: 150_000, Start: 0}})
		s, err := d.Run(sim.Time(sim.Second))
		if err != nil {
			t.Fatal(err)
		}
		return s.AFCT
	}
	l2 := run(l2dct.New(l2dct.DefaultConfig()))
	dc := run(dctcp.New(dctcp.DefaultConfig()))
	if float64(l2) > float64(dc)*1.05 {
		t.Fatalf("lone L2DCT flow %v should not be slower than DCTCP %v", l2, dc)
	}
}
