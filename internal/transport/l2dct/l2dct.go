// Package l2dct implements L2DCT (Munir et al., INFOCOM 2013), the
// paper's size-aware self-adjusting baseline. L2DCT approximates
// least-attained-service scheduling on top of DCTCP's ECN machinery:
// a flow's window growth is scaled by a weight that decays with the
// bytes it has already sent (young/short flows ramp fast, old/long
// flows slowly), and its backoff is scaled the opposite way (long
// flows yield more under congestion).
//
// The published control laws are
//
//	increase: W <- W + wc/W per ACK, wc in [Wmin, Wmax]
//	decrease: W <- W (1 - bc·alpha/2), bc grows with attained service
//
// with the weight a decreasing function of data sent. We realize that
// function as an exponential decay over attained segments, which
// matches the published weights at the endpoints.
package l2dct

import (
	"math"

	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/transport"
)

// Config holds L2DCT parameters.
type Config struct {
	G         float64
	InitCwnd  float64
	MinRTO    sim.Duration
	AlphaInit float64
	// WMin/WMax bound the increase weight (paper: 0.125 and 2.5).
	WMin, WMax float64
	// DecaySegs is the attained-service scale (in segments) over
	// which the weight decays toward WMin.
	DecaySegs float64
}

// DefaultConfig returns the paper's parameterization (Table 3:
// minRTO = 10 ms).
func DefaultConfig() Config {
	return Config{
		G:         1.0 / 16.0,
		InitCwnd:  10,
		MinRTO:    10 * sim.Millisecond,
		WMin:      0.125,
		WMax:      2.5,
		DecaySegs: 100,
	}
}

// New returns a Control factory.
func New(cfg Config) func(*transport.Sender) transport.Control {
	return func(*transport.Sender) transport.Control {
		return &control{cfg: cfg}
	}
}

type control struct {
	cfg Config

	alpha     float64
	acks      int32
	marked    int32
	windowEnd int32
	cutEnd    int32
}

func (c *control) Name() string { return "L2DCT" }

// Init implements transport.Control.
func (c *control) Init(s *transport.Sender) {
	c.alpha = c.cfg.AlphaInit
	s.Cwnd = c.cfg.InitCwnd
	s.SSThresh = 1 << 20
	c.cutEnd = -1
}

// weight returns the size-aware increase weight wc for the flow's
// current attained service.
func (c *control) weight(s *transport.Sender) float64 {
	attained := float64(s.AckedBytes()) / float64(pkt.MSS)
	w := c.cfg.WMax * math.Exp(-attained/c.cfg.DecaySegs)
	if w < c.cfg.WMin {
		w = c.cfg.WMin
	}
	return w
}

// backoffScale returns bc in [0.5, 1]: flows with more attained
// service back off harder.
func (c *control) backoffScale(s *transport.Sender) float64 {
	w := c.weight(s)
	frac := (w - c.cfg.WMin) / (c.cfg.WMax - c.cfg.WMin) // 1 young .. 0 old
	return 1 - 0.5*frac
}

// OnAck implements transport.Control.
func (c *control) OnAck(s *transport.Sender, ack *pkt.Packet, newly int32, _ sim.Duration) {
	c.acks++
	if ack.Echo {
		c.marked++
	}
	if s.CumAck() > c.windowEnd {
		f := 0.0
		if c.acks > 0 {
			f = float64(c.marked) / float64(c.acks)
		}
		c.alpha = (1-c.cfg.G)*c.alpha + c.cfg.G*f
		c.acks, c.marked = 0, 0
		c.windowEnd = s.NextWindowEdge()
	}

	if ack.Echo {
		if s.CumAck() > c.cutEnd {
			s.Cwnd = s.Cwnd * (1 - c.backoffScale(s)*c.alpha/2)
			if s.Cwnd < 1 {
				s.Cwnd = 1
			}
			c.cutEnd = s.NextWindowEdge()
		}
		return
	}
	if newly <= 0 {
		return
	}
	wc := c.weight(s)
	for i := int32(0); i < newly; i++ {
		if s.Cwnd < s.SSThresh {
			s.Cwnd += wc // weighted slow start
		} else {
			s.Cwnd += wc / s.Cwnd
		}
	}
}

// OnLoss implements transport.Control.
func (c *control) OnLoss(s *transport.Sender) {
	s.SSThresh = s.Cwnd / 2
	if s.SSThresh < 2 {
		s.SSThresh = 2
	}
	s.Cwnd = s.SSThresh
}

// OnTimeout implements transport.Control.
func (c *control) OnTimeout(s *transport.Sender) bool {
	s.SSThresh = s.Cwnd / 2
	if s.SSThresh < 2 {
		s.SSThresh = 2
	}
	s.Cwnd = 1
	return false
}

// FillData implements transport.Control.
func (c *control) FillData(s *transport.Sender, p *pkt.Packet) {
	p.ECT = true
	p.Prio = s.Prio
}

// MinRTO implements transport.Control.
func (c *control) MinRTO(*transport.Sender) sim.Duration { return c.cfg.MinRTO }
