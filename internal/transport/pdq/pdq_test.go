package pdq_test

import (
	"testing"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/topology"
	"pase/internal/transport"
	"pase/internal/transport/pdq"
	"pase/internal/workload"
)

func rack(n int) (*topology.Network, *transport.Driver, *pdq.System) {
	net := topology.Build(sim.NewEngine(), topology.SingleRack(n, func(topology.QueueKind) netem.Queue {
		return netem.NewDropTail(225)
	}))
	d := transport.NewDriver(net, nil)
	sys := pdq.Attach(d, pdq.DefaultConfig())
	return net, d, sys
}

func TestAllocatorSJFOrdering(t *testing.T) {
	cfg := pdq.DefaultConfig()
	cfg.EarlyStartRTTs = 0 // isolate the greedy allocation
	a := pdq.NewAllocator(netem.Gbps, &cfg)
	rtt := 100 * sim.Microsecond
	a.Update(1, 1_000_000, 0, netem.Gbps, rtt)
	a.Update(2, 10_000, 0, netem.Gbps, rtt)
	// Flow 2 is shorter: it should now hold the full link and flow 1
	// be paused.
	if got := a.Update(2, 10_000, 0, netem.Gbps, rtt); got != netem.Gbps {
		t.Fatalf("short flow granted %v, want full rate", got)
	}
	if got := a.Update(1, 1_000_000, 0, netem.Gbps, rtt); got != 0 {
		t.Fatalf("long flow granted %v, want paused", got)
	}
}

func TestAllocatorEDFBeatsSJF(t *testing.T) {
	cfg := pdq.DefaultConfig()
	cfg.EarlyStartRTTs = 0
	a := pdq.NewAllocator(netem.Gbps, &cfg)
	rtt := 100 * sim.Microsecond
	// Larger flow but with a deadline must precede a shorter flow
	// without one.
	a.Update(1, 1_000_000, sim.Time(5*sim.Millisecond), netem.Gbps, rtt)
	a.Update(2, 10_000, 0, netem.Gbps, rtt)
	if got := a.Update(1, 1_000_000, sim.Time(5*sim.Millisecond), netem.Gbps, rtt); got != netem.Gbps {
		t.Fatalf("deadline flow granted %v, want full rate", got)
	}
}

func TestAllocatorEarlyStart(t *testing.T) {
	cfg := pdq.DefaultConfig() // EarlyStartRTTs = 2
	a := pdq.NewAllocator(netem.Gbps, &cfg)
	rtt := 100 * sim.Microsecond
	// Top flow has only ~1 packet left: drains in ~12µs < 2 RTTs, so
	// the next flow should be granted too (Early Start).
	a.Update(1, 1500, 0, netem.Gbps, rtt)
	if got := a.Update(2, 1_000_000, 0, netem.Gbps, rtt); got != netem.Gbps {
		t.Fatalf("early-start flow granted %v, want full rate", got)
	}
}

func TestAllocatorRemove(t *testing.T) {
	cfg := pdq.DefaultConfig()
	a := pdq.NewAllocator(netem.Gbps, &cfg)
	rtt := 100 * sim.Microsecond
	a.Update(1, 1_000_000, 0, netem.Gbps, rtt)
	a.Update(2, 2_000_000, 0, netem.Gbps, rtt)
	if a.Flows() != 2 {
		t.Fatalf("flows = %d", a.Flows())
	}
	a.Remove(1)
	if a.Flows() != 1 {
		t.Fatalf("flows after remove = %d", a.Flows())
	}
	if got := a.Update(2, 2_000_000, 0, netem.Gbps, rtt); got != netem.Gbps {
		t.Fatalf("surviving flow granted %v, want full rate", got)
	}
}

func TestSingleFlowStartsAfterOneRTT(t *testing.T) {
	_, d, _ := rack(2)
	d.Schedule([]workload.FlowSpec{{ID: 1, Src: 0, Dst: 1, Size: 150_000, Start: 0}})
	s, err := d.Run(sim.Time(sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 1 {
		t.Fatal("flow did not complete")
	}
	// ~1 RTT arbitration + ~1.2ms transfer; fast convergence, no ramp.
	if s.AFCT > 2500*sim.Microsecond {
		t.Fatalf("PDQ lone flow FCT = %v", s.AFCT)
	}
}

func TestPreemptionShortFirst(t *testing.T) {
	// Long flow running; short flow arrives at the same bottleneck.
	// PDQ pauses the long one; the short one finishes quickly, then
	// the long one resumes (with ~RTT switching overhead).
	_, d, _ := rack(4)
	d.Schedule([]workload.FlowSpec{
		{ID: 1, Src: 0, Dst: 2, Size: 2_000_000, Start: 0},
		{ID: 2, Src: 1, Dst: 2, Size: 50_000, Start: sim.Time(3 * sim.Millisecond)},
	})
	s, err := d.Run(sim.Time(2 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 2 {
		t.Fatalf("completed = %d, want 2", s.Completed)
	}
	var shortFCT, longFCT sim.Duration
	for _, r := range d.Collector.Completed() {
		if r.ID == 2 {
			shortFCT = r.FCT()
		} else {
			longFCT = r.FCT()
		}
	}
	// Short: ~0.4ms tx + ~2 RTT signalling; must be well under 2ms.
	if shortFCT > 2*sim.Millisecond {
		t.Fatalf("short FCT = %v under PDQ preemption", shortFCT)
	}
	// Long: 16ms line-rate + preemption pause (~short's runtime) +
	// switching overhead; anything above 25ms means resume failed.
	if longFCT > 25*sim.Millisecond {
		t.Fatalf("long FCT = %v, resume after preemption broken", longFCT)
	}
}

func TestEarlyTerminationKillsDoomedFlow(t *testing.T) {
	net, d, _ := rackWithCfg(4, func(c *pdq.Config) { c.EarlyTermination = true })
	_ = net
	// 2 MB needs 16ms at line rate; 5ms deadline is impossible.
	d.Schedule([]workload.FlowSpec{
		{ID: 1, Src: 0, Dst: 1, Size: 2_000_000, Start: 0, Deadline: sim.Time(5 * sim.Millisecond)},
		{ID: 2, Src: 2, Dst: 3, Size: 50_000, Start: 0, Deadline: sim.Time(20 * sim.Millisecond)},
	})
	s, err := d.Run(sim.Time(sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 1 {
		t.Fatalf("completed = %d: doomed flow should be killed, feasible one finish", s.Completed)
	}
	if s.AppThroughput != 0.5 {
		t.Fatalf("app throughput = %v, want 0.5", s.AppThroughput)
	}
}

func rackWithCfg(n int, mod func(*pdq.Config)) (*topology.Network, *transport.Driver, *pdq.System) {
	net := topology.Build(sim.NewEngine(), topology.SingleRack(n, func(topology.QueueKind) netem.Queue {
		return netem.NewDropTail(225)
	}))
	d := transport.NewDriver(net, nil)
	cfg := pdq.DefaultConfig()
	mod(&cfg)
	sys := pdq.Attach(d, cfg)
	return net, d, sys
}

func TestSyncMessageAccounting(t *testing.T) {
	_, d, sys := rack(4)
	d.Schedule([]workload.FlowSpec{{ID: 1, Src: 0, Dst: 1, Size: 150_000, Start: 0}})
	if _, err := d.Run(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	if sys.SyncMessages == 0 {
		t.Fatal("PDQ should count header exchanges")
	}
	_ = pkt.MTU
}

func TestManyFlowsComplete(t *testing.T) {
	_, d, _ := rack(10)
	spec := workload.Spec{
		Pattern:   workload.AllToAll{Hosts: workload.HostRange(0, 10)},
		Sizes:     workload.UniformSize{Min: 2_000, Max: 198_000},
		Load:      0.6,
		Reference: 10 * netem.Gbps,
		NumFlows:  300,
	}
	d.Schedule(spec.Generate(sim.NewRand(13), 1))
	s, err := d.Run(sim.Time(60 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 300 {
		t.Fatalf("completed = %d, want 300", s.Completed)
	}
}
