// Package pdq implements PDQ (Hong et al., SIGCOMM 2012), the paper's
// representative of the pure-arbitration strategy: switches explicitly
// allocate rates to flows in criticality order (earliest deadline
// first, then shortest remaining size), pausing everyone else.
//
// Senders are rate-paced, not windowed. Once per RTT each sender
// synchronizes with every switch on its path (modelling PDQ's
// piggybacked header exchange, including its latency): it publishes
// its remaining size, deadline and demand, and receives the minimum
// allocated rate, applying it half an RTT later. A paused flow keeps
// probing on the same cadence. This explicit pause/resume signalling
// is exactly the flow-switching overhead (~1–2 RTT) the PASE paper
// isolates in Figure 2.
//
// The implementation includes PDQ's two published mitigations:
//
//   - Early Start: while the drain time of the flows already granted
//     on a link is under EarlyStartRTTs round trips, the next queued
//     flow is granted capacity too, overlapping its ramp-up with the
//     current flow's tail.
//   - Early Termination: a deadline flow that provably cannot finish
//     in time is killed (deadline scenarios only).
package pdq

import (
	"sort"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/topology"
	"pase/internal/transport"
)

// Config holds PDQ parameters.
type Config struct {
	// SyncEvery is the header-exchange cadence as a multiple of the
	// flow RTT.
	SyncEvery float64
	// EarlyStartRTTs is K in PDQ's Early Start rule.
	EarlyStartRTTs float64
	// EarlyTermination kills deadline flows that can no longer finish
	// on time.
	EarlyTermination bool
	// MinRTO floors the retransmission timeout.
	MinRTO sim.Duration
}

// DefaultConfig returns the standard parameterization with all
// switching-overhead optimizations enabled (as in the paper's Fig. 2).
func DefaultConfig() Config {
	return Config{
		SyncEvery:        1,
		EarlyStartRTTs:   2,
		EarlyTermination: false,
		MinRTO:           10 * sim.Millisecond,
	}
}

// entry is per-flow state at one link allocator.
type entry struct {
	flow      pkt.FlowID
	remaining int64
	deadline  sim.Time
	demand    netem.BitRate
	granted   netem.BitRate
}

// Allocator is the PDQ rate allocator for one directed link.
type Allocator struct {
	capacity netem.BitRate
	flows    map[pkt.FlowID]*entry
	cfg      *Config
	dirty    bool
}

// NewAllocator returns an allocator for a link of the given capacity.
func NewAllocator(capacity netem.BitRate, cfg *Config) *Allocator {
	return &Allocator{capacity: capacity, flows: make(map[pkt.FlowID]*entry), cfg: cfg}
}

// Update publishes a flow's current state and returns its allocated
// rate on this link.
func (a *Allocator) Update(flow pkt.FlowID, remaining int64, deadline sim.Time, demand netem.BitRate, rtt sim.Duration) netem.BitRate {
	e, ok := a.flows[flow]
	if !ok {
		e = &entry{flow: flow}
		a.flows[flow] = e
	}
	e.remaining = remaining
	e.deadline = deadline
	e.demand = demand
	a.allocate(rtt)
	return e.granted
}

// Remove deregisters a finished or killed flow.
func (a *Allocator) Remove(flow pkt.FlowID) {
	delete(a.flows, flow)
	a.dirty = true
}

// Flows returns the number of registered flows (for tests and
// overhead accounting).
func (a *Allocator) Flows() int { return len(a.flows) }

// allocate recomputes every flow's grant: criticality order, greedy
// capacity assignment, then Early Start.
func (a *Allocator) allocate(rtt sim.Duration) {
	order := make([]*entry, 0, len(a.flows))
	for _, e := range a.flows {
		order = append(order, e)
	}
	sort.Slice(order, func(i, j int) bool {
		ei, ej := order[i], order[j]
		// Earliest deadline first; deadline flows precede deadline-free
		// flows; ties and no-deadline flows by shortest remaining.
		switch {
		case ei.deadline != 0 && ej.deadline == 0:
			return true
		case ei.deadline == 0 && ej.deadline != 0:
			return false
		case ei.deadline != ej.deadline:
			return ei.deadline < ej.deadline
		case ei.remaining != ej.remaining:
			return ei.remaining < ej.remaining
		default:
			return ei.flow < ej.flow
		}
	})

	available := a.capacity
	drain := sim.Duration(0) // drain time of everything granted so far
	for _, e := range order {
		switch {
		case available > 0:
			grant := e.demand
			if grant > available {
				grant = available
			}
			e.granted = grant
			available -= grant
			if grant > 0 {
				drain += sim.Duration(float64(e.remaining*8) / float64(grant) * float64(sim.Second))
			}
		case drain < sim.Duration(a.cfg.EarlyStartRTTs*float64(rtt)):
			// Early Start: the link frees up within the signalling
			// horizon; let this flow begin now.
			e.granted = e.demand
			drain += sim.Duration(float64(e.remaining*8) / float64(e.demand) * float64(sim.Second))
		default:
			e.granted = 0 // paused
		}
	}
}

// System wires PDQ onto a driver: one allocator per directed link and
// one paced Control per flow.
type System struct {
	cfg Config
	net *topology.Network

	allocs map[int]*Allocator // by link ID

	// SyncMessages counts header exchanges (sender<->path), the
	// analogue of arbitration overhead.
	SyncMessages int64
}

// Attach installs PDQ on every stack of the driver.
func Attach(d *transport.Driver, cfg Config) *System {
	sys := &System{cfg: cfg, net: d.Net, allocs: make(map[int]*Allocator)}
	for _, l := range d.Net.Links {
		sys.allocs[l.ID] = NewAllocator(l.Capacity(), &sys.cfg)
	}
	for _, st := range d.Stacks {
		st.NewControl = sys.newControl
	}
	prev := d.OnFlowDone
	d.OnFlowDone = func(s *transport.Sender) {
		sys.release(s)
		if prev != nil {
			prev(s)
		}
	}
	return sys
}

// Allocator returns the allocator of a link (for tests).
func (sys *System) Allocator(linkID int) *Allocator { return sys.allocs[linkID] }

func (sys *System) newControl(s *transport.Sender) transport.Control {
	return &control{sys: sys}
}

func (sys *System) release(s *transport.Sender) {
	c, ok := s.CC.(*control)
	if !ok {
		return
	}
	c.stopped = true
	c.syncTimer.Stop()
	for _, l := range c.path {
		sys.allocs[l.ID].Remove(s.Spec.ID)
	}
}

type control struct {
	sys       *System
	path      []*topology.Link
	syncTimer sim.Timer
	stopped   bool
}

func (c *control) Name() string { return "PDQ" }

// Init implements transport.Control.
func (c *control) Init(s *transport.Sender) {
	s.CC = c
	s.Paced = true
	s.Rate = 0 // paused until the first allocation arrives
	c.path = c.sys.net.PathFlow(s.Spec.Src, s.Spec.Dst, s.Spec.ID)
	c.scheduleSync(s, 0)
}

// scheduleSync runs the header exchange after delay: allocators see
// the flow's state half an RTT out (header propagating), and the
// resulting rate takes effect a full RTT after initiation.
func (c *control) scheduleSync(s *transport.Sender, delay sim.Duration) {
	eng := s.Stack().Eng
	c.syncTimer = eng.Schedule(delay, func() {
		if c.stopped || s.Done {
			return
		}
		rtt := s.RTT()
		eng.Schedule(rtt/2, func() {
			if c.stopped || s.Done {
				return
			}
			rate := c.sync(s, rtt)
			eng.Schedule(rtt/2, func() {
				if c.stopped || s.Done {
					return
				}
				s.SetRate(rate)
			})
		})
		c.scheduleSync(s, sim.Duration(c.sys.cfg.SyncEvery*float64(rtt)))
	})
}

// sync publishes state to every allocator on the path and returns the
// path-minimum grant.
func (c *control) sync(s *transport.Sender, rtt sim.Duration) netem.BitRate {
	remaining := s.Remaining()
	demand := c.demand(s, rtt)
	rate := netem.BitRate(1 << 62)
	for _, l := range c.path {
		g := c.sys.allocs[l.ID].Update(s.Spec.ID, remaining, s.Spec.Deadline, demand, rtt)
		if g < rate {
			rate = g
		}
	}
	c.sys.SyncMessages += int64(len(c.path))

	if c.sys.cfg.EarlyTermination && s.Spec.Deadline != 0 {
		left := s.Spec.Deadline.Sub(s.Now())
		need := sim.Duration(float64(remaining*8) / float64(s.Stack().NICRate()) * float64(sim.Second))
		if left <= 0 || need > left {
			// The flow cannot finish on time even at line rate: kill
			// it so its capacity helps others (PDQ Early Termination).
			s.Abort()
			return 0
		}
	}
	return rate
}

// demand computes the rate the sender could actually use.
func (c *control) demand(s *transport.Sender, rtt sim.Duration) netem.BitRate {
	nic := s.Stack().NICRate()
	canUse := netem.BitRate(float64(s.Remaining()*8) / rtt.Seconds())
	onePktPerRTT := netem.BitRate(float64(pkt.MTU*8) / rtt.Seconds())
	if canUse < onePktPerRTT {
		canUse = onePktPerRTT
	}
	if canUse < nic {
		return canUse
	}
	return nic
}

// OnAck implements transport.Control (rate is set by arbitration, not
// by feedback).
func (c *control) OnAck(*transport.Sender, *pkt.Packet, int32, sim.Duration) {}

// OnLoss implements transport.Control.
func (c *control) OnLoss(*transport.Sender) {}

// OnTimeout implements transport.Control.
func (c *control) OnTimeout(*transport.Sender) bool { return false }

// FillData implements transport.Control.
func (c *control) FillData(s *transport.Sender, p *pkt.Packet) {
	p.ECT = false
	p.Rank = s.Remaining()
}

// MinRTO implements transport.Control.
func (c *control) MinRTO(*transport.Sender) sim.Duration { return c.sys.cfg.MinRTO }
