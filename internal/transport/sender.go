package transport

import (
	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/workload"
)

// segState tracks the lifecycle of one segment at the sender.
type segState uint8

const (
	segUnsent   segState = iota
	segInflight          // transmitted, not yet acknowledged or declared lost
	segLost              // declared lost, waiting for retransmission
	segAcked
)

// Default RTO bounds; protocols override the floor via Control.MinRTO.
const (
	maxRTOBackoff = 6
	// AbsMaxRTO caps exponential backoff.
	AbsMaxRTO = 2 * sim.Second
)

// Sender is the per-flow transmit side: window or pacing, loss
// recovery, and RTT estimation. Protocol logic manipulates the
// exported fields and helpers from its Control callbacks.
type Sender struct {
	st   *Stack
	Spec workload.FlowSpec
	ctrl Control

	// Segs is the number of MSS segments in the flow.
	Segs int32

	// Cwnd is the congestion window in segments (window mode).
	// Effective window is max(1, floor(Cwnd)).
	Cwnd float64
	// SSThresh is the slow-start threshold in segments.
	SSThresh float64

	// Paced switches the flow from window mode to rate pacing
	// (PDQ-style). Rate 0 pauses the flow.
	Paced bool
	Rate  netem.BitRate

	// Prio is the priority class stamped on outgoing data (used by
	// PASE and any PRIO-queue protocol).
	Prio int8

	// CC is protocol-private per-flow state.
	CC any

	// CreditEcho is the credit sequence number of the most recent
	// ExpressPass credit; FillData echoes it on the data packet that
	// credit triggers so the receiver can measure credit loss exactly.
	CreditEcho int64

	// Hold suspends all transmission (data and retransmissions) while
	// true. PASE uses it to gate sending on arbitration readiness, to
	// drain in-flight packets before a priority promotion (reorder
	// guard), and while a bottom-queue flow is in probe mode.
	Hold bool

	// NoFastRetx disables dupACK-triggered fast retransmit; pFabric's
	// minimal rate control recovers by (small, fixed) timeouts only.
	NoFastRetx bool
	// FixedRTO, when positive, replaces RTT-based RTO estimation and
	// exponential backoff with a constant timeout (pFabric).
	FixedRTO sim.Duration

	state      []segState
	nextSeq    int32
	cumAck     int32
	ackedCount int32
	ackedBytes int64
	inflight   int32
	retxQ      []int32

	dupAcks    int
	recoverSeq int32

	retransmitted []bool

	srtt, rttvar sim.Duration
	backoff      int
	rtoTimer     sim.Timer
	paceTimer    sim.Timer

	// lastProgress is the last instant a segment was newly acknowledged
	// (flow start before any ACK); Stack.AbortAfter measures from it.
	lastProgress sim.Time

	// Retx counts retransmitted segments; Timeouts counts RTO firings.
	Retx     int
	Timeouts int

	Done bool
	// Aborted marks a flow terminated without completing.
	Aborted    bool
	FinishTime sim.Time
}

func newSender(st *Stack, spec workload.FlowSpec) *Sender {
	segs := pkt.DataPackets(spec.Size)
	if n := len(st.pool); n > 0 {
		s := st.pool[n-1]
		st.pool[n-1] = nil
		st.pool = st.pool[:n-1]
		// Reset every field, keeping the segment slices' backing arrays.
		*s = Sender{
			st:            st,
			Spec:          spec,
			Segs:          segs,
			state:         resetStates(s.state, int(segs)),
			retransmitted: resetBools(s.retransmitted, int(segs)),
			retxQ:         s.retxQ[:0],
			Cwnd:          1,
			SSThresh:      1 << 20,
			lastProgress:  st.Eng.Now(),
		}
		return s
	}
	return &Sender{
		st:            st,
		Spec:          spec,
		Segs:          segs,
		state:         make([]segState, segs),
		retransmitted: make([]bool, segs),
		Cwnd:          1,
		SSThresh:      1 << 20,
		lastProgress:  st.Eng.Now(),
	}
}

// resetStates returns a zeroed segState slice of length n, reusing
// prev's backing array when it is large enough.
func resetStates(prev []segState, n int) []segState {
	if cap(prev) < n {
		return make([]segState, n)
	}
	prev = prev[:n]
	for i := range prev {
		prev[i] = segUnsent
	}
	return prev
}

// resetBools returns a zeroed bool slice of length n, reusing prev's
// backing array when it is large enough.
func resetBools(prev []bool, n int) []bool {
	if cap(prev) < n {
		return make([]bool, n)
	}
	prev = prev[:n]
	for i := range prev {
		prev[i] = false
	}
	return prev
}

// Stack returns the owning stack.
func (s *Sender) Stack() *Stack { return s.st }

// Now returns the current simulation time.
func (s *Sender) Now() sim.Time { return s.st.Eng.Now() }

// BaseRTT returns the propagation RTT to the flow's destination.
func (s *Sender) BaseRTT() sim.Duration { return s.st.BaseRTT(s.Spec.Dst) }

// RTT returns the smoothed RTT estimate, falling back to BaseRTT
// before the first sample.
func (s *Sender) RTT() sim.Duration {
	if s.srtt > 0 {
		return s.srtt
	}
	return s.BaseRTT()
}

// SRTT returns the raw smoothed RTT (0 if unsampled).
func (s *Sender) SRTT() sim.Duration { return s.srtt }

// AckedBytes returns how many payload bytes have been acknowledged.
func (s *Sender) AckedBytes() int64 { return s.ackedBytes }

// Remaining returns the unacknowledged payload bytes — the remaining
// flow size used as scheduling criterion by pFabric, PDQ and PASE.
func (s *Sender) Remaining() int64 { return s.Spec.Size - s.ackedBytes }

// Inflight returns the number of in-flight segments.
func (s *Sender) Inflight() int32 { return s.inflight }

// CumAck returns the lowest unacknowledged sequence number.
func (s *Sender) CumAck() int32 { return s.cumAck }

// NextWindowEdge returns the highest sequence number reached by the
// sender so far; once-per-window logic (DCTCP's alpha refresh and
// window cut) uses it as the edge marker.
func (s *Sender) NextWindowEdge() int32 { return s.nextSeq }

// FirstMissing returns the lowest unacked segment (== CumAck), the
// retransmission candidate.
func (s *Sender) FirstMissing() int32 { return s.cumAck }

// WindowSegs returns the effective window in whole segments.
func (s *Sender) WindowSegs() int32 {
	w := int32(s.Cwnd)
	if w < 1 {
		w = 1
	}
	return w
}

// nextToSend picks the next segment: retransmissions first, then new
// data. It reports false when nothing is eligible.
func (s *Sender) nextToSend() (int32, bool) {
	for len(s.retxQ) > 0 {
		seq := s.retxQ[0]
		s.retxQ = s.retxQ[1:]
		if s.state[seq] == segLost {
			return seq, true
		}
	}
	if s.nextSeq < s.Segs {
		seq := s.nextSeq
		s.nextSeq++
		return seq, true
	}
	return -1, false
}

// transmit sends one segment.
func (s *Sender) transmit(seq int32) {
	resend := s.state[seq] == segLost
	s.state[seq] = segInflight
	s.inflight++
	p := &pkt.Packet{
		ID:     s.st.nextPktID(),
		Flow:   s.Spec.ID,
		Src:    s.Spec.Src,
		Dst:    s.Spec.Dst,
		Type:   pkt.Data,
		Seq:    seq,
		Size:   pkt.SegmentWireSize(s.Spec.Size, seq),
		SentAt: s.Now(),
	}
	s.ctrl.FillData(s, p)
	if resend {
		s.Retx++
		s.retransmitted[seq] = true
		s.st.obs.retx.Inc()
		if s.st.OnRetx != nil {
			s.st.OnRetx(s, seq)
		}
	}
	s.st.Host.Send(p)
}

// trySend transmits as much as the window (or pacing rate) allows and
// keeps the retransmission timer armed.
func (s *Sender) trySend() {
	if s.Done || s.Hold {
		return
	}
	if s.Paced {
		s.pump()
		return
	}
	for s.inflight < s.WindowSegs() {
		seq, ok := s.nextToSend()
		if !ok {
			break
		}
		s.transmit(seq)
	}
	s.armRTO()
}

// pump is the pacing loop: one packet per Rate-determined interval.
func (s *Sender) pump() {
	if s.Done || s.Hold || s.Rate <= 0 || s.paceTimer.Pending() {
		return
	}
	seq, ok := s.nextToSend()
	if !ok {
		return
	}
	s.transmit(seq)
	gap := s.Rate.Serialize(pkt.SegmentWireSize(s.Spec.Size, seq))
	s.paceTimer = s.st.Eng.Schedule(gap, func() { s.pump() })
	s.armRTO()
}

// SetRate changes the pacing rate; a positive rate resumes a paused
// paced flow immediately.
func (s *Sender) SetRate(r netem.BitRate) {
	s.Rate = r
	s.st.obs.rateUpdates.Inc()
	if r > 0 {
		s.pump()
	}
}

// MarkLost declares an in-flight segment lost and queues it for
// retransmission.
func (s *Sender) MarkLost(seq int32) {
	if seq < 0 || seq >= s.Segs || s.state[seq] != segInflight {
		return
	}
	s.state[seq] = segLost
	s.inflight--
	s.retxQ = append(s.retxQ, seq)
}

// MarkAllInflightLost performs go-back-N recovery bookkeeping: every
// in-flight segment is queued for retransmission.
func (s *Sender) MarkAllInflightLost() {
	for seq := s.cumAck; seq < s.nextSeq; seq++ {
		if s.state[seq] == segInflight {
			s.state[seq] = segLost
			s.retxQ = append(s.retxQ, seq)
		}
	}
	s.inflight = 0
}

// TransmitOne sends exactly one eligible segment (retransmissions
// first), bypassing the window and pacing gates — the credit-driven
// transmission primitive: ExpressPass transmits one data packet per
// arriving credit. It reports whether a segment went out; false means
// the credit was wasted (flow done, held, or nothing eligible).
func (s *Sender) TransmitOne() bool {
	if s.Done || s.Hold {
		return false
	}
	seq, ok := s.nextToSend()
	if !ok {
		return false
	}
	s.transmit(seq)
	s.armRTO()
	return true
}

// SendCreditRequest opens a credit-based flow: a minimum-size request
// asking the receiver to start pacing credits toward this sender. Seq
// carries the flow's segment count so the receiver-side credit engine
// knows how much data the flow still owes.
func (s *Sender) SendCreditRequest() {
	p := &pkt.Packet{
		ID:     s.st.nextPktID(),
		Flow:   s.Spec.ID,
		Src:    s.Spec.Src,
		Dst:    s.Spec.Dst,
		Type:   pkt.CreditReq,
		Seq:    s.Segs,
		Size:   pkt.CreditSize,
		SentAt: s.Now(),
	}
	s.ctrl.FillData(s, p)
	s.st.Host.Send(p)
}

// ArmRTO arms the retransmission timer if it is not already pending.
// Controls that gate all transmission on external events (credits,
// arbitration) call it at flow start so a lost opener still recovers
// by timeout.
func (s *Sender) ArmRTO() { s.armRTO() }

// SendProbe emits a PASE loss-discrimination probe for segment seq.
func (s *Sender) SendProbe(seq int32) {
	p := &pkt.Packet{
		ID:     s.st.nextPktID(),
		Flow:   s.Spec.ID,
		Src:    s.Spec.Src,
		Dst:    s.Spec.Dst,
		Type:   pkt.Probe,
		Seq:    seq,
		Size:   pkt.HeaderSize,
		SentAt: s.Now(),
	}
	s.ctrl.FillData(s, p)
	s.st.obs.probes.Inc()
	s.st.Host.Send(p)
}

// onAck processes an arriving Ack or ProbeAck.
func (s *Sender) onAck(p *pkt.Packet) {
	if s.Done {
		return
	}
	if p.Type == pkt.ProbeAck {
		if h, ok := s.ctrl.(ProbeAckHandler); ok {
			h.OnProbeAck(s, p)
		}
		return
	}

	var newly int32
	var rttSample sim.Duration

	if p.SackSeq >= 0 && p.SackSeq < s.Segs {
		seq := p.SackSeq
		if s.state[seq] != segAcked {
			if s.state[seq] == segInflight {
				s.inflight--
			}
			s.state[seq] = segAcked
			s.ackedCount++
			s.ackedBytes += int64(pkt.SegmentWireSize(s.Spec.Size, seq) - pkt.HeaderSize)
			newly++
		}
		if !s.retransmitted[seq] && p.SentAt > 0 {
			rttSample = s.Now().Sub(p.SentAt)
			s.updateRTT(rttSample)
		}
	}
	// The cumulative field can cover segments whose individual ACKs
	// were lost.
	if p.CumAck > s.cumAck {
		for seq := s.cumAck; seq < p.CumAck && seq < s.Segs; seq++ {
			if s.state[seq] != segAcked {
				if s.state[seq] == segInflight {
					s.inflight--
				}
				s.state[seq] = segAcked
				s.ackedCount++
				s.ackedBytes += int64(pkt.SegmentWireSize(s.Spec.Size, seq) - pkt.HeaderSize)
				newly++
			}
		}
	}
	advanced := false
	for s.cumAck < s.Segs && s.state[s.cumAck] == segAcked {
		s.cumAck++
		advanced = true
	}

	if s.ackedCount >= s.Segs {
		s.finish()
		return
	}

	if newly > 0 {
		// Any fresh delivery — cumulative or selective — proves the
		// path is passing packets again: stop compounding the timeout.
		// A long outage otherwise leaves the backoff pinned high and
		// the first post-recovery loss waits out a multiplied RTO.
		s.backoff = 0
		s.lastProgress = s.Now()
	}
	if newly > 0 && advanced {
		s.dupAcks = 0
		s.resetRTO()
	} else if !advanced {
		s.dupAcks++
		if !s.NoFastRetx && s.dupAcks >= 3 && s.cumAck >= s.recoverSeq {
			// Fast retransmit of the first missing segment.
			if s.state[s.cumAck] == segInflight {
				s.MarkLost(s.cumAck)
				s.recoverSeq = s.nextSeq
				s.dupAcks = 0
				s.ctrl.OnLoss(s)
			}
		}
	}

	s.ctrl.OnAck(s, p, newly, rttSample)
	s.trySend()
}

func (s *Sender) updateRTT(sample sim.Duration) {
	if sample <= 0 {
		return
	}
	if s.srtt == 0 {
		s.srtt = sample
		s.rttvar = sample / 2
		return
	}
	diff := s.srtt - sample
	if diff < 0 {
		diff = -diff
	}
	s.rttvar = (3*s.rttvar + diff) / 4
	s.srtt = (7*s.srtt + sample) / 8
}

// RTO returns the current retransmission timeout with backoff applied.
func (s *Sender) RTO() sim.Duration {
	if s.FixedRTO > 0 {
		return s.FixedRTO
	}
	rto := s.srtt + 4*s.rttvar
	if min := s.ctrl.MinRTO(s); rto < min {
		rto = min
	}
	for i := 0; i < s.backoff; i++ {
		rto *= 2
		if rto >= AbsMaxRTO {
			return AbsMaxRTO
		}
	}
	return rto
}

func (s *Sender) armRTO() {
	if s.Done {
		return
	}
	if s.rtoTimer.Pending() {
		return
	}
	s.rtoTimer = s.st.Eng.Schedule(s.RTO(), func() { s.onTimeout() })
}

func (s *Sender) resetRTO() {
	s.rtoTimer.Stop()
	s.armRTO()
}

func (s *Sender) onTimeout() {
	if s.Done {
		return
	}
	s.Timeouts++
	s.st.obs.timeouts.Inc()
	if s.st.OnTimeout != nil {
		s.st.OnTimeout(s)
	}
	if s.backoff < maxRTOBackoff {
		s.backoff++
	}
	if s.st.AbortAfter > 0 && s.Now().Sub(s.lastProgress) >= s.st.AbortAfter {
		// Progress deadline passed: kill the flow instead of retrying
		// forever against (say) a blackholed path.
		s.Abort()
		return
	}
	if s.ctrl.OnTimeout(s) {
		s.armRTO()
		return
	}
	s.MarkAllInflightLost()
	s.trySend()
	s.armRTO()
}

// ForceTimeoutRecovery runs the framework's default timeout recovery;
// protocols that partially handle OnTimeout can call it.
func (s *Sender) ForceTimeoutRecovery() {
	s.MarkAllInflightLost()
	s.trySend()
}

// Kick resumes transmission after an external event (arbitration
// response, hold release) changed what the flow may send.
func (s *Sender) Kick() { s.trySend() }

// AbsorbProbeAck folds a ProbeAck's reception state into the sender:
// when the receiver holds the probed segment the ACK was merely lost
// or delayed, so the segment is acknowledged; otherwise the data
// packet itself was lost and is queued for retransmission.
func (s *Sender) AbsorbProbeAck(p *pkt.Packet) {
	if s.Done {
		return
	}
	prevAcked := s.ackedCount
	seq := p.SackSeq
	if p.Have && seq >= 0 && seq < s.Segs {
		if s.state[seq] != segAcked {
			if s.state[seq] == segInflight {
				s.inflight--
			}
			s.state[seq] = segAcked
			s.ackedCount++
			s.ackedBytes += int64(pkt.SegmentWireSize(s.Spec.Size, seq) - pkt.HeaderSize)
		}
	} else if seq >= 0 && seq < s.Segs && s.state[seq] == segInflight {
		s.MarkLost(seq)
	}
	if p.CumAck > s.cumAck {
		for q := s.cumAck; q < p.CumAck && q < s.Segs; q++ {
			if s.state[q] != segAcked {
				if s.state[q] == segInflight {
					s.inflight--
				}
				s.state[q] = segAcked
				s.ackedCount++
				s.ackedBytes += int64(pkt.SegmentWireSize(s.Spec.Size, q) - pkt.HeaderSize)
			}
		}
	}
	for s.cumAck < s.Segs && s.state[s.cumAck] == segAcked {
		s.cumAck++
	}
	if s.ackedCount > prevAcked {
		s.lastProgress = s.Now()
	}
	if s.ackedCount >= s.Segs {
		s.finish()
		return
	}
	s.trySend()
}

// Abort terminates the flow without completing it (used by PDQ's
// Early Termination). The flow is recorded as incomplete.
func (s *Sender) Abort() {
	if s.Done {
		return
	}
	s.Done = true
	s.Aborted = true
	s.FinishTime = s.Now()
	s.rtoTimer.Stop()
	s.paceTimer.Stop()
	s.st.flowAborted(s)
}

func (s *Sender) finish() {
	s.Done = true
	s.FinishTime = s.Now()
	s.rtoTimer.Stop()
	s.paceTimer.Stop()
	s.st.flowDone(s)
}

// ProbeAckHandler is implemented by Controls that use SendProbe (PASE).
type ProbeAckHandler interface {
	OnProbeAck(s *Sender, p *pkt.Packet)
}
