package transport

import (
	"testing"

	"pase/internal/pkt"
)

// TestRTOBackoffCapAndReset drives the sender through timeout and
// delivery sequences and checks the backoff counter: growth is capped
// at maxRTOBackoff, and any successful delivery — cumulative or
// selective — resets it, while duplicate ACKs leave it alone.
func TestRTOBackoffCapAndReset(t *testing.T) {
	type step struct {
		timeouts    int         // fire this many consecutive timeouts
		ack         *pkt.Packet // then deliver this ACK (nil = none)
		wantBackoff int
	}
	tests := []struct {
		name  string
		steps []step
	}{
		{"growth capped", []step{
			{timeouts: 3, wantBackoff: 3},
			{timeouts: 20, wantBackoff: maxRTOBackoff},
		}},
		{"reset on cumulative advance", []step{
			{timeouts: 3, wantBackoff: 3},
			{ack: &pkt.Packet{Type: pkt.Ack, SackSeq: 0, CumAck: 1}, wantBackoff: 0},
		}},
		{"reset on selective delivery", []step{
			{timeouts: 4, wantBackoff: 4},
			// Segment 2 lands but the head (0) is still missing: the
			// path is alive, so the backoff must still clear.
			{ack: &pkt.Packet{Type: pkt.Ack, SackSeq: 2, CumAck: 0}, wantBackoff: 0},
		}},
		{"duplicate ACK does not reset", []step{
			{timeouts: 2, wantBackoff: 2},
			{ack: &pkt.Packet{Type: pkt.Ack, SackSeq: -1, CumAck: 0}, wantBackoff: 2},
		}},
		{"re-grows after reset", []step{
			{timeouts: 5, wantBackoff: 5},
			{ack: &pkt.Packet{Type: pkt.Ack, SackSeq: 1, CumAck: 0}, wantBackoff: 0},
			{timeouts: 2, wantBackoff: 2},
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, d, _ := testRig(t)
			s := start(t, d, 10*pkt.MSS)
			for i, st := range tc.steps {
				for j := 0; j < st.timeouts; j++ {
					s.onTimeout()
				}
				if st.ack != nil {
					s.onAck(st.ack)
				}
				if s.backoff != st.wantBackoff {
					t.Fatalf("step %d: backoff = %d, want %d", i, s.backoff, st.wantBackoff)
				}
			}
		})
	}
}
