// Package transport implements the end-host transport framework every
// protocol under study plugs into: per-host stacks that demultiplex
// packets to per-flow senders and receivers, reliable delivery
// (sequencing, per-packet ACKs with selective feedback, fast
// retransmit, retransmission timeouts with exponential backoff), RTT
// estimation, and both window-based and rate-paced transmission.
//
// Protocol behaviour — congestion control, priority/rank stamping,
// timeout policy — is supplied through the Control interface;
// subpackages implement DCTCP, D2TCP, L2DCT, pFabric and PDQ, and
// internal/core/endhost implements the PASE transport.
package transport

import (
	"fmt"

	"pase/internal/metrics"
	"pase/internal/netem"
	"pase/internal/obs"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/workload"
)

// Control is the per-flow protocol hook. The framework calls it at
// well-defined points; it manipulates the Sender's window, rate,
// priority and timers through the Sender's exported surface.
type Control interface {
	// Name identifies the protocol in logs and results.
	Name() string
	// Init is called once when the flow starts, before any
	// transmission. It must set the initial window (or pacing rate).
	Init(s *Sender)
	// OnAck is called for every arriving ACK after the framework has
	// updated cumulative/selective state. newly is the number of
	// segments this ACK newly acknowledged (0 for a duplicate);
	// rttSample is a valid RTT measurement or 0.
	OnAck(s *Sender, ack *pkt.Packet, newly int32, rttSample sim.Duration)
	// OnLoss is called when fast retransmit declares a segment lost
	// (the typical reaction is a multiplicative decrease).
	OnLoss(s *Sender)
	// OnTimeout is called when the retransmission timer fires, before
	// the framework's default recovery (mark every outstanding
	// segment lost and retransmit). Returning true suppresses the
	// default — the protocol has handled recovery itself (e.g.
	// PASE's probing).
	OnTimeout(s *Sender) bool
	// FillData stamps protocol header fields (Prio, Rank, ECT) on an
	// outgoing data packet.
	FillData(s *Sender, p *pkt.Packet)
	// MinRTO returns the protocol's retransmission-timeout floor for
	// this flow in its current state.
	MinRTO(s *Sender) sim.Duration
}

// Stack is the per-host transport instance: it owns every sender and
// receiver terminating at its host.
type Stack struct {
	Eng  *sim.Engine
	Host *netem.Host
	// NewControl builds the protocol instance for an outgoing flow.
	NewControl func(s *Sender) Control
	// Collector, when set, receives a FlowRecord per finished flow.
	// Stored runs use *metrics.Collector; streaming runs install a
	// bounded-memory StreamCollector.
	Collector metrics.Sink
	// Recycle, set by streaming runs, returns completed senders to a
	// per-stack free list so steady-state flow turnover stops
	// allocating. Safe because finish/Abort stop both sender timers and
	// every protocol control is per-flow and deactivated on completion.
	Recycle bool
	// BaseRTT estimates the propagation RTT to a destination; used to
	// seed RTO and window computations before any sample exists.
	BaseRTT func(dst pkt.NodeID) sim.Duration
	// AbortAfter, when positive, kills any flow that has gone this long
	// without forward progress (no segment newly acknowledged): the next
	// RTO firing past the deadline aborts it instead of retrying
	// forever. Aborted flows carry the Aborted mark in their record and
	// are excluded from AFCT but reported in the Summary.
	AbortAfter sim.Duration
	// OnFlowDone, when set, is invoked after a flow completes.
	OnFlowDone func(s *Sender)
	// CtrlHandler, when set, receives arbitration control-plane
	// packets addressed to this host (PASE wires its arbitration
	// client here).
	CtrlHandler func(p *pkt.Packet)
	// CreditHandler, when set, receives credit-plane packets
	// (ExpressPass credits arriving at a sender, credit requests
	// arriving at a receiver).
	CreditHandler func(p *pkt.Packet)
	// OnData, when set, observes every arriving data packet before the
	// receiver processes it (ExpressPass's credit engine counts
	// deliveries for its credit-waste feedback).
	OnData func(p *pkt.Packet)
	// OnRetx / OnTimeout, when set, observe every retransmitted data
	// segment and every RTO firing — the flight recorder's flagging
	// hooks. Nil (the default) costs one pointer test on paths that
	// only run when a flow already misbehaved.
	OnRetx    func(s *Sender, seq int32)
	OnTimeout func(s *Sender)

	senders   map[pkt.FlowID]*Sender
	receivers map[pkt.FlowID]*receiver
	pool      []*Sender // free list of completed senders (Recycle mode)
	pktID     uint64
	obs       stackObs
}

// senderPoolCap bounds the per-stack free list so a burst of
// concurrent flows cannot pin memory for the rest of the run.
const senderPoolCap = 256

// stackObs holds the transport-layer observability instruments. The
// zero value (all nil) is the disabled state; every increment through
// a nil instrument is a no-op, so senders record unconditionally.
type stackObs struct {
	retx        *obs.Counter
	timeouts    *obs.Counter
	probes      *obs.Counter
	rateUpdates *obs.Counter
	aborts      *obs.Counter
}

// NewStack wires a Stack onto a host and installs its packet handler.
func NewStack(eng *sim.Engine, host *netem.Host) *Stack {
	st := &Stack{
		Eng:       eng,
		Host:      host,
		senders:   make(map[pkt.FlowID]*Sender),
		receivers: make(map[pkt.FlowID]*receiver),
	}
	host.Handler = st.receive
	return st
}

// NICRate returns the host's access-link rate.
func (st *Stack) NICRate() netem.BitRate { return st.Host.Port().Rate() }

// Sender returns the sender for a flow, or nil.
func (st *Stack) Sender(id pkt.FlowID) *Sender { return st.senders[id] }

// ActiveSenders returns the number of unfinished senders on this host.
func (st *Stack) ActiveSenders() int { return len(st.senders) }

func (st *Stack) nextPktID() uint64 {
	st.pktID++
	return st.pktID
}

// NextPktID hands out the next per-host packet id; protocol subsystems
// that originate their own packets (ExpressPass credits) draw from the
// same sequence as the stack's senders.
func (st *Stack) NextPktID() uint64 { return st.nextPktID() }

// StartFlow begins transmitting the given flow from this stack's host.
func (st *Stack) StartFlow(spec workload.FlowSpec) *Sender {
	if spec.Src != st.Host.ID() {
		panic(fmt.Sprintf("transport: flow %d src %d started on host %d", spec.ID, spec.Src, st.Host.ID()))
	}
	if _, dup := st.senders[spec.ID]; dup {
		panic(fmt.Sprintf("transport: duplicate flow id %d", spec.ID))
	}
	s := newSender(st, spec)
	st.senders[spec.ID] = s
	s.ctrl = st.NewControl(s)
	s.ctrl.Init(s)
	s.trySend()
	return s
}

// receive demultiplexes an arriving packet.
func (st *Stack) receive(p *pkt.Packet) {
	switch p.Type {
	case pkt.Data, pkt.Probe:
		if p.Type == pkt.Data && st.OnData != nil {
			st.OnData(p)
		}
		st.receiverFor(p).onPacket(p)
	case pkt.Ack, pkt.ProbeAck:
		if s, ok := st.senders[p.Flow]; ok {
			s.onAck(p)
		}
	case pkt.Ctrl:
		if st.CtrlHandler != nil {
			st.CtrlHandler(p)
		}
	case pkt.Credit, pkt.CreditReq:
		if st.CreditHandler != nil {
			st.CreditHandler(p)
		}
	}
}

func (st *Stack) receiverFor(p *pkt.Packet) *receiver {
	r, ok := st.receivers[p.Flow]
	if !ok {
		r = newReceiver(st, p)
		st.receivers[p.Flow] = r
	}
	return r
}

// DropReceiver releases a flow's receiver state. Streaming runs call
// it on flow completion so receiver memory stays bounded by the number
// of in-flight flows; stored runs keep receivers for the run's
// lifetime (the historical behavior).
func (st *Stack) DropReceiver(id pkt.FlowID) { delete(st.receivers, id) }

// recycle returns a finalized sender to the free list. Callers must
// have stopped its timers (finish/Abort do) and run every completion
// hook first.
func (st *Stack) recycle(s *Sender) {
	if st.Recycle && len(st.pool) < senderPoolCap {
		st.pool = append(st.pool, s)
	}
}

// flowDone finalizes a completed sender.
func (st *Stack) flowDone(s *Sender) {
	delete(st.senders, s.Spec.ID)
	if st.Collector != nil && !s.Spec.Background {
		st.Collector.Add(metrics.FlowRecord{
			ID:       uint64(s.Spec.ID),
			Task:     s.Spec.Task,
			Size:     s.Spec.Size,
			Start:    s.Spec.Start,
			Finish:   s.FinishTime,
			Deadline: s.Spec.Deadline,
			Done:     true,
			Retx:     s.Retx,
			Timeouts: s.Timeouts,
		})
	}
	if st.OnFlowDone != nil {
		st.OnFlowDone(s)
	}
	st.recycle(s)
}

// flowAborted finalizes a killed flow: it is recorded as incomplete
// with the Aborted mark, so the Summary reports it separately from
// flows the run merely cut off.
func (st *Stack) flowAborted(s *Sender) {
	delete(st.senders, s.Spec.ID)
	st.obs.aborts.Inc()
	if st.Collector != nil && !s.Spec.Background {
		st.Collector.Add(metrics.FlowRecord{
			ID:       uint64(s.Spec.ID),
			Task:     s.Spec.Task,
			Size:     s.Spec.Size,
			Start:    s.Spec.Start,
			Deadline: s.Spec.Deadline,
			Done:     false,
			Aborted:  true,
			Retx:     s.Retx,
			Timeouts: s.Timeouts,
		})
	}
	if st.OnFlowDone != nil {
		st.OnFlowDone(s)
	}
	st.recycle(s)
}
