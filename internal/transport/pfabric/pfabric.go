// Package pfabric implements pFabric (Alizadeh et al., SIGCOMM 2013):
// near-optimal datacenter transport built from priority-aware switches
// plus deliberately minimal end-host rate control.
//
// Every data packet carries the flow's remaining size as its Rank;
// pFabric switches (netem.PFabric) schedule the most urgent packet
// first and drop the least urgent on overflow. The end host starts at
// line rate, never reacts to duplicate ACKs or ECN, recovers purely by
// a small fixed RTO, and drops to a one-packet probe window after
// repeated consecutive timeouts.
//
// This minimalism is exactly what the PASE paper probes in Figures 4
// and 10: under all-to-all patterns and high load, line-rate blasting
// wastes upstream capacity on packets that die at downstream hops.
package pfabric

import (
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/transport"
)

// Config holds pFabric parameters (Table 3 of the PASE paper).
type Config struct {
	// InitCwnd is the initial (and cap) window in segments; 0 derives
	// 1.5× the bandwidth-delay product at flow start, mirroring the
	// paper's "start at line rate".
	InitCwnd float64
	// RTO is the fixed retransmission timeout (~3×RTT; Table 3: 1 ms).
	RTO sim.Duration
	// ProbeAfter is the number of consecutive timeouts after which the
	// flow enters probe mode (window 1).
	ProbeAfter int
}

// DefaultConfig returns Table 3's parameterization.
func DefaultConfig() Config {
	return Config{
		InitCwnd:   38,
		RTO:        sim.Millisecond,
		ProbeAfter: 5,
	}
}

// New returns a Control factory.
func New(cfg Config) func(*transport.Sender) transport.Control {
	return func(*transport.Sender) transport.Control {
		return &control{cfg: cfg}
	}
}

type control struct {
	cfg         Config
	cap         float64
	consecutive int // consecutive timeouts since the last ACK
}

func (c *control) Name() string { return "pFabric" }

// Init implements transport.Control.
func (c *control) Init(s *transport.Sender) {
	c.cap = c.cfg.InitCwnd
	if c.cap <= 0 {
		bdp := float64(s.Stack().NICRate().BytesPer(s.BaseRTT())) / float64(pkt.MTU)
		c.cap = 1.5 * bdp
		if c.cap < 2 {
			c.cap = 2
		}
	}
	s.Cwnd = c.cap
	s.SSThresh = c.cap
	s.NoFastRetx = true
	s.FixedRTO = c.cfg.RTO
}

// OnAck implements transport.Control: slow-start back toward the
// line-rate cap after losses; no reaction to marks or dupACKs. The
// aggressive regrowth is deliberate — pFabric relies on the fabric,
// not the endpoints, for contention resolution.
func (c *control) OnAck(s *transport.Sender, _ *pkt.Packet, newly int32, _ sim.Duration) {
	if newly > 0 {
		c.consecutive = 0
		if s.Cwnd < c.cap {
			s.Cwnd += float64(newly) // exponential per RTT
			if s.Cwnd > c.cap {
				s.Cwnd = c.cap
			}
		}
	}
}

// OnLoss implements transport.Control (unreachable: fast retransmit is
// disabled).
func (c *control) OnLoss(*transport.Sender) {}

// OnTimeout implements transport.Control: re-enter slow start; after
// ProbeAfter consecutive timeouts, fall to a one-packet probe window.
func (c *control) OnTimeout(s *transport.Sender) bool {
	c.consecutive++
	if c.consecutive >= c.cfg.ProbeAfter {
		s.Cwnd = 1 // probe mode
		return false
	}
	s.Cwnd = c.cap / 2
	if s.Cwnd < 1 {
		s.Cwnd = 1
	}
	return false
}

// FillData implements transport.Control: the remaining flow size is
// the packet's scheduling rank (lower = more urgent), giving
// shortest-remaining-first service fabric-wide.
func (c *control) FillData(s *transport.Sender, p *pkt.Packet) {
	p.ECT = false
	p.Rank = s.Remaining()
}

// MinRTO implements transport.Control (unused: FixedRTO is set).
func (c *control) MinRTO(*transport.Sender) sim.Duration { return c.cfg.RTO }
