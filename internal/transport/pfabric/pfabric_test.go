package pfabric_test

import (
	"testing"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
	"pase/internal/topology"
	"pase/internal/transport"
	"pase/internal/transport/pfabric"
	"pase/internal/workload"
)

// pfRack builds a single-rack fabric with pFabric switch queues
// (Table 3: qSize = 76 pkts ≈ 2×BDP).
func pfRack(n int) *topology.Network {
	return topology.Build(sim.NewEngine(), topology.SingleRack(n, func(topology.QueueKind) netem.Queue {
		return netem.NewPFabric(76)
	}))
}

func TestLoneFlowFast(t *testing.T) {
	net := pfRack(2)
	d := transport.NewDriver(net, pfabric.New(pfabric.DefaultConfig()))
	d.Schedule([]workload.FlowSpec{{ID: 1, Src: 0, Dst: 1, Size: 150_000, Start: 0}})
	s, err := d.Run(sim.Time(sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	// Line-rate start: 150 KB over 1 Gbps ≈ 1.2 ms + RTT; no ramp-up.
	if s.AFCT > 2*sim.Millisecond {
		t.Fatalf("pFabric lone flow FCT = %v, want < 2ms", s.AFCT)
	}
}

func TestShortPreemptsLong(t *testing.T) {
	// A short flow arriving mid-way through a long transfer to the
	// same receiver must finish almost as if the long flow were absent
	// (remaining-size priority ⇒ strict preemption in the fabric).
	net := pfRack(4)
	d := transport.NewDriver(net, pfabric.New(pfabric.DefaultConfig()))
	d.Schedule([]workload.FlowSpec{
		{ID: 1, Src: 0, Dst: 2, Size: 1 << 30, Start: 0, Background: true},
		{ID: 2, Src: 1, Dst: 2, Size: 50_000, Start: sim.Time(10 * sim.Millisecond)},
	})
	s, err := d.Run(sim.Time(2 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 1 {
		t.Fatal("short flow did not complete")
	}
	// Unloaded bound: ~0.4ms serialization + 0.1ms RTT. Allow 3x for
	// residual interference and recovery.
	if s.AFCT > 1500*sim.Microsecond {
		t.Fatalf("preempted-path short FCT = %v, want near-unloaded", s.AFCT)
	}
}

func TestHighLoadAllToAllCausesLosses(t *testing.T) {
	// Figure 4's mechanism: all-to-all at high load makes pFabric's
	// line-rate senders collide at downstream edge links and shed a
	// substantial fraction of packets.
	net := pfRack(10)
	d := transport.NewDriver(net, pfabric.New(pfabric.DefaultConfig()))
	spec := workload.Spec{
		Pattern:   workload.AllToAll{Hosts: workload.HostRange(0, 10)},
		Sizes:     workload.UniformSize{Min: 2_000, Max: 198_000},
		Load:      0.8,
		Reference: 10 * netem.Gbps,
		NumFlows:  400,
	}
	d.Schedule(spec.Generate(sim.NewRand(8), 1))
	s, err := d.Run(sim.Time(30 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 400 {
		t.Fatalf("completed = %d, want 400", s.Completed)
	}
	st := net.QueueStatsTotal()
	if st.Dropped == 0 {
		t.Fatal("pFabric at 80% all-to-all load should drop packets")
	}
	lossRate := float64(st.DroppedData) / float64(st.DroppedData+st.Enqueued)
	if lossRate < 0.02 {
		t.Fatalf("loss rate %v suspiciously low for this scenario", lossRate)
	}
}

func TestRankIsRemainingSize(t *testing.T) {
	// Spy on the sender's NIC queue: ranks must decrease as the flow
	// progresses (remaining size shrinks).
	eng := sim.NewEngine()
	var ranks []int64
	net := topology.Build(eng, topology.SingleRack(2, func(k topology.QueueKind) netem.Queue {
		return netem.NewPFabric(76)
	}))
	d := transport.NewDriver(net, pfabric.New(pfabric.DefaultConfig()))
	// Tap packets at the receiving host.
	recvHost := net.Host(1)
	inner := recvHost.Handler
	recvHost.Handler = func(p *pkt.Packet) {
		if p.Type == pkt.Data {
			ranks = append(ranks, p.Rank)
		}
		inner(p)
	}
	d.Schedule([]workload.FlowSpec{{ID: 1, Src: 0, Dst: 1, Size: 100_000, Start: 0}})
	if _, err := d.Run(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	if len(ranks) == 0 {
		t.Fatal("no data observed")
	}
	if ranks[0] != 100_000 {
		t.Fatalf("first rank = %d, want full size", ranks[0])
	}
	if last := ranks[len(ranks)-1]; last >= ranks[0] {
		t.Fatalf("rank must shrink (first %d, last %d)", ranks[0], last)
	}
}

func TestAutoInitCwndFromBDP(t *testing.T) {
	cfg := pfabric.DefaultConfig()
	cfg.InitCwnd = 0 // derive from BDP
	net := pfRack(2)
	d := transport.NewDriver(net, pfabric.New(cfg))
	d.Schedule([]workload.FlowSpec{{ID: 1, Src: 0, Dst: 1, Size: 150_000, Start: 0}})
	s, err := d.Run(sim.Time(sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Completed != 1 || s.AFCT > 3*sim.Millisecond {
		t.Fatalf("auto-BDP run: %+v", s)
	}
}
