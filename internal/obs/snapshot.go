package obs

// Snapshot is the frozen, mergeable image of a Registry: what one
// simulation point contributes to a figure's run manifest. All values
// are int64 and every merge operation is commutative and associative
// (sum, min, max), so merging a set of snapshots yields identical
// bytes regardless of worker scheduling; the experiment pool still
// merges in input order as the documented contract.
//
// encoding/json sorts map keys, so marshaling a Snapshot is
// deterministic given equal contents.
type Snapshot struct {
	// Counters maps instrument name -> total.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges maps instrument name -> high-watermark.
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// Histograms maps instrument name -> distribution.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is the frozen image of one Histogram. Buckets are
// log2: Buckets[0] counts values <= 0 and Buckets[i] counts values in
// [2^(i-1), 2^i). Trailing zero buckets are trimmed.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Min     int64   `json:"min"`
	Max     int64   `json:"max"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Snapshot freezes the registry's current state. Returns nil on a nil
// Registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.v
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.max
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
			last := -1
			for i, n := range h.buckets {
				if n != 0 {
					last = i
				}
			}
			if last >= 0 {
				hs.Buckets = append([]int64(nil), h.buckets[:last+1]...)
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// Merge folds src into dst and returns dst. Either side may be nil:
// Merge(nil, s) returns an independent copy of s, Merge(d, nil)
// returns d unchanged. Counters and histogram buckets add; gauges and
// histogram maxima take the max, minima the min.
func Merge(dst, src *Snapshot) *Snapshot {
	if src == nil {
		return dst
	}
	if dst == nil {
		dst = &Snapshot{}
	}
	if len(src.Counters) > 0 && dst.Counters == nil {
		dst.Counters = make(map[string]int64, len(src.Counters))
	}
	for name, v := range src.Counters {
		dst.Counters[name] += v
	}
	if len(src.Gauges) > 0 && dst.Gauges == nil {
		dst.Gauges = make(map[string]int64, len(src.Gauges))
	}
	for name, v := range src.Gauges {
		if cur, ok := dst.Gauges[name]; !ok || v > cur {
			dst.Gauges[name] = v
		}
	}
	if len(src.Histograms) > 0 && dst.Histograms == nil {
		dst.Histograms = make(map[string]HistogramSnapshot, len(src.Histograms))
	}
	for name, sh := range src.Histograms {
		dh, ok := dst.Histograms[name]
		if !ok {
			dh = HistogramSnapshot{Min: sh.Min, Max: sh.Max}
		}
		if sh.Count > 0 {
			if dh.Count == 0 || sh.Min < dh.Min {
				dh.Min = sh.Min
			}
			if dh.Count == 0 || sh.Max > dh.Max {
				dh.Max = sh.Max
			}
		}
		dh.Count += sh.Count
		dh.Sum += sh.Sum
		if len(sh.Buckets) > len(dh.Buckets) {
			nb := make([]int64, len(sh.Buckets))
			copy(nb, dh.Buckets)
			dh.Buckets = nb
		}
		for i, n := range sh.Buckets {
			dh.Buckets[i] += n
		}
		dst.Histograms[name] = dh
	}
	return dst
}

// MergeAll merges a slice of snapshots in input order. Nil entries are
// skipped; an empty or all-nil input yields nil.
func MergeAll(snaps []*Snapshot) *Snapshot {
	var out *Snapshot
	for _, s := range snaps {
		out = Merge(out, s)
	}
	return out
}
