package obs

import "testing"

// The obs overhead contract: incrementing an instrument — enabled or
// nil — is a few nanoseconds and 0 allocs/op. CI runs these as the
// obs overhead smoke.

func BenchmarkCounterInc(b *testing.B) {
	b.ReportAllocs()
	c := NewRegistry().Counter("c")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncNil(b *testing.B) {
	b.ReportAllocs()
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeUpdate(b *testing.B) {
	b.ReportAllocs()
	g := NewRegistry().Gauge("g")
	for i := 0; i < b.N; i++ {
		g.Update(int64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	b.ReportAllocs()
	h := NewRegistry().Histogram("h")
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	b.ReportAllocs()
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkSnapshotMerge(b *testing.B) {
	b.ReportAllocs()
	r := NewRegistry()
	for i := 0; i < 32; i++ {
		r.Counter(name(i)).Add(int64(i))
		r.Histogram("h" + name(i)).Observe(int64(i))
	}
	s := r.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Merge(nil, s)
	}
}

func name(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i%10))
}
