package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("events") != c {
		t.Fatal("second lookup of the same counter name returned a new instrument")
	}

	g := r.Gauge("depth")
	g.Update(3)
	g.Update(9)
	g.Update(2)
	if g.Value() != 2 || g.Max() != 9 {
		t.Fatalf("gauge value=%d max=%d, want 2/9", g.Value(), g.Max())
	}

	h := r.Histogram("lat")
	for _, v := range []int64{0, 1, 2, 3, 1024, -5} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1025 {
		t.Fatalf("hist count=%d sum=%d, want 6/1025", h.Count(), h.Sum())
	}
}

func TestHistogramBuckets(t *testing.T) {
	// Bucket 0: v <= 0; bucket i: [2^(i-1), 2^i).
	cases := []struct {
		v    int64
		want int
	}{
		{-1, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 40, 41}, {1<<62 + 1, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry should hand out nil instruments")
	}
	// None of these may panic, and all reads must be zero.
	c.Inc()
	c.Add(10)
	g.Update(42)
	h.Observe(7)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
}

// The disabled path — nil instruments — must cost zero allocations,
// and so must the enabled hot path. This is the contract that lets
// every component instrument itself unconditionally.
func TestIncrementsAreAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	checks := []struct {
		name string
		fn   func()
	}{
		{"counter", func() { c.Inc(); c.Add(3) }},
		{"gauge", func() { g.Update(17) }},
		{"histogram", func() { h.Observe(12345) }},
		{"nil-counter", func() { nc.Inc(); nc.Add(3) }},
		{"nil-gauge", func() { ng.Update(17) }},
		{"nil-histogram", func() { nh.Observe(12345) }},
	}
	for _, ck := range checks {
		if allocs := testing.AllocsPerRun(1000, ck.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", ck.name, allocs)
		}
	}
}

func TestSnapshotAndMerge(t *testing.T) {
	mk := func(base int64) *Snapshot {
		r := NewRegistry()
		r.Counter("a").Add(base)
		r.Counter("b").Add(2 * base)
		r.Gauge("g").Update(base)
		r.Histogram("h").Observe(base)
		r.Histogram("h").Observe(4 * base)
		return r.Snapshot()
	}
	a, b := mk(1), mk(8)
	m := MergeAll([]*Snapshot{a, nil, b})
	if m.Counters["a"] != 9 || m.Counters["b"] != 18 {
		t.Fatalf("merged counters = %v", m.Counters)
	}
	if m.Gauges["g"] != 8 {
		t.Fatalf("merged gauge = %d, want 8", m.Gauges["g"])
	}
	h := m.Histograms["h"]
	if h.Count != 4 || h.Sum != 1+4+8+32 || h.Min != 1 || h.Max != 32 {
		t.Fatalf("merged hist = %+v", h)
	}
	// Merge must not mutate its source.
	if a.Counters["a"] != 1 || b.Counters["a"] != 8 {
		t.Fatal("Merge mutated a source snapshot")
	}
	if MergeAll(nil) != nil || MergeAll([]*Snapshot{nil, nil}) != nil {
		t.Fatal("MergeAll of nothing should be nil")
	}
}

// Merging in any order must serialize to identical bytes — the
// property the parallel experiment pool's manifest merging relies on.
func TestMergeOrderIndependentBytes(t *testing.T) {
	mk := func(base int64) *Snapshot {
		r := NewRegistry()
		r.Counter("pkts").Add(base)
		r.Gauge("depth").Update(base * 3)
		for i := int64(0); i < base; i++ {
			r.Histogram("occ").Observe(i)
		}
		return r.Snapshot()
	}
	snaps := []*Snapshot{mk(3), mk(11), mk(7)}
	ab := MergeAll([]*Snapshot{snaps[0], snaps[1], snaps[2]})
	ba := MergeAll([]*Snapshot{snaps[2], snaps[0], snaps[1]})
	j1, err := json.Marshal(ab)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(ba)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("merge order changed bytes:\n%s\n%s", j1, j2)
	}
}

func TestHistogramSnapshotTrimsTrailingZeros(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h").Observe(5) // bucket 3
	s := r.Snapshot()
	if got := len(s.Histograms["h"].Buckets); got != 4 {
		t.Fatalf("buckets length = %d, want 4 (trailing zeros trimmed)", got)
	}
}
