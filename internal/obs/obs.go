// Package obs is the simulator's run-wide observability layer: a
// zero-allocation set of counters, high-watermark gauges and
// fixed-bucket histograms collected in a per-run Registry.
//
// Design constraints, in order:
//
//   - The hot path (one increment) must be branch-cheap and must not
//     allocate: instruments are plain structs mutated through a held
//     pointer, looked up by name once at setup time.
//   - A disabled run must cost nothing: every instrument method is a
//     no-op on a nil receiver, and a nil *Registry hands out nil
//     instruments, so components instrument themselves unconditionally
//     and the Registry's presence decides whether anything is recorded.
//   - Snapshots must merge deterministically: every recorded quantity
//     is an int64 combined by addition (counters, histogram buckets)
//     or max/min (gauges, histogram extrema), so a merged snapshot is
//     byte-identical regardless of the merge order the worker pool
//     happened to produce.
//
// A Registry belongs to exactly one simulation run and, like the
// engine it observes, is not safe for concurrent use. Parallel
// experiment points each build their own Registry and the results are
// merged as Snapshots afterwards.
package obs

import "math/bits"

// Counter is a monotonically increasing event count.
type Counter struct {
	v int64
}

// Inc adds one. No-op on a nil Counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n. No-op on a nil Counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge tracks an instantaneous level and its high-watermark. Only the
// maximum survives into snapshots: unlike a last-value gauge it merges
// deterministically (max is commutative) and it is what capacity
// questions — deepest calendar, fullest queue — actually need.
type Gauge struct {
	cur, max int64
	seen     bool
}

// Update records the current level. No-op on a nil Gauge.
func (g *Gauge) Update(v int64) {
	if g == nil {
		return
	}
	g.cur = v
	if !g.seen || v > g.max {
		g.max = v
		g.seen = true
	}
}

// Value returns the most recent level (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.cur
}

// Max returns the high-watermark (0 for nil or never-updated).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// histBuckets is the fixed bucket count of every Histogram: bucket 0
// holds values <= 0 and bucket i holds values in [2^(i-1), 2^i), which
// spans the full int64 range (nanosecond latencies through byte
// counts) without configuration, allocation, or float math.
const histBuckets = 64

// Histogram is a fixed-bucket log2 histogram with count/sum/min/max.
// Observing is one shift-class bucket index plus five integer updates;
// no allocation ever.
type Histogram struct {
	count, sum int64
	min, max   int64
	buckets    [histBuckets]int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v)) // in [1, 64); bucket 63 holds >= 2^62
}

// Observe records one value. No-op on a nil Histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// Count returns how many values were observed (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Registry is the per-run instrument namespace. Instruments are
// created on first lookup and shared on every later lookup of the same
// name, so distinct components feeding one logical stream (e.g. every
// priority queue in the fabric) converge on one instrument. Lookup
// allocates; it belongs in setup code, never in the event loop.
//
// The zero *Registry (nil) is the disabled state: every lookup returns
// nil and every instrument method on nil is a no-op.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty, enabled Registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
// Returns nil on a nil Registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil Registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil on a nil Registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}
