package workload

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzEmpiricalCDF decodes arbitrary bytes into candidate CDF anchor
// lists. Whatever NewEmpirical accepts must then behave: samples stay
// inside the support, never drop below one byte, the inverse CDF is
// monotone in the quantile, and the analytic mean stays inside the
// support too. Whatever it rejects must not slip through MustEmpirical.
func FuzzEmpiricalCDF(f *testing.F) {
	f.Add([]byte{0x0a, 0x00, 0x20, 0x64, 0x00, 0x60, 0xe8, 0x03, 0xff})
	f.Add([]byte{0x01, 0x00, 0x10, 0x01, 0x00, 0xff})
	f.Add([]byte{0x64, 0x00, 0x00, 0x64, 0x00, 0x40, 0xc8, 0x00, 0x80, 0x2c, 0x01, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Each anchor is 3 bytes: 2 for the size step, 1 for the
		// fraction step. Building by accumulation biases the corpus
		// toward *valid* monotone inputs so the accept path gets real
		// coverage; raw non-monotone shapes still occur via zero steps.
		var pts []CDFPoint
		var size int64
		var frac float64
		for len(data) >= 3 && len(pts) < 64 {
			sizeStep := int64(binary.LittleEndian.Uint16(data[:2]))
			fracStep := float64(data[2]) / 255
			data = data[3:]
			size += sizeStep
			frac += fracStep
			pts = append(pts, CDFPoint{Size: size, Fraction: math.Min(frac, 1)})
		}
		if len(pts) > 0 {
			pts[len(pts)-1].Fraction = 1 // reachable end anchor half the time
		}
		e, err := NewEmpirical("fuzz", pts)
		if err != nil {
			// Rejected: MustEmpirical must agree (panic), not diverge.
			defer func() {
				if recover() == nil {
					t.Fatal("NewEmpirical rejected but MustEmpirical accepted")
				}
			}()
			MustEmpirical("fuzz", pts)
			return
		}
		lo, hi := pts[0].Size, pts[len(pts)-1].Size
		prev := int64(0)
		for i := 0; i <= 64; i++ {
			u := float64(i) / 64
			v := e.sampleAt(u)
			if v < 1 || v < lo || v > hi {
				t.Fatalf("sampleAt(%g) = %d outside [max(1,%d), %d]", u, v, lo, hi)
			}
			if v < prev {
				t.Fatalf("inverse CDF not monotone: sampleAt(%g) = %d < %d", u, v, prev)
			}
			prev = v
		}
		if m := e.Mean(); m < 0 || m > float64(hi) {
			t.Fatalf("mean %g outside [0, %d]", m, hi)
		}
	})
}
