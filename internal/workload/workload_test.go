package workload

import (
	"math"
	"testing"
	"testing/quick"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
)

func TestUniformSize(t *testing.T) {
	r := sim.NewRand(1)
	d := UniformSize{Min: 2000, Max: 198000}
	if d.Mean() != 100000 {
		t.Fatalf("mean = %v, want 100000", d.Mean())
	}
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		if v < 2000 || v > 198000 {
			t.Fatalf("sample %d out of range", v)
		}
		sum += float64(v)
	}
	if got := sum / n; math.Abs(got-100000) > 1000 {
		t.Fatalf("empirical mean = %v", got)
	}
}

func TestExpSizeClamped(t *testing.T) {
	r := sim.NewRand(3)
	d := ExpSize{MeanBytes: 100, MinBytes: 50}
	for i := 0; i < 1000; i++ {
		if v := d.Sample(r); v < 50 {
			t.Fatalf("sample %d below clamp", v)
		}
	}
}

func TestAllToAllNeverSelfPair(t *testing.T) {
	r := sim.NewRand(2)
	p := AllToAll{Hosts: HostRange(0, 20)}
	seen := make(map[pkt.NodeID]bool)
	for i := 0; i < 20000; i++ {
		s, d := p.Pair(r)
		if s == d {
			t.Fatal("self pair generated")
		}
		seen[s] = true
		seen[d] = true
	}
	if len(seen) != 20 {
		t.Fatalf("only %d hosts used, want 20", len(seen))
	}
}

// Property: AllToAll destination selection stays uniform over hosts.
func TestAllToAllUniformity(t *testing.T) {
	r := sim.NewRand(9)
	p := AllToAll{Hosts: HostRange(0, 10)}
	counts := make(map[pkt.NodeID]int)
	const n = 100000
	for i := 0; i < n; i++ {
		_, d := p.Pair(r)
		counts[d]++
	}
	want := float64(n) / 10
	for h, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("host %d got %d picks, want ≈%v", h, c, want)
		}
	}
}

func TestLeftRightSides(t *testing.T) {
	r := sim.NewRand(4)
	p := LeftRight{Left: HostRange(0, 80), Right: HostRange(80, 160)}
	for i := 0; i < 10000; i++ {
		s, d := p.Pair(r)
		if s >= 80 || d < 80 {
			t.Fatalf("pair (%d,%d) crosses sides wrongly", s, d)
		}
	}
}

func TestFixedPairsCycle(t *testing.T) {
	p := &FixedPairs{Pairs: [][2]pkt.NodeID{{1, 2}, {3, 4}}}
	s1, d1 := p.Pair(nil)
	s2, d2 := p.Pair(nil)
	s3, _ := p.Pair(nil)
	if s1 != 1 || d1 != 2 || s2 != 3 || d2 != 4 || s3 != 1 {
		t.Fatal("fixed pairs should cycle in order")
	}
}

func TestArrivalRate(t *testing.T) {
	s := Spec{
		Sizes:     UniformSize{Min: 2000, Max: 198000}, // mean 100 KB
		Load:      0.5,
		Reference: 10 * netem.Gbps,
	}
	// 0.5 * 10e9 / (100000*8) = 6250 flows/sec.
	if got := s.ArrivalRate(); math.Abs(got-6250) > 1e-6 {
		t.Fatalf("arrival rate = %v, want 6250", got)
	}
}

func TestGenerate(t *testing.T) {
	s := Spec{
		Pattern:         AllToAll{Hosts: HostRange(0, 20)},
		Sizes:           UniformSize{Min: 100000, Max: 500000},
		Load:            0.6,
		Reference:       20 * netem.Gbps,
		NumFlows:        500,
		DeadlineMin:     5 * sim.Millisecond,
		DeadlineMax:     25 * sim.Millisecond,
		BackgroundFlows: 2,
	}
	r := sim.NewRand(7)
	flows := s.Generate(r, 100)
	if len(flows) != 502 {
		t.Fatalf("generated %d flows, want 502", len(flows))
	}
	if !flows[0].Background || !flows[1].Background || flows[2].Background {
		t.Fatal("background flows must come first")
	}
	if flows[0].Start != 0 {
		t.Fatal("background flows start at 0")
	}
	if flows[0].ID != 100 || flows[501].ID != 601 {
		t.Fatal("IDs must be sequential from firstID")
	}
	prev := sim.Time(0)
	for _, f := range flows[2:] {
		if f.Start < prev {
			t.Fatal("arrivals must be non-decreasing")
		}
		prev = f.Start
		if f.Deadline < f.Start.Add(5*sim.Millisecond) || f.Deadline > f.Start.Add(25*sim.Millisecond) {
			t.Fatalf("deadline %v outside 5-25ms after start %v", f.Deadline, f.Start)
		}
		if f.Src == f.Dst {
			t.Fatal("self flow")
		}
	}
}

func TestGenerateArrivalRateEmpirical(t *testing.T) {
	s := Spec{
		Pattern:   AllToAll{Hosts: HostRange(0, 10)},
		Sizes:     FixedSize(100000),
		Load:      0.8,
		Reference: 10 * netem.Gbps,
		NumFlows:  20000,
	}
	r := sim.NewRand(11)
	flows := s.Generate(r, 0)
	last := flows[len(flows)-1].Start
	gotRate := float64(len(flows)) / last.Sub(0).Seconds()
	wantRate := s.ArrivalRate()
	if math.Abs(gotRate-wantRate)/wantRate > 0.03 {
		t.Fatalf("empirical rate %v, want ≈%v", gotRate, wantRate)
	}
}

// Property: generation is deterministic given the seed.
func TestGenerateDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		s := Spec{
			Pattern:   AllToAll{Hosts: HostRange(0, 8)},
			Sizes:     UniformSize{Min: 1000, Max: 9000},
			Load:      0.5,
			Reference: netem.Gbps,
			NumFlows:  50,
		}
		a := s.Generate(sim.NewRand(seed), 0)
		b := s.Generate(sim.NewRand(seed), 0)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHostRange(t *testing.T) {
	hr := HostRange(3, 6)
	if len(hr) != 3 || hr[0] != 3 || hr[2] != 5 {
		t.Fatalf("HostRange = %v", hr)
	}
}
