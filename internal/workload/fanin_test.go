package workload

import (
	"math"
	"testing"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
)

func faninSpec(fanin, flows int) Spec {
	return Spec{
		Pattern:   AllToAll{Hosts: HostRange(0, 20)},
		Sizes:     UniformSize{Min: 2000, Max: 198000},
		Load:      0.8,
		Reference: 20 * netem.Gbps,
		NumFlows:  flows,
		Fanin:     fanin,
	}
}

func TestFaninBurstsShareStartAndDst(t *testing.T) {
	r := sim.NewRand(4)
	flows := faninSpec(10, 200).Generate(r, 1)
	if len(flows) != 200 {
		t.Fatalf("generated %d flows, want 200", len(flows))
	}
	// Group by start time: each burst has one destination and
	// distinct sources, none equal to the destination.
	byStart := map[sim.Time][]FlowSpec{}
	for _, f := range flows {
		byStart[f.Start] = append(byStart[f.Start], f)
	}
	bursts := 0
	for _, group := range byStart {
		if len(group) == 1 {
			continue
		}
		bursts++
		dst := group[0].Dst
		seen := map[pkt.NodeID]bool{}
		for _, f := range group {
			if f.Dst != dst {
				t.Fatal("burst with mixed destinations")
			}
			if f.Src == dst {
				t.Fatal("worker equals aggregator")
			}
			if seen[f.Src] {
				t.Fatal("duplicate worker in one burst")
			}
			seen[f.Src] = true
		}
		if len(group) > 10 {
			t.Fatalf("burst of %d flows exceeds fanin", len(group))
		}
	}
	if bursts < 15 {
		t.Fatalf("only %d bursts for 200 flows at fanin 10", bursts)
	}
}

func TestFaninAggregatorsRoundRobin(t *testing.T) {
	r := sim.NewRand(5)
	flows := faninSpec(19, 19*40).Generate(r, 1)
	counts := map[pkt.NodeID]int{}
	for _, f := range flows {
		counts[f.Dst]++
	}
	if len(counts) != 20 {
		t.Fatalf("aggregators used = %d, want all 20", len(counts))
	}
	for dst, c := range counts {
		if c != 38 { // 40 queries / 20 aggregators × 19 workers
			t.Fatalf("aggregator %d served %d flows, want 38", dst, c)
		}
	}
}

func TestFaninPreservesOfferedLoad(t *testing.T) {
	// The aggregate byte arrival rate must match load × reference
	// regardless of fan-in.
	for _, fanin := range []int{1, 5, 19} {
		r := sim.NewRand(6)
		spec := faninSpec(fanin, 5000)
		flows := spec.Generate(r, 1)
		var bytes float64
		for _, f := range flows {
			bytes += float64(f.Size)
		}
		span := flows[len(flows)-1].Start.Sub(0).Seconds()
		gotBits := bytes * 8 / span
		wantBits := spec.Load * float64(spec.Reference)
		if math.Abs(gotBits-wantBits)/wantBits > 0.1 {
			t.Fatalf("fanin %d: offered %.3g bps, want %.3g", fanin, gotBits, wantBits)
		}
	}
}

func TestFaninRequiresAllToAll(t *testing.T) {
	spec := faninSpec(10, 10)
	spec.Pattern = LeftRight{Left: HostRange(0, 10), Right: HostRange(10, 20)}
	defer func() {
		if recover() == nil {
			t.Fatal("fanin with non-AllToAll pattern should panic")
		}
	}()
	spec.Generate(sim.NewRand(1), 1)
}

func TestFaninLargerThanRackClamps(t *testing.T) {
	r := sim.NewRand(7)
	spec := faninSpec(50, 60) // only 19 possible workers
	flows := spec.Generate(r, 1)
	byStart := map[sim.Time]int{}
	for _, f := range flows {
		byStart[f.Start]++
	}
	for _, n := range byStart {
		if n > 19 {
			t.Fatalf("burst of %d flows exceeds available workers", n)
		}
	}
}
