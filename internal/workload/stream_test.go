package workload

import (
	"encoding/binary"
	"hash/fnv"
	"reflect"
	"testing"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
)

// digest folds every field of every FlowSpec into one FNV-1a hash, so
// two generators that disagree anywhere — ids, endpoints, sizes,
// timestamps, deadlines, task grouping — produce different digests.
func digest(flows []FlowSpec) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, f := range flows {
		w(uint64(f.ID))
		w(uint64(f.Src))
		w(uint64(f.Dst))
		w(uint64(f.Size))
		w(uint64(f.Start))
		w(uint64(f.Deadline))
		if f.Background {
			w(1)
		} else {
			w(0)
		}
		w(f.Task)
	}
	return h.Sum64()
}

func drain(st *Stream) []FlowSpec {
	var out []FlowSpec
	for {
		f, ok := st.Next()
		if !ok {
			return out
		}
		out = append(out, f)
	}
}

// streamSpecs is the table the equivalence suite runs: every pattern,
// fan-in, deadlines, background flows, and the 0/1-flow edge cases.
func streamSpecs() map[string]Spec {
	hosts := HostRange(0, 20)
	return map[string]Spec{
		"all-to-all": {
			Pattern: AllToAll{Hosts: hosts}, Sizes: UniformSize{Min: 2_000, Max: 198_000},
			Load: 0.6, Reference: 10 * netem.Gbps, NumFlows: 3000,
		},
		"fanin-19": {
			Pattern: AllToAll{Hosts: hosts}, Sizes: FixedSize(20_000),
			Load: 0.7, Reference: 10 * netem.Gbps, NumFlows: 2000, Fanin: 19,
		},
		"fanin-truncated-batch": {
			// NumFlows not divisible by Fanin: the last query event is
			// cut short mid-batch.
			Pattern: AllToAll{Hosts: hosts}, Sizes: FixedSize(20_000),
			Load: 0.7, Reference: 10 * netem.Gbps, NumFlows: 100, Fanin: 19,
		},
		"deadlines-and-background": {
			Pattern: LeftRight{Left: HostRange(0, 10), Right: HostRange(10, 20)},
			Sizes:   UniformSize{Min: 100_000, Max: 500_000},
			Load:    0.8, Reference: 10 * netem.Gbps, NumFlows: 1500,
			DeadlineMin:     sim.Duration(5 * sim.Millisecond),
			DeadlineMax:     sim.Duration(25 * sim.Millisecond),
			BackgroundFlows: 2,
		},
		"exp-sizes": {
			Pattern: AllToAll{Hosts: hosts}, Sizes: ExpSize{MeanBytes: 50_000},
			Load: 0.5, Reference: 10 * netem.Gbps, NumFlows: 500,
		},
		"one-flow": {
			Pattern: AllToAll{Hosts: hosts}, Sizes: FixedSize(1_000),
			Load: 0.5, Reference: 10 * netem.Gbps, NumFlows: 1,
		},
		"zero-flows": {
			Pattern: AllToAll{Hosts: hosts}, Sizes: FixedSize(1_000),
			Load: 0.5, Reference: 10 * netem.Gbps, NumFlows: 0,
		},
	}
}

// TestStreamMatchesGenerate pins the tentpole equivalence: for every
// spec shape, Stream must yield exactly the sequence Generate
// materializes — same RNG draws, same ids, same fan-in batching — so
// the two scheduling modes are interchangeable.
func TestStreamMatchesGenerate(t *testing.T) {
	for name, spec := range streamSpecs() {
		for seed := uint64(1); seed <= 3; seed++ {
			gen := spec.Generate(sim.NewRand(seed), 1)
			got := drain(spec.Stream(sim.NewRand(seed), 1))
			if len(gen) != len(got) {
				t.Fatalf("%s seed %d: %d streamed vs %d generated", name, seed, len(got), len(gen))
			}
			for i := range gen {
				if gen[i] != got[i] {
					t.Fatalf("%s seed %d: flow %d diverges:\n gen    %+v\n stream %+v",
						name, seed, i, gen[i], got[i])
				}
			}
			if digest(gen) != digest(got) {
				t.Fatalf("%s seed %d: digests diverge", name, seed)
			}
		}
	}
}

// TestStreamMatchesGenerateFixedPairs covers the stateful pattern:
// FixedPairs mutates a cursor on every Pair call, so each generator
// needs its own instance.
func TestStreamMatchesGenerateFixedPairs(t *testing.T) {
	mk := func() Spec {
		return Spec{
			Pattern: &FixedPairs{Pairs: [][2]pkt.NodeID{{0, 1}, {2, 3}, {1, 2}}},
			Sizes:   FixedSize(10_000),
			Load:    0.5, Reference: 10 * netem.Gbps, NumFlows: 50,
			BackgroundFlows: 1,
		}
	}
	gen := mk().Generate(sim.NewRand(7), 1)
	got := drain(mk().Stream(sim.NewRand(7), 1))
	if !reflect.DeepEqual(gen, got) {
		t.Fatalf("fixed-pairs sequences diverge:\n gen    %v\n stream %v", gen, got)
	}
}

// TestStreamStartsNonDecreasing pins the contract ScheduleStream
// relies on: arrival timestamps never run backwards.
func TestStreamStartsNonDecreasing(t *testing.T) {
	for name, spec := range streamSpecs() {
		st := spec.Stream(sim.NewRand(2), 1)
		var prev sim.Time
		for {
			f, ok := st.Next()
			if !ok {
				break
			}
			if f.Start < prev {
				t.Fatalf("%s: arrival at %v after %v", name, f.Start, prev)
			}
			prev = f.Start
		}
	}
}

// TestStreamIsLazy verifies the memory contract: pulling a prefix of a
// huge workload must not materialize the rest.
func TestStreamIsLazy(t *testing.T) {
	spec := Spec{
		Pattern: AllToAll{Hosts: HostRange(0, 20)}, Sizes: FixedSize(10_000),
		Load: 0.6, Reference: 10 * netem.Gbps, NumFlows: 1 << 30,
	}
	st := spec.Stream(sim.NewRand(1), 1)
	for i := 0; i < 1000; i++ {
		if _, ok := st.Next(); !ok {
			t.Fatalf("stream dried up after %d of 2^30 flows", i)
		}
	}
}
