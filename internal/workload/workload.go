// Package workload synthesizes the traffic the paper evaluates on:
// Poisson flow arrivals with configurable size distributions, the
// three traffic patterns used in the evaluation (intra-rack
// all-to-all, left-right inter-rack, worker-aggregator), optional
// per-flow deadlines, and long-lived background flows.
package workload

import (
	"fmt"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
)

// FlowSpec describes one flow to run: the demand side of the
// simulation, independent of any transport protocol.
type FlowSpec struct {
	ID    pkt.FlowID
	Src   pkt.NodeID
	Dst   pkt.NodeID
	Size  int64    // payload bytes
	Start sim.Time // arrival time
	// Deadline is the absolute completion deadline; zero means none.
	Deadline sim.Time
	// Background marks a long-lived flow that never finishes within
	// the run; it is excluded from FCT statistics.
	Background bool
	// Task groups flows that belong to one application-level unit of
	// work (e.g. the responses of one query). 0 means untasked. Task
	// ids increase in task arrival order, so they double as a
	// FIFO-across-tasks scheduling criterion (Baraat-style task-aware
	// scheduling, which the paper's Algorithm 1 supports by swapping
	// FlowSize for a task id).
	Task uint64
}

func (f FlowSpec) String() string {
	return fmt.Sprintf("flow %d: %d->%d %dB @%v", f.ID, f.Src, f.Dst, f.Size, f.Start)
}

// SizeDist draws flow sizes.
type SizeDist interface {
	Sample(r *sim.Rand) int64
	// Mean returns the analytic expectation, used to convert offered
	// load into a Poisson arrival rate.
	Mean() float64
	String() string
}

// UniformSize draws uniformly from [Min, Max] bytes — the paper's
// query/short-message workload is U[2 KB, 198 KB] and the deadline
// workload U[100 KB, 500 KB].
type UniformSize struct {
	Min, Max int64
}

// Sample implements SizeDist.
func (u UniformSize) Sample(r *sim.Rand) int64 { return r.UniformInt(u.Min, u.Max) }

// Mean implements SizeDist.
func (u UniformSize) Mean() float64 { return float64(u.Min+u.Max) / 2 }

func (u UniformSize) String() string { return fmt.Sprintf("U[%d,%d]B", u.Min, u.Max) }

// FixedSize always draws the same size.
type FixedSize int64

// Sample implements SizeDist.
func (f FixedSize) Sample(*sim.Rand) int64 { return int64(f) }

// Mean implements SizeDist.
func (f FixedSize) Mean() float64 { return float64(f) }

func (f FixedSize) String() string { return fmt.Sprintf("%dB", int64(f)) }

// ExpSize draws exponentially distributed sizes with the given mean,
// clamped below at MinBytes (one packet by default).
type ExpSize struct {
	MeanBytes float64
	MinBytes  int64
}

// Sample implements SizeDist.
func (e ExpSize) Sample(r *sim.Rand) int64 {
	v := int64(r.Exp(e.MeanBytes))
	min := e.MinBytes
	if min <= 0 {
		min = 1
	}
	if v < min {
		v = min
	}
	return v
}

// Mean implements SizeDist.
func (e ExpSize) Mean() float64 { return e.MeanBytes }

func (e ExpSize) String() string { return fmt.Sprintf("Exp(%.0fB)", e.MeanBytes) }

// Pattern picks (src, dst) pairs for arriving flows.
type Pattern interface {
	Pair(r *sim.Rand) (src, dst pkt.NodeID)
	// Senders lists the hosts that can originate flows (used to place
	// background flows).
	Senders() []pkt.NodeID
	String() string
}

// AllToAll picks a uniform random ordered pair of distinct hosts —
// the paper's intra-rack all-to-all scenario (e.g. web-search workers
// and aggregators within one rack, aggregators picked round-robin).
type AllToAll struct {
	Hosts []pkt.NodeID
}

// Pair implements Pattern.
func (a AllToAll) Pair(r *sim.Rand) (pkt.NodeID, pkt.NodeID) {
	if len(a.Hosts) < 2 {
		panic("workload: AllToAll needs at least two hosts")
	}
	si := r.Intn(len(a.Hosts))
	di := r.Intn(len(a.Hosts) - 1)
	if di >= si {
		di++
	}
	return a.Hosts[si], a.Hosts[di]
}

// Senders implements Pattern.
func (a AllToAll) Senders() []pkt.NodeID { return a.Hosts }

func (a AllToAll) String() string { return fmt.Sprintf("all-to-all(%d hosts)", len(a.Hosts)) }

// LeftRight sends from a uniformly chosen left-set host to a uniformly
// chosen right-set host — the paper's inter-rack scenario where
// front-ends and back-ends live in different subtrees and the
// aggregation-core link is the bottleneck.
type LeftRight struct {
	Left, Right []pkt.NodeID
}

// Pair implements Pattern.
func (lr LeftRight) Pair(r *sim.Rand) (pkt.NodeID, pkt.NodeID) {
	if len(lr.Left) == 0 || len(lr.Right) == 0 {
		panic("workload: LeftRight needs non-empty sides")
	}
	return lr.Left[r.Intn(len(lr.Left))], lr.Right[r.Intn(len(lr.Right))]
}

// Senders implements Pattern.
func (lr LeftRight) Senders() []pkt.NodeID { return lr.Left }

func (lr LeftRight) String() string {
	return fmt.Sprintf("left-right(%d->%d hosts)", len(lr.Left), len(lr.Right))
}

// FixedPairs cycles deterministically through an explicit pair list
// (used by micro-benchmarks and the Figure 3 toy scenario).
type FixedPairs struct {
	Pairs [][2]pkt.NodeID
	next  int
}

// Pair implements Pattern.
func (fp *FixedPairs) Pair(*sim.Rand) (pkt.NodeID, pkt.NodeID) {
	p := fp.Pairs[fp.next%len(fp.Pairs)]
	fp.next++
	return p[0], p[1]
}

// Senders implements Pattern.
func (fp *FixedPairs) Senders() []pkt.NodeID {
	var out []pkt.NodeID
	for _, p := range fp.Pairs {
		out = append(out, p[0])
	}
	return out
}

func (fp *FixedPairs) String() string { return fmt.Sprintf("fixed(%d pairs)", len(fp.Pairs)) }

// Spec is a complete workload description.
type Spec struct {
	Pattern Pattern
	Sizes   SizeDist

	// Load is the offered load in (0, 1], relative to Reference.
	Load float64
	// Reference is the capacity the load is defined against: the
	// bottleneck the experiment saturates (e.g. the 10 Gbps agg-core
	// link for left-right, sum of receiver edge links for all-to-all).
	Reference netem.BitRate

	// NumFlows is how many short flows to generate.
	NumFlows int

	// DeadlineMin/Max, when positive, draw a uniform relative
	// deadline for every flow (the paper uses 5–25 ms).
	DeadlineMin, DeadlineMax sim.Duration

	// Fanin, when > 1, makes every arrival a query event in the
	// worker–aggregator style: Fanin flows from distinct random
	// workers start simultaneously toward one aggregator, aggregators
	// taken round-robin for load balancing (§2.1 and §4.2.2 of the
	// paper). The Pattern must be AllToAll. NumFlows still counts
	// individual flows.
	Fanin int

	// Background flows: long-lived transfers started at time zero
	// between pattern-chosen pairs (the paper runs two).
	BackgroundFlows int
	// BackgroundSize is the size of each background flow; it should
	// be large enough to outlive the run (default 1 GB).
	BackgroundSize int64
}

// ArrivalRate returns the Poisson arrival rate (flows/sec) implied by
// the offered load.
func (s Spec) ArrivalRate() float64 {
	if s.Load <= 0 || s.Reference <= 0 {
		panic("workload: Spec needs positive Load and Reference")
	}
	meanBits := s.Sizes.Mean() * 8
	return s.Load * float64(s.Reference) / meanBits
}

// Generate materializes the workload: background flows at t=0 followed
// by NumFlows Poisson arrivals. IDs start at firstID and increase.
func (s Spec) Generate(r *sim.Rand, firstID pkt.FlowID) []FlowSpec {
	var out []FlowSpec
	id := firstID

	bgSize := s.BackgroundSize
	if bgSize == 0 {
		bgSize = 1 << 30
	}
	for i := 0; i < s.BackgroundFlows; i++ {
		src, dst := s.Pattern.Pair(r)
		out = append(out, FlowSpec{
			ID: id, Src: src, Dst: dst, Size: bgSize, Start: 0, Background: true,
		})
		id++
	}

	meanGap := sim.Duration(float64(sim.Second) / s.ArrivalRate())
	if s.Fanin > 1 {
		// Query events of Fanin simultaneous flows each.
		meanGap *= sim.Duration(s.Fanin)
	}
	t := sim.Time(0)
	aggNext := 0
	for i := 0; i < s.NumFlows; {
		t = t.Add(r.ExpDuration(meanGap))
		if s.Fanin <= 1 {
			src, dst := s.Pattern.Pair(r)
			out = append(out, s.flow(r, id, src, dst, t))
			id++
			i++
			continue
		}
		a2a, ok := s.Pattern.(AllToAll)
		if !ok {
			panic("workload: Fanin requires the AllToAll pattern")
		}
		dst := a2a.Hosts[aggNext%len(a2a.Hosts)]
		aggNext++
		task := uint64(aggNext) // tasks numbered in arrival order
		workers := pickWorkers(r, a2a.Hosts, dst, s.Fanin)
		for _, src := range workers {
			if i >= s.NumFlows {
				break
			}
			f := s.flow(r, id, src, dst, t)
			f.Task = task
			out = append(out, f)
			id++
			i++
		}
	}
	return out
}

// Stream is an iterator over the same flow sequence Generate
// materializes: background flows first, then Poisson arrivals one at a
// time, drawing from the RNG in exactly the order Generate does so the
// two are interchangeable (the conformance suite pins sequence
// equality, fan-in included). A Stream holds only the current fan-in
// batch — O(Fanin) memory regardless of NumFlows — which is what lets
// million-flow runs schedule arrivals lazily instead of building the
// whole []FlowSpec up front.
type Stream struct {
	spec    Spec
	r       *sim.Rand
	id      pkt.FlowID
	bgSize  int64
	bgLeft  int
	meanGap sim.Duration
	t       sim.Time
	emitted int // foreground flows yielded so far
	aggNext int
	batch   []FlowSpec // pending flows of the current fan-in event
	batchi  int
}

// Stream returns an iterator yielding the flow sequence of
// Generate(r, firstID) one FlowSpec at a time.
func (s Spec) Stream(r *sim.Rand, firstID pkt.FlowID) *Stream {
	st := &Stream{spec: s, r: r, id: firstID, bgLeft: s.BackgroundFlows}
	st.bgSize = s.BackgroundSize
	if st.bgSize == 0 {
		st.bgSize = 1 << 30
	}
	st.meanGap = sim.Duration(float64(sim.Second) / s.ArrivalRate())
	if s.Fanin > 1 {
		st.meanGap *= sim.Duration(s.Fanin)
	}
	return st
}

// Next yields the next flow, or ok=false when the workload is
// exhausted.
func (st *Stream) Next() (FlowSpec, bool) {
	s := st.spec
	if st.bgLeft > 0 {
		st.bgLeft--
		src, dst := s.Pattern.Pair(st.r)
		f := FlowSpec{ID: st.id, Src: src, Dst: dst, Size: st.bgSize, Start: 0, Background: true}
		st.id++
		return f, true
	}
	if st.batchi < len(st.batch) {
		f := st.batch[st.batchi]
		st.batchi++
		return f, true
	}
	for st.emitted < s.NumFlows {
		st.t = st.t.Add(st.r.ExpDuration(st.meanGap))
		if s.Fanin <= 1 {
			src, dst := s.Pattern.Pair(st.r)
			f := s.flow(st.r, st.id, src, dst, st.t)
			st.id++
			st.emitted++
			return f, true
		}
		a2a, ok := s.Pattern.(AllToAll)
		if !ok {
			panic("workload: Fanin requires the AllToAll pattern")
		}
		dst := a2a.Hosts[st.aggNext%len(a2a.Hosts)]
		st.aggNext++
		task := uint64(st.aggNext)
		workers := pickWorkers(st.r, a2a.Hosts, dst, s.Fanin)
		st.batch = st.batch[:0]
		for _, src := range workers {
			if st.emitted >= s.NumFlows {
				break
			}
			f := s.flow(st.r, st.id, src, dst, st.t)
			f.Task = task
			st.batch = append(st.batch, f)
			st.id++
			st.emitted++
		}
		// An all-aggregator query draw can yield zero workers only when
		// the pool is empty; the outer loop then redraws, like Generate.
		if len(st.batch) > 0 {
			st.batchi = 1
			return st.batch[0], true
		}
	}
	return FlowSpec{}, false
}

func (s Spec) flow(r *sim.Rand, id pkt.FlowID, src, dst pkt.NodeID, t sim.Time) FlowSpec {
	f := FlowSpec{ID: id, Src: src, Dst: dst, Size: s.Sizes.Sample(r), Start: t}
	if s.DeadlineMax > 0 {
		d := sim.Duration(r.UniformInt(int64(s.DeadlineMin), int64(s.DeadlineMax)))
		f.Deadline = t.Add(d)
	}
	return f
}

// pickWorkers draws k distinct hosts other than dst.
func pickWorkers(r *sim.Rand, hosts []pkt.NodeID, dst pkt.NodeID, k int) []pkt.NodeID {
	pool := make([]pkt.NodeID, 0, len(hosts)-1)
	for _, h := range hosts {
		if h != dst {
			pool = append(pool, h)
		}
	}
	if k > len(pool) {
		k = len(pool)
	}
	perm := r.Perm(len(pool))
	out := make([]pkt.NodeID, 0, k)
	for _, idx := range perm[:k] {
		out = append(out, pool[idx])
	}
	return out
}

// HostRange returns the NodeIDs [lo, hi).
func HostRange(lo, hi int) []pkt.NodeID {
	out := make([]pkt.NodeID, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, pkt.NodeID(i))
	}
	return out
}
