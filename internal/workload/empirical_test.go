package workload

import (
	"math"
	"testing"
	"testing/quick"

	"pase/internal/sim"
)

func TestEmpiricalValidation(t *testing.T) {
	cases := [][]CDFPoint{
		nil,
		{{Size: 100, Fraction: 1}}, // too few
		{{Size: 100, Fraction: 0.5}, {Size: 50, Fraction: 1}},     // sizes not increasing
		{{Size: 100, Fraction: 0.5}, {Size: 200, Fraction: 0.4}},  // fractions not increasing
		{{Size: 100, Fraction: 0.5}, {Size: 200, Fraction: 0.9}},  // doesn't end at 1
		{{Size: -5, Fraction: 0.5}, {Size: 200, Fraction: 1}},     // bad size
		{{Size: 100, Fraction: -0.1}, {Size: 200, Fraction: 1.0}}, // bad fraction
	}
	for i, pts := range cases {
		if _, err := NewEmpirical("bad", pts); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	if _, err := NewEmpirical("ok", []CDFPoint{{Size: 10, Fraction: 0.5}, {Size: 100, Fraction: 1}}); err != nil {
		t.Fatalf("valid distribution rejected: %v", err)
	}
}

func TestEmpiricalSamplesWithinSupport(t *testing.T) {
	r := sim.NewRand(3)
	for _, d := range []*Empirical{WebSearch, DataMining} {
		max := d.points[len(d.points)-1].Size
		for i := 0; i < 20000; i++ {
			v := d.Sample(r)
			if v < 1 || v > max {
				t.Fatalf("%s: sample %d outside support", d, v)
			}
		}
	}
}

func TestEmpiricalMeanMatchesSamples(t *testing.T) {
	r := sim.NewRand(4)
	for _, d := range []*Empirical{WebSearch, DataMining} {
		const n = 400000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(d.Sample(r))
		}
		got := sum / n
		want := d.Mean()
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("%s: empirical mean %.0f vs analytic %.0f", d, got, want)
		}
	}
}

func TestEmpiricalQuantilesRoughlyMatchAnchors(t *testing.T) {
	r := sim.NewRand(5)
	const n = 200000
	var below int
	for i := 0; i < n; i++ {
		if WebSearch.Sample(r) <= 133*1024 {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.6) > 0.02 {
		t.Fatalf("P(size <= 133KB) = %.3f, want ≈0.60", frac)
	}
}

// Property: samples are monotone in the underlying uniform draw
// (inverse-transform correctness).
func TestEmpiricalInverseMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		// The distribution object must be stateless: two streams with
		// equal seeds produce identical samples.
		a, b := sim.NewRand(seed), sim.NewRand(seed)
		for i := 0; i < 100; i++ {
			if WebSearch.Sample(a) != WebSearch.Sample(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEmpiricalInWorkloadSpec(t *testing.T) {
	spec := Spec{
		Pattern:   AllToAll{Hosts: HostRange(0, 10)},
		Sizes:     WebSearch,
		Load:      0.5,
		Reference: 10_000_000_000,
		NumFlows:  100,
	}
	flows := spec.Generate(sim.NewRand(6), 1)
	if len(flows) != 100 {
		t.Fatalf("generated %d flows", len(flows))
	}
	for _, f := range flows {
		if f.Size <= 0 {
			t.Fatal("non-positive flow size")
		}
	}
}
