package workload

import (
	"fmt"
	"sort"

	"pase/internal/sim"
)

// Empirical draws flow sizes from a piecewise-linear CDF — the way the
// data-center transport literature encodes measured workloads. Points
// must be sorted by Size with strictly increasing CDF values ending at
// 1.0.
type Empirical struct {
	name   string
	points []CDFPoint
	mean   float64
}

// CDFPoint anchors the empirical distribution: Fraction of flows have
// size <= Size bytes.
type CDFPoint struct {
	Size     int64
	Fraction float64
}

// NewEmpirical validates and builds an empirical distribution.
func NewEmpirical(name string, points []CDFPoint) (*Empirical, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("workload: empirical %q needs >= 2 points", name)
	}
	for i, p := range points {
		if p.Size <= 0 || p.Fraction < 0 || p.Fraction > 1 {
			return nil, fmt.Errorf("workload: empirical %q point %d out of range", name, i)
		}
		if i > 0 && (p.Size <= points[i-1].Size || p.Fraction <= points[i-1].Fraction) {
			return nil, fmt.Errorf("workload: empirical %q not strictly increasing at %d", name, i)
		}
	}
	if points[len(points)-1].Fraction != 1 {
		return nil, fmt.Errorf("workload: empirical %q must end at fraction 1.0", name)
	}
	e := &Empirical{name: name, points: points}
	e.mean = e.computeMean()
	return e, nil
}

// MustEmpirical is NewEmpirical for package-level literals.
func MustEmpirical(name string, points []CDFPoint) *Empirical {
	e, err := NewEmpirical(name, points)
	if err != nil {
		panic(err)
	}
	return e
}

// computeMean integrates the piecewise-linear inverse CDF.
func (e *Empirical) computeMean() float64 {
	var mean float64
	prevF := 0.0
	prevS := float64(e.points[0].Size)
	// Mass below the first anchor is treated as the first size.
	mean += e.points[0].Fraction * prevS
	prevF = e.points[0].Fraction
	for _, p := range e.points[1:] {
		// Uniform interpolation between anchors: average size over
		// the segment is the midpoint.
		mean += (p.Fraction - prevF) * (prevS + float64(p.Size)) / 2
		prevF = p.Fraction
		prevS = float64(p.Size)
	}
	return mean
}

// Sample implements SizeDist by inverse-transform sampling with linear
// interpolation between anchors.
func (e *Empirical) Sample(r *sim.Rand) int64 { return e.sampleAt(r.Float64()) }

// sampleAt inverts the CDF at quantile u in [0, 1): sizes at or below
// the first anchor's fraction collapse onto the first anchor, anything
// else interpolates linearly inside its bracket, and the result never
// goes below one byte.
func (e *Empirical) sampleAt(u float64) int64 {
	idx := sort.Search(len(e.points), func(i int) bool { return e.points[i].Fraction >= u })
	if idx == 0 {
		return e.points[0].Size
	}
	lo, hi := e.points[idx-1], e.points[idx]
	frac := (u - lo.Fraction) / (hi.Fraction - lo.Fraction)
	size := float64(lo.Size) + frac*float64(hi.Size-lo.Size)
	if size < 1 {
		size = 1
	}
	return int64(size)
}

// Mean implements SizeDist.
func (e *Empirical) Mean() float64 { return e.mean }

func (e *Empirical) String() string { return e.name }

// WebSearch is the DCTCP/pFabric web-search workload: mostly short
// query/coordination traffic with a heavy tail of multi-MB responses
// (≈30 KB mean ≈ 1.6 MB due to the tail).
var WebSearch = MustEmpirical("websearch", []CDFPoint{
	{Size: 6 * 1024, Fraction: 0.15},
	{Size: 13 * 1024, Fraction: 0.2},
	{Size: 19 * 1024, Fraction: 0.3},
	{Size: 33 * 1024, Fraction: 0.4},
	{Size: 53 * 1024, Fraction: 0.53},
	{Size: 133 * 1024, Fraction: 0.6},
	{Size: 667 * 1024, Fraction: 0.7},
	{Size: 1333 * 1024, Fraction: 0.8},
	{Size: 3333 * 1024, Fraction: 0.9},
	{Size: 6667 * 1024, Fraction: 0.97},
	{Size: 20000 * 1024, Fraction: 1.0},
})

// DataMining is the VL2/pFabric data-mining workload: the majority of
// flows are a few KB with an extreme elephant tail.
var DataMining = MustEmpirical("datamining", []CDFPoint{
	{Size: 100, Fraction: 0.1},
	{Size: 180, Fraction: 0.2},
	{Size: 250, Fraction: 0.3},
	{Size: 560, Fraction: 0.4},
	{Size: 900, Fraction: 0.5},
	{Size: 1100, Fraction: 0.6},
	{Size: 1870, Fraction: 0.7},
	{Size: 3160, Fraction: 0.8},
	{Size: 10000, Fraction: 0.9},
	{Size: 400000, Fraction: 0.95},
	{Size: 3160000, Fraction: 0.98},
	{Size: 100000000, Fraction: 1.0},
})
