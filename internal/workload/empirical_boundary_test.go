package workload

import "testing"

// TestEmpiricalSampleAtBoundaries drives the inverse CDF directly at
// its seams: u = 0, u inside the first bucket, u exactly on an anchor,
// u approaching 1.
func TestEmpiricalSampleAtBoundaries(t *testing.T) {
	e := MustEmpirical("tri", []CDFPoint{
		{Size: 10, Fraction: 0.25},
		{Size: 100, Fraction: 0.75},
		{Size: 1000, Fraction: 1.0},
	})
	cases := []struct {
		name string
		u    float64
		want int64
	}{
		{"u=0 collapses to the first anchor", 0, 10},
		{"inside the first bucket still the first anchor", 0.1, 10},
		{"exactly the first anchor", 0.25, 10},
		{"midpoint of the second bucket", 0.5, 55}, // 10 + 0.5*(100-10)
		{"exactly the second anchor", 0.75, 100},
		{"inside the last bucket", 0.875, 550}, // 100 + 0.5*(1000-100)
		{"u→1 reaches the last anchor", 1.0, 1000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := e.sampleAt(tc.u); got != tc.want {
				t.Fatalf("sampleAt(%g) = %d, want %d", tc.u, got, tc.want)
			}
		})
	}
}

// TestEmpiricalSampleAtClampsToOneByte: an interpolated size below one
// byte (possible when the first anchor is tiny) clamps to 1 — the
// workload generator never emits zero-size flows.
func TestEmpiricalSampleAtClampsToOneByte(t *testing.T) {
	e := MustEmpirical("tiny", []CDFPoint{
		{Size: 1, Fraction: 0.5},
		{Size: 2, Fraction: 1.0},
	})
	for _, u := range []float64{0, 0.001, 0.5, 0.75, 1.0} {
		if got := e.sampleAt(u); got < 1 {
			t.Fatalf("sampleAt(%g) = %d, want >= 1", u, got)
		}
	}
}

// TestEmpiricalTwoPointMinimum: the smallest legal distribution (two
// anchors) interpolates across its single bracket.
func TestEmpiricalTwoPointMinimum(t *testing.T) {
	e := MustEmpirical("pair", []CDFPoint{
		{Size: 100, Fraction: 0.5},
		{Size: 200, Fraction: 1.0},
	})
	if got := e.sampleAt(0.75); got != 150 {
		t.Fatalf("sampleAt(0.75) = %d, want 150", got)
	}
	if got := e.sampleAt(0.25); got != 100 {
		t.Fatalf("sampleAt(0.25) = %d, want 100 (first-bucket collapse)", got)
	}
	// The mean integrates to 0.5*100 + 0.5*150 = 125.
	if m := e.Mean(); m != 125 {
		t.Fatalf("mean = %g, want 125", m)
	}
}

// TestEmpiricalRejectsDegenerates extends the validation table with the
// degenerate shapes the fuzzer hunts for: zero sizes, single points,
// duplicate anchors, NaN-adjacent fractions.
func TestEmpiricalRejectsDegenerates(t *testing.T) {
	cases := []struct {
		name string
		pts  []CDFPoint
	}{
		{"zero size", []CDFPoint{{Size: 0, Fraction: 0.5}, {Size: 10, Fraction: 1}}},
		{"single point at 1.0", []CDFPoint{{Size: 10, Fraction: 1}}},
		{"duplicate size", []CDFPoint{{Size: 10, Fraction: 0.5}, {Size: 10, Fraction: 1}}},
		{"duplicate fraction", []CDFPoint{{Size: 10, Fraction: 0.5}, {Size: 20, Fraction: 0.5}, {Size: 30, Fraction: 1}}},
		{"fraction above one", []CDFPoint{{Size: 10, Fraction: 0.5}, {Size: 20, Fraction: 1.5}}},
		{"ends below one", []CDFPoint{{Size: 10, Fraction: 0.5}, {Size: 20, Fraction: 0.999}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewEmpirical("bad", tc.pts); err == nil {
				t.Fatal("degenerate distribution accepted")
			}
		})
	}
}
