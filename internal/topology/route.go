package topology

import (
	"pase/internal/pkt"
)

// RouteBucketsPerSpine is the ECMP bucket granularity: every leaf's
// route table carries Spines × this many buckets, so traffic
// engineering can shift load in increments finer than a whole spine.
const RouteBucketsPerSpine = 8

// RouteTable is one leaf's forwarding state over its spine uplinks: a
// bucketed ECMP table that the routing control loop can edit at run
// time. It replaces the closed-over ECMP hash that froze routing at
// build time.
//
// The table is versioned copy-on-write: every mutation clones the
// current routeState, applies the edit and swaps the pointer, so a
// reader always sees one consistent epoch and Version identifies it.
// All reads and writes for one leaf happen on that leaf's shard
// goroutine (cross-shard updates arrive via the conservative-lookahead
// handoff), so no atomics are needed.
//
// Determinism contract: with no overrides and no down links the table
// is "clean" and Pick reproduces ECMPSpine exactly — bucket count is a
// multiple of the spine count and the default bucket→spine map is
// b mod Spines, so hash(flow) mod Buckets mod Spines equals
// hash(flow) mod Spines. A run that never mutates the table is
// byte-identical to one built before route tables existed.
type RouteTable struct {
	rack   int
	spines int
	racks  int
	// ports[s] is the leaf's egress port index toward spine s.
	ports []int
	state *routeState
}

// routeState is one immutable epoch of a RouteTable.
type routeState struct {
	version uint64
	// clean short-circuits Pick to the pure ECMP hash.
	clean bool
	// override[b] pins bucket b to a spine (-1 = default b mod Spines).
	override []int16
	// upDown[s] counts outages on the leaf→spine s uplink.
	upDown []int32
	// dstDown[q][s] counts outages on the spine s → leaf q downlink;
	// while positive, flows to rack q avoid spine s.
	dstDown [][]int32
}

// NewRouteTable builds the clean table for one leaf. ports maps spine
// index → the leaf's egress port index for that spine; racks is the
// leaf count (the destination-rack dimension of downlink state).
func NewRouteTable(rack int, ports []int, racks int) *RouteTable {
	spines := len(ports)
	st := &routeState{
		clean:    true,
		override: make([]int16, spines*RouteBucketsPerSpine),
		upDown:   make([]int32, spines),
		dstDown:  make([][]int32, racks),
	}
	for b := range st.override {
		st.override[b] = -1
	}
	for q := range st.dstDown {
		st.dstDown[q] = make([]int32, spines)
	}
	return &RouteTable{rack: rack, spines: spines, racks: racks, ports: ports, state: st}
}

// Rack returns the leaf this table routes for.
func (t *RouteTable) Rack() int { return t.rack }

// Spines returns the number of spine uplinks.
func (t *RouteTable) Spines() int { return t.spines }

// Buckets returns the ECMP bucket count (Spines × RouteBucketsPerSpine).
func (t *RouteTable) Buckets() int { return len(t.state.override) }

// Version identifies the current route epoch (0 = as built).
func (t *RouteTable) Version() uint64 { return t.state.version }

// Clean reports whether the table still reproduces the pure ECMP hash.
func (t *RouteTable) Clean() bool { return t.state.clean }

// BucketOf returns the bucket a flow hashes into.
func (t *RouteTable) BucketOf(flow pkt.FlowID) int {
	return ECMPSpine(flow, len(t.state.override))
}

// BucketSpine returns bucket b's assigned spine before failure
// detours: the TE override if set, else the default b mod Spines.
func (t *RouteTable) BucketSpine(b int) int {
	if s := t.state.override[b]; s >= 0 {
		return int(s)
	}
	return b % t.spines
}

// SpineUp reports whether the leaf's uplink to spine s is up.
func (t *RouteTable) SpineUp(s int) bool { return t.state.upDown[s] == 0 }

// avail reports whether spine s can carry traffic to dstRack: the
// uplink and the spine's downlink to that rack are both up.
func (st *routeState) avail(dstRack, s int) bool {
	return st.upDown[s] == 0 && st.dstDown[dstRack][s] == 0
}

// Avail reports whether spine s can carry this leaf's traffic to
// dstRack under the current epoch (uplink and far-side downlink both
// up). The route-validity checker scans it after every table edit.
func (t *RouteTable) Avail(dstRack, s int) bool {
	return t.state.avail(dstRack, s)
}

// PickBucket resolves bucket b for destination rack dstRack: the
// assigned spine if it is usable, else the first usable spine scanning
// upward from it (minimal churn — only buckets whose spine died move,
// and they all detour the same way, so recovery restores them
// exactly). With nothing usable the assigned spine is returned and the
// packet blackholes at the dead link, where the fault layer counts it.
func (t *RouteTable) PickBucket(dstRack, b int) int {
	st := t.state
	s := t.BucketSpine(b)
	if st.avail(dstRack, s) {
		return s
	}
	for k := 1; k < t.spines; k++ {
		if c := (s + k) % t.spines; st.avail(dstRack, c) {
			return c
		}
	}
	return s
}

// Pick returns the spine index carrying flow → dstRack under the
// current epoch. The clean fast path is the pure ECMP hash.
func (t *RouteTable) Pick(dstRack int, flow pkt.FlowID) int {
	st := t.state
	if st.clean {
		return ECMPSpine(flow, t.spines)
	}
	return t.PickBucket(dstRack, t.BucketOf(flow))
}

// PickPort returns the leaf's egress port index for flow → dstRack.
func (t *RouteTable) PickPort(dstRack int, flow pkt.FlowID) int {
	return t.ports[t.Pick(dstRack, flow)]
}

// mutate clones the state, applies fn and publishes the new epoch.
func (t *RouteTable) mutate(fn func(st *routeState)) {
	old := t.state
	st := &routeState{
		version:  old.version + 1,
		override: append([]int16(nil), old.override...),
		upDown:   append([]int32(nil), old.upDown...),
		dstDown:  make([][]int32, len(old.dstDown)),
	}
	for q := range old.dstDown {
		st.dstDown[q] = append([]int32(nil), old.dstDown[q]...)
	}
	fn(st)
	st.clean = true
	for _, o := range st.override {
		if o >= 0 {
			st.clean = false
			break
		}
	}
	for _, d := range st.upDown {
		if d > 0 {
			st.clean = false
			break
		}
	}
	for q := range st.dstDown {
		for _, d := range st.dstDown[q] {
			if d > 0 {
				st.clean = false
				break
			}
		}
	}
	t.state = st
}

// SetUplink marks the leaf→spine s uplink down or up; outages nest (a
// link downed twice needs two ups). Returns the number of buckets
// whose default assignment detours because of this transition.
func (t *RouteTable) SetUplink(s int, down bool) int {
	t.mutate(func(st *routeState) {
		if down {
			st.upDown[s]++
		} else if st.upDown[s] > 0 {
			st.upDown[s]--
		}
	})
	moved := 0
	for b := 0; b < t.Buckets(); b++ {
		if t.BucketSpine(b) == s {
			moved++
		}
	}
	return moved
}

// SetDstDown marks the spine s → rack dstRack downlink down or up;
// outages nest. Returns the number of buckets assigned to s (the
// detouring set for traffic toward dstRack).
func (t *RouteTable) SetDstDown(dstRack, s int, down bool) int {
	t.mutate(func(st *routeState) {
		if down {
			st.dstDown[dstRack][s]++
		} else if st.dstDown[dstRack][s] > 0 {
			st.dstDown[dstRack][s]--
		}
	})
	moved := 0
	for b := 0; b < t.Buckets(); b++ {
		if t.BucketSpine(b) == s {
			moved++
		}
	}
	return moved
}

// SetOverride pins bucket b to a spine (TE move); s = -1 restores the
// default assignment.
func (t *RouteTable) SetOverride(b, s int) {
	t.mutate(func(st *routeState) {
		st.override[b] = int16(s)
	})
}
