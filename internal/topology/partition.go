package topology

import (
	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
)

// Partition assigns every fabric node to a shard for sharded runs.
// The indivisible unit is an *atom*: a rack (its hosts plus the
// ToR/leaf switch — host<->ToR links are the latency-critical edge
// hops and never cross shards) or a single upper-tier switch (agg,
// core, spine). Atoms are dealt round-robin onto shards, so one shard
// per rack is the natural maximum degree of parallelism; asking for
// more shards than atoms silently clamps.
type Partition struct {
	// Shards is the effective shard count, min(requested, atoms).
	Shards int
	// Atoms is the fabric's atom count — the parallelism ceiling.
	Atoms int

	byNode []int // NodeID -> shard
}

// ShardOf returns the shard a node is assigned to.
func (p *Partition) ShardOf(n netem.Node) int { return p.byNode[n.ID()] }

// ShardOfID returns the shard of the node with the given ID.
func (p *Partition) ShardOfID(id pkt.NodeID) int { return p.byNode[id] }

func dealAtoms(atomOf []int, atoms, shards int) *Partition {
	if shards > atoms {
		shards = atoms
	}
	if shards < 1 {
		shards = 1
	}
	byNode := make([]int, len(atomOf))
	for id, a := range atomOf {
		byNode[id] = a % shards
	}
	return &Partition{Shards: shards, Atoms: atoms, byNode: byNode}
}

// PartitionTree maps the tree fabric described by cfg onto at most
// shards shards. Atoms: rack r -> atom r; aggregation switch a ->
// atom Racks+a; the core -> the last atom. NodeIDs follow Build's
// assignment order (hosts, ToRs, aggs, core).
func PartitionTree(cfg Config, shards int) *Partition {
	numHosts := cfg.Racks * cfg.HostsPerRack
	multiTier := cfg.Racks > 1
	numAggs := 0
	core := 0
	if multiTier {
		numAggs = cfg.Racks / cfg.RacksPerAgg
		core = 1
	}
	atomOf := make([]int, 0, numHosts+cfg.Racks+numAggs+core)
	for h := 0; h < numHosts; h++ {
		atomOf = append(atomOf, h/cfg.HostsPerRack)
	}
	for r := 0; r < cfg.Racks; r++ {
		atomOf = append(atomOf, r)
	}
	for a := 0; a < numAggs; a++ {
		atomOf = append(atomOf, cfg.Racks+a)
	}
	if multiTier {
		atomOf = append(atomOf, cfg.Racks+numAggs)
	}
	return dealAtoms(atomOf, cfg.Racks+numAggs+core, shards)
}

// PartitionLeafSpine maps a leaf-spine fabric onto at most shards
// shards. Atoms: leaf l (with its hosts) -> atom l; spine s -> atom
// Leaves+s. NodeIDs follow BuildLeafSpine's order (hosts, leaves,
// spines).
func PartitionLeafSpine(cfg LeafSpineConfig, shards int) *Partition {
	numHosts := cfg.Leaves * cfg.HostsPerLeaf
	atomOf := make([]int, 0, numHosts+cfg.Leaves+cfg.Spines)
	for h := 0; h < numHosts; h++ {
		atomOf = append(atomOf, h/cfg.HostsPerLeaf)
	}
	for l := 0; l < cfg.Leaves; l++ {
		atomOf = append(atomOf, l)
	}
	for s := 0; s < cfg.Spines; s++ {
		atomOf = append(atomOf, cfg.Leaves+s)
	}
	return dealAtoms(atomOf, cfg.Leaves+cfg.Spines, shards)
}

// CutLinks enumerates the directed links whose endpoints live on
// different shards and returns the minimum one-way propagation delay
// among them — the causality lower bound a sharded run uses as its
// conservative lookahead. ok is false when nothing is cut (a
// single-shard partition).
func (p *Partition) CutLinks(n *Network) (cut []*Link, minDelay sim.Duration, ok bool) {
	for _, l := range n.Links {
		if p.ShardOf(l.From) == p.ShardOf(l.To) {
			continue
		}
		d := l.Port.PropDelay()
		if !ok || d < minDelay {
			minDelay = d
		}
		ok = true
		cut = append(cut, l)
	}
	return cut, minDelay, ok
}
