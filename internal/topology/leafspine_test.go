package topology

import (
	"testing"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
)

func buildLS(t *testing.T) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine()
	n := BuildLeafSpine(eng, DefaultLeafSpine(dtq))
	return eng, n
}

func TestLeafSpineShape(t *testing.T) {
	_, n := buildLS(t)
	if !n.IsLeafSpine() {
		t.Fatal("fabric should report leaf-spine")
	}
	if n.NumHosts() != 40 || len(n.ToRs) != 4 || len(n.Spines) != 2 {
		t.Fatalf("shape: hosts=%d leaves=%d spines=%d", n.NumHosts(), len(n.ToRs), len(n.Spines))
	}
	// 40 host links + 4 leaves × 2 spines, both directions.
	if got := len(n.Links); got != (40+8)*2 {
		t.Fatalf("links = %d, want %d", got, (40+8)*2)
	}
}

func TestLeafSpineECMPDeterministicAndBalanced(t *testing.T) {
	counts := [2]int{}
	for f := pkt.FlowID(1); f <= 2000; f++ {
		s := ECMPSpine(f, 2)
		if s != ECMPSpine(f, 2) {
			t.Fatal("ECMP hash must be deterministic")
		}
		counts[s]++
	}
	if counts[0] < 800 || counts[1] < 800 {
		t.Fatalf("ECMP imbalance: %v", counts)
	}
}

func TestLeafSpinePathsFollowHash(t *testing.T) {
	_, n := buildLS(t)
	// Hosts 0 (leaf 0) and 15 (leaf 1).
	for f := pkt.FlowID(1); f <= 20; f++ {
		up := n.PathUpFlow(0, 15, f)
		down := n.PathDownFlow(0, 15, f)
		if len(up) != 2 || len(down) != 2 {
			t.Fatalf("flow %d: halves %d/%d, want 2/2", f, len(up), len(down))
		}
		spine := ECMPSpine(f, 2)
		if up[1].To != n.Spines[spine] || down[0].From != n.Spines[spine] {
			t.Fatalf("flow %d path does not follow its ECMP spine", f)
		}
	}
	// Intra-leaf: one hop halves.
	if len(n.PathUpFlow(0, 1, 5)) != 1 || len(n.PathDownFlow(0, 1, 5)) != 1 {
		t.Fatal("intra-leaf halves should be host links only")
	}
}

func TestLeafSpineDeliveryMatchesHash(t *testing.T) {
	eng, n := buildLS(t)
	// Count data packets at each spine's ingress by tapping leaf
	// uplink TX counters after a run.
	got := make(map[pkt.NodeID]bool)
	for _, h := range n.Hosts {
		h := h
		h.Handler = func(p *pkt.Packet) { got[p.Src] = true }
	}
	for f := 0; f < 50; f++ {
		src := n.Host(f % 10)             // leaf 0
		dst := n.Host(10 + (f % 10)).ID() // leaf 1
		src.Send(&pkt.Packet{Flow: pkt.FlowID(f + 1), Src: src.ID(), Dst: dst, Size: pkt.MTU, Type: pkt.Data})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("nothing delivered")
	}
	// Both spines must have carried traffic.
	for s, spine := range n.Spines {
		var tx int64
		for _, p := range spine.Ports() {
			tx += p.TxPackets
		}
		if tx == 0 {
			t.Fatalf("spine %d carried no packets: ECMP not spreading", s)
		}
	}
}

func TestLeafSpineBaseRTT(t *testing.T) {
	_, n := buildLS(t)
	// Cross-leaf: 4 links × 25µs × 2 = 200µs; intra-leaf 100µs.
	if rtt := n.BaseRTT(0, 15); rtt != 200*sim.Microsecond {
		t.Fatalf("cross-leaf RTT = %v", rtt)
	}
	if rtt := n.BaseRTT(0, 1); rtt != 100*sim.Microsecond {
		t.Fatalf("intra-leaf RTT = %v", rtt)
	}
}

func TestLeafSpineInvalidConfigPanics(t *testing.T) {
	bad := []LeafSpineConfig{
		{Leaves: 0, Spines: 1, HostsPerLeaf: 1, NewQueue: dtq, EdgeRate: netem.Gbps, FabricRate: netem.Gbps},
		{Leaves: 1, Spines: 1, HostsPerLeaf: 1}, // no queue factory
	}
	for i, cfg := range bad {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic", i)
				}
			}()
			BuildLeafSpine(sim.NewEngine(), cfg)
		}()
	}
}
