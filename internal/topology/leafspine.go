package topology

import (
	"fmt"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
)

// LevelToRSpine classifies leaf-spine fabric links (a ToR/leaf to one
// of the spines). Reuses the Level enumeration space after the tree
// levels.
const LevelToRSpine Level = LevelAggCore + 1

// LeafSpineConfig describes a two-tier multipath fabric: every leaf
// (ToR) connects to every spine, and flows are spread across spines by
// per-flow ECMP hashing — the modern alternative to the paper's
// single-path tree, included as an extension to show PASE's
// arbitration generalizes beyond one path per host pair.
type LeafSpineConfig struct {
	Leaves       int
	Spines       int
	HostsPerLeaf int

	EdgeRate   netem.BitRate
	FabricRate netem.BitRate
	LinkDelay  sim.Duration

	NewQueue func(kind QueueKind) netem.Queue

	// EngineOf and NewQueueFor mirror Config's sharded-run hooks.
	EngineOf    func(owner netem.Node) *sim.Engine
	NewQueueFor func(kind QueueKind, owner netem.Node) netem.Queue
}

// DefaultLeafSpine returns a 4-leaf × 2-spine fabric with 10 hosts per
// leaf, 1 Gbps edges and 10 Gbps fabric links (2:1 oversubscription
// per leaf: 10 Gbps up-capacity for 10 Gbps of hosts... i.e. 1:2 of
// the tree's 4:1).
func DefaultLeafSpine(newQueue func(QueueKind) netem.Queue) LeafSpineConfig {
	return LeafSpineConfig{
		Leaves:       4,
		Spines:       2,
		HostsPerLeaf: 10,
		EdgeRate:     netem.Gbps,
		FabricRate:   10 * netem.Gbps,
		LinkDelay:    25 * sim.Microsecond,
		NewQueue:     newQueue,
	}
}

// UplinkID returns the link ID BuildLeafSpine assigns to the
// rack→spine uplink: host↔leaf pairs are wired first (two links per
// host, up before down), then the leaf↔spine mesh in (leaf, spine)
// order, up before down. Fault plans use it to aim at fabric links
// before the network exists.
func (cfg LeafSpineConfig) UplinkID(rack, spine int) int {
	return 2*cfg.Leaves*cfg.HostsPerLeaf + 2*(rack*cfg.Spines+spine)
}

// DownlinkID returns the link ID of the spine→rack downlink.
func (cfg LeafSpineConfig) DownlinkID(rack, spine int) int {
	return cfg.UplinkID(rack, spine) + 1
}

// BuildLeafSpine wires a leaf-spine fabric. The returned Network
// reuses the tree Network type: leaves populate ToRs, spines populate
// Spines, and the flow-aware path methods dispatch on the fabric kind.
func BuildLeafSpine(eng *sim.Engine, cfg LeafSpineConfig) *Network {
	if cfg.NewQueue == nil && cfg.NewQueueFor == nil {
		panic("topology: LeafSpineConfig.NewQueue is required")
	}
	engOf := func(owner netem.Node) *sim.Engine {
		if cfg.EngineOf != nil {
			return cfg.EngineOf(owner)
		}
		return eng
	}
	queueFor := func(kind QueueKind, owner netem.Node) netem.Queue {
		if cfg.NewQueueFor != nil {
			return cfg.NewQueueFor(kind, owner)
		}
		return cfg.NewQueue(kind)
	}
	if cfg.Leaves < 1 || cfg.Spines < 1 || cfg.HostsPerLeaf < 1 {
		panic("topology: leaf-spine needs at least one leaf, spine and host")
	}

	n := &Network{
		Eng: eng,
		Cfg: Config{
			Racks:        cfg.Leaves,
			HostsPerRack: cfg.HostsPerLeaf,
			EdgeRate:     cfg.EdgeRate,
			FabricRate:   cfg.FabricRate,
			LinkDelay:    cfg.LinkDelay,
			NewQueue:     cfg.NewQueue,
		},
		upLinks:   make(map[pkt.NodeID][]*Link),
		downLinks: make(map[pkt.NodeID][]*Link),
		spineUp:   make(map[int][]*Link),
		spineDown: make(map[int][]*Link),
		lsLinks:   make(map[int]LeafSpineLink),
	}

	numHosts := cfg.Leaves * cfg.HostsPerLeaf
	nextID := pkt.NodeID(0)
	for i := 0; i < numHosts; i++ {
		n.Hosts = append(n.Hosts, netem.NewHost(nextID, fmt.Sprintf("h%d", i)))
		nextID++
	}
	for l := 0; l < cfg.Leaves; l++ {
		n.ToRs = append(n.ToRs, netem.NewSwitch(nextID, fmt.Sprintf("leaf%d", l)))
		nextID++
	}
	for s := 0; s < cfg.Spines; s++ {
		n.Spines = append(n.Spines, netem.NewSwitch(nextID, fmt.Sprintf("spine%d", s)))
		nextID++
	}

	link := func(level Level, up bool, port *netem.Port, from, to netem.Node) *Link {
		l := &Link{ID: len(n.Links), Level: level, Up: up, Port: port, From: from, To: to}
		n.Links = append(n.Links, l)
		return l
	}

	// Host <-> leaf links.
	for r, leaf := range n.ToRs {
		for j := 0; j < cfg.HostsPerLeaf; j++ {
			h := n.Hosts[r*cfg.HostsPerLeaf+j]
			hp := netem.NewPort(engOf(h), h, queueFor(QueueHostNIC, h), cfg.EdgeRate, cfg.LinkDelay)
			hp.Name = h.Name() + "->" + leaf.Name()
			tp := netem.NewPort(engOf(leaf), leaf, queueFor(QueueSwitchDown, leaf), cfg.EdgeRate, cfg.LinkDelay)
			tp.Name = leaf.Name() + "->" + h.Name()
			netem.Connect(hp, tp)
			h.SetPort(hp)
			idx := leaf.AddPort(tp)
			leaf.SetRoute(h.ID(), idx)

			up := link(LevelHostToR, true, hp, h, leaf)
			down := link(LevelHostToR, false, tp, leaf, h)
			n.upLinks[h.ID()] = append(n.upLinks[h.ID()], up)
			n.downLinks[h.ID()] = append(n.downLinks[h.ID()], down)
		}
	}

	// Leaf <-> spine mesh with per-flow ECMP at the leaves.
	for r, leaf := range n.ToRs {
		leaf := leaf
		var spinePorts []int
		for s, spine := range n.Spines {
			tp := netem.NewPort(engOf(leaf), leaf, queueFor(QueueSwitchUp, leaf), cfg.FabricRate, cfg.LinkDelay)
			tp.Name = leaf.Name() + "->" + spine.Name()
			sp := netem.NewPort(engOf(spine), spine, queueFor(QueueSwitchDown, spine), cfg.FabricRate, cfg.LinkDelay)
			sp.Name = spine.Name() + "->" + leaf.Name()
			netem.Connect(tp, sp)
			upIdx := leaf.AddPort(tp)
			downIdx := spine.AddPort(sp)
			spinePorts = append(spinePorts, upIdx)

			up := link(LevelToRSpine, true, tp, leaf, spine)
			down := link(LevelToRSpine, false, sp, spine, leaf)
			n.spineUp[r] = append(n.spineUp[r], up)
			n.spineDown[r] = append(n.spineDown[r], down)
			n.lsLinks[up.ID] = LeafSpineLink{Rack: r, Spine: s, Up: true}
			n.lsLinks[down.ID] = LeafSpineLink{Rack: r, Spine: s, Up: false}

			// Spines know every host's leaf.
			for j := 0; j < cfg.HostsPerLeaf; j++ {
				spine.SetRoute(n.Hosts[r*cfg.HostsPerLeaf+j].ID(), downIdx)
			}
		}
		// Remote destinations route through the leaf's runtime ECMP
		// table; as built (clean, no failures) this is exactly the
		// ECMPSpine hash the closed-over closure used to apply.
		rt := NewRouteTable(r, spinePorts, cfg.Leaves)
		n.routes = append(n.routes, rt)
		hostsPerLeaf := cfg.HostsPerLeaf
		leaf.FlowRoute = func(p *pkt.Packet) int {
			return rt.PickPort(int(p.Dst)/hostsPerLeaf, p.Flow)
		}
	}

	return n
}

// ECMPSpine is the fabric-wide ECMP hash: flow id -> spine index.
// Exposed so the control plane arbitrates the same path the data
// plane uses.
func ECMPSpine(flow pkt.FlowID, spines int) int {
	h := uint64(flow) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	return int(h % uint64(spines))
}

// IsLeafSpine reports whether the fabric was built by BuildLeafSpine.
func (n *Network) IsLeafSpine() bool { return len(n.Spines) > 0 }

// PathUpFlow is the flow-aware PathUp: identical to PathUp on tree
// fabrics; on leaf-spine fabrics the up half is the host uplink plus
// the ECMP-selected leaf→spine link (for inter-leaf flows).
func (n *Network) PathUpFlow(src, dst pkt.NodeID, flow pkt.FlowID) []*Link {
	if !n.IsLeafSpine() {
		return n.PathUp(src, dst)
	}
	hostUp := n.upLinks[src][:1]
	if n.RackOf(src) == n.RackOf(dst) {
		return hostUp
	}
	spine := n.routeSpine(n.RackOf(src), n.RackOf(dst), flow)
	out := make([]*Link, 0, 2)
	out = append(out, hostUp...)
	out = append(out, n.spineUp[n.RackOf(src)][spine])
	return out
}

// routeSpine resolves the spine carrying srcRack→dstRack traffic for a
// flow: the source leaf's route table when the fabric has one, the
// static ECMP hash otherwise.
func (n *Network) routeSpine(srcRack, dstRack int, flow pkt.FlowID) int {
	if n.routes != nil {
		return n.routes[srcRack].Pick(dstRack, flow)
	}
	return ECMPSpine(flow, len(n.Spines))
}

// PathDownFlow is the flow-aware PathDown (top-down order).
func (n *Network) PathDownFlow(src, dst pkt.NodeID, flow pkt.FlowID) []*Link {
	if !n.IsLeafSpine() {
		return n.PathDown(src, dst)
	}
	hostDown := n.downLinks[dst][:1]
	if n.RackOf(src) == n.RackOf(dst) {
		return hostDown
	}
	spine := n.routeSpine(n.RackOf(src), n.RackOf(dst), flow)
	out := make([]*Link, 0, 2)
	out = append(out, n.spineDown[n.RackOf(dst)][spine])
	out = append(out, hostDown...)
	return out
}

// PathFlow returns the full flow-aware path in traversal order.
func (n *Network) PathFlow(src, dst pkt.NodeID, flow pkt.FlowID) []*Link {
	up := n.PathUpFlow(src, dst, flow)
	down := n.PathDownFlow(src, dst, flow)
	out := make([]*Link, 0, len(up)+len(down))
	out = append(out, up...)
	out = append(out, down...)
	return out
}
