package topology

import (
	"testing"

	"pase/internal/pkt"
	"pase/internal/sim"
)

// TestECMPSpineNonPowerOfTwo pins the hash's balance and determinism
// off the easy power-of-two modulus: with 3, 5 or 7 spines every spine
// still gets close to its fair share.
func TestECMPSpineNonPowerOfTwo(t *testing.T) {
	const flows = 30_000
	for _, spines := range []int{3, 5, 7} {
		counts := make([]int, spines)
		for f := pkt.FlowID(1); f <= flows; f++ {
			s := ECMPSpine(f, spines)
			if s != ECMPSpine(f, spines) {
				t.Fatalf("spines=%d: hash not deterministic", spines)
			}
			counts[s]++
		}
		fair := flows / spines
		for s, c := range counts {
			if c < fair*9/10 || c > fair*11/10 {
				t.Fatalf("spines=%d: spine %d carries %d flows, fair share %d (±10%%): %v",
					spines, s, c, fair, counts)
			}
		}
	}
}

func testTable(spines, racks int) *RouteTable {
	ports := make([]int, spines)
	for s := range ports {
		ports[s] = 10 + s // arbitrary but distinct egress ports
	}
	return NewRouteTable(0, ports, racks)
}

// TestRouteTableCleanMatchesECMP pins the determinism contract: a table
// nobody has mutated reproduces the pure ECMP hash for every flow and
// destination, including non-power-of-two spine counts.
func TestRouteTableCleanMatchesECMP(t *testing.T) {
	for _, spines := range []int{2, 3, 5} {
		rt := testTable(spines, 4)
		if !rt.Clean() || rt.Version() != 0 {
			t.Fatalf("spines=%d: fresh table clean=%v version=%d", spines, rt.Clean(), rt.Version())
		}
		if rt.Buckets() != spines*RouteBucketsPerSpine {
			t.Fatalf("spines=%d: buckets=%d", spines, rt.Buckets())
		}
		for f := pkt.FlowID(1); f <= 2000; f++ {
			for dst := 0; dst < 4; dst++ {
				if got, want := rt.Pick(dst, f), ECMPSpine(f, spines); got != want {
					t.Fatalf("spines=%d flow=%d dst=%d: Pick=%d, ECMP=%d", spines, f, dst, got, want)
				}
			}
		}
	}
}

// TestRouteTableRehashMinimalChurn pins the failover property on a
// 3-spine table: downing one uplink moves exactly the buckets assigned
// to that spine (everything else keeps its path), and bringing it back
// restores the original assignment bit-for-bit.
func TestRouteTableRehashMinimalChurn(t *testing.T) {
	const spines, racks, flows = 3, 4, 2000
	rt := testTable(spines, racks)
	base := make(map[pkt.FlowID]int, flows)
	for f := pkt.FlowID(1); f <= flows; f++ {
		base[f] = rt.Pick(1, f)
	}

	const dead = 1
	if moved := rt.SetUplink(dead, true); moved != RouteBucketsPerSpine {
		t.Fatalf("SetUplink moved %d buckets, want %d", moved, RouteBucketsPerSpine)
	}
	if rt.Clean() || rt.SpineUp(dead) {
		t.Fatal("downed table should be dirty with the spine marked down")
	}
	for f := pkt.FlowID(1); f <= flows; f++ {
		got := rt.Pick(1, f)
		if base[f] != dead {
			if got != base[f] {
				t.Fatalf("flow %d moved %d→%d though its spine never failed", f, base[f], got)
			}
			continue
		}
		// Survivor scan goes upward from the dead spine.
		if want := (dead + 1) % spines; got != want {
			t.Fatalf("flow %d detoured to %d, want %d", f, got, want)
		}
	}

	rt.SetUplink(dead, false)
	if !rt.Clean() {
		t.Fatal("recovered table should be clean again")
	}
	for f := pkt.FlowID(1); f <= flows; f++ {
		if got := rt.Pick(1, f); got != base[f] {
			t.Fatalf("flow %d not restored after recovery: %d, want %d", f, got, base[f])
		}
	}
}

// TestRouteTableDstDownScoped pins the downlink dimension: a dead
// spine→rack downlink detours only traffic toward that rack.
func TestRouteTableDstDownScoped(t *testing.T) {
	const spines, racks = 3, 4
	rt := testTable(spines, racks)
	rt.SetDstDown(2, 0, true)
	for f := pkt.FlowID(1); f <= 2000; f++ {
		want := ECMPSpine(f, spines)
		if got := rt.Pick(1, f); got != want {
			t.Fatalf("flow %d toward healthy rack detoured %d→%d", f, want, got)
		}
		got := rt.Pick(2, f)
		if want == 0 {
			if got != 1 {
				t.Fatalf("flow %d toward rack 2 picked %d, want detour to 1", f, got)
			}
		} else if got != want {
			t.Fatalf("flow %d toward rack 2 moved %d→%d though spine %d is reachable", f, want, got, want)
		}
	}
	rt.SetDstDown(2, 0, false)
	if !rt.Clean() {
		t.Fatal("table should be clean after downlink recovery")
	}
}

// TestRouteTableOutagesNest pins the outage refcount: a link downed
// twice needs two ups before traffic returns.
func TestRouteTableOutagesNest(t *testing.T) {
	rt := testTable(3, 2)
	rt.SetUplink(0, true)
	rt.SetUplink(0, true)
	rt.SetUplink(0, false)
	if rt.SpineUp(0) {
		t.Fatal("one up should not clear two downs")
	}
	rt.SetUplink(0, false)
	if !rt.SpineUp(0) || !rt.Clean() {
		t.Fatal("second up should restore the clean table")
	}
}

// TestRouteTableOverride pins the TE move: an override shifts exactly
// its bucket, composes with failures, and -1 restores the default.
func TestRouteTableOverride(t *testing.T) {
	const spines = 3
	rt := testTable(spines, 2)
	const b = 4 // default spine 4 % 3 = 1
	rt.SetOverride(b, 2)
	if rt.Clean() || rt.BucketSpine(b) != 2 {
		t.Fatalf("override: clean=%v spine=%d", rt.Clean(), rt.BucketSpine(b))
	}
	for f := pkt.FlowID(1); f <= 2000; f++ {
		want := ECMPSpine(f, spines)
		if rt.BucketOf(f) == b {
			want = 2
		}
		if got := rt.Pick(0, f); got != want {
			t.Fatalf("flow %d: Pick=%d, want %d", f, got, want)
		}
	}
	// The override target failing detours the bucket like any other.
	rt.SetUplink(2, true)
	if got := rt.PickBucket(0, b); got != 0 {
		t.Fatalf("overridden bucket with dead target picked %d, want survivor 0", got)
	}
	rt.SetUplink(2, false)
	rt.SetOverride(b, -1)
	if !rt.Clean() {
		t.Fatal("clearing the override should restore the clean table")
	}
}

// TestRouteTableTotalBlackhole pins the nothing-usable case: with every
// spine dead toward the destination Pick returns the assigned spine so
// the packet dies at the dead link where the fault layer counts it.
func TestRouteTableTotalBlackhole(t *testing.T) {
	const spines = 3
	rt := testTable(spines, 2)
	for s := 0; s < spines; s++ {
		rt.SetUplink(s, true)
	}
	for f := pkt.FlowID(1); f <= 100; f++ {
		if got, want := rt.Pick(0, f), ECMPSpine(f, spines); got != want {
			t.Fatalf("flow %d under total blackhole picked %d, want assigned %d", f, got, want)
		}
	}
}

// TestLeafSpineLinkIDHelpers pins UplinkID/DownlinkID against the IDs
// BuildLeafSpine actually assigns, via the fabric's own link
// classification.
func TestLeafSpineLinkIDHelpers(t *testing.T) {
	cfg := DefaultLeafSpine(dtq)
	cfg.Spines = 3
	n := BuildLeafSpine(sim.NewEngine(), cfg)
	for r := 0; r < cfg.Leaves; r++ {
		for s := 0; s < cfg.Spines; s++ {
			up, ok := n.LeafSpineLinkInfo(cfg.UplinkID(r, s))
			if !ok || up != (LeafSpineLink{Rack: r, Spine: s, Up: true}) {
				t.Fatalf("UplinkID(%d,%d): info=%+v ok=%v", r, s, up, ok)
			}
			down, ok := n.LeafSpineLinkInfo(cfg.DownlinkID(r, s))
			if !ok || down != (LeafSpineLink{Rack: r, Spine: s, Up: false}) {
				t.Fatalf("DownlinkID(%d,%d): info=%+v ok=%v", r, s, down, ok)
			}
		}
	}
}
