// Package topology builds the simulated data-center fabrics used in
// the paper's evaluation: the baseline 3-tier tree (160 hosts, 4 ToR
// switches, 2 aggregation switches, 1 core; 1 Gbps edge links and
// 10 Gbps fabric links; 4:1 oversubscription at the ToR uplink), the
// single-rack variants used by the intra-rack experiments, and the
// 10-node "testbed" configuration.
//
// Besides wiring nodes and installing static up/down routes, the
// package assigns every directed link an ID and level and can
// enumerate the links on the path between two hosts split into the
// source-up half and the destination-down half — exactly the structure
// PASE's bottom-up arbitration operates on (§3.1.2 of the paper).
package topology

import (
	"fmt"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
)

// Level classifies a link by its position in the tree.
type Level int

// Link levels, counted from the edge.
const (
	LevelHostToR Level = iota // host <-> ToR
	LevelToRAgg               // ToR <-> aggregation
	LevelAggCore              // aggregation <-> core
)

func (l Level) String() string {
	switch l {
	case LevelHostToR:
		return "host-tor"
	case LevelToRAgg:
		return "tor-agg"
	case LevelAggCore:
		return "agg-core"
	case LevelToRSpine:
		return "tor-spine"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Link is one direction of a physical link, identified across the
// whole network. PASE attaches one arbitrator to each directed link.
type Link struct {
	ID    int
	Level Level
	// Up reports whether the link points toward the core.
	Up   bool
	Port *netem.Port
	// From and To are the attached nodes.
	From, To netem.Node
}

// Capacity returns the link's line rate.
func (l *Link) Capacity() netem.BitRate { return l.Port.Rate() }

func (l *Link) String() string {
	return fmt.Sprintf("link%d(%v %s)", l.ID, l.Level, map[bool]string{true: "up", false: "down"}[l.Up])
}

// QueueKind tells the queue factory what the queue will serve, letting
// experiments pick different disciplines per role.
type QueueKind int

// Queue roles.
const (
	QueueHostNIC    QueueKind = iota // host egress (NIC)
	QueueSwitchDown                  // switch egress toward hosts
	QueueSwitchUp                    // switch egress toward the core
)

// Config describes a tree fabric.
type Config struct {
	// Racks is the number of ToR switches. HostsPerRack hosts hang
	// off each.
	Racks        int
	HostsPerRack int
	// RacksPerAgg groups ToRs under aggregation switches. If Racks is
	// 1 the fabric is a single ToR and no agg/core layer is built.
	RacksPerAgg int

	EdgeRate   netem.BitRate // host <-> ToR
	FabricRate netem.BitRate // ToR <-> agg, agg <-> core

	// LinkDelay is the one-way propagation delay of every link. The
	// paper's 300µs base RTT across the core corresponds to 25µs per
	// link (12 link traversals per round trip).
	LinkDelay sim.Duration

	// NewQueue builds the egress queue for each port role.
	NewQueue func(kind QueueKind) netem.Queue

	// EngineOf, when set, binds each node's ports to that node's shard
	// engine instead of the Build engine (sharded runs).
	EngineOf func(owner netem.Node) *sim.Engine
	// NewQueueFor, when set, overrides NewQueue with owner awareness so
	// sharded runs can instrument queues against per-shard registries.
	NewQueueFor func(kind QueueKind, owner netem.Node) netem.Queue
}

// Baseline returns the paper's simulation topology (§4.1) with the
// queue factory left to the caller.
func Baseline(newQueue func(QueueKind) netem.Queue) Config {
	return Config{
		Racks:        4,
		HostsPerRack: 40,
		RacksPerAgg:  2,
		EdgeRate:     netem.Gbps,
		FabricRate:   10 * netem.Gbps,
		LinkDelay:    25 * sim.Microsecond,
		NewQueue:     newQueue,
	}
}

// SingleRack returns an intra-rack topology with n hosts. The paper's
// 300µs figure is the cross-core RTT; within a rack the base RTT is
// 4 links × delay. We keep 25µs per link (100µs intra-rack RTT).
func SingleRack(n int, newQueue func(QueueKind) netem.Queue) Config {
	return Config{
		Racks:        1,
		HostsPerRack: n,
		RacksPerAgg:  1,
		EdgeRate:     netem.Gbps,
		FabricRate:   10 * netem.Gbps,
		LinkDelay:    25 * sim.Microsecond,
		NewQueue:     newQueue,
	}
}

// Testbed returns the paper's testbed configuration (§4.4): one rack
// of 10 nodes, 1 Gbps links, 250µs base RTT (62.5µs per link).
func Testbed(newQueue func(QueueKind) netem.Queue) Config {
	return Config{
		Racks:        1,
		HostsPerRack: 10,
		RacksPerAgg:  1,
		EdgeRate:     netem.Gbps,
		FabricRate:   netem.Gbps,
		LinkDelay:    sim.Duration(62.5 * float64(sim.Microsecond)),
		NewQueue:     newQueue,
	}
}

// Network is a built fabric.
type Network struct {
	Eng   *sim.Engine
	Cfg   Config
	Hosts []*netem.Host
	ToRs  []*netem.Switch
	Aggs  []*netem.Switch
	Core  *netem.Switch
	// Spines is populated by BuildLeafSpine (leaf-spine fabrics).
	Spines []*netem.Switch

	Links []*Link

	// upLinks[h] lists host h's links toward the core, edge first.
	upLinks map[pkt.NodeID][]*Link
	// downLinks[h] lists the links from the core down to host h, in
	// top-down order.
	downLinks map[pkt.NodeID][]*Link
	// spineUp[rack][spine] / spineDown[rack][spine] hold the leaf-spine
	// mesh links (leaf-spine fabrics only).
	spineUp   map[int][]*Link
	spineDown map[int][]*Link
	// routes[rack] is each leaf's runtime ECMP route table (leaf-spine
	// fabrics only; nil on trees). lsLinks classifies the fabric mesh
	// links by (rack, spine, direction) for the routing control loop.
	routes  []*RouteTable
	lsLinks map[int]LeafSpineLink
}

// LeafSpineLink classifies one directed leaf-spine fabric link.
type LeafSpineLink struct {
	Rack  int
	Spine int
	// Up reports the leaf→spine direction (false = spine→leaf).
	Up bool
}

// LeafSpineLinkInfo classifies a link ID on a leaf-spine fabric;
// ok is false for host links and tree fabrics.
func (n *Network) LeafSpineLinkInfo(id int) (LeafSpineLink, bool) {
	l, ok := n.lsLinks[id]
	return l, ok
}

// RouteTable returns the runtime route table of a leaf (nil on tree
// fabrics).
func (n *Network) RouteTable(rack int) *RouteTable {
	if n.routes == nil {
		return nil
	}
	return n.routes[rack]
}

// SpineUpLinks returns rack's leaf→spine links indexed by spine
// (leaf-spine fabrics only).
func (n *Network) SpineUpLinks(rack int) []*Link { return n.spineUp[rack] }

// SpineDownLinks returns the spine→leaf links toward rack, indexed by
// spine (leaf-spine fabrics only).
func (n *Network) SpineDownLinks(rack int) []*Link { return n.spineDown[rack] }

// Build wires the fabric described by cfg onto the engine.
func Build(eng *sim.Engine, cfg Config) *Network {
	if cfg.NewQueue == nil && cfg.NewQueueFor == nil {
		panic("topology: Config.NewQueue is required")
	}
	engOf := func(owner netem.Node) *sim.Engine {
		if cfg.EngineOf != nil {
			return cfg.EngineOf(owner)
		}
		return eng
	}
	queueFor := func(kind QueueKind, owner netem.Node) netem.Queue {
		if cfg.NewQueueFor != nil {
			return cfg.NewQueueFor(kind, owner)
		}
		return cfg.NewQueue(kind)
	}
	if cfg.Racks < 1 || cfg.HostsPerRack < 1 {
		panic("topology: need at least one rack and one host")
	}
	if cfg.Racks > 1 && (cfg.RacksPerAgg < 1 || cfg.Racks%cfg.RacksPerAgg != 0) {
		panic("topology: Racks must be a multiple of RacksPerAgg")
	}

	n := &Network{
		Eng:       eng,
		Cfg:       cfg,
		upLinks:   make(map[pkt.NodeID][]*Link),
		downLinks: make(map[pkt.NodeID][]*Link),
	}

	numHosts := cfg.Racks * cfg.HostsPerRack
	nextID := pkt.NodeID(0)
	for i := 0; i < numHosts; i++ {
		n.Hosts = append(n.Hosts, netem.NewHost(nextID, fmt.Sprintf("h%d", i)))
		nextID++
	}
	for r := 0; r < cfg.Racks; r++ {
		n.ToRs = append(n.ToRs, netem.NewSwitch(nextID, fmt.Sprintf("tor%d", r)))
		nextID++
	}
	multiTier := cfg.Racks > 1
	var numAggs int
	if multiTier {
		numAggs = cfg.Racks / cfg.RacksPerAgg
		for a := 0; a < numAggs; a++ {
			n.Aggs = append(n.Aggs, netem.NewSwitch(nextID, fmt.Sprintf("agg%d", a)))
			nextID++
		}
		n.Core = netem.NewSwitch(nextID, "core")
		nextID++
	}

	link := func(level Level, up bool, port *netem.Port, from, to netem.Node) *Link {
		l := &Link{ID: len(n.Links), Level: level, Up: up, Port: port, From: from, To: to}
		n.Links = append(n.Links, l)
		return l
	}

	// Host <-> ToR links.
	for r, tor := range n.ToRs {
		for j := 0; j < cfg.HostsPerRack; j++ {
			h := n.Hosts[r*cfg.HostsPerRack+j]
			hp := netem.NewPort(engOf(h), h, queueFor(QueueHostNIC, h), cfg.EdgeRate, cfg.LinkDelay)
			hp.Name = h.Name() + "->" + tor.Name()
			tp := netem.NewPort(engOf(tor), tor, queueFor(QueueSwitchDown, tor), cfg.EdgeRate, cfg.LinkDelay)
			tp.Name = tor.Name() + "->" + h.Name()
			netem.Connect(hp, tp)
			h.SetPort(hp)
			idx := tor.AddPort(tp)
			tor.SetRoute(h.ID(), idx)

			up := link(LevelHostToR, true, hp, h, tor)
			down := link(LevelHostToR, false, tp, tor, h)
			n.upLinks[h.ID()] = append(n.upLinks[h.ID()], up)
			n.downLinks[h.ID()] = append(n.downLinks[h.ID()], down)
		}
	}

	if multiTier {
		// ToR <-> Agg links.
		for r, tor := range n.ToRs {
			agg := n.Aggs[r/cfg.RacksPerAgg]
			tp := netem.NewPort(engOf(tor), tor, queueFor(QueueSwitchUp, tor), cfg.FabricRate, cfg.LinkDelay)
			tp.Name = tor.Name() + "->" + agg.Name()
			ap := netem.NewPort(engOf(agg), agg, queueFor(QueueSwitchDown, agg), cfg.FabricRate, cfg.LinkDelay)
			ap.Name = agg.Name() + "->" + tor.Name()
			netem.Connect(tp, ap)
			torUpIdx := tor.AddPort(tp)
			aggDownIdx := agg.AddPort(ap)

			up := link(LevelToRAgg, true, tp, tor, agg)
			down := link(LevelToRAgg, false, ap, agg, tor)

			for j := 0; j < cfg.HostsPerRack; j++ {
				h := n.Hosts[r*cfg.HostsPerRack+j]
				n.upLinks[h.ID()] = append(n.upLinks[h.ID()], up)
				// Will be prepended below the agg-core link later;
				// build order: we append and fix ordering at the end.
				n.downLinks[h.ID()] = append(n.downLinks[h.ID()], down)
				agg.SetRoute(h.ID(), aggDownIdx)
			}
			// Default route for foreign destinations from this ToR.
			for _, h := range n.Hosts {
				if h.ID()/pkt.NodeID(cfg.HostsPerRack) != pkt.NodeID(r) {
					tor.SetRoute(h.ID(), torUpIdx)
				}
			}
		}

		// Agg <-> Core links.
		for a, agg := range n.Aggs {
			ap := netem.NewPort(engOf(agg), agg, queueFor(QueueSwitchUp, agg), cfg.FabricRate, cfg.LinkDelay)
			ap.Name = agg.Name() + "->core"
			cp := netem.NewPort(engOf(n.Core), n.Core, queueFor(QueueSwitchDown, n.Core), cfg.FabricRate, cfg.LinkDelay)
			cp.Name = "core->" + agg.Name()
			netem.Connect(ap, cp)
			aggUpIdx := agg.AddPort(ap)
			coreDownIdx := n.Core.AddPort(cp)

			up := link(LevelAggCore, true, ap, agg, n.Core)
			down := link(LevelAggCore, false, cp, n.Core, agg)

			aggFirstHost := a * cfg.RacksPerAgg * cfg.HostsPerRack
			aggLastHost := (a+1)*cfg.RacksPerAgg*cfg.HostsPerRack - 1
			for _, h := range n.Hosts {
				inSubtree := int(h.ID()) >= aggFirstHost && int(h.ID()) <= aggLastHost
				if inSubtree {
					n.upLinks[h.ID()] = append(n.upLinks[h.ID()], up)
					n.downLinks[h.ID()] = append(n.downLinks[h.ID()], down)
					n.Core.SetRoute(h.ID(), coreDownIdx)
				} else {
					agg.SetRoute(h.ID(), aggUpIdx)
				}
			}
		}

		// downLinks were appended edge-first; the down half must read
		// top-down (core->agg, agg->tor, tor->host).
		for id, links := range n.downLinks {
			reverse(links)
			n.downLinks[id] = links
		}
	}

	return n
}

func reverse(ls []*Link) {
	for i, j := 0, len(ls)-1; i < j; i, j = i+1, j-1 {
		ls[i], ls[j] = ls[j], ls[i]
	}
}

// NumHosts returns the number of hosts in the fabric.
func (n *Network) NumHosts() int { return len(n.Hosts) }

// Host returns host i (also the host with NodeID i).
func (n *Network) Host(i int) *netem.Host { return n.Hosts[i] }

// RackOf returns the rack index of a host.
func (n *Network) RackOf(h pkt.NodeID) int { return int(h) / n.Cfg.HostsPerRack }

// AggOf returns the aggregation-switch index of a host (0 for
// single-rack fabrics).
func (n *Network) AggOf(h pkt.NodeID) int {
	if len(n.Aggs) == 0 {
		return 0
	}
	return n.RackOf(h) / n.Cfg.RacksPerAgg
}

// meetLevel returns how far up the tree a packet between two hosts
// must climb: 0 = same ToR, 1 = same agg (different ToR), 2 = via core.
func (n *Network) meetLevel(src, dst pkt.NodeID) int {
	switch {
	case n.RackOf(src) == n.RackOf(dst):
		return 0
	case n.AggOf(src) == n.AggOf(dst):
		return 1
	default:
		return 2
	}
}

// PathUp returns the links of the source-side half of the src->dst
// path: from src's NIC upward, ending at the meeting switch.
func (n *Network) PathUp(src, dst pkt.NodeID) []*Link {
	m := n.meetLevel(src, dst)
	return n.upLinks[src][:m+1]
}

// PathDown returns the links of the destination-side half, in
// top-down order starting just below the meeting switch.
func (n *Network) PathDown(src, dst pkt.NodeID) []*Link {
	m := n.meetLevel(src, dst)
	down := n.downLinks[dst]
	return down[len(down)-(m+1):]
}

// Path returns every directed link a packet from src to dst traverses,
// in traversal order.
func (n *Network) Path(src, dst pkt.NodeID) []*Link {
	up := n.PathUp(src, dst)
	down := n.PathDown(src, dst)
	out := make([]*Link, 0, len(up)+len(down))
	out = append(out, up...)
	out = append(out, down...)
	return out
}

// UpLinks returns all links from host h toward the core (edge first).
func (n *Network) UpLinks(h pkt.NodeID) []*Link { return n.upLinks[h] }

// DownLinks returns all links from the core down to host h (top-down).
func (n *Network) DownLinks(h pkt.NodeID) []*Link { return n.downLinks[h] }

// BaseRTT returns the zero-queueing round-trip time between two hosts,
// counting propagation only (serialization is load-dependent and small
// at these MTUs). On multipath fabrics every path between a pair has
// the same hop count, so the flow choice does not matter.
func (n *Network) BaseRTT(src, dst pkt.NodeID) sim.Duration {
	hops := len(n.PathFlow(src, dst, 0))
	return sim.Duration(2*hops) * n.Cfg.LinkDelay
}

// QueueStatsTotal aggregates the queue counters of every port in the
// fabric (hosts and switches).
func (n *Network) QueueStatsTotal() netem.QueueStats {
	var total netem.QueueStats
	add := func(p *netem.Port) {
		s := p.Queue().Stats()
		total.Enqueued += s.Enqueued
		total.Dequeued += s.Dequeued
		total.Dropped += s.Dropped
		total.DroppedBytes += s.DroppedBytes
		total.EnqueuedData += s.EnqueuedData
		total.DroppedData += s.DroppedData
		total.EnqueuedCredit += s.EnqueuedCredit
		total.DroppedCredit += s.DroppedCredit
		total.Marked += s.Marked
		// MaxLen aggregates as the fabric-wide peak, not a sum: the
		// high-speed figure reads it as "deepest any queue ever got".
		if s.MaxLen > total.MaxLen {
			total.MaxLen = s.MaxLen
		}
	}
	for _, h := range n.Hosts {
		add(h.Port())
	}
	for _, sw := range n.ToRs {
		for _, p := range sw.Ports() {
			add(p)
		}
	}
	for _, sw := range n.Aggs {
		for _, p := range sw.Ports() {
			add(p)
		}
	}
	if n.Core != nil {
		for _, p := range n.Core.Ports() {
			add(p)
		}
	}
	for _, sw := range n.Spines {
		for _, p := range sw.Ports() {
			add(p)
		}
	}
	return total
}

// HostQueueStats aggregates the queue counters of host NIC ports only.
// EnqueuedData+DroppedData at the NICs is the number of transmission
// attempts the transports made, the denominator of the paper's loss
// rate.
func (n *Network) HostQueueStats() netem.QueueStats {
	var total netem.QueueStats
	for _, h := range n.Hosts {
		s := h.Port().Queue().Stats()
		total.Enqueued += s.Enqueued
		total.Dequeued += s.Dequeued
		total.Dropped += s.Dropped
		total.DroppedBytes += s.DroppedBytes
		total.EnqueuedData += s.EnqueuedData
		total.DroppedData += s.DroppedData
		total.Marked += s.Marked
	}
	return total
}

// TxDataTotal sums transmitted packets across all ports; used with
// QueueStatsTotal for loss-rate metrics.
func (n *Network) TxDataTotal() int64 {
	var total int64
	for _, h := range n.Hosts {
		total += h.Port().TxPackets
	}
	for _, sw := range n.ToRs {
		for _, p := range sw.Ports() {
			total += p.TxPackets
		}
	}
	for _, sw := range n.Aggs {
		for _, p := range sw.Ports() {
			total += p.TxPackets
		}
	}
	if n.Core != nil {
		for _, p := range n.Core.Ports() {
			total += p.TxPackets
		}
	}
	for _, sw := range n.Spines {
		for _, p := range sw.Ports() {
			total += p.TxPackets
		}
	}
	return total
}
