package topology

import (
	"testing"

	"pase/internal/netem"
	"pase/internal/pkt"
	"pase/internal/sim"
)

func dtq(QueueKind) netem.Queue { return netem.NewDropTail(1000) }

func buildBaseline(t *testing.T) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine()
	n := Build(eng, Baseline(dtq))
	return eng, n
}

func TestBaselineShape(t *testing.T) {
	_, n := buildBaseline(t)
	if got := n.NumHosts(); got != 160 {
		t.Fatalf("hosts = %d, want 160", got)
	}
	if len(n.ToRs) != 4 || len(n.Aggs) != 2 || n.Core == nil {
		t.Fatalf("switch counts: tors=%d aggs=%d core=%v", len(n.ToRs), len(n.Aggs), n.Core)
	}
	// 160 host links + 4 tor-agg + 2 agg-core, two directions each.
	if got := len(n.Links); got != (160+4+2)*2 {
		t.Fatalf("links = %d, want %d", got, (160+4+2)*2)
	}
	// Oversubscription: 40 hosts × 1Gbps vs one 10Gbps uplink = 4:1.
	up := n.UpLinks(0)
	if len(up) != 3 {
		t.Fatalf("up links = %d, want 3", len(up))
	}
	if up[0].Capacity() != netem.Gbps || up[1].Capacity() != 10*netem.Gbps || up[2].Capacity() != 10*netem.Gbps {
		t.Fatalf("capacities = %v %v %v", up[0].Capacity(), up[1].Capacity(), up[2].Capacity())
	}
}

func TestRackAndAggAssignment(t *testing.T) {
	_, n := buildBaseline(t)
	if n.RackOf(0) != 0 || n.RackOf(39) != 0 || n.RackOf(40) != 1 || n.RackOf(159) != 3 {
		t.Fatal("rack assignment wrong")
	}
	if n.AggOf(0) != 0 || n.AggOf(79) != 0 || n.AggOf(80) != 1 || n.AggOf(159) != 1 {
		t.Fatal("agg assignment wrong")
	}
}

func TestPathHalves(t *testing.T) {
	_, n := buildBaseline(t)
	// Same rack: 1 up + 1 down.
	up, down := n.PathUp(0, 1), n.PathDown(0, 1)
	if len(up) != 1 || len(down) != 1 {
		t.Fatalf("intra-rack halves = %d/%d, want 1/1", len(up), len(down))
	}
	if up[0].Level != LevelHostToR || !up[0].Up || down[0].Level != LevelHostToR || down[0].Up {
		t.Fatal("intra-rack links misclassified")
	}
	// Same agg, different rack (host 0 rack 0, host 40 rack 1): 2 up + 2 down.
	up, down = n.PathUp(0, 40), n.PathDown(0, 40)
	if len(up) != 2 || len(down) != 2 {
		t.Fatalf("intra-agg halves = %d/%d, want 2/2", len(up), len(down))
	}
	if down[0].Level != LevelToRAgg || down[1].Level != LevelHostToR {
		t.Fatal("down half must be top-down ordered")
	}
	// Across core (host 0, host 159): 3 up + 3 down.
	up, down = n.PathUp(0, 159), n.PathDown(0, 159)
	if len(up) != 3 || len(down) != 3 {
		t.Fatalf("cross-core halves = %d/%d, want 3/3", len(up), len(down))
	}
	if up[2].Level != LevelAggCore || down[0].Level != LevelAggCore {
		t.Fatal("cross-core halves must include agg-core links")
	}
}

func TestBaseRTT(t *testing.T) {
	_, n := buildBaseline(t)
	// Cross-core: 6 links × 25µs × 2 = 300µs, the paper's base RTT.
	if rtt := n.BaseRTT(0, 159); rtt != 300*sim.Microsecond {
		t.Fatalf("cross-core RTT = %v, want 300µs", rtt)
	}
	// Intra-rack: 2 links × 25µs × 2 = 100µs.
	if rtt := n.BaseRTT(0, 1); rtt != 100*sim.Microsecond {
		t.Fatalf("intra-rack RTT = %v, want 100µs", rtt)
	}
}

func TestTestbedRTT(t *testing.T) {
	eng := sim.NewEngine()
	n := Build(eng, Testbed(dtq))
	if n.NumHosts() != 10 {
		t.Fatalf("testbed hosts = %d, want 10", n.NumHosts())
	}
	if rtt := n.BaseRTT(0, 9); rtt != 250*sim.Microsecond {
		t.Fatalf("testbed RTT = %v, want 250µs", rtt)
	}
}

// deliverAndCheck sends one packet between each host pair of interest
// and verifies delivery through the routed fabric.
func TestEndToEndDelivery(t *testing.T) {
	eng, n := buildBaseline(t)
	type key struct{ src, dst pkt.NodeID }
	delivered := make(map[key]bool)
	for _, h := range n.Hosts {
		h := h
		h.Handler = func(p *pkt.Packet) {
			if p.Dst != h.ID() {
				t.Errorf("host %d got packet for %d", h.ID(), p.Dst)
			}
			delivered[key{p.Src, p.Dst}] = true
		}
	}
	pairs := []key{
		{0, 1},   // intra-rack
		{0, 40},  // inter-rack same agg
		{0, 159}, // cross-core
		{159, 0}, // reverse direction
		{80, 79}, // agg boundary
		{39, 40}, // rack boundary
	}
	for _, pr := range pairs {
		p := &pkt.Packet{Src: pr.src, Dst: pr.dst, Size: pkt.MTU, Type: pkt.Data}
		n.Host(int(pr.src)).Send(p)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for _, pr := range pairs {
		if !delivered[pr] {
			t.Errorf("pair %v not delivered", pr)
		}
	}
}

func TestAllPairsReachability(t *testing.T) {
	// Smaller fabric, exhaustive all-pairs delivery.
	eng := sim.NewEngine()
	cfg := Config{
		Racks: 4, HostsPerRack: 2, RacksPerAgg: 2,
		EdgeRate: netem.Gbps, FabricRate: 10 * netem.Gbps,
		LinkDelay: sim.Microsecond, NewQueue: dtq,
	}
	n := Build(eng, cfg)
	recv := make(map[pkt.NodeID]int)
	for _, h := range n.Hosts {
		h := h
		h.Handler = func(p *pkt.Packet) { recv[h.ID()]++ }
	}
	for _, src := range n.Hosts {
		for _, dst := range n.Hosts {
			if src == dst {
				continue
			}
			src.Send(&pkt.Packet{Src: src.ID(), Dst: dst.ID(), Size: 100, Type: pkt.Data})
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for _, h := range n.Hosts {
		if recv[h.ID()] != n.NumHosts()-1 {
			t.Fatalf("host %d received %d, want %d", h.ID(), recv[h.ID()], n.NumHosts()-1)
		}
	}
}

func TestPathMatchesRouting(t *testing.T) {
	// The links reported by Path must be exactly the ports a packet
	// traverses; verify by checking hop count equals path length.
	eng, n := buildBaseline(t)
	var hops int8
	n.Host(159).Handler = func(p *pkt.Packet) { hops = p.Hops }
	n.Host(0).Send(&pkt.Packet{Src: 0, Dst: 159, Size: 100, Type: pkt.Data})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if int(hops) != len(n.Path(0, 159)) {
		t.Fatalf("hops = %d, path length = %d", hops, len(n.Path(0, 159)))
	}
}

func TestSingleRackHasNoFabricLayer(t *testing.T) {
	eng := sim.NewEngine()
	n := Build(eng, SingleRack(20, dtq))
	if len(n.Aggs) != 0 || n.Core != nil {
		t.Fatal("single rack should not build agg/core")
	}
	if len(n.UpLinks(0)) != 1 || len(n.DownLinks(0)) != 1 {
		t.Fatal("single-rack hosts have exactly one up and one down link")
	}
	if got := len(n.Path(0, 19)); got != 2 {
		t.Fatalf("path length = %d, want 2", got)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Racks: 0, HostsPerRack: 1, NewQueue: dtq},
		{Racks: 3, HostsPerRack: 1, RacksPerAgg: 2, NewQueue: dtq, EdgeRate: netem.Gbps, FabricRate: netem.Gbps},
		{Racks: 1, HostsPerRack: 1}, // no queue factory
	} {
		cfg := cfg
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			Build(sim.NewEngine(), cfg)
		}()
	}
}

func TestQueueStatsTotalAggregates(t *testing.T) {
	eng, n := buildBaseline(t)
	n.Host(1).Handler = func(*pkt.Packet) {}
	n.Host(0).Send(&pkt.Packet{Src: 0, Dst: 1, Size: pkt.MTU, Type: pkt.Data})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := n.QueueStatsTotal()
	// Host NIC + ToR downlink = 2 enqueues.
	if st.Enqueued != 2 || st.Dequeued != 2 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if n.TxDataTotal() != 2 {
		t.Fatalf("tx total = %d, want 2", n.TxDataTotal())
	}
}
