package sim

import "testing"

func BenchmarkScheduleAndRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Duration(i%1000)*Microsecond, func() {})
		if i%1024 == 1023 {
			for e.Step() {
			}
		}
	}
	for e.Step() {
	}
}

func BenchmarkTimerChurn(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := e.Schedule(Millisecond, func() {})
		t.Stop()
	}
}

// BenchmarkScheduleFireSteady measures the steady-state schedule+fire
// cycle with a populated calendar — the shape of the simulator's inner
// loop (every fired packet event schedules its successors).
func BenchmarkScheduleFireSteady(b *testing.B) {
	e := NewEngine()
	const depth = 512
	fn := func() {}
	for i := 0; i < depth; i++ {
		e.Schedule(Duration(i)*Microsecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Duration(depth)*Microsecond, fn)
		e.Step()
	}
	for e.Step() {
	}
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkRandExp(b *testing.B) {
	r := NewRand(1)
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Exp(1)
	}
	_ = sink
}
