package sim

import "testing"

func BenchmarkScheduleAndRun(b *testing.B) {
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Duration(i%1000)*Microsecond, func() {})
		if i%1024 == 1023 {
			for e.Step() {
			}
		}
	}
	for e.Step() {
	}
}

func BenchmarkTimerChurn(b *testing.B) {
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := e.Schedule(Millisecond, func() {})
		t.Stop()
	}
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkRandExp(b *testing.B) {
	r := NewRand(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Exp(1)
	}
	_ = sink
}
