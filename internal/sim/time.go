// Package sim implements the discrete-event simulation engine that
// underlies the PASE network simulator: a virtual clock, an event
// calendar (binary heap keyed on time with deterministic tie-breaking),
// cancellable timers, and seeded random-number streams.
//
// The engine is single-threaded by design. Determinism is a first-class
// goal: given the same seed and the same sequence of Schedule calls, a
// run produces an identical event order, which the tests rely on.
package sim

import (
	"fmt"
	"time"
)

// Time is an absolute simulation timestamp in nanoseconds since the
// start of the run. The zero value is the beginning of simulated time.
type Time int64

// Duration is a span of simulated time in nanoseconds. It mirrors
// time.Duration so the usual constants read naturally.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time t+d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Std converts a simulated duration to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Millis reports the duration as a floating-point number of milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// Micros reports the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// DurationOf converts a time.Duration into a simulated Duration.
func DurationOf(d time.Duration) Duration { return Duration(d) }

// Seconds builds a Duration from a floating-point number of seconds.
func Seconds(s float64) Duration { return Duration(s * float64(Second)) }

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", float64(t)/float64(Second))
}

func (d Duration) String() string { return time.Duration(d).String() }
