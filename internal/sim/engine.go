package sim

import (
	"fmt"

	"pase/internal/check"
	"pase/internal/obs"
)

// Engine is the discrete-event simulation core. It owns the virtual
// clock and the pending-event calendar. All model components schedule
// callbacks on the engine; Run drains the calendar in time order.
//
// Engine is not safe for concurrent use: the whole simulation runs on
// one goroutine, which keeps event execution deterministic. Distinct
// engines share nothing and may run on distinct goroutines.
//
// Internally the calendar is a 4-ary min-heap of recycled event
// records: cancellation is O(1) lazy deletion (the record is marked
// dead and discarded when it surfaces), and fired or dead records
// return to a bounded free list instead of the garbage collector.
type Engine struct {
	now     Time
	events  eventHeap
	free    []*event // recycled records, capped at maxFree
	dead    int      // stopped events still sitting in the heap
	seq     uint64   // monotonically increasing tie-breaker
	stopped bool
	// Executed counts the number of events dispatched so far; it is
	// exposed for tests and for runaway-simulation guards.
	Executed uint64
	// Limit, when non-zero, aborts Run with an error after that many
	// events. It protects against accidental infinite event loops.
	Limit uint64

	// Observability instruments, nil until Instrument is called. All
	// are nil-safe no-ops, so the hot path carries them unconditionally.
	obsFired   *obs.Counter
	obsSched   *obs.Counter
	obsStopped *obs.Counter
	obsHeap    *obs.Gauge

	// chk, when non-nil, verifies dispatch-order invariants (clock
	// monotonicity). Nil (the default) costs one pointer test per event.
	chk *check.Checker

	// Ranked-mode state (sharded runs only; see rank.go). When ranked
	// is false — every serial run — none of these fields are touched
	// and the calendar breaks ties with seq exactly as before.
	ranked   bool
	setupCtr *uint64  // shared across shards: global setup-slot order
	cur      rankMeta // coordinates of the currently executing event
	curNode  *Rank    // lazily created rank node for that event
	curK     uint64   // child slots handed out by that event so far
	inEvent  bool
	newRanks []*Rank // nodes created since the last barrier stamping
	tailGidx *uint64 // non-nil in serial-tail mode: stamp at creation
}

// Instrument attaches run-wide observability to the engine. Passing a
// nil registry detaches it (the default state). The recorded streams:
//
//	sim/events_fired      events dispatched by Step
//	sim/events_scheduled  events added by At/Schedule
//	sim/timers_stopped    successful Timer.Stop cancellations
//	sim/heap_depth        calendar depth high-watermark (incl. dead)
func (e *Engine) Instrument(reg *obs.Registry) {
	e.obsFired = reg.Counter("sim/events_fired")
	e.obsSched = reg.Counter("sim/events_scheduled")
	e.obsStopped = reg.Counter("sim/timers_stopped")
	e.obsHeap = reg.Gauge("sim/heap_depth")
}

// AttachCheck attaches a runtime invariant checker to the engine;
// passing nil detaches it (the default state). The engine verifies
// that dispatched event timestamps never run backwards.
func (e *Engine) AttachCheck(c *check.Checker) { e.chk = c }

// maxFree bounds the free list so a burst of scheduling does not pin
// memory for the rest of the run. Records beyond the cap are left to
// the garbage collector.
const maxFree = 4096

// compactMinDead is the floor below which Stop never triggers heap
// compaction; above it, compaction runs once dead events outnumber
// live ones, keeping the heap at most ~2× the live event count.
const compactMinDead = 64

// NewEngine returns an Engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// event is one calendar entry. Records are owned by the engine and
// recycled after they fire or are cancelled; outstanding Timer handles
// detect reuse through the generation counter.
type event struct {
	at      Time
	seq     uint64
	fn      func()
	eng     *Engine
	gen     uint32
	head    bool // AtHead event: wins timestamp ties against At events
	stopped bool

	// Ranked-mode lineage: the node of the event whose execution
	// scheduled this one (nil = setup slot) and the call index within
	// that execution. Unused (zero) on unranked engines.
	ctx *Rank
	k   uint64
}

// Timer is a handle to a scheduled event, used for cancellation. The
// zero Timer is valid and inert: Stop and Pending on it report false.
// A Timer whose event already fired is equally inert — the generation
// check makes Stop on a stale handle a no-op even though the engine
// has recycled the underlying record for a different event.
type Timer struct {
	ev  *event
	gen uint32
	at  Time
}

// Stop cancels the timer. It reports whether the timer was still
// pending (false if it had already fired or been stopped). The event
// record stays in the calendar, marked dead, and is dropped when it
// reaches the top of the heap — cancellation never pays a sift.
func (t Timer) Stop() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.stopped {
		return false
	}
	ev.stopped = true
	ev.fn = nil // release the closure immediately
	e := ev.eng
	e.obsStopped.Inc()
	e.dead++
	if e.dead > compactMinDead && e.dead > len(e.events)-e.dead {
		e.compact()
	}
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t Timer) Pending() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.stopped
}

// Deadline returns the time at which the timer fires (or fired).
func (t Timer) Deadline() Time { return t.at }

// Schedule runs fn after delay d. A negative delay is treated as zero
// (fn runs at the current instant, after already-queued events for
// this instant that were scheduled earlier).
func (e *Engine) Schedule(d Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At runs fn at absolute time t. Scheduling in the past panics: it is
// always a model bug.
func (e *Engine) At(t Time, fn func()) Timer {
	return e.schedule(t, fn, false)
}

func (e *Engine) schedule(t Time, fn func(), head bool) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.head = head
	if e.ranked {
		ev.ctx, ev.k = e.childSlot()
	}
	e.events.push(ev)
	e.obsSched.Inc()
	e.obsHeap.Update(int64(len(e.events)))
	return Timer{ev: ev, gen: ev.gen, at: t}
}

// AtHead runs fn at absolute time t, ahead of every At/Schedule event
// sharing that timestamp (AtHead events among themselves keep FIFO
// order). It exists for lazily scheduled flow arrivals: a schedule
// materialized before the run naturally holds lower sequence numbers
// than anything the run itself enqueues, so its arrivals win all
// timestamp ties — an arrival scheduled mid-run can only reproduce
// that order by jumping the tie-break. Like At, scheduling in the past
// panics.
func (e *Engine) AtHead(t Time, fn func()) Timer {
	return e.schedule(t, fn, true)
}

// alloc takes an event record off the free list, or makes one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{eng: e}
}

// recycle invalidates outstanding handles and returns the record to
// the free list (or the garbage collector once the list is full).
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.head = false
	ev.stopped = false
	ev.ctx = nil
	ev.k = 0
	if len(e.free) < maxFree {
		e.free = append(e.free, ev)
	}
}

// peek discards dead records until the earliest live event surfaces,
// returning nil when the calendar holds no live events.
func (e *Engine) peek() *event {
	for len(e.events) > 0 {
		ev := e.events[0]
		if !ev.stopped {
			return ev
		}
		e.events.popTop()
		e.dead--
		e.recycle(ev)
	}
	return nil
}

// Step executes the single earliest pending event. It reports false
// when the calendar holds no live events.
func (e *Engine) Step() bool {
	ev := e.peek()
	if ev == nil {
		return false
	}
	e.events.popTop()
	if e.chk != nil {
		e.chk.Monotonic("sim/engine", int64(e.now), int64(ev.at))
	}
	e.now = ev.at
	e.Executed++
	e.obsFired.Inc()
	fn := ev.fn
	if e.ranked {
		// The record is recycled before dispatch, so hold the event's
		// own coordinates for lazy rank-node creation in childSlot.
		e.cur = rankMeta{at: ev.at, head: ev.head, ctx: ev.ctx, k: ev.k}
		e.curNode = nil
		e.curK = 0
		e.inEvent = true
		e.recycle(ev)
		fn()
		e.inEvent = false
		return true
	}
	e.recycle(ev)
	fn()
	return true
}

// Run drains the calendar until it is empty or Stop is called.
func (e *Engine) Run() error {
	e.stopped = false
	for !e.stopped {
		if e.Limit > 0 && e.Executed >= e.Limit {
			return fmt.Errorf("sim: event limit %d exceeded at t=%v", e.Limit, e.now)
		}
		if !e.Step() {
			return nil
		}
	}
	return nil
}

// RunUntil processes events with timestamps <= deadline, then advances
// the clock to the deadline. Events scheduled beyond it stay queued.
func (e *Engine) RunUntil(deadline Time) error {
	e.stopped = false
	for !e.stopped {
		if e.Limit > 0 && e.Executed >= e.Limit {
			return fmt.Errorf("sim: event limit %d exceeded at t=%v", e.Limit, e.now)
		}
		ev := e.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}

// Stop makes Run return after the event currently executing.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of live (not cancelled) events queued.
func (e *Engine) Pending() int { return len(e.events) - e.dead }

// compact filters dead records out of the heap in one O(n) pass and
// re-establishes the heap property, bounding the memory cancelled
// events can hold.
func (e *Engine) compact() {
	live := e.events[:0]
	for _, ev := range e.events {
		if ev.stopped {
			e.recycle(ev)
			continue
		}
		live = append(live, ev)
	}
	for i := len(live); i < len(e.events); i++ {
		e.events[i] = nil
	}
	e.events = live
	e.dead = 0
	e.events.heapify()
}

// freeLen reports the free-list size (test hook).
func (e *Engine) freeLen() int { return len(e.free) }

// heapLen reports the calendar size including dead records (test hook).
func (e *Engine) heapLen() int { return len(e.events) }

// eventHeap is a 4-ary min-heap ordered by (time, head, seq): AtHead
// events sort before At events at the same instant, and seq breaks the
// remaining ties in FIFO scheduling order. Since every (time, seq) key
// is unique the pop order is a total order — runs are deterministic
// regardless of heap shape. The wider node fans out fewer cache-missed
// levels per sift than a binary heap, which is what the hot path pays.
type eventHeap []*event

func (h eventHeap) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.head != b.head {
		return a.head
	}
	if a.eng.ranked {
		// Sharded runs: break the tie with the cross-shard schedule
		// lineage instead of the shard-local seq (see rank.go).
		return rankLess(a.ctx, a.k, b.ctx, b.k)
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	h.siftUp(len(*h) - 1)
}

// popTop removes the minimum element. Callers peek h[0] first.
func (h *eventHeap) popTop() {
	old := *h
	n := len(old) - 1
	old[0] = old[n]
	old[n] = nil
	*h = old[:n]
	if n > 1 {
		h.siftDown(0)
	}
}

func (h eventHeap) siftUp(i int) {
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !h.less(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	ev := h[i]
	for {
		min := -1
		first := 4*i + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		min = first
		for c := first + 1; c < last; c++ {
			if h.less(h[c], h[min]) {
				min = c
			}
		}
		if !h.less(h[min], ev) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = ev
}

// heapify restores the heap property over the whole slice.
func (h eventHeap) heapify() {
	if len(h) < 2 {
		return
	}
	for i := (len(h) - 2) / 4; i >= 0; i-- {
		h.siftDown(i)
	}
}
