package sim

import (
	"container/heap"
	"fmt"
)

// Engine is the discrete-event simulation core. It owns the virtual
// clock and the pending-event calendar. All model components schedule
// callbacks on the engine; Run drains the calendar in time order.
//
// Engine is not safe for concurrent use: the whole simulation runs on
// one goroutine, which keeps event execution deterministic.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64 // monotonically increasing tie-breaker
	stopped bool
	// Executed counts the number of events dispatched so far; it is
	// exposed for tests and for runaway-simulation guards.
	Executed uint64
	// Limit, when non-zero, aborts Run with an error after that many
	// events. It protects against accidental infinite event loops.
	Limit uint64
}

// NewEngine returns an Engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Timer is a handle to a scheduled event, used for cancellation.
// A nil *Timer is valid and inert: Stop on it is a no-op.
type Timer struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index, -1 once popped or stopped
	stopped  bool
	engine   *Engine
	priority int8 // lower fires first among events at the same instant
}

// Stop cancels the timer. It reports whether the timer was still
// pending (false if it had already fired or been stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.stopped || t.index < 0 {
		return false
	}
	t.stopped = true
	heap.Remove(&t.engine.events, t.index)
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool { return t != nil && !t.stopped && t.index >= 0 }

// Deadline returns the time at which the timer fires (or fired).
func (t *Timer) Deadline() Time { return t.at }

// Schedule runs fn after delay d. A negative delay is treated as zero
// (fn runs at the current instant, after already-queued events for
// this instant that were scheduled earlier).
func (e *Engine) Schedule(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// At runs fn at absolute time t. Scheduling in the past panics: it is
// always a model bug.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	tm := &Timer{at: t, seq: e.seq, fn: fn, engine: e}
	heap.Push(&e.events, tm)
	return tm
}

// Step executes the single earliest pending event. It reports false
// when the calendar is empty.
func (e *Engine) Step() bool {
	if e.events.Len() == 0 {
		return false
	}
	tm := heap.Pop(&e.events).(*Timer)
	e.now = tm.at
	e.Executed++
	tm.fn()
	return true
}

// Run drains the calendar until it is empty or Stop is called.
func (e *Engine) Run() error {
	e.stopped = false
	for !e.stopped {
		if e.Limit > 0 && e.Executed >= e.Limit {
			return fmt.Errorf("sim: event limit %d exceeded at t=%v", e.Limit, e.now)
		}
		if !e.Step() {
			return nil
		}
	}
	return nil
}

// RunUntil processes events with timestamps <= deadline, then advances
// the clock to the deadline. Events scheduled beyond it stay queued.
func (e *Engine) RunUntil(deadline Time) error {
	e.stopped = false
	for !e.stopped {
		if e.Limit > 0 && e.Executed >= e.Limit {
			return fmt.Errorf("sim: event limit %d exceeded at t=%v", e.Limit, e.now)
		}
		if e.events.Len() == 0 || e.events[0].at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}

// Stop makes Run return after the event currently executing.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return e.events.Len() }

// eventHeap orders timers by (time, seq); seq breaks ties in FIFO
// scheduling order, which keeps runs deterministic.
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	tm := x.(*Timer)
	tm.index = len(*h)
	*h = append(*h, tm)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	tm := old[n-1]
	old[n-1] = nil
	tm.index = -1
	*h = old[:n-1]
	return tm
}
