package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(3*Microsecond, func() { got = append(got, 3) })
	e.Schedule(1*Microsecond, func() { got = append(got, 1) })
	e.Schedule(2*Microsecond, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != Time(3*Microsecond) {
		t.Fatalf("final time = %v, want 3µs", e.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*Microsecond, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events ran out of scheduling order: %v", got)
		}
	}
}

func TestAtHeadWinsTimestampTies(t *testing.T) {
	e := NewEngine()
	var got []string
	at := Time(5 * Microsecond)
	e.At(at, func() { got = append(got, "at1") })
	e.AtHead(at, func() { got = append(got, "head1") })
	e.At(at, func() { got = append(got, "at2") })
	e.AtHead(at, func() { got = append(got, "head2") })
	e.At(at.Add(Microsecond), func() { got = append(got, "later") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// AtHead events beat every At event at the same instant but keep
	// FIFO order among themselves; later timestamps still fire later.
	want := []string{"head1", "head2", "at1", "at2", "later"}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

func TestAtHeadStopAndRecycle(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.AtHead(Time(Microsecond), func() { fired = true })
	if !tm.Stop() {
		t.Fatal("pending AtHead timer must stop")
	}
	// The recycled record must not leak head status into a plain At.
	var got []string
	at := Time(2 * Microsecond)
	e.At(at, func() { got = append(got, "first") })
	e.At(at, func() { got = append(got, "second") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("stopped AtHead event fired")
	}
	if len(got) != 2 || got[0] != "first" {
		t.Fatalf("recycled head bit perturbed FIFO order: %v", got)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.Schedule(Microsecond, func() {
		fired = append(fired, e.Now())
		e.Schedule(Microsecond, func() {
			fired = append(fired, e.Now())
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != Time(Microsecond) || fired[1] != Time(2*Microsecond) {
		t.Fatalf("fired = %v", fired)
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	ran := false
	tm := e.Schedule(Millisecond, func() { ran = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true for a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("stopped timer fired")
	}
	var zero Timer
	if zero.Stop() {
		t.Fatal("zero timer Stop should be false")
	}
	if zero.Pending() {
		t.Fatal("zero timer should not be pending")
	}
}

func TestStopSemanticsUnderLazyDeletion(t *testing.T) {
	// A stopped timer reports Pending() == false immediately, and
	// Engine.Pending() does not count dead calendar entries even though
	// lazy deletion leaves them in the heap until they surface.
	e := NewEngine()
	var timers []Timer
	for i := 0; i < 10; i++ {
		timers = append(timers, e.Schedule(Duration(i+1)*Microsecond, func() {}))
	}
	if e.Pending() != 10 {
		t.Fatalf("pending = %d, want 10", e.Pending())
	}
	for i := 0; i < 5; i++ {
		if !timers[i].Stop() {
			t.Fatalf("Stop %d should report true", i)
		}
		if timers[i].Pending() {
			t.Fatalf("timer %d still pending after Stop", i)
		}
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d after 5 stops, want 5", e.Pending())
	}
	var fired int
	e.Schedule(20*Microsecond, func() { fired++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after drain, want 0", e.Pending())
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestStaleHandleIsInert(t *testing.T) {
	// After a timer fires, its record is recycled for later events; a
	// retained handle must not be able to stop the unrelated successor.
	e := NewEngine()
	tm := e.Schedule(Microsecond, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	ran := false
	fresh := e.Schedule(Microsecond, func() { ran = true })
	if tm.Stop() {
		t.Fatal("stale Stop should report false")
	}
	if tm.Pending() {
		t.Fatal("stale handle should not be pending")
	}
	if !fresh.Pending() {
		t.Fatal("stale Stop must not cancel the recycled event")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("successor event did not fire")
	}
}

func TestDrainedEngineRetainsNothing(t *testing.T) {
	// A drained engine must hold no live closure references: every
	// record is either on the bounded free list with a nil fn or was
	// released to the GC. This is the leak regression for the old
	// eventHeap, which kept popped *Timer slots reachable via the
	// backing array's capacity.
	e := NewEngine()
	const n = 3 * maxFree
	for i := 0; i < n; i++ {
		e.Schedule(Duration(i)*Microsecond, func() {})
	}
	for e.Step() {
	}
	if got := e.heapLen(); got != 0 {
		t.Fatalf("drained heap holds %d records", got)
	}
	if got := e.freeLen(); got > maxFree {
		t.Fatalf("free list = %d records, cap is %d", got, maxFree)
	}
	for _, ev := range e.free {
		if ev.fn != nil {
			t.Fatal("recycled record still references its callback")
		}
	}
}

func TestCancellationHeavyHeapCompacts(t *testing.T) {
	// Schedule-then-cancel churn (retransmission timers) must not grow
	// the calendar without bound: compaction keeps dead records at most
	// on par with live ones (plus the small fixed floor).
	e := NewEngine()
	keep := e.Schedule(Second, func() {})
	for i := 0; i < 100_000; i++ {
		e.Schedule(Millisecond, func() {}).Stop()
	}
	if got := e.heapLen(); got > 2*compactMinDead+2 {
		t.Fatalf("heap holds %d records after churn, want bounded", got)
	}
	if !keep.Pending() {
		t.Fatal("live timer lost during compaction")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStopMidHeap(t *testing.T) {
	// Cancel an event in the middle of the heap and check the rest
	// still fire in order.
	e := NewEngine()
	var got []int
	var timers []Timer
	for i := 0; i < 20; i++ {
		i := i
		timers = append(timers, e.Schedule(Duration(i+1)*Microsecond, func() { got = append(got, i) }))
	}
	timers[7].Stop()
	timers[13].Stop()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	prev := -1
	for _, v := range got {
		if v == 7 || v == 13 {
			t.Fatalf("cancelled event %d fired", v)
		}
		if v <= prev {
			t.Fatalf("out of order: %v", got)
		}
		prev = v
	}
	if len(got) != 18 {
		t.Fatalf("got %d events, want 18", len(got))
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var count int
	for i := 1; i <= 10; i++ {
		e.Schedule(Duration(i)*Millisecond, func() { count++ })
	}
	if err := e.RunUntil(Time(5 * Millisecond)); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != Time(5*Millisecond) {
		t.Fatalf("now = %v, want 5ms", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", e.Pending())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	var count int
	for i := 1; i <= 10; i++ {
		e.Schedule(Duration(i)*Millisecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestEventLimit(t *testing.T) {
	e := NewEngine()
	e.Limit = 100
	var tick func()
	tick = func() { e.Schedule(Microsecond, tick) }
	e.Schedule(0, tick)
	if err := e.Run(); err == nil {
		t.Fatal("expected event-limit error")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.At(0, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(-5, func() { ran = true })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran || e.Now() != 0 {
		t.Fatalf("negative delay should fire at t=0 (ran=%v now=%v)", ran, e.Now())
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal seeds must produce equal streams")
		}
	}
	c := NewRand(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRand(42).Split(uint64(i)).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds look correlated: %d collisions", same)
	}
}

func TestRandUniformBounds(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
		n := r.UniformInt(10, 20)
		if n < 10 || n > 20 {
			t.Fatalf("UniformInt out of range: %v", n)
		}
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(3.0)
	}
	mean := sum / n
	if math.Abs(mean-3.0) > 0.05 {
		t.Fatalf("Exp mean = %v, want ≈3.0", mean)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(5)
	f := func(n uint8) bool {
		size := int(n%64) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	if t0.Add(50) != Time(150) {
		t.Fatal("Add")
	}
	if Time(150).Sub(t0) != Duration(50) {
		t.Fatal("Sub")
	}
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatal("Seconds")
	}
	if (2 * Millisecond).Seconds() != 0.002 {
		t.Fatal("Seconds()")
	}
	if (1500 * Microsecond).Millis() != 1.5 {
		t.Fatal("Millis()")
	}
}
