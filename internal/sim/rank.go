package sim

// Ranked mode: cross-shard deterministic event ordering.
//
// The serial engine breaks timestamp ties with a single monotone seq
// counter — the global order of Schedule calls. A sharded run has no
// such global counter while shards execute concurrently, so ranked
// engines replace seq with a *schedule lineage*: every event records
// which event's execution scheduled it (ctx, a rank node standing for
// the parent event) and its call index within that execution (k).
// Comparing two lineages lexicographically — parent execution order
// first, then call index — reproduces the serial seq order exactly:
// the serial seq of an event is, by definition, the position of the
// Schedule call that created it, i.e. (execution position of its
// parent, call index), and execution position is itself (time, head,
// seq) — the same recursion.
//
// Rank nodes are created lazily, only when an executing event actually
// schedules a child. To keep chains from pinning the whole history in
// memory, the sharded coordinator stamps every node created during a
// window with a global index (gidx) at the window barrier, in serial
// execution order, and drops the node's parent pointer: any later
// comparison between stamped nodes is a single integer compare, and
// the chain behind them becomes garbage. This is sound because windows
// partition simulated time — two rank nodes with equal timestamps
// belong to the same window and are therefore stamped together, so a
// comparison never needs to walk past a stamped node.
type Rank struct {
	at   Time
	head bool
	ctx  *Rank
	k    uint64
	// gidx, when nonzero, is the node's position in the global serial
	// execution order; ctx is nil once it is assigned.
	gidx uint64
}

// rankLess orders two events by their schedule lineage: (c1, k1) and
// (c2, k2) are the events' (parent node, call index) pairs. A nil
// parent means the event was scheduled during setup (or injected by
// the coordinator with a setup slot); setup slots are globally ordered
// by k and precede every event-scheduled slot, mirroring how setup
// Schedule calls hold the smallest seq values in a serial run.
func rankLess(c1 *Rank, k1 uint64, c2 *Rank, k2 uint64) bool {
	if c1 == c2 {
		return k1 < k2
	}
	if c1 == nil {
		return true
	}
	if c2 == nil {
		return false
	}
	return rankNodeLess(c1, c2)
}

// rankNodeLess orders two distinct rank nodes by the execution order
// of the events they stand for.
func rankNodeLess(a, b *Rank) bool {
	if a.gidx != 0 && b.gidx != 0 {
		return a.gidx < b.gidx
	}
	if a.at != b.at {
		return a.at < b.at
	}
	if a.head != b.head {
		return a.head
	}
	// Same instant, same head class: both nodes are from the current
	// (unstamped) window — windows partition time, so a stamped node
	// can never tie on (at, head) with an unstamped one and both
	// parent pointers are still live here. Recurse into the lineages.
	return rankLess(a.ctx, a.k, b.ctx, b.k)
}

// rankMeta carries the executing event's own coordinates while its
// callback runs (the event record itself is recycled before dispatch).
type rankMeta struct {
	at   Time
	head bool
	ctx  *Rank
	k    uint64
}

// EnableRank switches the engine into ranked mode. setupCtr is the
// shared setup-slot counter: every Schedule call made outside event
// execution (fabric construction, fault arming, stored arrival
// scheduling) draws one slot from it, so setup order is global across
// all shards exactly like serial setup seq order. Must be called
// before anything is scheduled.
func (e *Engine) EnableRank(setupCtr *uint64) {
	e.ranked = true
	e.setupCtr = setupCtr
}

// childSlot allocates the next (parent node, call index) pair for a
// Schedule call on this engine. Outside event execution it burns a
// shared setup slot; inside, it lazily materializes the executing
// event's rank node and hands out consecutive call indices.
func (e *Engine) childSlot() (*Rank, uint64) {
	if !e.inEvent {
		k := *e.setupCtr
		*e.setupCtr++
		return nil, k
	}
	if e.curNode == nil {
		n := &Rank{at: e.cur.at, head: e.cur.head, ctx: e.cur.ctx, k: e.cur.k}
		if e.tailGidx != nil {
			// Serial-tail mode: events execute in global order one at a
			// time, so the node's position is known immediately and no
			// lineage needs to be retained.
			*e.tailGidx++
			n.gidx = *e.tailGidx
			n.ctx = nil
		} else {
			e.newRanks = append(e.newRanks, n)
		}
		e.curNode = n
	}
	k := e.curK
	e.curK++
	return e.curNode, k
}

// ChildSlot exposes slot allocation for cross-shard handoff capture: a
// port proxy that replaces a local Schedule call with a buffered
// handoff must consume the same slot the Schedule would have, so the
// delivered event sorts exactly where the serial engine would have put
// it.
func (e *Engine) ChildSlot() (*Rank, uint64) {
	if !e.ranked {
		panic("sim: ChildSlot on an unranked engine")
	}
	return e.childSlot()
}

// InjectAt schedules fn at absolute time t carrying an explicit rank —
// the cross-shard injection primitive. The caller supplies the (ctx,
// k) pair captured on the source shard (or a coordinator-built node),
// so the event sorts against the destination shard's own events
// exactly as it would have in a serial run.
func (e *Engine) InjectAt(t Time, head bool, ctx *Rank, k uint64, fn func()) {
	if !e.ranked {
		panic("sim: InjectAt on an unranked engine")
	}
	if t < e.now {
		panic("sim: injecting event before now")
	}
	e.seq++
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.head = head
	ev.ctx = ctx
	ev.k = k
	e.events.push(ev)
	e.obsSched.Inc()
	e.obsHeap.Update(int64(len(e.events)))
}

// TakeNewRanks returns the rank nodes created since the previous call,
// in creation order — which, within one window, is the shard's local
// execution order and therefore already sorted by (at, head, rank).
// The sharded coordinator merges these per-shard runs at each barrier
// to stamp global indices.
func (e *Engine) TakeNewRanks() []*Rank {
	out := e.newRanks
	e.newRanks = nil
	return out
}

// SetTailStamp switches node creation into immediate-stamp mode (see
// childSlot); ctr is the coordinator's global index counter. Pass nil
// to switch back.
func (e *Engine) SetTailStamp(ctr *uint64) { e.tailGidx = ctr }

// RunBefore executes every event with timestamp strictly below bound,
// then advances the clock to bound. It reports whether Stop was called
// (the run halts immediately after the stopping event). It is the
// per-window execution primitive of sharded runs: bound is the window
// end, and cross-shard lookahead guarantees no event below bound can
// still be injected.
func (e *Engine) RunBefore(bound Time) bool {
	e.stopped = false
	for !e.stopped {
		ev := e.peek()
		if ev == nil || ev.at >= bound {
			break
		}
		e.Step()
	}
	if e.now < bound {
		e.now = bound
	}
	return e.stopped
}

// NextEventKey returns the ordering key of the earliest live event, or
// ok=false when the calendar is empty. The sharded serial tail uses it
// to pick the globally least event across shards.
func (e *Engine) NextEventKey() (at Time, head bool, ctx *Rank, k uint64, ok bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false, nil, 0, false
	}
	return ev.at, ev.head, ev.ctx, ev.k, true
}

// Stopped reports whether Stop was called since the last Run variant
// started.
func (e *Engine) Stopped() bool { return e.stopped }

// AdvanceTo moves the clock forward to t without executing anything
// (no-op if the clock is already past t). The sharded runner uses it
// to land every shard on the run's final deadline, mirroring
// RunUntil's trailing clock advance.
func (e *Engine) AdvanceTo(t Time) {
	if e.now < t {
		e.now = t
	}
}
