package sim

import (
	"strings"
	"testing"

	"pase/internal/obs"
)

func TestNewShardedEngineErrors(t *testing.T) {
	if _, err := NewShardedEngine(0, Microsecond); err == nil {
		t.Error("0 shards: want error, got nil")
	}
	_, err := NewShardedEngine(2, 0)
	if err == nil {
		t.Fatal("zero lookahead: want error, got nil")
	}
	if !strings.Contains(err.Error(), "zero-propagation-delay") {
		t.Errorf("zero-lookahead error should explain the cut-edge constraint, got: %v", err)
	}
	if _, err := NewShardedEngine(2, -Microsecond); err == nil {
		t.Error("negative lookahead: want error, got nil")
	}
}

// pingPong bounces one event chain between two shards via Handoff for
// n hops, running the first parallelWindows barriers concurrently and
// the rest on the serial tail. It returns the hop timestamps in
// execution order. forceWorkers pins the worker-goroutine barrier path
// even on a single-core machine (where inline mode is the default).
func pingPong(t *testing.T, n, parallelWindows int, forceWorkers bool) []Time {
	t.Helper()
	const lookahead = 100
	se, err := NewShardedEngine(2, lookahead)
	if err != nil {
		t.Fatal(err)
	}
	if forceWorkers {
		se.inline = false
	}
	defer se.Close()

	var times []Time
	var step func(shard int, at Time)
	step = func(shard int, at Time) {
		times = append(times, at)
		if len(times) >= n {
			return
		}
		eng := se.Shard(shard)
		ctx, k := eng.ChildSlot()
		to := 1 - shard
		se.Handoff(shard, to, at+lookahead, ctx, k, func() { step(to, at+lookahead) })
	}
	se.Shard(0).At(0, func() { step(0, 0) })

	for w := 0; w < parallelWindows; w++ {
		at, ok := se.MinPendingTime()
		if !ok {
			break
		}
		se.StepWindow(at + lookahead)
	}
	se.RunTail(0, false)
	return times
}

func TestShardedPingPong(t *testing.T) {
	const hops = 64
	want := pingPong(t, hops, 0, false) // pure tail = serial reference
	if len(want) != hops {
		t.Fatalf("serial reference ran %d hops, want %d", len(want), hops)
	}
	for _, forceWorkers := range []bool{false, true} {
		for _, windows := range []int{1, 7, hops} {
			got := pingPong(t, hops, windows, forceWorkers)
			if len(got) != len(want) {
				t.Fatalf("windows=%d workers=%v: %d hops, want %d", windows, forceWorkers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("windows=%d workers=%v: hop %d at t=%d, want t=%d",
						windows, forceWorkers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestShardedStopInParallelWindowPanics(t *testing.T) {
	for _, forceWorkers := range []bool{false, true} {
		func() {
			se, err := NewShardedEngine(2, 100)
			if err != nil {
				t.Fatal(err)
			}
			if forceWorkers {
				se.inline = false
			}
			defer se.Close()
			eng := se.Shard(0)
			eng.At(10, func() { eng.Stop() })
			defer func() {
				if recover() == nil {
					t.Errorf("workers=%v: Stop inside a parallel window should panic at the barrier", forceWorkers)
				}
			}()
			se.StepWindow(100)
		}()
	}
}

func TestShardedObsCounters(t *testing.T) {
	const lookahead = 100
	se, err := NewShardedEngine(2, lookahead)
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	reg := obs.NewRegistry()
	se.Instrument(reg)

	var step func(shard int, at Time)
	hops := 0
	step = func(shard int, at Time) {
		hops++
		if hops >= 16 {
			return
		}
		ctx, k := se.Shard(shard).ChildSlot()
		to := 1 - shard
		se.Handoff(shard, to, at+lookahead, ctx, k, func() { step(to, at+lookahead) })
	}
	se.Shard(0).At(0, func() { step(0, 0) })
	for w := 0; w < 8; w++ {
		at, ok := se.MinPendingTime()
		if !ok {
			break
		}
		se.StepWindow(at + lookahead)
	}
	se.RunTail(0, false)

	snap := reg.Snapshot()
	counter := func(name string) int64 {
		v, ok := snap.Counters[name]
		if !ok {
			t.Fatalf("counter %q missing from snapshot", name)
		}
		return v
	}
	if counter("shard/windows") != 8 {
		t.Errorf("shard/windows = %d, want 8", counter("shard/windows"))
	}
	if counter("shard/handoffs") == 0 {
		t.Error("shard/handoffs = 0, want > 0")
	}
	if counter("shard/tail_events") == 0 {
		t.Error("shard/tail_events = 0, want > 0")
	}
	// Each ping-pong window leaves one shard with nothing to send.
	if counter("shard/null_windows") == 0 {
		t.Error("shard/null_windows = 0, want > 0")
	}
	counter("shard/stall_ns")   // presence check
	counter("shard/stall_ns/0") // per-shard split
	counter("shard/stall_ns/1")
}

// TestShardedHandoffAllocs pins the steady-state handoff capture path
// at zero allocations: once the outbox has grown, buffering and
// draining a cross-shard event must not allocate.
func TestShardedHandoffAllocs(t *testing.T) {
	se, err := NewShardedEngine(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	fn := func() {}
	for i := 0; i < 64; i++ {
		se.Handoff(0, 1, Time(i), nil, uint64(i), fn)
	}
	se.outbox[0] = se.outbox[0][:0]
	allocs := testing.AllocsPerRun(200, func() {
		se.Handoff(0, 1, 5, nil, 0, fn)
		se.outbox[0] = se.outbox[0][:0]
	})
	if allocs != 0 {
		t.Errorf("steady-state Handoff allocates %.1f times per op, want 0", allocs)
	}
}
