package sim

import "math"

// Rand is a small, fast, deterministic PRNG (SplitMix64 core). Every
// stochastic component of the simulator draws from its own Rand stream
// derived from the run seed, so adding a new consumer of randomness
// does not perturb the draws seen by existing ones.
type Rand struct {
	state uint64
}

// NewRand returns a stream seeded with seed.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives an independent child stream. The label keeps children
// with different purposes decorrelated even under equal seeds.
func (r *Rand) Split(label uint64) *Rand {
	return NewRand(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

// Uint64 returns the next 64 uniformly distributed random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// UniformInt returns a uniform int64 in the closed interval [lo, hi].
func (r *Rand) UniformInt(lo, hi int64) int64 {
	if hi < lo {
		panic("sim: UniformInt with hi < lo")
	}
	return lo + r.Int63n(hi-lo+1)
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed float64 with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// ExpDuration returns an exponentially distributed Duration with the
// given mean; it is the inter-arrival draw for Poisson processes.
func (r *Rand) ExpDuration(mean Duration) Duration {
	return Duration(r.Exp(float64(mean)))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
