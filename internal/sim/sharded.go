package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"pase/internal/obs"
)

// ShardedEngine runs one simulation across N Engine instances in
// parallel under classic conservative lookahead. The fabric is
// partitioned so shards interact only through links whose one-way
// propagation delay is at least the lookahead; that delay is then a
// hard causality bound — an event executed in the window [T, T+L) can
// affect another shard no earlier than T+L. The coordinator therefore
// advances every shard through synchronized windows of width L
// (a barrier-epoch protocol): workers drain their calendars up to the
// window end concurrently, then the coordinator stamps the window's
// rank nodes, releases buffered cross-shard handoffs, and opens the
// next window.
//
// Determinism: every event carries a schedule-lineage rank (rank.go)
// that totally orders timestamp ties exactly as the serial engine's
// seq counter would have, so a sharded run is byte-identical to the
// serial run at any shard count and any GOMAXPROCS.
//
// The tail of a run — where a Stop request can cut the calendar
// mid-window — executes serially: RunTail steps the globally least
// event one at a time, so the run halts at exactly the event the
// serial engine would have halted at.
type ShardedEngine struct {
	engs      []*Engine
	lookahead Duration
	setupCtr  uint64
	gidx      uint64
	now       Time // the last barrier; every shard clock is ≥ now

	// outbox[src] buffers the handoffs shard src captured during the
	// current window; only the src worker appends, so no locking.
	outbox [][]handoff
	// coordRanks are coordinator-built rank nodes (streamed arrival
	// chains) awaiting barrier stamping, in creation order.
	coordRanks []*Rank
	mergeBuf   []*Rank
	runsBuf    [][]*Rank

	tail    bool
	stopReq atomic.Bool

	// Worker synchronization: a spin barrier. The coordinator
	// publishes the window end, bumps epoch, and waits for every
	// worker's done counter to catch up; workers spin (with Gosched
	// back-off) between windows. Spinning keeps the per-window cost in
	// the hundreds of nanoseconds — windows are one link delay of
	// simulated time, so there are many.
	//
	// inline bypasses the workers entirely when only one OS thread can
	// run (GOMAXPROCS=1): the coordinator drains each shard's window on
	// its own goroutine, saving a context-switch round trip per window.
	// Execution within a window is shard-independent, so the results
	// are identical either way.
	inline      bool
	started     bool
	quitting    atomic.Bool
	epoch       atomic.Uint64
	windowEnd   atomic.Int64
	workerDone  []paddedU64
	workerState []workerState

	o struct {
		windows   *obs.Counter
		handoffs  *obs.Counter
		batch     *obs.Histogram
		nullWins  *obs.Counter
		stall     *obs.Counter
		tailEvs   *obs.Counter
		stallEach []*obs.Counter
	}
}

// handoff is one buffered cross-shard event: delivery time, the rank
// captured on the source shard, and the closure that performs the
// delivery on the destination shard.
type handoff struct {
	dst int
	at  Time
	ctx *Rank
	k   uint64
	fn  func()
}

// paddedU64 keeps per-worker done counters on distinct cache lines.
type paddedU64 struct {
	v atomic.Uint64
	_ [56]byte
}

// workerState is written by its worker before publishing done and read
// by the coordinator after observing done (the atomic pair orders the
// accesses).
type workerState struct {
	elapsed  time.Duration
	stopped  bool
	panicked any
	_        [24]byte
}

// NewShardedEngine builds n ranked engines under a shared setup
// counter. lookahead must be positive: it is the conservative
// synchronization window, normally the minimum one-way propagation
// delay over the partition's cut links. A zero-delay cut edge would
// force lockstep execution (every window empty), so construction fails
// fast instead of deadlocking — repartition so that no zero-delay link
// crosses shards.
func NewShardedEngine(n int, lookahead Duration) (*ShardedEngine, error) {
	if n < 1 {
		return nil, fmt.Errorf("sim: sharded engine needs at least 1 shard, got %d", n)
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: sharded engine needs positive lookahead, got %v: "+
			"a zero-propagation-delay cut edge gives zero lookahead and would force lockstep execution; "+
			"repartition so every cross-shard link has nonzero propagation delay", lookahead)
	}
	se := &ShardedEngine{
		lookahead:   lookahead,
		inline:      runtime.GOMAXPROCS(0) < 2,
		outbox:      make([][]handoff, n),
		workerDone:  make([]paddedU64, n),
		workerState: make([]workerState, n),
	}
	for i := 0; i < n; i++ {
		e := NewEngine()
		e.EnableRank(&se.setupCtr)
		se.engs = append(se.engs, e)
	}
	return se, nil
}

// Shards returns the number of shards.
func (se *ShardedEngine) Shards() int { return len(se.engs) }

// Shard returns shard i's engine. Model components (ports, stacks)
// are bound to exactly one shard's engine at construction time.
func (se *ShardedEngine) Shard(i int) *Engine { return se.engs[i] }

// Lookahead returns the conservative window width.
func (se *ShardedEngine) Lookahead() Duration { return se.lookahead }

// Now returns the last barrier time: every shard clock is at or past
// it.
func (se *ShardedEngine) Now() Time { return se.now }

// Instrument registers the shard/* observability streams:
//
//	shard/windows        barrier windows executed
//	shard/handoffs       cross-shard events delivered
//	shard/handoff_batch  per-(window, destination) handoff batch sizes
//	shard/null_windows   (window, source) pairs with no handoffs — the
//	                     barrier-epoch analogue of a null message
//	shard/stall_ns       wall time shards spent waiting at barriers
//	shard/stall_ns/<i>   the same, split per shard
//	shard/tail_events    events executed by the serial tail
func (se *ShardedEngine) Instrument(reg *obs.Registry) {
	se.o.windows = reg.Counter("shard/windows")
	se.o.handoffs = reg.Counter("shard/handoffs")
	se.o.batch = reg.Histogram("shard/handoff_batch")
	se.o.nullWins = reg.Counter("shard/null_windows")
	se.o.stall = reg.Counter("shard/stall_ns")
	se.o.tailEvs = reg.Counter("shard/tail_events")
	se.o.stallEach = se.o.stallEach[:0]
	for i := range se.engs {
		se.o.stallEach = append(se.o.stallEach, reg.Counter(fmt.Sprintf("shard/stall_ns/%d", i)))
	}
}

// SetupSlot allocates one shared setup slot for a coordinator-built
// event chain (streamed arrivals), mirroring the seq a serial setup
// Schedule call would have drawn.
func (se *ShardedEngine) SetupSlot() uint64 {
	k := se.setupCtr
	se.setupCtr++
	return k
}

// NewCoordRank builds a rank node for an event the coordinator models
// itself (a streamed arrival batch) and registers it for barrier
// stamping. at must fall inside the next window, and calls must come
// in event order.
func (se *ShardedEngine) NewCoordRank(at Time, head bool, ctx *Rank, k uint64) *Rank {
	n := &Rank{at: at, head: head, ctx: ctx, k: k}
	se.coordRanks = append(se.coordRanks, n)
	return n
}

// Handoff buffers one cross-shard event captured by shard src during
// the current window (or tail step). The (ctx, k) pair must come from
// the source engine's ChildSlot so the delivered event keeps its
// serial position; at must be at least one lookahead past the window
// start, which the propagation-delay bound guarantees.
func (se *ShardedEngine) Handoff(src, dst int, at Time, ctx *Rank, k uint64, fn func()) {
	se.outbox[src] = append(se.outbox[src], handoff{dst: dst, at: at, ctx: ctx, k: k, fn: fn})
}

// RequestStop asks the run to halt. During the serial tail this cuts
// the run immediately after the current event, exactly like a serial
// Engine.Stop; a request during the parallel phase is a protocol
// violation (the runner must switch to the tail before any stop
// condition can fire) and panics at the next barrier.
func (se *ShardedEngine) RequestStop() { se.stopReq.Store(true) }

// StopRequested reports whether RequestStop was called.
func (se *ShardedEngine) StopRequested() bool { return se.stopReq.Load() }

// MinPendingTime returns the earliest pending event time across all
// shards. Valid only between windows (workers quiescent).
func (se *ShardedEngine) MinPendingTime() (Time, bool) {
	var best Time
	ok := false
	for _, e := range se.engs {
		if at, _, _, _, live := e.NextEventKey(); live {
			if !ok || at < best {
				best, ok = at, true
			}
		}
	}
	return best, ok
}

// StepWindow runs every shard concurrently up to (excluding) end, then
// performs the barrier: stamp the window's rank nodes in global serial
// order and release the buffered cross-shard handoffs. end must be at
// most one lookahead past the earliest event that was pending when the
// window opened.
func (se *ShardedEngine) StepWindow(end Time) {
	if se.tail {
		panic("sim: StepWindow after RunTail")
	}
	if se.inline {
		for _, eng := range se.engs {
			if eng.RunBefore(end) {
				panic("sim: Stop during a parallel window — the runner must enter the serial tail before any stop condition can fire")
			}
		}
	} else {
		se.startWorkers()
		se.windowEnd.Store(int64(end))
		e := se.epoch.Add(1)
		var maxElapsed time.Duration
		for i := range se.workerDone {
			spins := 0
			for se.workerDone[i].v.Load() < e {
				spins++
				if spins > 256 {
					runtime.Gosched()
				}
			}
			st := &se.workerState[i]
			if st.panicked != nil {
				panic(st.panicked)
			}
			if st.stopped {
				panic("sim: Stop during a parallel window — the runner must enter the serial tail before any stop condition can fire")
			}
			if st.elapsed > maxElapsed {
				maxElapsed = st.elapsed
			}
		}
		for i := range se.workerState {
			stall := int64(maxElapsed - se.workerState[i].elapsed)
			se.o.stall.Add(stall)
			if se.o.stallEach != nil {
				se.o.stallEach[i].Add(stall)
			}
		}
	}
	if se.stopReq.Load() {
		panic("sim: stop requested during a parallel window — the runner must enter the serial tail before any stop condition can fire")
	}
	se.o.windows.Inc()
	se.stampBarrier()
	se.flushHandoffs()
	se.now = end
}

func (se *ShardedEngine) startWorkers() {
	if se.started {
		return
	}
	se.started = true
	for i := range se.engs {
		go se.worker(i)
	}
}

func (se *ShardedEngine) worker(i int) {
	eng := se.engs[i]
	var last uint64
	for {
		spins := 0
		for {
			e := se.epoch.Load()
			if e != last {
				last = e
				break
			}
			spins++
			if spins > 256 {
				runtime.Gosched()
			}
		}
		if se.quitting.Load() {
			se.workerDone[i].v.Store(last)
			return
		}
		bound := Time(se.windowEnd.Load())
		st := &se.workerState[i]
		t0 := time.Now()
		func() {
			defer func() {
				if r := recover(); r != nil {
					st.panicked = r
				}
			}()
			st.stopped = eng.RunBefore(bound)
		}()
		st.elapsed = time.Since(t0)
		se.workerDone[i].v.Store(last)
		if st.panicked != nil {
			return
		}
	}
}

// shutdownWorkers quiesces and terminates the worker goroutines; the
// coordinator owns every engine afterwards.
func (se *ShardedEngine) shutdownWorkers() {
	if !se.started {
		return
	}
	se.quitting.Store(true)
	e := se.epoch.Add(1)
	for i := range se.workerDone {
		spins := 0
		for se.workerDone[i].v.Load() < e {
			spins++
			if spins > 256 {
				runtime.Gosched()
			}
		}
	}
	se.started = false
}

// stampBarrier assigns global serial indices to every rank node
// created during the window. Each shard's nodes arrive in local
// execution order — already sorted — so a k-way merge by event order
// yields the global order. Indices and the parent-pointer drop are
// applied only after the full order is known: stamping a node
// mid-merge would cut a lineage other comparisons still walk.
func (se *ShardedEngine) stampBarrier() {
	runs := se.runsBuf[:0]
	for _, e := range se.engs {
		if ns := e.TakeNewRanks(); len(ns) > 0 {
			runs = append(runs, ns)
		}
	}
	if len(se.coordRanks) > 0 {
		runs = append(runs, se.coordRanks)
	}
	merged := se.mergeBuf[:0]
	for len(runs) > 0 {
		best := 0
		for r := 1; r < len(runs); r++ {
			if rankNodeLess(runs[r][0], runs[best][0]) {
				best = r
			}
		}
		merged = append(merged, runs[best][0])
		if runs[best] = runs[best][1:]; len(runs[best]) == 0 {
			runs[best] = runs[len(runs)-1]
			runs[len(runs)-1] = nil
			runs = runs[:len(runs)-1]
		}
	}
	for _, n := range merged {
		se.gidx++
		n.gidx = se.gidx
		n.ctx = nil
	}
	for i := range merged {
		merged[i] = nil
	}
	se.mergeBuf = merged[:0]
	se.runsBuf = runs[:0]
	se.coordRanks = se.coordRanks[:0]
}

// flushHandoffs injects every buffered cross-shard event into its
// destination shard. Injection order is irrelevant to execution order
// (the calendar is a total order over ranks); the batching is recorded
// per destination for observability.
func (se *ShardedEngine) flushHandoffs() {
	for src := range se.outbox {
		if len(se.outbox[src]) == 0 {
			se.o.nullWins.Inc()
			continue
		}
		for _, h := range se.outbox[src] {
			se.engs[h.dst].InjectAt(h.at, false, h.ctx, h.k, h.fn)
			se.o.handoffs.Inc()
		}
		se.o.batch.Observe(int64(len(se.outbox[src])))
		se.outbox[src] = se.outbox[src][:0]
	}
}

// EnterTail switches the run into exact serial execution: workers are
// terminated, outstanding rank nodes stamped, and from here on
// RunTail steps the globally least event one at a time on the
// coordinator goroutine.
func (se *ShardedEngine) EnterTail() {
	if se.tail {
		return
	}
	se.shutdownWorkers()
	se.stampBarrier()
	se.flushHandoffs()
	for _, e := range se.engs {
		e.SetTailStamp(&se.gidx)
	}
	se.tail = true
}

// RunTail drains the calendars serially: repeatedly execute the
// globally least event (by time, head flag, rank) until a stop is
// requested, the calendars empty, or — when hasDeadline — the next
// event lies beyond deadline. Cross-shard handoffs are released after
// every step, which is trivially safe: the coordinator is the only
// runner. Afterwards every shard clock is advanced to the deadline
// (mirroring RunUntil) or aligned on the latest shard.
func (se *ShardedEngine) RunTail(deadline Time, hasDeadline bool) {
	se.EnterTail()
	for !se.stopReq.Load() {
		best := -1
		var bAt Time
		var bHead bool
		var bCtx *Rank
		var bK uint64
		for i, e := range se.engs {
			at, head, ctx, k, ok := e.NextEventKey()
			if !ok {
				continue
			}
			if best == -1 || eventKeyLess(at, head, ctx, k, bAt, bHead, bCtx, bK) {
				best, bAt, bHead, bCtx, bK = i, at, head, ctx, k
			}
		}
		if best == -1 {
			break
		}
		if hasDeadline && bAt > deadline {
			break
		}
		eng := se.engs[best]
		eng.Step()
		se.o.tailEvs.Inc()
		if eng.Stopped() {
			se.stopReq.Store(true)
		}
		if len(se.outbox[best]) > 0 {
			for _, h := range se.outbox[best] {
				se.engs[h.dst].InjectAt(h.at, false, h.ctx, h.k, h.fn)
				se.o.handoffs.Inc()
			}
			se.outbox[best] = se.outbox[best][:0]
		}
	}
	if hasDeadline {
		for _, e := range se.engs {
			e.AdvanceTo(deadline)
		}
	}
	var latest Time
	for _, e := range se.engs {
		if e.Now() > latest {
			latest = e.Now()
		}
	}
	for _, e := range se.engs {
		e.AdvanceTo(latest)
	}
}

// eventKeyLess is the calendar order over (time, head, rank) keys.
func eventKeyLess(a1 Time, h1 bool, c1 *Rank, k1 uint64, a2 Time, h2 bool, c2 *Rank, k2 uint64) bool {
	if a1 != a2 {
		return a1 < a2
	}
	if h1 != h2 {
		return h1
	}
	return rankLess(c1, k1, c2, k2)
}

// Close terminates the worker goroutines without entering the tail
// (for aborted runs and tests).
func (se *ShardedEngine) Close() { se.shutdownWorkers() }

// Executed sums the events dispatched across every shard.
func (se *ShardedEngine) Executed() uint64 {
	var n uint64
	for _, e := range se.engs {
		n += e.Executed
	}
	return n
}
