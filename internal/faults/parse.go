package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"pase/internal/sim"
)

// Parse builds a Plan from the -faults spec grammar: semicolon-
// separated clauses, each a kind followed by comma-separated
// key=value pairs.
//
//	seed=42
//	linkdown:link=<id|*>,at=<dur>,for=<dur>[,every=<dur>]
//	loss:rate=<p>[,corrupt=<p>][,link=<id|*>][,class=any|data|ack|ctrl][,from=<dur>][,to=<dur>]
//	ctrl:[drop=<p>][,delay=<dur>][,from=<dur>][,to=<dur>]
//	crash:at=<dur>[,for=<dur>][,link=<id|*>][,every=<dur>]
//
// Durations use Go syntax ("10ms", "50us"); link=* (or an omitted
// link key) targets every link. An empty spec yields an empty plan.
// The result always passes Validate, and Plan.String round-trips
// through Parse.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q", v)
			}
			p.Seed = seed
			continue
		}
		kind, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("faults: clause %q: want kind:key=value,... or seed=N", clause)
		}
		kvs, err := parseKVs(rest)
		if err != nil {
			return nil, fmt.Errorf("faults: clause %q: %v", clause, err)
		}
		switch kind {
		case "linkdown":
			r := LinkFault{Link: -1}
			err = kvs.apply(map[string]func(string) error{
				"link":  func(v string) error { return parseLink(v, &r.Link) },
				"at":    func(v string) error { return parseDur(v, &r.At) },
				"for":   func(v string) error { return parseDur(v, &r.For) },
				"every": func(v string) error { return parseDur(v, &r.Every) },
			})
			p.Links = append(p.Links, r)
		case "loss":
			r := LossFault{Link: -1}
			err = kvs.apply(map[string]func(string) error{
				"link":    func(v string) error { return parseLink(v, &r.Link) },
				"class":   func(v string) error { var e error; r.Class, e = parseClass(v); return e },
				"rate":    func(v string) error { return parseProb(v, &r.Rate) },
				"corrupt": func(v string) error { return parseProb(v, &r.Corrupt) },
				"from":    func(v string) error { return parseDur(v, &r.From) },
				"to":      func(v string) error { return parseDur(v, &r.To) },
			})
			p.Loss = append(p.Loss, r)
		case "ctrl":
			var r CtrlFault
			err = kvs.apply(map[string]func(string) error{
				"drop":  func(v string) error { return parseProb(v, &r.Drop) },
				"delay": func(v string) error { return parseDur(v, &r.Delay) },
				"from":  func(v string) error { return parseDur(v, &r.From) },
				"to":    func(v string) error { return parseDur(v, &r.To) },
			})
			p.Ctrl = append(p.Ctrl, r)
		case "crash":
			r := CrashFault{Link: -1}
			err = kvs.apply(map[string]func(string) error{
				"link":  func(v string) error { return parseLink(v, &r.Link) },
				"at":    func(v string) error { return parseDur(v, &r.At) },
				"for":   func(v string) error { return parseDur(v, &r.For) },
				"every": func(v string) error { return parseDur(v, &r.Every) },
			})
			p.Crashes = append(p.Crashes, r)
		default:
			return nil, fmt.Errorf("faults: unknown clause kind %q (want linkdown, loss, ctrl or crash)", kind)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: clause %q: %v", clause, err)
		}
	}
	return p, p.Validate()
}

// String renders the plan in the spec grammar; Parse(p.String()) is
// the identity (the fuzz target's oracle).
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	for _, r := range p.Links {
		s := "linkdown:link=" + linkString(r.Link) + ",at=" + durString(r.At) + ",for=" + durString(r.For)
		if r.Every != 0 {
			s += ",every=" + durString(r.Every)
		}
		parts = append(parts, s)
	}
	for _, r := range p.Loss {
		s := "loss:link=" + linkString(r.Link) + ",class=" + r.Class.String() +
			",rate=" + probString(r.Rate)
		if r.Corrupt != 0 {
			s += ",corrupt=" + probString(r.Corrupt)
		}
		s += windowString(r.From, r.To)
		parts = append(parts, s)
	}
	for _, r := range p.Ctrl {
		s := "ctrl:drop=" + probString(r.Drop)
		if r.Delay != 0 {
			s += ",delay=" + durString(r.Delay)
		}
		s += windowString(r.From, r.To)
		parts = append(parts, s)
	}
	for _, r := range p.Crashes {
		s := "crash:link=" + linkString(r.Link) + ",at=" + durString(r.At) + ",for=" + durString(r.For)
		if r.Every != 0 {
			s += ",every=" + durString(r.Every)
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ";")
}

// kvList preserves the written order of one clause's pairs.
type kvList []struct{ k, v string }

func parseKVs(s string) (kvList, error) {
	var out kvList
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, pair := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("bad pair %q (want key=value)", pair)
		}
		out = append(out, struct{ k, v string }{k, v})
	}
	return out, nil
}

// apply dispatches each pair to its key's setter, rejecting unknown
// and duplicate keys.
func (kvs kvList) apply(setters map[string]func(string) error) error {
	seen := make(map[string]bool, len(kvs))
	for _, kv := range kvs {
		set, ok := setters[kv.k]
		if !ok {
			return fmt.Errorf("unknown key %q", kv.k)
		}
		if seen[kv.k] {
			return fmt.Errorf("duplicate key %q", kv.k)
		}
		seen[kv.k] = true
		if err := set(kv.v); err != nil {
			return err
		}
	}
	return nil
}

func parseLink(v string, out *int) error {
	if v == "*" {
		*out = -1
		return nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return fmt.Errorf("bad link %q (want a non-negative id or *)", v)
	}
	*out = n
	return nil
}

func parseDur(v string, out *sim.Duration) error {
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		return fmt.Errorf("bad duration %q", v)
	}
	*out = sim.DurationOf(d)
	return nil
}

func parseProb(v string, out *float64) error {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return fmt.Errorf("bad probability %q", v)
	}
	*out = f
	return nil
}

func linkString(l int) string {
	if l == -1 {
		return "*"
	}
	return strconv.Itoa(l)
}

// durString formats a duration so ParseDuration accepts it again
// (time.Duration.String output always round-trips).
func durString(d sim.Duration) string { return d.Std().String() }

func probString(p float64) string { return strconv.FormatFloat(p, 'g', -1, 64) }

func windowString(from, to sim.Duration) string {
	var s string
	if from != 0 {
		s += ",from=" + durString(from)
	}
	if to != 0 {
		s += ",to=" + durString(to)
	}
	return s
}
