package faults

import (
	"testing"

	"pase/internal/netem"
	"pase/internal/obs"
	"pase/internal/pkt"
	"pase/internal/sim"
)

// collector is a minimal netem.Node that records arrival times.
type collector struct {
	id   pkt.NodeID
	eng  *sim.Engine
	got  []*pkt.Packet
	when []sim.Time
}

func (c *collector) ID() pkt.NodeID { return c.id }
func (c *collector) Receive(p *pkt.Packet, _ *netem.Port) {
	c.got = append(c.got, p)
	c.when = append(c.when, c.eng.Now())
}

// rig builds a one-link network: src port -> dst collector at 1 Gbps
// (12µs per 1500B packet) with zero propagation delay.
func rig(eng *sim.Engine) (*netem.Port, *collector) {
	src := &collector{id: 1, eng: eng}
	dst := &collector{id: 2, eng: eng}
	a := netem.NewPort(eng, src, netem.NewDropTail(1000), netem.Gbps, 0)
	b := netem.NewPort(eng, dst, netem.NewDropTail(1000), netem.Gbps, 0)
	netem.Connect(a, b)
	return a, dst
}

func TestInjectorLinkOutageDelaysDelivery(t *testing.T) {
	eng := sim.NewEngine()
	port, dst := rig(eng)
	plan := &Plan{Links: []LinkFault{{Link: 0, At: 0, For: 100 * sim.Microsecond}}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	in := NewInjector(eng, plan, 1)
	reg := obs.NewRegistry()
	in.Instrument(reg)
	in.BindPort(0, port)
	in.Arm()
	// Send mid-outage: the packet must wait for the link to come back
	// at t=100µs, then serialize for 12µs.
	eng.Schedule(10*sim.Microsecond, func() {
		port.Send(&pkt.Packet{Size: 1500, Type: pkt.Data, Dst: 2})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(dst.got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(dst.got))
	}
	want := sim.Time(112 * sim.Microsecond)
	if dst.when[0] != want {
		t.Fatalf("arrival at %v, want %v", dst.when[0], want)
	}
	snap := reg.Snapshot()
	if snap.Counters["faults/link_down"] != 1 || snap.Counters["faults/link_up"] != 1 {
		t.Fatalf("outage counters = %v", snap.Counters)
	}
}

func TestInjectorRepeatingOutage(t *testing.T) {
	eng := sim.NewEngine()
	port, _ := rig(eng)
	plan := &Plan{Links: []LinkFault{{
		Link: -1, At: 0, For: 50 * sim.Microsecond, Every: 100 * sim.Microsecond}}}
	in := NewInjector(eng, plan, 1)
	reg := obs.NewRegistry()
	in.Instrument(reg)
	in.BindPort(0, port)
	in.Arm()
	// Stop the clock after 5 periods; each one downs and restores once.
	eng.At(sim.Time(450*sim.Microsecond), func() { eng.Stop() })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if down := snap.Counters["faults/link_down"]; down != 5 {
		t.Fatalf("link_down = %d, want 5", down)
	}
}

func TestInjectorClassedLoss(t *testing.T) {
	eng := sim.NewEngine()
	port, dst := rig(eng)
	plan := &Plan{Loss: []LossFault{{Link: -1, Class: DataClass, Rate: 1}}}
	in := NewInjector(eng, plan, 1)
	reg := obs.NewRegistry()
	in.Instrument(reg)
	in.BindPort(0, port)
	in.Arm()
	port.Send(&pkt.Packet{Size: 1500, Type: pkt.Data, Dst: 2})
	port.Send(&pkt.Packet{Size: 40, Type: pkt.Ack, Dst: 2})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// The data packet burns bandwidth but never arrives; the ACK does.
	if len(dst.got) != 1 || dst.got[0].Type != pkt.Ack {
		t.Fatalf("delivered %d packets (first type %v), want just the ACK", len(dst.got), dst.got[0].Type)
	}
	snap := reg.Snapshot()
	if snap.Counters["faults/drop_data"] != 1 || snap.Counters["faults/drop_ack"] != 0 {
		t.Fatalf("drop counters = %v", snap.Counters)
	}
}

func TestInjectorLossWindow(t *testing.T) {
	eng := sim.NewEngine()
	port, dst := rig(eng)
	plan := &Plan{Loss: []LossFault{{
		Link: -1, Rate: 1, From: 100 * sim.Microsecond, To: 200 * sim.Microsecond}}}
	in := NewInjector(eng, plan, 1)
	in.BindPort(0, port)
	in.Arm()
	for _, at := range []sim.Duration{0, 150 * sim.Microsecond, 300 * sim.Microsecond} {
		at := at
		eng.Schedule(at, func() { port.Send(&pkt.Packet{Size: 1500, Type: pkt.Data, Dst: 2}) })
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Only the packet transmitted inside [100µs, 200µs) is lost.
	if len(dst.got) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(dst.got))
	}
}

func TestInjectorCtrlFaults(t *testing.T) {
	eng := sim.NewEngine()
	in := NewInjector(eng, &Plan{Ctrl: []CtrlFault{{Drop: 1, Delay: 30 * sim.Microsecond}}}, 1)
	reg := obs.NewRegistry()
	in.Instrument(reg)
	if !in.DropRequest() || !in.DropResponse() {
		t.Fatal("drop=1 must drop both legs")
	}
	if d := in.CtrlExtraDelay(); d != 30*sim.Microsecond {
		t.Fatalf("extra delay = %v, want 30µs", d)
	}
	snap := reg.Snapshot()
	if snap.Counters["faults/ctrl_req_drop"] != 1 || snap.Counters["faults/ctrl_resp_drop"] != 1 ||
		snap.Counters["faults/ctrl_delayed"] != 1 {
		t.Fatalf("ctrl counters = %v", snap.Counters)
	}

	// Outside the rule's window nothing fires and no RNG draw happens.
	windowed := NewInjector(eng, &Plan{Ctrl: []CtrlFault{{
		Drop: 1, From: sim.Millisecond, To: 2 * sim.Millisecond}}}, 1)
	if windowed.DropRequest() || windowed.CtrlExtraDelay() != 0 {
		t.Fatal("rule fired outside its window")
	}
}

func TestInjectorDeterministicStream(t *testing.T) {
	draw := func(planSeed, runSeed uint64) []bool {
		eng := sim.NewEngine()
		in := NewInjector(eng, &Plan{Seed: planSeed,
			Ctrl: []CtrlFault{{Drop: 0.5}}}, runSeed)
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.DropRequest()
		}
		return out
	}
	same1, same2 := draw(3, 7), draw(3, 7)
	for i := range same1 {
		if same1[i] != same2[i] {
			t.Fatalf("draw %d differs between identical (planSeed, runSeed)", i)
		}
	}
	differs := func(a, b []bool) bool {
		for i := range a {
			if a[i] != b[i] {
				return true
			}
		}
		return false
	}
	if !differs(same1, draw(4, 7)) {
		t.Fatal("changing the plan seed never changed a draw")
	}
	if !differs(same1, draw(3, 8)) {
		t.Fatal("changing the run seed never changed a draw")
	}
}
