package faults

import (
	"strings"
	"testing"

	"pase/internal/pkt"
	"pase/internal/sim"
)

func TestParseFullGrammar(t *testing.T) {
	spec := "seed=7; linkdown:link=3,at=10ms,for=5ms,every=50ms; " +
		"loss:link=*,class=data,rate=0.01,corrupt=0.002,from=1ms,to=9ms; " +
		"ctrl:drop=0.2,delay=100us; crash:link=*,at=20ms,for=2ms,every=20ms"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 {
		t.Fatalf("seed = %d, want 7", p.Seed)
	}
	if len(p.Links) != 1 || len(p.Loss) != 1 || len(p.Ctrl) != 1 || len(p.Crashes) != 1 {
		t.Fatalf("rule counts = %d/%d/%d/%d, want 1 each",
			len(p.Links), len(p.Loss), len(p.Ctrl), len(p.Crashes))
	}
	ld := p.Links[0]
	if ld.Link != 3 || ld.At != 10*sim.Millisecond || ld.For != 5*sim.Millisecond || ld.Every != 50*sim.Millisecond {
		t.Fatalf("linkdown = %+v", ld)
	}
	lo := p.Loss[0]
	if lo.Link != -1 || lo.Class != DataClass || lo.Rate != 0.01 || lo.Corrupt != 0.002 ||
		lo.From != sim.Millisecond || lo.To != 9*sim.Millisecond {
		t.Fatalf("loss = %+v", lo)
	}
	ct := p.Ctrl[0]
	if ct.Drop != 0.2 || ct.Delay != 100*sim.Microsecond {
		t.Fatalf("ctrl = %+v", ct)
	}
	cr := p.Crashes[0]
	if cr.Link != -1 || cr.At != 20*sim.Millisecond || cr.For != 2*sim.Millisecond || cr.Every != 20*sim.Millisecond {
		t.Fatalf("crash = %+v", cr)
	}
}

func TestParseEmptyAndDefaults(t *testing.T) {
	for _, spec := range []string{"", "  ", ";;", " ; "} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if !p.Empty() {
			t.Fatalf("Parse(%q) not empty: %+v", spec, p)
		}
	}
	// An omitted link key targets every link.
	p, err := Parse("loss:rate=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if p.Loss[0].Link != -1 || p.Loss[0].Class != Any {
		t.Fatalf("defaults = %+v", p.Loss[0])
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		spec, want string
	}{
		{"bogus", "want kind:key=value"},
		{"flood:rate=1", "unknown clause kind"},
		{"loss:rate=1,frob=2", `unknown key "frob"`},
		{"loss:rate=0.1,rate=0.2", `duplicate key "rate"`},
		{"loss:rate=1.5", "outside [0, 1]"},
		{"loss:rate=NaN", "outside [0, 1]"},
		{"loss:rate=x", "bad probability"},
		{"loss:rate=0.1,link=-3", "bad link"},
		{"loss:rate=0.1,from=5ms,to=2ms", "is empty"},
		{"linkdown:link=1,at=1ms", "for > 0"},
		{"linkdown:link=1,at=1ms,for=1ms,every=1us", "below"},
		{"linkdown:link=1,at=-1ms,for=1ms", "bad duration"},
		{"ctrl:drop=0.1,delay=junk", "bad duration"},
		{"seed=abc", "bad seed"},
		{"crash:link=*,at=0s,every=5us", "below"},
	}
	for _, tc := range tests {
		_, err := Parse(tc.spec)
		if err == nil {
			t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.spec, tc.want)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("Parse(%q) error = %q, want substring %q", tc.spec, err, tc.want)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"seed=42",
		"linkdown:link=0,at=1ms,for=500us",
		"linkdown:link=*,at=0s,for=1ms,every=10ms",
		"loss:link=2,class=ack,rate=0.25",
		"loss:link=*,class=any,rate=0,corrupt=0.125,from=1ms",
		"ctrl:drop=0.5,delay=20us,from=1ms,to=2ms",
		"crash:link=*,at=5ms,for=0s,every=10ms",
		"seed=1;loss:link=*,class=data,rate=0.01;ctrl:drop=0.9",
	}
	for _, spec := range specs {
		p1, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		s1 := p1.String()
		p2, err := Parse(s1)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", s1, err)
		}
		if s2 := p2.String(); s1 != s2 {
			t.Fatalf("round trip diverged:\n  spec   %q\n  first  %q\n  second %q", spec, s1, s2)
		}
	}
}

func TestClassMatches(t *testing.T) {
	tests := []struct {
		c    Class
		t    pkt.Type
		want bool
	}{
		{Any, pkt.Data, true},
		{Any, pkt.Ctrl, true},
		{DataClass, pkt.Data, true},
		{DataClass, pkt.Ack, false},
		{AckClass, pkt.Ack, true},
		{AckClass, pkt.Probe, false},
		{CtrlClass, pkt.Probe, true},
		{CtrlClass, pkt.ProbeAck, true},
		{CtrlClass, pkt.Ctrl, true},
		{CtrlClass, pkt.Data, false},
	}
	for _, tc := range tests {
		if got := tc.c.Matches(tc.t); got != tc.want {
			t.Fatalf("%v.Matches(%v) = %v, want %v", tc.c, tc.t, got, tc.want)
		}
	}
}

func TestValidateHandBuiltPlans(t *testing.T) {
	if err := (*Plan)(nil).Validate(); err != nil {
		t.Fatalf("nil plan: %v", err)
	}
	if !(*Plan)(nil).Empty() {
		t.Fatal("nil plan should be empty")
	}
	bad := &Plan{Loss: []LossFault{{Link: 0, Rate: 2}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("rate 2 accepted")
	}
	ok := &Plan{Ctrl: []CtrlFault{{Drop: 1}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("drop 1: %v", err)
	}
	if ok.Empty() {
		t.Fatal("plan with a ctrl rule should not be empty")
	}
}
