package faults

import (
	"testing"
)

// FuzzFaultPlan throws arbitrary specs at the -faults parser. Two
// properties must hold for every input: the parser never panics, and
// any spec it accepts round-trips — Plan.String() re-parses to a plan
// with the identical canonical form, and the result passes Validate.
func FuzzFaultPlan(f *testing.F) {
	for _, seed := range []string{
		"",
		"seed=42",
		"linkdown:link=3,at=10ms,for=5ms,every=50ms",
		"loss:link=*,class=data,rate=0.01,corrupt=0.002,from=1ms,to=9ms",
		"ctrl:drop=0.2,delay=100us",
		"crash:link=*,at=20ms,for=2ms,every=20ms",
		"seed=7; loss:rate=1; ctrl:drop=1; linkdown:link=0,at=0s,for=1ms",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse(%q) accepted a plan Validate rejects: %v", spec, err)
		}
		s1 := p.String()
		p2, err := Parse(s1)
		if err != nil {
			t.Fatalf("Parse(%q) ok but re-Parse(%q) failed: %v", spec, s1, err)
		}
		if s2 := p2.String(); s1 != s2 {
			t.Fatalf("canonical form unstable for %q:\n  first  %q\n  second %q", spec, s1, s2)
		}
	})
}
