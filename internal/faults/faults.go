// Package faults is the deterministic fault-injection subsystem: a
// seed-driven FaultPlan schedules link down/up events, per-link
// probabilistic loss and corruption split by packet class, arbitration
// request/response drop and delay, and arbitrator crash/restart with
// soft-state wipe. An Injector built from the plan threads the faults
// into the network (netem port hooks), the event heap (scheduled
// outage and crash events) and the PASE control plane (the
// arbitration.ControlFaults interface).
//
// Every random decision draws from the plan's own seeded RNG stream,
// separate from the workload stream, so a nil, empty or
// non-interfering plan leaves a run byte-identical to a fault-free
// one.
package faults

import (
	"fmt"
	"math"

	"pase/internal/pkt"
	"pase/internal/sim"
)

// Class selects which packets a loss rule applies to.
type Class uint8

const (
	// Any matches every packet.
	Any Class = iota
	// DataClass matches payload-bearing data packets.
	DataClass
	// AckClass matches acknowledgements.
	AckClass
	// CtrlClass matches control traffic: probes, probe-acks and
	// explicit control messages.
	CtrlClass
)

// Matches reports whether a packet of the given type falls under the
// class.
func (c Class) Matches(t pkt.Type) bool {
	switch c {
	case Any:
		return true
	case DataClass:
		return t == pkt.Data
	case AckClass:
		return t == pkt.Ack
	case CtrlClass:
		return t == pkt.Probe || t == pkt.ProbeAck || t == pkt.Ctrl
	}
	return false
}

// String returns the spec-grammar name of the class.
func (c Class) String() string {
	switch c {
	case Any:
		return "any"
	case DataClass:
		return "data"
	case AckClass:
		return "ack"
	case CtrlClass:
		return "ctrl"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// parseClass inverts String.
func parseClass(s string) (Class, error) {
	switch s {
	case "any":
		return Any, nil
	case "data":
		return DataClass, nil
	case "ack":
		return AckClass, nil
	case "ctrl":
		return CtrlClass, nil
	}
	return Any, fmt.Errorf("faults: unknown packet class %q (want any, data, ack or ctrl)", s)
}

// LinkFault takes one directed link down for a window, optionally
// repeating. While down the port's transmitter is paused: packets
// accumulate in (and overflow) the egress queue and drain when the
// link comes back.
type LinkFault struct {
	// Link is the topology link ID; -1 means every link.
	Link int
	// At is when the link first goes down; For is the outage length.
	At, For sim.Duration
	// Every repeats the outage with this period (0 = once).
	Every sim.Duration
}

// LossFault drops (or corrupts) packets leaving a link's transmitter
// with a fixed probability. Corrupted packets differ from dropped ones
// only in accounting: both consume link bandwidth and never reach the
// receiver (a corrupted packet fails its checksum there).
type LossFault struct {
	// Link is the topology link ID; -1 means every link.
	Link int
	// Class restricts the rule to one packet class.
	Class Class
	// Rate is the per-packet drop probability in [0, 1].
	Rate float64
	// Corrupt is the per-packet corruption probability in [0, 1],
	// applied to packets that survived the drop draw.
	Corrupt float64
	// From / To bound the active window; To = 0 means open-ended.
	From, To sim.Duration
}

// CtrlFault drops or delays arbitration control messages. Drop is
// drawn independently for the request leg and the response leg of
// every remote arbitration exchange; Delay is added to each surviving
// leg's latency.
type CtrlFault struct {
	// Drop is the per-message loss probability in [0, 1].
	Drop float64
	// Delay is added one-way latency per surviving message.
	Delay sim.Duration
	// From / To bound the active window; To = 0 means open-ended.
	From, To sim.Duration
}

// CrashFault crashes an arbitrator: its soft state (flow table and
// cached allocations) is wiped and it stays unreachable until the
// restart, after which state rebuilds from subsequent refreshes.
type CrashFault struct {
	// Link is the arbitrator's link ID; -1 crashes every arbitrator.
	Link int
	// At is the crash instant; For is the downtime before restart
	// (0 = never restarts).
	At, For sim.Duration
	// Every repeats the crash with this period (0 = once).
	Every sim.Duration
}

// Plan is a complete, deterministic fault schedule for one run.
type Plan struct {
	// Seed drives the plan's private RNG stream. Two runs with equal
	// workload seeds and equal plans are identical; changing Seed
	// re-rolls only the fault draws.
	Seed uint64

	Links   []LinkFault
	Loss    []LossFault
	Ctrl    []CtrlFault
	Crashes []CrashFault
}

// Empty reports whether the plan injects nothing; RunPoint skips the
// injector entirely then, keeping the run bit-identical to a nil plan.
func (p *Plan) Empty() bool {
	return p == nil ||
		(len(p.Links) == 0 && len(p.Loss) == 0 && len(p.Ctrl) == 0 && len(p.Crashes) == 0)
}

// minRepeat bounds repeating rules: a sub-10µs period would flood the
// event heap with fault events.
const minRepeat = 10 * sim.Microsecond

// Validate checks every rule for in-range probabilities and sane
// windows. Parse calls it; hand-built plans should too.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	prob := func(v float64, what string) error {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("faults: %s %v outside [0, 1]", what, v)
		}
		return nil
	}
	link := func(l int, what string) error {
		if l < -1 {
			return fmt.Errorf("faults: %s link id %d (want >= 0, or -1 for all)", what, l)
		}
		return nil
	}
	for _, r := range p.Links {
		if err := link(r.Link, "linkdown"); err != nil {
			return err
		}
		if r.At < 0 || r.For <= 0 {
			return fmt.Errorf("faults: linkdown needs at >= 0 and for > 0 (got at=%v for=%v)", r.At, r.For)
		}
		if r.Every != 0 && r.Every < minRepeat {
			return fmt.Errorf("faults: linkdown repeat period %v below %v", r.Every, minRepeat)
		}
	}
	for _, r := range p.Loss {
		if err := link(r.Link, "loss"); err != nil {
			return err
		}
		if err := prob(r.Rate, "loss rate"); err != nil {
			return err
		}
		if err := prob(r.Corrupt, "corrupt rate"); err != nil {
			return err
		}
		if r.From < 0 || r.To < 0 || (r.To != 0 && r.To <= r.From) {
			return fmt.Errorf("faults: loss window [%v, %v) is empty", r.From, r.To)
		}
	}
	for _, r := range p.Ctrl {
		if err := prob(r.Drop, "ctrl drop"); err != nil {
			return err
		}
		if r.Delay < 0 {
			return fmt.Errorf("faults: negative ctrl delay %v", r.Delay)
		}
		if r.From < 0 || r.To < 0 || (r.To != 0 && r.To <= r.From) {
			return fmt.Errorf("faults: ctrl window [%v, %v) is empty", r.From, r.To)
		}
	}
	for _, r := range p.Crashes {
		if err := link(r.Link, "crash"); err != nil {
			return err
		}
		if r.At < 0 || r.For < 0 {
			return fmt.Errorf("faults: crash needs at >= 0 and for >= 0 (got at=%v for=%v)", r.At, r.For)
		}
		if r.Every != 0 && r.Every < minRepeat {
			return fmt.Errorf("faults: crash repeat period %v below %v", r.Every, minRepeat)
		}
	}
	return nil
}

// activeWindow reports whether now falls inside [from, to), with
// to = 0 meaning open-ended.
func activeWindow(now, from, to sim.Duration) bool {
	return now >= from && (to == 0 || now < to)
}
