package faults

import (
	"fmt"
	"sort"

	"pase/internal/netem"
	"pase/internal/obs"
	"pase/internal/pkt"
	"pase/internal/sim"
)

// streamLabel separates the fault RNG stream from every other seeded
// stream in a run (the workload uses runSeed+1 directly).
const streamLabel = 0xfa017

// Injector executes a Plan against one run: it installs port hooks for
// link outages and packet loss, schedules crash/restart events on the
// event heap, and answers the arbitration system's ControlFaults
// queries. All randomness comes from private streams derived from
// (runSeed, plan.Seed), so the workload stream never observes the
// plan. Each bound link draws from its own stream, keyed by link ID
// alone — loss draws on one link cannot perturb another link's
// sequence, which keeps fault behavior identical between serial and
// sharded runs regardless of the order links transmit in.
type Injector struct {
	eng     *sim.Engine
	plan    *Plan
	runSeed uint64
	rng     *sim.Rand // control-plane stream (stream index 0)

	// OmitCrashes skips arbitrator crash/restart timers in Arm.
	// Sharded runs arm them on one shard only, so the faults/arb_*
	// counters keep their serial totals after the per-shard merge.
	OmitCrashes bool

	// ports maps link ID -> transmitting port; bound keeps the IDs
	// sorted so link=-1 rules fire in a deterministic order.
	ports map[int]*netem.Port
	bound []int
	// blocked counts overlapping outages per link; the transmitter is
	// paused while > 0.
	blocked map[int]int

	// OnCrash / OnRestart are wired to the arbitration system's Crash
	// and Restore (link -1 = all arbitrators). Nil when the run has no
	// control plane (non-PASE protocols).
	OnCrash   func(link int)
	OnRestart func(link int)

	// OnLinkState fires on a link's up/down edges — once when the
	// first overlapping outage takes the link down and once when the
	// last one lifts, before queued packets resume draining. The
	// routing control loop subscribes here. It runs on the shard that
	// transmits on the link (the injector's engine).
	OnLinkState func(link int, down bool)

	// reg backs the lazily created per-link blackhole counters (nil
	// without Instrument).
	reg             *obs.Registry
	blackholedLink  map[int]*obs.Counter

	o struct {
		linkDown, linkUp            *obs.Counter
		dropData, dropAck, dropCtrl *obs.Counter
		corrupt                     *obs.Counter
		ctrlReqDrop, ctrlRespDrop   *obs.Counter
		ctrlDelayed                 *obs.Counter
		arbCrash, arbRestart        *obs.Counter
		blackholed                  *obs.Counter
	}
}

// NewInjector builds the injector for a validated plan. runSeed is the
// run's workload seed; the fault stream is split off it so the same
// plan replays identically under the same seed and re-rolls under a
// different plan Seed.
func NewInjector(eng *sim.Engine, plan *Plan, runSeed uint64) *Injector {
	return &Injector{
		eng:     eng,
		plan:    plan,
		runSeed: runSeed,
		rng:     faultStream(runSeed, plan.Seed, 0),
		ports:   make(map[int]*netem.Port),
		blocked: make(map[int]int),
	}
}

// faultStream derives an independent RNG stream for (runSeed,
// planSeed, index) from scratch — no shared parent state, so the
// stream a consumer gets never depends on how many other streams were
// created first. Index 0 is the control-plane stream; link i uses
// index i+1.
func faultStream(runSeed, planSeed, index uint64) *sim.Rand {
	return sim.NewRand(runSeed).Split(streamLabel ^ planSeed).Split(index)
}

// Instrument registers the faults/* counters. Safe to skip (all
// counters are nil-safe no-ops then).
func (in *Injector) Instrument(reg *obs.Registry) {
	in.o.linkDown = reg.Counter("faults/link_down")
	in.o.linkUp = reg.Counter("faults/link_up")
	in.o.dropData = reg.Counter("faults/drop_data")
	in.o.dropAck = reg.Counter("faults/drop_ack")
	in.o.dropCtrl = reg.Counter("faults/drop_ctrl")
	in.o.corrupt = reg.Counter("faults/corrupt")
	in.o.ctrlReqDrop = reg.Counter("faults/ctrl_req_drop")
	in.o.ctrlRespDrop = reg.Counter("faults/ctrl_resp_drop")
	in.o.ctrlDelayed = reg.Counter("faults/ctrl_delayed")
	in.o.arbCrash = reg.Counter("faults/arb_crash")
	in.o.arbRestart = reg.Counter("faults/arb_restart")
	in.o.blackholed = reg.Counter("faults/blackholed")
	in.reg = reg
}

// linkBlackholed returns (creating lazily) the per-link blackhole
// counter, so run manifests name exactly the links that blackholed.
func (in *Injector) linkBlackholed(link int) *obs.Counter {
	if in.blackholedLink == nil {
		in.blackholedLink = make(map[int]*obs.Counter)
	}
	c, ok := in.blackholedLink[link]
	if !ok {
		c = in.reg.Counter(fmt.Sprintf("faults/blackholed/link%d", link))
		in.blackholedLink[link] = c
	}
	return c
}

// BindPort attaches the injector to one directed link's transmitting
// port. Only ports some rule can actually touch get a hook, so
// unaffected links keep the zero-overhead fast path.
func (in *Injector) BindPort(link int, pt *netem.Port) {
	in.ports[link] = pt
	in.bound = append(in.bound, link)
	sort.Ints(in.bound)

	hooked := false
	var rules []*LossFault
	for i := range in.plan.Loss {
		r := &in.plan.Loss[i]
		if r.Link == -1 || r.Link == link {
			rules = append(rules, r)
		}
	}
	for _, r := range in.plan.Links {
		if r.Link == -1 || r.Link == link {
			hooked = true
		}
	}
	if hooked || len(rules) > 0 {
		pt.Faults = &portHook{
			in:    in,
			link:  link,
			rules: rules,
			rng:   faultStream(in.runSeed, in.plan.Seed, uint64(link)+1),
		}
	}
}

// Arm schedules every timed rule (outages and crashes) on the event
// heap. Call once, after all BindPort calls, before the run starts.
func (in *Injector) Arm() {
	for _, r := range in.plan.Links {
		r := r
		var fire func(at sim.Duration)
		fire = func(at sim.Duration) {
			in.eng.At(sim.Time(at), func() { in.setDown(r.Link, true) })
			in.eng.At(sim.Time(at+r.For), func() { in.setDown(r.Link, false) })
			if r.Every > 0 {
				next := at + r.Every
				in.eng.At(sim.Time(at), func() { fire(next) })
			}
		}
		fire(r.At)
	}
	if in.OmitCrashes {
		return
	}
	for _, r := range in.plan.Crashes {
		r := r
		var fire func(at sim.Duration)
		fire = func(at sim.Duration) {
			in.eng.At(sim.Time(at), func() { in.crash(r.Link) })
			if r.For > 0 {
				in.eng.At(sim.Time(at+r.For), func() { in.restart(r.Link) })
			}
			if r.Every > 0 {
				next := at + r.Every
				in.eng.At(sim.Time(at), func() { fire(next) })
			}
		}
		fire(r.At)
	}
}

// eachLink visits the bound links a rule targets, in sorted ID order.
func (in *Injector) eachLink(link int, fn func(id int, pt *netem.Port)) {
	if link != -1 {
		if pt, ok := in.ports[link]; ok {
			fn(link, pt)
		}
		return
	}
	for _, id := range in.bound {
		fn(id, in.ports[id])
	}
}

func (in *Injector) setDown(link int, down bool) {
	in.eachLink(link, func(id int, pt *netem.Port) {
		if down {
			in.blocked[id]++
			in.o.linkDown.Inc()
			if in.blocked[id] == 1 && in.OnLinkState != nil {
				in.OnLinkState(id, true)
			}
			return
		}
		in.blocked[id]--
		in.o.linkUp.Inc()
		if in.blocked[id] == 0 {
			if in.OnLinkState != nil {
				in.OnLinkState(id, false)
			}
			pt.Kick()
		}
	})
}

func (in *Injector) crash(link int) {
	in.o.arbCrash.Inc()
	if in.OnCrash != nil {
		in.OnCrash(link)
	}
}

func (in *Injector) restart(link int) {
	in.o.arbRestart.Inc()
	if in.OnRestart != nil {
		in.OnRestart(link)
	}
}

// now returns the current time as an offset for window checks.
func (in *Injector) now() sim.Duration { return sim.Duration(in.eng.Now()) }

// DropRequest implements arbitration.ControlFaults: one draw per
// active ctrl rule for the request leg of a remote exchange.
func (in *Injector) DropRequest() bool { return in.dropCtrl(in.o.ctrlReqDrop) }

// DropResponse implements arbitration.ControlFaults for the response
// leg.
func (in *Injector) DropResponse() bool { return in.dropCtrl(in.o.ctrlRespDrop) }

func (in *Injector) dropCtrl(c *obs.Counter) bool {
	now := in.now()
	for i := range in.plan.Ctrl {
		r := &in.plan.Ctrl[i]
		if r.Drop > 0 && activeWindow(now, r.From, r.To) && in.rng.Float64() < r.Drop {
			c.Inc()
			return true
		}
	}
	return false
}

// CtrlExtraDelay implements arbitration.ControlFaults: extra one-way
// latency added to each surviving control message.
func (in *Injector) CtrlExtraDelay() sim.Duration {
	var extra sim.Duration
	now := in.now()
	for i := range in.plan.Ctrl {
		r := &in.plan.Ctrl[i]
		if r.Delay > 0 && activeWindow(now, r.From, r.To) {
			extra += r.Delay
		}
	}
	if extra > 0 {
		in.o.ctrlDelayed.Inc()
	}
	return extra
}

// portHook is the per-port netem.PortFaults implementation.
type portHook struct {
	in    *Injector
	link  int
	rules []*LossFault
	// rng is the link's private loss/corruption stream.
	rng *sim.Rand
}

// Blocked pauses the transmitter while an outage holds the link down.
func (h *portHook) Blocked(*netem.Port) bool { return h.in.blocked[h.link] > 0 }

// Blackholed implements netem.BlackholeObserver: a packet was dropped
// at the egress queue because this link's outage had backed it up —
// distinguishable in the manifest from congestion overflow.
func (h *portHook) Blackholed(*netem.Port, *pkt.Packet) {
	h.in.o.blackholed.Inc()
	h.in.linkBlackholed(h.link).Inc()
}

// Lose discards or corrupts an already-serialized packet. Rules draw in
// plan order; zero-probability fields never consume a draw, so a
// zero-rate rule cannot perturb the fault stream.
func (h *portHook) Lose(_ *netem.Port, p *pkt.Packet) bool {
	now := h.in.now()
	for _, r := range h.rules {
		if !r.Class.Matches(p.Type) || !activeWindow(now, r.From, r.To) {
			continue
		}
		if r.Rate > 0 && h.rng.Float64() < r.Rate {
			h.dropCounter(p.Type).Inc()
			return true
		}
		if r.Corrupt > 0 && h.rng.Float64() < r.Corrupt {
			h.in.o.corrupt.Inc()
			return true
		}
	}
	return false
}

func (h *portHook) dropCounter(t pkt.Type) *obs.Counter {
	switch t {
	case pkt.Data:
		return h.in.o.dropData
	case pkt.Ack:
		return h.in.o.dropAck
	default:
		return h.in.o.dropCtrl
	}
}
