package metrics

import (
	"math"
	"sort"
	"testing"

	"pase/internal/sim"
)

// sketchDists are the sample shapes the differential suite covers:
// uniform and exponential spread, duplicate-heavy (few distinct
// values), and adversarial insert orders (sorted, reversed) that would
// break an order-sensitive estimator.
var sketchDists = []struct {
	name string
	gen  func(r *sim.Rand, n int) []int64
}{
	{"uniform", func(r *sim.Rand, n int) []int64 {
		out := make([]int64, n)
		for i := range out {
			out[i] = r.UniformInt(1, 50_000_000)
		}
		return out
	}},
	{"exponential", func(r *sim.Rand, n int) []int64 {
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(r.ExpDuration(5 * sim.Millisecond))
		}
		return out
	}},
	{"duplicate-heavy", func(r *sim.Rand, n int) []int64 {
		vals := []int64{0, 1, 77, 4096, 1_000_000, 123_456_789}
		out := make([]int64, n)
		for i := range out {
			out[i] = vals[r.Intn(len(vals))]
		}
		return out
	}},
	{"sorted", func(r *sim.Rand, n int) []int64 {
		out := make([]int64, n)
		for i := range out {
			out[i] = r.UniformInt(0, 1_000_000_000)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}},
	{"reversed", func(r *sim.Rand, n int) []int64 {
		out := make([]int64, n)
		for i := range out {
			out[i] = r.UniformInt(0, 1_000_000_000)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
		return out
	}},
}

// checkQuantile asserts the sketch estimate is within the sketch's
// relative error of the exact nearest-rank percentile (+1 for integer
// rounding in the exact-bucket region).
func checkQuantile(t *testing.T, s *QuantileSketch, sorted []sim.Duration, p float64) {
	t.Helper()
	got := s.Quantile(p)
	want := int64(Percentile(sorted, p))
	tol := s.Epsilon()*float64(want) + 1
	if math.Abs(float64(got-want)) > tol {
		t.Fatalf("p%g: sketch %d vs exact %d exceeds tolerance %g (n=%d)", p, got, want, tol, len(sorted))
	}
}

// TestSketchDifferential pins the streaming quantile path to the exact
// stored one: across distributions and sizes from 1 to 10^6 samples,
// every quantile the harness reports must agree with
// metrics.Percentile within the sketch's advertised error.
func TestSketchDifferential(t *testing.T) {
	sizes := []int{1, 2, 3, 10, 100, 1000, 10_000}
	if !testing.Short() {
		sizes = append(sizes, 1_000_000)
	}
	for _, d := range sketchDists {
		for _, n := range sizes {
			r := sim.NewRand(uint64(n)*31 + 7)
			vals := d.gen(r, n)
			s := NewQuantileSketch(0)
			sorted := make([]sim.Duration, n)
			for i, v := range vals {
				s.Add(v)
				sorted[i] = sim.Duration(v)
			}
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			for _, p := range []float64{0, 1, 25, 50, 75, 90, 99, 99.9, 100} {
				checkQuantile(t, s, sorted, p)
			}
			if s.Count() != int64(n) {
				t.Fatalf("%s/%d: count %d", d.name, n, s.Count())
			}
			if int64(sorted[0]) != s.Min() || int64(sorted[n-1]) != s.Max() {
				t.Fatalf("%s/%d: min/max %d/%d vs exact %v/%v",
					d.name, n, s.Min(), s.Max(), sorted[0], sorted[n-1])
			}
		}
	}
}

// TestSketchCustomEps verifies a looser ε still honors its own bound
// and a tighter one shrinks the error.
func TestSketchCustomEps(t *testing.T) {
	for _, eps := range []float64{0.05, 0.01, 0.001} {
		s := NewQuantileSketch(eps)
		if s.Epsilon() > eps {
			t.Fatalf("eps %g: sketch guarantees only %g", eps, s.Epsilon())
		}
		r := sim.NewRand(9)
		var sorted []sim.Duration
		for i := 0; i < 10_000; i++ {
			v := r.UniformInt(0, 1_000_000_000)
			s.Add(v)
			sorted = append(sorted, sim.Duration(v))
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, p := range []float64{50, 99} {
			checkQuantile(t, s, sorted, p)
		}
	}
}

func TestSketchEmptyAndEdge(t *testing.T) {
	s := NewQuantileSketch(0)
	if s.Quantile(50) != 0 || s.Count() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sketch must report zeros")
	}
	s.Add(-5) // clamped to 0
	s.Add(0)
	if s.Min() != 0 || s.Max() != 0 || s.Count() != 2 {
		t.Fatalf("negative clamp: min=%d max=%d count=%d", s.Min(), s.Max(), s.Count())
	}
	big := int64(math.MaxInt64)
	s.Add(big)
	if s.Max() != big || s.Quantile(100) != big {
		t.Fatalf("max sample: max=%d q100=%d", s.Max(), s.Quantile(100))
	}
}

// TestPercentileEmpty is the regression test for the historical
// empty-slice panic: no percentile of nothing is the zero duration.
func TestPercentileEmpty(t *testing.T) {
	for _, p := range []float64{0, 50, 100} {
		if got := Percentile(nil, p); got != 0 {
			t.Fatalf("Percentile(nil, %g) = %v, want 0", p, got)
		}
	}
}

// TestSketchMergeOrderIndependent verifies Merge is a commutative
// bucket-wise sum: any split/merge order over the same samples gives
// identical quantiles.
func TestSketchMergeOrderIndependent(t *testing.T) {
	r := sim.NewRand(3)
	parts := make([]*QuantileSketch, 4)
	for i := range parts {
		parts[i] = NewQuantileSketch(0)
	}
	whole := NewQuantileSketch(0)
	for i := 0; i < 40_000; i++ {
		v := int64(r.ExpDuration(2 * sim.Millisecond))
		parts[i%4].Add(v)
		whole.Add(v)
	}
	ab := NewQuantileSketch(0)
	for _, i := range []int{0, 1, 2, 3} {
		ab.Merge(parts[i])
	}
	ba := NewQuantileSketch(0)
	for _, i := range []int{3, 1, 0, 2} {
		ba.Merge(parts[i])
	}
	for _, p := range []float64{0, 10, 50, 90, 99, 100} {
		if ab.Quantile(p) != ba.Quantile(p) || ab.Quantile(p) != whole.Quantile(p) {
			t.Fatalf("p%g: merge orders disagree: %d / %d / whole %d",
				p, ab.Quantile(p), ba.Quantile(p), whole.Quantile(p))
		}
	}
	if ab.Count() != whole.Count() || ab.BucketsUsed() != whole.BucketsUsed() {
		t.Fatalf("merged state diverges: count %d/%d used %d/%d",
			ab.Count(), whole.Count(), ab.BucketsUsed(), whole.BucketsUsed())
	}
}

func TestSketchMergeEpsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging sketches with different eps must panic")
		}
	}()
	NewQuantileSketch(0.1).Merge(mustAdd(NewQuantileSketch(0.001), 1))
}

func mustAdd(s *QuantileSketch, v int64) *QuantileSketch {
	s.Add(v)
	return s
}

// TestStreamCollectorMatchesCollector runs identical records through
// both sinks: everything but P50/P99 must match exactly, and those
// must be within the sketch's ε.
func TestStreamCollectorMatchesCollector(t *testing.T) {
	r := sim.NewRand(11)
	stored := NewCollector()
	stream := NewStreamCollector(0)
	for i := 0; i < 20_000; i++ {
		start := sim.Time(r.UniformInt(0, int64(sim.Second)))
		fct := r.ExpDuration(3 * sim.Millisecond)
		rec := FlowRecord{
			ID:     uint64(i + 1),
			Size:   r.UniformInt(1000, 100_000),
			Start:  start,
			Finish: start.Add(fct),
			Done:   i%97 != 0, // sprinkle unfinished flows
			Retx:   i % 5,
		}
		if i%7 == 0 {
			rec.Deadline = start.Add(4 * sim.Millisecond)
		}
		stored.Add(rec)
		stream.Add(rec)
	}
	a, b := stored.Summarize(), stream.Summarize()
	if a.Flows != b.Flows || a.Completed != b.Completed || a.AFCT != b.AFCT ||
		a.MaxFCT != b.MaxFCT || a.Retx != b.Retx || a.Timeouts != b.Timeouts ||
		a.DeadlineFlows != b.DeadlineFlows || a.AppThroughput != b.AppThroughput {
		t.Fatalf("exact fields diverge:\nstored %+v\nstream %+v", a, b)
	}
	eps := stream.Sketch().Epsilon()
	for _, q := range []struct{ got, want sim.Duration }{{b.P50, a.P50}, {b.P99, a.P99}} {
		if math.Abs(float64(q.got-q.want)) > eps*float64(q.want)+1 {
			t.Fatalf("quantile %v vs exact %v beyond eps %g", q.got, q.want, eps)
		}
	}
	ca, cb := stored.CDF(64), stream.CDF(64)
	if len(ca) != len(cb) {
		t.Fatalf("CDF lengths %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i].Fraction != cb[i].Fraction {
			t.Fatalf("CDF grid diverges at %d: %v vs %v", i, ca[i].Fraction, cb[i].Fraction)
		}
		if math.Abs(float64(cb[i].Value-ca[i].Value)) > eps*float64(ca[i].Value)+1 {
			t.Fatalf("CDF value %d: %v vs %v beyond eps", i, cb[i].Value, ca[i].Value)
		}
	}
}

// TestStreamCollectorAddNoAllocs is the allocation regression gate for
// the streaming hot path.
func TestStreamCollectorAddNoAllocs(t *testing.T) {
	c := NewStreamCollector(0)
	rec := FlowRecord{ID: 1, Size: 1000, Finish: sim.Time(3 * sim.Millisecond), Done: true}
	allocs := testing.AllocsPerRun(1000, func() {
		rec.ID++
		rec.Finish += 999
		c.Add(rec)
	})
	if allocs != 0 {
		t.Fatalf("StreamCollector.Add allocates %v times per record, want 0", allocs)
	}
}

func BenchmarkStreamCollectorAdd(b *testing.B) {
	c := NewStreamCollector(0)
	rec := FlowRecord{ID: 1, Size: 1000, Finish: sim.Time(3 * sim.Millisecond), Done: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Finish += 997
		c.Add(rec)
	}
}

func BenchmarkCollectorAdd(b *testing.B) {
	c := NewCollector()
	rec := FlowRecord{ID: 1, Size: 1000, Finish: sim.Time(3 * sim.Millisecond), Done: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Finish += 997
		c.Add(rec)
	}
}

// FuzzQuantileSketch feeds arbitrary byte strings as sample streams and
// checks the sketch's structural oracles: quantiles are monotone in p,
// bounded by the exact min/max, count bookkeeping holds, and splitting
// the stream at any point then merging in either order reproduces the
// unsplit sketch exactly.
func FuzzQuantileSketch(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(4))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, uint8(0))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 9, 9, 9, 9, 9, 9, 9, 9}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, splitAt uint8) {
		var vals []int64
		for i := 0; i+8 <= len(data); i += 8 {
			var v int64
			for j := 0; j < 8; j++ {
				v = v<<8 | int64(data[i+j])
			}
			if v < 0 {
				v = -v
			}
			if v < 0 { // MinInt64
				v = 0
			}
			vals = append(vals, v)
		}
		if len(vals) == 0 {
			return
		}
		whole := NewQuantileSketch(0)
		for _, v := range vals {
			whole.Add(v)
		}
		var mn, mx int64 = vals[0], vals[0]
		for _, v := range vals {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if whole.Min() != mn || whole.Max() != mx || whole.Count() != int64(len(vals)) {
			t.Fatalf("bookkeeping: min=%d/%d max=%d/%d count=%d/%d",
				whole.Min(), mn, whole.Max(), mx, whole.Count(), len(vals))
		}
		prev := int64(-1)
		for _, p := range []float64{0, 10, 25, 50, 75, 90, 99, 100} {
			q := whole.Quantile(p)
			if q < mn || q > mx {
				t.Fatalf("p%g=%d escapes [%d, %d]", p, q, mn, mx)
			}
			if q < prev {
				t.Fatalf("quantiles not monotone: p%g=%d < %d", p, q, prev)
			}
			prev = q
		}
		cut := int(splitAt) % len(vals)
		a, b := NewQuantileSketch(0), NewQuantileSketch(0)
		for _, v := range vals[:cut] {
			a.Add(v)
		}
		for _, v := range vals[cut:] {
			b.Add(v)
		}
		ab, ba := NewQuantileSketch(0), NewQuantileSketch(0)
		ab.Merge(a)
		ab.Merge(b)
		ba.Merge(b)
		ba.Merge(a)
		for _, p := range []float64{0, 50, 99, 100} {
			if ab.Quantile(p) != whole.Quantile(p) || ba.Quantile(p) != whole.Quantile(p) {
				t.Fatalf("p%g: split/merge diverges: ab=%d ba=%d whole=%d",
					p, ab.Quantile(p), ba.Quantile(p), whole.Quantile(p))
			}
		}
	})
}
