package metrics

import (
	"fmt"
	"math/bits"
)

// DefaultSketchEps is the relative quantile error the streaming
// collector guarantees when the caller does not choose one: 0.5%.
const DefaultSketchEps = 0.005

// QuantileSketch is a deterministic bounded-memory quantile estimator
// over non-negative int64 samples (FCT nanoseconds). It buckets values
// logarithmically with m mantissa bits per octave — the HDR-histogram
// scheme — so every estimate is within a configurable relative error ε
// of the exact nearest-rank value:
//
//   - values below 2^(m+1) land in exact unit buckets;
//   - larger values share a bucket with at most 2^-(m+1) ≤ ε relative
//     rounding, and the bucket's midpoint is reported.
//
// Unlike sampling sketches (GK, P²) the bucket layout is a pure
// function of ε, so Add order never matters, Merge is a commutative
// bucket-wise sum, and equal inputs give bit-equal state — the
// properties the simulator's determinism contract needs. Memory is
// fixed at allocation: (65-m)·2^m buckets (≈58 KB at the default ε).
//
// The zero value is not usable; call NewQuantileSketch.
type QuantileSketch struct {
	mbits  uint
	eps    float64
	count  int64
	min    int64
	max    int64
	used   int // buckets with a non-zero count
	counts []int64
}

// NewQuantileSketch returns an empty sketch with relative quantile
// error at most eps. eps <= 0 selects DefaultSketchEps; eps is clamped
// to [2^-21, 0.5].
func NewQuantileSketch(eps float64) *QuantileSketch {
	if eps <= 0 {
		eps = DefaultSketchEps
	}
	// Smallest m with 2^-(m+1) <= eps.
	m := uint(1)
	for m < 20 && 1/float64(int64(1)<<(m+1)) > eps {
		m++
	}
	return &QuantileSketch{
		mbits:  m,
		eps:    eps,
		min:    -1,
		counts: make([]int64, (65-int(m))<<m),
	}
}

// Epsilon returns the sketch's configured relative error bound.
func (s *QuantileSketch) Epsilon() float64 { return 1 / float64(int64(1)<<(s.mbits+1)) }

// Count returns how many samples have been added.
func (s *QuantileSketch) Count() int64 { return s.count }

// Min and Max return the exact extremes observed (0 when empty).
func (s *QuantileSketch) Min() int64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the exact maximum observed (0 when empty).
func (s *QuantileSketch) Max() int64 { return s.max }

// BucketsUsed returns how many buckets hold at least one sample.
func (s *QuantileSketch) BucketsUsed() int { return s.used }

// indexOf maps a sample to its bucket: shift*2^m + (v >> shift) where
// shift = max(0, bitlen(v)-m-1). The mapping is monotone and
// contiguous, and exact (unit buckets) for v < 2^(m+1).
func (s *QuantileSketch) indexOf(v int64) int {
	shift := bits.Len64(uint64(v)) - int(s.mbits) - 1
	if shift <= 0 {
		return int(v)
	}
	return shift<<s.mbits + int(uint64(v)>>shift)
}

// valueOf returns the representative (midpoint) of bucket idx.
func (s *QuantileSketch) valueOf(idx int) int64 {
	q := idx >> s.mbits
	if q <= 1 { // exact region: idx < 2^(m+1)
		return int64(idx)
	}
	shift := uint(q - 1)
	sub := int64(idx - int(shift)<<s.mbits)
	return sub<<shift + int64(1)<<(shift-1)
}

// Add records one sample. Negative samples are clamped to zero. The
// hot path is allocation-free.
func (s *QuantileSketch) Add(v int64) {
	if v < 0 {
		v = 0
	}
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.count++
	idx := s.indexOf(v)
	if s.counts[idx] == 0 {
		s.used++
	}
	s.counts[idx]++
}

// valueAtRank returns the representative value of the sample at the
// given 1-based rank (callers clamp rank into [1, count]), clamped to
// the exact [min, max] envelope.
func (s *QuantileSketch) valueAtRank(rank int64) int64 {
	var cum int64
	for idx, n := range s.counts {
		if n == 0 {
			continue
		}
		cum += n
		if cum >= rank {
			v := s.valueOf(idx)
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.max
}

// Quantile estimates the p-th percentile (nearest-rank, matching
// Percentile's semantics) within the sketch's relative error. It
// returns 0 on an empty sketch.
func (s *QuantileSketch) Quantile(p float64) int64 {
	if s.count == 0 {
		return 0
	}
	if p <= 0 {
		return s.min
	}
	if p >= 100 {
		return s.max
	}
	rank := int64(p / 100 * float64(s.count))
	if float64(rank) < p/100*float64(s.count) { // ceil
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > s.count {
		rank = s.count
	}
	return s.valueAtRank(rank)
}

// Merge folds other into s bucket-wise. Both sketches must share the
// same ε (bucket layout); Merge is commutative and associative, so any
// merge order over the same multiset of samples yields identical
// state.
func (s *QuantileSketch) Merge(other *QuantileSketch) {
	if other == nil || other.count == 0 {
		return
	}
	if other.mbits != s.mbits {
		panic(fmt.Sprintf("metrics: merging sketches with different eps (%d vs %d mantissa bits)", s.mbits, other.mbits))
	}
	if s.count == 0 || other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.count += other.count
	for idx, n := range other.counts {
		if n == 0 {
			continue
		}
		if s.counts[idx] == 0 {
			s.used++
		}
		s.counts[idx] += n
	}
}
