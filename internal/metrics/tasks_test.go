package metrics

import (
	"testing"

	"pase/internal/sim"
)

func taskRec(task uint64, start, finish sim.Time, done bool) FlowRecord {
	return FlowRecord{Task: task, Start: start, Finish: finish, Done: done, Size: 1}
}

func TestTasksGrouping(t *testing.T) {
	recs := []FlowRecord{
		taskRec(1, 10, 100, true),
		taskRec(1, 12, 150, true),
		taskRec(2, 20, 90, true),
		taskRec(0, 5, 500, true), // untasked: ignored
		taskRec(3, 30, 0, false), // incomplete flow
		taskRec(3, 31, 70, true),
	}
	tasks := Tasks(recs)
	if len(tasks) != 3 {
		t.Fatalf("tasks = %d, want 3", len(tasks))
	}
	if tasks[0].Task != 1 || tasks[0].Flows != 2 || tasks[0].Start != 10 || tasks[0].End != 150 || !tasks[0].Done {
		t.Fatalf("task 1 wrong: %+v", tasks[0])
	}
	if tasks[0].TCT() != 140 {
		t.Fatalf("task 1 TCT = %v", tasks[0].TCT())
	}
	if tasks[2].Done {
		t.Fatal("task 3 has an incomplete flow and must not be Done")
	}
}

func TestMeanTCT(t *testing.T) {
	tasks := []TaskRecord{
		{Task: 1, Start: 0, End: 100, Done: true},
		{Task: 2, Start: 0, End: 300, Done: true},
		{Task: 3, Start: 0, End: 900, Done: false}, // excluded
	}
	if got := MeanTCT(tasks); got != 200 {
		t.Fatalf("mean TCT = %v, want 200", got)
	}
	if MeanTCT(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestTaskOrderInversions(t *testing.T) {
	// Tasks 1,2,3 arrived in order; 3 finished before 2.
	tasks := []TaskRecord{
		{Task: 1, End: 100, Done: true},
		{Task: 2, End: 300, Done: true},
		{Task: 3, End: 200, Done: true},
	}
	if got := TaskOrderInversions(tasks); got != 1 {
		t.Fatalf("inversions = %d, want 1", got)
	}
	// Perfect FIFO: zero.
	fifo := []TaskRecord{
		{Task: 1, End: 1, Done: true},
		{Task: 2, End: 2, Done: true},
		{Task: 3, End: 3, Done: true},
	}
	if got := TaskOrderInversions(fifo); got != 0 {
		t.Fatalf("fifo inversions = %d, want 0", got)
	}
}
