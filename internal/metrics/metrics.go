// Package metrics collects and summarizes the quantities the paper's
// evaluation reports: flow completion times (average, tail percentiles,
// CDFs), application throughput (fraction of deadline flows finishing
// on time), data-plane loss rates, and arbitration control-plane
// overhead.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"pase/internal/sim"
)

// FlowRecord is the outcome of one finished (or abandoned) flow.
type FlowRecord struct {
	ID       uint64
	Task     uint64 // application-level task (0 = untasked)
	Size     int64
	Start    sim.Time
	Finish   sim.Time
	Deadline sim.Time // zero when the flow has no deadline
	Done     bool     // false if the flow never completed before the run ended
	Aborted  bool     // the transport killed the flow (progress deadline, early termination)
	Retx     int      // retransmitted segments
	Timeouts int
}

// FCT returns the flow completion time.
func (r FlowRecord) FCT() sim.Duration { return r.Finish.Sub(r.Start) }

// MetDeadline reports whether a deadline flow finished on time.
func (r FlowRecord) MetDeadline() bool {
	return r.Done && r.Deadline > 0 && r.Finish <= r.Deadline
}

// Sink is where finished-flow records land: the stored Collector
// (every record retained, exact statistics) or the bounded-memory
// StreamCollector (online statistics over a quantile sketch). The
// transport layer records through this interface so large runs can
// swap collectors without touching the data path.
type Sink interface {
	// Add records one finished (or abandoned) flow.
	Add(r FlowRecord)
	// Summarize condenses everything recorded so far.
	Summarize() Summary
	// CDF returns the empirical FCT distribution of completed flows,
	// downsampled to at most maxPoints evenly spaced quantiles.
	CDF(maxPoints int) []CDFPoint
}

// Collector accumulates flow records for one simulation run.
type Collector struct {
	records []FlowRecord
	// CtrlMessages counts arbitration control-plane messages
	// (requests and responses, per hop).
	CtrlMessages int64
	// CtrlBytes counts arbitration message bytes offered to the network.
	CtrlBytes int64
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{} }

// Add records one finished flow.
func (c *Collector) Add(r FlowRecord) { c.records = append(c.records, r) }

// Records returns everything collected so far.
func (c *Collector) Records() []FlowRecord { return c.records }

// Completed returns only the flows that finished.
func (c *Collector) Completed() []FlowRecord {
	out := make([]FlowRecord, 0, len(c.records))
	for _, r := range c.records {
		if r.Done {
			out = append(out, r)
		}
	}
	return out
}

// Summary condenses a run into the paper's headline numbers.
type Summary struct {
	Flows     int
	Completed int
	// Aborted counts flows the transport killed (progress-deadline
	// aborts, PDQ early termination). They are excluded from AFCT and
	// the percentiles, which run over completed flows only.
	Aborted int

	AFCT   sim.Duration // average FCT over completed flows
	P50    sim.Duration
	P99    sim.Duration
	MaxFCT sim.Duration

	// AppThroughput is the fraction of deadline-bearing flows that met
	// their deadline (deadline flows only; 0 when there are none).
	AppThroughput float64
	DeadlineFlows int

	Retx     int64
	Timeouts int64

	CtrlMessages int64
	CtrlBytes    int64
}

// Summarize computes a Summary over completed flows.
func (c *Collector) Summarize() Summary {
	s := Summary{Flows: len(c.records), CtrlMessages: c.CtrlMessages, CtrlBytes: c.CtrlBytes}
	var fcts []sim.Duration
	var met int
	for _, r := range c.records {
		s.Retx += int64(r.Retx)
		s.Timeouts += int64(r.Timeouts)
		if r.Deadline > 0 {
			s.DeadlineFlows++
			if r.MetDeadline() {
				met++
			}
		}
		if r.Aborted {
			s.Aborted++
		}
		if !r.Done {
			continue
		}
		s.Completed++
		fcts = append(fcts, r.FCT())
	}
	if s.DeadlineFlows > 0 {
		s.AppThroughput = float64(met) / float64(s.DeadlineFlows)
	}
	if len(fcts) == 0 {
		return s
	}
	sort.Slice(fcts, func(i, j int) bool { return fcts[i] < fcts[j] })
	var sum int64
	for _, d := range fcts {
		sum += int64(d)
	}
	s.AFCT = sim.Duration(sum / int64(len(fcts)))
	s.P50 = Percentile(fcts, 50)
	s.P99 = Percentile(fcts, 99)
	s.MaxFCT = fcts[len(fcts)-1]
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("flows=%d done=%d aborted=%d afct=%.3fms p99=%.3fms appTput=%.3f retx=%d timeouts=%d ctrlMsgs=%d",
		s.Flows, s.Completed, s.Aborted, s.AFCT.Millis(), s.P99.Millis(), s.AppThroughput, s.Retx, s.Timeouts, s.CtrlMessages)
}

// Percentile returns the p-th percentile (0 < p <= 100) of a sorted
// slice using the nearest-rank method. An empty slice has no
// percentiles; it yields the zero duration, mirroring how Summarize
// reports zero AFCT/P50/P99 for a run with no completed flows.
func Percentile(sorted []sim.Duration, p float64) sim.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	return sorted[rank-1]
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	Value    sim.Duration
	Fraction float64 // fraction of samples <= Value
}

// CDF computes the empirical CDF of the completed flows' FCTs,
// downsampled to at most maxPoints evenly spaced quantiles.
func (c *Collector) CDF(maxPoints int) []CDFPoint {
	var fcts []sim.Duration
	for _, r := range c.records {
		if r.Done {
			fcts = append(fcts, r.FCT())
		}
	}
	if len(fcts) == 0 {
		return nil
	}
	sort.Slice(fcts, func(i, j int) bool { return fcts[i] < fcts[j] })
	if maxPoints <= 0 || maxPoints > len(fcts) {
		maxPoints = len(fcts)
	}
	out := make([]CDFPoint, 0, maxPoints)
	for i := 1; i <= maxPoints; i++ {
		idx := i*len(fcts)/maxPoints - 1
		out = append(out, CDFPoint{
			Value:    fcts[idx],
			Fraction: float64(idx+1) / float64(len(fcts)),
		})
	}
	return out
}

// TaskRecord summarizes one application-level task (a group of flows
// sharing FlowRecord.Task).
type TaskRecord struct {
	Task  uint64
	Flows int
	Start sim.Time // earliest flow start
	End   sim.Time // latest flow finish
	Done  bool     // every flow completed
}

// TCT returns the task completion time.
func (t TaskRecord) TCT() sim.Duration { return t.End.Sub(t.Start) }

// Tasks groups flow records by task id (ignoring untasked flows) and
// returns the per-task summaries sorted by task id — the metric
// task-aware scheduling optimizes.
func Tasks(records []FlowRecord) []TaskRecord {
	byTask := make(map[uint64]*TaskRecord)
	for _, r := range records {
		if r.Task == 0 {
			continue
		}
		t, ok := byTask[r.Task]
		if !ok {
			t = &TaskRecord{Task: r.Task, Start: r.Start, End: r.Finish, Done: true}
			byTask[r.Task] = t
		}
		t.Flows++
		if r.Start < t.Start {
			t.Start = r.Start
		}
		if r.Finish > t.End {
			t.End = r.Finish
		}
		if !r.Done {
			t.Done = false
		}
	}
	out := make([]TaskRecord, 0, len(byTask))
	for _, t := range byTask {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	return out
}

// MeanTCT returns the mean completion time over completed tasks.
func MeanTCT(tasks []TaskRecord) sim.Duration {
	var sum int64
	var n int64
	for _, t := range tasks {
		if t.Done {
			sum += int64(t.TCT())
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sim.Duration(sum / n)
}

// TaskOrderInversions counts pairs of completed tasks that finished in
// the opposite order to their arrival — 0 means perfect FIFO service
// across tasks.
func TaskOrderInversions(tasks []TaskRecord) int {
	inv := 0
	for i := 0; i < len(tasks); i++ {
		if !tasks[i].Done {
			continue
		}
		for j := i + 1; j < len(tasks); j++ {
			if tasks[j].Done && tasks[j].End < tasks[i].End {
				inv++
			}
		}
	}
	return inv
}

// Mean returns the arithmetic mean of a slice of durations.
func Mean(ds []sim.Duration) sim.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum int64
	for _, d := range ds {
		sum += int64(d)
	}
	return sim.Duration(sum / int64(len(ds)))
}
