package metrics

import "pase/internal/sim"

var (
	_ Sink = (*Collector)(nil)
	_ Sink = (*StreamCollector)(nil)
)

// StreamCollector is the bounded-memory Sink for large runs: it keeps
// online aggregates (count, FCT sum, exact max, deadline hits,
// retransmission totals) plus a QuantileSketch for P50/P99 and
// downsampled CDFs, and never retains individual FlowRecords. Memory
// is O(1) in the number of flows and Add is allocation-free, so a
// 10^6-flow run costs the same heap as a 10^3-flow one.
//
// Relative to the stored Collector, Summarize differs only in P50/P99
// (within the sketch's ε) — Flows, Completed, AFCT, MaxFCT,
// AppThroughput, Retx and Timeouts are computed from the same exact
// sums.
type StreamCollector struct {
	sketch *QuantileSketch

	flows     int
	completed int
	aborted   int
	fctSum    int64
	maxFCT    sim.Duration

	deadlineFlows int
	deadlineMet   int

	retx     int64
	timeouts int64

	// CtrlMessages / CtrlBytes mirror Collector's arbitration
	// control-plane counters.
	CtrlMessages int64
	CtrlBytes    int64
}

// NewStreamCollector returns an empty streaming collector whose
// quantile estimates are within eps relative error (eps <= 0 selects
// DefaultSketchEps).
func NewStreamCollector(eps float64) *StreamCollector {
	return &StreamCollector{sketch: NewQuantileSketch(eps)}
}

// Sketch exposes the underlying quantile sketch (for observability
// scraping and invariant checks).
func (c *StreamCollector) Sketch() *QuantileSketch { return c.sketch }

// Completed returns how many completed flows were recorded.
func (c *StreamCollector) Completed() int { return c.completed }

// Add records one finished flow. It implements Sink and is
// allocation-free.
func (c *StreamCollector) Add(r FlowRecord) {
	c.flows++
	c.retx += int64(r.Retx)
	c.timeouts += int64(r.Timeouts)
	if r.Deadline > 0 {
		c.deadlineFlows++
		if r.MetDeadline() {
			c.deadlineMet++
		}
	}
	if r.Aborted {
		c.aborted++
	}
	if !r.Done {
		return
	}
	c.completed++
	fct := r.FCT()
	c.fctSum += int64(fct)
	if fct > c.maxFCT {
		c.maxFCT = fct
	}
	c.sketch.Add(int64(fct))
}

// Summarize implements Sink. AFCT and MaxFCT are exact (same integer
// arithmetic as the stored Collector); P50 and P99 come from the
// sketch.
func (c *StreamCollector) Summarize() Summary {
	s := Summary{
		Flows:         c.flows,
		Completed:     c.completed,
		Aborted:       c.aborted,
		DeadlineFlows: c.deadlineFlows,
		Retx:          c.retx,
		Timeouts:      c.timeouts,
		CtrlMessages:  c.CtrlMessages,
		CtrlBytes:     c.CtrlBytes,
	}
	if c.deadlineFlows > 0 {
		s.AppThroughput = float64(c.deadlineMet) / float64(c.deadlineFlows)
	}
	if c.completed == 0 {
		return s
	}
	s.AFCT = sim.Duration(c.fctSum / int64(c.completed))
	s.P50 = sim.Duration(c.sketch.Quantile(50))
	s.P99 = sim.Duration(c.sketch.Quantile(99))
	s.MaxFCT = c.maxFCT
	return s
}

// CDF implements Sink: the same evenly spaced rank grid as the stored
// Collector's CDF, with values read from the sketch (so each step is
// within ε of the exact one).
func (c *StreamCollector) CDF(maxPoints int) []CDFPoint {
	n := int64(c.completed)
	if n == 0 {
		return nil
	}
	if maxPoints <= 0 || int64(maxPoints) > n {
		maxPoints = int(n)
	}
	out := make([]CDFPoint, 0, maxPoints)
	for i := 1; i <= maxPoints; i++ {
		rank := int64(i) * n / int64(maxPoints)
		out = append(out, CDFPoint{
			Value:    sim.Duration(c.sketch.valueAtRank(rank)),
			Fraction: float64(rank) / float64(n),
		})
	}
	return out
}
