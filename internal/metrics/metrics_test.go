package metrics

import (
	"sort"
	"testing"
	"testing/quick"

	"pase/internal/sim"
)

func rec(id uint64, start, finish sim.Time, deadline sim.Time, done bool) FlowRecord {
	return FlowRecord{ID: id, Size: 1000, Start: start, Finish: finish, Deadline: deadline, Done: done}
}

func TestSummaryBasics(t *testing.T) {
	c := NewCollector()
	c.Add(rec(1, 0, sim.Time(2*sim.Millisecond), 0, true))
	c.Add(rec(2, 0, sim.Time(4*sim.Millisecond), 0, true))
	c.Add(rec(3, 0, 0, 0, false)) // incomplete
	s := c.Summarize()
	if s.Flows != 3 || s.Completed != 2 {
		t.Fatalf("flows=%d completed=%d", s.Flows, s.Completed)
	}
	if s.AFCT != 3*sim.Millisecond {
		t.Fatalf("AFCT = %v, want 3ms", s.AFCT)
	}
	if s.MaxFCT != 4*sim.Millisecond {
		t.Fatalf("MaxFCT = %v", s.MaxFCT)
	}
}

func TestDeadlineThroughput(t *testing.T) {
	c := NewCollector()
	d := sim.Time(10 * sim.Millisecond)
	c.Add(rec(1, 0, sim.Time(5*sim.Millisecond), d, true))  // met
	c.Add(rec(2, 0, sim.Time(15*sim.Millisecond), d, true)) // missed
	c.Add(rec(3, 0, 0, d, false))                           // never finished
	c.Add(rec(4, 0, sim.Time(1*sim.Millisecond), 0, true))  // no deadline
	s := c.Summarize()
	if s.DeadlineFlows != 3 {
		t.Fatalf("deadline flows = %d, want 3", s.DeadlineFlows)
	}
	if got, want := s.AppThroughput, 1.0/3.0; got != want {
		t.Fatalf("app throughput = %v, want %v", got, want)
	}
}

func TestPercentile(t *testing.T) {
	var ds []sim.Duration
	for i := 1; i <= 100; i++ {
		ds = append(ds, sim.Duration(i))
	}
	if Percentile(ds, 50) != 50 {
		t.Fatalf("p50 = %v", Percentile(ds, 50))
	}
	if Percentile(ds, 99) != 99 {
		t.Fatalf("p99 = %v", Percentile(ds, 99))
	}
	if Percentile(ds, 100) != 100 {
		t.Fatalf("p100 = %v", Percentile(ds, 100))
	}
	if Percentile(ds, 1) != 1 {
		t.Fatalf("p1 = %v", Percentile(ds, 1))
	}
	if Percentile([]sim.Duration{7}, 99) != 7 {
		t.Fatal("single-element percentile")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	f := func(raw []uint32, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ds := make([]sim.Duration, len(raw))
		for i, v := range raw {
			ds[i] = sim.Duration(v)
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := Percentile(ds, pa), Percentile(ds, pb)
		return va <= vb && va >= ds[0] && vb <= ds[len(ds)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	c := NewCollector()
	for i := 1; i <= 1000; i++ {
		c.Add(rec(uint64(i), 0, sim.Time(i)*sim.Time(sim.Microsecond), 0, true))
	}
	cdf := c.CDF(10)
	if len(cdf) != 10 {
		t.Fatalf("cdf points = %d, want 10", len(cdf))
	}
	if cdf[len(cdf)-1].Fraction != 1.0 {
		t.Fatalf("last fraction = %v, want 1", cdf[len(cdf)-1].Fraction)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
	if c2 := NewCollector().CDF(10); c2 != nil {
		t.Fatal("empty collector CDF should be nil")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
	if Mean([]sim.Duration{2, 4, 6}) != 4 {
		t.Fatal("mean wrong")
	}
}

func TestEmptySummarize(t *testing.T) {
	s := NewCollector().Summarize()
	if s.Flows != 0 || s.AFCT != 0 || s.AppThroughput != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}
