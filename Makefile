GO ?= go

.PHONY: build vet test race bench-smoke bench snapshot ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel point pool and the experiment determinism tests under
# the race detector; sim is included because the engine is what the
# pooled goroutines drive hardest.
race:
	$(GO) test -race ./internal/experiments/ ./internal/sim/

# One-iteration figure regenerations: catches perf cliffs and keeps
# the bench harness compiling without paying full bench time.
bench-smoke:
	$(GO) test -bench 'BenchmarkFig03|BenchmarkFig09a|BenchmarkFig10a' -benchtime 1x -run '^$$' .
	$(GO) test -bench . -benchtime 1000x -run '^$$' ./internal/sim/ ./internal/netem/

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/sim/ ./internal/netem/
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Record a BENCH_<date>.json perf snapshot (see cmd/benchsnap).
snapshot:
	$(GO) run ./cmd/benchsnap

ci: vet build test race bench-smoke
