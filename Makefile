GO ?= go

.PHONY: build vet test race check-test chaos-smoke scale-smoke shard-smoke trace-smoke fuzz-smoke highspeed-smoke te-smoke ctrlscale-smoke bench-smoke bench obs-bench manifest-sample snapshot ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel point pool and the experiment determinism tests under
# the race detector; sim is included because the engine is what the
# pooled goroutines drive hardest.
race:
	$(GO) test -race ./internal/experiments/ ./internal/sim/

# The full test suite with the runtime invariant checker force-enabled:
# every simulation any test runs is verified against the packet
# conservation / queue ordering / arbitration feasibility / FCT-bound
# invariants, and the first violation fails the run loudly.
check-test:
	PASE_CHECK=1 $(GO) test ./...

# A short randomized-fault soak under the forced invariant checker:
# PASE runs through link flaps, packet loss/corruption, a lossy slow
# control plane and periodic arbitrator crashes, and must finish every
# flow with zero invariant violations (plus the determinism re-run).
chaos-smoke:
	PASE_CHECK=1 $(GO) test -run 'TestChaos' -count=1 -v ./internal/experiments/

# The streaming scale sweep at 10^5 flows with invariants force-enabled
# and a hard 256 MB Go-heap ceiling: a dedicated test process (so no
# other test inflates the heap first) proving bounded-memory runs stay
# bounded. See TestScaleSmoke.
scale-smoke:
	PASE_CHECK=1 PASE_SCALE_SMOKE=1 $(GO) test -run 'TestScaleSmoke' -count=1 -v ./internal/experiments/

# Sharded-engine smoke: the serial-equality pins (digests, golden TSV,
# streaming, faults, GOMAXPROCS) under the forced invariant checker,
# the race detector over the worker-barrier machinery, and one
# 10^5-flow sharded streaming run end to end.
shard-smoke:
	PASE_CHECK=1 $(GO) test -run 'TestSharded' -count=1 -v ./internal/experiments/ ./internal/sim/
	$(GO) test -race -run 'TestSharded' -count=1 ./internal/experiments/ ./internal/sim/
	PASE_CHECK=1 $(GO) run ./cmd/pasesim -scenario leaf-spine-wide -protocol DCTCP -scale 100000 -load 0.6 -shards 4 -progress=false

# Flight-recorder smoke: the traced-run determinism pins (Perfetto
# bytes identical at shards 0-4, stream/stored, faulted chaos, golden
# trace) under the forced invariant checker, then one checked, sharded,
# streamed, faulted traced run end to end whose trace the pasetrace
# analyzer must validate and digest (exit 0).
trace-smoke:
	mkdir -p artifacts
	PASE_CHECK=1 $(GO) test -run 'TestTraced|TestPASETrace|TestTraceSampling|TestGoldenPerfetto' -count=1 -v ./internal/experiments/ ./internal/trace/
	PASE_CHECK=1 $(GO) run ./cmd/pasesim -protocol DCTCP -scenario left-right -load 0.7 -flows 2000 -shards 4 -stream -check \
		-faults "loss:rate=0.002" -trace artifacts/trace-smoke.json -progress=false
	$(GO) run ./cmd/pasetrace artifacts/trace-smoke.json

# Each fuzz target gets a short budget over its committed seed corpus
# (testdata/fuzz/) — a CI-sized smoke that still explores beyond the
# seeds. -fuzz accepts one target per invocation, hence one run each.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzPrioQueue$$' -fuzztime 10s ./internal/netem/
	$(GO) test -run '^$$' -fuzz '^FuzzPfabricQueue$$' -fuzztime 10s ./internal/netem/
	$(GO) test -run '^$$' -fuzz '^FuzzCreditQueue$$' -fuzztime 10s ./internal/netem/
	$(GO) test -run '^$$' -fuzz '^FuzzArbitrator$$' -fuzztime 10s ./internal/core/arbitration/
	$(GO) test -run '^$$' -fuzz '^FuzzArbitrationTree$$' -fuzztime 10s ./internal/core/arbitration/
	$(GO) test -run '^$$' -fuzz '^FuzzEmpiricalCDF$$' -fuzztime 10s ./internal/workload/
	$(GO) test -run '^$$' -fuzz '^FuzzFaultPlan$$' -fuzztime 10s ./internal/faults/
	$(GO) test -run '^$$' -fuzz '^FuzzQuantileSketch$$' -fuzztime 10s ./internal/metrics/

# ExpressPass conformance gate: the credit transport's digest suite
# (pinned digest, sharded equality at 0-4 shards, stream==stored,
# faulted chaos, incast regression, highspeed sweep) under the forced
# invariant checker — credit_pace included — then one checked
# 10^5-flow 100 Gbps incast run end to end.
highspeed-smoke:
	PASE_CHECK=1 $(GO) test -run 'TestConformanceDigest|TestShardedDigestEquality|TestExpressPass|TestHighspeed' -count=1 -v ./internal/experiments/
	PASE_CHECK=1 $(GO) run ./cmd/pasesim -protocol ExpressPass -scenario incast-256 -load 0.7 -flows 100000 -stream -check -progress=false

# Routing-control-loop gate: the route-table unit pins (clean == pure
# ECMP, minimal-churn failover, exact recovery, link-ID helpers), the
# te-failover survival + control-arm + sharded-equality + idle
# non-interference pins under the forced invariant checker
# (route_valid / route_loop included), then one checked rerouted run
# through a real uplink outage end to end.
te-smoke:
	PASE_CHECK=1 $(GO) test -run 'TestRouteTable|TestECMPSpine|TestLeafSpineLinkID|TestTE' -count=1 -v ./internal/topology/ ./internal/experiments/
	PASE_CHECK=1 $(GO) run ./cmd/pasesim -protocol PASE -scenario te-failover -load 0.6 -flows 2000 \
		-reroute -te -abort-after 100ms -faults "linkdown:link=80,at=3100us,for=250ms" -check -progress=false

# Arbitration-control-plane gate: the hierarchy unit suite and tree
# fuzzer seeds, the control-plane conformance pins (hierarchy /
# deep-hierarchy / centralized digests, shard equality, scaling
# acceptance) under the forced invariant checker, then one checked
# 512-rack run per arm end to end — the hierarchy at datacenter scale
# and the centralized comparison on the same fabric.
ctrlscale-smoke:
	PASE_CHECK=1 $(GO) test -run 'TestTree|FuzzArbitrationTree|TestCtrlPlane|TestCtrlScale' -count=1 -v ./internal/core/arbitration/ ./internal/experiments/
	PASE_CHECK=1 $(GO) run ./cmd/pasesim -protocol PASE -scenario ctrlscale-512 -load 0.6 -flows 2000 -check -progress=false
	PASE_CHECK=1 $(GO) run ./cmd/pasesim -protocol PASE -scenario ctrlscale-512 -load 0.6 -flows 2000 -ctrl central -check -progress=false

# One-iteration figure regenerations: catches perf cliffs and keeps
# the bench harness compiling without paying full bench time. The
# Fig09a pattern also covers BenchmarkFig09aObsOverhead and
# BenchmarkFig09aCheckOverhead, so the instrumented and checked paths
# are exercised too.
bench-smoke:
	$(GO) test -bench 'BenchmarkFig03|BenchmarkFig09a|BenchmarkFig10a' -benchtime 1x -run '^$$' .
	$(GO) test -bench . -benchtime 1000x -run '^$$' ./internal/sim/ ./internal/netem/

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/sim/ ./internal/netem/ ./internal/obs/
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# The observability hot path must stay allocation-free: -benchmem makes
# any stray allocation visible, and the package's own tests assert
# 0 allocs/op hard.
obs-bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/obs/

# A small end-to-end run that writes fig9a's TSV + run manifest into
# artifacts/ (CI uploads the manifest so every build carries a sample).
manifest-sample:
	$(GO) run ./cmd/paper -fig 9a -flows 120 -loads 0.5,0.8 -out artifacts -progress=false

# Record a BENCH_<date>.json perf snapshot (see cmd/benchsnap).
snapshot:
	$(GO) run ./cmd/benchsnap

ci: vet build test race check-test chaos-smoke scale-smoke shard-smoke trace-smoke fuzz-smoke highspeed-smoke te-smoke ctrlscale-smoke bench-smoke obs-bench
