GO ?= go

.PHONY: build vet test race bench-smoke bench obs-bench manifest-sample snapshot ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel point pool and the experiment determinism tests under
# the race detector; sim is included because the engine is what the
# pooled goroutines drive hardest.
race:
	$(GO) test -race ./internal/experiments/ ./internal/sim/

# One-iteration figure regenerations: catches perf cliffs and keeps
# the bench harness compiling without paying full bench time. The
# Fig09a pattern also covers BenchmarkFig09aObsOverhead, so the
# instrumented path is exercised too.
bench-smoke:
	$(GO) test -bench 'BenchmarkFig03|BenchmarkFig09a|BenchmarkFig10a' -benchtime 1x -run '^$$' .
	$(GO) test -bench . -benchtime 1000x -run '^$$' ./internal/sim/ ./internal/netem/

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/sim/ ./internal/netem/ ./internal/obs/
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# The observability hot path must stay allocation-free: -benchmem makes
# any stray allocation visible, and the package's own tests assert
# 0 allocs/op hard.
obs-bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/obs/

# A small end-to-end run that writes fig9a's TSV + run manifest into
# artifacts/ (CI uploads the manifest so every build carries a sample).
manifest-sample:
	$(GO) run ./cmd/paper -fig 9a -flows 120 -loads 0.5,0.8 -out artifacts -progress=false

# Record a BENCH_<date>.json perf snapshot (see cmd/benchsnap).
snapshot:
	$(GO) run ./cmd/benchsnap

ci: vet build test race bench-smoke obs-bench
