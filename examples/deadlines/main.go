// Deadline study: the paper's motivating experiment (Figures 1 and
// 9c). Flows of 100–500 KB carry 5–25 ms deadlines; the metric is
// application throughput — the fraction of flows that finish in time.
// Deadline-aware window tweaks (D2TCP) degrade toward plain DCTCP as
// load grows, while PASE's earliest-deadline-first arbitration keeps
// meeting deadlines.
//
//	go run ./examples/deadlines
package main

import (
	"fmt"
	"log"

	"pase"
)

func main() {
	protos := []pase.Protocol{pase.ProtocolDCTCP, pase.ProtocolD2TCP, pase.ProtocolPASE}

	fmt.Println("Deadline workload: 20-host rack, U[100,500] KB flows, 5-25 ms deadlines")
	fmt.Printf("%-8s", "load")
	for _, p := range protos {
		fmt.Printf(" %10s", p)
	}
	fmt.Println("   (fraction of deadlines met)")

	for _, load := range []float64{0.2, 0.4, 0.6, 0.8, 0.9} {
		fmt.Printf("%-7.0f%%", load*100)
		for _, p := range protos {
			rep, err := pase.Simulate(pase.SimConfig{
				Protocol: p,
				Scenario: pase.ScenarioDeadline,
				Load:     load,
				NumFlows: 600,
				Seed:     11,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %10.3f", rep.AppThroughput)
		}
		fmt.Println()
	}
}
