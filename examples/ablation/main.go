// Ablation tour: switch PASE's internal mechanisms off one at a time
// and watch what each contributes — the reference rate (Fig 13a), the
// control-plane optimizations (Fig 11), probing (§4.3.2), and the
// number of switch priority queues (Fig 12b).
//
//	go run ./examples/ablation
package main

import (
	"fmt"
	"log"

	"pase"
)

type variant struct {
	name string
	cfg  pase.PASEOptions
	scen pase.Scenario
	load float64
}

func main() {
	variants := []variant{
		{"full PASE (left-right, 80%)", pase.PASEOptions{}, pase.ScenarioLeftRight, 0.8},
		{"no pruning/delegation", pase.PASEOptions{NoPruning: true, NoDelegation: true}, pase.ScenarioLeftRight, 0.8},
		{"arbitrate access links only", pase.PASEOptions{LocalOnly: true}, pase.ScenarioLeftRight, 0.8},
		{"3 priority queues", pase.PASEOptions{NumQueues: 3}, pase.ScenarioLeftRight, 0.8},
		{"full PASE (rack, 40%)", pase.PASEOptions{}, pase.ScenarioIntraRackLarge, 0.4},
		{"no reference rate (PASE-DCTCP)", pase.PASEOptions{DisableRefRate: true}, pase.ScenarioIntraRackLarge, 0.4},
		{"full PASE (fan-in, 90%)", pase.PASEOptions{}, pase.ScenarioWorkerAgg, 0.9},
		{"no probing", pase.PASEOptions{DisableProbing: true}, pase.ScenarioWorkerAgg, 0.9},
		{"task-aware (FIFO across tasks)", pase.PASEOptions{TaskAware: true}, pase.ScenarioWorkerAgg, 0.9},
	}

	fmt.Printf("%-34s %12s %12s %10s\n", "variant", "AFCT", "p99 FCT", "ctrl msgs")
	for _, v := range variants {
		rep, err := pase.Simulate(pase.SimConfig{
			Protocol: pase.ProtocolPASE,
			Scenario: v.scen,
			Load:     v.load,
			NumFlows: 500,
			Seed:     5,
			PASE:     v.cfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %12v %12v %10d\n",
			v.name, rep.AFCT.Round(10_000), rep.P99.Round(10_000), rep.CtrlMessages)
	}
}
