// Quickstart: run one PASE simulation and print the metrics the paper
// reports — average and tail flow completion times, loss rate, and the
// arbitration control-plane overhead.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pase"
)

func main() {
	rep, err := pase.Simulate(pase.SimConfig{
		Protocol: pase.ProtocolPASE,
		Scenario: pase.ScenarioIntraRack, // 20-host rack, U[2,198] KB flows
		Load:     0.7,
		NumFlows: 1000,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("PASE on a 20-host rack at 70% load:")
	fmt.Printf("  flows completed   %d / %d\n", rep.Completed, rep.Flows)
	fmt.Printf("  average FCT       %v\n", rep.AFCT)
	fmt.Printf("  median FCT        %v\n", rep.P50)
	fmt.Printf("  99th-pct FCT      %v\n", rep.P99)
	fmt.Printf("  loss rate         %.3f%%\n", rep.LossRate*100)
	fmt.Printf("  control messages  %d\n", rep.CtrlMessages)

	// The same API runs any of the paper's baselines on the same
	// workload for a direct comparison.
	for _, p := range []pase.Protocol{pase.ProtocolDCTCP, pase.ProtocolPFabric} {
		r, err := pase.Simulate(pase.SimConfig{
			Protocol: p, Scenario: pase.ScenarioIntraRack,
			Load: 0.7, NumFlows: 1000, Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s on the identical workload: AFCT %v, p99 %v, loss %.3f%%\n",
			p, r.AFCT, r.P99, r.LossRate*100)
	}
}
