// Incast anatomy: the worker-aggregator scenario that motivates PASE's
// synthesis argument. Every query triggers simultaneous responses from
// the rack's workers to one aggregator. pFabric's line-rate start plus
// switch-local dropping wastes upstream capacity on packets that die
// at the aggregator's downlink (Figures 3 and 4 of the paper); PASE's
// end-to-end arbitration throttles doomed flows at their sources.
//
//	go run ./examples/incast
package main

import (
	"fmt"
	"log"

	"pase"
)

func main() {
	fmt.Println("Worker-aggregator fan-in (19 workers per query), 20-host rack")
	fmt.Printf("%-8s %-9s %12s %12s %10s\n", "load", "protocol", "AFCT", "p99 FCT", "loss")

	for _, load := range []float64{0.3, 0.6, 0.9} {
		for _, p := range []pase.Protocol{pase.ProtocolPFabric, pase.ProtocolPASE} {
			rep, err := pase.Simulate(pase.SimConfig{
				Protocol: p,
				Scenario: pase.ScenarioWorkerAgg,
				Load:     load,
				NumFlows: 800,
				Seed:     7,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8.0f%% %-9s %12v %12v %9.1f%%\n",
				load*100, p, rep.AFCT.Round(10_000), rep.P99.Round(10_000), rep.LossRate*100)
		}
	}

	fmt.Println("\npFabric sheds a third or more of its transmissions at high load;")
	fmt.Println("PASE serializes the responses through arbitration and stays lossless,")
	fmt.Println("overtaking pFabric's AFCT once the fabric is busy.")
}
