package pase_test

import (
	"strings"
	"testing"

	"pase"
)

func TestSimulateValidation(t *testing.T) {
	if _, err := pase.Simulate(pase.SimConfig{Load: 0}); err == nil {
		t.Fatal("zero load must be rejected")
	}
	if _, err := pase.Simulate(pase.SimConfig{Load: 1.5}); err == nil {
		t.Fatal("load > 1 must be rejected")
	}
	if _, err := pase.Simulate(pase.SimConfig{Load: 0.5, Protocol: "SCTP"}); err == nil {
		t.Fatal("unknown protocol must be rejected")
	}
	if _, err := pase.Simulate(pase.SimConfig{Load: 0.5, Scenario: "moon-base"}); err == nil {
		t.Fatal("unknown scenario must be rejected")
	}
}

func TestSimulateDefaults(t *testing.T) {
	rep, err := pase.Simulate(pase.SimConfig{Load: 0.5, NumFlows: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 50 {
		t.Fatalf("completed = %d, want 50", rep.Completed)
	}
	if rep.AFCT <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("implausible report: %+v", rep)
	}
	if len(rep.CDF) == 0 {
		t.Fatal("CDF missing")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := pase.SimConfig{Protocol: pase.ProtocolPASE, Scenario: pase.ScenarioIntraRack,
		Load: 0.6, NumFlows: 80, Seed: 9}
	a, err := pase.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pase.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.AFCT != b.AFCT || a.P99 != b.P99 || a.CtrlMessages != b.CtrlMessages {
		t.Fatalf("identical configs diverged: %+v vs %+v", a, b)
	}
}

func TestEveryProtocolEveryScenarioSmoke(t *testing.T) {
	for _, p := range pase.Protocols() {
		for _, s := range pase.Scenarios() {
			rep, err := pase.Simulate(pase.SimConfig{
				Protocol: p, Scenario: s, Load: 0.4, NumFlows: 40, Seed: 3,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", p, s, err)
			}
			if rep.Completed < 35 {
				t.Errorf("%s/%s: only %d/40 flows completed", p, s, rep.Completed)
			}
		}
	}
}

func TestListFiguresAndRun(t *testing.T) {
	figs := pase.ListFigures()
	if len(figs) != 24 {
		t.Fatalf("got %d figures, want 24", len(figs))
	}
	if _, err := pase.RunFigure("bogus", pase.FigureOpts{}); err == nil {
		t.Fatal("unknown figure must error")
	}
	fig, err := pase.RunFigure("13b", pase.FigureOpts{NumFlows: 60, Loads: []float64{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("figure 13b has %d series, want 2", len(fig.Series))
	}
	text := fig.Render()
	if !strings.Contains(text, "PASE") || !strings.Contains(text, "DCTCP") {
		t.Fatalf("render missing series names:\n%s", text)
	}
}
