// Package pase is a from-scratch Go implementation of PASE
// ("Friends, not Foes — Synthesizing Existing Transport Strategies for
// Data Center Networks", SIGCOMM 2014) together with the packet-level
// network simulator, the baseline transports it is evaluated against
// (DCTCP, D2TCP, L2DCT, pFabric, PDQ, and credit-based ExpressPass),
// and the paper's full experimental harness.
//
// PASE synthesizes three transport strategies:
//
//   - arbitration: a control plane of per-link arbitrators maps every
//     flow to a priority queue and a reference rate (Algorithm 1),
//     organized bottom-up over the data-center tree with early pruning
//     and delegation for scalability;
//   - in-network prioritization: commodity switches schedule packets
//     with a handful of strict-priority queues plus ECN;
//   - self-adjusting endpoints: a DCTCP-derived transport uses the
//     (queue, reference rate) guidance for its window (Algorithm 2)
//     and probes for spare capacity on its own.
//
// # Quick start
//
// Run one simulation point and inspect the headline metrics:
//
//	rep, err := pase.Simulate(pase.SimConfig{
//		Protocol: pase.ProtocolPASE,
//		Scenario: pase.ScenarioIntraRack,
//		Load:     0.7,
//		NumFlows: 1000,
//	})
//	fmt.Println(rep.AFCT, rep.P99, rep.LossRate)
//
// Regenerate a figure from the paper:
//
//	fig, err := pase.RunFigure("9a", pase.FigureOpts{NumFlows: 2000})
//	fmt.Println(fig.Render())
//
// Lower-level building blocks (the discrete-event engine, queue
// disciplines, topologies, transports) live under internal/ and are
// exercised through this façade and the cmd/ binaries.
package pase

import (
	"fmt"
	"io"
	"time"

	"pase/internal/experiments"
	"pase/internal/faults"
	"pase/internal/obs"
	"pase/internal/route"
	"pase/internal/sim"
	"pase/internal/trace"
)

// Snapshot is a run's merged observability image: counters, gauge
// high-watermarks and log2 histograms keyed by instrument name. It is
// produced per simulation point and merged deterministically, so the
// JSON form is byte-identical regardless of parallelism.
type Snapshot = obs.Snapshot

// MergeSnapshots folds snapshots together in input order (counters and
// histogram buckets add; gauges take the max). Nil entries are skipped.
func MergeSnapshots(snaps []*Snapshot) *Snapshot { return obs.MergeAll(snaps) }

// Manifest is the JSON run record written alongside figure output:
// parameters, seeds, git revision, wall-clock cost and the merged
// Snapshot.
type Manifest = experiments.Manifest

// GitRev returns the VCS revision baked into the binary ("" outside a
// VCS build); uncommitted changes add a "+dirty" suffix.
func GitRev() string { return experiments.GitRev() }

// Protocol selects a transport implementation.
type Protocol string

// The transports implemented in this repository.
const (
	ProtocolDCTCP   Protocol = Protocol(experiments.DCTCP)
	ProtocolD2TCP   Protocol = Protocol(experiments.D2TCP)
	ProtocolL2DCT   Protocol = Protocol(experiments.L2DCT)
	ProtocolPFabric Protocol = Protocol(experiments.PFabric)
	ProtocolPDQ     Protocol = Protocol(experiments.PDQ)
	ProtocolPASE    Protocol = Protocol(experiments.PASE)
	// ProtocolExpressPass is the credit-based transport of Cho et al.
	// (SIGCOMM 2017): receivers pace 84-byte credits, senders transmit
	// one data packet per credit received, and switches rate-limit the
	// credit class so the triggered data can never oversubscribe a
	// link — data-plane drops are eliminated by construction and credit
	// drops become the congestion feedback.
	ProtocolExpressPass Protocol = Protocol(experiments.ExpressPass)
)

// Protocols lists every available transport.
func Protocols() []Protocol {
	return []Protocol{ProtocolDCTCP, ProtocolD2TCP, ProtocolL2DCT,
		ProtocolPFabric, ProtocolPDQ, ProtocolPASE, ProtocolExpressPass}
}

// Scenario selects one of the paper's evaluation settings.
type Scenario string

// The paper's scenarios (§4).
const (
	// ScenarioLeftRight: 3-tier fabric (160 hosts, 4:1
	// oversubscription); the left 80 hosts send to the right 80 and
	// the aggregation-core link is the bottleneck.
	ScenarioLeftRight Scenario = Scenario(experiments.LeftRight)
	// ScenarioIntraRack: 20-host rack, random pairs, U[2,198] KB.
	ScenarioIntraRack Scenario = Scenario(experiments.IntraRack)
	// ScenarioIntraRackLarge: 20-host rack, U[100,500] KB.
	ScenarioIntraRackLarge Scenario = Scenario(experiments.IntraRackLarge)
	// ScenarioWorkerAgg: search-style fan-in — every query draws
	// simultaneous responses from the rack's workers to one
	// aggregator.
	ScenarioWorkerAgg Scenario = Scenario(experiments.WorkerAgg)
	// ScenarioDeadline: U[100,500] KB with 5–25 ms deadlines.
	ScenarioDeadline Scenario = Scenario(experiments.Deadline)
	// ScenarioTestbed: the paper's 10-node testbed, simulated.
	ScenarioTestbed Scenario = Scenario(experiments.Testbed)
	// ScenarioLeafSpine: extension — a 4-leaf × 2-spine multipath
	// fabric with per-flow ECMP.
	ScenarioLeafSpine Scenario = Scenario(experiments.LeafSpine)
	// ScenarioLeafSpineWide: a wider 8-leaf × 4-spine fabric (80 hosts)
	// used by the sharded-engine benchmarks.
	ScenarioLeafSpineWide Scenario = Scenario(experiments.LeafSpineWide)
	// ScenarioTEFailover: a 4-leaf × 3-spine fabric (non-power-of-two
	// spine count) for the routing-control-loop experiments — chaos
	// plans down fabric links mid-run and the reactive reroute +
	// hotspot-TE loop keeps flows alive.
	ScenarioTEFailover Scenario = Scenario(experiments.TEFailover)
	// ScenarioHighspeed10/40/100: extension — a 10/40/100 Gbps
	// single-rack all-to-all with rate-scaled buffers and short link
	// delays, the regime ExpressPass targets.
	ScenarioHighspeed10  Scenario = Scenario(experiments.Highspeed10)
	ScenarioHighspeed40  Scenario = Scenario(experiments.Highspeed40)
	ScenarioHighspeed100 Scenario = Scenario(experiments.Highspeed100)
	// ScenarioHighspeedShallow: the 100 Gbps rack with a shallow
	// 64-packet buffer — rate-scaled buffering no longer hides bursts.
	ScenarioHighspeedShallow Scenario = Scenario(experiments.HighspeedShallow)
	// ScenarioIncast64 / ScenarioIncast256: 64 and 256 synchronized
	// senders converging on one 100 Gbps receiver. At 256→1 the senders
	// outnumber the bottleneck's buffer slots, so window-based
	// transports must drop; credit-based ones must not.
	ScenarioIncast64  Scenario = Scenario(experiments.Incast64)
	ScenarioIncast256 Scenario = Scenario(experiments.Incast256)
	// ScenarioCtrlScale: extension — the control-plane-at-scale
	// family. "ctrlscale" is a 64-rack fabric; "ctrlscale-<racks>"
	// picks any rack count (the ctrlscale figure sweeps 16 → 2048). A
	// fixed aggregate interactive workload spreads over the growing
	// fabric, and PASE defaults to the deep arbitration hierarchy
	// (fan-out-4 tree, sharded root). SimConfig.Racks / the -racks
	// flag are shorthand for picking a family member.
	ScenarioCtrlScale Scenario = Scenario(experiments.CtrlScale)
)

// Scenarios lists every available scenario.
func Scenarios() []Scenario {
	return []Scenario{ScenarioLeftRight, ScenarioIntraRack,
		ScenarioIntraRackLarge, ScenarioWorkerAgg, ScenarioDeadline,
		ScenarioTestbed, ScenarioLeafSpine, ScenarioLeafSpineWide,
		ScenarioTEFailover,
		ScenarioHighspeed10, ScenarioHighspeed40, ScenarioHighspeed100,
		ScenarioHighspeedShallow, ScenarioIncast64, ScenarioIncast256,
		ScenarioCtrlScale}
}

// PASEOptions toggle PASE's internal mechanisms (ablations).
type PASEOptions struct {
	// LocalOnly restricts arbitration to the hosts' access links.
	LocalOnly bool
	// NoPruning / NoDelegation disable the control-plane overhead
	// optimizations of §3.1.2.
	NoPruning    bool
	NoDelegation bool
	// NumQueues overrides the switch priority-queue count (default 8).
	NumQueues int
	// DisableRefRate ignores the arbitrated reference rate
	// (the PASE-DCTCP ablation of Fig 13a).
	DisableRefRate bool
	// DisableProbing turns off probe-based loss recovery (§4.3.2).
	DisableProbing bool
	// NoReorderGuard skips draining before priority promotions.
	NoReorderGuard bool
	// TaskAware arbitrates task-carrying flows FIFO by task id
	// instead of shortest-remaining-first (Baraat-style task-aware
	// scheduling, the alternative criterion §3.1.1 names).
	TaskAware bool
	// Central swaps PASE's arbitration hierarchy for the fully
	// centralized comparison arm: one controller behind the core
	// computes whole-path allocations in a single serialized exchange
	// (Shah & Xie-style). Hierarchy, delegation and pruning are
	// ignored. SimConfig.Ctrl = "central" sets this too.
	Central bool
	// HierFanOut / HierTopShards override the deep arbitration
	// hierarchy's shape — the aggregation-tree fan-out and the number
	// of replicated root shards (0 = scenario default; most scenarios
	// default to the classic flat 3-tier climb, ctrlscale to fan-out 4
	// with 2 root shards).
	HierFanOut    int
	HierTopShards int
}

// FaultPlan is a deterministic fault-injection schedule: link
// down/up windows, probabilistic per-class packet loss and
// corruption, arbitration message drop/delay, and arbitrator
// crash/restart cycles. Build one directly or parse the -faults
// CLI syntax with ParseFaults. A nil or empty plan injects nothing
// and leaves runs byte-identical to fault-free ones.
type FaultPlan = faults.Plan

// ParseFaults parses the -faults CLI syntax into a FaultPlan:
// semicolon-separated clauses such as
//
//	seed=7; linkdown:link=3,at=10ms,for=5ms; loss:link=*,class=data,rate=0.01;
//	ctrl:drop=0.2,delay=100us; crash:link=*,at=20ms,for=2ms,every=20ms
//
// The returned plan is validated; the error names the offending
// clause.
func ParseFaults(spec string) (*FaultPlan, error) { return faults.Parse(spec) }

// SimConfig describes one simulation run.
type SimConfig struct {
	Protocol Protocol
	Scenario Scenario
	// Load is the offered load in (0, 1] relative to the scenario's
	// bottleneck capacity.
	Load float64
	// NumFlows is the number of foreground flows (default 2000).
	NumFlows int
	// Seed makes runs reproducible; equal seeds give identical runs.
	Seed uint64
	// IncludeFlowLog populates Report.FlowLog with per-flow outcomes.
	IncludeFlowLog bool
	// Obs collects an observability Snapshot (Report.Obs): engine,
	// queue, arbitration and transport counters plus occupancy
	// histograms. Off by default — the hot path then costs only nil
	// checks.
	Obs bool
	// Check attaches the runtime invariant checker to the run: queue
	// conservation and capacity, strict-priority ordering, ECN marking,
	// arbitration feasibility, clock monotonicity and per-flow FCT
	// lower bounds are verified as the simulation executes. Breaches
	// land in Report.Violations / Report.ViolationDetails. Off by
	// default — the hot path then costs only nil checks. Setting the
	// PASE_CHECK environment variable force-enables checking for every
	// run.
	Check bool
	// FlowTrace records flow lifecycle events (start/done/abort) into
	// the report; write them with Report.WriteFlowTrace.
	FlowTrace bool
	// QueueTrace > 0 samples every port's queue occupancy at this
	// interval; write the samples with Report.WriteQueueTrace.
	QueueTrace time.Duration
	// SpanTrace records the span-based flight recording: per-flow
	// lifecycle spans (waiting for the control plane, transmission
	// epochs per priority queue, retransmission/timeout/fallback
	// marks) plus PASE's control-plane exchanges through the
	// arbitrator hierarchy. Export with Report.WritePerfetto. Traced
	// runs shard and stream like untraced ones, and the exported bytes
	// are identical at every shard count and parallelism.
	SpanTrace bool
	// TraceSampleN keeps 1 in N flow traces (0 or 1 = every flow),
	// seed-driven so re-runs trace the same flows. Flows that
	// misbehaved — retransmissions, timeouts, control-plane fallback,
	// aborts — are always kept regardless of the draw.
	TraceSampleN int
	// TraceSpill, with SpanTrace, streams the Perfetto trace to this
	// writer as flows complete instead of retaining traces in memory —
	// the O(in-flight) pairing for Stream runs. Forces the serial
	// engine; Report.WritePerfetto then has nothing left to write.
	TraceSpill io.Writer
	// FlowTraceSpill, with FlowTrace, streams the flow-event TSV the
	// same way. Forces the serial engine.
	FlowTraceSpill io.Writer
	// Progress, if set, is called by SimulateSeeds after each seed's
	// run completes with (done, total). It may be invoked concurrently
	// from worker goroutines.
	Progress func(done, total int)
	// Faults injects the given fault plan into the run (nil or empty =
	// no faults, byte-identical to a fault-free run). Fault decisions
	// draw from their own seeded RNG stream, so adding a zero-rate plan
	// never perturbs workload or transport randomness.
	Faults *FaultPlan
	// Stream runs the point through the bounded-memory streaming path:
	// arrivals come from the workload iterator, flow state is recycled,
	// and metrics feed a quantile sketch instead of a per-flow store.
	// Headline metrics (AFCT, throughput, loss) are identical to a
	// stored run; P50/P99 and the CDF are within SketchEps. Streaming
	// runs keep no per-flow records, so IncludeFlowLog yields an empty
	// FlowLog.
	Stream bool
	// SketchEps bounds the streaming quantile sketch's relative error
	// (0 = the metrics package default, 0.005).
	SketchEps float64
	// Shards partitions the fabric across this many independently
	// clocked engine shards synchronized by conservative lookahead
	// (0 or 1 = serial). Results are byte-identical to a serial run at
	// every shard count — trace output included. Runs that cannot
	// shard — PASE and PDQ (their control planes are
	// fabric-synchronous), spill-mode trace writers, and single-rack
	// topologies — silently fall back to the serial engine (the
	// shard/fallback_serial counter records it when Obs is set).
	Shards int
	// Reroute enables failure rerouting on leaf-spine fabrics: link
	// up/down events from the fault plan immediately rehash the
	// affected ECMP buckets onto surviving spines (uplink failures at
	// the source leaf; downlink failures propagated to every leaf). A
	// no-op on tree fabrics and without a fault plan.
	Reroute bool
	// TE enables the periodic traffic-engineering loop on leaf-spine
	// fabrics: every TEEpoch each leaf shifts its most-loaded ECMP
	// bucket off the hottest uplink, with hysteresis and per-bucket
	// dwell so routes do not flap.
	TE bool
	// TEEpoch overrides the TE decision period (0 = 1 ms).
	TEEpoch time.Duration
	// AbortAfter, when positive, makes every sender abort its flow
	// after this long without forward progress (no new data
	// acknowledged). Aborted flows are excluded from AFCT and counted
	// in Report.Aborted. Zero disables aborts.
	AbortAfter time.Duration
	// Ctrl picks the control-plane arm for PASE runs: "" or
	// "hierarchy" (the default distributed arbitration hierarchy) or
	// "central" (the single-controller comparison arm).
	Ctrl string
	// Racks, when positive, is shorthand for Scenario =
	// "ctrlscale-<Racks>": the control-plane-at-scale fabric with that
	// many racks.
	Racks int
	// PASE ablation switches (PASE protocol only).
	PASE PASEOptions
}

// CDFPoint is one step of an empirical FCT distribution.
type CDFPoint struct {
	FCT      time.Duration
	Fraction float64
}

// Report is the outcome of one simulation run.
type Report struct {
	// Flows and Completed count foreground flows.
	Flows     int
	Completed int
	// Aborted counts flows the transport killed (progress-deadline
	// aborts, PDQ early termination); they are excluded from AFCT.
	Aborted int

	AFCT time.Duration
	P50  time.Duration
	P99  time.Duration

	// AppThroughput is the fraction of deadline flows that met their
	// deadline (deadline scenarios only).
	AppThroughput float64
	DeadlineFlows int

	// LossRate is dropped data packets over attempted transmissions.
	LossRate float64
	// CtrlMessages counts control-plane messages (PASE arbitration,
	// PDQ header exchanges, or ExpressPass credits and credit
	// requests).
	CtrlMessages int64

	Retransmits int64
	Timeouts    int64

	CDF []CDFPoint

	// FlowLog holds per-flow outcomes when SimConfig.IncludeFlowLog
	// is set.
	FlowLog []FlowOutcome

	// Obs is the run's observability snapshot (nil unless
	// SimConfig.Obs).
	Obs *Snapshot

	// Violations counts invariant breaches the runtime checker
	// observed (always 0 unless SimConfig.Check or PASE_CHECK was set);
	// ViolationDetails holds up to the first 64, formatted.
	Violations       int64
	ViolationDetails []string

	flowEvents   []trace.FlowEvent
	queueSamples []trace.QueueSample
	runTrace     *trace.RunTrace
}

// FlowTraceLen and QueueTraceLen report how much trace data the run
// recorded (zero unless the matching SimConfig switch was set).
func (r *Report) FlowTraceLen() int  { return len(r.flowEvents) }
func (r *Report) QueueTraceLen() int { return len(r.queueSamples) }

// SpanTraceLen reports how many flow traces the flight recorder kept
// (zero unless SimConfig.SpanTrace was set; zero in spill mode, where
// traces stream out as flows complete).
func (r *Report) SpanTraceLen() int {
	if r.runTrace == nil {
		return 0
	}
	return len(r.runTrace.Flows)
}

// TraceDigest folds the flight recording's canonical content into one
// hash — equal digests mean byte-identical exports. Zero without
// SpanTrace.
func (r *Report) TraceDigest() uint64 {
	if r.runTrace == nil {
		return 0
	}
	return r.runTrace.Digest()
}

// WritePerfetto exports the flight recording as Chrome/Perfetto
// trace-event JSON: flows as spans on a "flows" track, arbitration
// exchanges as spans plus flow arrows on an "arbitration" track, and
// queue occupancies as counter tracks. Load the file in
// https://ui.perfetto.dev or chrome://tracing.
func (r *Report) WritePerfetto(w io.Writer) error {
	if r.runTrace == nil {
		return fmt.Errorf("pase: no span trace recorded (set SimConfig.SpanTrace; with TraceSpill the trace already streamed)")
	}
	return r.runTrace.WritePerfetto(w)
}

// WriteFlowTrace emits the flow lifecycle events as TSV
// (time_ns, kind, flow, src, dst, size, fct_ns).
func (r *Report) WriteFlowTrace(w io.Writer) error {
	return trace.WriteFlowEvents(w, r.flowEvents)
}

// WriteQueueTrace emits the sampled queue occupancies as TSV
// (time_ns, port, qlen, qbytes).
func (r *Report) WriteQueueTrace(w io.Writer) error {
	return trace.WriteQueueSamples(w, r.queueSamples)
}

// FlowOutcome is the per-flow record of a run.
type FlowOutcome struct {
	ID       uint64
	Size     int64
	Start    time.Duration // simulated time of arrival
	FCT      time.Duration
	Deadline time.Duration // zero if none
	Done     bool
	Aborted  bool // the transport killed the flow
	Retx     int
	Timeouts int
}

// normalize validates cfg and fills defaults.
func normalize(cfg SimConfig) (SimConfig, error) {
	if cfg.Load <= 0 || cfg.Load > 1 {
		return cfg, fmt.Errorf("pase: Load must be in (0, 1], got %v", cfg.Load)
	}
	if cfg.Protocol == "" {
		cfg.Protocol = ProtocolPASE
	}
	if cfg.Racks > 0 {
		cfg.Scenario = Scenario(fmt.Sprintf("%s-%d", experiments.CtrlScale, cfg.Racks))
	}
	if cfg.Scenario == "" {
		cfg.Scenario = ScenarioIntraRack
	}
	if !valid(string(cfg.Protocol), protocolNames()) {
		return cfg, fmt.Errorf("pase: unknown protocol %q", cfg.Protocol)
	}
	if !valid(string(cfg.Scenario), scenarioNames()) &&
		experiments.CtrlScaleRacksOf(experiments.Scenario(cfg.Scenario)) == 0 {
		return cfg, fmt.Errorf("pase: unknown scenario %q", cfg.Scenario)
	}
	switch cfg.Ctrl {
	case "", "hierarchy":
	case "central":
		cfg.PASE.Central = true
	default:
		return cfg, fmt.Errorf("pase: unknown control plane %q (want \"hierarchy\" or \"central\")", cfg.Ctrl)
	}
	return cfg, nil
}

// pointConfig maps the public config onto the experiment runner's.
func pointConfig(cfg SimConfig) experiments.PointConfig {
	return experiments.PointConfig{
		Protocol:  experiments.Protocol(cfg.Protocol),
		Scenario:  experiments.Scenario(cfg.Scenario),
		Load:      cfg.Load,
		Seed:      cfg.Seed,
		NumFlows:  cfg.NumFlows,
		Obs:       cfg.Obs,
		Check:     cfg.Check,
		Faults:    cfg.Faults,
		Stream:    cfg.Stream,
		SketchEps: cfg.SketchEps,
		Shards:    cfg.Shards,
		Route: route.Config{
			Reroute: cfg.Reroute,
			TE:      cfg.TE,
			Epoch:   sim.Duration(cfg.TEEpoch),
		},
		AbortAfter: sim.Duration(cfg.AbortAfter),
		Trace: experiments.TraceConfig{
			FlowLog:       cfg.FlowTrace,
			QueueSample:   sim.Duration(cfg.QueueTrace),
			Spans:         cfg.SpanTrace,
			SampleN:       cfg.TraceSampleN,
			SpanWriter:    cfg.TraceSpill,
			FlowLogWriter: cfg.FlowTraceSpill,
		},
		PASE: experiments.PASEOptions{
			LocalOnly:      cfg.PASE.LocalOnly,
			NoPruning:      cfg.PASE.NoPruning,
			NoDelegation:   cfg.PASE.NoDelegation,
			NumQueues:      cfg.PASE.NumQueues,
			DisableRefRate: cfg.PASE.DisableRefRate,
			DisableProbing: cfg.PASE.DisableProbing,
			NoReorderGuard: cfg.PASE.NoReorderGuard,
			TaskAware:      cfg.PASE.TaskAware,
			Central:        cfg.PASE.Central,
			HierFanOut:     cfg.PASE.HierFanOut,
			HierTopShards:  cfg.PASE.HierTopShards,
		},
	}
}

// Simulate runs one simulation point.
func Simulate(cfg SimConfig) (*Report, error) {
	cfg, err := normalize(cfg)
	if err != nil {
		return nil, err
	}
	return report(experiments.RunPoint(pointConfig(cfg)), cfg.IncludeFlowLog), nil
}

// SimulateSeeds runs the same configuration across consecutive
// workload seeds (cfg.Seed, cfg.Seed+1, …) on a bounded worker pool
// and returns one Report per seed, in seed order. parallelism <= 0
// uses one worker per CPU; 1 runs serially. Each report is identical
// to what Simulate would return for that seed — parallelism only
// changes wall-clock time.
func SimulateSeeds(cfg SimConfig, seeds, parallelism int) ([]*Report, error) {
	cfg, err := normalize(cfg)
	if err != nil {
		return nil, err
	}
	if seeds < 1 {
		seeds = 1
	}
	cfgs := make([]experiments.PointConfig, seeds)
	for i := range cfgs {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		cfgs[i] = pointConfig(c)
	}
	reps := make([]*Report, seeds)
	res := experiments.RunPointsOpts(cfgs, experiments.Opts{
		Parallelism: parallelism, Progress: cfg.Progress})
	for i, r := range res {
		reps[i] = report(r, cfg.IncludeFlowLog)
	}
	return reps, nil
}

// report converts an experiment result into the public Report.
func report(r experiments.PointResult, includeFlowLog bool) *Report {
	rep := &Report{
		Flows:         r.Summary.Flows,
		Completed:     r.Summary.Completed,
		Aborted:       r.Summary.Aborted,
		AFCT:          r.Summary.AFCT.Std(),
		P50:           r.Summary.P50.Std(),
		P99:           r.Summary.P99.Std(),
		AppThroughput: r.Summary.AppThroughput,
		DeadlineFlows: r.Summary.DeadlineFlows,
		LossRate:      r.LossRate,
		CtrlMessages:  r.CtrlMessages,
		Retransmits:   r.Summary.Retx,
		Timeouts:      r.Summary.Timeouts,
		Obs:           r.Obs,
		Violations:    r.Violations,
		flowEvents:    r.FlowEvents,
		queueSamples:  r.QueueSamples,
		runTrace:      r.Trace,
	}
	for _, v := range r.CheckViolations {
		rep.ViolationDetails = append(rep.ViolationDetails, v.String())
	}
	for _, p := range r.CDF {
		rep.CDF = append(rep.CDF, CDFPoint{FCT: p.Value.Std(), Fraction: p.Fraction})
	}
	if includeFlowLog {
		for _, rec := range r.Records {
			rep.FlowLog = append(rep.FlowLog, FlowOutcome{
				ID:       rec.ID,
				Size:     rec.Size,
				Start:    time.Duration(rec.Start),
				FCT:      rec.FCT().Std(),
				Deadline: time.Duration(rec.Deadline),
				Done:     rec.Done,
				Aborted:  rec.Aborted,
				Retx:     rec.Retx,
				Timeouts: rec.Timeouts,
			})
		}
	}
	return rep
}

func valid(v string, set []string) bool {
	for _, s := range set {
		if s == v {
			return true
		}
	}
	return false
}

func protocolNames() []string {
	var out []string
	for _, p := range Protocols() {
		out = append(out, string(p))
	}
	return out
}

func scenarioNames() []string {
	var out []string
	for _, s := range Scenarios() {
		out = append(out, string(s))
	}
	return out
}

// FigureOpts scale a figure regeneration run.
type FigureOpts struct {
	// NumFlows per simulation point (default 2000).
	NumFlows int
	// Seed for the synthetic workloads.
	Seed uint64
	// Seeds averages every sweep point over this many consecutive
	// seeds (0 or 1 = single run).
	Seeds int
	// Loads overrides the figure's load sweep (fractions in (0,1]).
	Loads []float64
	// Parallelism bounds how many simulation points run concurrently
	// (0 = one worker per CPU, 1 = serial). Every point is a hermetic
	// simulation and results are assembled in a fixed order, so the
	// figure produced is identical at any setting — parallelism only
	// changes wall-clock time.
	Parallelism int
	// Obs collects an observability snapshot per simulation point and
	// merges them into FigureData.Snapshot (and the run Manifest). The
	// merge happens in input order, so the result is identical at any
	// Parallelism.
	Obs bool
	// Check runs every simulation point with the runtime invariant
	// checker attached; FigureData.Violations totals the breaches
	// across the whole grid. Setting the PASE_CHECK environment
	// variable force-enables this.
	Check bool
	// Progress, if set, is called after each simulation point with the
	// number of points done and the total. It may be invoked
	// concurrently from worker goroutines; the callback must be safe
	// for that.
	Progress func(done, total int)
	// Faults applies a fault-injection plan to every simulation point
	// of the figure that does not already carry its own (nil or empty
	// = no faults, byte-identical output).
	Faults *FaultPlan
	// Stream runs every simulation point through the bounded-memory
	// streaming path (workload iterator, recycled flow state, quantile
	// sketch). AFCT/throughput/loss series are identical to stored
	// runs; P50/P99 and CDF series are within SketchEps.
	Stream bool
	// SketchEps bounds the streaming quantile sketch's relative error
	// (0 = the metrics package default, 0.005).
	SketchEps float64
	// Shards runs every simulation point on this many engine shards
	// synchronized by conservative lookahead (0 or 1 = serial; results
	// byte-identical at every setting). Combines multiplicatively with
	// Parallelism: a pooled figure runs up to Parallelism × Shards
	// goroutines at once, so budget cores accordingly.
	Shards int
	// Trace runs every simulation point with the span flight recorder
	// attached. Figure grids keep only scalar series per point, so the
	// recorded spans themselves are dropped — but the recorder's
	// retention counters (trace/*) and PASE's per-level arbitration RTT
	// histograms (arb/rtt/*) appear in the merged Obs snapshot and run
	// Manifest. Usually combined with Obs.
	Trace bool
	// TraceSampleN keeps 1-in-N flow traces when Trace is set (0 or
	// 1 = every flow). Violating or faulted flows are always kept.
	TraceSampleN int
	// Ctrl forces every PASE point of the figure onto one control
	// plane: "central" runs the single-controller arm, "" or
	// "hierarchy" the default arbitration hierarchy. Figures that
	// sweep both arms themselves (ctrlscale) ignore it.
	Ctrl string
	// Racks caps the ctrlscale figure's rack sweep (0 = the full
	// 16 → 2048 sweep). Other figures ignore it.
	Racks int
}

// expOpts maps the public options onto the experiment runner's.
func expOpts(o FigureOpts) experiments.Opts {
	return experiments.Opts{NumFlows: o.NumFlows, Seed: o.Seed, Seeds: o.Seeds,
		Loads: o.Loads, Parallelism: o.Parallelism, Obs: o.Obs, Check: o.Check,
		Faults: o.Faults, Progress: o.Progress,
		Stream: o.Stream, SketchEps: o.SketchEps, Shards: o.Shards,
		Ctrl: o.Ctrl, Racks: o.Racks,
		Trace: experiments.TraceConfig{Spans: o.Trace, SampleN: o.TraceSampleN}}
}

// FigureSeries is one curve of a regenerated figure.
type FigureSeries struct {
	Name string
	X    []float64
	Y    []float64
}

// FigureData is a regenerated table/figure from the paper.
type FigureData struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []FigureSeries
	Notes  []string

	// Points counts the simulation points behind the figure; Retx and
	// Timeouts total their retransmission activity. All zero for the
	// analytic figures that run no simulations.
	Points   int
	Retx     int64
	Timeouts int64
	// Violations totals invariant breaches across every point (always
	// 0 unless FigureOpts.Check or PASE_CHECK enabled the checker).
	Violations int64

	raw *experiments.Result
}

// Render formats the figure as aligned text columns.
func (f *FigureData) Render() string { return f.raw.Render() }

// WriteTSV writes the figure as tab-separated values for plotting.
func (f *FigureData) WriteTSV(w io.Writer) error { return f.raw.WriteTSV(w) }

// Snapshot returns the merged observability snapshot of every
// simulation point (nil unless FigureOpts.Obs was set).
func (f *FigureData) Snapshot() *Snapshot { return f.raw.Obs }

// FigureInfo describes one reproducible experiment.
type FigureInfo struct {
	ID    string
	Title string
}

// ListFigures enumerates every table/figure the harness regenerates.
func ListFigures() []FigureInfo {
	var out []FigureInfo
	for _, f := range experiments.Figures {
		out = append(out, FigureInfo{ID: f.ID, Title: f.Title})
	}
	return out
}

// RunFigure regenerates one figure by ID ("1", "2", "3", "4", "9a" …
// "13b", "probing").
func RunFigure(id string, opts FigureOpts) (*FigureData, error) {
	fig, ok := experiments.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("pase: unknown figure %q (see ListFigures)", id)
	}
	res := fig.Run(expOpts(opts))
	out := &FigureData{
		ID: res.ID, Title: res.Title,
		XLabel: res.XLabel, YLabel: res.YLabel,
		Notes:  res.Notes,
		Points: res.Points, Retx: res.Retx, Timeouts: res.Timeouts,
		Violations: res.Violations,
		raw:        res,
	}
	for _, s := range res.Series {
		out.Series = append(out.Series, FigureSeries{Name: s.Name, X: s.X, Y: s.Y})
	}
	return out, nil
}

// NewRunManifest assembles the reproducibility manifest for a figure
// run: parameters, git revision, wall-clock cost and the merged
// observability snapshot. Write it next to the figure's TSV.
func NewRunManifest(tool string, fig *FigureData, opts FigureOpts, started time.Time, wall time.Duration) *Manifest {
	return experiments.NewManifest(tool, fig.raw, expOpts(opts), started, wall)
}

// NewSimManifest assembles the run manifest for one or more Simulate /
// SimulateSeeds reports of the same configuration: run parameters,
// merged snapshot and retransmission totals.
func NewSimManifest(tool string, cfg SimConfig, reps []*Report, parallelism int, started time.Time, wall time.Duration) *Manifest {
	m := experiments.NewManifest(tool, nil, experiments.Opts{
		NumFlows: cfg.NumFlows, Seed: cfg.Seed, Seeds: len(reps),
		Loads: []float64{cfg.Load}, Parallelism: parallelism,
		Faults: cfg.Faults, Stream: cfg.Stream, SketchEps: cfg.SketchEps,
		Shards: cfg.Shards,
	}, started, wall)
	m.Title = fmt.Sprintf("%s / %s @ load %g", cfg.Protocol, cfg.Scenario, cfg.Load)
	snaps := make([]*Snapshot, len(reps))
	for i, r := range reps {
		snaps[i] = r.Obs
		m.Retx += r.Retransmits
		m.Timeouts += r.Timeouts
	}
	m.Points = len(reps)
	m.Snapshot = MergeSnapshots(snaps)
	return m
}
