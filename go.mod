module pase

go 1.22
