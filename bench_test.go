package pase_test

// One benchmark per table/figure of the paper's evaluation. Each
// benchmark regenerates the figure's series at a reduced per-point
// flow count (so `go test -bench .` completes in minutes) and reports
// the headline metric of the figure through b.ReportMetric, letting
// `-bench` runs double as a quick reproduction check. cmd/paper runs
// the same experiments at full scale.

import (
	"testing"

	"pase"
)

// benchFigure regenerates figure id once per iteration.
func benchFigure(b *testing.B, id string, flows int, loads []float64) *pase.FigureData {
	b.Helper()
	var fig *pase.FigureData
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = pase.RunFigure(id, pase.FigureOpts{NumFlows: flows, Seed: 1, Loads: loads})
		if err != nil {
			b.Fatal(err)
		}
	}
	return fig
}

// lastY returns the final point of the named series.
func lastY(fig *pase.FigureData, name string) float64 {
	for _, s := range fig.Series {
		if s.Name == name {
			return s.Y[len(s.Y)-1]
		}
	}
	return -1
}

func BenchmarkFig01DeadlineThroughput(b *testing.B) {
	fig := benchFigure(b, "1", 200, []float64{0.3, 0.6, 0.9})
	b.ReportMetric(lastY(fig, "pFabric"), "pfabric_tput@90%")
	b.ReportMetric(lastY(fig, "D2TCP"), "d2tcp_tput@90%")
}

func BenchmarkFig02PDQSwitchingOverhead(b *testing.B) {
	fig := benchFigure(b, "2", 200, []float64{0.2, 0.9})
	b.ReportMetric(lastY(fig, "PDQ"), "pdq_afct_ms@90%")
	b.ReportMetric(lastY(fig, "DCTCP"), "dctcp_afct_ms@90%")
}

func BenchmarkFig03ToyExample(b *testing.B) {
	fig := benchFigure(b, "3", 0, nil)
	b.ReportMetric(lastY(fig, "pFabric"), "pfabric_flow3_ms")
	b.ReportMetric(lastY(fig, "PASE"), "pase_flow3_ms")
}

func BenchmarkFig04PFabricLossRate(b *testing.B) {
	fig := benchFigure(b, "4", 200, []float64{0.5, 0.8})
	b.ReportMetric(lastY(fig, "pFabric"), "loss_pct@80%")
}

func BenchmarkFig09aLeftRightAFCT(b *testing.B) {
	fig := benchFigure(b, "9a", 250, []float64{0.5, 0.8})
	b.ReportMetric(lastY(fig, "PASE"), "pase_afct_ms@80%")
	b.ReportMetric(lastY(fig, "L2DCT"), "l2dct_afct_ms@80%")
	b.ReportMetric(lastY(fig, "DCTCP"), "dctcp_afct_ms@80%")
}

// BenchmarkFig09aObsOverhead is BenchmarkFig09aLeftRightAFCT with the
// observability registry enabled; the delta between the two is the
// instrumentation's wall-clock cost (budget: ≤2%).
func BenchmarkFig09aObsOverhead(b *testing.B) {
	var fig *pase.FigureData
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = pase.RunFigure("9a", pase.FigureOpts{
			NumFlows: 250, Seed: 1, Loads: []float64{0.5, 0.8}, Obs: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	snap := fig.Snapshot()
	if snap == nil || len(snap.Counters) == 0 {
		b.Fatal("Obs run produced no snapshot")
	}
	b.ReportMetric(float64(len(snap.Counters)), "counters")
	b.ReportMetric(float64(snap.Counters["sim/events_fired"]), "events_fired")
}

// BenchmarkFig09aCheckOverhead is BenchmarkFig09aLeftRightAFCT with
// the runtime invariant checker enabled; the delta between the two is
// the checking cost when explicitly requested. With the checker off,
// the hot paths pay only nil-pointer tests (budget: ≤2%, same as obs).
func BenchmarkFig09aCheckOverhead(b *testing.B) {
	var fig *pase.FigureData
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = pase.RunFigure("9a", pase.FigureOpts{
			NumFlows: 250, Seed: 1, Loads: []float64{0.5, 0.8}, Check: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	if fig.Violations != 0 {
		b.Fatalf("checker found %d violations", fig.Violations)
	}
	b.ReportMetric(float64(fig.Points), "points_checked")
}

// BenchmarkFig09aTraceOverhead is BenchmarkFig09aLeftRightAFCT with
// the span flight recorder enabled on every point; the delta between
// the two is the full recording cost. With tracing off, the hot paths
// pay only nil-checked hook pointers (budget: ≤2%, same as obs and
// check — BenchmarkFig09aLeftRightAFCT itself measures that disabled
// path).
func BenchmarkFig09aTraceOverhead(b *testing.B) {
	var fig *pase.FigureData
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = pase.RunFigure("9a", pase.FigureOpts{
			NumFlows: 250, Seed: 1, Loads: []float64{0.5, 0.8}, Obs: true, Trace: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	snap := fig.Snapshot()
	if snap == nil || snap.Counters["trace/flows_started"] == 0 {
		b.Fatal("traced run recorded no flows")
	}
	b.ReportMetric(float64(snap.Counters["trace/flows_final"]), "flows_traced")
	b.ReportMetric(float64(snap.Counters["trace/ctrl_spans"]), "ctrl_spans")
}

func BenchmarkFig09bLeftRightCDF(b *testing.B) {
	benchFigure(b, "9b", 250, nil)
}

func BenchmarkFig09cDeadlines(b *testing.B) {
	fig := benchFigure(b, "9c", 200, []float64{0.5, 0.9})
	b.ReportMetric(lastY(fig, "PASE"), "pase_tput@90%")
	b.ReportMetric(lastY(fig, "D2TCP"), "d2tcp_tput@90%")
}

func BenchmarkFig10aLeftRightP99(b *testing.B) {
	fig := benchFigure(b, "10a", 250, []float64{0.5, 0.9})
	b.ReportMetric(lastY(fig, "PASE"), "pase_p99_ms@90%")
	b.ReportMetric(lastY(fig, "pFabric"), "pfabric_p99_ms@90%")
}

func BenchmarkFig10bLeftRightCDF(b *testing.B) {
	benchFigure(b, "10b", 250, nil)
}

func BenchmarkFig10cWorkerAggregator(b *testing.B) {
	fig := benchFigure(b, "10c", 250, []float64{0.5, 0.8})
	b.ReportMetric(lastY(fig, "PASE"), "pase_afct_ms@80%")
	b.ReportMetric(lastY(fig, "pFabric"), "pfabric_afct_ms@80%")
}

func BenchmarkFig11aOptimizationsAFCT(b *testing.B) {
	fig := benchFigure(b, "11a", 200, []float64{0.8})
	b.ReportMetric(lastY(fig, "optimizations"), "afct_improvement_pct@80%")
}

func BenchmarkFig11bOptimizationsOverhead(b *testing.B) {
	fig := benchFigure(b, "11b", 200, []float64{0.8})
	b.ReportMetric(lastY(fig, "optimizations"), "overhead_reduction_pct@80%")
}

func BenchmarkFig12aArbitrationScope(b *testing.B) {
	fig := benchFigure(b, "12a", 250, []float64{0.9})
	b.ReportMetric(lastY(fig, "Arbitration=ON"), "e2e_afct_ms@90%")
	b.ReportMetric(lastY(fig, "Arbitration=OFF"), "local_afct_ms@90%")
}

func BenchmarkFig12bQueueCount(b *testing.B) {
	fig := benchFigure(b, "12b", 200, []float64{0.8})
	b.ReportMetric(lastY(fig, "3 Queues"), "afct_ms_3q@80%")
	b.ReportMetric(lastY(fig, "8 Queues"), "afct_ms_8q@80%")
}

func BenchmarkFig13aReferenceRate(b *testing.B) {
	fig := benchFigure(b, "13a", 200, []float64{0.4})
	b.ReportMetric(lastY(fig, "PASE"), "pase_afct_ms@40%")
	b.ReportMetric(lastY(fig, "PASE-DCTCP"), "pasedctcp_afct_ms@40%")
}

func BenchmarkFig13bTestbed(b *testing.B) {
	fig := benchFigure(b, "13b", 300, []float64{0.5, 0.9})
	b.ReportMetric(lastY(fig, "PASE"), "pase_afct_ms@90%")
	b.ReportMetric(lastY(fig, "DCTCP"), "dctcp_afct_ms@90%")
}

func BenchmarkProbingAblation(b *testing.B) {
	fig := benchFigure(b, "probing", 200, []float64{0.9})
	b.ReportMetric(lastY(fig, "probing on"), "probing_on_afct_ms@90%")
	b.ReportMetric(lastY(fig, "probing off"), "probing_off_afct_ms@90%")
}

// Ablation benches for the design choices DESIGN.md calls out.

func benchPoint(b *testing.B, cfg pase.SimConfig) *pase.Report {
	b.Helper()
	var rep *pase.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = pase.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

func BenchmarkAblationPruning(b *testing.B) {
	on := benchPoint(b, pase.SimConfig{Protocol: pase.ProtocolPASE, Scenario: pase.ScenarioLeftRight,
		Load: 0.8, NumFlows: 250, Seed: 1})
	off := benchPoint(b, pase.SimConfig{Protocol: pase.ProtocolPASE, Scenario: pase.ScenarioLeftRight,
		Load: 0.8, NumFlows: 250, Seed: 1, PASE: pase.PASEOptions{NoPruning: true}})
	b.ReportMetric(float64(on.CtrlMessages), "msgs_pruning_on")
	b.ReportMetric(float64(off.CtrlMessages), "msgs_pruning_off")
}

func BenchmarkAblationDelegation(b *testing.B) {
	on := benchPoint(b, pase.SimConfig{Protocol: pase.ProtocolPASE, Scenario: pase.ScenarioLeftRight,
		Load: 0.8, NumFlows: 250, Seed: 1})
	off := benchPoint(b, pase.SimConfig{Protocol: pase.ProtocolPASE, Scenario: pase.ScenarioLeftRight,
		Load: 0.8, NumFlows: 250, Seed: 1, PASE: pase.PASEOptions{NoDelegation: true}})
	b.ReportMetric(float64(on.CtrlMessages), "msgs_delegation_on")
	b.ReportMetric(float64(off.CtrlMessages), "msgs_delegation_off")
}

func BenchmarkAblationReorderGuard(b *testing.B) {
	on := benchPoint(b, pase.SimConfig{Protocol: pase.ProtocolPASE, Scenario: pase.ScenarioWorkerAgg,
		Load: 0.8, NumFlows: 250, Seed: 1})
	off := benchPoint(b, pase.SimConfig{Protocol: pase.ProtocolPASE, Scenario: pase.ScenarioWorkerAgg,
		Load: 0.8, NumFlows: 250, Seed: 1, PASE: pase.PASEOptions{NoReorderGuard: true}})
	b.ReportMetric(float64(on.Retransmits), "retx_guard_on")
	b.ReportMetric(float64(off.Retransmits), "retx_guard_off")
}

func BenchmarkAblationQueueCounts(b *testing.B) {
	for _, q := range []int{3, 8} {
		rep := benchPoint(b, pase.SimConfig{Protocol: pase.ProtocolPASE, Scenario: pase.ScenarioLeftRight,
			Load: 0.8, NumFlows: 250, Seed: 1, PASE: pase.PASEOptions{NumQueues: q}})
		b.ReportMetric(rep.AFCT.Seconds()*1000, map[int]string{3: "afct_ms_3q", 8: "afct_ms_8q"}[q])
	}
}
